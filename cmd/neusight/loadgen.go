package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"neusight/internal/gpusim"
	"neusight/internal/loadgen"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// loadgenCmd drives the open-loop load harness against a prediction
// service: either an external one (-target URL) or one it boots in-process
// on a loopback port (-self roofline|quick) so capacity can be measured
// with a single command and no background process management — which is
// how scripts/bench.sh --sweep and CI use it.
//
// Two modes: -rate/-duration offers one fixed-rate step; -sweep
// "start:step:max" walks the offered rate up until an SLO breach
// (-slo-p99 / -slo-errors) and reports the knee — the highest rate the
// service sustained within SLO. Either way the result is one
// machine-readable JSON report (stdout, or -out).
func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "", "base URL of the service under test (e.g. http://127.0.0.1:8080)")
	self := fs.String("self", "", "serve an in-process target instead of -target: roofline (analytical, instant) or quick (trains the reduced neusight predictor first)")
	shards := fs.Int("shards", 0, "-self only: shard traffic by (engine, GPU) onto this many shards (0 or 1 = unsharded)")
	shardQueue := fs.Int("shard-queue", 0, "-self only: per-shard in-flight bound before 503 backpressure (0 = default)")
	workers := fs.Int("workers", 0, "-self only: max concurrent backend predictions (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", serve.DefaultCacheSize, "-self only: prediction LRU cache size per partition (negative disables)")

	arrival := fs.String("arrival", loadgen.ArrivalPoisson, "arrival process: poisson or bursty")
	burstOn := fs.Duration("burst-on", 20*time.Millisecond, "bursty: on-window length")
	burstOff := fs.Duration("burst-off", 80*time.Millisecond, "bursty: off-window length")
	seed := fs.Int64("seed", 1, "arrival-process and scenario seed (fixed seed = reproducible run)")

	rate := fs.Float64("rate", 0, "fixed mode: offered rate in requests/second")
	duration := fs.Duration("duration", 10*time.Second, "fixed mode: step length")
	sweep := fs.String("sweep", "", `sweep mode: "start:step:max" offered-rate schedule (requests/second)`)
	stepDuration := fs.Duration("step-duration", 2*time.Second, "sweep: hold time per step")
	cooldown := fs.Duration("cooldown", 200*time.Millisecond, "sweep: pause between steps so backlog drains")
	sloP99 := fs.Float64("slo-p99", 0, "sweep SLO: breach when p99 latency exceeds this many milliseconds (0 = off)")
	sloErrors := fs.Float64("slo-errors", 0.01, "sweep SLO: breach when the error/503/drop rate exceeds this fraction (0 = off)")

	mix := fs.String("mix", "kernel=1", `request mix, e.g. "kernel=0.7,batch=0.2,graph=0.1"`)
	modelList := fs.String("models", "BERT-Large", "comma-separated workload names spanning the scenario (see list-models)")
	gpuList := fs.String("gpus", "H100,V100", "comma-separated GPU names spanning the scenario (see list-gpus)")
	batchSize := fs.Int("batch-size", 32, "kernels per batch request in the mix")
	graphBatch := fs.Int("graph-batch", 2, "workload batch size of graph requests in the mix")
	poolSize := fs.Int("pool", 512, "distinct pre-encoded requests in the scenario pool")
	engine := fs.String("engine", "", "per-request /v2 engine name (empty = server default)")
	tracePath := fs.String("trace", "", "replay this recorded workload trace instead of a generated mix")

	observeFeedback := fs.Bool("observe-feedback", false, "report each successful kernel request's measured latency back via POST /v2/observe after every step (target must run with -observe)")
	maxInFlight := fs.Int("max-inflight", 0, "cap on outstanding requests; arrivals past it are shed as drops (0 = default, negative = unbounded)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout; a timed-out request counts as errored")
	outPath := fs.String("out", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if (*target == "") == (*self == "") {
		return fmt.Errorf("loadgen: pass exactly one of -target or -self")
	}
	if *sweep == "" && *rate <= 0 {
		return fmt.Errorf("loadgen: pass -sweep start:step:max or a positive -rate")
	}
	if *sweep != "" && *rate > 0 {
		return fmt.Errorf("loadgen: -sweep and -rate are mutually exclusive")
	}

	spec := loadgen.ArrivalSpec{Process: *arrival, Seed: *seed}
	if *arrival == loadgen.ArrivalBursty {
		spec.On, spec.Off = *burstOn, *burstOff
	}

	scenario, err := buildScenario(*tracePath, *mix, *modelList, *gpuList, *engine, *batchSize, *graphBatch, *poolSize, *seed)
	if err != nil {
		return err
	}

	baseURL := *target
	if *self != "" {
		stop, url, err := startSelfTarget(*self, serve.Config{
			CacheSize: *cacheSize, Workers: *workers,
			Shards: *shards, ShardQueue: *shardQueue,
		})
		if err != nil {
			return err
		}
		defer stop()
		baseURL = url
		fmt.Fprintf(os.Stderr, "loadgen: self-serving %s target on %s\n", *self, url)
	}
	tgt := loadgen.NewTarget(baseURL, *maxInFlight)
	defer tgt.Client.CloseIdleConnections()

	runCfg := loadgen.RunConfig{
		Arrival:         spec,
		Scenario:        scenario,
		MaxInFlight:     *maxInFlight,
		Timeout:         *timeout,
		ObserveFeedback: *observeFeedback,
	}
	report := loadgen.Report{
		Kind:     loadgen.ReportKind,
		Target:   baseURL,
		Scenario: scenario.Name,
		Arrival:  spec,
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	if *sweep != "" {
		start, step, max, err := parseSweep(*sweep)
		if err != nil {
			return err
		}
		slo := loadgen.SLO{P99Ms: *sloP99, MaxErrorRate: *sloErrors}
		report.SLO = &slo
		fmt.Fprintf(os.Stderr, "loadgen: sweeping %g -> %g/s in steps of %g (%v per step) against %s\n",
			start, max, step, *stepDuration, baseURL)
		res, err := loadgen.Sweep(ctx, tgt, loadgen.SweepConfig{
			Start: start, Step: step, Max: max,
			StepDuration: *stepDuration,
			Cooldown:     *cooldown,
			SLO:          slo,
			Run:          runCfg,
		})
		if err != nil {
			return err
		}
		report.Sweep = &res
		for _, s := range res.Steps {
			fmt.Fprintf(os.Stderr, "  %8.0f/s offered: %7.1f/s achieved, p50 %.3fms p99 %.3fms p999 %.3fms, errors %.4f\n",
				s.OfferedRate, s.AchievedRate, s.P50Ms, s.P99Ms, s.P999Ms, s.ErrorRate)
		}
		switch {
		case res.Knee != nil:
			fmt.Fprintf(os.Stderr, "loadgen: knee at %g/s (p99 %.3fms, errors %.4f)",
				res.Knee.OfferedRate, res.Knee.P99Ms, res.Knee.ErrorRate)
			if res.Breached {
				fmt.Fprintf(os.Stderr, "; next step breached: %s\n", res.BreachReason)
			} else {
				fmt.Fprintf(os.Stderr, "; SLO held to the sweep ceiling — the true knee is at or above %g/s\n", max)
			}
		default:
			fmt.Fprintf(os.Stderr, "loadgen: no knee — the first step already breached: %s\n", res.BreachReason)
		}
	} else {
		runCfg.Rate = *rate
		runCfg.Duration = *duration
		fmt.Fprintf(os.Stderr, "loadgen: offering %g/s for %v against %s\n", *rate, *duration, baseURL)
		res, err := loadgen.Run(ctx, tgt, runCfg)
		if err != nil {
			return err
		}
		report.Run = &res
		fmt.Fprintf(os.Stderr, "loadgen: %d sent, %d ok, %d rejected, %d errored, %d dropped; p50 %.3fms p99 %.3fms p999 %.3fms\n",
			res.Sent, res.Succeeded, res.Rejected, res.Errored, res.Dropped, res.P50Ms, res.P99Ms, res.P999Ms)
		if *observeFeedback {
			fmt.Fprintf(os.Stderr, "loadgen: fed back %d observations via /v2/observe (%d rejected)\n",
				res.Observed, res.ObserveRejected)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}

// buildScenario resolves the -trace/-mix flags into a request pool.
func buildScenario(tracePath, mix, modelList, gpuList, engine string, batchSize, graphBatch, poolSize int, seed int64) (*loadgen.Scenario, error) {
	if tracePath != "" {
		sc, skipped, err := loadgen.NewTraceReplay(tracePath, engine)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: trace %s: %d entries skipped (corrupt or not API-expressible)\n", tracePath, skipped)
		}
		return sc, nil
	}
	kw, bw, gw, err := parseMix(mix)
	if err != nil {
		return nil, err
	}
	return loadgen.NewMix(loadgen.MixConfig{
		KernelWeight: kw, BatchWeight: bw, GraphWeight: gw,
		Models: splitPeers(modelList), GPUs: splitPeers(gpuList),
		Engine: engine, BatchSize: batchSize, GraphBatch: graphBatch,
		PoolSize: poolSize, Seed: seed,
	})
}

// parseMix parses "kernel=0.7,batch=0.2,graph=0.1" into the three weights.
// Omitted kinds weigh zero.
func parseMix(s string) (kernel, batch, graph float64, err error) {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("loadgen: mix entry %q is not kind=weight", part)
		}
		w, perr := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if perr != nil || w < 0 {
			return 0, 0, 0, fmt.Errorf("loadgen: mix weight %q must be a non-negative number", val)
		}
		switch strings.TrimSpace(key) {
		case "kernel":
			kernel = w
		case "batch":
			batch = w
		case "graph":
			graph = w
		default:
			return 0, 0, 0, fmt.Errorf("loadgen: unknown mix kind %q (want kernel, batch, or graph)", key)
		}
	}
	if kernel+batch+graph == 0 {
		return 0, 0, 0, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return kernel, batch, graph, nil
}

// parseSweep parses the "start:step:max" offered-rate schedule.
func parseSweep(s string) (start, step, max float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf(`loadgen: -sweep wants "start:step:max", got %q`, s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, perr := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("loadgen: -sweep field %q is not a number", p)
		}
		vals[i] = v
	}
	start, step, max = vals[0], vals[1], vals[2]
	if start <= 0 || step <= 0 || max < start {
		return 0, 0, 0, fmt.Errorf("loadgen: -sweep wants 0 < start <= max and step > 0, got %q", s)
	}
	return start, step, max, nil
}

// startSelfTarget boots an in-process prediction service on a loopback
// port and returns its base URL plus a stop function. The roofline mode is
// instant (analytical engine only); quick first trains the reduced
// neusight predictor the way `serve -quick` does, then serves it alongside
// the free engines.
func startSelfTarget(mode string, cfg serve.Config) (stop func(), baseURL string, err error) {
	reg := predict.NewRegistry()
	var def string
	switch mode {
	case "roofline":
		reg.MustRegister(predict.NewRooflineEngine())
		def = predict.EngineRoofline
	case "quick":
		fmt.Fprintln(os.Stderr, "loadgen: training a reduced in-process predictor...")
		p := quickPredictor()
		reg.MustRegister(predict.NewCoreEngine(p))
		reg.MustRegister(predict.NewRooflineEngine())
		reg.MustRegister(predict.NewSimEngine(gpusim.New()))
		def = predict.EngineNeuSight
	default:
		return nil, "", fmt.Errorf("loadgen: unknown -self mode %q (want roofline or quick)", mode)
	}
	svc := serve.NewMulti(reg, def, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: serve.NewHandler(svc), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return func() { srv.Close() }, "http://" + ln.Addr().String(), nil
}
