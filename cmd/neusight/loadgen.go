package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"neusight/internal/cluster"
	"neusight/internal/gpusim"
	"neusight/internal/loadgen"
	"neusight/internal/plan"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// loadgenCmd drives the open-loop load harness against a prediction
// service: either an external one (-target URL) or one it boots in-process
// on a loopback port (-self roofline|quick) so capacity can be measured
// with a single command and no background process management — which is
// how scripts/bench.sh --sweep and CI use it.
//
// Two modes: -rate/-duration offers one fixed-rate step; -sweep
// "start:step:max" walks the offered rate up until an SLO breach
// (-slo-p99 / -slo-errors) and reports the knee — the highest rate the
// service sustained within SLO. Either way the result is one
// machine-readable JSON report (stdout, or -out).
//
// Cluster mode (-cluster, or -self-cluster N which boots N in-process
// members) discovers the membership from any seed's GET /v2/cluster/ring,
// fans the offered stream across every live member (-cluster-split), and
// aggregates per-member results into one cluster-wide report whose sweep
// finds the *cluster* knee. -fault kills a chosen member at a chosen
// sweep step so the report captures the error spike, the failover window,
// and the recovery.
func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "", "base URL of the service under test (e.g. http://127.0.0.1:8080)")
	self := fs.String("self", "", "serve an in-process target instead of -target: roofline (analytical, instant) or quick (trains the reduced neusight predictor first)")
	shards := fs.Int("shards", 0, "-self only: shard traffic by (engine, GPU) onto this many shards (0 or 1 = unsharded)")
	shardQueue := fs.Int("shard-queue", 0, "-self only: per-shard in-flight bound before 503 backpressure (0 = default)")
	workers := fs.Int("workers", 0, "-self only: max concurrent backend predictions (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", serve.DefaultCacheSize, "-self only: prediction LRU cache size per partition (negative disables)")

	clusterMode := fs.Bool("cluster", false, "treat -target as cluster seed URL(s), comma-separated: discover members via GET /v2/cluster/ring and fan the offered stream across all of them")
	selfCluster := fs.Int("self-cluster", 0, "boot this many in-process cluster members as the target (needs -self for the engine mode; implies -cluster)")
	steer := fs.String("steer", cluster.SteerRedirect, "-self-cluster only: members' steering mode (redirect, proxy, off)")
	refreshRing := fs.Duration("refresh-ring", 0, "cluster: minimum ring-view age before it is re-fetched at a step boundary (0 = refresh before every step, tracking evictions and joins)")
	clusterToken := fs.String("cluster-token", "", "cluster: bearer token for the members' /v2/cluster control plane")
	clusterSplit := fs.String("cluster-split", loadgen.SplitOwnership, "cluster: how the stream splits across members — ownership (route each request to its shard owner) or uniform (equal shares; steering carries misplaced requests)")
	fault := fs.String("fault", "", `cluster sweep fault injection: "step=2" (self-cluster: auto-picks a victim), "step=2,member=host:port", or "step=2,member=host:port,pid=1234" (external cluster: SIGKILLs the pid)`)

	arrival := fs.String("arrival", loadgen.ArrivalPoisson, "arrival process: poisson or bursty")
	burstOn := fs.Duration("burst-on", 20*time.Millisecond, "bursty: on-window length")
	burstOff := fs.Duration("burst-off", 80*time.Millisecond, "bursty: off-window length")
	seed := fs.Int64("seed", 1, "arrival-process and scenario seed (fixed seed = reproducible run)")

	rate := fs.Float64("rate", 0, "fixed mode: offered rate in requests/second")
	duration := fs.Duration("duration", 10*time.Second, "fixed mode: step length")
	sweep := fs.String("sweep", "", `sweep mode: "start:step:max" offered-rate schedule (requests/second)`)
	stepDuration := fs.Duration("step-duration", 2*time.Second, "sweep: hold time per step")
	cooldown := fs.Duration("cooldown", 200*time.Millisecond, "sweep: pause between steps so backlog drains")
	sloP99 := fs.Float64("slo-p99", 0, "sweep SLO: breach when p99 latency exceeds this many milliseconds (0 = off)")
	sloErrors := fs.Float64("slo-errors", 0.01, "sweep SLO: breach when the error/503/drop rate exceeds this fraction (0 = off)")

	mix := fs.String("mix", "kernel=1", `request mix, e.g. "kernel=0.7,batch=0.2,graph=0.1"`)
	modelList := fs.String("models", "BERT-Large", "comma-separated workload names spanning the scenario (see list-models)")
	gpuList := fs.String("gpus", "H100,V100", "comma-separated GPU names spanning the scenario (see list-gpus)")
	batchSize := fs.Int("batch-size", 32, "kernels per batch request in the mix")
	graphBatch := fs.Int("graph-batch", 2, "workload batch size of graph requests in the mix")
	poolSize := fs.Int("pool", 512, "distinct pre-encoded requests in the scenario pool")
	engine := fs.String("engine", "", "per-request /v2 engine name (empty = server default)")
	tracePath := fs.String("trace", "", "replay this recorded workload trace instead of a generated mix")

	observeFeedback := fs.Bool("observe-feedback", false, "report each successful kernel request's measured latency back via POST /v2/observe after every step (target must run with -observe)")
	maxInFlight := fs.Int("max-inflight", 0, "cap on outstanding requests; arrivals past it are shed as drops (0 = default, negative = unbounded)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout; a timed-out request counts as errored")
	outPath := fs.String("out", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if (*target == "") == (*self == "") {
		return fmt.Errorf("loadgen: pass exactly one of -target or -self")
	}
	if *sweep == "" && *rate <= 0 {
		return fmt.Errorf("loadgen: pass -sweep start:step:max or a positive -rate")
	}
	if *sweep != "" && *rate > 0 {
		return fmt.Errorf("loadgen: -sweep and -rate are mutually exclusive")
	}
	if *selfCluster > 0 {
		if *self == "" {
			return fmt.Errorf("loadgen: -self-cluster needs -self roofline|quick for the member engine")
		}
		if *selfCluster < 2 {
			return fmt.Errorf("loadgen: -self-cluster wants at least 2 members")
		}
	}
	inCluster := *clusterMode || *selfCluster > 0
	if *fault != "" && (!inCluster || *sweep == "") {
		return fmt.Errorf("loadgen: -fault needs a cluster sweep (-cluster or -self-cluster, with -sweep)")
	}

	spec := loadgen.ArrivalSpec{Process: *arrival, Seed: *seed}
	if *arrival == loadgen.ArrivalBursty {
		spec.On, spec.Off = *burstOn, *burstOff
	}

	scenario, err := buildScenario(*tracePath, *mix, *modelList, *gpuList, *engine, *batchSize, *graphBatch, *poolSize, *seed)
	if err != nil {
		return err
	}

	svcCfg := serve.Config{
		CacheSize: *cacheSize, Workers: *workers,
		Shards: *shards, ShardQueue: *shardQueue,
	}
	var (
		baseURL    string
		seeds      []string
		killMember func(string) error
	)
	switch {
	case *selfCluster > 0:
		stop, ss, kill, err := startSelfCluster(*self, *selfCluster, *steer, svcCfg)
		if err != nil {
			return err
		}
		defer stop()
		seeds, killMember = ss, kill
		fmt.Fprintf(os.Stderr, "loadgen: self-serving a %d-member %s cluster (%s steering) on %s\n",
			*selfCluster, *self, *steer, strings.Join(seeds, ", "))
	case inCluster:
		seeds = splitPeers(*target)
	case *self != "":
		stop, url, err := startSelfTarget(*self, svcCfg)
		if err != nil {
			return err
		}
		defer stop()
		baseURL = url
		fmt.Fprintf(os.Stderr, "loadgen: self-serving %s target on %s\n", *self, url)
	default:
		baseURL = *target
	}

	runCfg := loadgen.RunConfig{
		Arrival:         spec,
		Scenario:        scenario,
		MaxInFlight:     *maxInFlight,
		Timeout:         *timeout,
		ObserveFeedback: *observeFeedback,
	}
	report := loadgen.Report{
		Kind:     loadgen.ReportKind,
		Target:   baseURL,
		Scenario: scenario.Name,
		Arrival:  spec,
	}
	if inCluster {
		report.Target = strings.Join(seeds, ",")
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	if inCluster {
		return runClusterLoad(ctx, clusterLoadConfig{
			seeds: seeds, token: *clusterToken, split: *clusterSplit,
			refresh: *refreshRing, maxConns: *maxInFlight,
			sweep: *sweep, stepDur: *stepDuration, cooldown: *cooldown,
			sloP99: *sloP99, sloErrors: *sloErrors,
			rate: *rate, duration: *duration,
			fault: *fault, killMember: killMember,
			run: runCfg, report: report, outPath: *outPath,
		})
	}

	tgt := loadgen.NewTarget(baseURL, *maxInFlight)
	defer tgt.Client.CloseIdleConnections()

	if *sweep != "" {
		start, step, max, err := parseSweep(*sweep)
		if err != nil {
			return err
		}
		slo := loadgen.SLO{P99Ms: *sloP99, MaxErrorRate: *sloErrors}
		report.SLO = &slo
		fmt.Fprintf(os.Stderr, "loadgen: sweeping %g -> %g/s in steps of %g (%v per step) against %s\n",
			start, max, step, *stepDuration, baseURL)
		res, err := loadgen.Sweep(ctx, tgt, loadgen.SweepConfig{
			Start: start, Step: step, Max: max,
			StepDuration: *stepDuration,
			Cooldown:     *cooldown,
			SLO:          slo,
			Run:          runCfg,
		})
		if err != nil {
			return err
		}
		report.Sweep = &res
		for _, s := range res.Steps {
			fmt.Fprintf(os.Stderr, "  %8.0f/s offered: %7.1f/s achieved, p50 %.3fms p99 %.3fms p999 %.3fms, errors %.4f\n",
				s.OfferedRate, s.AchievedRate, s.P50Ms, s.P99Ms, s.P999Ms, s.ErrorRate)
		}
		switch {
		case res.Knee != nil:
			fmt.Fprintf(os.Stderr, "loadgen: knee at %g/s (p99 %.3fms, errors %.4f)",
				res.Knee.OfferedRate, res.Knee.P99Ms, res.Knee.ErrorRate)
			if res.Breached {
				fmt.Fprintf(os.Stderr, "; next step breached: %s\n", res.BreachReason)
			} else {
				fmt.Fprintf(os.Stderr, "; SLO held to the sweep ceiling — the true knee is at or above %g/s\n", max)
			}
		default:
			fmt.Fprintf(os.Stderr, "loadgen: no knee — the first step already breached: %s\n", res.BreachReason)
		}
	} else {
		runCfg.Rate = *rate
		runCfg.Duration = *duration
		fmt.Fprintf(os.Stderr, "loadgen: offering %g/s for %v against %s\n", *rate, *duration, baseURL)
		res, err := loadgen.Run(ctx, tgt, runCfg)
		if err != nil {
			return err
		}
		report.Run = &res
		fmt.Fprintf(os.Stderr, "loadgen: %d sent, %d ok, %d rejected, %d errored, %d dropped; p50 %.3fms p99 %.3fms p999 %.3fms\n",
			res.Sent, res.Succeeded, res.Rejected, res.Errored, res.Dropped, res.P50Ms, res.P99Ms, res.P999Ms)
		if *observeFeedback {
			fmt.Fprintf(os.Stderr, "loadgen: fed back %d observations via /v2/observe (%d rejected)\n",
				res.Observed, res.ObserveRejected)
		}
	}

	return writeReport(report, *outPath)
}

// writeReport marshals the report to -out or stdout.
func writeReport(report loadgen.Report, outPath string) error {
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}

// clusterLoadConfig carries the resolved cluster-mode flags into
// runClusterLoad.
type clusterLoadConfig struct {
	seeds      []string
	token      string
	split      string
	refresh    time.Duration
	maxConns   int
	sweep      string
	stepDur    time.Duration
	cooldown   time.Duration
	sloP99     float64
	sloErrors  float64
	rate       float64
	duration   time.Duration
	fault      string
	killMember func(string) error
	run        loadgen.RunConfig
	report     loadgen.Report
	outPath    string
}

// runClusterLoad is the cluster half of loadgenCmd: drive the discovered
// membership through one step or a sweep, narrate progress to stderr, and
// write the aggregated report.
func runClusterLoad(ctx context.Context, cfg clusterLoadConfig) error {
	drv, err := loadgen.NewClusterDriver(loadgen.ClusterConfig{
		Seeds: cfg.seeds, Token: cfg.token, Split: cfg.split,
		RefreshInterval: cfg.refresh, MaxConns: cfg.maxConns,
	})
	if err != nil {
		return err
	}
	defer drv.Close()

	if cfg.sweep != "" {
		start, step, max, err := parseSweep(cfg.sweep)
		if err != nil {
			return err
		}
		slo := loadgen.SLO{P99Ms: cfg.sloP99, MaxErrorRate: cfg.sloErrors}
		cfg.report.SLO = &slo
		var plan *loadgen.FaultPlan
		if cfg.fault != "" {
			fstep, fmember, fpid, err := parseFault(cfg.fault)
			if err != nil {
				return err
			}
			kill := cfg.killMember
			if kill == nil {
				if fpid <= 0 {
					return fmt.Errorf("loadgen: -fault against an external cluster needs pid=<pid> to SIGKILL")
				}
				kill = func(string) error { return syscall.Kill(fpid, syscall.SIGKILL) }
			}
			plan = &loadgen.FaultPlan{Step: fstep, Member: fmember, Kill: kill}
		}
		fmt.Fprintf(os.Stderr, "loadgen: cluster-sweeping %g -> %g/s in steps of %g (%v per step) across %s\n",
			start, max, step, cfg.stepDur, cfg.report.Target)
		res, err := drv.ClusterSweep(ctx, loadgen.ClusterSweepConfig{
			Start: start, Step: step, Max: max,
			StepDuration: cfg.stepDur, Cooldown: cfg.cooldown,
			SLO: slo, Run: cfg.run, Fault: plan,
		})
		if err != nil {
			return err
		}
		cfg.report.ClusterSweep = &res
		for _, s := range res.Steps {
			loaded := 0
			for _, m := range s.Members {
				if m.Step != nil {
					loaded++
				}
			}
			note := ""
			if s.Fault != "" {
				note = "  [killed " + s.Fault + "]"
			}
			fmt.Fprintf(os.Stderr, "  %8.0f/s offered to %d members: %7.1f/s achieved, p50 %.3fms p99 %.3fms p999 %.3fms, errors %.4f%s\n",
				s.OfferedRate, loaded, s.AchievedRate, s.P50Ms, s.P99Ms, s.P999Ms, s.ErrorRate, note)
		}
		if res.Knee != nil {
			fmt.Fprintf(os.Stderr, "loadgen: cluster knee at %g/s (p99 %.3fms, errors %.4f)\n",
				res.Knee.OfferedRate, res.Knee.P99Ms, res.Knee.ErrorRate)
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: no cluster knee — every step breached: %s\n", res.BreachReason)
		}
		if res.Fault != nil {
			fmt.Fprintf(os.Stderr, "loadgen: fault injected at step %d: killed %s\n", res.Fault.Step, res.Fault.Member)
		}
		for _, m := range res.Members {
			if m.State != cluster.MemberAlive {
				fmt.Fprintf(os.Stderr, "loadgen: member %s ended the sweep %s\n", m.Addr, m.State)
			}
		}
	} else {
		rc := cfg.run
		rc.Rate, rc.Duration = cfg.rate, cfg.duration
		fmt.Fprintf(os.Stderr, "loadgen: offering %g/s for %v across %s\n", cfg.rate, cfg.duration, cfg.report.Target)
		res, err := drv.ClusterStep(ctx, rc)
		if err != nil {
			return err
		}
		cfg.report.ClusterRun = &res
		fmt.Fprintf(os.Stderr, "loadgen: %d sent across %d members, %d ok, %d rejected, %d errored, %d dropped; p50 %.3fms p99 %.3fms p999 %.3fms\n",
			res.Sent, len(res.Members), res.Succeeded, res.Rejected, res.Errored, res.Dropped, res.P50Ms, res.P99Ms, res.P999Ms)
	}
	return writeReport(cfg.report, cfg.outPath)
}

// parseFault parses the -fault spec: comma-separated key=value pairs with
// keys step (1-based sweep step, required), member (address to kill), and
// pid (process to SIGKILL for external clusters).
func parseFault(s string) (step int, member string, pid int, err error) {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return 0, "", 0, fmt.Errorf("loadgen: fault entry %q is not key=value", part)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "step":
			v, perr := strconv.Atoi(val)
			if perr != nil || v < 1 {
				return 0, "", 0, fmt.Errorf("loadgen: fault step %q must be a positive integer", val)
			}
			step = v
		case "member":
			if val == "" {
				return 0, "", 0, fmt.Errorf("loadgen: fault member must not be empty")
			}
			member = val
		case "pid":
			v, perr := strconv.Atoi(val)
			if perr != nil || v <= 0 {
				return 0, "", 0, fmt.Errorf("loadgen: fault pid %q must be a positive integer", val)
			}
			pid = v
		default:
			return 0, "", 0, fmt.Errorf("loadgen: unknown fault key %q (want step, member, or pid)", key)
		}
	}
	if step < 1 {
		return 0, "", 0, fmt.Errorf("loadgen: fault spec %q needs step=<n>", s)
	}
	return step, member, pid, nil
}

// startSelfCluster boots n in-process cluster members wired all-to-all —
// a full local cluster behind one command, which is how scripts/bench.sh
// --cluster-sweep and the check.sh smoke measure cluster capacity without
// managing processes. Returns a stop function, the member seed URLs, and
// a kill hook that tears one member down abruptly (listener, connections,
// and background loops) for -fault injection.
func startSelfCluster(mode string, n int, steer string, cfg serve.Config) (func(), []string, func(string) error, error) {
	newRegistry := func() (*predict.Registry, string) {
		reg := predict.NewRegistry()
		reg.MustRegister(predict.NewRooflineEngine())
		return reg, predict.EngineRoofline
	}
	switch mode {
	case "roofline":
	case "quick":
		fmt.Fprintln(os.Stderr, "loadgen: training a reduced in-process predictor for the cluster...")
		p := quickPredictor()
		newRegistry = func() (*predict.Registry, string) {
			reg := predict.NewRegistry()
			reg.MustRegister(predict.NewCoreEngine(p))
			reg.MustRegister(predict.NewRooflineEngine())
			reg.MustRegister(predict.NewSimEngine(gpusim.New()))
			return reg, predict.EngineNeuSight
		}
	default:
		return nil, nil, nil, fmt.Errorf("loadgen: unknown -self mode %q (want roofline or quick)", mode)
	}

	type member struct {
		addr string
		node *cluster.Node
		srv  *http.Server
		pm   *plan.Manager
	}
	members := make([]*member, 0, n)
	closeAll := func() {
		for _, m := range members {
			m.srv.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		reg, def := newRegistry()
		svc := serve.NewMulti(reg, def, cfg)
		node, err := cluster.NewNode(cluster.Config{
			Self:  ln.Addr().String(),
			Steer: steer,
			// Snappy failure detection: a local capacity sweep holds each
			// step for a second or two, so an injected kill must be
			// detected and failed over within a step, not the ~4s the
			// production defaults allow.
			PollInterval:   200 * time.Millisecond,
			HealthInterval: 200 * time.Millisecond,
			SuspectAfter:   1,
			DeadAfter:      2,
			Registry:       reg,
			DefaultEngine:  def,
			Invalidate:     svc.InvalidateEngine,
		})
		if err != nil {
			ln.Close()
			closeAll()
			return nil, nil, nil, err
		}
		// Every member gets an in-memory planner wired to the cluster's
		// fan-out hook, so a /v2/plan submitted to any member spreads its
		// configuration batches across all of them (scripts/plan_e2e.sh and
		// the --plan-sweep benchmark target this).
		pm, err := plan.NewManager("", planResolver(reg, def), plan.Options{})
		if err != nil {
			ln.Close()
			closeAll()
			return nil, nil, nil, err
		}
		pm.SetDispatcher(node.PlanDispatcher())
		svc.SetPlanner(pm)
		srv := &http.Server{Handler: node.Handler(serve.NewHandler(svc)), ReadHeaderTimeout: 10 * time.Second}
		go srv.Serve(ln)
		members = append(members, &member{addr: ln.Addr().String(), node: node, srv: srv, pm: pm})
	}
	for i, m := range members {
		peers := make([]string, 0, n-1)
		for j, o := range members {
			if j != i {
				peers = append(peers, o.addr)
			}
		}
		m.node.SetPeers(peers)
		m.node.Start()
	}

	// Per-member idempotent teardown: the fault hook and the final stop
	// may both reach the same member (Node.Stop is once-only).
	kills := make(map[string]func(), n)
	seeds := make([]string, n)
	for i, m := range members {
		m := m
		var once sync.Once
		kills[m.addr] = func() {
			once.Do(func() {
				m.pm.Close()
				m.node.Stop()
				m.srv.Close()
			})
		}
		seeds[i] = "http://" + m.addr
	}
	stop := func() {
		for _, k := range kills {
			k()
		}
	}
	kill := func(addr string) error {
		k, ok := kills[addr]
		if !ok {
			return fmt.Errorf("loadgen: fault member %q is not one of the self-cluster members", addr)
		}
		k()
		return nil
	}
	return stop, seeds, kill, nil
}

// buildScenario resolves the -trace/-mix flags into a request pool.
func buildScenario(tracePath, mix, modelList, gpuList, engine string, batchSize, graphBatch, poolSize int, seed int64) (*loadgen.Scenario, error) {
	if tracePath != "" {
		sc, skipped, err := loadgen.NewTraceReplay(tracePath, engine)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: trace %s: %d entries skipped (corrupt or not API-expressible)\n", tracePath, skipped)
		}
		return sc, nil
	}
	kw, bw, gw, err := parseMix(mix)
	if err != nil {
		return nil, err
	}
	return loadgen.NewMix(loadgen.MixConfig{
		KernelWeight: kw, BatchWeight: bw, GraphWeight: gw,
		Models: splitPeers(modelList), GPUs: splitPeers(gpuList),
		Engine: engine, BatchSize: batchSize, GraphBatch: graphBatch,
		PoolSize: poolSize, Seed: seed,
	})
}

// parseMix parses "kernel=0.7,batch=0.2,graph=0.1" into the three weights.
// Omitted kinds weigh zero.
func parseMix(s string) (kernel, batch, graph float64, err error) {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("loadgen: mix entry %q is not kind=weight", part)
		}
		w, perr := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if perr != nil || w < 0 {
			return 0, 0, 0, fmt.Errorf("loadgen: mix weight %q must be a non-negative number", val)
		}
		switch strings.TrimSpace(key) {
		case "kernel":
			kernel = w
		case "batch":
			batch = w
		case "graph":
			graph = w
		default:
			return 0, 0, 0, fmt.Errorf("loadgen: unknown mix kind %q (want kernel, batch, or graph)", key)
		}
	}
	if kernel+batch+graph == 0 {
		return 0, 0, 0, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return kernel, batch, graph, nil
}

// parseSweep parses the "start:step:max" offered-rate schedule.
func parseSweep(s string) (start, step, max float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf(`loadgen: -sweep wants "start:step:max", got %q`, s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, perr := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("loadgen: -sweep field %q is not a number", p)
		}
		vals[i] = v
	}
	start, step, max = vals[0], vals[1], vals[2]
	if start <= 0 || step <= 0 || max < start {
		return 0, 0, 0, fmt.Errorf("loadgen: -sweep wants 0 < start <= max and step > 0, got %q", s)
	}
	return start, step, max, nil
}

// startSelfTarget boots an in-process prediction service on a loopback
// port and returns its base URL plus a stop function. The roofline mode is
// instant (analytical engine only); quick first trains the reduced
// neusight predictor the way `serve -quick` does, then serves it alongside
// the free engines.
func startSelfTarget(mode string, cfg serve.Config) (stop func(), baseURL string, err error) {
	reg := predict.NewRegistry()
	var def string
	switch mode {
	case "roofline":
		reg.MustRegister(predict.NewRooflineEngine())
		def = predict.EngineRoofline
	case "quick":
		fmt.Fprintln(os.Stderr, "loadgen: training a reduced in-process predictor...")
		p := quickPredictor()
		reg.MustRegister(predict.NewCoreEngine(p))
		reg.MustRegister(predict.NewRooflineEngine())
		reg.MustRegister(predict.NewSimEngine(gpusim.New()))
		def = predict.EngineNeuSight
	default:
		return nil, "", fmt.Errorf("loadgen: unknown -self mode %q (want roofline or quick)", mode)
	}
	svc := serve.NewMulti(reg, def, cfg)
	pm, err := plan.NewManager("", planResolver(reg, def), plan.Options{})
	if err != nil {
		return nil, "", err
	}
	svc.SetPlanner(pm)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: serve.NewHandler(svc), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return func() { pm.Close(); srv.Close() }, "http://" + ln.Addr().String(), nil
}
