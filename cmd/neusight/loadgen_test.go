package main

import "testing"

func TestParseMix(t *testing.T) {
	cases := []struct {
		in         string
		kw, bw, gw float64
		wantErr    bool
	}{
		{in: "kernel=1", kw: 1},
		{in: "kernel=0.7,batch=0.2,graph=0.1", kw: 0.7, bw: 0.2, gw: 0.1},
		{in: " batch=2 , graph=1 ", bw: 2, gw: 1},
		{in: "kernel=0,batch=0,graph=0", wantErr: true},
		{in: "", wantErr: true},
		{in: "kernel=-1", wantErr: true},
		{in: "kernel=x", wantErr: true},
		{in: "kernel", wantErr: true},
		{in: "tensor=1", wantErr: true},
	}
	for _, tc := range cases {
		kw, bw, gw, err := parseMix(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseMix(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMix(%q): %v", tc.in, err)
			continue
		}
		if kw != tc.kw || bw != tc.bw || gw != tc.gw {
			t.Errorf("parseMix(%q) = %g/%g/%g, want %g/%g/%g", tc.in, kw, bw, gw, tc.kw, tc.bw, tc.gw)
		}
	}
}

func TestParseSweep(t *testing.T) {
	cases := []struct {
		in               string
		start, step, max float64
		wantErr          bool
	}{
		{in: "100:100:2000", start: 100, step: 100, max: 2000},
		{in: " 50 : 25 : 50 ", start: 50, step: 25, max: 50},
		{in: "100:100", wantErr: true},
		{in: "a:b:c", wantErr: true},
		{in: "0:100:2000", wantErr: true},
		{in: "100:0:2000", wantErr: true},
		{in: "2000:100:100", wantErr: true},
	}
	for _, tc := range cases {
		start, step, max, err := parseSweep(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseSweep(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSweep(%q): %v", tc.in, err)
			continue
		}
		if start != tc.start || step != tc.step || max != tc.max {
			t.Errorf("parseSweep(%q) = %g:%g:%g, want %g:%g:%g", tc.in, start, step, max, tc.start, tc.step, tc.max)
		}
	}
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		in      string
		step    int
		member  string
		pid     int
		wantErr bool
	}{
		{in: "step=2", step: 2},
		{in: "step=3,member=127.0.0.1:8080", step: 3, member: "127.0.0.1:8080"},
		{in: " step=1 , member=host:1 , pid=42 ", step: 1, member: "host:1", pid: 42},
		{in: "", wantErr: true},                   // no step
		{in: "member=host:1", wantErr: true},      // no step
		{in: "step=0", wantErr: true},             // step must be >= 1
		{in: "step=x", wantErr: true},             // non-numeric step
		{in: "step=2,pid=0", wantErr: true},       // pid must be positive
		{in: "step=2,member=", wantErr: true},     // empty member
		{in: "step=2,node=host:1", wantErr: true}, // unknown key
		{in: "step", wantErr: true},               // not key=value
	}
	for _, tc := range cases {
		step, member, pid, err := parseFault(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseFault(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFault(%q): %v", tc.in, err)
			continue
		}
		if step != tc.step || member != tc.member || pid != tc.pid {
			t.Errorf("parseFault(%q) = %d/%q/%d, want %d/%q/%d",
				tc.in, step, member, pid, tc.step, tc.member, tc.pid)
		}
	}
}
