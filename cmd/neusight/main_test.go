package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/serve"
	"neusight/internal/tile"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func TestListGPUs(t *testing.T) {
	out := captureStdout(t, listGPUs)
	for _, want := range []string{"H100", "V100", "MI250", "B200", "PEAK TFLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("list-gpus output missing %q", want)
		}
	}
}

func TestListModels(t *testing.T) {
	out := captureStdout(t, listModels)
	for _, want := range []string{"BERT-Large", "GPT3-2.7B", "SwitchTrans", "OOD"} {
		if !strings.Contains(out, want) {
			t.Errorf("list-models output missing %q", want)
		}
	}
}

func TestForecastPrintsLatency(t *testing.T) {
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 3, BMM: 80, FC: 40, EW: 30, Softmax: 15, LN: 15,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := core.NewPredictor(core.Config{
		Hidden: 24, Layers: 2, Epochs: 10, BatchSize: 128, LR: 3e-3, Seed: 3,
	}, tdb)
	p.Train(ds)

	out := captureStdout(t, func() error {
		return forecast(p, "BERT-Large", "V100", 8, false, false)
	})
	if !strings.Contains(out, "predicted latency") || !strings.Contains(out, "BERT-Large on V100") {
		t.Fatalf("forecast output: %q", out)
	}
	// Training + fusion path.
	out = captureStdout(t, func() error {
		return forecast(p, "GPT2-Large", "L4", 2, true, true)
	})
	if !strings.Contains(out, "fused") || !strings.Contains(out, "training iteration") {
		t.Fatalf("forecast training/fused output: %q", out)
	}
}

func TestForecastUnknownInputs(t *testing.T) {
	p := core.NewPredictor(core.DefaultConfig(), nil)
	if err := forecast(p, "NotAModel", "V100", 1, false, false); err == nil {
		t.Fatal("unknown workload must error")
	}
	if err := forecast(p, "BERT-Large", "NotAGPU", 1, false, false); err == nil {
		t.Fatal("unknown GPU must error")
	}
}

func TestTrainPredictRoundTripCLI(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	tilePath := filepath.Join(dir, "tiles.json")
	modelPath := filepath.Join(dir, "model.json")

	// Produce a small dataset the way cmd/datagen would.
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 4, BMM: 40, FC: 20, EW: 15, Softmax: 8, LN: 8,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	if err := ds.SaveCSV(dataPath); err != nil {
		t.Fatal(err)
	}
	if err := tdb.Save(tilePath); err != nil {
		t.Fatal(err)
	}

	_ = captureStdout(t, func() error {
		return train([]string{"-data", dataPath, "-out", modelPath, "-tiles", tilePath})
	})
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("train did not write the model: %v", err)
	}
	out := captureStdout(t, func() error {
		return predictCmd([]string{"-model", modelPath, "-tiles", tilePath,
			"-workload", "BERT-Large", "-gpu", "T4", "-batch", "4"})
	})
	if !strings.Contains(out, "predicted latency") {
		t.Fatalf("predict output: %q", out)
	}
}

func TestTrainRequiresData(t *testing.T) {
	if err := train([]string{}); err == nil {
		t.Fatal("train without -data must error")
	}
}

func TestEnginesSubcommandListsStandardSet(t *testing.T) {
	out := captureStdout(t, listEngines)
	for _, want := range []string{
		"neusight", "habitat", "liregression", "roofline",
		"direct-mlp", "direct-transformer", "gpusim",
		"NAME", "SOURCE", "TRAINABLE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("engines output missing %q:\n%s", want, out)
		}
	}
}

// TestPredictWithAnalyticalEngine: -engine routes a forecast through a
// non-default engine with no model files required.
func TestPredictWithAnalyticalEngine(t *testing.T) {
	out := captureStdout(t, func() error {
		return predictCmd([]string{"-engine", "roofline",
			"-workload", "BERT-Large", "-gpu", "V100", "-batch", "2"})
	})
	for _, want := range []string{"engine: roofline", "predicted latency", "BERT-Large on V100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("roofline forecast output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() error {
		return predictCmd([]string{"-engine", "gpusim",
			"-workload", "BERT-Large", "-gpu", "V100", "-batch", "2", "-breakdown"})
	})
	if !strings.Contains(out, "engine: gpusim") || !strings.Contains(out, "by operator category") {
		t.Fatalf("gpusim forecast output:\n%s", out)
	}
}

func TestPredictUnknownEngine(t *testing.T) {
	if err := predictCmd([]string{"-engine", "crystal-ball", "-workload", "BERT-Large", "-gpu", "V100"}); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestServeCmdRequiresSource(t *testing.T) {
	if err := serveCmd([]string{"-addr", ":0"}); err == nil {
		t.Fatal("serve without -model or -quick must error")
	}
}

func TestServeCmdFlagValidation(t *testing.T) {
	if err := serveCmd([]string{"-quick", "-trace-compact", "3"}); err == nil {
		t.Fatal("-trace-compact without -trace-record must error")
	}
	if err := serveCmd([]string{"-quick", "-cluster-listen", ":0"}); err == nil {
		t.Fatal("-cluster-listen without -peers must error")
	}
	if err := serveCmd([]string{"-quick", "-advertise", "h:1"}); err == nil {
		t.Fatal("-advertise without -peers must error")
	}
	// -steer validation must run before the expensive training step: these
	// return in milliseconds precisely because they fail early.
	if err := serveCmd([]string{"-quick", "-peers", "h:1", "-steer", "proyx"}); err == nil {
		t.Fatal("unknown -steer mode must error")
	}
	if err := serveCmd([]string{"-quick", "-steer", "proxy"}); err == nil {
		t.Fatal("-steer proxy without -peers must error")
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" h1:8080, ,h2:8080 ,")
	if len(got) != 2 || got[0] != "h1:8080" || got[1] != "h2:8080" {
		t.Fatalf("splitPeers = %v", got)
	}
	if splitPeers("") != nil {
		t.Fatal("splitPeers(\"\") must be empty")
	}
}

func TestDeriveSelf(t *testing.T) {
	for addr, want := range map[string]string{
		":8080":          "127.0.0.1:8080",
		"0.0.0.0:8080":   "127.0.0.1:8080",
		"[::]:8080":      "127.0.0.1:8080",
		"10.1.2.3:8080":  "10.1.2.3:8080",
		"myhost:8080":    "myhost:8080",
		"not-an-address": "not-an-address",
	} {
		if got := deriveSelf(addr); got != want {
			t.Errorf("deriveSelf(%q) = %q, want %q", addr, got, want)
		}
	}
}

// TestServeEndToEnd exercises the stack the serve subcommand assembles —
// a real trained predictor behind serve.New and serve.NewHandler — through
// an httptest server, the same wiring minus ListenAndServe.
func TestServeEndToEnd(t *testing.T) {
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 9, BMM: 60, FC: 30, EW: 20, Softmax: 10, LN: 10,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := core.NewPredictor(core.Config{
		Hidden: 24, Layers: 2, Epochs: 8, BatchSize: 128, LR: 3e-3, Seed: 9,
	}, tdb)
	p.Train(ds)

	svc := serve.New(p, serve.Config{CacheSize: 256})
	ts := httptest.NewServer(serve.NewHandler(svc))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	// Two identical graph forecasts: within the first, duplicate kernels
	// may coalesce rather than hit the cache (scheduling-dependent), but
	// the second is guaranteed to be served from cache.
	var gr serve.GraphResponse
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(serve.GraphRequest{Workload: "BERT-Large", GPU: "V100", Batch: 2})
		resp, err = http.Post(ts.URL+"/v1/predict/graph", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || gr.LatencyMs <= 0 || gr.Kernels <= 0 {
			t.Fatalf("graph forecast = %+v (status %d)", gr, resp.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests == 0 {
		t.Error("stats show no requests after a graph forecast")
	}
	if st.HitRate == 0 {
		t.Error("hit rate = 0: the repeated graph forecast must be served from cache")
	}
}

func TestForecastBreakdownFlag(t *testing.T) {
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 6, BMM: 60, FC: 30, EW: 20, Softmax: 10, LN: 10,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := core.NewPredictor(core.Config{
		Hidden: 24, Layers: 2, Epochs: 8, BatchSize: 128, LR: 3e-3, Seed: 6,
	}, tdb)
	p.Train(ds)
	out := captureStdout(t, func() error {
		return forecastOpts(p, "BERT-Large", "V100", 4, false, false, true)
	})
	for _, want := range []string{"by operator category", "top kernels"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown output missing %q:\n%s", want, out)
		}
	}
}

// TestRunServerGracefulShutdown drives runServer the way a SIGINT would:
// requests succeed while the context is live; cancelling it drains and
// returns nil; afterwards the listener is closed to new connections.
func TestRunServerGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(stubBackend{}, serve.Config{CacheSize: 16})
	srv := &http.Server{Handler: serve.NewHandler(svc)}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() { done <- runServer(ctx, srv, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String() + "/v1/healthz"
	var resp *http.Response
	for i := 0; i < 100; i++ { // wait for the server to accept
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	_ = captureStdout(t, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("runServer did not return after context cancel")
		}
	})
	if _, err := http.Get(url); err == nil {
		t.Error("listener still accepting connections after graceful shutdown")
	}
}

// stubBackend is a minimal predictor for server-lifecycle tests.
type stubBackend struct{}

func (stubBackend) Name() string { return "stub" }
func (stubBackend) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	return 1, nil
}
