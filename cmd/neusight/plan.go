package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"neusight/internal/cluster"
	"neusight/internal/plan"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// planResolver maps a plan spec's engine name to the registry's engine,
// defaulting the empty name — the resolve hook plan.NewManager needs.
// Shared by serve, loadgen's self targets, and the plan command itself.
func planResolver(reg *predict.Registry, def string) func(string) (predict.Engine, error) {
	return func(name string) (predict.Engine, error) {
		if name == "" {
			name = def
		}
		return reg.Get(name)
	}
}

// planCmd drives the /v2/plan capacity-planning API: it submits a what-if
// sweep (model × candidate GPUs × parallelism strategies × fleet sizes)
// and polls the async job to completion, printing the
// throughput-per-cost ranking. -poll/-cancel/-resume operate on an
// existing job instead of submitting. The target is an external service
// (-target URL) or an in-process one (-self roofline|quick, optionally
// -self-cluster N to fan the evaluation across N cluster members) so a
// full planning round needs no background process management — which is
// how scripts/plan_e2e.sh and scripts/bench.sh --plan-sweep use it.
func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	target := fs.String("target", "", "base URL of the planning service (e.g. http://127.0.0.1:8080)")
	self := fs.String("self", "", "boot an in-process target instead of -target: roofline (analytical, instant) or quick (trains the reduced neusight predictor first)")
	selfCluster := fs.Int("self-cluster", 0, "boot this many in-process cluster members as the target and fan the sweep across them (needs -self)")
	steer := fs.String("steer", cluster.SteerProxy, "-self-cluster only: members' steering mode (redirect, proxy, off)")

	pollID := fs.String("poll", "", "poll this job id once instead of submitting (with -wait: until terminal)")
	cancelID := fs.String("cancel", "", "cancel this job id instead of submitting")
	resumeID := fs.String("resume", "", "resume this cancelled job id instead of submitting")

	model := fs.String("model", "BERT-Large", "workload to plan capacity for (see `neusight list-models`)")
	traffic := fs.Float64("traffic", 0, "offered traffic to satisfy, requests/s (0 = rank by throughput-per-cost alone)")
	engine := fs.String("engine", "", "prediction engine pricing the sweep (default: the target's default engine)")
	gpus := fs.String("gpus", "A100-80GB,H100,L4", "candidate GPUs, comma-separated")
	strategies := fs.String("strategies", "", "candidate parallelism strategies, comma-separated dp/tp/pp (default: all three)")
	fleets := fs.String("fleets", "", "candidate fleet sizes (servers), comma-separated (default: 1,2,4)")
	gpusPerServer := fs.Int("gpus-per-server", 0, "GPUs per server in every candidate (default 4)")
	globalBatch := fs.Int("global-batch", 0, "global batch size per iteration (default max(8, gpus-per-server))")
	training := fs.Bool("training", false, "plan a training fleet (adds backward pass and gradient all-reduce)")
	microBatches := fs.Int("micro-batches", 0, "pipeline micro-batches (default min(4, global-batch))")
	seed := fs.Int64("seed", 1, "shuffle seed for the evaluation order (fixed seed = reproducible checkpoint order)")

	wait := fs.Bool("wait", true, "poll the submitted job until it is terminal")
	interval := fs.Duration("interval", 200*time.Millisecond, "poll cadence while waiting")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up waiting after this long (the job keeps running server-side)")
	top := fs.Int("top", 10, "print this many ranking rows (0 = all)")
	out := fs.String("out", "", "also write the final job status JSON (full ranking) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	actions := 0
	for _, id := range []string{*pollID, *cancelID, *resumeID} {
		if id != "" {
			actions++
		}
	}
	if actions > 1 {
		return fmt.Errorf("plan: -poll, -cancel, and -resume are mutually exclusive")
	}
	if *selfCluster != 0 && *self == "" {
		return fmt.Errorf("plan: -self-cluster needs -self roofline|quick for the engine mode")
	}
	if (*self != "") == (*target != "") {
		return fmt.Errorf("plan: pass exactly one of -target or -self")
	}
	if *self != "" && actions > 0 {
		return fmt.Errorf("plan: -poll/-cancel/-resume need -target (an in-process -self target dies with this command)")
	}

	base := *target
	if *self != "" {
		cfg := serve.Config{CacheSize: serve.DefaultCacheSize}
		if *selfCluster > 0 {
			stop, seeds, _, err := startSelfCluster(*self, *selfCluster, *steer, cfg)
			if err != nil {
				return err
			}
			defer stop()
			base = seeds[0]
			fmt.Fprintf(os.Stderr, "plan: %d-member self-cluster up, submitting to %s\n", *selfCluster, base)
		} else {
			stop, url, err := startSelfTarget(*self, cfg)
			if err != nil {
				return err
			}
			defer stop()
			base = url
		}
	}
	base = strings.TrimRight(base, "/")

	switch {
	case *cancelID != "":
		st, err := planRequest(http.MethodDelete, base+"/v2/plan/"+*cancelID, nil)
		if err != nil {
			return err
		}
		return printPlanStatus(st, *top, *out)
	case *resumeID != "":
		st, err := planRequest(http.MethodPost, base+"/v2/plan/"+*resumeID, nil)
		if err != nil {
			return err
		}
		if *wait {
			return planWait(base, st.ID, *interval, *timeout, *top, *out)
		}
		return printPlanStatus(st, *top, *out)
	case *pollID != "":
		if *wait {
			return planWait(base, *pollID, *interval, *timeout, *top, *out)
		}
		st, err := planRequest(http.MethodGet, base+"/v2/plan/"+*pollID+"?full=1", nil)
		if err != nil {
			return err
		}
		return printPlanStatus(st, *top, *out)
	}

	spec := plan.Spec{
		Model:         *model,
		TrafficRPS:    *traffic,
		Engine:        *engine,
		GPUs:          splitPeers(*gpus),
		Strategies:    splitPeers(*strategies),
		GPUsPerServer: *gpusPerServer,
		GlobalBatch:   *globalBatch,
		Training:      *training,
		MicroBatches:  *microBatches,
		Seed:          *seed,
	}
	for _, f := range splitPeers(*fleets) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("plan: fleet size %q is not an integer", f)
		}
		spec.FleetSizes = append(spec.FleetSizes, n)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	st, err := planRequest(http.MethodPost, base+"/v2/plan", body)
	if err != nil {
		return err
	}
	fmt.Printf("plan: job %s submitted — %d configurations\n", st.ID, st.Total)
	if !*wait {
		return printPlanStatus(st, *top, *out)
	}
	return planWait(base, st.ID, *interval, *timeout, *top, *out)
}

// planWait polls one job until it leaves the running state, then prints
// its full ranking.
func planWait(base, id string, interval, timeout time.Duration, top int, out string) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := planRequest(http.MethodGet, base+"/v2/plan/"+id+"?full=1", nil)
		if err != nil {
			return err
		}
		if st.State != plan.StateRunning {
			return printPlanStatus(st, top, out)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("plan: job %s still %s after %v (%d/%d evaluated); it keeps running — poll again with `neusight plan -target %s -poll %s`",
				id, st.State, timeout, st.Evaluated, st.Total, base, id)
		}
		time.Sleep(interval)
	}
}

// planRequest performs one /v2/plan API call and decodes the job status,
// surfacing the API's error body on non-2xx.
func planRequest(method, url string, body []byte) (plan.Status, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return plan.Status{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return plan.Status{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return plan.Status{}, err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return plan.Status{}, fmt.Errorf("plan: %s %s: %s (HTTP %d)", method, url, apiErr.Error, resp.StatusCode)
		}
		return plan.Status{}, fmt.Errorf("plan: %s %s: HTTP %d", method, url, resp.StatusCode)
	}
	var st plan.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return plan.Status{}, fmt.Errorf("plan: decoding response: %w", err)
	}
	return st, nil
}

// printPlanStatus renders a job's summary and ranking for humans and,
// when out is set, writes the machine-readable status JSON alongside.
func printPlanStatus(st plan.Status, top int, out string) error {
	fmt.Printf("job %s: %s — %d/%d evaluated in %.1fs (%.0f configs/s)\n",
		st.ID, st.State, st.Evaluated, st.Total, st.ElapsedSec, st.ConfigsPerSec)
	if st.RemoteCells > 0 || st.RedispatchedBatches > 0 {
		fmt.Printf("cluster fan-out: %d cells evaluated by peers, %d batches re-dispatched after owner failure\n",
			st.RemoteCells, st.RedispatchedBatches)
	}
	if st.Error != "" {
		fmt.Printf("error: %s\n", st.Error)
	}
	ranking := st.Ranking
	if top > 0 && len(ranking) > top {
		ranking = ranking[:top]
	}
	if len(ranking) > 0 {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "RANK\tGPU\tSTRATEGY\tFLEET\tITER MS\tTHROUGHPUT RPS\tUSD/H\tRPS/USD\tMEETS\tFITS\tERROR")
		for i, r := range ranking {
			meets, fits := "-", "-"
			if r.MeetsTraffic {
				meets = "yes"
			}
			if r.FitsMemory {
				fits = "yes"
			}
			fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%.2f\t%.1f\t%.2f\t%.2f\t%s\t%s\t%s\n",
				i+1, r.GPU, r.Strategy, r.Fleet, r.IterationMs, r.ThroughputRPS,
				r.CostPerHour, r.ThroughputPerCost, meets, fits, r.Error)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if out != "" {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("full status written to %s\n", out)
	}
	return nil
}
