// Command neusight is the CLI front end of the framework: it lists the
// device and workload inventories, trains a predictor from a dataset, and
// forecasts model latencies on any registered GPU.
//
// Usage:
//
//	neusight list-gpus
//	neusight list-models
//	neusight train   -data data.csv -out model.json -tiles tiles.json
//	neusight predict -model model.json -tiles tiles.json \
//	                 -workload GPT3-XL -gpu H100 -batch 2 [-train] [-fused]
//	neusight quick   -workload GPT3-XL -gpu H100 -batch 2
//	neusight serve   -addr :8080 [-model model.json -tiles tiles.json | -quick]
//
// "quick" trains a reduced predictor in-process (no files needed) — the
// fastest way to get a forecast. "serve" exposes a predictor as a
// concurrent HTTP JSON API with prediction caching and request coalescing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/report"
	"neusight/internal/serve"
	"neusight/internal/tile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list-gpus":
		err = listGPUs()
	case "list-models":
		err = listModels()
	case "train":
		err = train(os.Args[2:])
	case "predict":
		err = predict(os.Args[2:])
	case "quick":
		err = quick(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "neusight: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "neusight: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: neusight <command> [flags]

commands:
  list-gpus     print the device registry (paper Table 4)
  list-models   print the workload zoo (paper Table 5)
  train         train a predictor from a profiled dataset CSV
  predict       forecast a workload with a saved predictor
  quick         train a reduced predictor in-process and forecast
  serve         run the concurrent HTTP prediction service`)
}

func listGPUs() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tVENDOR\tYEAR\tPEAK TFLOPS\tMEM GB\tMEM BW GB/s\tSMs\tL2 MB")
	for _, g := range gpu.All() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%.0f\t%.0f\t%d\t%.0f\n",
			g.Name, g.Vendor, g.Year, g.PeakFLOPS, g.MemoryGB, g.MemoryBWGBs, g.SMs, g.L2CacheMB)
	}
	return w.Flush()
}

func listModels() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tYEAR\tPARAMS\tLAYERS\tHEADS\tHIDDEN\tSEQ LEN\tOOD DIMS")
	for _, c := range models.Table5() {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%v\n",
			c.Name, c.Year, c.ParamsDesc, c.Layers, c.Heads, c.Hidden, c.SeqLen, c.HasOODDims())
	}
	return w.Flush()
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset CSV produced by datagen")
	outPath := fs.String("out", "neusight-model.json", "output predictor path")
	tilePath := fs.String("tiles", "tiles.json", "tile database path (read if present, else rebuilt)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("train: -data is required")
	}
	ds, err := dataset.LoadCSV(*dataPath)
	if err != nil {
		return err
	}
	tdb, err := tile.LoadDB(*tilePath)
	if err != nil {
		// Rebuild the tile database from the dataset's recorded tiles.
		tdb = tile.NewDB()
		for _, s := range ds.Samples {
			tdb.Add(s.Kernel, s.GPU, s.Tile)
		}
		if err := tdb.Save(*tilePath); err != nil {
			return err
		}
	}
	p := core.NewPredictor(core.DefaultConfig(), tdb)
	rep := p.Train(ds)
	for cat, l := range rep.FinalLoss {
		fmt.Printf("trained %-8v on %6d samples, final SMAPE %.3f\n", cat, rep.Samples[cat], l)
	}
	return p.Save(*outPath)
}

func predict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "neusight-model.json", "trained predictor path")
	tilePath := fs.String("tiles", "tiles.json", "tile database path")
	workload := fs.String("workload", "GPT3-XL", "workload name (see list-models)")
	gpuName := fs.String("gpu", "H100", "target GPU (see list-gpus)")
	batch := fs.Int("batch", 2, "batch size")
	trainMode := fs.Bool("train", false, "forecast a training iteration instead of inference")
	fused := fs.Bool("fused", false, "apply the operator-fusion pass first")
	breakdown := fs.Bool("breakdown", false, "print per-category and per-kernel breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tdb, err := tile.LoadDB(*tilePath)
	if err != nil {
		return err
	}
	p, err := core.Load(*modelPath, tdb)
	if err != nil {
		return err
	}
	return forecastOpts(p, *workload, *gpuName, *batch, *trainMode, *fused, *breakdown)
}

func quick(args []string) error {
	fs := flag.NewFlagSet("quick", flag.ExitOnError)
	workload := fs.String("workload", "GPT3-XL", "workload name (see list-models)")
	gpuName := fs.String("gpu", "H100", "target GPU (see list-gpus)")
	batch := fs.Int("batch", 2, "batch size")
	trainMode := fs.Bool("train", false, "forecast a training iteration instead of inference")
	fused := fs.Bool("fused", false, "apply the operator-fusion pass first")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("profiling simulated training GPUs and training a reduced predictor...")
	return forecast(quickPredictor(), *workload, *gpuName, *batch, *trainMode, *fused)
}

// quickPredictor profiles the simulated training GPUs and trains a reduced
// in-process predictor — shared by the quick and serve subcommands.
func quickPredictor() *core.Predictor {
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 42, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := core.NewPredictor(core.Config{
		Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256, LR: 3e-3, WeightDecay: 1e-4, Seed: 42,
	}, tdb)
	p.Train(ds)
	return p
}

// serveCmd runs the HTTP prediction service: either around a predictor
// saved by train (-model/-tiles) or a reduced one trained in-process
// (-quick). SIGINT/SIGTERM trigger a graceful shutdown: the listener
// closes immediately, in-flight requests drain up to -drain, then the
// process exits cleanly.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelPath := fs.String("model", "", "trained predictor path (from `neusight train`)")
	tilePath := fs.String("tiles", "tiles.json", "tile database path")
	quickTrain := fs.Bool("quick", false, "train a reduced predictor in-process instead of loading one")
	cacheSize := fs.Int("cache", serve.DefaultCacheSize, "prediction LRU cache size (entries; negative disables)")
	workers := fs.Int("workers", 0, "max concurrent backend predictions (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var p *core.Predictor
	switch {
	case *quickTrain:
		fmt.Println("training a reduced in-process predictor...")
		p = quickPredictor()
	case *modelPath != "":
		tdb, err := tile.LoadDB(*tilePath)
		if err != nil {
			return err
		}
		p, err = core.Load(*modelPath, tdb)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("serve: pass -model (with -tiles) or -quick")
	}
	svc := serve.New(p, serve.Config{CacheSize: *cacheSize, Workers: *workers})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s on %s (cache %d entries)\n", svc.Backend(), ln.Addr(), *cacheSize)
	fmt.Println("endpoints: POST /v1/predict/kernel  POST /v1/predict/batch  POST /v1/predict/graph")
	fmt.Println("           GET /v1/healthz  GET /v1/stats  GET /metrics")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Release the signal handler as soon as the first signal lands: the
	// drain then proceeds, but a second SIGINT/SIGTERM gets default
	// handling and force-quits instead of being swallowed for -drain.
	go func() {
		<-ctx.Done()
		stop()
	}()
	srv := &http.Server{
		Handler: serve.NewHandler(svc),
		// Bound slow clients on both directions so trickled headers,
		// unread responses, or abandoned connections cannot pin goroutines
		// and file descriptors indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return runServer(ctx, srv, ln, *drain)
}

// runServer serves srv on ln until ctx is cancelled (SIGINT/SIGTERM in
// production), then shuts down gracefully: the listener closes so no new
// connections are accepted, and in-flight requests get up to drain to
// complete before the remaining connections are torn down.
func runServer(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err // listener failed before any shutdown was requested
	case <-ctx.Done():
	}
	fmt.Printf("shutting down: draining in-flight requests (up to %v)...\n", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errCh; serveErr != nil && serveErr != http.ErrServerClosed {
		return serveErr
	}
	if err != nil {
		return fmt.Errorf("serve: drain timeout exceeded: %w", err)
	}
	fmt.Println("shutdown complete")
	return nil
}

func forecast(p *core.Predictor, workload, gpuName string, batch int, trainMode, fused bool) error {
	return forecastOpts(p, workload, gpuName, batch, trainMode, fused, false)
}

func forecastOpts(p *core.Predictor, workload, gpuName string, batch int, trainMode, fused, breakdown bool) error {
	m, err := models.Lookup(workload)
	if err != nil {
		return err
	}
	g, err := gpu.Lookup(gpuName)
	if err != nil {
		return err
	}
	gr := m.InferenceGraph(batch)
	mode := "inference (first token)"
	if trainMode {
		gr = m.TrainingGraph(batch)
		mode = "training iteration (fwd+bwd)"
	}
	if fused {
		gr = graph.Fuse(gr)
		mode += ", fused"
	}
	lat := p.PredictGraph(gr, g)
	fmt.Printf("%s on %s, batch %d, %s\n", m.Name, g.Name, batch, mode)
	fmt.Printf("kernels: %d   total FLOPs: %.3g   predicted latency: %.1f ms\n",
		len(gr.Nodes), gr.TotalFLOPs(), lat)
	if !m.FitsInMemory(batch, g, trainMode) {
		fmt.Printf("warning: estimated footprint %.1f GB exceeds %s memory (%.0f GB) — real execution would OOM\n",
			m.MemoryBytes(batch, trainMode)/1e9, g.Name, g.MemoryGB)
	}
	if breakdown {
		b := report.Analyze(gr, func(k kernels.Kernel) float64 {
			l, err := p.PredictKernel(k, g)
			if err != nil {
				return core.MemBoundLatency(k, g)
			}
			return l
		}, 8)
		fmt.Println()
		fmt.Print(b.Render())
	}
	return nil
}
