// Command neusight is the CLI front end of the framework: it lists the
// device and workload inventories and the prediction-engine registry,
// trains a predictor from a dataset, and forecasts model latencies on any
// registered GPU with any registered engine.
//
// Usage:
//
//	neusight list-gpus
//	neusight list-models
//	neusight engines
//	neusight train   -data data.csv -out model.json -tiles tiles.json
//	neusight predict -model model.json -tiles tiles.json \
//	                 -workload GPT3-XL -gpu H100 -batch 2 [-train] [-fused]
//	                 [-engine neusight]
//	neusight quick   -workload GPT3-XL -gpu H100 -batch 2 [-engine roofline]
//	neusight serve   -addr :8080 [-model model.json -tiles tiles.json | -quick | -engines roofline,gpusim]
//	                 [-shards 8] [-warmup trace.jsonl] [-trace-record trace.jsonl]
//	                 [-trace-compact 5] [-peers host2:8080,host3:8080]
//	                 [-join host2:8080] [-steer redirect|proxy|off]
//	                 [-advertise host1:8080] [-cluster-listen :9090]
//	                 [-cluster-token secret] [-health-interval 1s]
//	                 [-observe] [-drift-threshold 0.25] [-observe-store obs.jsonl]
//	neusight loadgen (-target http://host:8080 | -self roofline) \
//	                 (-rate 500 -duration 10s | -sweep 100:100:2000) \
//	                 [-arrival poisson|bursty -burst-on 20ms -burst-off 80ms]
//	                 [-mix kernel=0.7,batch=0.2,graph=0.1 -models BERT-Large -gpus H100,V100]
//	                 [-trace trace.jsonl] [-slo-p99 50 -slo-errors 0.01] [-out report.json]
//	neusight plan    (-target http://host:8080 | -self roofline [-self-cluster 3]) \
//	                 -model GPT3-XL -gpus A100-80GB,H100 -traffic 500 [-training]
//	                 [-poll id | -cancel id | -resume id] [-out plan.json]
//
// "quick" trains a reduced predictor in-process (no files needed) — the
// fastest way to get a forecast. "serve" exposes the engine registry as a
// concurrent HTTP JSON API (/v2 selects an engine per request) with
// per-engine prediction caching and request coalescing; -shards splits
// traffic by (engine, GPU) onto dedicated shards, and -warmup /
// -trace-record persist the workload profile across restarts. -peers forms
// a cluster with other serve processes: engine-generation changes gossip
// between members so a retrain anywhere invalidates every member's stale
// cache, and requests are steered (307 redirect or transparent proxy) to
// the member owning their (engine, GPU) shard; -join grows a running
// cluster by announcing this process to any existing member. "loadgen"
// drives a service
// (or one it boots in-process via -self) with open-loop Poisson or bursty
// traffic and, in -sweep mode, walks the offered rate up until an SLO
// breach to report the knee — the node's sustainable capacity. "plan"
// submits a what-if capacity sweep to a service's /v2/plan API — every
// (GPU, parallelism strategy, fleet size) candidate priced through the
// prediction stack and ranked by throughput-per-cost — and polls the
// resumable async job to completion.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"neusight/internal/baselines"
	"neusight/internal/cluster"
	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/observe"
	"neusight/internal/plan"
	"neusight/internal/predict"
	"neusight/internal/report"
	"neusight/internal/serve"
	"neusight/internal/tile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list-gpus":
		err = listGPUs()
	case "list-models":
		err = listModels()
	case "engines":
		err = listEngines()
	case "train":
		err = train(os.Args[2:])
	case "predict":
		err = predictCmd(os.Args[2:])
	case "quick":
		err = quick(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "loadgen":
		err = loadgenCmd(os.Args[2:])
	case "plan":
		err = planCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "neusight: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "neusight: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: neusight <command> [flags]

commands:
  list-gpus     print the device registry (paper Table 4)
  list-models   print the workload zoo (paper Table 5)
  engines       print the prediction-engine registry
  train         train a predictor from a profiled dataset CSV
  predict       forecast a workload with a saved predictor (-engine picks another engine)
  quick         train a reduced predictor in-process and forecast
  serve         run the concurrent multi-engine HTTP prediction service
  loadgen       offer open-loop load to a service and find its SLO knee
  plan          submit/poll/cancel what-if capacity sweeps (/v2/plan) against a service or -self`)
}

func listGPUs() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tVENDOR\tYEAR\tPEAK TFLOPS\tMEM GB\tMEM BW GB/s\tSMs\tL2 MB")
	for _, g := range gpu.All() {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%.0f\t%.0f\t%d\t%.0f\n",
			g.Name, g.Vendor, g.Year, g.PeakFLOPS, g.MemoryGB, g.MemoryBWGBs, g.SMs, g.L2CacheMB)
	}
	return w.Flush()
}

func listModels() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tYEAR\tPARAMS\tLAYERS\tHEADS\tHIDDEN\tSEQ LEN\tOOD DIMS")
	for _, c := range models.Table5() {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%v\n",
			c.Name, c.Year, c.ParamsDesc, c.Layers, c.Heads, c.Hidden, c.SeqLen, c.HasOODDims())
	}
	return w.Flush()
}

// listEngines builds the default engine registry (untrained — construction
// is cheap, training is not) and prints it alongside the catalog metadata.
func listEngines() error {
	reg := untrainedRegistry()
	catalog := map[string]predict.Info{}
	for _, info := range predict.Catalog() {
		catalog[info.Name] = info
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tSOURCE\tBATCH\tTRAINABLE\tDESCRIPTION")
	for _, name := range reg.List() {
		eng, err := reg.Get(name)
		if err != nil {
			return err
		}
		info := catalog[name]
		native := "sequential"
		if predict.NativeBatch(eng) {
			native = "native"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%s\n", name, info.Source, native, info.Trainable, info.Description)
	}
	return w.Flush()
}

// engineSpec is one row of the standard non-neusight engine wiring: how to
// construct the engine and how to prepare its training set. The neusight
// engine is special-cased everywhere — it wraps whichever core predictor
// the command loaded or trained.
type engineSpec struct {
	name  string
	build func() predict.Engine
	// prep trims the training set for engines with expensive fits; nil
	// means train on the full dataset. Consulted only for Trainable engines.
	prep func(ds *dataset.Dataset) *dataset.Dataset
}

// engineSpecs is the single name -> constructor table behind `engines`,
// `-engine` forecasts, and `serve -quick`: adding an engine here makes it
// listable, buildable, and servable at once instead of requiring four
// coordinated switch edits.
func engineSpecs() []engineSpec {
	cfg := quickDirectConfig()
	trCfg := cfg
	trCfg.Epochs = 8 // transformers train sample-by-sample; bound the budget
	return []engineSpec{
		{name: predict.EngineRoofline,
			build: func() predict.Engine { return predict.NewRooflineEngine() }},
		{name: predict.EngineGPUSim,
			build: func() predict.Engine { return predict.NewSimEngine(gpusim.New()) }},
		{name: predict.EngineHabitat,
			build: func() predict.Engine { return predict.NewHabitatEngine(baselines.NewHabitat(cfg, gpusim.New())) }},
		{name: predict.EngineLiRegression,
			build: func() predict.Engine { return predict.NewLiEngine(baselines.NewLiRegression()) }},
		{name: predict.EngineDirectMLP,
			build: func() predict.Engine { return predict.NewDirectMLPEngine(baselines.NewDirectMLP(cfg)) }},
		{name: predict.EngineDirectTransformer,
			build: func() predict.Engine {
				return predict.NewDirectTransformerEngine(baselines.NewDirectTransformer(trCfg, 2))
			},
			prep: func(ds *dataset.Dataset) *dataset.Dataset {
				if len(ds.Samples) > 1500 {
					return &dataset.Dataset{Samples: ds.Samples[:1500]}
				}
				return ds
			}},
	}
}

// findEngineSpec looks a standard engine up by name.
func findEngineSpec(name string) (engineSpec, bool) {
	for _, spec := range engineSpecs() {
		if spec.name == name {
			return spec, true
		}
	}
	return engineSpec{}, false
}

// trainEngineSpec fits a Trainable engine to ds, applying the spec's
// training-set preparation.
func trainEngineSpec(tr predict.Trainable, spec engineSpec, ds *dataset.Dataset) error {
	if spec.prep != nil {
		ds = spec.prep(ds)
	}
	return tr.Train(ds)
}

// untrainedRegistry registers one instance of every standard engine without
// training any of them — the registry shape `neusight engines` lists and
// the conformance suite checks.
func untrainedRegistry() *predict.Registry {
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewCoreEngine(core.NewPredictor(core.DefaultConfig(), nil)))
	for _, spec := range engineSpecs() {
		reg.MustRegister(spec.build())
	}
	return reg
}

// quickDirectConfig sizes the in-process baseline training runs used by
// -engine forecasts and `serve -quick`.
func quickDirectConfig() baselines.DirectConfig {
	return baselines.DirectConfig{Hidden: 32, Layers: 2, Epochs: 20, BatchSize: 128, LR: 3e-3, Seed: 7}
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset CSV produced by datagen")
	outPath := fs.String("out", "neusight-model.json", "output predictor path")
	tilePath := fs.String("tiles", "tiles.json", "tile database path (read if present, else rebuilt)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("train: -data is required")
	}
	ds, err := dataset.LoadCSV(*dataPath)
	if err != nil {
		return err
	}
	tdb, err := tile.LoadDB(*tilePath)
	if err != nil {
		// Rebuild the tile database from the dataset's recorded tiles.
		tdb = tile.NewDB()
		for _, s := range ds.Samples {
			tdb.Add(s.Kernel, s.GPU, s.Tile)
		}
		if err := tdb.Save(*tilePath); err != nil {
			return err
		}
	}
	p := core.NewPredictor(core.DefaultConfig(), tdb)
	rep := p.Train(ds)
	for cat, l := range rep.FinalLoss {
		fmt.Printf("trained %-8v on %6d samples, final SMAPE %.3f\n", cat, rep.Samples[cat], l)
	}
	return p.Save(*outPath)
}

func predictCmd(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "neusight-model.json", "trained predictor path")
	tilePath := fs.String("tiles", "tiles.json", "tile database path")
	workload := fs.String("workload", "GPT3-XL", "workload name (see list-models)")
	gpuName := fs.String("gpu", "H100", "target GPU (see list-gpus)")
	batch := fs.Int("batch", 2, "batch size")
	trainMode := fs.Bool("train", false, "forecast a training iteration instead of inference")
	fused := fs.Bool("fused", false, "apply the operator-fusion pass first")
	breakdown := fs.Bool("breakdown", false, "print per-category and per-kernel breakdown")
	engineName := fs.String("engine", predict.EngineNeuSight,
		"prediction engine (see `neusight engines`); trainable non-neusight engines are fitted in-process on simulated profiling data")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineName != predict.EngineNeuSight {
		eng, err := buildAltEngine(*engineName)
		if err != nil {
			return err
		}
		return forecastEngine(eng, *workload, *gpuName, *batch, *trainMode, *fused, *breakdown)
	}
	tdb, err := tile.LoadDB(*tilePath)
	if err != nil {
		return err
	}
	p, err := core.Load(*modelPath, tdb)
	if err != nil {
		return err
	}
	return forecastOpts(p, *workload, *gpuName, *batch, *trainMode, *fused, *breakdown)
}

func quick(args []string) error {
	fs := flag.NewFlagSet("quick", flag.ExitOnError)
	workload := fs.String("workload", "GPT3-XL", "workload name (see list-models)")
	gpuName := fs.String("gpu", "H100", "target GPU (see list-gpus)")
	batch := fs.Int("batch", 2, "batch size")
	trainMode := fs.Bool("train", false, "forecast a training iteration instead of inference")
	fused := fs.Bool("fused", false, "apply the operator-fusion pass first")
	engineName := fs.String("engine", predict.EngineNeuSight, "prediction engine (see `neusight engines`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineName != predict.EngineNeuSight {
		eng, err := buildAltEngine(*engineName)
		if err != nil {
			return err
		}
		return forecastEngine(eng, *workload, *gpuName, *batch, *trainMode, *fused, false)
	}
	fmt.Println("profiling simulated training GPUs and training a reduced predictor...")
	return forecast(quickPredictor(), *workload, *gpuName, *batch, *trainMode, *fused)
}

// quickDataset profiles the simulated training GPUs into a reduced dataset
// — the shared input of every in-process engine training.
func quickDataset() (*dataset.Dataset, *tile.DB) {
	tdb := tile.NewDB()
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 42, BMM: 300, FC: 150, EW: 120, Softmax: 60, LN: 60,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	return ds, tdb
}

// quickCoreConfig sizes the reduced in-process NeuSight training run —
// the one configuration behind both `quick` and `serve -quick`.
func quickCoreConfig() core.Config {
	return core.Config{Hidden: 48, Layers: 3, Epochs: 40, BatchSize: 256, LR: 3e-3, WeightDecay: 1e-4, Seed: 42}
}

// quickPredictor profiles the simulated training GPUs and trains a reduced
// in-process predictor — shared by the quick and serve subcommands.
func quickPredictor() *core.Predictor {
	ds, tdb := quickDataset()
	p := core.NewPredictor(quickCoreConfig(), tdb)
	p.Train(ds)
	return p
}

// buildAltEngine constructs a non-default engine for a one-off CLI
// forecast. The analytical and simulator engines are free; the trainable
// baselines are fitted to an in-process generated dataset first (they have
// no on-disk format — they exist for comparison, not production serving).
func buildAltEngine(name string) (predict.Engine, error) {
	for _, spec := range engineSpecs() {
		if spec.name != name {
			continue
		}
		eng := spec.build()
		tr, ok := eng.(predict.Trainable)
		if !ok {
			return eng, nil
		}
		fmt.Printf("training engine %s on simulated profiling data...\n", name)
		ds, _ := quickDataset()
		return eng, trainEngineSpec(tr, spec, ds)
	}
	return nil, fmt.Errorf("unknown engine %q (see `neusight engines`)", name)
}

// serveCmd runs the multi-engine HTTP prediction service around either a
// predictor saved by train (-model/-tiles) or a reduced one trained
// in-process (-quick). The registry always carries the neusight, roofline,
// and gpusim engines; -quick additionally trains the comparison baselines
// (habitat, liregression, direct-mlp, direct-transformer) on the generated
// dataset so every engine of the standard set is routable via /v2.
//
// -shards partitions traffic by (engine, GPU) onto dedicated shards;
// -warmup replays a workload trace into the caches before the listener
// opens, and -trace-record appends the served keys to one for the next
// restart. SIGINT/SIGTERM trigger a graceful shutdown: the listener
// closes immediately, in-flight requests drain up to -drain, then the
// process exits cleanly (flushing the trace, if recording).
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelPath := fs.String("model", "", "trained predictor path (from `neusight train`)")
	tilePath := fs.String("tiles", "tiles.json", "tile database path")
	quickTrain := fs.Bool("quick", false, "train a reduced predictor in-process instead of loading one")
	cacheSize := fs.Int("cache", serve.DefaultCacheSize, "prediction LRU cache size per partition (entries; negative disables)")
	workers := fs.Int("workers", 0, "max concurrent backend predictions (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	shards := fs.Int("shards", 0, "shard traffic by (engine, GPU) onto this many dedicated shards (0 or 1 = unsharded)")
	shardQueue := fs.Int("shard-queue", 0, "per-shard in-flight request bound before 503 backpressure (0 = default, negative = unbounded)")
	tracePath := fs.String("trace-record", "", "append served (kernel, GPU, engine) keys to this JSONL workload trace")
	warmupPath := fs.String("warmup", "", "replay this workload trace to warm caches before accepting traffic")
	traceCompact := fs.Int("trace-compact", 0, "age out trace keys not requested within the last K replays (0 = off; requires -trace-record)")
	engineList := fs.String("engines", "", "serve only these non-trainable engines, comma-separated (no -model/-quick needed; e.g. roofline,gpusim)")
	peers := fs.String("peers", "", "comma-separated addresses of peer serve processes forming a cluster")
	join := fs.String("join", "", "join a running cluster by announcing this process to the given member address")
	steer := fs.String("steer", cluster.SteerRedirect, "cluster steering for requests owned by a peer: redirect (307), proxy (transparent), or off")
	advertise := fs.String("advertise", "", "address peers reach this process at (default: -addr with an empty host replaced by 127.0.0.1)")
	clusterListen := fs.String("cluster-listen", "", "optional extra listener serving only the cluster control routes (/v2/cluster/*)")
	clusterToken := fs.String("cluster-token", "", "shared bearer token required on all /v2/cluster/* control routes (every member must use the same one)")
	healthInterval := fs.Duration("health-interval", 0, "cluster health-sweep cadence driving the suspect/dead failure detector (0 = default 1s)")
	observeFlag := fs.Bool("observe", false, "accept measured kernel latencies on POST /v2/observe and track prediction drift (retrainable engines background-retrain past -drift-threshold)")
	driftThreshold := fs.Float64("drift-threshold", observe.DefaultThreshold, "rolling-MAPE level above which a retrainable engine recalibrates from observations (requires -observe)")
	observeStore := fs.String("observe-store", "", "persist observations to this bounded JSONL store, replayed into drift windows on restart (requires -observe)")
	observeCap := fs.Int("observe-cap", 0, fmt.Sprintf("observation store capacity in records, oldest evicted (0 = default %d; requires -observe-store)", observe.DefaultStoreCap))
	planDir := fs.String("plan-dir", "", "persist /v2/plan job checkpoints to this directory so interrupted sweeps restore as resumable after a restart (default: in-memory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceCompact < 0 {
		return fmt.Errorf("serve: -trace-compact must be >= 0, got %d", *traceCompact)
	}
	if *traceCompact > 0 && *tracePath == "" {
		return fmt.Errorf("serve: -trace-compact requires -trace-record")
	}
	if !*observeFlag && (*observeStore != "" || *driftThreshold != observe.DefaultThreshold) {
		return fmt.Errorf("serve: -observe-store and -drift-threshold require -observe")
	}
	if *driftThreshold <= 0 {
		return fmt.Errorf("serve: -drift-threshold must be positive, got %v", *driftThreshold)
	}
	if *observeCap != 0 && *observeStore == "" {
		return fmt.Errorf("serve: -observe-cap requires -observe-store")
	}
	if *observeCap < 0 {
		return fmt.Errorf("serve: -observe-cap must be >= 0, got %d", *observeCap)
	}
	clustered := *peers != "" || *join != ""
	if (*clusterListen != "" || *advertise != "" || *clusterToken != "" || *healthInterval != 0) && !clustered {
		return fmt.Errorf("serve: -cluster-listen, -advertise, -cluster-token, and -health-interval require -peers or -join")
	}
	// Validate -steer before the expensive model loading/training below: a
	// typo'd mode must fail in milliseconds, not after a -quick train.
	switch *steer {
	case cluster.SteerRedirect, cluster.SteerProxy, cluster.SteerOff:
	default:
		return fmt.Errorf("serve: unknown -steer mode %q (want %s, %s, or %s)",
			*steer, cluster.SteerRedirect, cluster.SteerProxy, cluster.SteerOff)
	}
	if *steer != cluster.SteerRedirect && !clustered {
		return fmt.Errorf("serve: -steer requires -peers or -join")
	}
	reg := predict.NewRegistry()
	defaultEngine := predict.EngineNeuSight
	// baseDS is the -quick run's generated dataset, retained so calibration
	// retrains keep the offline distribution under the folded observations
	// (nil for -model and -engines: calibration then trains on observations
	// alone).
	var baseDS *dataset.Dataset
	if *engineList != "" {
		// Model-free serving: only engines that need no training can run
		// without a predictor (-model) or an in-process dataset (-quick).
		if *quickTrain || *modelPath != "" {
			return fmt.Errorf("serve: -engines replaces -model/-quick")
		}
		names := splitPeers(*engineList)
		if len(names) == 0 {
			return fmt.Errorf("serve: -engines lists no engine")
		}
		for _, name := range names {
			spec, ok := findEngineSpec(name)
			if !ok {
				return fmt.Errorf("serve: unknown engine %q (see `neusight engines`)", name)
			}
			eng := spec.build()
			if _, trainable := eng.(predict.Trainable); trainable {
				return fmt.Errorf("serve: engine %q needs training — use -quick instead of -engines", name)
			}
			reg.MustRegister(eng)
		}
		defaultEngine = names[0]
	} else {
		var p *core.Predictor
		var ds *dataset.Dataset
		switch {
		case *quickTrain:
			fmt.Println("training a reduced in-process predictor...")
			var tdb *tile.DB
			ds, tdb = quickDataset()
			p = core.NewPredictor(quickCoreConfig(), tdb)
			p.Train(ds)
		case *modelPath != "":
			tdb, err := tile.LoadDB(*tilePath)
			if err != nil {
				return err
			}
			p, err = core.Load(*modelPath, tdb)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("serve: pass -model (with -tiles), -quick, or -engines")
		}
		reg.MustRegister(predict.NewCoreEngine(p))
		for _, spec := range engineSpecs() {
			eng := spec.build()
			if tr, ok := eng.(predict.Trainable); ok {
				if ds == nil {
					continue // trainable baselines need the -quick dataset
				}
				fmt.Printf("training engine %s...\n", spec.name)
				if err := trainEngineSpec(tr, spec, ds); err != nil {
					return err
				}
			}
			reg.MustRegister(eng)
		}
		baseDS = ds
	}
	svc := serve.NewMulti(reg, defaultEngine, serve.Config{
		CacheSize: *cacheSize, Workers: *workers,
		Shards: *shards, ShardQueue: *shardQueue,
	})
	planMgr, err := plan.NewManager(*planDir, planResolver(reg, defaultEngine), plan.Options{})
	if err != nil {
		return err
	}
	svc.SetPlanner(planMgr)
	defer planMgr.Close()
	if *planDir != "" {
		restored := planMgr.List()
		if len(restored) > 0 {
			fmt.Printf("plan: %d checkpointed jobs restored from %s (cancelled ones resume via POST /v2/plan/{id})\n",
				len(restored), *planDir)
		}
	}
	if *observeFlag {
		ocfg := observe.Config{Threshold: *driftThreshold}
		if *observeStore != "" {
			st, err := observe.OpenStore(*observeStore, *observeCap)
			if err != nil {
				return err
			}
			ocfg.Store = st
		}
		mon := observe.NewMonitor(ocfg, func(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec) (float64, error) {
			res, err := svc.PredictKernelEngine(ctx, engine, k, g)
			return res.Latency, err
		})
		// Engines that can fold observations back in AND version their state
		// get a retrainer: a recalibration must bump the generation, or the
		// serving caches (local and cluster-wide, via gossip) would keep
		// answering from the pre-retrain model. Everything else is tracked
		// alert-only.
		for _, name := range reg.List() {
			eng, err := reg.Get(name)
			if err != nil {
				continue
			}
			cal, ok := eng.(predict.Calibrator)
			if !ok {
				continue
			}
			if _, ok := eng.(predict.Generational); !ok {
				continue
			}
			mon.RegisterRetrainer(name, func(calib []dataset.Sample) (uint64, error) {
				if err := cal.Calibrate(baseDS, calib); err != nil {
					return predict.Generation(eng), err
				}
				return predict.Generation(eng), nil
			})
		}
		if ocfg.Store != nil {
			replayed, skipped := mon.ReplayStore(context.Background())
			fmt.Printf("observe: store %s, %d persisted observations replayed (%d skipped)\n",
				*observeStore, replayed, skipped)
		}
		svc.SetObserver(mon)
		defer func() {
			if err := mon.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "neusight: closing observation store: %v\n", err)
			}
		}()
		fmt.Printf("observation ingestion on POST /v2/observe (drift threshold %.0f%%, window %d, min samples %d)\n",
			*driftThreshold*100, observe.DefaultWindow, observe.DefaultMinSamples)
	}
	// The recorder attaches before warmup so a rotated trace
	// (-warmup old.jsonl -trace-record new.jsonl) re-records the warmed
	// working set into the new file — those keys become cache hits for all
	// later live traffic and would otherwise never reach the cache-fill
	// record hook. Pointing both flags at the same file stays duplicate-free:
	// the recorder seeds its dedup set from the file's existing entries.
	if *tracePath != "" {
		var rec *serve.TraceRecorder
		var err error
		if *traceCompact > 0 {
			rec, err = serve.NewTraceRecorderCompact(*tracePath, *traceCompact)
		} else {
			rec, err = serve.NewTraceRecorder(*tracePath)
		}
		if err != nil {
			return err
		}
		defer func() {
			if err := rec.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "neusight: closing trace: %v\n", err)
			}
		}()
		svc.SetTraceRecorder(rec)
		fmt.Printf("recording workload trace to %s\n", *tracePath)
		if tc := rec.Compaction(); tc != nil {
			fmt.Printf("trace compaction: %d entries loaded, %d aged out (idle bound %d replays)\n",
				tc.Loaded, tc.AgedOut, tc.MaxIdleReplays)
		}
	}
	// Warm before listening: the first connection a client can open is
	// already served from a cache primed with the saved workload profile.
	if *warmupPath != "" {
		fmt.Printf("warming caches from trace %s...\n", *warmupPath)
		ws, err := svc.WarmFromTrace(context.Background(), *warmupPath)
		if err != nil {
			return err
		}
		fmt.Printf("warmup: %d entries, %d warmed, %d corrupt lines skipped, %d failed, %.0f ms\n",
			ws.Entries, ws.Warmed, ws.Skipped, ws.Failed, ws.DurationMs)
	}
	var handler http.Handler = serve.NewHandler(svc)
	var node *cluster.Node
	if clustered {
		self := *advertise
		if self == "" {
			self = deriveSelf(*addr)
		}
		n, err := cluster.NewNode(cluster.Config{
			Self:           self,
			Peers:          splitPeers(*peers),
			Steer:          *steer,
			Registry:       reg,
			DefaultEngine:  svc.DefaultEngine(),
			Invalidate:     svc.InvalidateEngine,
			Token:          *clusterToken,
			HealthInterval: *healthInterval,
			TraceDump:      svc.TraceJSONL,
			WarmOwned: func(data []byte, owns func(engine, gpuName string) bool) (int, error) {
				return svc.WarmFromTraceData(context.Background(), data, owns)
			},
		})
		if err != nil {
			return err
		}
		node = n
		planMgr.SetDispatcher(node.PlanDispatcher())
		if *join != "" {
			// Join before the listener opens: the seed hands back the
			// membership and generation views, and the trace warmup below
			// primes the shards this member is about to own — its first
			// steered request should be a cache hit, not a cold model run.
			if err := node.Join(context.Background(), *join); err != nil {
				return err
			}
			warmed, skipped, werr := node.WarmFromOwners(context.Background())
			if werr != nil {
				fmt.Fprintf(os.Stderr, "neusight: join warmup: %v\n", werr)
			}
			fmt.Printf("joined cluster via %s: members [%s], %d forecasts warmed (%d peers skipped)\n",
				*join, strings.Join(node.Members(), " "), warmed, skipped)
		}
		handler = node.Handler(handler)
		node.Start()
		defer node.Stop()
		if *clusterListen != "" {
			cln, err := net.Listen("tcp", *clusterListen)
			if err != nil {
				return err
			}
			ctrl := &http.Server{Handler: node.ControlHandler(), ReadHeaderTimeout: 10 * time.Second}
			go ctrl.Serve(cln)
			defer ctrl.Close()
			fmt.Printf("cluster control routes on %s\n", cln.Addr())
		}
		fmt.Printf("cluster: self %s, peers [%s], steering %s\n",
			node.Self(), strings.Join(node.Peers(), " "), node.Mode())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	layout := "unsharded"
	if n := svc.NumShards(); n > 1 {
		layout = fmt.Sprintf("%d shards", n)
	}
	fmt.Printf("serving engines [%s] on %s, default %s (cache %d entries/partition, %s)\n",
		strings.Join(reg.List(), " "), ln.Addr(), svc.DefaultEngine(), *cacheSize, layout)
	fmt.Println("endpoints: POST /v2/predict/kernel|batch|graph (per-request \"engine\")  GET /v2/engines  GET /v2/stats")
	fmt.Println("           POST /v1/predict/kernel|batch|graph (default engine)  GET /v1/healthz  GET /v1/stats  GET /metrics")
	fmt.Println("           POST|GET /v2/plan (what-if capacity sweeps)  GET|POST|DELETE /v2/plan/{id} (poll, resume, cancel)")
	if *observeFlag {
		fmt.Println("           POST /v2/observe (measured latencies -> drift detection)")
	}
	if node != nil {
		fmt.Println("           GET|POST /v2/cluster/generations (gossip)  GET /v2/cluster/ring (assignments)")
		fmt.Println("           GET /v2/cluster/health (failure detector)  POST /v2/cluster/join  GET /v2/cluster/trace")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Release the signal handler as soon as the first signal lands: the
	// drain then proceeds, but a second SIGINT/SIGTERM gets default
	// handling and force-quits instead of being swallowed for -drain.
	go func() {
		<-ctx.Done()
		stop()
	}()
	srv := &http.Server{
		Handler: handler,
		// Bound slow clients on both directions so trickled headers,
		// unread responses, or abandoned connections cannot pin goroutines
		// and file descriptors indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return runServer(ctx, srv, ln, *drain)
}

// splitPeers parses the -peers flag: comma-separated addresses, blanks
// dropped.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// deriveSelf turns the -addr listen address into an address peers can
// reach: a bare port (":8080") advertises 127.0.0.1 — right for local
// multi-process clusters; multi-host deployments pass -advertise.
func deriveSelf(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// runServer serves srv on ln until ctx is cancelled (SIGINT/SIGTERM in
// production), then shuts down gracefully: the listener closes so no new
// connections are accepted, and in-flight requests get up to drain to
// complete before the remaining connections are torn down.
func runServer(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err // listener failed before any shutdown was requested
	case <-ctx.Done():
	}
	fmt.Printf("shutting down: draining in-flight requests (up to %v)...\n", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errCh; serveErr != nil && serveErr != http.ErrServerClosed {
		return serveErr
	}
	if err != nil {
		return fmt.Errorf("serve: drain timeout exceeded: %w", err)
	}
	fmt.Println("shutdown complete")
	return nil
}

func forecast(p *core.Predictor, workload, gpuName string, batch int, trainMode, fused bool) error {
	return forecastOpts(p, workload, gpuName, batch, trainMode, fused, false)
}

func forecastOpts(p *core.Predictor, workload, gpuName string, batch int, trainMode, fused, breakdown bool) error {
	return forecastEngine(predict.NewCoreEngine(p), workload, gpuName, batch, trainMode, fused, breakdown)
}

// forecastEngine forecasts a registered workload with any engine. Engines
// with a whole-graph path (neusight) use it; others sum their per-kernel
// batch forecasts with the memory-bound fallback for operators the engine
// cannot model — the same aggregation the experiment harness applies.
func forecastEngine(eng predict.Engine, workload, gpuName string, batch int, trainMode, fused, breakdown bool) error {
	m, err := models.Lookup(workload)
	if err != nil {
		return err
	}
	g, err := gpu.Lookup(gpuName)
	if err != nil {
		return err
	}
	gr := m.InferenceGraph(batch)
	mode := "inference (first token)"
	if trainMode {
		gr = m.TrainingGraph(batch)
		mode = "training iteration (fwd+bwd)"
	}
	if fused {
		gr = graph.Fuse(gr)
		mode += ", fused"
	}
	ctx := context.Background()
	var lat float64
	var rep core.GraphReport
	if gp, ok := eng.(predict.GraphPredictor); ok {
		lat, rep, _ = gp.PredictGraph(ctx, gr, g)
	} else {
		lat, rep, _ = predict.PredictGraphKernels(ctx, eng, gr.Kernels(), g)
	}
	fmt.Printf("%s on %s, batch %d, %s\n", m.Name, g.Name, batch, mode)
	fmt.Printf("engine: %s\n", eng.Name())
	fmt.Printf("kernels: %d   total FLOPs: %.3g   predicted latency: %.1f ms\n",
		len(gr.Nodes), gr.TotalFLOPs(), lat)
	if rep.Fallbacks > 0 {
		fmt.Printf("note: %d kernels outside the engine's coverage used the memory-bound estimate\n", rep.Fallbacks)
	}
	if !m.FitsInMemory(batch, g, trainMode) {
		fmt.Printf("warning: estimated footprint %.1f GB exceeds %s memory (%.0f GB) — real execution would OOM\n",
			m.MemoryBytes(batch, trainMode)/1e9, g.Name, g.MemoryGB)
	}
	if breakdown {
		b := report.Analyze(gr, func(k kernels.Kernel) float64 {
			res, err := eng.PredictKernel(ctx, predict.Request{Kernel: k, GPU: g})
			if err != nil {
				return core.MemBoundLatency(k, g)
			}
			return res.Latency
		}, 8)
		fmt.Println()
		fmt.Print(b.Render())
	}
	return nil
}
