// Command experiments regenerates the tables and figures of the paper's
// evaluation section. With no arguments it runs everything; otherwise it
// runs the named artifacts (fig2, table1, table2, fig5, fig7, fig8,
// table6, fig9, table7, fig10, table8, table9).
//
// Results print as markdown and are also written as CSV under -outdir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"neusight/internal/experiments"
)

func main() {
	outdir := flag.String("outdir", "results", "directory for CSV outputs")
	quick := flag.Bool("quick", false, "use the reduced lab configuration (faster, noisier)")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}

	cfg := experiments.DefaultLabConfig()
	if *quick {
		cfg = experiments.QuickLabConfig()
	}
	fmt.Printf("building lab (scale %.2f): profiling simulated GPUs and training predictors...\n", cfg.Scale)
	start := time.Now()
	lab := experiments.NewLab(cfg)
	fmt.Printf("lab ready in %.1fs (%d training samples)\n\n", time.Since(start).Seconds(), lab.Data.Len())

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, lab)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.Markdown())
			path := filepath.Join(*outdir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("(%s done in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}
