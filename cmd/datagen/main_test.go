package main

import (
	"os"
	"path/filepath"
	"testing"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/tile"
)

func TestScaleCount(t *testing.T) {
	if got := scaleCount(100, 0.5); got != 50 {
		t.Fatalf("scaleCount(100, 0.5) = %d", got)
	}
	if got := scaleCount(3, 0.01); got != 1 {
		t.Fatalf("scaleCount floor = %d, want 1", got)
	}
	if got := scaleCount(10, 2); got != 20 {
		t.Fatalf("scaleCount(10, 2) = %d", got)
	}
}

// TestDatagenFlow exercises the generation + persistence path main drives.
func TestDatagenFlow(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	tilePath := filepath.Join(dir, "tiles.json")

	cfg := dataset.GenConfig{
		Seed: 1, BMM: 10, FC: 5, EW: 5, Softmax: 3, LN: 3,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}
	tdb := tile.NewDB()
	ds := dataset.Generate(cfg, gpusim.New(), tdb)
	if err := ds.SaveCSV(dataPath); err != nil {
		t.Fatal(err)
	}
	if err := tdb.Save(tilePath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{dataPath, tilePath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty: %v", p, err)
		}
	}
	back, err := dataset.LoadCSV(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost samples: %d vs %d", back.Len(), ds.Len())
	}
}

// TestAMDFlagSelectsAMDGPUs mirrors the -amd path.
func TestAMDFlagSelectsAMDGPUs(t *testing.T) {
	cfg := dataset.GenConfig{
		Seed: 2, BMM: 5, FC: 2, EW: 2, Softmax: 1, LN: 1,
		GPUs: gpu.AMDTrainSet(), MaxBMMDim: 1024,
	}
	ds := dataset.Generate(cfg, gpusim.New(), nil)
	for _, s := range ds.Samples {
		if s.GPU.Vendor != gpu.AMD {
			t.Fatalf("sample on %s, want AMD devices only", s.GPU.Name)
		}
	}
}
