// Command datagen runs the profiling campaign of paper Section 6.1 against
// the simulated training GPUs: it samples operator configurations over the
// published ranges, measures them, and writes the dataset CSV plus the tile
// database consumed by `neusight train`.
package main

import (
	"flag"
	"fmt"
	"os"

	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/tile"
)

func main() {
	seed := flag.Int64("seed", 42, "sampling seed")
	scale := flag.Float64("scale", 1.0, "multiplier on the default per-category sample counts")
	outData := flag.String("out", "data.csv", "output dataset CSV")
	outTiles := flag.String("tiles", "tiles.json", "output tile database")
	amd := flag.Bool("amd", false, "profile the AMD training GPUs (MI100, MI210) instead")
	flag.Parse()

	cfg := dataset.DefaultGenConfig(*seed)
	cfg.BMM = scaleCount(cfg.BMM, *scale)
	cfg.FC = scaleCount(cfg.FC, *scale)
	cfg.EW = scaleCount(cfg.EW, *scale)
	cfg.Softmax = scaleCount(cfg.Softmax, *scale)
	cfg.LN = scaleCount(cfg.LN, *scale)
	if *amd {
		cfg.GPUs = gpu.AMDTrainSet()
	}

	tdb := tile.NewDB()
	ds := dataset.Generate(cfg, gpusim.New(), tdb)
	if err := ds.SaveCSV(*outData); err != nil {
		fatal(err)
	}
	if err := tdb.Save(*outTiles); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d samples to %s and %d tile records to %s\n",
		ds.Len(), *outData, tdb.Len(), *outTiles)
}

func scaleCount(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
