package neusight_bench

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/distributed"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/metrics"
	"neusight/internal/models"
	"neusight/internal/network"
	"neusight/internal/tile"
)

// Integration tests: full end-to-end flows across every layer of the
// framework, the scenarios a downstream user actually runs.

var (
	integOnce sync.Once
	integPred *core.Predictor
	integSim  *gpusim.Simulator
)

func integPredictor(t *testing.T) (*core.Predictor, *gpusim.Simulator) {
	t.Helper()
	integOnce.Do(func() {
		integSim = gpusim.New()
		tdb := tile.NewDB()
		ds := dataset.Generate(dataset.GenConfig{
			Seed: 7, BMM: 250, FC: 120, EW: 90, Softmax: 45, LN: 45,
			GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
		}, integSim, tdb)
		integPred = core.NewPredictor(core.Config{
			Hidden: 48, Layers: 3, Epochs: 35, BatchSize: 256,
			LR: 3e-3, WeightDecay: 1e-4, Seed: 7,
		}, tdb)
		integPred.Train(ds)
	})
	return integPred, integSim
}

func measure(sim *gpusim.Simulator, gr *graph.Graph, g gpu.Spec) float64 {
	total := 0.0
	for _, k := range gr.Kernels() {
		if k.Category() == kernels.CatNetwork {
			continue
		}
		total += sim.KernelLatency(k, g)
	}
	return total
}

// TestUnseenModelOnUnseenGPU is the paper's headline scenario end to end.
func TestUnseenModelOnUnseenGPU(t *testing.T) {
	p, sim := integPredictor(t)
	h100 := gpu.MustLookup("H100")
	for _, name := range []string{"GPT3-XL", "GPT3-2.7B", "OPT-1.3B"} {
		gr := models.MustLookup(name).InferenceGraph(2)
		pred, _, _ := p.PredictGraph(gr, h100)
		meas := measure(sim, gr, h100)
		if e := metrics.APE(pred, meas); e > 30 {
			t.Errorf("%s on H100: error %.1f%%, want < 30%%", name, e)
		}
	}
}

// TestSaveLoadPredictEndToEnd exercises the persistence path the CLI uses.
func TestSaveLoadPredictEndToEnd(t *testing.T) {
	p, _ := integPredictor(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	tilePath := filepath.Join(dir, "tiles.json")
	if err := p.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	if err := p.TileDB.Save(tilePath); err != nil {
		t.Fatal(err)
	}
	tdb, err := tile.LoadDB(tilePath)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Load(modelPath, tdb)
	if err != nil {
		t.Fatal(err)
	}
	gr := models.MustLookup("BERT-Large").InferenceGraph(8)
	g := gpu.MustLookup("L4")
	a, _, _ := p.PredictGraph(gr, g)
	b, _, _ := back.PredictGraph(gr, g)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("reloaded predictor disagrees: %v vs %v", a, b)
	}
}

// TestTrainingForecastEndToEnd covers backward-graph derivation + predict.
func TestTrainingForecastEndToEnd(t *testing.T) {
	p, sim := integPredictor(t)
	g := gpu.MustLookup("A100-80GB")
	gr := models.MustLookup("GPT2-Large").TrainingGraph(4)
	pred, _, _ := p.PredictGraph(gr, g)
	meas := measure(sim, gr, g)
	if e := metrics.APE(pred, meas); e > 30 {
		t.Fatalf("training forecast error %.1f%%, want < 30%%", e)
	}
	// Training must cost ~3x inference.
	inf, _, _ := p.PredictGraph(models.MustLookup("GPT2-Large").InferenceGraph(4), g)
	if r := pred / inf; r < 2 || r > 4.5 {
		t.Fatalf("train/infer prediction ratio = %v", r)
	}
}

// TestFusionEndToEnd: fusion must speed up both measurement and forecast.
func TestFusionEndToEnd(t *testing.T) {
	p, sim := integPredictor(t)
	g := gpu.MustLookup("A100-40GB")
	plain := models.MustLookup("GPT2-Large").InferenceGraph(4)
	fused := graph.Fuse(plain)
	if measure(sim, fused, g) >= measure(sim, plain, g) {
		t.Fatal("fusion must reduce measured latency")
	}
	pf, _, _ := p.PredictGraph(fused, g)
	pp, _, _ := p.PredictGraph(plain, g)
	if pf >= pp {
		t.Fatal("fusion must reduce predicted latency")
	}
}

// TestVariantArchitecturesPredictable: every kernel of the extended model
// zoo (T5, Llama, ResNet-50) resolves to a positive forecast.
func TestVariantArchitecturesPredictable(t *testing.T) {
	p, _ := integPredictor(t)
	g := gpu.MustLookup("H100")
	t5 := models.T5Large()
	t5.EncLayers, t5.DecLayers = 4, 4
	llama := models.Llama7B()
	llama.Layers = 4
	graphs := []*graph.Graph{
		t5.InferenceGraph(2),
		llama.InferenceGraph(1),
		models.ResNet50InferenceGraph(32),
	}
	for _, gr := range graphs {
		v, _, rerr := p.PredictGraph(gr, g)
		if rerr != nil {
			t.Errorf("%s: %v", gr.Name, rerr)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: forecast = %v", gr.Name, v)
		}
	}
}

// TestDistributedEndToEnd runs the whole Table 8 stack on one row.
func TestDistributedEndToEnd(t *testing.T) {
	p, sim := integPredictor(t)
	srv := gpu.MustLookupServer("H100x4-DGX")
	netSim := network.NewSim()
	link := network.Calibrate(netSim, gpu.MustLookupServer("V100x4-NVLink"))
	plan := distributed.Plan{
		Model: models.MustLookup("GPT2-Large"), GlobalBatch: 4,
		Server: srv, Strategy: distributed.TensorParallel, Training: true,
	}
	predLat := func(k kernels.Kernel) float64 {
		v, err := p.PredictKernel(k, srv.GPU)
		if err != nil {
			return core.MemBoundLatency(k, srv.GPU)
		}
		return v
	}
	simLat := func(k kernels.Kernel) float64 { return sim.KernelLatency(k, srv.GPU) }
	meas, err := distributed.Estimate(plan, simLat, netSim)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := distributed.Estimate(plan, predLat, link)
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.APE(pred.TotalMs, meas.TotalMs); e > 30 {
		t.Fatalf("distributed error %.1f%%, want < 30%%", e)
	}
}

// TestUpcomingGPUForecast: forecasting B200 — no ground truth, but physics
// must hold: faster than H100 on a compute-bound workload, positive and
// finite, and never above the roofline bound.
func TestUpcomingGPUForecast(t *testing.T) {
	p, _ := integPredictor(t)
	b200 := gpu.MustLookup("B200")
	h100 := gpu.MustLookup("H100")
	gr := models.MustLookup("GPT3-XL").InferenceGraph(4)
	fb, _, _ := p.PredictGraph(gr, b200)
	fh, _, _ := p.PredictGraph(gr, h100)
	if fb <= 0 || math.IsNaN(fb) {
		t.Fatalf("B200 forecast = %v", fb)
	}
	if fb >= fh {
		t.Fatalf("B200 forecast %v should beat H100 %v", fb, fh)
	}
	// Physical floor: the roofline latency of the dominant GEMMs.
	roofline := 0.0
	for _, k := range gr.Kernels() {
		if k.Category() == kernels.CatNetwork {
			continue
		}
		fp16 := k.DType == kernels.FP16
		c := k.FLOPs() / (b200.PeakFLOPSFor(fp16) * 1e12)
		m := k.MemBytes() / (b200.MemoryBWGBs * 1e9)
		roofline += math.Max(c, m) * 1e3
	}
	if fb < roofline {
		t.Fatalf("B200 forecast %v beats the roofline bound %v — impossible", fb, roofline)
	}
}

// TestDeterministicForecasts: the same seed yields byte-identical models.
func TestDeterministicForecasts(t *testing.T) {
	build := func() float64 {
		sim := gpusim.New()
		tdb := tile.NewDB()
		ds := dataset.Generate(dataset.GenConfig{
			Seed: 99, BMM: 60, FC: 30, EW: 20, Softmax: 10, LN: 10,
			GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
		}, sim, tdb)
		p := core.NewPredictor(core.Config{
			Hidden: 24, Layers: 2, Epochs: 10, BatchSize: 128,
			LR: 3e-3, Seed: 99,
		}, tdb)
		p.Train(ds)
		v, err := p.PredictKernel(kernels.NewBMM(8, 512, 512, 512), gpu.MustLookup("T4"))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("non-deterministic training: %v vs %v", a, b)
	}
}
