// Package neusight_bench provides one testing.B benchmark per table and
// figure of the paper's evaluation (Section 6). Each benchmark builds (or
// reuses) a reduced-scale lab — profiling the simulated GPUs and training
// every predictor — and then regenerates the corresponding artifact,
// reporting the headline error metric alongside the runtime.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The full-scale artifacts (larger datasets, longer training) come from
// `go run ./cmd/experiments`.
package neusight_bench

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"neusight/internal/experiments"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

// lab lazily builds the shared reduced-scale lab. Build time is excluded
// from individual benchmark timings via b.ResetTimer.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() { benchLab = experiments.NewLab(experiments.QuickLabConfig()) })
	return benchLab
}

// reportAvgError extracts a trailing percentage cell from the last rows and
// reports it as a custom benchmark metric.
func reportAvgError(b *testing.B, t *experiments.Table, col int, metric string) {
	b.Helper()
	for i := len(t.Rows) - 1; i >= 0; i-- {
		if strings.HasPrefix(t.Rows[i][0], "AVERAGE") {
			cell := strings.TrimSuffix(t.Rows[i][col], "%")
			if v, err := strconv.ParseFloat(cell, 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

func runExperiment(b *testing.B, id string) []*experiments.Table {
	l := lab(b)
	b.ResetTimer()
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Run(id, l)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// BenchmarkFig2PriorWorkBMM regenerates Figure 2: Habitat and Li et al.
// prediction error on BMM across dimensions and GPUs.
func BenchmarkFig2PriorWorkBMM(b *testing.B) {
	tables := runExperiment(b, "fig2")
	if len(tables) != 2 {
		b.Fatalf("fig2 produced %d tables", len(tables))
	}
}

// BenchmarkTable1LargerPredictors regenerates Table 1: bigger direct
// regressors (deeper MLPs, transformers) still failing out of distribution.
func BenchmarkTable1LargerPredictors(b *testing.B) {
	runExperiment(b, "table1")
}

// BenchmarkTable2Utilization regenerates Table 2: H100 compute utilization
// of the BERT-shaped GEMM across batch sizes.
func BenchmarkTable2Utilization(b *testing.B) {
	runExperiment(b, "table2")
}

// BenchmarkFig5WaveScaling regenerates Figure 5: throughput vs wave count
// on V100.
func BenchmarkFig5WaveScaling(b *testing.B) {
	runExperiment(b, "fig5")
}

// BenchmarkFig7EndToEnd regenerates Figure 7: end-to-end inference and
// training prediction error of NeuSight vs roofline/Habitat/Li et al.
// The reported neusight_avg_pct metric is the paper's headline number.
func BenchmarkFig7EndToEnd(b *testing.B) {
	tables := runExperiment(b, "fig7")
	reportAvgError(b, tables[0], 4, "neusight_infer_avg_pct")
	reportAvgError(b, tables[1], 4, "neusight_train_avg_pct")
}

// BenchmarkFig8PerOperator regenerates Figure 8: per-operator-type error.
func BenchmarkFig8PerOperator(b *testing.B) {
	runExperiment(b, "fig8")
}

// BenchmarkTable6Contribution regenerates Table 6: per-operator latency
// contribution on H100.
func BenchmarkTable6Contribution(b *testing.B) {
	runExperiment(b, "table6")
}

// BenchmarkFig9AMD regenerates Figure 9: cross-vendor prediction on the
// held-out MI250.
func BenchmarkFig9AMD(b *testing.B) {
	tables := runExperiment(b, "fig9")
	reportAvgError(b, tables[0], 4, "amd_infer_avg_pct")
	reportAvgError(b, tables[1], 4, "amd_train_avg_pct")
}

// BenchmarkTable7Fusion regenerates Table 7: fused-operator prediction.
func BenchmarkTable7Fusion(b *testing.B) {
	runExperiment(b, "table7")
}

// BenchmarkFig10FP16TensorCore regenerates Figure 10: FP16 tensor-core BMM
// prediction on H100.
func BenchmarkFig10FP16TensorCore(b *testing.B) {
	tables := runExperiment(b, "fig10")
	reportAvgError(b, tables[0], 4, "fp16_avg_pct")
}

// BenchmarkTable8Distributed regenerates Table 8: distributed training
// prediction on the 4-GPU servers.
func BenchmarkTable8Distributed(b *testing.B) {
	tables := runExperiment(b, "table8")
	reportAvgError(b, tables[0], 6, "distributed_avg_pct")
}

// BenchmarkTable9MultiNode regenerates Table 9: the multi-node GPT-3
// forecast.
func BenchmarkTable9MultiNode(b *testing.B) {
	runExperiment(b, "table9")
}

// BenchmarkLabBuild measures the full pipeline cost: dataset generation on
// five simulated GPUs plus training all five NeuSight MLPs and both
// baselines (the step every other benchmark amortizes).
func BenchmarkLabBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.NewLab(experiments.QuickLabConfig())
	}
}

// BenchmarkServeThroughput measures the serving layer (internal/serve)
// under a repeated workload: the kernels of a BERT-Large inference graph
// queried round-robin from parallel clients, the traffic shape the LRU
// prediction cache is built for. It reports sustained predictions/sec and
// the cache hit rate — on repeats of a real graph the hit rate must be
// well above zero, since transformer layers reuse identical kernel shapes.
func BenchmarkServeThroughput(b *testing.B) {
	l := lab(b)
	svc := serve.New(l.NeuSight, serve.Config{CacheSize: serve.DefaultCacheSize})
	g := gpu.MustLookup("H100")
	m, err := models.Lookup("BERT-Large")
	if err != nil {
		b.Fatal(err)
	}
	ks := ks4bench(m.InferenceGraph(2).Kernels())
	if len(ks) == 0 {
		b.Fatal("no predictable kernels in the benchmark graph")
	}

	var idx atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := ks[int(idx.Add(1))%len(ks)]
			if _, err := svc.PredictKernel(k, g); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()

	st := svc.Stats()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(st.Requests)/secs, "predictions/sec")
	}
	b.ReportMetric(st.HitRate*100, "cache_hit_pct")
	if b.N > len(ks) && st.HitRate == 0 {
		b.Errorf("cache hit rate = 0 after %d requests over %d unique kernels", st.Requests, len(ks))
	}
}

// BenchmarkServeBatchThroughput measures the batched serving path: the
// kernels of a BERT-Large inference graph submitted as whole batches from
// parallel clients via Service.PredictBatch. The first batches miss and are
// evaluated in one compiled forward pass per operator category; steady
// state serves from cache. Compare kernels/sec against the per-request
// predictions/sec of BenchmarkServeThroughput.
func BenchmarkServeBatchThroughput(b *testing.B) {
	l := lab(b)
	svc := serve.New(l.NeuSight, serve.Config{CacheSize: serve.DefaultCacheSize})
	g := gpu.MustLookup("H100")
	m, err := models.Lookup("BERT-Large")
	if err != nil {
		b.Fatal(err)
	}
	ks := ks4bench(m.InferenceGraph(2).Kernels())
	if len(ks) == 0 {
		b.Fatal("no predictable kernels in the benchmark graph")
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_, errs := svc.PredictBatch(ks, g)
			for _, err := range errs {
				if err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()

	st := svc.Stats()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(st.BatchedKernels)/secs, "kernels/sec")
	}
	b.ReportMetric(float64(len(ks)), "batch_size")
	b.ReportMetric(st.HitRate*100, "cache_hit_pct")
}

// BenchmarkShardedThroughput measures what (engine, GPU) sharding buys on
// a mixed multi-GPU workload: the kernels of a BERT-Large inference graph
// queried round-robin across every registered GPU from parallel clients,
// all traffic cache-resident after a prewarm pass. On the single-lock
// path (shards=1) every hit serializes on one LRU mutex; sharded, the
// (engine, GPU) keys spread across shards and the lock domains stop
// contending. Compare predictions/sec between the sub-benchmarks.
//
// The engine is the analytical roofline bound so the measurement isolates
// the serving layer: with a near-free backend and a 100% steady-state hit
// rate, lock contention is the only thing left to measure.
func BenchmarkShardedThroughput(b *testing.B) {
	m, err := models.Lookup("BERT-Large")
	if err != nil {
		b.Fatal(err)
	}
	ks := ks4bench(m.InferenceGraph(2).Kernels())
	gpus := gpu.All()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reg := predict.NewRegistry()
			reg.MustRegister(predict.NewRooflineEngine())
			svc := serve.NewMulti(reg, predict.EngineRoofline,
				serve.Config{CacheSize: serve.DefaultCacheSize, Shards: shards})
			// Prewarm: every (kernel, GPU) key resident before the clock
			// starts, so the measurement is the steady-state hit path.
			for _, g := range gpus {
				if _, err := svc.PredictBatchEngine(context.Background(), "", ks, g); err != nil {
					b.Fatal(err)
				}
			}
			// Workers walk the key space from per-goroutine counters with
			// distinct offsets — a shared atomic index would add a global
			// contention point to a benchmark whose whole purpose is
			// measuring the removal of global lock contention.
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(worker.Add(1)) * 7919 // distinct stride-offset per worker
				for pb.Next() {
					i++
					k := ks[i%len(ks)]
					g := gpus[i%len(gpus)]
					if _, err := svc.PredictKernel(k, g); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := svc.Stats()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "predictions/sec")
			}
			b.ReportMetric(st.HitRate*100, "cache_hit_pct")
		})
	}
}

// ks4bench filters out network kernels, which the kernel predictor
// rejects by design.
func ks4bench(all []kernels.Kernel) []kernels.Kernel {
	var ks []kernels.Kernel
	for _, k := range all {
		if k.Category() != kernels.CatNetwork {
			ks = append(ks, k)
		}
	}
	return ks
}
