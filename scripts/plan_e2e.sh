#!/usr/bin/env bash
# plan_e2e.sh — end-to-end gate for the fleet planner: submit a small
# what-if sweep against a 2-member in-process cluster (one command, no
# process management), poll the async job to completion, and assert the
# ranking is non-empty, complete (every cell exactly once, none errored),
# and stable — the same fixed seed on a fresh cluster must produce the
# same top configurations — with at least some cells fanned to the peer.
#
# Run by scripts/check.sh (full mode) and the ci.yml plan-e2e step.
set -euo pipefail
cd "$(dirname "$0")/.."

out1=$(mktemp)
out2=$(mktemp)
trap 'rm -f "$out1" "$out2"' EXIT

run_plan() {
  go run ./cmd/neusight plan -self roofline -self-cluster 2 \
    -model BERT-Large -gpus T4,L4,V100,A100-80GB -strategies dp,tp -fleets 1,2 \
    -seed 7 -timeout 120s -out "$1" >/dev/null
}

echo "==> plan e2e: run 1 (2-member self-cluster, seed 7)"
run_plan "$out1"
echo "==> plan e2e: run 2 (same seed, fresh cluster)"
run_plan "$out2"

python3 - "$out1" "$out2" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
for name, doc in (("run 1", a), ("run 2", b)):
    if doc.get("state") != "done":
        raise SystemExit(f"plan_e2e: {name} state {doc.get('state')!r}, want done")
    if not doc.get("total") or doc.get("evaluated") != doc["total"]:
        raise SystemExit(f"plan_e2e: {name} evaluated "
                         f"{doc.get('evaluated')}/{doc.get('total')} cells")
    ranking = doc.get("ranking") or []
    if len(ranking) != doc["total"]:
        raise SystemExit(f"plan_e2e: {name} ranking has {len(ranking)} cells, "
                         f"want {doc['total']}")
    if len({r["index"] for r in ranking}) != doc["total"]:
        raise SystemExit(f"plan_e2e: {name} ranked a cell twice")
    errored = [r for r in ranking if r.get("error")]
    if errored:
        raise SystemExit(f"plan_e2e: {name} has errored cells: "
                         f"{errored[0]['error']}")
key = lambda r: (r["gpu"], r["strategy"], r["fleet"])
top_a = [key(r) for r in a["ranking"][:3]]
top_b = [key(r) for r in b["ranking"][:3]]
if top_a != top_b:
    raise SystemExit(f"plan_e2e: unstable ranking under a fixed seed: "
                     f"{top_a} vs {top_b}")
fanned = a.get("remote_cells", 0) + b.get("remote_cells", 0)
if fanned == 0:
    raise SystemExit("plan_e2e: no cell was evaluated by a peer — "
                     "cluster fan-out is dead")
print(f"plan_e2e: OK — {a['total']} cells, top config "
      f"{'/'.join(map(str, top_a[0]))}, "
      f"{a.get('remote_cells', 0)}+{b.get('remote_cells', 0)} cells "
      f"evaluated by the peer")
EOF
