#!/usr/bin/env bash
# e2e_cluster.sh — kill-a-member end-to-end exercise against real
# processes. Three `neusight serve` members form a token-protected proxy
# cluster; one is SIGKILLed mid-traffic. The gate asserts:
#
#   1. every request sent to a surviving member answers 200 throughout
#      the outage — replica fall-through, never a sustained 502;
#   2. the failure detector evicts the corpse (health endpoint reports
#      it dead, the ring stops assigning it shards);
#   3. restarting the member at the same address via -join readmits it
#      and the ring heals.
#
# Run by scripts/check.sh in full mode; standalone: scripts/e2e_cluster.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TOKEN=e2e-cluster-secret
GPUS=(P4 P100 V100 T4 A100-40GB A100-80GB L4 H100 B200 MI100 MI210 MI250)

workdir=$(mktemp -d)
pids=()
cleanup() {
  ((${#pids[@]})) && kill -9 "${pids[@]}" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "e2e_cluster: building neusight"
go build -o "$workdir/neusight" ./cmd/neusight

pick_port() {
  python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()'
}
A=127.0.0.1:$(pick_port)
B=127.0.0.1:$(pick_port)
C=127.0.0.1:$(pick_port)

start_member() { # addr cluster-flag log-name -> appends pid to $pids
  local addr=$1 flag=$2 log=$3
  "$workdir/neusight" serve -addr "$addr" -engines roofline -steer proxy \
    -cluster-token "$TOKEN" -health-interval 100ms $flag \
    >"$workdir/$log.log" 2>&1 &
  pids+=($!)
  disown $! # keep SIGKILL job-control noise out of the gate's output
}

wait_ready() { # addr
  for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "http://$1/v1/healthz" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "e2e_cluster: member $1 never became ready" >&2
  sed 's/^/  /' "$workdir"/*.log >&2 || true
  return 1
}

member_state() { # observer-addr member-addr -> prints alive|suspect|dead|missing
  curl -fsS -H "Authorization: Bearer $TOKEN" "http://$1/v2/cluster/health" |
    python3 -c '
import json, sys
d = json.load(sys.stdin)
print(next((m["state"] for m in d["members"] if m["addr"] == sys.argv[1]), "missing"))
' "$2"
}

predict() { # gpu target-addr -> prints http status
  curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' \
    -d "{\"op\":\"bmm\",\"b\":4,\"m\":128,\"k\":128,\"n\":128,\"dtype\":\"fp16\",\"gpu\":\"$1\",\"engine\":\"roofline\"}" \
    "http://$2/v2/predict/kernel"
}

fire_round() { # fire one request per GPU at each surviving member; fail on any non-200
  local addr code g
  for addr in "$@"; do
    for g in "${GPUS[@]}"; do
      code=$(predict "$g" "$addr")
      if [[ "$code" != 200 ]]; then
        echo "e2e_cluster: POST /v2/predict/kernel gpu=$g via $addr -> $code (want 200)" >&2
        return 1
      fi
    done
  done
}

echo "e2e_cluster: starting 3-member cluster ($A, $B, $C)"
start_member "$A" "-peers $B,$C" a
start_member "$B" "-peers $A,$C" b
start_member "$C" "-peers $A,$B" c
B_PID=${pids[1]}
wait_ready "$A"; wait_ready "$B"; wait_ready "$C"

# Control-plane auth: tokenless access to any cluster route is a 401.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$A/v2/cluster/ring")
if [[ "$code" != 401 ]]; then
  echo "e2e_cluster: tokenless /v2/cluster/ring -> $code (want 401)" >&2
  exit 1
fi

# The ring hands every shard a replica distinct from its primary.
curl -fsS -H "Authorization: Bearer $TOKEN" "http://$A/v2/cluster/ring" |
  python3 -c '
import json, sys
d = json.load(sys.stdin)
bad = [a for a in d["assignments"] if not a.get("replica") or a["replica"] == a["owner"]]
if bad:
    raise SystemExit(f"e2e_cluster: {len(bad)} assignments without a distinct replica")
'

echo "e2e_cluster: pre-kill traffic round"
fire_round "$A" "$B" "$C"

echo "e2e_cluster: SIGKILL member $B (pid $B_PID)"
kill -9 "$B_PID"

# Mid-outage: keep firing at the survivors until A declares B dead.
# Every single response must be 200 — B's shards fail over to replicas.
deadline=$((SECONDS + 20))
while :; do
  fire_round "$A" "$C"
  state=$(member_state "$A" "$B")
  [[ "$state" == dead ]] && break
  if ((SECONDS >= deadline)); then
    echo "e2e_cluster: $B never declared dead (state=$state)" >&2
    exit 1
  fi
done
echo "e2e_cluster: $B evicted (dead); replica served every request"

# Eviction reached the ring: no shard is assigned to the corpse.
curl -fsS -H "Authorization: Bearer $TOKEN" "http://$A/v2/cluster/ring" |
  python3 -c '
import json, sys
d = json.load(sys.stdin)
dead = sys.argv[1]
if dead in d["members"]:
    raise SystemExit(f"e2e_cluster: dead member {dead} still in ring members")
owned = [a for a in d["assignments"] if a["owner"] == dead or a.get("replica") == dead]
if owned:
    raise SystemExit(f"e2e_cluster: dead member {dead} still owns {len(owned)} shards")
' "$B"

echo "e2e_cluster: restarting $B via -join $A"
start_member "$B" "-join $A" b2
wait_ready "$B"

deadline=$((SECONDS + 20))
until [[ $(member_state "$A" "$B") == alive ]]; do
  if ((SECONDS >= deadline)); then
    echo "e2e_cluster: restarted $B never readmitted (state=$(member_state "$A" "$B"))" >&2
    exit 1
  fi
  sleep 0.2
done
echo "e2e_cluster: $B readmitted (alive); ring healed"

echo "e2e_cluster: post-restart traffic round"
fire_round "$A" "$B" "$C"

echo "e2e_cluster: OK"
