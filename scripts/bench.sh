#!/usr/bin/env bash
# bench.sh — run the serving-layer benchmarks and emit BENCH_serve.json,
# the machine-readable perf snapshot CI uploads as an artifact on every
# build. Runs the three serving benchmarks (per-request, batched, sharded
# throughput) with -benchmem -count=3 so every sample carries
# predictions/sec, cache hit rate, and allocs/op, with enough repeats to
# eyeball run-to-run noise.
#
#   scripts/bench.sh                 # writes BENCH_serve.json in the repo root
#   scripts/bench.sh --sweep         # additionally run the stepped SLO-knee
#                                    # sweep (neusight loadgen) and embed the
#                                    # result under the "sweep" key
#   scripts/bench.sh --cluster-sweep # boot a 3-member in-process cluster and
#                                    # embed its cluster-knee sweep under the
#                                    # "cluster_sweep" key
#   scripts/bench.sh --plan-sweep    # run the fleet-planner matrix benchmark
#                                    # (configurations evaluated/s, single node
#                                    # vs 3-member fan-out) and embed it under
#                                    # the "plan_sweep" key
#   BENCH_OUT=path scripts/bench.sh  # write elsewhere
#   BENCH_TIME=2s BENCH_COUNT=5 scripts/bench.sh  # heavier measurement
#   SWEEP_SCHEDULE=100:100:4000 scripts/bench.sh --sweep  # custom schedule
#
# The default benchtime is iteration-bounded (not wall-clock) so CI pays a
# bounded cost; for real measurement on quiet hardware, raise BENCH_TIME.
# The committed BENCH_serve.json is the repo's perf trajectory: regenerate
# it with --sweep --cluster-sweep --plan-sweep when a PR changes the
# serving, cluster, planner, or prediction hot paths.
#
# A sweep that fails validation (most commonly: no knee, because the first
# step already breached SLO) fails this script loudly — non-zero exit, a
# ::error annotation, and the partial artifact removed — so a knee-less
# BENCH_serve.json can never be committed or uploaded by accident.
set -euo pipefail
cd "$(dirname "$0")/.."

sweep=0
cluster_sweep=0
plan_sweep=0
for arg in "$@"; do
  case "$arg" in
    --sweep) sweep=1 ;;
    --cluster-sweep) cluster_sweep=1 ;;
    --plan-sweep) plan_sweep=1 ;;
    *) echo "bench.sh: unknown argument $arg (want --sweep, --cluster-sweep, and/or --plan-sweep)" >&2; exit 2 ;;
  esac
done
sweep_out=""
cluster_out=""
plan_single_out=""
plan_cluster_out=""
trap 'rm -f "${sweep_out:-}" "${cluster_out:-}" "${plan_single_out:-}" "${plan_cluster_out:-}"' EXIT

# fail_sweep <message> — a sweep produced an invalid or knee-less report.
# Annotate for CI, drop the partial artifact (a BENCH_serve.json without
# the sweep key it was asked to carry must not survive to be committed or
# uploaded), and exit non-zero.
fail_sweep() {
  echo "::error::bench.sh: $1" >&2
  rm -f "$out"
  exit 1
}

out="${BENCH_OUT:-BENCH_serve.json}"
count="${BENCH_COUNT:-3}"
benchtime="${BENCH_TIME:-2000x}"
pattern='ServeThroughput|ServeBatchThroughput|ShardedThroughput|ObserveIngest'

echo "==> go test -bench '$pattern' -benchmem -benchtime=$benchtime -count=$count . ./internal/observe"
raw=$(go test -run '^$' -bench "$pattern" -benchmem -benchtime="$benchtime" -count="$count" . ./internal/observe)
echo "$raw"

# Parse `go test -bench` output into JSON. Benchmark lines have the shape
#   BenchmarkName-P  N  <value unit> <value unit> ...
# where custom metrics (predictions/sec, cache_hit_pct, ...) sit between
# ns/op and the -benchmem pair. Units become JSON keys: "/" -> "_per_",
# other non-identifier characters -> "_".
echo "$raw" | awk -v count="$count" -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    line = sprintf("{\"name\":\"%s\",\"iterations\":%s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
      key = $(i + 1)
      gsub(/\//, "_per_", key)
      gsub(/[^A-Za-z0-9_]/, "_", key)
      line = line sprintf(",\"%s\":%s", key, $i)
    }
    runs[++m] = line "}"
  }
  END {
    if (m == 0) {
      print "bench.sh: no benchmark lines parsed" > "/dev/stderr"
      exit 1
    }
    printf "{\"benchtime\":\"%s\",\"count\":%s,\"runs\":[", benchtime, count
    for (i = 1; i <= m; i++) {
      if (i > 1) printf ","
      printf "%s", runs[i]
    }
    print "]}"
  }
' > "$out"

# The artifact must be valid JSON and carry the headline metrics.
python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = {r["name"].split("/")[0] for r in doc["runs"]}
want = {"ServeThroughput", "ServeBatchThroughput", "ShardedThroughput", "ObserveIngest"}
missing = want - names
if missing:
    raise SystemExit(f"bench.sh: benchmarks missing from output: {sorted(missing)}")
if not any("predictions_per_sec" in r for r in doc["runs"]):
    raise SystemExit("bench.sh: no predictions_per_sec metric parsed")
if not any("allocs_per_op" in r for r in doc["runs"]):
    raise SystemExit("bench.sh: no allocs_per_op metric parsed")
if not any("cache_hit_pct" in r for r in doc["runs"]):
    raise SystemExit("bench.sh: no cache_hit_pct metric parsed")
print(f"bench.sh: {len(doc['runs'])} runs across {len(names)} benchmarks")
EOF

# --sweep: run the stepped SLO-knee sweep against a self-served roofline
# target and embed the loadgen report under doc["sweep"]. The schedule and
# SLO are fixed (overridable via env) so consecutive commits of
# BENCH_serve.json are comparable: same offered-rate ladder, same breach
# criteria, only the measured knee moves.
if [[ "$sweep" == 1 ]]; then
  schedule="${SWEEP_SCHEDULE:-250:250:6000}"
  step_duration="${SWEEP_STEP_DURATION:-1s}"
  sweep_out=$(mktemp)
  echo "==> neusight loadgen -sweep $schedule (self-served roofline target)"
  go run ./cmd/neusight loadgen -self roofline -cache -1 -workers 2 \
    -mix "kernel=0.5,batch=0.3,graph=0.2" -models BERT-Large,GPT2-Large \
    -gpus H100,V100 -seed 7 \
    -sweep "$schedule" -step-duration "$step_duration" \
    -slo-p99 20 -slo-errors 0.02 -out "$sweep_out"

  python3 - "$out" "$sweep_out" <<'EOF' || fail_sweep "single-node sweep validation failed (see above) — partial $out removed"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
with open(sys.argv[2]) as f:
    report = json.load(f)
if report.get("kind") != "neusight-loadgen":
    raise SystemExit(f"bench.sh: sweep report has kind {report.get('kind')!r}")
sweep = report.get("sweep") or {}
if not sweep.get("steps"):
    raise SystemExit("bench.sh: sweep ran no steps")
knee = sweep.get("knee")
if not knee:
    raise SystemExit("bench.sh: sweep found no knee — the first step already "
                     "breached; lower SWEEP_SCHEDULE's start")
for key in ("offered_rate", "p50_ms", "p99_ms", "p999_ms", "error_rate"):
    if key not in knee:
        raise SystemExit(f"bench.sh: knee is missing {key}")
doc["sweep"] = report
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench.sh: knee at {knee['offered_rate']:.0f}/s "
      f"(p99 {knee['p99_ms']:.3f} ms, errors {knee['error_rate']:.4f}) "
      f"over {len(sweep['steps'])} steps")
EOF
fi

# --cluster-sweep: boot a 3-member in-process cluster (one command, no
# process management), walk the same offered-rate ladder across it, and
# embed the loadgen report under doc["cluster_sweep"]. The knee here is a
# cluster-level capacity claim: members discover each other over the real
# /v2/cluster control plane and the stream splits by shard ownership, so
# the number moves when membership, steering, or failover change — not
# just when the serving hot path does.
if [[ "$cluster_sweep" == 1 ]]; then
  cschedule="${CLUSTER_SWEEP_SCHEDULE:-250:250:6000}"
  cstep_duration="${CLUSTER_SWEEP_STEP_DURATION:-1s}"
  cluster_out=$(mktemp)
  echo "==> neusight loadgen -self-cluster 3 -sweep $cschedule (3-member local cluster)"
  go run ./cmd/neusight loadgen -self roofline -self-cluster 3 -cache -1 -workers 2 \
    -mix "kernel=0.5,batch=0.3,graph=0.2" -models BERT-Large,GPT2-Large \
    -gpus H100,V100,A100-40GB,P100 -seed 7 \
    -sweep "$cschedule" -step-duration "$cstep_duration" \
    -slo-p99 20 -slo-errors 0.02 -out "$cluster_out"

  python3 - "$out" "$cluster_out" <<'EOF' || fail_sweep "cluster sweep validation failed (see above) — partial $out removed"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
with open(sys.argv[2]) as f:
    report = json.load(f)
if report.get("kind") != "neusight-loadgen":
    raise SystemExit(f"bench.sh: cluster sweep report has kind {report.get('kind')!r}")
sweep = report.get("cluster_sweep") or {}
if not sweep.get("steps"):
    raise SystemExit("bench.sh: cluster sweep ran no steps")
knee = sweep.get("knee")
if not knee:
    raise SystemExit("bench.sh: cluster sweep found no knee — the first step "
                     "already breached; lower CLUSTER_SWEEP_SCHEDULE's start")
for key in ("offered_rate", "p50_ms", "p99_ms", "p999_ms", "error_rate"):
    if key not in knee:
        raise SystemExit(f"bench.sh: cluster knee is missing {key}")
if not any(s.get("members") for s in sweep["steps"]):
    raise SystemExit("bench.sh: cluster sweep has no per-member breakdown")
doc["cluster_sweep"] = report
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
line = (f"bench.sh: cluster knee at {knee['offered_rate']:.0f}/s "
        f"(p99 {knee['p99_ms']:.3f} ms, errors {knee['error_rate']:.4f}) "
        f"over {len(sweep['steps'])} steps")
single = ((doc.get("sweep") or {}).get("sweep") or {}).get("knee")
if single:
    line += f"; single-node knee {single['offered_rate']:.0f}/s"
    if knee["offered_rate"] < single["offered_rate"]:
        print("bench.sh: WARNING: cluster knee below single-node knee — "
              "noisy host or a steering regression", file=sys.stderr)
print(line)
EOF
fi

# --plan-sweep: benchmark the fleet planner — one fixed what-if matrix
# (6 GPUs x 3 strategies x 3 fleet sizes = 54 configurations) evaluated
# through /v2/plan twice: on a single self-served node and fanned across a
# 3-member in-process cluster. The headline metric is configurations
# evaluated per second; the pair makes fan-out speedup (and any regression
# in it) visible in the committed trajectory.
if [[ "$plan_sweep" == 1 ]]; then
  plan_matrix=(-model BERT-Large -gpus T4,L4,V100,P100,A100-80GB,H100
               -strategies dp,tp,pp -fleets 1,2,4 -seed 7 -timeout 300s -top 1)
  plan_single_out=$(mktemp)
  plan_cluster_out=$(mktemp)
  echo "==> neusight plan -self roofline (single node, 54-cell matrix)"
  go run ./cmd/neusight plan -self roofline "${plan_matrix[@]}" -out "$plan_single_out"
  echo "==> neusight plan -self roofline -self-cluster 3 (cluster fan-out)"
  go run ./cmd/neusight plan -self roofline -self-cluster 3 "${plan_matrix[@]}" -out "$plan_cluster_out"

  python3 - "$out" "$plan_single_out" "$plan_cluster_out" <<'EOF' || fail_sweep "plan sweep validation failed (see above) — partial $out removed"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)

def summarize(path, name, want_remote):
    with open(path) as f:
        st = json.load(f)
    if st.get("state") != "done":
        raise SystemExit(f"bench.sh: plan sweep {name} ended {st.get('state')!r}, want done")
    if not st.get("total") or st.get("evaluated") != st["total"]:
        raise SystemExit(f"bench.sh: plan sweep {name} evaluated "
                         f"{st.get('evaluated')}/{st.get('total')} cells")
    if not st.get("configs_per_sec"):
        raise SystemExit(f"bench.sh: plan sweep {name} reports no configs_per_sec")
    if want_remote and not st.get("remote_cells"):
        raise SystemExit(f"bench.sh: plan sweep {name} fanned no cell to a peer")
    top = (st.get("ranking") or [{}])[0]
    return {
        "total": st["total"],
        "elapsed_sec": st["elapsed_sec"],
        "configs_per_sec": st["configs_per_sec"],
        "remote_cells": st.get("remote_cells", 0),
        "redispatched_batches": st.get("redispatched_batches", 0),
        "top_config": {k: top.get(k) for k in ("gpu", "strategy", "fleet",
                                               "throughput_per_cost")},
    }

single = summarize(sys.argv[2], "single-node", want_remote=False)
clustered = summarize(sys.argv[3], "3-member", want_remote=True)
doc["plan_sweep"] = {"single": single, "cluster": clustered}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
speedup = clustered["configs_per_sec"] / single["configs_per_sec"]
print(f"bench.sh: plan sweep {single['total']} cells — "
      f"{single['configs_per_sec']:.1f} configs/s single, "
      f"{clustered['configs_per_sec']:.1f} configs/s on 3 members "
      f"({speedup:.2f}x, {clustered['remote_cells']} cells on peers)")
EOF
fi

echo "wrote $out"
