#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally. Referenced from
# README.md; run it before sending a PR.
#
#   scripts/check.sh          full gate: fmt, vet, build, race-enabled tests
#   scripts/check.sh -fast    skip the race detector (plain `go test ./...`)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "-fast" ]]; then
  fast=1
fi

# gofmt -l recurses from the repo root, so every .go file is covered —
# including files in newly added directories and files excluded by build
# constraints that `go list` would skip.
echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "==> go vet ./..."
go vet ./...

# staticcheck runs when available (CI installs a pinned version; locally
# it is optional — `go install honnef.co/go/tools/cmd/staticcheck@2023.1.7`
# to match CI). Gated on command -v so an offline checkout still passes.
echo "==> staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
else
  echo "staticcheck not installed; skipped (CI runs it pinned)"
fi

echo "==> go build ./..."
go build ./...

if [[ "$fast" == 1 ]]; then
  echo "==> go test ./... (fast mode, no race detector)"
  go test ./...
  # The engine registry, serving layer, cluster peer layer, load harness,
  # and observation/retrain loop are the concurrency-critical surface:
  # they stay race-checked even in fast mode.
  echo "==> go test -race ./internal/predict ./internal/serve ./internal/cluster ./internal/loadgen ./internal/observe"
  go test -race ./internal/predict ./internal/serve ./internal/cluster ./internal/loadgen ./internal/observe
else
  echo "==> go test -race ./..."
  go test -race ./...

  # Kill-a-member e2e: a real three-process cluster loses a member to
  # SIGKILL mid-traffic and must fail over, evict, and readmit — the
  # self-healing contract exercised against real processes, not httptest.
  echo "==> cluster kill-a-member e2e (scripts/e2e_cluster.sh)"
  bash scripts/e2e_cluster.sh

  # Fleet-planner e2e: a /v2/plan what-if sweep fanned across a 2-member
  # self-cluster must complete with every cell evaluated exactly once and
  # a seed-stable ranking — the planner's async-job contract, end to end.
  echo "==> fleet planner e2e (scripts/plan_e2e.sh)"
  bash scripts/plan_e2e.sh
fi

# Docs gate: every versioned route the code actually serves must be
# documented in docs/API.md — adding an endpoint without documenting it
# fails CI here. The route list is derived from the source, not
# maintained by hand: serve registers routes via mux.HandleFunc literals,
# and the cluster layer declares its /v2/cluster/* paths as string
# literals in non-test files.
echo "==> docs gate (API routes vs docs/API.md)"
missing=0
routes=$(
  {
    grep -ho 'mux.HandleFunc("/v[12][^"]*"' internal/serve/http.go | sed 's/mux.HandleFunc("//; s/"$//'
    grep -rho --include='*.go' --exclude='*_test.go' '"/v[0-9]/cluster/[^"]*"' internal/cluster | tr -d '"'
  } | sort -u
)
for route in $routes; do
  if ! grep -q -- "$route" docs/API.md; then
    echo "route $route handled in the code but missing from docs/API.md" >&2
    missing=1
  fi
done
if ! grep -q -- "/metrics" docs/API.md; then
  echo "route /metrics handled in internal/serve/http.go but missing from docs/API.md" >&2
  missing=1
fi
if [[ "$missing" != 0 ]]; then
  exit 1
fi

# Benchmark smoke run: one iteration each, so bit-rotted benchmarks (stale
# APIs, broken fixtures) fail CI without CI paying for real measurement.
echo "==> benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./internal/mat ./internal/core >/dev/null
go test -run '^$' -bench 'EngineDispatch' -benchtime=1x ./internal/predict >/dev/null
go test -run '^$' -bench 'ObserveIngest' -benchtime=1x ./internal/observe >/dev/null
go test -run '^$' -bench 'Serve|ShardedThroughput' -benchtime=1x . >/dev/null

# Loadgen smoke sweep: two short steps against a self-served roofline
# target, generous SLO — exercises the whole harness path (CLI flags,
# in-process target, sweep loop, JSON report) in about a second without
# measuring anything. scripts/bench.sh --sweep is the real measurement.
echo "==> loadgen smoke sweep"
smoke_out=$(mktemp)
cluster_smoke_out=$(mktemp)
trap 'rm -f "$smoke_out" "$cluster_smoke_out"' EXIT
go run ./cmd/neusight loadgen -self roofline -sweep 100:100:200 \
  -step-duration 300ms -slo-errors 0.5 -seed 7 -out "$smoke_out" 2>/dev/null
python3 - "$smoke_out" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
if report.get("kind") != "neusight-loadgen":
    raise SystemExit(f"check.sh: smoke sweep report kind {report.get('kind')!r}")
steps = (report.get("sweep") or {}).get("steps") or []
if not steps or not any(s.get("succeeded", 0) > 0 for s in steps):
    raise SystemExit("check.sh: smoke sweep served no successful requests")
EOF

# Cluster-sweep smoke: two short steps fanned across an in-process
# 2-member cluster — exercises ring discovery, the load split, per-member
# aggregation, and the merged report in about a second. scripts/bench.sh
# --cluster-sweep is the real measurement.
echo "==> loadgen cluster-sweep smoke (2-member in-process cluster)"
go run ./cmd/neusight loadgen -self roofline -self-cluster 2 -sweep 100:100:200 \
  -step-duration 250ms -cooldown 100ms -slo-errors 0.5 -seed 7 \
  -out "$cluster_smoke_out" 2>/dev/null
python3 - "$cluster_smoke_out" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
sweep = report.get("cluster_sweep") or {}
steps = sweep.get("steps") or []
if not steps or not any(s.get("succeeded", 0) > 0 for s in steps):
    raise SystemExit("check.sh: cluster smoke sweep served no successful requests")
if not sweep.get("knee"):
    raise SystemExit("check.sh: cluster smoke sweep found no knee under a 0.5 error SLO")
if not any((s.get("members") or []) for s in steps):
    raise SystemExit("check.sh: cluster smoke sweep has no per-member breakdown")
EOF

echo "OK"
