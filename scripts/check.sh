#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally. Referenced from
# README.md; run it before sending a PR.
#
#   scripts/check.sh          full gate: fmt, vet, build, race-enabled tests
#   scripts/check.sh -fast    skip the race detector (plain `go test ./...`)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "-fast" ]]; then
  fast=1
fi

# gofmt -l recurses from the repo root, so every .go file is covered —
# including files in newly added directories and files excluded by build
# constraints that `go list` would skip.
echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

if [[ "$fast" == 1 ]]; then
  echo "==> go test ./... (fast mode, no race detector)"
  go test ./...
  # The engine registry, serving layer, and cluster peer layer are the
  # concurrency-critical surface: they stay race-checked even in fast mode.
  echo "==> go test -race ./internal/predict ./internal/serve ./internal/cluster"
  go test -race ./internal/predict ./internal/serve ./internal/cluster
else
  echo "==> go test -race ./..."
  go test -race ./...
fi

# Docs gate: every versioned route the code actually serves must be
# documented in docs/API.md — adding an endpoint without documenting it
# fails CI here. The route list is derived from the source, not
# maintained by hand: serve registers routes via mux.HandleFunc literals,
# and the cluster layer declares its /v2/cluster/* paths as string
# literals in non-test files.
echo "==> docs gate (API routes vs docs/API.md)"
missing=0
routes=$(
  {
    grep -ho 'mux.HandleFunc("/v[12][^"]*"' internal/serve/http.go | sed 's/mux.HandleFunc("//; s/"$//'
    grep -rho --include='*.go' --exclude='*_test.go' '"/v[0-9]/cluster/[^"]*"' internal/cluster | tr -d '"'
  } | sort -u
)
for route in $routes; do
  if ! grep -q -- "$route" docs/API.md; then
    echo "route $route handled in the code but missing from docs/API.md" >&2
    missing=1
  fi
done
if ! grep -q -- "/metrics" docs/API.md; then
  echo "route /metrics handled in internal/serve/http.go but missing from docs/API.md" >&2
  missing=1
fi
if [[ "$missing" != 0 ]]; then
  exit 1
fi

# Benchmark smoke run: one iteration each, so bit-rotted benchmarks (stale
# APIs, broken fixtures) fail CI without CI paying for real measurement.
echo "==> benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./internal/mat ./internal/core >/dev/null
go test -run '^$' -bench 'EngineDispatch' -benchtime=1x ./internal/predict >/dev/null
go test -run '^$' -bench 'Serve|ShardedThroughput' -benchtime=1x . >/dev/null

echo "OK"
