#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally. Referenced from
# README.md; run it before sending a PR.
#
#   scripts/check.sh          full gate: fmt, vet, build, race-enabled tests
#   scripts/check.sh -fast    skip the race detector (plain `go test ./...`)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "-fast" ]]; then
  fast=1
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

if [[ "$fast" == 1 ]]; then
  echo "==> go test ./... (fast mode, no race detector)"
  go test ./...
else
  echo "==> go test -race ./..."
  go test -race ./...
fi

echo "OK"
