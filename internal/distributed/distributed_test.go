package distributed

import (
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/network"
)

// simLat prices kernels with the ground-truth simulator on the server's GPU.
func simLat(srv gpu.ServerSpec) func(kernels.Kernel) float64 {
	sim := gpusim.New()
	return func(k kernels.Kernel) float64 { return sim.KernelLatency(k, srv.GPU) }
}

func gpt2() models.Config { return models.MustLookup("GPT2-Large") }

func TestDPSplitsBatchAndAddsAllReduce(t *testing.T) {
	srv := gpu.MustLookupServer("A100x4-NVLink")
	link := network.NewSim()
	p := Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: DataParallel, Training: true}
	f, err := Estimate(p, simLat(srv), link)
	if err != nil {
		t.Fatal(err)
	}
	if f.NetworkMs <= 0 {
		t.Fatal("DP training must pay a gradient all-reduce")
	}
	// Compute equals a single-GPU iteration at batch 1.
	want := gpt2().TrainingGraph(1).Latency(simLat(srv))
	if f.ComputeMs != want {
		t.Fatalf("DP compute = %v, want per-GPU batch-1 latency %v", f.ComputeMs, want)
	}
	if f.TotalMs != f.ComputeMs+f.NetworkMs {
		t.Fatal("total must decompose into compute + network")
	}
}

func TestDPInferenceHasNoCollectives(t *testing.T) {
	srv := gpu.MustLookupServer("H100x4-DGX")
	p := Plan{Model: gpt2(), GlobalBatch: 8, Server: srv, Strategy: DataParallel, Training: false}
	f, err := Estimate(p, simLat(srv), network.NewSim())
	if err != nil {
		t.Fatal(err)
	}
	if f.NetworkMs != 0 {
		t.Fatal("DP inference must not all-reduce")
	}
}

func TestTPShardsCompute(t *testing.T) {
	srv := gpu.MustLookupServer("H100x4-DGX")
	link := network.NewSim()
	lat := simLat(srv)
	p := Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: TensorParallel, Training: true}
	f, err := Estimate(p, lat, link)
	if err != nil {
		t.Fatal(err)
	}
	single := gpt2().TrainingGraph(4).Latency(lat)
	if f.ComputeMs >= single {
		t.Fatalf("TP compute %v should be below single-GPU %v", f.ComputeMs, single)
	}
	if f.ComputeMs < single/8 {
		t.Fatalf("TP compute %v implausibly low vs single-GPU %v", f.ComputeMs, single)
	}
	if f.NetworkMs <= 0 {
		t.Fatal("TP must all-reduce activations")
	}
}

func TestTPTrainingDoublesCollectives(t *testing.T) {
	srv := gpu.MustLookupServer("A100x4-NVLink")
	link := network.NewSim()
	lat := simLat(srv)
	train, _ := Estimate(Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: TensorParallel, Training: true}, lat, link)
	infer, _ := Estimate(Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: TensorParallel, Training: false}, lat, link)
	if train.NetworkMs != 2*infer.NetworkMs {
		t.Fatalf("training collectives %v, want 2x inference %v", train.NetworkMs, infer.NetworkMs)
	}
}

func TestPPSlowerThanDPAtSameGlobalBatch(t *testing.T) {
	// Paper Table 8: with one micro-batch, pipeline parallel pays the full
	// sequential cost and is several times slower than data parallel.
	srv := gpu.MustLookupServer("H100x4-DGX")
	link := network.NewSim()
	lat := simLat(srv)
	dp, err := Estimate(Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: DataParallel, Training: true}, lat, link)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Estimate(Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: PipelineParallel, Training: true}, lat, link)
	if err != nil {
		t.Fatal(err)
	}
	if r := pp.TotalMs / dp.TotalMs; r < 2 || r > 6 {
		t.Fatalf("PP/DP ratio = %v, want ~3-4 (Table 8 shape)", r)
	}
}

func TestPPMicroBatchingShrinksBubble(t *testing.T) {
	srv := gpu.MustLookupServer("H100x4-DGX")
	link := network.NewSim()
	lat := simLat(srv)
	one, _ := Estimate(Plan{Model: gpt2(), GlobalBatch: 8, Server: srv, Strategy: PipelineParallel, Training: true, MicroBatches: 1}, lat, link)
	four, _ := Estimate(Plan{Model: gpt2(), GlobalBatch: 8, Server: srv, Strategy: PipelineParallel, Training: true, MicroBatches: 4}, lat, link)
	if four.TotalMs >= one.TotalMs {
		t.Fatalf("micro-batching should reduce pipeline latency: m=4 %v vs m=1 %v", four.TotalMs, one.TotalMs)
	}
}

func TestEstimateValidation(t *testing.T) {
	srv := gpu.MustLookupServer("A100x4-NVLink")
	link := network.NewSim()
	lat := simLat(srv)
	if _, err := Estimate(Plan{Model: gpt2(), GlobalBatch: 0, Server: srv, Strategy: DataParallel}, lat, link); err == nil {
		t.Fatal("zero batch must error")
	}
	if _, err := Estimate(Plan{Model: gpt2(), GlobalBatch: 2, Server: srv, Strategy: DataParallel}, lat, link); err == nil {
		t.Fatal("batch below DP width must error")
	}
	bad := srv
	bad.NumGPUs = 1
	if _, err := Estimate(Plan{Model: gpt2(), GlobalBatch: 4, Server: bad, Strategy: DataParallel}, lat, link); err == nil {
		t.Fatal("single-GPU server must error")
	}
}

// TestPredictionVsMeasurementDistributed is the Table 8 shape check: the
// calibrated link model plus the ground-truth kernel latencies land within
// tens of percent of the full simulation.
func TestPredictionVsMeasurementDistributed(t *testing.T) {
	srv := gpu.MustLookupServer("H100x4-DGX")
	sim := network.NewSim()
	calibrated := network.Calibrate(sim, gpu.MustLookupServer("V100x4-NVLink"))
	lat := simLat(srv)
	for _, s := range []Strategy{DataParallel, TensorParallel, PipelineParallel} {
		p := Plan{Model: gpt2(), GlobalBatch: 4, Server: srv, Strategy: s, Training: true}
		measured, err := Estimate(p, lat, sim)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := Estimate(p, lat, calibrated)
		if err != nil {
			t.Fatal(err)
		}
		rel := (predicted.TotalMs - measured.TotalMs) / measured.TotalMs
		if rel < -0.35 || rel > 0.35 {
			t.Fatalf("%v: network-calibration error %v too large", s, rel)
		}
	}
}

func TestMultiNodeScalingShape(t *testing.T) {
	srv := gpu.MustLookupServer("H100x8-DGX")
	lat := simLat(srv)
	link := network.Calibrate(network.NewSim(), gpu.MustLookupServer("V100x4-NVLink"))
	tree := network.Table9Hierarchy(0.8)
	model := models.GPT3MultiNode()

	var prev float64
	results := map[int]float64{}
	for _, nodes := range []int{1, 4, 384, 768, 3840} {
		f, err := EstimateMultiNode(MultiNodePlan{
			Model: model, Nodes: nodes, Server: srv, PerNodeBatch: 8, Tree: tree,
			DType: kernels.FP16,
		}, lat, link)
		if err != nil {
			t.Fatal(err)
		}
		if f.TotalMs <= prev {
			t.Fatalf("latency must grow with nodes: %d -> %v after %v", nodes, f.TotalMs, prev)
		}
		prev = f.TotalMs
		results[nodes] = f.TotalMs
	}
	// Table 9 shape: big jump from 4 to 384 (InfiniBand engages), mild
	// growth beyond.
	if results[384] < 2*results[4] {
		t.Fatalf("expected a large jump at 384 nodes: %v vs %v", results[384], results[4])
	}
	if (results[3840]-results[384])/results[384] > 0.25 {
		t.Fatalf("growth beyond 384 nodes should be mild: %v -> %v", results[384], results[3840])
	}
}

func TestMultiNodeValidation(t *testing.T) {
	srv := gpu.MustLookupServer("H100x8-DGX")
	lat := simLat(srv)
	link := network.NewSim()
	if _, err := EstimateMultiNode(MultiNodePlan{Model: gpt2(), Nodes: 0, Server: srv, PerNodeBatch: 8}, lat, link); err == nil {
		t.Fatal("zero nodes must error")
	}
}

func TestPipelineSchedules(t *testing.T) {
	srv := gpu.MustLookupServer("H100x4-DGX")
	link := network.NewSim()
	lat := simLat(srv)
	base := Plan{Model: gpt2(), GlobalBatch: 8, Server: srv,
		Strategy: PipelineParallel, Training: true, MicroBatches: 4}
	gpipe := base
	gpipe.Schedule = GPipe
	ofob := base
	ofob.Schedule = OneFOneB
	fg, err := Estimate(gpipe, lat, link)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := Estimate(ofob, lat, link)
	if err != nil {
		t.Fatal(err)
	}
	// Iteration latency is schedule-independent at this granularity...
	if fg.TotalMs != fo.TotalMs {
		t.Fatalf("GPipe %v vs 1F1B %v: iteration time should match", fg.TotalMs, fo.TotalMs)
	}
	// ...the difference is live activation memory.
	if got := ActivationFactor(GPipe, 8, 4); got != 8 {
		t.Fatalf("GPipe activation factor = %d, want 8 (all micro-batches)", got)
	}
	if got := ActivationFactor(OneFOneB, 8, 4); got != 4 {
		t.Fatalf("1F1B activation factor = %d, want 4 (bounded by stages)", got)
	}
	if got := ActivationFactor(OneFOneB, 2, 4); got != 2 {
		t.Fatalf("1F1B with few micro-batches = %d, want 2", got)
	}
}

func TestScheduleStrings(t *testing.T) {
	if GPipe.String() != "GPipe" || OneFOneB.String() != "1F1B" {
		t.Fatalf("schedule names: %v, %v", GPipe, OneFOneB)
	}
}
