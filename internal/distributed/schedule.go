package distributed

import "fmt"

// PipelineSchedule selects how micro-batches interleave across pipeline
// stages. The paper evaluates GPipe and notes the framework "can be easily
// extended to other schedules" (Section 5.1); 1F1B (PipeDream-flush) is
// the standard alternative.
type PipelineSchedule int

// Supported pipeline schedules.
const (
	// GPipe runs all forward micro-batches, then all backward ones; both
	// phases pay the (stages-1)-slot bubble.
	GPipe PipelineSchedule = iota
	// OneFOneB interleaves one forward with one backward micro-batch in
	// steady state (PipeDream-flush). Its iteration latency equals
	// GPipe's — both schedules idle (stages-1) slots per phase — but each
	// stage holds at most `stages` micro-batch activations instead of all
	// m, which changes what fits in memory.
	OneFOneB
)

// String names the schedule.
func (s PipelineSchedule) String() string {
	switch s {
	case GPipe:
		return "GPipe"
	case OneFOneB:
		return "1F1B"
	default:
		return fmt.Sprintf("PipelineSchedule(%d)", int(s))
	}
}

// pipelineSlots returns the compute latency of a pipeline iteration given
// the per-micro-batch per-stage forward and backward times.
func pipelineSlots(sched PipelineSchedule, m, stages int, stageFwd, stageBwd float64) (float64, error) {
	if m < 1 || stages < 1 {
		return 0, fmt.Errorf("distributed: invalid pipeline shape m=%d stages=%d", m, stages)
	}
	slots := float64(m + stages - 1)
	switch sched {
	case GPipe, OneFOneB:
		// Both schedules occupy m + stages - 1 slots per phase; 1F1B's
		// advantage is activation memory, not iteration time.
		return slots * (stageFwd + stageBwd), nil
	default:
		return 0, fmt.Errorf("distributed: unknown schedule %v", sched)
	}
}

// ActivationFactor returns how many micro-batches of activations one stage
// holds live under the schedule — the quantity that decides whether a
// pipeline configuration fits in device memory.
func ActivationFactor(sched PipelineSchedule, m, stages int) int {
	if sched == OneFOneB && stages < m {
		return stages
	}
	return m
}
