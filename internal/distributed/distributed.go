// Package distributed forecasts multi-GPU server execution (paper
// Section 5.1): it applies a parallelization strategy to a workload,
// derives each GPU's compute graph and the network operators the strategy
// requires, and stitches per-kernel latencies together with collective
// latencies from a link model.
//
//   - Data parallel: the batch splits across GPUs; training adds a ring
//     all-reduce over the gradients.
//   - Tensor model parallel (Megatron): attention and FFN GEMMs shard
//     across GPUs; each layer all-reduces activations twice in the forward
//     pass and twice more in the backward pass.
//   - Pipeline parallel (GPipe): layers split into stages; micro-batches
//     flow through with (m + s - 1) pipeline slots per phase and
//     activations crossing stage boundaries via send/recv. Alternative
//     micro-batch schedules (1F1B) live in schedule.go.
//
// multinode.go extends the composition across servers (paper Table 9):
// tensor parallelism inside each node, data parallelism across nodes,
// and a hierarchical fat-tree all-reduce priced by internal/network.
package distributed

import (
	"fmt"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/models"
)

// Strategy selects the parallelization scheme.
type Strategy int

// Supported strategies (paper Table 8 evaluates each individually).
const (
	DataParallel Strategy = iota
	TensorParallel
	PipelineParallel
)

// String names the strategy as in the paper's tables.
func (s Strategy) String() string {
	switch s {
	case DataParallel:
		return "Data Parallel"
	case TensorParallel:
		return "Tensor Parallel"
	case PipelineParallel:
		return "Pipeline Parallel"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// LinkModel prices intra-server collectives. Both the measurement-side
// network simulator and the calibrated prediction model satisfy it.
type LinkModel interface {
	AllReduceMs(bytes float64, srv gpu.ServerSpec) float64
	SendRecvMs(bytes float64, srv gpu.ServerSpec) float64
}

// Plan is one distributed execution to forecast.
type Plan struct {
	Model       models.Config
	GlobalBatch int
	Server      gpu.ServerSpec
	Strategy    Strategy
	Training    bool
	// MicroBatches is the micro-batch count for pipeline parallelism
	// (paper Table 8 uses a single micro-batch). Defaults to 1.
	MicroBatches int
	// Schedule selects the pipeline schedule; the zero value is GPipe
	// (the paper's default, Section 5.1).
	Schedule PipelineSchedule
}

// Forecast is the predicted breakdown of one plan.
type Forecast struct {
	TotalMs   float64
	ComputeMs float64
	NetworkMs float64
}

// Estimate forecasts the iteration latency of plan p, pricing compute
// kernels with kernelLat (milliseconds) and collectives with link.
func Estimate(p Plan, kernelLat func(kernels.Kernel) float64, link LinkModel) (Forecast, error) {
	if p.GlobalBatch <= 0 {
		return Forecast{}, fmt.Errorf("distributed: global batch must be positive")
	}
	n := p.Server.NumGPUs
	if n < 2 {
		return Forecast{}, fmt.Errorf("distributed: server %q has %d GPUs; need at least 2", p.Server.Name, n)
	}
	switch p.Strategy {
	case DataParallel:
		return estimateDP(p, kernelLat, link)
	case TensorParallel:
		return estimateTP(p, kernelLat, link)
	case PipelineParallel:
		return estimatePP(p, kernelLat, link)
	default:
		return Forecast{}, fmt.Errorf("distributed: unknown strategy %v", p.Strategy)
	}
}

// estimateDP: each GPU runs globalBatch/n; training all-reduces gradients.
func estimateDP(p Plan, kernelLat func(kernels.Kernel) float64, link LinkModel) (Forecast, error) {
	n := p.Server.NumGPUs
	perGPU := p.GlobalBatch / n
	if perGPU < 1 {
		return Forecast{}, fmt.Errorf("distributed: global batch %d below data-parallel width %d", p.GlobalBatch, n)
	}
	gr := p.Model.InferenceGraph(perGPU)
	if p.Training {
		gr = p.Model.TrainingGraph(perGPU)
	}
	compute := gr.Latency(kernelLat)
	net := 0.0
	if p.Training {
		gradBytes := p.Model.NumParams() * 4
		net = link.AllReduceMs(gradBytes, p.Server)
	}
	return Forecast{TotalMs: compute + net, ComputeMs: compute, NetworkMs: net}, nil
}

// estimateTP: Megatron sharding; 2 activation all-reduces per layer per
// pass direction.
func estimateTP(p Plan, kernelLat func(kernels.Kernel) float64, link LinkModel) (Forecast, error) {
	n := p.Server.NumGPUs
	gr := p.Model.TPInferenceGraph(p.GlobalBatch, n)
	passes := 2 // forward all-reduces per layer
	if p.Training {
		gr = p.Model.TPTrainingGraph(p.GlobalBatch, n)
		passes = 4 // backward adds two more per layer
	}
	compute := gr.Latency(kernelLat)
	actBytes := float64(p.GlobalBatch*p.Model.SeqLen*p.Model.Hidden) * 4
	net := float64(p.Model.Layers*passes) * link.AllReduceMs(actBytes, p.Server)
	return Forecast{TotalMs: compute + net, ComputeMs: compute, NetworkMs: net}, nil
}

// estimatePP: GPipe schedule over n stages with m micro-batches. Stage
// compute time approximates as the full-model latency at micro-batch size
// divided by the stage count (layers split evenly); the pipeline occupies
// (m + n - 1) slots per phase (the "bubble" of paper Section 5.1), and
// activations cross each stage boundary once per micro-batch per direction.
func estimatePP(p Plan, kernelLat func(kernels.Kernel) float64, link LinkModel) (Forecast, error) {
	n := p.Server.NumGPUs
	m := p.MicroBatches
	if m < 1 {
		m = 1
	}
	micro := p.GlobalBatch / m
	if micro < 1 {
		return Forecast{}, fmt.Errorf("distributed: global batch %d below micro-batch count %d", p.GlobalBatch, m)
	}
	fwd := p.Model.InferenceGraph(micro).Latency(kernelLat)
	bwd := 0.0
	if p.Training {
		bwd = p.Model.TrainingGraph(micro).Latency(kernelLat) - fwd
	}
	stageFwd := fwd / float64(n)
	stageBwd := bwd / float64(n)
	compute, err := pipelineSlots(p.Schedule, m, n, stageFwd, stageBwd)
	if err != nil {
		return Forecast{}, err
	}

	actBytes := float64(micro*p.Model.SeqLen*p.Model.Hidden) * 4
	send := link.SendRecvMs(actBytes, p.Server)
	// Critical path crosses each of the n-1 boundaries once per phase per
	// micro-batch slot on the schedule's skew.
	directions := 1.0
	if p.Training {
		directions = 2
	}
	net := directions * float64(n-1) * float64(m) * send
	return Forecast{TotalMs: compute + net, ComputeMs: compute, NetworkMs: net}, nil
}
