package distributed

import (
	"fmt"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/network"
)

// MultiNodePlan is the Table 9 configuration: tensor model parallelism
// across the GPUs of each node, data parallelism across nodes, gradients
// all-reduced over a hierarchical fat-tree.
type MultiNodePlan struct {
	Model        models.Config
	Nodes        int
	Server       gpu.ServerSpec // one node (e.g. 8x H100 DGX)
	PerNodeBatch int
	Tree         network.Hierarchy
	// DType is the training precision; GPT-3-scale clusters run mixed
	// precision (FP16 tensors on tensor cores), which is also what keeps
	// the gradient all-reduce volume at half the FP32 size.
	DType kernels.DType
}

// EstimateMultiNode forecasts one training iteration of plan across the
// cluster: per-GPU TP-sharded compute, intra-node activation all-reduces
// over the server fabric, and an inter-node gradient all-reduce over the
// fat-tree (the paper's NeuSight + analytical-network composition).
func EstimateMultiNode(p MultiNodePlan, kernelLat func(kernels.Kernel) float64, link LinkModel) (Forecast, error) {
	if p.Nodes < 1 {
		return Forecast{}, fmt.Errorf("distributed: need at least one node")
	}
	tp := p.Server.NumGPUs
	gr := p.Model.TPTrainingGraph(p.PerNodeBatch, tp).WithDType(p.DType)
	compute := gr.Latency(kernelLat)

	elem := p.DType.Bytes()
	// Intra-node Megatron all-reduces: 4 per layer per iteration.
	actBytes := float64(p.PerNodeBatch*p.Model.SeqLen*p.Model.Hidden) * elem
	intra := float64(p.Model.Layers*4) * link.AllReduceMs(actBytes, p.Server)

	// Inter-node data-parallel gradient all-reduce: each TP rank holds a
	// 1/tp shard of the parameters; ranks ring across nodes in parallel.
	inter := 0.0
	if p.Nodes > 1 {
		gradBytes := p.Model.NumParams() / float64(tp) * elem
		inter = p.Tree.AllReduceMs(gradBytes, p.Nodes)
	}
	net := intra + inter
	return Forecast{TotalMs: compute + net, ComputeMs: compute, NetworkMs: net}, nil
}
