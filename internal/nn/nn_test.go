package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	ad "neusight/internal/autodiff"
	"neusight/internal/loss"
	"neusight/internal/mat"
	"neusight/internal/opt"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 7)
	x := ad.NewConstant(mat.RandN(rng, 3, 4, 1))
	y := l.Forward(x)
	if y.Data.Rows != 3 || y.Data.Cols != 7 {
		t.Fatalf("Linear output %dx%d, want 3x7", y.Data.Rows, y.Data.Cols)
	}
	if len(l.Params()) != 2 {
		t.Fatalf("Linear params = %d, want 2", len(l.Params()))
	}
}

func TestMLPShapesAndParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, MLPConfig{In: 5, Hidden: 16, Out: 2, Layers: 3, Activation: ActReLU})
	x := ad.NewConstant(mat.RandN(rng, 9, 5, 1))
	y := m.Forward(x)
	if y.Data.Rows != 9 || y.Data.Cols != 2 {
		t.Fatalf("MLP output %dx%d, want 9x2", y.Data.Rows, y.Data.Cols)
	}
	// 5*16+16 + 2*(16*16+16) + 16*2+2
	want := 5*16 + 16 + 2*(16*16+16) + 16*2 + 2
	if got := NumParams(m); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

// TestMLPLearnsQuadratic trains a small MLP on y = x0² + x1 and checks the
// loss drops by >10x — exercising forward, backward, and AdamW end to end.
func TestMLPLearnsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, MLPConfig{In: 2, Hidden: 32, Out: 1, Layers: 2, Activation: ActTanh})
	optim := opt.NewAdamW(m.Params(), opt.AdamWConfig{LR: 1e-2})

	xs := mat.RandUniform(rng, 256, 2, -1, 1)
	ys := mat.New(256, 1)
	for i := 0; i < 256; i++ {
		ys.Data[i] = xs.At(i, 0)*xs.At(i, 0) + xs.At(i, 1)
	}
	xv, yv := ad.NewConstant(xs), ad.NewConstant(ys)

	first := loss.MSE(m.Forward(xv), yv).Data.Data[0]
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		l := loss.MSE(m.Forward(xv), yv)
		ad.Backward(l)
		optim.Step()
		last = l.Data.Data[0]
	}
	if last > first/10 {
		t.Fatalf("loss did not drop: first %v, last %v", first, last)
	}
}

func TestMLPJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, MLPConfig{In: 3, Hidden: 8, Out: 2, Layers: 2, Activation: ActReLU})
	x := ad.NewConstant(mat.RandN(rng, 4, 3, 1))
	want := m.Forward(x).Data

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := back.Forward(x).Data
	if !mat.Equal(got, want, 1e-12) {
		t.Fatal("deserialized MLP output differs from original")
	}
}

func TestMLPUnmarshalRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, MLPConfig{In: 3, Hidden: 8, Out: 1, Layers: 2, Activation: ActReLU})
	data, _ := json.Marshal(m)
	var st map[string]any
	_ = json.Unmarshal(data, &st)
	st["weights"] = st["weights"].([]any)[:2] // drop tensors
	bad, _ := json.Marshal(st)
	var back MLP
	if err := json.Unmarshal(bad, &back); err == nil {
		t.Fatal("expected error on truncated weights")
	}
}

func TestActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, a := range []Activation{ActReLU, ActTanh, ActGELU, ActSigmoid} {
		m := NewMLP(rng, MLPConfig{In: 2, Hidden: 4, Out: 1, Layers: 1, Activation: a})
		y := m.Forward(ad.NewConstant(mat.RandN(rng, 2, 2, 1)))
		for _, v := range y.Data.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("activation %d produced %v", a, v)
			}
		}
	}
}

func TestTransformerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTransformer(rng, TransformerConfig{Features: 6, DModel: 16, Heads: 4, Layers: 2, FFN: 32})
	x := ad.NewConstant(mat.RandN(rng, 5, 6, 1))
	y := tr.Forward(x)
	if y.Data.Rows != 5 || y.Data.Cols != 1 {
		t.Fatalf("Transformer output %dx%d, want 5x1", y.Data.Rows, y.Data.Cols)
	}
}

// TestTransformerTrains checks the transformer regressor can fit a simple
// function, validating gradient flow through attention and layernorm.
func TestTransformerTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := NewTransformer(rng, TransformerConfig{Features: 3, DModel: 8, Heads: 2, Layers: 1, FFN: 16})
	optim := opt.NewAdamW(tr.Params(), opt.AdamWConfig{LR: 3e-3})
	xs := mat.RandUniform(rng, 32, 3, -1, 1)
	ys := mat.New(32, 1)
	for i := 0; i < 32; i++ {
		ys.Data[i] = xs.At(i, 0) + 0.5*xs.At(i, 1)*xs.At(i, 2)
	}
	xv, yv := ad.NewConstant(xs), ad.NewConstant(ys)
	first := loss.MSE(tr.Forward(xv), yv).Data.Data[0]
	var last float64
	for epoch := 0; epoch < 60; epoch++ {
		l := loss.MSE(tr.Forward(xv), yv)
		ad.Backward(l)
		optim.Step()
		last = l.Data.Data[0]
	}
	if last > first*0.5 {
		t.Fatalf("transformer loss did not drop: first %v, last %v", first, last)
	}
}

func TestCosineDecayEndpoints(t *testing.T) {
	if got := opt.CosineDecay(1.0, 0.1, 0, 100); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("t=0 lr = %v, want 1.0", got)
	}
	if got := opt.CosineDecay(1.0, 0.1, 99, 100); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("t=end lr = %v, want 0.1", got)
	}
	mid := opt.CosineDecay(1.0, 0.1, 50, 101)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("midpoint lr = %v, want 0.55", mid)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// minimize (w - 3)² with momentum SGD
	w := ad.NewVariable(mat.FromRows([][]float64{{0}}))
	target := ad.NewConstant(mat.FromRows([][]float64{{3}}))
	optim := opt.NewSGD([]*ad.Value{w}, 0.05, 0.9)
	for i := 0; i < 200; i++ {
		l := loss.MSE(w, target)
		ad.Backward(l)
		optim.Step()
	}
	if math.Abs(w.Data.Data[0]-3) > 1e-3 {
		t.Fatalf("w = %v, want 3", w.Data.Data[0])
	}
}
