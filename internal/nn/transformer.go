package nn

import (
	"math"
	"math/rand"

	ad "neusight/internal/autodiff"
	"neusight/internal/mat"
)

// TransformerConfig describes the transformer regressor from the "larger
// predictors" study (paper Table 1, following Prime). Each scalar input
// feature becomes one token via a learned per-feature embedding; encoder
// blocks attend across the feature tokens; the pooled representation is
// regressed to a single output.
type TransformerConfig struct {
	Features int // number of scalar input features (= tokens)
	DModel   int // embedding width
	Heads    int // attention heads (must divide DModel)
	Layers   int // encoder blocks
	FFN      int // feed-forward hidden width
}

// Transformer is an encoder-only regressor over feature tokens.
type Transformer struct {
	Cfg TransformerConfig

	embedW *ad.Value // Features x DModel: per-feature scale embedding
	embedB *ad.Value // Features x DModel: per-feature position embedding
	blocks []*encoderBlock
	headW  *Linear // DModel -> 1
}

type encoderBlock struct {
	wq, wk, wv, wo *Linear
	ln1g, ln1b     *ad.Value
	ln2g, ln2b     *ad.Value
	ff1, ff2       *Linear
	heads          int
}

// NewTransformer builds a transformer regressor per cfg.
func NewTransformer(rng *rand.Rand, cfg TransformerConfig) *Transformer {
	if cfg.DModel%cfg.Heads != 0 {
		panic("nn: DModel must be divisible by Heads")
	}
	t := &Transformer{Cfg: cfg}
	t.embedW = ad.NewVariable(mat.RandN(rng, cfg.Features, cfg.DModel, 0.5))
	t.embedB = ad.NewVariable(mat.RandN(rng, cfg.Features, cfg.DModel, 0.1))
	for i := 0; i < cfg.Layers; i++ {
		ones := mat.New(1, cfg.DModel)
		ones.Fill(1)
		ones2 := ones.Clone()
		t.blocks = append(t.blocks, &encoderBlock{
			wq: NewLinear(rng, cfg.DModel, cfg.DModel), wk: NewLinear(rng, cfg.DModel, cfg.DModel),
			wv: NewLinear(rng, cfg.DModel, cfg.DModel), wo: NewLinear(rng, cfg.DModel, cfg.DModel),
			ln1g: ad.NewVariable(ones), ln1b: ad.NewVariable(mat.New(1, cfg.DModel)),
			ln2g: ad.NewVariable(ones2), ln2b: ad.NewVariable(mat.New(1, cfg.DModel)),
			ff1: NewLinear(rng, cfg.DModel, cfg.FFN), ff2: NewLinear(rng, cfg.FFN, cfg.DModel),
			heads: cfg.Heads,
		})
	}
	t.headW = NewLinear(rng, cfg.DModel, 1)
	return t
}

// forwardSample runs one sample's token matrix (Features x DModel pipeline).
func (t *Transformer) forwardSample(features []float64) *ad.Value {
	// tokens[i] = embedW[i] * feature_i + embedB[i]
	f := mat.New(t.Cfg.Features, t.Cfg.DModel)
	for i := 0; i < t.Cfg.Features; i++ {
		row := f.Row(i)
		for j := range row {
			row[j] = features[i]
		}
	}
	tokens := ad.Add(ad.Mul(ad.NewConstant(f), t.embedW), t.embedB)
	for _, b := range t.blocks {
		tokens = b.forward(tokens)
	}
	// Mean-pool tokens, then regress. Pooling via constant 1/F row selector.
	pool := mat.New(1, t.Cfg.Features)
	pool.Fill(1 / float64(t.Cfg.Features))
	pooled := ad.MatMul(ad.NewConstant(pool), tokens) // 1 x DModel
	return t.headW.Forward(pooled)                    // 1 x 1
}

func (b *encoderBlock) forward(x *ad.Value) *ad.Value {
	n := x.Data.Rows
	d := x.Data.Cols
	dh := d / b.heads
	normed := ad.LayerNormRows(x, b.ln1g, b.ln1b, 1e-5)
	q := b.wq.Forward(normed)
	k := b.wk.Forward(normed)
	v := b.wv.Forward(normed)
	// Per-head attention via column-slice selector constants.
	headsOut := make([]*ad.Value, b.heads)
	scale := 1 / math.Sqrt(float64(dh))
	for h := 0; h < b.heads; h++ {
		sel := mat.New(d, dh)
		for i := 0; i < dh; i++ {
			sel.Set(h*dh+i, i, 1)
		}
		selC := ad.NewConstant(sel)
		qh := ad.MatMul(q, selC)
		kh := ad.MatMul(k, selC)
		vh := ad.MatMul(v, selC)
		scores := ad.Scale(ad.MatMul(qh, transposeVal(kh)), scale) // n x n
		attn := ad.SoftmaxRows(scores)
		headsOut[h] = ad.MatMul(attn, vh) // n x dh
	}
	// Concatenate heads back to n x d via scatter selectors.
	concat := ad.MatMul(headsOut[0], ad.NewConstant(scatterSel(d, dh, 0)))
	for h := 1; h < b.heads; h++ {
		concat = ad.Add(concat, ad.MatMul(headsOut[h], ad.NewConstant(scatterSel(d, dh, h))))
	}
	x = ad.Add(x, b.wo.Forward(concat))
	normed2 := ad.LayerNormRows(x, b.ln2g, b.ln2b, 1e-5)
	ff := b.ff2.Forward(ad.ReLU(b.ff1.Forward(normed2)))
	_ = n
	return ad.Add(x, ff)
}

// transposeVal transposes through autodiff by two matmul identities; since we
// need gradients, implement directly as an op-free trick: (Aᵀ) gradients are
// handled by wrapping in a dedicated closure here.
func transposeVal(a *ad.Value) *ad.Value {
	return ad.TransposeOp(a)
}

func scatterSel(d, dh, h int) *mat.Matrix {
	s := mat.New(dh, d)
	for i := 0; i < dh; i++ {
		s.Set(i, h*dh+i, 1)
	}
	return s
}

// Forward implements Module: each row of x is one sample's feature vector.
func (t *Transformer) Forward(x *ad.Value) *ad.Value {
	outs := make([]*ad.Value, x.Data.Rows)
	for i := 0; i < x.Data.Rows; i++ {
		outs[i] = t.forwardSample(x.Data.Row(i))
	}
	return ad.ConcatRows(outs)
}

// Params implements Module.
func (t *Transformer) Params() []*ad.Value {
	ps := []*ad.Value{t.embedW, t.embedB}
	for _, b := range t.blocks {
		ps = append(ps, b.wq.Params()...)
		ps = append(ps, b.wk.Params()...)
		ps = append(ps, b.wv.Params()...)
		ps = append(ps, b.wo.Params()...)
		ps = append(ps, b.ln1g, b.ln1b, b.ln2g, b.ln2b)
		ps = append(ps, b.ff1.Params()...)
		ps = append(ps, b.ff2.Params()...)
	}
	ps = append(ps, t.headW.Params()...)
	return ps
}
