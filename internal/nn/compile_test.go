package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	ad "neusight/internal/autodiff"
	"neusight/internal/mat"
)

// compiledParityTol is the satellite-task bound: compiled inference must
// match the autodiff forward pass to 1e-12. (In practice the paths are
// bit-identical; the tolerance guards against future refactors of either.)
const compiledParityTol = 1e-12

// TestCompiledForwardMatchesAutodiff is the property-style parity sweep:
// every activation x several depths x several widths x several seeds and
// batch sizes, compiled vs autodiff.
func TestCompiledForwardMatchesAutodiff(t *testing.T) {
	acts := []Activation{ActReLU, ActTanh, ActGELU, ActSigmoid}
	depths := []int{1, 2, 4}
	for _, act := range acts {
		for _, layers := range depths {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("act=%d/layers=%d/seed=%d", act, layers, seed)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					cfg := MLPConfig{
						In: 5, Hidden: 8 * int(seed), Out: 2,
						Layers: layers, Activation: act,
					}
					m := NewMLP(rng, cfg)
					cm := Compile(m)
					for _, batch := range []int{1, 7, 64} {
						x := mat.RandN(rng, batch, cfg.In, 2)
						want := m.Forward(ad.NewConstant(x)).Data
						got := cm.Forward(x)
						if !mat.Equal(want, got, compiledParityTol) {
							t.Fatalf("batch %d: compiled forward diverges from autodiff by > %g", batch, compiledParityTol)
						}
					}
				})
			}
		}
	}
}

// TestForwardIntoAndForwardRowAgree checks the three entry points produce
// identical heads and that reusing dst across calls is safe.
func TestForwardIntoAndForwardRowAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, MLPConfig{In: 5, Hidden: 16, Out: 2, Layers: 3, Activation: ActReLU})
	cm := Compile(m)
	x := mat.RandN(rng, 9, 5, 1)
	want := cm.Forward(x)

	dst := mat.New(9, 2)
	for i := 0; i < 3; i++ { // repeated reuse must stay correct
		cm.ForwardInto(dst, x)
		if !mat.Equal(want, dst, 0) {
			t.Fatalf("ForwardInto pass %d differs from Forward", i)
		}
	}

	var out []float64
	for i := 0; i < x.Rows; i++ {
		out = cm.ForwardRow(x.Row(i), out)
		for j, v := range out {
			if v != want.At(i, j) {
				t.Fatalf("ForwardRow(%d)[%d] = %v, want %v", i, j, v, want.At(i, j))
			}
		}
	}
}

// TestCompileSnapshotsWeights verifies Compile deep-copies: mutating (or
// retraining) the source MLP must not change compiled predictions.
func TestCompileSnapshotsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, MLPConfig{In: 3, Hidden: 8, Out: 2, Layers: 2, Activation: ActTanh})
	cm := Compile(m)
	x := mat.RandN(rng, 4, 3, 1)
	before := cm.Forward(x)

	for _, p := range m.Params() {
		p.Data.Fill(123.456) // simulate a training step clobbering weights
	}
	after := cm.Forward(x)
	if !mat.Equal(before, after, 0) {
		t.Fatal("compiled output changed when source MLP weights were mutated")
	}
}

// TestCompiledConcurrentForward hammers one CompiledMLP from many
// goroutines (run under -race by scripts/check.sh) and checks every result
// against the serial reference — shared arena buffers must never bleed
// between concurrent passes.
func TestCompiledConcurrentForward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, MLPConfig{In: 5, Hidden: 32, Out: 2, Layers: 3, Activation: ActGELU})
	cm := Compile(m)

	const goroutines = 16
	inputs := make([]*mat.Matrix, goroutines)
	want := make([]*mat.Matrix, goroutines)
	for i := range inputs {
		inputs[i] = mat.RandN(rng, 1+i%5, 5, 1)
		want[i] = cm.Forward(inputs[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dst := mat.New(inputs[i].Rows, 2)
			for iter := 0; iter < 200; iter++ {
				cm.ForwardInto(dst, inputs[i])
				if !mat.Equal(want[i], dst, 0) {
					errs <- fmt.Errorf("goroutine %d iter %d: concurrent forward diverged", i, iter)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCompiledMLPShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cm := Compile(NewMLP(rng, MLPConfig{In: 5, Hidden: 8, Out: 2, Layers: 1, Activation: ActReLU}))
	for name, f := range map[string]func(){
		"wrong input width": func() { cm.Forward(mat.New(1, 4)) },
		"wrong dst shape":   func() { cm.ForwardInto(mat.New(1, 3), mat.New(1, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
