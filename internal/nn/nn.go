// Package nn builds the neural predictors used across the framework: the
// per-operator utilization MLPs at the heart of NeuSight (paper Section 4.3),
// the larger MLPs used for the Habitat baseline, and the transformer
// regressor used in the "larger predictors" study (paper Table 1).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	ad "neusight/internal/autodiff"
	"neusight/internal/mat"
)

// Module is anything with a forward pass over a batch matrix and trainable
// parameters.
type Module interface {
	// Forward maps a (batch x in) matrix to a (batch x out) matrix.
	Forward(x *ad.Value) *ad.Value
	// Params returns the trainable parameters in a stable order.
	Params() []*ad.Value
}

// Activation selects the nonlinearity applied between MLP layers.
type Activation int

// Supported activations.
const (
	ActReLU Activation = iota
	ActTanh
	ActGELU
	ActSigmoid
)

func applyAct(a Activation, x *ad.Value) *ad.Value {
	switch a {
	case ActReLU:
		return ad.ReLU(x)
	case ActTanh:
		return ad.Tanh(x)
	case ActGELU:
		return ad.GELU(x)
	case ActSigmoid:
		return ad.Sigmoid(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Linear is a fully-connected layer y = xW + b.
type Linear struct {
	W *ad.Value // in x out
	B *ad.Value // 1 x out
}

// NewLinear builds a Linear layer with Kaiming-style initialization.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	std := math.Sqrt(2.0 / float64(in))
	return &Linear{
		W: ad.NewVariable(mat.RandN(rng, in, out, std)),
		B: ad.NewVariable(mat.New(1, out)),
	}
}

// Forward implements Module.
func (l *Linear) Forward(x *ad.Value) *ad.Value {
	return ad.AddRowVector(ad.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*ad.Value { return []*ad.Value{l.W, l.B} }

// MLPConfig describes a multi-layer perceptron.
type MLPConfig struct {
	In         int        // input feature count
	Hidden     int        // hidden width
	Out        int        // output count
	Layers     int        // number of hidden layers
	Activation Activation // nonlinearity between layers
}

// MLP is a stack of Linear layers with a fixed activation, mirroring the
// paper's predictor: "8 hidden layers, each with 512 hidden units ... ReLU
// applied at the end of every layer" (scaled down by callers where pure-Go
// training time matters).
type MLP struct {
	Cfg    MLPConfig
	layers []*Linear
}

// NewMLP builds an MLP per cfg, seeded by rng.
func NewMLP(rng *rand.Rand, cfg MLPConfig) *MLP {
	if cfg.Layers < 1 {
		panic("nn: MLP needs at least one hidden layer")
	}
	m := &MLP{Cfg: cfg}
	m.layers = append(m.layers, NewLinear(rng, cfg.In, cfg.Hidden))
	for i := 1; i < cfg.Layers; i++ {
		m.layers = append(m.layers, NewLinear(rng, cfg.Hidden, cfg.Hidden))
	}
	m.layers = append(m.layers, NewLinear(rng, cfg.Hidden, cfg.Out))
	return m
}

// Forward implements Module.
func (m *MLP) Forward(x *ad.Value) *ad.Value {
	h := x
	for i, l := range m.layers {
		h = l.Forward(h)
		if i != len(m.layers)-1 {
			h = applyAct(m.Cfg.Activation, h)
		}
	}
	return h
}

// Params implements Module.
func (m *MLP) Params() []*ad.Value {
	var ps []*ad.Value
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total trainable scalar count.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data.Data)
	}
	return n
}
