package nn

import (
	"fmt"
	"math"

	"neusight/internal/mat"
)

// CompiledMLP is the inference-only form of a trained MLP: a snapshot of the
// layer weights as plain matrices plus a forward pass that runs with zero
// autodiff overhead — no graph nodes, no gradient buffers, no backward
// closures — and zero steady-state heap allocations (scratch comes from a
// sync.Pool-backed arena, bias + activation fuse into one pass).
//
// Compile deep-copies the weights, so a CompiledMLP is immutable: training
// the source MLP afterwards does not disturb in-flight inference, and one
// CompiledMLP may serve any number of goroutines concurrently. Callers that
// retrain must Compile again to pick up new weights.
//
// The forward pass is bit-identical to MLP.Forward: the matmul accumulates
// in the same k-order and the scalar activations use the same formulas as
// the autodiff ops, so compiling never changes a prediction.
type CompiledMLP struct {
	Cfg MLPConfig

	ws  []*mat.Matrix // layer i weights, in_i x out_i
	bs  []*mat.Matrix // layer i bias, 1 x out_i
	act func(float64) float64

	arena mat.Arena // hidden-activation scratch, recycled across calls
}

// Compile snapshots m into its inference-only form.
func Compile(m *MLP) *CompiledMLP {
	if len(m.layers) == 0 {
		panic("nn: Compile on an empty MLP")
	}
	c := &CompiledMLP{Cfg: m.Cfg, act: ActFunc(m.Cfg.Activation)}
	for _, l := range m.layers {
		c.ws = append(c.ws, l.W.Data.Clone())
		c.bs = append(c.bs, l.B.Data.Clone())
	}
	return c
}

// ActFunc returns the scalar implementation of a. The formulas are exactly
// those of the corresponding autodiff ops (internal/autodiff), so compiled
// inference reproduces training-time numerics bit for bit.
func ActFunc(a Activation) func(float64) float64 {
	switch a {
	case ActReLU:
		return func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		}
	case ActTanh:
		return math.Tanh
	case ActGELU:
		const c = 0.7978845608028654 // sqrt(2/pi)
		return func(x float64) float64 {
			return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
		}
	case ActSigmoid:
		return SigmoidScalar
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// SigmoidScalar is the scalar logistic function, matching autodiff.Sigmoid.
func SigmoidScalar(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward maps a (batch x in) matrix to a freshly allocated (batch x out)
// matrix. For an allocation-free pass, use ForwardInto with a reused dst.
func (c *CompiledMLP) Forward(x *mat.Matrix) *mat.Matrix {
	return c.ForwardInto(mat.New(x.Rows, c.Cfg.Out), x)
}

// ForwardInto runs the forward pass into dst, which must be batch x out and
// must not alias x. Hidden activations ping-pong between two arena buffers,
// so a steady-state call allocates nothing. Returns dst.
func (c *CompiledMLP) ForwardInto(dst, x *mat.Matrix) *mat.Matrix {
	if x.Cols != c.Cfg.In {
		panic(fmt.Sprintf("nn: CompiledMLP input has %d features, want %d", x.Cols, c.Cfg.In))
	}
	if dst.Rows != x.Rows || dst.Cols != c.Cfg.Out {
		panic(fmt.Sprintf("nn: CompiledMLP dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, c.Cfg.Out))
	}
	h := x
	var scratch *mat.Matrix
	last := len(c.ws) - 1
	for i, w := range c.ws {
		if i == last {
			// Output layer: matmul into dst, bias added in place, no
			// activation (heads are consumed raw, e.g. by sigmoid bounding
			// in the utilization law).
			mat.MatMulInto(dst, h, w)
			mat.AddRowVectorInto(dst, dst, c.bs[i])
			break
		}
		next := c.arena.Get(h.Rows, w.Cols)
		mat.MatMulInto(next, h, w)
		mat.AddRowVectorApplyInto(next, next, c.bs[i], c.act)
		if scratch != nil {
			c.arena.Put(scratch)
		}
		scratch = next
		h = next
	}
	if scratch != nil {
		c.arena.Put(scratch)
	}
	return dst
}

// ForwardRow runs a single-sample forward pass: in has length Cfg.In, and
// the heads are written into out (allocated when nil or mis-sized) and
// returned. This is the hot path of a single cache-miss prediction.
func (c *CompiledMLP) ForwardRow(in, out []float64) []float64 {
	if out == nil || len(out) != c.Cfg.Out {
		out = make([]float64, c.Cfg.Out)
	}
	x := mat.Matrix{Rows: 1, Cols: len(in), Data: in}
	dst := mat.Matrix{Rows: 1, Cols: len(out), Data: out}
	c.ForwardInto(&dst, &x)
	return out
}

// NumLayers returns the Linear layer count (hidden layers + output head).
func (c *CompiledMLP) NumLayers() int { return len(c.ws) }
