package nn

import (
	"encoding/json"
	"fmt"

	ad "neusight/internal/autodiff"
	"neusight/internal/mat"
)

// mlpState is the JSON wire form of a trained MLP.
type mlpState struct {
	Cfg     MLPConfig   `json:"cfg"`
	Weights [][]float64 `json:"weights"`
	Shapes  [][2]int    `json:"shapes"`
}

// MarshalJSON serializes the MLP architecture and weights.
func (m *MLP) MarshalJSON() ([]byte, error) {
	st := mlpState{Cfg: m.Cfg}
	for _, p := range m.Params() {
		w := make([]float64, len(p.Data.Data))
		copy(w, p.Data.Data)
		st.Weights = append(st.Weights, w)
		st.Shapes = append(st.Shapes, [2]int{p.Data.Rows, p.Data.Cols})
	}
	return json.Marshal(st)
}

// UnmarshalJSON restores an MLP previously produced by MarshalJSON.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var st mlpState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	fresh := &MLP{Cfg: st.Cfg}
	fresh.layers = append(fresh.layers, zeroLinear(st.Cfg.In, st.Cfg.Hidden))
	for i := 1; i < st.Cfg.Layers; i++ {
		fresh.layers = append(fresh.layers, zeroLinear(st.Cfg.Hidden, st.Cfg.Hidden))
	}
	fresh.layers = append(fresh.layers, zeroLinear(st.Cfg.Hidden, st.Cfg.Out))
	ps := fresh.Params()
	if len(ps) != len(st.Weights) {
		return fmt.Errorf("nn: weight count %d does not match architecture (%d tensors)", len(st.Weights), len(ps))
	}
	for i, p := range ps {
		if st.Shapes[i] != [2]int{p.Data.Rows, p.Data.Cols} {
			return fmt.Errorf("nn: tensor %d shape %v does not match %dx%d", i, st.Shapes[i], p.Data.Rows, p.Data.Cols)
		}
		if len(st.Weights[i]) != len(p.Data.Data) {
			return fmt.Errorf("nn: tensor %d length %d does not match %d", i, len(st.Weights[i]), len(p.Data.Data))
		}
		copy(p.Data.Data, st.Weights[i])
	}
	*m = *fresh
	return nil
}

func zeroLinear(in, out int) *Linear {
	return &Linear{
		W: ad.NewVariable(mat.New(in, out)),
		B: ad.NewVariable(mat.New(1, out)),
	}
}
