package tile

import (
	"sync"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// TestDBConcurrentAddLookup hammers one DB from 32 goroutines mixing Add,
// Lookup, LookupOrSelect, and Len. It exists to fail under `go test -race`
// if any of the DB's locking (records RWMutex, memo mutex, generation
// invalidation) regresses.
func TestDBConcurrentAddLookup(t *testing.T) {
	db := NewDB()
	gpus := []gpu.Spec{gpu.MustLookup("V100"), gpu.MustLookup("H100"), gpu.MustLookup("A100-40GB")}

	// Seed a few records so lookups have matches from the start.
	for i := 1; i <= 4; i++ {
		k := kernels.NewBMM(i, 64*i, 64, 64)
		db.Add(k, gpus[0], Select(k, gpus[0]))
	}

	const goroutines = 32
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := gpus[w%len(gpus)]
			for i := 0; i < iters; i++ {
				k := kernels.NewBMM(1+(w+i)%8, 32+32*(i%4), 64, 64)
				switch i % 4 {
				case 0: // writer: mutates records and bumps the memo generation
					db.Add(k, g, Select(k, g))
				case 1:
					if tl, ok := db.Lookup(k, g); ok && len(tl.Dims) == 0 {
						t.Error("Lookup returned an empty tile with ok=true")
					}
				case 2:
					if tl := db.LookupOrSelect(k, g); len(tl.Dims) == 0 {
						t.Error("LookupOrSelect returned an empty tile")
					}
				default:
					if db.Len() < 4 {
						t.Error("Len dropped below the seeded count")
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := db.Len(), 4+goroutines*iters/4; got != want {
		t.Errorf("final record count = %d, want %d", got, want)
	}
}

// TestDBMemoInvalidation checks that LookupOrSelect answers change when a
// closer record is added after the memo has been populated.
func TestDBMemoInvalidation(t *testing.T) {
	db := NewDB()
	g := gpu.MustLookup("V100")
	far := kernels.NewBMM(64, 2048, 2048, 2048)
	db.Add(far, g, Tile{Dims: []int{256, 256}})

	query := kernels.NewBMM(1, 32, 32, 32)
	if got := db.LookupOrSelect(query, g); got.Dims[0] != 256 {
		t.Fatalf("pre-invalidation tile = %v, want the far record's 256x256", got.Dims)
	}
	// A record exactly matching the query must now win, despite the memo.
	db.Add(query, g, Tile{Dims: []int{16, 16}})
	if got := db.LookupOrSelect(query, g); got.Dims[0] != 16 {
		t.Errorf("post-invalidation tile = %v, want the exact record's 16x16", got.Dims)
	}
}

// TestDBConcurrentLookupOrSelectSingleKey drives many goroutines at one
// key to exercise the memoize-while-scanning path.
func TestDBConcurrentLookupOrSelectSingleKey(t *testing.T) {
	db := NewDB()
	g := gpu.MustLookup("H100")
	k := kernels.NewLinear(512, 1024, 1024)
	db.Add(k, g, Select(k, g))

	want := db.LookupOrSelect(k, g)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got := db.LookupOrSelect(k, g)
				if len(got.Dims) != len(want.Dims) {
					t.Error("inconsistent tile across concurrent lookups")
					return
				}
			}
		}()
	}
	wg.Wait()
}
