package tile

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

func TestSelectLargeGEMMUsesBigTiles(t *testing.T) {
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(8, 2048, 2048, 2048)
	tl := Select(k, g)
	if len(tl.Dims) != 3 || tl.Dims[0] != 1 {
		t.Fatalf("BMM tile rank/batch wrong: %v", tl.Dims)
	}
	if tl.Dims[1]*tl.Dims[2] < 128*128 {
		t.Fatalf("large GEMM picked small tile %v", tl.Dims)
	}
}

func TestSelectSmallGEMMShrinksTiles(t *testing.T) {
	g := gpu.MustLookup("V100")
	big := Select(kernels.NewBMM(64, 4096, 64, 4096), g)
	small := Select(kernels.NewBMM(1, 64, 64, 64), g)
	if small.Dims[1]*small.Dims[2] > big.Dims[1]*big.Dims[2] {
		t.Fatalf("small GEMM tile %v larger than big GEMM tile %v", small.Dims, big.Dims)
	}
	if small.Dims[1] > 64 || small.Dims[2] > 64 {
		t.Fatalf("tiny GEMM should use tiles <= 64: %v", small.Dims)
	}
}

func TestSelectFitsWithoutPaddingWaste(t *testing.T) {
	// The chosen GEMM tile never exceeds the matrix along either axis
	// unless the matrix is smaller than the smallest candidate.
	g := gpu.MustLookup("H100")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(4096), 1+r.Intn(4096)
		tl := Select(kernels.NewBMM(1+r.Intn(16), m, 64, n), g)
		tm, tn := tl.Dims[1], tl.Dims[2]
		fits := tm <= m && tn <= n
		tiny := m < 32 || n < 32
		return fits || (tiny && tm == 32 && tn == 32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectBatchIndependent(t *testing.T) {
	// Batched GEMM libraries keep the tile fixed as batch grows; the batch
	// dimension maps onto the grid (so waves grow smoothly, paper Fig. 5).
	g := gpu.MustLookup("V100")
	base := Select(kernels.NewBMM(1, 256, 256, 256), g)
	for _, b := range []int{2, 17, 100, 300} {
		tl := Select(kernels.NewBMM(b, 256, 256, 256), g)
		if tl.Dims[1] != base.Dims[1] || tl.Dims[2] != base.Dims[2] {
			t.Fatalf("tile changed with batch %d: %v vs %v", b, tl.Dims, base.Dims)
		}
	}
}

func TestSelectRowwiseOps(t *testing.T) {
	g := gpu.MustLookup("A100-40GB")
	sm := Select(kernels.NewSoftmax(8192, 2048), g)
	if sm.Dims[0] != 1 || sm.Dims[1] != 2048 {
		t.Fatalf("softmax tile = %v, want one row", sm.Dims)
	}
	huge := Select(kernels.NewSoftmax(8192, 100000), g)
	if huge.Dims[1] != 4096 {
		t.Fatalf("softmax tile cap = %v, want 4096", huge.Dims)
	}
	ew := Select(kernels.NewElementwise(kernels.OpEWAdd, 8192, 4096), g)
	if ew.Dims[1] != 1024 {
		t.Fatalf("elementwise tile = %v, want 1024-wide blocks", ew.Dims)
	}
}

func TestNumTilesAndWaves(t *testing.T) {
	// paper Fig. 3: 4x4 output with 2x2 tiles -> 4 tiles.
	if got := NumTiles([]int{4, 4}, Tile{Dims: []int{2, 2}}); got != 4 {
		t.Fatalf("NumTiles = %d, want 4", got)
	}
	// Ragged division rounds up.
	if got := NumTiles([]int{5, 4}, Tile{Dims: []int{2, 2}}); got != 6 {
		t.Fatalf("NumTiles ragged = %d, want 6", got)
	}
	if got := NumWaves(9, 4); got != 3 {
		t.Fatalf("NumWaves = %d, want 3", got)
	}
	if got := NumWaves(8, 4); got != 2 {
		t.Fatalf("NumWaves exact = %d, want 2", got)
	}
}

// Property: the tile decomposition always covers the output — numTiles
// times the tile volume is at least the output volume (paper Eq. 2).
func TestTileCoverageProperty(t *testing.T) {
	gpus := gpu.All()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gpus[r.Intn(len(gpus))]
		k := kernels.NewBMM(1+r.Intn(32), 1+r.Intn(4096), 1+r.Intn(4096), 1+r.Intn(4096))
		tl := Select(k, g)
		tiles := NumTiles(k.OutputDims(), tl)
		tileVol, outVol := 1, 1
		for i, d := range k.OutputDims() {
			tileVol *= tl.Dims[i]
			outVol *= d
		}
		return tiles*tileVol >= outVol && tiles >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: waves never decrease when the batch grows (more tiles need more
// waves on the same SM count).
func TestWavesMonotoneInBatch(t *testing.T) {
	g := gpu.MustLookup("V100")
	prev := 0
	for b := 1; b <= 300; b += 7 {
		k := kernels.NewBMM(b, 256, 256, 256)
		w := Waves(k, Select(k, g), g)
		if w < prev {
			t.Fatalf("waves decreased at batch %d: %d < %d", b, w, prev)
		}
		prev = w
	}
}

func TestPerTileCosts(t *testing.T) {
	g := gpu.MustLookup("T4")
	k := kernels.NewBMM(2, 512, 512, 512)
	tl := Select(k, g)
	n := float64(NumTiles(k.OutputDims(), tl))
	if got := FLOPsPerTile(k, tl) * n; got != k.FLOPs() {
		t.Fatalf("per-tile flops don't sum back: %v vs %v", got, k.FLOPs())
	}
	if got := MemPerTile(k, tl) * n; got != k.MemBytes() {
		t.Fatalf("per-tile bytes don't sum back: %v vs %v", got, k.MemBytes())
	}
}

func TestDBExactAndNearestLookup(t *testing.T) {
	db := NewDB()
	v100 := gpu.MustLookup("V100")
	k := kernels.NewBMM(4, 1024, 1024, 1024)
	db.Add(k, v100, Tile{Dims: []int{1, 128, 128}})

	// Exact kernel, same GPU.
	got, ok := db.Lookup(k, v100)
	if !ok || got.Dims[1] != 128 {
		t.Fatalf("exact lookup = %v, %v", got, ok)
	}
	// Nearby kernel on an unseen GPU still resolves to the profiled tile.
	h100 := gpu.MustLookup("H100")
	near := kernels.NewBMM(4, 1100, 1024, 1000)
	got, ok = db.Lookup(near, h100)
	if !ok || got.Dims[1] != 128 {
		t.Fatalf("nearest lookup = %v, %v", got, ok)
	}
}

func TestDBCategoryIsolation(t *testing.T) {
	db := NewDB()
	g := gpu.MustLookup("V100")
	db.Add(kernels.NewSoftmax(1024, 512), g, Tile{Dims: []int{1, 512}})
	// A BMM query must not match a softmax record.
	if _, ok := db.Lookup(kernels.NewBMM(1, 512, 512, 512), g); ok {
		t.Fatal("lookup crossed predictor categories")
	}
}

func TestDBPrefersCloserRecord(t *testing.T) {
	db := NewDB()
	g := gpu.MustLookup("V100")
	db.Add(kernels.NewBMM(1, 64, 64, 64), g, Tile{Dims: []int{1, 32, 32}})
	db.Add(kernels.NewBMM(1, 2048, 2048, 2048), g, Tile{Dims: []int{1, 128, 128}})
	got, ok := db.Lookup(kernels.NewBMM(1, 1800, 2048, 2000), g)
	if !ok || got.Dims[1] != 128 {
		t.Fatalf("lookup = %v, want the large-GEMM record", got)
	}
	got, _ = db.Lookup(kernels.NewBMM(1, 48, 64, 80), g)
	if got.Dims[1] != 32 {
		t.Fatalf("lookup = %v, want the small-GEMM record", got)
	}
}

func TestDBLookupOrSelectFallback(t *testing.T) {
	db := NewDB()
	g := gpu.MustLookup("L4")
	k := kernels.NewLayerNorm(4096, 1024)
	tl := db.LookupOrSelect(k, g)
	if want := Select(k, g); tl.Dims[1] != want.Dims[1] {
		t.Fatalf("fallback tile = %v, want heuristic %v", tl.Dims, want.Dims)
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	g := gpu.MustLookup("P100")
	db.Add(kernels.NewBMM(2, 256, 256, 256), g, Tile{Dims: []int{1, 64, 64}})
	db.Add(kernels.NewSoftmax(512, 512), g, Tile{Dims: []int{1, 512}})

	path := filepath.Join(t.TempDir(), "tiles.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", back.Len())
	}
	got, ok := back.Lookup(kernels.NewBMM(2, 256, 256, 256), g)
	if !ok || got.Dims[1] != 64 {
		t.Fatalf("lookup after reload = %v, %v", got, ok)
	}
}
