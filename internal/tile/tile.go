// Package tile implements the tiling layer of the framework: the
// CUTLASS-style heuristic that GPU libraries use to pick a thread-block tile
// for each kernel, the wave arithmetic of paper Eq. 2-3, and the tile
// database that NeuSight consults at prediction time (paper Section 6.1:
// tile sizes are recorded during profiling and recovered by nearest-match
// lookup on kernel name, input dimensions, and GPU features).
package tile

import (
	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// Tile is the per-output-dimension tile shape selected for a kernel. Its
// length always matches the kernel's OutputDims.
type Tile struct {
	Dims []int
}

// gemmCandidates are the thread-block tiles CUTLASS-like libraries choose
// from, largest first ("typical tile dimensions used by GEMM library ranges
// from 32 to 256", paper Section 4.2).
var gemmCandidates = [][2]int{
	{256, 128}, {128, 256}, {128, 128},
	{128, 64}, {64, 128}, {64, 64},
	{64, 32}, {32, 64}, {32, 32},
}

// Select picks the tile a tuned GPU library would dispatch for k on g.
// The heuristic mirrors CUTLASS's behavior for batched GEMM: the tile is
// chosen from the per-matrix (M, N) shape — the largest candidate that fits
// without padding waste — while the batch dimension maps onto the grid.
// This keeps the choice independent of batch size, which is what makes
// latency scale in discrete waves as batch grows (paper Fig. 4-5).
func Select(k kernels.Kernel, g gpu.Spec) Tile {
	dims := k.OutputDims()
	switch k.Category() {
	case kernels.CatBMM, kernels.CatLinear:
		m, n := dims[len(dims)-2], dims[len(dims)-1]
		for _, c := range gemmCandidates {
			if c[0] <= m && c[1] <= n {
				return padTile(dims, c[0], c[1])
			}
		}
		// Matrices smaller than the smallest tile still occupy one block.
		return padTile(dims, 32, 32)
	case kernels.CatSoftmax, kernels.CatLayerNorm:
		// Row-wise reductions: one thread block handles one row (capped at
		// the library's max block footprint).
		cols := dims[1]
		if cols > 4096 {
			cols = 4096
		}
		return Tile{Dims: []int{1, cols}}
	default:
		// Elementwise and memory-bound ops: fixed-size flat blocks.
		cols := dims[1]
		if cols > 1024 {
			cols = 1024
		}
		return Tile{Dims: []int{1, cols}}
	}
}

// padTile builds a GEMM tile matching the rank of dims (batch dim tiled
// at 1).
func padTile(dims []int, tm, tn int) Tile {
	if len(dims) == 3 {
		return Tile{Dims: []int{1, tm, tn}}
	}
	return Tile{Dims: []int{tm, tn}}
}

// NumTiles evaluates paper Eq. 2: the product over output dimensions of
// ceil(x_i / t_i).
func NumTiles(dims []int, t Tile) int {
	if len(dims) != len(t.Dims) {
		panic("tile: rank mismatch between output dims and tile")
	}
	n := 1
	for i, x := range dims {
		n *= ceilDiv(x, t.Dims[i])
	}
	return n
}

// NumWaves evaluates paper Eq. 3: ceil(numTiles / numSMs).
func NumWaves(numTiles, sms int) int {
	return ceilDiv(numTiles, sms)
}

// Waves is the composed convenience: select nothing, just count waves for a
// kernel already assigned tile t on g.
func Waves(k kernels.Kernel, t Tile, g gpu.Spec) int {
	return NumWaves(NumTiles(k.OutputDims(), t), g.SMs)
}

// FLOPsPerTile divides the kernel's FLOPs evenly over its tiles, matching
// the identical-tile decomposition of Section 4.2.
func FLOPsPerTile(k kernels.Kernel, t Tile) float64 {
	return k.FLOPs() / float64(NumTiles(k.OutputDims(), t))
}

// MemPerTile divides the kernel's memory traffic evenly over its tiles.
func MemPerTile(k kernels.Kernel, t Tile) float64 {
	return k.MemBytes() / float64(NumTiles(k.OutputDims(), t))
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("tile: non-positive divisor")
	}
	return (a + b - 1) / b
}
