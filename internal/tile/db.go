package tile

import (
	"encoding/json"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// Record is one profiled tile observation: which tile the library chose for
// a kernel shape on a GPU, keyed by the features NeuSight may legitimately
// use at prediction time.
type Record struct {
	Op       kernels.Op `json:"op"`
	Dims     []int      `json:"dims"` // kernel output dims
	SMs      int        `json:"sms"`
	L2MB     float64    `json:"l2_mb"`
	PeakTF   float64    `json:"peak_tflops"`
	MemBWGBs float64    `json:"mem_bw_gbs"`
	Tile     []int      `json:"tile"`
}

// DB stores profiled tile records and answers nearest-match queries. All
// methods are safe for concurrent use: Add may interleave freely with
// Lookup/LookupOrSelect. Repeated LookupOrSelect queries for the same
// (kernel, GPU) are served from a memo that Add invalidates, so the hot
// serving path pays the O(records) nearest-match scan only once per unique
// query per database generation.
type DB struct {
	mu      sync.RWMutex
	records []Record

	memoMu sync.Mutex
	memo   map[string]Tile
	// memoGen is bumped by Add; a scan only memoizes if the generation is
	// unchanged. Atomic rather than memoMu-guarded: Generation() sits on
	// the serving layer's cache-key path, where an exclusive lock shared
	// with the miss-path memo would serialize every cache hit.
	memoGen atomic.Uint64
}

// memoLimit bounds the LookupOrSelect memo; when full the memo is dropped
// wholesale (queries repeat heavily in serving workloads, so the reset
// refills almost immediately with the live working set).
const memoLimit = 8192

// QueryKey fingerprints a (kernel, GPU) prediction query. Every cache along
// the serving path — the DB memo here, the predictor's tile cache, and the
// serve layer's prediction LRU — must key on this same fingerprint, or the
// layers silently disagree about what "identical request" means.
// Kernel.Label encodes operator, dimensions, precision, and fusion
// metadata; GPU specs are registry entries uniquely identified by name.
func QueryKey(k kernels.Kernel, g gpu.Spec) string {
	return k.Label() + "@" + g.Name
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{} }

// Add records the tile observed for kernel k on device g and invalidates
// the LookupOrSelect memo, since the new record may now be a nearer match.
func (db *DB) Add(k kernels.Kernel, g gpu.Spec, t Tile) {
	db.mu.Lock()
	db.records = append(db.records, Record{
		Op: k.Op, Dims: append([]int(nil), k.OutputDims()...),
		SMs: g.SMs, L2MB: g.L2CacheMB, PeakTF: g.PeakFLOPS, MemBWGBs: g.MemoryBWGBs,
		Tile: append([]int(nil), t.Dims...),
	})
	db.mu.Unlock()
	// Clear and bump in one critical section: a reader that observes the
	// new generation must never pair it with a pre-Add memo entry (its memo
	// access serializes behind this lock), and an in-flight scan that
	// started under the old generation re-checks it before memoizing.
	db.memoMu.Lock()
	db.memo = nil
	db.memoGen.Add(1)
	db.memoMu.Unlock()
}

// Generation reports how many times the record set has changed. Callers
// that memoize LookupOrSelect results (e.g. the predictor's tile cache)
// compare generations to notice when a new record may have changed the
// nearest match.
func (db *DB) Generation() uint64 {
	return db.memoGen.Load()
}

// Len reports the number of stored records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Lookup returns the tile of the nearest recorded kernel by log-space
// distance over (output dims, GPU features), restricted to the same
// predictor category (the paper matches on kernel name first). The boolean
// is false when the database holds no record of that category with the
// same output rank.
func (db *DB) Lookup(k kernels.Kernel, g gpu.Spec) (Tile, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	dims := k.OutputDims()
	cat := k.Category()
	best := -1
	bestDist := math.Inf(1)
	for i, r := range db.records {
		if kernels.Categorize(r.Op) != cat || len(r.Dims) != len(dims) {
			continue
		}
		d := 0.0
		for j := range dims {
			d += sqDiffLog(float64(dims[j]), float64(r.Dims[j]))
		}
		d += sqDiffLog(float64(g.SMs), float64(r.SMs))
		d += sqDiffLog(g.L2CacheMB, r.L2MB)
		d += sqDiffLog(g.PeakFLOPS, r.PeakTF)
		d += sqDiffLog(g.MemoryBWGBs, r.MemBWGBs)
		if d < bestDist {
			bestDist, best = d, i
		}
	}
	if best < 0 {
		return Tile{}, false
	}
	return Tile{Dims: append([]int(nil), db.records[best].Tile...)}, true
}

// LookupOrSelect resolves the tile for k on g from profiled data, falling
// back to the library heuristic when the database has no usable record.
// Results are memoized per (kernel, GPU) and invalidated whenever Add
// changes the record set, making repeated serving-path queries O(1).
func (db *DB) LookupOrSelect(k kernels.Kernel, g gpu.Spec) Tile {
	key := QueryKey(k, g)
	gen := db.memoGen.Load()
	db.memoMu.Lock()
	if t, ok := db.memo[key]; ok {
		db.memoMu.Unlock()
		return t
	}
	db.memoMu.Unlock()

	t, ok := db.Lookup(k, g)
	if !ok {
		t = Select(k, g)
	}

	db.memoMu.Lock()
	// Only memoize if no Add landed during the scan: a fresher record could
	// have changed the nearest match, and a stale cache would pin it.
	if db.memoGen.Load() == gen {
		if db.memo == nil {
			db.memo = make(map[string]Tile)
		} else if len(db.memo) >= memoLimit {
			db.memo = make(map[string]Tile)
		}
		db.memo[key] = t
	}
	db.memoMu.Unlock()
	return t
}

func sqDiffLog(a, b float64) float64 {
	d := math.Log1p(a) - math.Log1p(b)
	return d * d
}

// Save writes the database as JSON to path.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	data, err := json.MarshalIndent(db.records, "", " ")
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDB reads a database previously written by Save.
func LoadDB(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, err
	}
	return &DB{records: recs}, nil
}
