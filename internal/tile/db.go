package tile

import (
	"encoding/json"
	"math"
	"os"
	"sync"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// Record is one profiled tile observation: which tile the library chose for
// a kernel shape on a GPU, keyed by the features NeuSight may legitimately
// use at prediction time.
type Record struct {
	Op       kernels.Op `json:"op"`
	Dims     []int      `json:"dims"` // kernel output dims
	SMs      int        `json:"sms"`
	L2MB     float64    `json:"l2_mb"`
	PeakTF   float64    `json:"peak_tflops"`
	MemBWGBs float64    `json:"mem_bw_gbs"`
	Tile     []int      `json:"tile"`
}

// DB stores profiled tile records and answers nearest-match queries. It is
// safe for concurrent lookup after loading; Add may race with Lookup and is
// guarded.
type DB struct {
	mu      sync.RWMutex
	records []Record
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{} }

// Add records the tile observed for kernel k on device g.
func (db *DB) Add(k kernels.Kernel, g gpu.Spec, t Tile) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records = append(db.records, Record{
		Op: k.Op, Dims: append([]int(nil), k.OutputDims()...),
		SMs: g.SMs, L2MB: g.L2CacheMB, PeakTF: g.PeakFLOPS, MemBWGBs: g.MemoryBWGBs,
		Tile: append([]int(nil), t.Dims...),
	})
}

// Len reports the number of stored records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Lookup returns the tile of the nearest recorded kernel by log-space
// distance over (output dims, GPU features), restricted to the same
// predictor category (the paper matches on kernel name first). The boolean
// is false when the database holds no record of that category with the
// same output rank.
func (db *DB) Lookup(k kernels.Kernel, g gpu.Spec) (Tile, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	dims := k.OutputDims()
	cat := k.Category()
	best := -1
	bestDist := math.Inf(1)
	for i, r := range db.records {
		if kernels.Categorize(r.Op) != cat || len(r.Dims) != len(dims) {
			continue
		}
		d := 0.0
		for j := range dims {
			d += sqDiffLog(float64(dims[j]), float64(r.Dims[j]))
		}
		d += sqDiffLog(float64(g.SMs), float64(r.SMs))
		d += sqDiffLog(g.L2CacheMB, r.L2MB)
		d += sqDiffLog(g.PeakFLOPS, r.PeakTF)
		d += sqDiffLog(g.MemoryBWGBs, r.MemBWGBs)
		if d < bestDist {
			bestDist, best = d, i
		}
	}
	if best < 0 {
		return Tile{}, false
	}
	return Tile{Dims: append([]int(nil), db.records[best].Tile...)}, true
}

// LookupOrSelect resolves the tile for k on g from profiled data, falling
// back to the library heuristic when the database has no usable record.
func (db *DB) LookupOrSelect(k kernels.Kernel, g gpu.Spec) Tile {
	if t, ok := db.Lookup(k, g); ok {
		return t
	}
	return Select(k, g)
}

func sqDiffLog(a, b float64) float64 {
	d := math.Log1p(a) - math.Log1p(b)
	return d * d
}

// Save writes the database as JSON to path.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	data, err := json.MarshalIndent(db.records, "", " ")
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDB reads a database previously written by Save.
func LoadDB(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, err
	}
	return &DB{records: recs}, nil
}
