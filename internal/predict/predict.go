// Package predict defines the engine abstraction every latency forecaster
// in the framework speaks. The paper's evaluation is comparative — NeuSight's
// tile-level ML predictor against Habitat-style MLPs, Li-style regression,
// and roofline bounds — yet each of those backends grew its own calling
// convention. An Engine normalizes them behind one contract:
//
//   - requests and results are structured (Request{Kernel, GPU} in,
//     Result{Latency, Utilization, Engine, Source} out) instead of
//     positional arguments and bare floats;
//   - the batch path is first-class (PredictKernels), so backends that can
//     amortize one model evaluation across a batch expose that without the
//     serving layer duck-typing for it;
//   - context flows through every call, so serving traffic can cancel work
//     it no longer needs.
//
// Optional capabilities — training, persistence, whole-graph forecasting,
// state generations for cache invalidation, native batching, shard
// affinity — are separate interfaces an engine implements only when its
// backend supports them. The Registry holds the engine set a process
// serves, turning "which predictor answers this request" into per-request
// routing instead of a compile-time decision; its version counter lets
// sharded serving layers rebalance when the set changes.
package predict

import (
	"context"
	"fmt"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// Request is one kernel-latency question: how long does Kernel take on GPU?
type Request struct {
	Kernel kernels.Kernel
	GPU    gpu.Spec
}

// Result is an engine's answer to a Request.
type Result struct {
	// Latency is the forecast kernel latency in milliseconds.
	Latency float64
	// Utilization is the fraction of the device's peak the forecast assumes,
	// in (0, 1], when the engine exposes one; 0 when it does not (direct
	// regression engines predict latency without a utilization model).
	Utilization float64
	// Engine is the name of the engine that produced the forecast.
	Engine string
	// Source classifies how the forecast was produced (see the Source*
	// constants) — e.g. a learned model versus a closed-form bound.
	Source string
}

// Outcome pairs a Result with its error for positional batch replies:
// outcomes[i] answers reqs[i], and a failed item reports in place without
// disturbing its neighbors.
type Outcome struct {
	Result Result
	Err    error
}

// Source classifications for Result.Source.
const (
	// SourceModel marks forecasts from the learned tile/utilization pipeline.
	SourceModel = "model"
	// SourceRegression marks forecasts from fitted regressors (direct MLPs,
	// transformers, per-GPU linear fits).
	SourceRegression = "regression"
	// SourceAnalytical marks closed-form bounds (roofline).
	SourceAnalytical = "analytical"
	// SourceSimulator marks micro-architectural simulation.
	SourceSimulator = "simulator"
	// SourceBackend marks forecasts from an adapted legacy backend whose
	// provenance is unknown to the adapter.
	SourceBackend = "backend"
)

// Engine is a kernel-latency forecaster. Implementations must be safe for
// concurrent use once constructed (and, when Trainable, once trained).
type Engine interface {
	// Name returns the engine's registry name (stable, lowercase).
	Name() string
	// PredictKernel answers one Request. Network kernels are rejected with
	// an error — the distributed layer prices them — and a cancelled context
	// returns ctx.Err().
	PredictKernel(ctx context.Context, req Request) (Result, error)
	// PredictKernels answers a batch positionally: the returned slice has
	// exactly len(reqs) outcomes, outcomes[i] answering reqs[i]. Engines
	// with a native batch path amortize one model evaluation across the
	// batch; others evaluate sequentially, honoring ctx between items.
	PredictKernels(ctx context.Context, reqs []Request) []Outcome
}

// Trainable is implemented by engines whose backend fits to a profiled
// dataset before it can predict.
type Trainable interface {
	Train(ds *dataset.Dataset) error
}

// Persistable is implemented by engines whose trained state can be saved
// to disk.
type Persistable interface {
	Save(path string) error
}

// Calibrator is implemented by engines that can fold measured latencies
// back into their trained state — the retrain half of the observe
// feedback loop. base is the offline training set to retain (nil when the
// process has none, e.g. a model loaded from disk); observed carries the
// measured latencies as samples. Implementations must hot-swap atomically
// and, when also Generational, bump their generation so serving caches
// invalidate.
type Calibrator interface {
	Calibrate(base *dataset.Dataset, observed []dataset.Sample) error
}

// GraphPredictor is implemented by engines with a whole-graph forecast
// path that is cheaper or more faithful than summing PredictKernels —
// core.Predictor batches every kernel through one compiled forward pass
// per operator category.
type GraphPredictor interface {
	PredictGraph(ctx context.Context, gr *graph.Graph, g gpu.Spec) (float64, core.GraphReport, error)
}

// Generational is implemented by engines whose forecasts can change over
// the engine's lifetime — retraining, a growing profiling database. The
// returned value must change whenever previously returned results may
// differ, so serving caches that fold it into their keys invalidate
// automatically instead of serving stale forecasts.
type Generational interface {
	Generation() uint64
}

// ShardHint is implemented by engines that want a say in how sharded
// serving layers partition their traffic. Engines returning the same
// non-empty affinity key are hashed together, so engines that share
// mutable backend state (for example several views over one trained
// predictor) land on the same shard and contend on one lock domain
// instead of spreading that contention across every shard.
type ShardHint interface {
	// ShardAffinity returns the affinity key sharded routers hash in
	// place of the engine name. Empty means "no preference" and falls
	// back to the engine name.
	ShardAffinity() string
}

// ShardAffinity returns e's shard-affinity key: the ShardHint value when
// the engine declares a non-empty one, else the engine name.
func ShardAffinity(e Engine) string {
	if h, ok := e.(ShardHint); ok {
		if key := h.ShardAffinity(); key != "" {
			return key
		}
	}
	return e.Name()
}

// Batcher reports whether PredictKernels amortizes one backend evaluation
// across the whole batch (true) or is a sequential convenience loop
// (false). Serving layers use it to decide between holding one worker slot
// for the batch versus fanning items across a pool.
type Batcher interface {
	NativeBatch() bool
}

// NativeBatch reports whether e declares a native batch path.
func NativeBatch(e Engine) bool {
	b, ok := e.(Batcher)
	return ok && b.NativeBatch()
}

// Generation returns e's state generation, or 0 when e is not Generational.
func Generation(e Engine) uint64 {
	if g, ok := e.(Generational); ok {
		return g.Generation()
	}
	return 0
}

// checkRequest applies the checks shared by every engine: a cancelled
// context fails fast and network kernels are rejected uniformly.
func checkRequest(ctx context.Context, req Request) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if req.Kernel.Category() == kernels.CatNetwork {
		return fmt.Errorf("predict: network kernel %s is priced by the distributed layer, not a kernel engine", req.Kernel.Label())
	}
	return nil
}

// FoldOutcomes folds positional batch outcomes (outs[i] answering ks[i])
// into a latency total with the memory-bound fallback — the Outcome-shaped
// face of core.FoldPredictions, which owns the aggregation rule (including
// aborting on context cancellation rather than folding half a graph into
// fallback guesses).
func FoldOutcomes(outs []Outcome, ks []kernels.Kernel, g gpu.Spec, rep *core.GraphReport) (float64, error) {
	lats := make([]float64, len(outs))
	errs := make([]error, len(outs))
	for i, out := range outs {
		lats[i], errs[i] = out.Result.Latency, out.Err
	}
	return core.FoldPredictions(lats, errs, ks, g, rep)
}

// PredictGraphKernels forecasts a kernel list end to end with e under the
// paper's sequential-execution assumption: network kernels are skipped for
// the distributed layer, the rest go through e's batch path, and failures
// fall back to the memory-bound estimate, counted in the report. It is the
// graph aggregation every engine without a native PredictGraph shares.
func PredictGraphKernels(ctx context.Context, e Engine, ks []kernels.Kernel, g gpu.Spec) (float64, core.GraphReport, error) {
	var rep core.GraphReport
	reqs := make([]Request, 0, len(ks))
	kept := make([]kernels.Kernel, 0, len(ks))
	for _, k := range ks {
		if k.Category() == kernels.CatNetwork {
			rep.Network++
			continue
		}
		reqs = append(reqs, Request{Kernel: k, GPU: g})
		kept = append(kept, k)
	}
	total, err := FoldOutcomes(e.PredictKernels(ctx, reqs), kept, g, &rep)
	return total, rep, err
}

// batchByGPU is the shared shape of the native batch adapters: requests
// are validated, grouped by GPU (batches are almost always single-GPU),
// each group is evaluated by evalGroup into a positional scratch slice,
// and the results scatter back to the original request positions. A
// context cancelled between groups fails the remaining groups with
// ctx.Err().
func batchByGPU(ctx context.Context, reqs []Request, evalGroup func(ks []kernels.Kernel, g gpu.Spec, group []Outcome)) []Outcome {
	outs := make([]Outcome, len(reqs))
	byGPU := map[string][]int{}
	var order []string
	for i, req := range reqs {
		if err := checkRequest(ctx, req); err != nil {
			outs[i].Err = err
			continue
		}
		if _, ok := byGPU[req.GPU.Name]; !ok {
			order = append(order, req.GPU.Name)
		}
		byGPU[req.GPU.Name] = append(byGPU[req.GPU.Name], i)
	}
	for _, name := range order {
		idxs := byGPU[name]
		if err := ctx.Err(); err != nil {
			for _, i := range idxs {
				outs[i].Err = err
			}
			continue
		}
		ks := make([]kernels.Kernel, len(idxs))
		for j, i := range idxs {
			ks[j] = reqs[i].Kernel
		}
		group := make([]Outcome, len(idxs))
		evalGroup(ks, reqs[idxs[0]].GPU, group)
		for j, i := range idxs {
			outs[i] = group[j]
		}
	}
	return outs
}

// sequentialKernels implements PredictKernels for engines without a native
// batch path: items evaluate in order, and a context cancellation fails the
// remaining items with ctx.Err() instead of evaluating them.
func sequentialKernels(ctx context.Context, e Engine, reqs []Request) []Outcome {
	outs := make([]Outcome, len(reqs))
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(reqs); j++ {
				outs[j].Err = err
			}
			return outs
		}
		outs[i].Result, outs[i].Err = e.PredictKernel(ctx, req)
	}
	return outs
}
