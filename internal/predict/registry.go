package predict

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrUnknownEngine is wrapped by Get for unregistered names, so callers
// (e.g. the HTTP layer) can classify a routing miss — a client error —
// apart from a prediction failure.
var ErrUnknownEngine = errors.New("unknown engine")

// Registry is a thread-safe name -> Engine map: the set of predictors a
// process can route requests to. Serving picks an engine per request, the
// CLI per flag, and the experiment harness iterates the set — all against
// the same registration.
//
// The registry also carries the routing hints sharded serving layers
// consume: a monotonically increasing Version that bumps on every
// registration change (so routers know when their shard assignments are
// stale and must rebalance), and the per-engine shard-affinity key
// (see ShardHint / ShardAffinity in predict.go).
type Registry struct {
	mu      sync.RWMutex
	engines map[string]Engine
	version atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{engines: map[string]Engine{}}
}

// Register adds e under e.Name(). It fails on an empty name or a duplicate
// registration — engine names are routing keys, so silently replacing one
// would redirect live traffic.
func (r *Registry) Register(e Engine) error {
	if e == nil {
		return fmt.Errorf("predict: cannot register a nil engine")
	}
	name := e.Name()
	if name == "" {
		return fmt.Errorf("predict: cannot register an engine with an empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.engines[name]; ok {
		return fmt.Errorf("predict: engine %q already registered", name)
	}
	r.engines[name] = e
	r.version.Add(1)
	return nil
}

// Unregister removes the engine registered under name, reporting whether
// one was registered. Traffic already routed to the engine completes; new
// lookups fail with ErrUnknownEngine, and serving layers observing Version
// rebalance their shard assignments and drop the engine's cached
// forecasts.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.engines[name]; !ok {
		return false
	}
	delete(r.engines, name)
	r.version.Add(1)
	return true
}

// Version returns a counter that increases on every Register/Unregister.
// Routers cache it alongside derived routing state (shard assignments,
// per-engine partitions) and rebuild when it drifts — a cheap atomic load
// per request instead of a registry diff.
func (r *Registry) Version() uint64 { return r.version.Load() }

// MustRegister is Register that panics on error — for process start-up
// where a collision is a programming bug.
func (r *Registry) MustRegister(e Engine) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Get returns the engine registered under name. The error names the
// registered engines, so a typo in an API request or CLI flag is
// self-diagnosing.
func (r *Registry) Get(name string) (Engine, error) {
	r.mu.RLock()
	e, ok := r.engines[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("predict: %w %q (registered: %s)", ErrUnknownEngine, name, strings.Join(r.List(), ", "))
	}
	return e, nil
}

// List returns the registered engine names, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.engines))
	for n := range r.engines {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered engines.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.engines)
}
