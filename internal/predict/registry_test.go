package predict

import (
	"errors"
	"sync"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

func testEngine(name string) Engine {
	return NewFuncEngine(name, SourceAnalytical,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) { return 1, nil })
}

func TestRegistryUnregisterAndVersion(t *testing.T) {
	reg := NewRegistry()
	v0 := reg.Version()
	reg.MustRegister(testEngine("a"))
	if reg.Version() == v0 {
		t.Error("Version must bump on Register")
	}
	v1 := reg.Version()
	if !reg.Unregister("a") {
		t.Fatal("Unregister(a) reported no engine")
	}
	if reg.Version() == v1 {
		t.Error("Version must bump on Unregister")
	}
	if reg.Unregister("a") {
		t.Error("second Unregister must report false")
	}
	if _, err := reg.Get("a"); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("Get after Unregister = %v, want ErrUnknownEngine", err)
	}
	// The name is reusable after unregistration.
	if err := reg.Register(testEngine("a")); err != nil {
		t.Errorf("re-Register after Unregister: %v", err)
	}
}

func TestRegistryConcurrentChurn(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(testEngine("stable"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Register(testEngine("churn"))
				reg.Get("stable")
				reg.Version()
				reg.List()
				reg.Unregister("churn")
			}
		}()
	}
	wg.Wait()
	if _, err := reg.Get("stable"); err != nil {
		t.Errorf("stable engine lost during churn: %v", err)
	}
}

// affinityEngine declares a shard-affinity key distinct from its name.
type affinityEngine struct {
	Engine
	key string
}

func (e affinityEngine) ShardAffinity() string { return e.key }

func TestShardAffinity(t *testing.T) {
	plain := testEngine("plain")
	if got := ShardAffinity(plain); got != "plain" {
		t.Errorf("ShardAffinity(plain) = %q, want the engine name", got)
	}
	hinted := affinityEngine{Engine: testEngine("hinted"), key: "shared-core"}
	if got := ShardAffinity(hinted); got != "shared-core" {
		t.Errorf("ShardAffinity(hinted) = %q, want the declared key", got)
	}
	empty := affinityEngine{Engine: testEngine("empty"), key: ""}
	if got := ShardAffinity(empty); got != "empty" {
		t.Errorf("ShardAffinity with empty hint = %q, want the engine name fallback", got)
	}
}
