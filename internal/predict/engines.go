package predict

import (
	"context"
	"fmt"

	"neusight/internal/baselines"
	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// Canonical engine names. Every adapter in this file registers under one of
// these; the serving layer's default is EngineNeuSight.
const (
	EngineNeuSight          = "neusight"
	EngineHabitat           = "habitat"
	EngineLiRegression      = "liregression"
	EngineRoofline          = "roofline"
	EngineDirectMLP         = "direct-mlp"
	EngineDirectTransformer = "direct-transformer"
	EngineGPUSim            = "gpusim"
)

// Info describes one engine of the standard set for listings (the CLI
// `engines` subcommand, GET /v2/engines).
type Info struct {
	Name        string `json:"name"`
	Source      string `json:"source"`
	Trainable   bool   `json:"trainable"`
	Description string `json:"description"`
}

// Catalog returns the standard engine set in presentation order: the paper's
// comparison predictors plus the measurement substrate.
func Catalog() []Info {
	return []Info{
		{EngineNeuSight, SourceModel, true, "NeuSight tile/utilization pipeline: per-category MLPs bounded by performance laws (most accurate OOD)"},
		{EngineRoofline, SourceAnalytical, false, "analytical max(FLOPs/peak, bytes/BW) bound: instant, optimistic lower bound"},
		{EngineHabitat, SourceRegression, true, "Habitat (Yu et al.): per-operator MLPs + reference-GPU scaling for vector ops"},
		{EngineLiRegression, SourceRegression, true, "Li et al.: per-GPU FLOPs->latency lines, bandwidth-extrapolated to unseen GPUs"},
		{EngineDirectMLP, SourceRegression, true, "direct log-latency MLP regression on kernel dims + GPU spec (fails OOD)"},
		{EngineDirectTransformer, SourceRegression, true, "direct log-latency transformer regression (Table 1 study)"},
		{EngineGPUSim, SourceSimulator, false, "the measurement substrate itself: hidden-parameter device simulation (ground truth here, unavailable for real unreleased GPUs)"},
	}
}

// CoreEngine adapts *core.Predictor — the NeuSight predictor — to the
// Engine contract. It is the only engine of the standard set with a native
// batch path (one compiled forward pass per operator category) and a
// whole-graph forecast, and the only Generational one (retraining and tile
// profiling bump the generation).
type CoreEngine struct {
	P *core.Predictor
}

// NewCoreEngine wraps p.
func NewCoreEngine(p *core.Predictor) *CoreEngine {
	if p == nil {
		panic("predict: nil core predictor")
	}
	return &CoreEngine{P: p}
}

// Name implements Engine.
func (e *CoreEngine) Name() string { return EngineNeuSight }

// PredictKernel implements Engine via the compiled inference path.
func (e *CoreEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, util, err := e.P.PredictKernelDetail(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Utilization: util, Engine: EngineNeuSight, Source: SourceModel}, nil
}

// PredictKernels implements Engine natively: requests are grouped by GPU
// (batches are almost always single-GPU) and each group pays one batched
// core evaluation — one featurization, normalization, and compiled forward
// pass per operator category.
func (e *CoreEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return batchByGPU(ctx, reqs, func(ks []kernels.Kernel, g gpu.Spec, group []Outcome) {
		lats, utils, errs := e.P.PredictKernelsDetail(ks, g)
		for j := range ks {
			if errs[j] != nil {
				group[j].Err = errs[j]
				continue
			}
			group[j].Result = Result{Latency: lats[j], Utilization: utils[j], Engine: EngineNeuSight, Source: SourceModel}
		}
	})
}

// NativeBatch implements Batcher.
func (e *CoreEngine) NativeBatch() bool { return true }

// Train implements Trainable.
func (e *CoreEngine) Train(ds *dataset.Dataset) error {
	e.P.Train(ds)
	return nil
}

// Save implements Persistable.
func (e *CoreEngine) Save(path string) error { return e.P.Save(path) }

// Calibrate implements Calibrator: observed latencies are folded into the
// training set and the affected categories retrained through the core
// predictor's shadow-train + hot-swap path, bumping the generation.
func (e *CoreEngine) Calibrate(base *dataset.Dataset, observed []dataset.Sample) error {
	rep := e.P.Calibrate(base, observed)
	if len(rep.Trained) == 0 {
		return fmt.Errorf("predict: no calibration sample falls in a trained category (%d skipped)", rep.Skipped)
	}
	return nil
}

// Generation implements Generational.
func (e *CoreEngine) Generation() uint64 { return e.P.Generation() }

// PredictGraph implements GraphPredictor through the batched core path.
func (e *CoreEngine) PredictGraph(ctx context.Context, gr *graph.Graph, g gpu.Spec) (float64, core.GraphReport, error) {
	if err := ctx.Err(); err != nil {
		return 0, core.GraphReport{}, err
	}
	return e.P.PredictGraph(gr, g)
}

// HabitatEngine adapts the Habitat baseline.
type HabitatEngine struct {
	H *baselines.Habitat
}

// NewHabitatEngine wraps h.
func NewHabitatEngine(h *baselines.Habitat) *HabitatEngine {
	if h == nil {
		panic("predict: nil habitat baseline")
	}
	return &HabitatEngine{H: h}
}

// Name implements Engine.
func (e *HabitatEngine) Name() string { return EngineHabitat }

// PredictKernel implements Engine.
func (e *HabitatEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.H.PredictKernel(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Engine: EngineHabitat, Source: SourceRegression}, nil
}

// PredictKernels implements Engine sequentially.
func (e *HabitatEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}

// Train implements Trainable.
func (e *HabitatEngine) Train(ds *dataset.Dataset) error {
	e.H.Train(ds)
	return nil
}

// LiEngine adapts the Li et al. regression baseline.
type LiEngine struct {
	L *baselines.LiRegression
}

// NewLiEngine wraps l.
func NewLiEngine(l *baselines.LiRegression) *LiEngine {
	if l == nil {
		panic("predict: nil li regression baseline")
	}
	return &LiEngine{L: l}
}

// Name implements Engine.
func (e *LiEngine) Name() string { return EngineLiRegression }

// PredictKernel implements Engine.
func (e *LiEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.L.PredictKernel(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Engine: EngineLiRegression, Source: SourceRegression}, nil
}

// PredictKernels implements Engine sequentially.
func (e *LiEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}

// Train implements Trainable.
func (e *LiEngine) Train(ds *dataset.Dataset) error {
	e.L.Train(ds)
	return nil
}

// RooflineEngine adapts the analytical roofline bound. It needs no
// training and reports utilization 1 — the bound's defining assumption.
type RooflineEngine struct {
	R baselines.Roofline
}

// NewRooflineEngine returns the roofline engine.
func NewRooflineEngine() *RooflineEngine { return &RooflineEngine{} }

// Name implements Engine.
func (e *RooflineEngine) Name() string { return EngineRoofline }

// PredictKernel implements Engine.
func (e *RooflineEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.R.PredictKernel(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Utilization: 1, Engine: EngineRoofline, Source: SourceAnalytical}, nil
}

// PredictKernels implements Engine sequentially.
func (e *RooflineEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}

// DirectMLPEngine adapts the direct log-latency MLP regressor.
type DirectMLPEngine struct {
	M *baselines.DirectMLP
}

// NewDirectMLPEngine wraps m.
func NewDirectMLPEngine(m *baselines.DirectMLP) *DirectMLPEngine {
	if m == nil {
		panic("predict: nil direct MLP")
	}
	return &DirectMLPEngine{M: m}
}

// Name implements Engine.
func (e *DirectMLPEngine) Name() string { return EngineDirectMLP }

// PredictKernel implements Engine.
func (e *DirectMLPEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.M.Predict(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Engine: EngineDirectMLP, Source: SourceRegression}, nil
}

// PredictKernels implements Engine sequentially.
func (e *DirectMLPEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}

// Train implements Trainable.
func (e *DirectMLPEngine) Train(ds *dataset.Dataset) error {
	e.M.Train(ds.Samples)
	return nil
}

// DirectTransformerEngine adapts the transformer regressor of the Table 1
// study.
type DirectTransformerEngine struct {
	T *baselines.DirectTransformer
}

// NewDirectTransformerEngine wraps t.
func NewDirectTransformerEngine(t *baselines.DirectTransformer) *DirectTransformerEngine {
	if t == nil {
		panic("predict: nil direct transformer")
	}
	return &DirectTransformerEngine{T: t}
}

// Name implements Engine.
func (e *DirectTransformerEngine) Name() string { return EngineDirectTransformer }

// PredictKernel implements Engine.
func (e *DirectTransformerEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.T.Predict(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Engine: EngineDirectTransformer, Source: SourceRegression}, nil
}

// PredictKernels implements Engine sequentially.
func (e *DirectTransformerEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}

// Train implements Trainable.
func (e *DirectTransformerEngine) Train(ds *dataset.Dataset) error {
	e.T.Train(ds.Samples)
	return nil
}

// SimEngine adapts the gpusim measurement substrate. In this repo it is
// ground truth made routable: the cheap-vs-learned split the registry
// enables would, on real hardware, route to a profiler for in-hand devices
// and to learned engines for unreleased ones.
type SimEngine struct {
	S *gpusim.Simulator
}

// NewSimEngine wraps s.
func NewSimEngine(s *gpusim.Simulator) *SimEngine {
	if s == nil {
		panic("predict: nil simulator")
	}
	return &SimEngine{S: s}
}

// Name implements Engine.
func (e *SimEngine) Name() string { return EngineGPUSim }

// PredictKernel implements Engine. The network-kernel guard in checkRequest
// matters here: the simulator panics on network kernels by design.
func (e *SimEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat := e.S.KernelLatency(req.Kernel, req.GPU)
	util := gpusim.UtilizationFromLatency(req.Kernel, req.GPU, lat)
	return Result{Latency: lat, Utilization: util, Engine: EngineGPUSim, Source: SourceSimulator}, nil
}

// PredictKernels implements Engine sequentially.
func (e *SimEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}

// KernelBackend is the minimal single-kernel backend AdaptBackend wraps —
// the historical serving-layer contract (*core.Predictor, *core.Ensemble,
// and test stubs all satisfy it).
type KernelBackend interface {
	Name() string
	PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error)
}

// BatchBackend is optionally implemented by backends with a native batch
// evaluation (the historical serve.BatchKernelPredictor shape).
type BatchBackend interface {
	PredictKernels(ks []kernels.Kernel, g gpu.Spec) ([]float64, []error)
}

// BackendEngine adapts a legacy KernelBackend into an Engine named after
// the backend. It preserves the backend's native batch path and state
// generation when the backend exposes them.
type BackendEngine struct {
	b KernelBackend
}

// AdaptBackend wraps b.
func AdaptBackend(b KernelBackend) *BackendEngine {
	if b == nil {
		panic("predict: nil backend")
	}
	return &BackendEngine{b: b}
}

// Name implements Engine with the backend's own name.
func (e *BackendEngine) Name() string { return e.b.Name() }

// PredictKernel implements Engine.
func (e *BackendEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.b.PredictKernel(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Engine: e.b.Name(), Source: SourceBackend}, nil
}

// PredictKernels implements Engine: natively when the backend batches,
// sequentially otherwise.
func (e *BackendEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	bb, ok := e.b.(BatchBackend)
	if !ok {
		return sequentialKernels(ctx, e, reqs)
	}
	return batchByGPU(ctx, reqs, func(ks []kernels.Kernel, g gpu.Spec, group []Outcome) {
		lats, errs := bb.PredictKernels(ks, g)
		if len(lats) != len(ks) || len(errs) != len(ks) {
			err := fmt.Errorf("predict: backend %s returned %d/%d results for %d kernels", e.b.Name(), len(lats), len(errs), len(ks))
			for j := range group {
				group[j].Err = err
			}
			return
		}
		for j := range ks {
			if errs[j] != nil {
				group[j].Err = errs[j]
				continue
			}
			group[j].Result = Result{Latency: lats[j], Engine: e.b.Name(), Source: SourceBackend}
		}
	})
}

// NativeBatch implements Batcher: true when the wrapped backend batches.
func (e *BackendEngine) NativeBatch() bool {
	_, ok := e.b.(BatchBackend)
	return ok
}

// Generation implements Generational, delegating to the backend when it
// tracks one (0 otherwise — a constant generation never invalidates).
func (e *BackendEngine) Generation() uint64 {
	if g, ok := e.b.(Generational); ok {
		return g.Generation()
	}
	return 0
}

// FuncEngine wraps a bare prediction function as an engine — the cheapest
// way to put an ad-hoc variant (an ablation knockout, a test stub) behind
// the Engine contract.
type FuncEngine struct {
	name   string
	source string
	fn     func(kernels.Kernel, gpu.Spec) (float64, error)
}

// NewFuncEngine returns an engine named name that answers with fn.
func NewFuncEngine(name, source string, fn func(kernels.Kernel, gpu.Spec) (float64, error)) *FuncEngine {
	if fn == nil {
		panic("predict: nil engine func")
	}
	return &FuncEngine{name: name, source: source, fn: fn}
}

// Name implements Engine.
func (e *FuncEngine) Name() string { return e.name }

// PredictKernel implements Engine.
func (e *FuncEngine) PredictKernel(ctx context.Context, req Request) (Result, error) {
	if err := checkRequest(ctx, req); err != nil {
		return Result{}, err
	}
	lat, err := e.fn(req.Kernel, req.GPU)
	if err != nil {
		return Result{}, err
	}
	return Result{Latency: lat, Engine: e.name, Source: e.source}, nil
}

// PredictKernels implements Engine sequentially.
func (e *FuncEngine) PredictKernels(ctx context.Context, reqs []Request) []Outcome {
	return sequentialKernels(ctx, e, reqs)
}
