package predict

import (
	"context"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// BenchmarkEngineDispatch quantifies what the engine abstraction costs on
// the hot path: the same trained predictor queried directly
// (core.Predictor.PredictKernel, the pre-registry serving path) versus
// through a registry lookup plus the Engine contract (Request/Result
// structs, context check, interface dispatch). The indirection must stay
// within noise — well under the 5% budget the serving layer allows — or
// the registry would tax every forecast it routes.
func BenchmarkEngineDispatch(b *testing.B) {
	reg := conformanceRegistry(b)
	eng, err := reg.Get(EngineNeuSight)
	if err != nil {
		b.Fatal(err)
	}
	p := eng.(*CoreEngine).P
	k := kernels.NewBMM(4, 256, 256, 256)
	g := gpu.MustLookup("V100")
	// Warm the tile cache so both variants measure the compiled forward
	// path, not the one-time database scan.
	if _, err := p.PredictKernel(k, g); err != nil {
		b.Fatal(err)
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.PredictKernel(k, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		req := Request{Kernel: k, GPU: g}
		for i := 0; i < b.N; i++ {
			e, err := reg.Get(EngineNeuSight)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.PredictKernel(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineBatchDispatch is the batch-path equivalent: one compiled
// forward pass per category, direct versus through the engine contract.
func BenchmarkEngineBatchDispatch(b *testing.B) {
	reg := conformanceRegistry(b)
	eng, err := reg.Get(EngineNeuSight)
	if err != nil {
		b.Fatal(err)
	}
	p := eng.(*CoreEngine).P
	reqs := conformanceRequests()
	ks := make([]kernels.Kernel, len(reqs))
	for i, r := range reqs {
		ks[i] = r.Kernel
	}
	g := reqs[0].GPU
	p.PredictKernels(ks, g) // warm tile cache

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.PredictKernels(ks, g)
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			eng.PredictKernels(ctx, reqs)
		}
	})
}
