package predict

import (
	"context"
	"sync"
	"testing"

	"neusight/internal/baselines"
	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

var (
	fixtureOnce sync.Once
	fixtureReg  *Registry
)

// conformanceRegistry trains every engine of the standard set once on a
// reduced dataset and registers all seven — the exact registration `serve
// -quick` builds.
func conformanceRegistry(t testing.TB) *Registry {
	t.Helper()
	fixtureOnce.Do(func() {
		tdb := tile.NewDB()
		sim := gpusim.New()
		ds := dataset.Generate(dataset.GenConfig{
			Seed: 11, BMM: 60, FC: 30, EW: 20, Softmax: 10, LN: 10,
			GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
		}, sim, tdb)

		p := core.NewPredictor(core.Config{
			Hidden: 24, Layers: 2, Epochs: 8, BatchSize: 128, LR: 3e-3, Seed: 11,
		}, tdb)
		p.Train(ds)

		cfg := baselines.DirectConfig{Hidden: 24, Layers: 2, Epochs: 10, BatchSize: 128, LR: 3e-3, Seed: 11}
		h := baselines.NewHabitat(cfg, sim)
		h.Train(ds)
		li := baselines.NewLiRegression()
		li.Train(ds)
		m := baselines.NewDirectMLP(cfg)
		m.Train(ds.Samples)
		trCfg := cfg
		trCfg.Epochs = 3
		tr := baselines.NewDirectTransformer(trCfg, 1)
		tr.Train(ds.Samples[:200])

		reg := NewRegistry()
		reg.MustRegister(NewCoreEngine(p))
		reg.MustRegister(NewRooflineEngine())
		reg.MustRegister(NewHabitatEngine(h))
		reg.MustRegister(NewLiEngine(li))
		reg.MustRegister(NewDirectMLPEngine(m))
		reg.MustRegister(NewDirectTransformerEngine(tr))
		reg.MustRegister(NewSimEngine(sim))
		fixtureReg = reg
	})
	return fixtureReg
}

// conformanceRequests is the request set every engine must answer: one
// kernel per trained operator category on an in-distribution GPU, plus a
// repeated shape so batch dedup paths are exercised.
func conformanceRequests() []Request {
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{
		kernels.NewBMM(4, 256, 256, 256),
		kernels.NewLinear(128, 512, 512),
		kernels.NewElementwise(kernels.OpEWGELU, 128, 1024),
		kernels.NewSoftmax(64, 512),
		kernels.NewLayerNorm(64, 1024),
		kernels.NewBMM(4, 256, 256, 256), // duplicate of [0]
	}
	reqs := make([]Request, len(ks))
	for i, k := range ks {
		reqs[i] = Request{Kernel: k, GPU: g}
	}
	return reqs
}

// TestEngineConformance runs every registered engine through the same
// contract checks: registration-name agreement, determinism, batch ==
// sequential parity, uniform network-kernel rejection, and honored context
// cancellation. This is the drift detector: a new backend that lands
// without meeting the contract fails here, not in production routing.
func TestEngineConformance(t *testing.T) {
	reg := conformanceRegistry(t)
	want := []string{
		EngineDirectMLP, EngineDirectTransformer, EngineGPUSim,
		EngineHabitat, EngineLiRegression, EngineNeuSight, EngineRoofline,
	}
	got := reg.List()
	if len(got) != len(want) {
		t.Fatalf("registered engines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered engines = %v, want %v", got, want)
		}
	}

	ctx := context.Background()
	reqs := conformanceRequests()
	for _, name := range reg.List() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, err := reg.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Name() != name {
				t.Fatalf("engine registered as %q reports Name() = %q", name, eng.Name())
			}

			// Determinism: identical requests produce identical results.
			for _, req := range reqs {
				a, errA := eng.PredictKernel(ctx, req)
				b, errB := eng.PredictKernel(ctx, req)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s: nondeterministic error for %s: %v vs %v", name, req.Kernel.Label(), errA, errB)
				}
				if errA != nil {
					continue
				}
				if a != b {
					t.Fatalf("%s: nondeterministic result for %s: %+v vs %+v", name, req.Kernel.Label(), a, b)
				}
				if a.Latency <= 0 {
					t.Fatalf("%s: non-positive latency %v for %s", name, a.Latency, req.Kernel.Label())
				}
				if a.Engine != name {
					t.Fatalf("%s: result names engine %q", name, a.Engine)
				}
				if a.Source == "" {
					t.Fatalf("%s: result has no source", name)
				}
			}

			// Batch == sequential parity, positionally.
			outs := eng.PredictKernels(ctx, reqs)
			if len(outs) != len(reqs) {
				t.Fatalf("%s: batch returned %d outcomes for %d requests", name, len(outs), len(reqs))
			}
			for i, req := range reqs {
				single, err := eng.PredictKernel(ctx, req)
				if (err == nil) != (outs[i].Err == nil) {
					t.Fatalf("%s: batch/sequential error mismatch at %d: %v vs %v", name, i, outs[i].Err, err)
				}
				if err != nil {
					continue
				}
				if outs[i].Result != single {
					t.Fatalf("%s: batch result %d = %+v, sequential = %+v", name, i, outs[i].Result, single)
				}
			}

			// Network kernels are rejected uniformly.
			netReq := Request{Kernel: kernels.NewAllReduce(1 << 20), GPU: reqs[0].GPU}
			if _, err := eng.PredictKernel(ctx, netReq); err == nil {
				t.Fatalf("%s: network kernel must be rejected", name)
			}
			if out := eng.PredictKernels(ctx, []Request{netReq}); out[0].Err == nil {
				t.Fatalf("%s: network kernel must be rejected in batches", name)
			}

			// A cancelled context fails fast, single and batch.
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := eng.PredictKernel(cancelled, reqs[0]); err == nil {
				t.Fatalf("%s: cancelled context must fail PredictKernel", name)
			}
			for i, out := range eng.PredictKernels(cancelled, reqs) {
				if out.Err == nil {
					t.Fatalf("%s: cancelled context must fail batch item %d", name, i)
				}
			}
		})
	}
}

// TestUntrainedEnginesError: every trainable engine, fresh from its
// constructor, reports an error for a kernel it has not been fitted for —
// never a bare garbage float and never a panic.
func TestUntrainedEnginesError(t *testing.T) {
	cfg := baselines.DirectConfig{Hidden: 8, Layers: 1, Epochs: 1, BatchSize: 32, LR: 3e-3, Seed: 1}
	fresh := []Engine{
		NewCoreEngine(core.NewPredictor(core.DefaultConfig(), nil)),
		NewHabitatEngine(baselines.NewHabitat(cfg, gpusim.New())),
		NewLiEngine(baselines.NewLiRegression()),
		NewDirectMLPEngine(baselines.NewDirectMLP(cfg)),
		NewDirectTransformerEngine(baselines.NewDirectTransformer(cfg, 1)),
	}
	ctx := context.Background()
	req := Request{Kernel: kernels.NewBMM(2, 128, 128, 128), GPU: gpu.MustLookup("V100")}
	for _, eng := range fresh {
		if _, ok := eng.(Trainable); !ok {
			t.Errorf("%s: expected a Trainable engine", eng.Name())
		}
		if _, err := eng.PredictKernel(ctx, req); err == nil {
			t.Errorf("%s: untrained engine must error on an untrained category", eng.Name())
		}
	}
}

// TestCoreEngineCapabilities pins the capability surface of the primary
// engine: native batching, training, persistence, graph forecasting, and a
// generation that moves on retrain.
func TestCoreEngineCapabilities(t *testing.T) {
	reg := conformanceRegistry(t)
	eng, err := reg.Get(EngineNeuSight)
	if err != nil {
		t.Fatal(err)
	}
	if !NativeBatch(eng) {
		t.Error("core engine must declare a native batch path")
	}
	if _, ok := eng.(Trainable); !ok {
		t.Error("core engine must be Trainable")
	}
	if _, ok := eng.(Persistable); !ok {
		t.Error("core engine must be Persistable")
	}
	if _, ok := eng.(GraphPredictor); !ok {
		t.Error("core engine must be a GraphPredictor")
	}
	if Generation(eng) == 0 {
		t.Error("trained core engine must report a non-zero generation")
	}
	// The roofline engine has none of these capabilities, and the helpers
	// degrade gracefully.
	roof, err := reg.Get(EngineRoofline)
	if err != nil {
		t.Fatal(err)
	}
	if NativeBatch(roof) || Generation(roof) != 0 {
		t.Error("roofline engine must report no native batch and generation 0")
	}
}

// TestRegistrySemantics covers Register/Get/List edge cases.
func TestRegistrySemantics(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(nil); err == nil {
		t.Error("nil engine must be rejected")
	}
	if err := reg.Register(NewFuncEngine("", SourceAnalytical,
		func(kernels.Kernel, gpu.Spec) (float64, error) { return 1, nil })); err == nil {
		t.Error("empty name must be rejected")
	}
	e := NewRooflineEngine()
	if err := reg.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(NewRooflineEngine()); err == nil {
		t.Error("duplicate registration must be rejected")
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Error("unknown engine must error")
	}
	got, err := reg.Get(EngineRoofline)
	if err != nil || got != Engine(e) {
		t.Errorf("Get returned %v, %v", got, err)
	}
	if l := reg.List(); len(l) != 1 || l[0] != EngineRoofline {
		t.Errorf("List = %v", l)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
}

// TestRegistryConcurrentAccess runs Register/Get/List from many goroutines
// (under -race via scripts/check.sh).
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := string(rune('a' + w))
			reg.MustRegister(NewFuncEngine(name, SourceAnalytical,
				func(kernels.Kernel, gpu.Spec) (float64, error) { return 1, nil }))
			for i := 0; i < 100; i++ {
				if _, err := reg.Get(name); err != nil {
					t.Error(err)
					return
				}
				reg.List()
			}
		}()
	}
	wg.Wait()
	if reg.Len() != 8 {
		t.Fatalf("Len = %d, want 8", reg.Len())
	}
}

// TestBackendEngineAdapter covers the legacy-backend adapter: name
// passthrough, native batch detection, and generation delegation.
func TestBackendEngineAdapter(t *testing.T) {
	reg := conformanceRegistry(t)
	eng, err := reg.Get(EngineNeuSight)
	if err != nil {
		t.Fatal(err)
	}
	p := eng.(*CoreEngine).P

	adapted := AdaptBackend(p)
	if adapted.Name() != p.Name() {
		t.Errorf("adapter name = %q, want backend name %q", adapted.Name(), p.Name())
	}
	if !adapted.NativeBatch() {
		t.Error("core predictor batches natively; the adapter must detect it")
	}
	if adapted.Generation() != p.Generation() {
		t.Error("adapter must delegate the backend generation")
	}

	ctx := context.Background()
	req := conformanceRequests()[0]
	direct, err := p.PredictKernel(req.Kernel, req.GPU)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adapted.PredictKernel(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != direct {
		t.Errorf("adapted latency %v != direct %v", res.Latency, direct)
	}
	outs := adapted.PredictKernels(ctx, conformanceRequests())
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("batch item %d: %v", i, out.Err)
		}
	}
	if outs[0].Result.Latency != direct {
		t.Errorf("adapted batch latency %v != direct %v", outs[0].Result.Latency, direct)
	}
}
