// Package plan is the fleet planner: it answers "what hardware should I
// buy and how should I parallelize" as a first-class served workload
// instead of an offline paper-figure experiment. A PlanSpec declares a
// scenario space — one model, an offered traffic level, and a candidate
// matrix of GPUs x parallelism strategies x fleet sizes — which the
// planner expands into the full configuration cross-product and evaluates
// cell by cell through the existing prediction stack: every cell's
// per-kernel latencies come from one batched `predict.Engine.PredictKernels`
// round, the distributed layer stitches them into an iteration forecast
// under the cell's strategy, and the network layer prices the intra-server
// collectives plus the inter-node fat-tree all-reduce for multi-server
// fleets. Cells are ranked by predicted throughput per dollar.
//
// A full matrix is millions of kernel predictions, so plans run as
// resumable async jobs (job.go): progress checkpoints per evaluated
// configuration to a crash-safe JSONL file (checkpoint.go, mirroring the
// observe store), and configuration batches fan out across the cluster's
// shard owners through a Dispatcher the cluster layer implements — a
// killed member's pending batches are re-dispatched to the survivors, so
// the job completes with every cell evaluated exactly once.
package plan

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"neusight/internal/gpu"
	"neusight/internal/models"
)

// Strategy names a Spec may list. They map onto the distributed layer's
// Strategy enum; the planner speaks strings because specs travel as JSON.
const (
	StrategyDP = "dp" // data parallel
	StrategyTP = "tp" // tensor model parallel (Megatron)
	StrategyPP = "pp" // pipeline parallel (GPipe)
)

// MaxMatrix bounds one plan's configuration cross-product. Each cell costs
// a full graph's worth of kernel predictions, so an unbounded matrix could
// pin a cluster for hours; splitting a bigger scenario space across plans
// keeps every job individually cancellable.
const MaxMatrix = 4096

// Defaults applied by Normalize.
const (
	DefaultGPUsPerServer = 4
	DefaultGlobalBatch   = 8
	DefaultMicroBatches  = 4
)

// Spec declares one what-if scenario space: the workload, the traffic it
// must sustain, and the candidate matrix. The zero values of the optional
// fields select documented defaults (Normalize).
type Spec struct {
	// Model is the workload to place (a registered model name).
	Model string `json:"model"`
	// TrafficRPS is the offered traffic level in samples/s the fleet should
	// sustain; 0 means "no target" (every configuration meets it).
	TrafficRPS float64 `json:"traffic_rps,omitempty"`
	// Engine picks the prediction engine ("" = the serving default).
	Engine string `json:"engine,omitempty"`
	// GPUs are the candidate device names (registered GPU specs).
	GPUs []string `json:"gpus"`
	// Strategies are the candidate parallelism strategies (dp, tp, pp);
	// empty means all three.
	Strategies []string `json:"strategies,omitempty"`
	// FleetSizes are the candidate server counts; empty means 1, 2, 4.
	FleetSizes []int `json:"fleet_sizes,omitempty"`
	// GPUsPerServer sizes each server (>= 2; default 4).
	GPUsPerServer int `json:"gpus_per_server,omitempty"`
	// GlobalBatch is the per-server batch each iteration processes
	// (default max(8, GPUsPerServer)).
	GlobalBatch int `json:"global_batch,omitempty"`
	// Training forecasts training iterations instead of inference.
	Training bool `json:"training,omitempty"`
	// MicroBatches is the pipeline-parallel micro-batch count (default
	// min(4, GlobalBatch); only pp cells consult it).
	MicroBatches int `json:"micro_batches,omitempty"`
	// Seed fixes the evaluation order (the matrix is shuffled so partial
	// results sample the whole space, not one GPU's corner). The ranking
	// itself is deterministic regardless; the seed makes progress and
	// partial views reproducible too.
	Seed int64 `json:"seed,omitempty"`
}

// Config is one expanded matrix cell. Index is the cell's identity within
// its plan: checkpoint records, re-dispatch, and exactly-once accounting
// all key on it.
type Config struct {
	Index    int    `json:"index"`
	GPU      string `json:"gpu"`
	Strategy string `json:"strategy"`
	Fleet    int    `json:"fleet"`
}

// Key is the cell's human-readable identity, used for stable tie-breaks.
func (c Config) Key() string {
	return fmt.Sprintf("%s/%s/x%d", c.GPU, c.Strategy, c.Fleet)
}

// Result is one evaluated cell: the per-server iteration forecast, the
// fleet-wide throughput, and the cost-normalized ranking metric. A cell
// the evaluator could not price carries Error and ranks last.
type Result struct {
	Config
	// Server names the server shape the cell was priced on.
	Server string `json:"server"`
	// IterationMs is one iteration's latency on one server (compute +
	// intra-server collectives + the inter-node share for Fleet > 1).
	IterationMs float64 `json:"iteration_ms"`
	ComputeMs   float64 `json:"compute_ms"`
	NetworkMs   float64 `json:"network_ms"`
	// ThroughputRPS is the fleet-wide sustained samples/s.
	ThroughputRPS float64 `json:"throughput_rps"`
	// CostPerHour is the fleet's price (all servers, all GPUs) in $/h.
	CostPerHour float64 `json:"cost_per_hour"`
	// ThroughputPerCost is the ranking metric: samples/s per $/h.
	ThroughputPerCost float64 `json:"throughput_per_cost"`
	// MeetsTraffic reports ThroughputRPS >= Spec.TrafficRPS.
	MeetsTraffic bool `json:"meets_traffic"`
	// FitsMemory reports whether the per-GPU working set fits the device.
	FitsMemory bool `json:"fits_memory"`
	// Fallbacks counts kernels priced by the memory-bound estimate because
	// the engine could not predict them.
	Fallbacks int    `json:"fallbacks,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Normalize validates spec and fills defaults in place. It is called once
// at submission; every later consumer (local evaluation, remote eval
// handlers, resume) sees the normalized form.
func (s *Spec) Normalize() error {
	if s.Model == "" {
		return fmt.Errorf("plan: spec names no model")
	}
	if _, err := models.Lookup(s.Model); err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	if len(s.GPUs) == 0 {
		return fmt.Errorf("plan: spec lists no candidate GPUs")
	}
	seen := map[string]bool{}
	for _, name := range s.GPUs {
		if _, err := gpu.Lookup(name); err != nil {
			return fmt.Errorf("plan: %w", err)
		}
		if seen[name] {
			return fmt.Errorf("plan: duplicate candidate GPU %q", name)
		}
		seen[name] = true
	}
	if len(s.Strategies) == 0 {
		s.Strategies = []string{StrategyDP, StrategyTP, StrategyPP}
	}
	seenStrat := map[string]bool{}
	for i, st := range s.Strategies {
		st = strings.ToLower(strings.TrimSpace(st))
		s.Strategies[i] = st
		switch st {
		case StrategyDP, StrategyTP, StrategyPP:
		default:
			return fmt.Errorf("plan: unknown strategy %q (want %s, %s, or %s)", st, StrategyDP, StrategyTP, StrategyPP)
		}
		if seenStrat[st] {
			return fmt.Errorf("plan: duplicate strategy %q", st)
		}
		seenStrat[st] = true
	}
	if len(s.FleetSizes) == 0 {
		s.FleetSizes = []int{1, 2, 4}
	}
	seenFleet := map[int]bool{}
	for _, f := range s.FleetSizes {
		if f < 1 || f > 4096 {
			return fmt.Errorf("plan: fleet size %d out of range [1, 4096]", f)
		}
		if seenFleet[f] {
			return fmt.Errorf("plan: duplicate fleet size %d", f)
		}
		seenFleet[f] = true
	}
	if s.GPUsPerServer == 0 {
		s.GPUsPerServer = DefaultGPUsPerServer
	}
	if s.GPUsPerServer < 2 || s.GPUsPerServer > 64 {
		return fmt.Errorf("plan: gpus_per_server %d out of range [2, 64] (the distributed layer needs at least 2)", s.GPUsPerServer)
	}
	if s.GlobalBatch == 0 {
		s.GlobalBatch = DefaultGlobalBatch
		if s.GlobalBatch < s.GPUsPerServer {
			s.GlobalBatch = s.GPUsPerServer
		}
	}
	if s.GlobalBatch < 1 || s.GlobalBatch > 1<<16 {
		return fmt.Errorf("plan: global_batch %d out of range [1, %d]", s.GlobalBatch, 1<<16)
	}
	if s.MicroBatches == 0 {
		s.MicroBatches = DefaultMicroBatches
		if s.MicroBatches > s.GlobalBatch {
			s.MicroBatches = s.GlobalBatch
		}
	}
	if s.MicroBatches < 1 || s.MicroBatches > s.GlobalBatch {
		return fmt.Errorf("plan: micro_batches %d out of range [1, global_batch=%d]", s.MicroBatches, s.GlobalBatch)
	}
	if s.TrafficRPS < 0 {
		return fmt.Errorf("plan: traffic_rps must be >= 0, got %v", s.TrafficRPS)
	}
	if n := len(s.GPUs) * len(s.Strategies) * len(s.FleetSizes); n > MaxMatrix {
		return fmt.Errorf("plan: matrix of %d cells exceeds the %d-cell limit; split the scenario space", n, MaxMatrix)
	}
	return nil
}

// Expand builds the full configuration cross-product of a normalized
// spec. Cell indexes follow the nested declaration order (GPU outermost,
// fleet innermost) and are stable across resubmission and resume; the
// returned slice is shuffled by Spec.Seed so evaluation samples the whole
// space instead of draining one GPU's cells first.
func Expand(s Spec) []Config {
	cfgs := make([]Config, 0, len(s.GPUs)*len(s.Strategies)*len(s.FleetSizes))
	i := 0
	for _, g := range s.GPUs {
		for _, st := range s.Strategies {
			for _, f := range s.FleetSizes {
				cfgs = append(cfgs, Config{Index: i, GPU: g, Strategy: st, Fleet: f})
				i++
			}
		}
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rng.Shuffle(len(cfgs), func(a, b int) { cfgs[a], cfgs[b] = cfgs[b], cfgs[a] })
	return cfgs
}

// Rank orders evaluated cells for the job's ranking: cells meeting the
// traffic target first, then by throughput-per-cost descending, errored
// cells last. Ties break on the cell key so the ranking is stable across
// runs and members.
func Rank(results []Result) []Result {
	out := append([]Result(nil), results...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Error == "") != (b.Error == "") {
			return a.Error == ""
		}
		if a.MeetsTraffic != b.MeetsTraffic {
			return a.MeetsTraffic
		}
		if a.ThroughputPerCost != b.ThroughputPerCost {
			return a.ThroughputPerCost > b.ThroughputPerCost
		}
		return a.Key() < b.Key()
	})
	return out
}
