package plan

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neusight/internal/predict"
)

// Sentinel errors HTTP layers classify on: an unknown job id is a 404, a
// resume of a completed job a 409.
var (
	ErrNoJob   = errors.New("plan: no such job")
	ErrJobDone = errors.New("plan: job already done")
)

// Job states. A job is born running (submission starts evaluation), ends
// done when every cell is evaluated, cancelled when cut short (by DELETE,
// by process death, or by a failed engine resolve mid-run), and failed
// when it cannot start at all. Cancelled jobs with pending cells are
// resumable; done jobs are immutable.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateFailed    = "failed"
)

// DefaultBatchSize is how many cells one dispatch batch carries; small
// enough that a killed member strands little work, large enough to
// amortize the fan-out round trip.
const DefaultBatchSize = 8

// DefaultWorkers is how many dispatch batches are in flight per job.
const DefaultWorkers = 8

// RankingPreview caps the ranking embedded in a running job's status; the
// full ranking ships once the job is done.
const RankingPreview = 10

// Dispatcher is the cluster's hook into the planner. The plan package
// must not import the cluster (the cluster imports plan for remote
// evaluation), so fan-out arrives as an interface: Assign names the
// member that owns a cell's (engine, GPU) shard ("" means evaluate
// locally), EvalRemote runs a batch on that member. A dispatcher error
// re-dispatches the batch to the local member — the survivor that
// noticed.
type Dispatcher interface {
	Assign(engine string, cfg Config) string
	EvalRemote(ctx context.Context, addr, engine string, spec Spec, cfgs []Config) ([]Result, error)
}

// Job is one plan run: the expanded matrix, the results recorded so far,
// and the lifecycle state. All fields behind mu.
type Job struct {
	mu      sync.Mutex
	id      string
	spec    Spec
	configs []Config // seed-shuffled evaluation order
	results map[int]Result
	state   string
	errMsg  string
	started time.Time
	elapsed time.Duration // accumulated across runs (resume adds)
	cancel  context.CancelFunc
	cp      *Checkpoint

	remoteCells  int
	redispatched int
}

// Status is a job's externally visible state — what GET /v2/plan/{id}
// returns.
type Status struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Spec      Spec   `json:"spec"`
	Total     int    `json:"total"`
	Evaluated int    `json:"evaluated"`
	// RemoteCells counts cells evaluated by other cluster members.
	RemoteCells int `json:"remote_cells,omitempty"`
	// RedispatchedBatches counts batches whose owner failed mid-job and
	// were re-evaluated by this member.
	RedispatchedBatches int     `json:"redispatched_batches,omitempty"`
	ElapsedSec          float64 `json:"elapsed_sec"`
	ConfigsPerSec       float64 `json:"configs_per_sec,omitempty"`
	Error               string  `json:"error,omitempty"`
	// Ranking is the best-first evaluated cells: a RankingPreview-sized
	// preview while running, the full matrix once done.
	Ranking []Result `json:"ranking,omitempty"`
}

// Stats is the planner's aggregate state — the plan section of /v2/stats
// and the source of the neusight_plan_* metric families.
type Stats struct {
	Jobs                int    `json:"jobs"`
	Active              int    `json:"active"`
	Submitted           uint64 `json:"submitted"`
	Completed           uint64 `json:"completed"`
	Cancelled           uint64 `json:"cancelled"`
	Failed              uint64 `json:"failed"`
	ConfigsEvaluated    uint64 `json:"configs_evaluated"`
	RemoteBatches       uint64 `json:"remote_batches"`
	RemoteFailures      uint64 `json:"remote_failures"`
	RedispatchedBatches uint64 `json:"redispatched_batches"`
}

// Options tunes a Manager; zero values select the defaults.
type Options struct {
	BatchSize int
	Workers   int
}

// Manager owns a process's plan jobs: submission, polling, cancellation,
// resume, checkpoint restore, and the dispatch loop that fans batches
// across the cluster. Safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	dir      string // checkpoint directory; "" disables persistence
	resolve  func(name string) (predict.Engine, error)
	dispatch Dispatcher
	batch    int
	workers  int

	submitted      atomic.Uint64
	completed      atomic.Uint64
	cancelledCount atomic.Uint64
	failedCount    atomic.Uint64
	evaluated      atomic.Uint64
	remoteBatches  atomic.Uint64
	remoteFailures atomic.Uint64
	redispatched   atomic.Uint64
}

// NewManager builds a planner. resolve maps a spec's engine name ("" for
// the default) to the engine that prices its cells. dir, when non-empty,
// is created if needed and scanned for checkpoints from a previous
// process: completed jobs restore as done, everything else — including
// jobs that were running when the process died — restores as cancelled
// with its evaluated cells intact, ready for Resume.
func NewManager(dir string, resolve func(name string) (predict.Engine, error), opts Options) (*Manager, error) {
	if resolve == nil {
		return nil, fmt.Errorf("plan: manager needs an engine resolver")
	}
	m := &Manager{
		jobs:    map[string]*Job{},
		dir:     dir,
		resolve: resolve,
		batch:   opts.BatchSize,
		workers: opts.Workers,
	}
	if m.batch <= 0 {
		m.batch = DefaultBatchSize
	}
	if m.workers <= 0 {
		m.workers = DefaultWorkers
	}
	if dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plan: checkpoint dir: %w", err)
	}
	for _, snap := range loadSnapshots(dir) {
		spec := snap.Spec
		if spec.Normalize() != nil {
			continue // header lost or stale; results alone are not resumable
		}
		j := &Job{
			id:      snap.ID,
			spec:    spec,
			configs: Expand(spec),
			results: map[int]Result{},
			errMsg:  snap.Error,
		}
		for _, r := range snap.Results {
			j.results[r.Index] = r
		}
		switch snap.State {
		case StateDone:
			j.state = StateDone
		case StateFailed:
			j.state = StateFailed
		default:
			// Cancelled, or no terminal line at all — the crash case.
			j.state = StateCancelled
			if snap.State == "" && j.errMsg == "" {
				j.errMsg = "interrupted by process exit; resumable"
			}
		}
		m.jobs[snap.ID] = j
	}
	return m, nil
}

// SetDispatcher wires the cluster's fan-out hook; nil keeps every cell
// local. Called once at process wiring, before traffic.
func (m *Manager) SetDispatcher(d Dispatcher) {
	m.mu.Lock()
	m.dispatch = d
	m.mu.Unlock()
}

func (m *Manager) dispatcher() Dispatcher {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dispatch
}

// newJobID returns a fresh random job id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("plan-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Submit normalizes spec, expands its matrix, and starts evaluating
// immediately. The returned status is the job's birth state.
func (m *Manager) Submit(spec Spec) (Status, error) {
	if err := spec.Normalize(); err != nil {
		return Status{}, err
	}
	j := &Job{
		id:      newJobID(),
		spec:    spec,
		configs: Expand(spec),
		results: map[int]Result{},
		state:   StateRunning,
		started: time.Now(),
	}
	if m.dir != "" {
		cp, err := createCheckpoint(m.dir, j.id, spec)
		if err != nil {
			return Status{}, err
		}
		j.cp = cp
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	m.mu.Lock()
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.submitted.Add(1)
	go m.run(ctx, j)
	return j.status(false), nil
}

// Resume restarts a cancelled job's unevaluated cells. Done and running
// jobs are not resumable.
func (m *Manager) Resume(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	j.mu.Lock()
	if j.state == StateRunning {
		st := j.statusLocked(false)
		j.mu.Unlock()
		return st, nil
	}
	if j.state == StateDone {
		st := j.statusLocked(false)
		j.mu.Unlock()
		return st, fmt.Errorf("%w: %q", ErrJobDone, id)
	}
	if m.dir != "" {
		cp, err := reopenCheckpoint(m.dir, j.id)
		if err != nil {
			j.mu.Unlock()
			return Status{}, err
		}
		j.cp = cp
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.state = StateRunning
	j.errMsg = ""
	j.started = time.Now()
	st := j.statusLocked(false)
	j.mu.Unlock()
	go m.run(ctx, j)
	return st, nil
}

// Get returns a job's status; full includes the complete ranking even
// while the job is running.
func (m *Manager) Get(id string, full bool) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	return j.status(full), nil
}

// Cancel cuts a running job short. The in-flight batches drain and the
// job seals as cancelled with its evaluated cells checkpointed — poll
// until State == cancelled to observe the seal. Cancelling a terminal
// job is a no-op returning its status.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j.status(false), nil
}

// List returns every job's summary status, newest submission first by id
// order stability (sorted by id; ids are random, the order is stable, not
// chronological).
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.status(false)
		st.Ranking = nil
		out = append(out, st)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Stats returns the planner's aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	jobs, active := len(m.jobs), 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			active++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	return Stats{
		Jobs:                jobs,
		Active:              active,
		Submitted:           m.submitted.Load(),
		Completed:           m.completed.Load(),
		Cancelled:           m.cancelledCount.Load(),
		Failed:              m.failedCount.Load(),
		ConfigsEvaluated:    m.evaluated.Load(),
		RemoteBatches:       m.remoteBatches.Load(),
		RemoteFailures:      m.remoteFailures.Load(),
		RedispatchedBatches: m.redispatched.Load(),
	}
}

// Close cancels every running job; it does not wait for the seals —
// callers that need them poll job status. Used by process shutdown.
func (m *Manager) Close() {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// run is one job's dispatch loop: group the pending cells by the
// dispatcher's owner assignment, chunk each owner's cells into batches,
// fan the batches across a bounded worker pool, and record each result
// exactly once. A remote batch whose owner fails is re-dispatched to this
// member — the survivor — so a SIGKILLed owner loses no cells.
func (m *Manager) run(ctx context.Context, j *Job) {
	eng, err := m.resolve(j.spec.Engine)
	if err != nil {
		m.seal(j, StateFailed, err.Error())
		return
	}
	engineName := eng.Name()

	j.mu.Lock()
	pending := make([]Config, 0, len(j.configs))
	for _, cfg := range j.configs {
		if _, done := j.results[cfg.Index]; !done {
			pending = append(pending, cfg)
		}
	}
	j.mu.Unlock()

	// Group by owner preserving the shuffled evaluation order within each
	// owner, then chunk. A nil dispatcher sends everything local.
	d := m.dispatcher()
	owners := []string{}
	byOwner := map[string][]Config{}
	for _, cfg := range pending {
		addr := ""
		if d != nil {
			addr = d.Assign(engineName, cfg)
		}
		if _, ok := byOwner[addr]; !ok {
			owners = append(owners, addr)
		}
		byOwner[addr] = append(byOwner[addr], cfg)
	}
	type dispatchBatch struct {
		addr string
		cfgs []Config
	}
	var batches []dispatchBatch
	for _, addr := range owners {
		cells := byOwner[addr]
		for len(cells) > 0 {
			n := m.batch
			if n > len(cells) {
				n = len(cells)
			}
			batches = append(batches, dispatchBatch{addr: addr, cfgs: cells[:n]})
			cells = cells[n:]
		}
	}

	work := make(chan dispatchBatch)
	var wg sync.WaitGroup
	for w := 0; w < m.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				results, remote := m.evalBatch(ctx, d, eng, j, b.addr, b.cfgs)
				m.record(j, remote, results)
			}
		}()
	}
	for _, b := range batches {
		if ctx.Err() != nil {
			break
		}
		work <- b
	}
	close(work)
	wg.Wait()

	j.mu.Lock()
	remaining := len(j.configs) - len(j.results)
	j.mu.Unlock()
	switch {
	case remaining == 0:
		m.seal(j, StateDone, "")
	case ctx.Err() != nil:
		m.seal(j, StateCancelled, "")
	default:
		// Cells were neither evaluated nor cancelled — engine-level refusal
		// on every path. Cancelled keeps the job resumable.
		m.seal(j, StateCancelled, "evaluation stalled; resume to retry")
	}
}

// evalBatch runs one batch on its assigned owner, re-dispatching to the
// local engine when the remote member fails. remote reports where the
// results actually came from — a re-dispatched batch is local work.
func (m *Manager) evalBatch(ctx context.Context, d Dispatcher, eng predict.Engine, j *Job, addr string, cfgs []Config) (results []Result, remote bool) {
	if addr != "" && d != nil {
		m.remoteBatches.Add(1)
		results, err := d.EvalRemote(ctx, addr, eng.Name(), j.spec, cfgs)
		if err == nil {
			return results, true
		}
		m.remoteFailures.Add(1)
		if ctx.Err() != nil {
			return nil, false
		}
		m.redispatched.Add(1)
		j.mu.Lock()
		j.redispatched++
		j.mu.Unlock()
	}
	results, _ = EvaluateBatch(ctx, eng, j.spec, cfgs)
	return results, false
}

// record persists a batch's results, deduplicating by cell index so a
// cell reaching the job twice (a slow remote answer racing its
// re-dispatch) counts exactly once.
func (m *Manager) record(j *Job, remote bool, results []Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range results {
		if _, dup := j.results[r.Index]; dup {
			continue
		}
		j.results[r.Index] = r
		if remote {
			j.remoteCells++
		}
		m.evaluated.Add(1)
		if j.cp != nil {
			j.cp.Record(r)
		}
	}
}

// seal moves a job to a terminal state, closes its checkpoint, and bumps
// the manager's counters.
func (m *Manager) seal(j *Job, state, errMsg string) {
	j.mu.Lock()
	j.state = state
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.elapsed += time.Since(j.started)
	j.cancel = nil
	cp := j.cp
	j.cp = nil
	j.mu.Unlock()
	if cp != nil {
		cp.Seal(state, errMsg)
	}
	switch state {
	case StateDone:
		m.completed.Add(1)
	case StateCancelled:
		m.cancelledCount.Add(1)
	case StateFailed:
		m.failedCount.Add(1)
	}
}

// status snapshots the job. full embeds the complete ranking; otherwise
// running jobs embed a RankingPreview-sized preview and terminal jobs the
// full ranking.
func (j *Job) status(full bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(full)
}

func (j *Job) statusLocked(full bool) Status {
	st := Status{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Total:     len(j.configs),
		Evaluated: len(j.results),
		// Counters below are per-job views of the dispatch loop.
		RemoteCells:         j.remoteCells,
		RedispatchedBatches: j.redispatched,
		Error:               j.errMsg,
	}
	elapsed := j.elapsed
	if j.state == StateRunning {
		elapsed += time.Since(j.started)
	}
	st.ElapsedSec = elapsed.Seconds()
	if st.ElapsedSec > 0 {
		st.ConfigsPerSec = float64(st.Evaluated) / st.ElapsedSec
	}
	results := make([]Result, 0, len(j.results))
	for _, r := range j.results {
		results = append(results, r)
	}
	st.Ranking = Rank(results)
	if !full && j.state == StateRunning && len(st.Ranking) > RankingPreview {
		st.Ranking = st.Ranking[:RankingPreview]
	}
	return st
}
