package plan

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"neusight/internal/predict"
)

// slowEngine delays every batch so lifecycle tests can observe a job
// mid-matrix deterministically.
type slowEngine struct {
	predict.Engine
	delay time.Duration
}

func (s slowEngine) PredictKernels(ctx context.Context, reqs []predict.Request) []predict.Outcome {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
	}
	return s.Engine.PredictKernels(ctx, reqs)
}

func rooflineResolver(delay time.Duration) func(string) (predict.Engine, error) {
	eng := predict.NewRooflineEngine()
	return func(name string) (predict.Engine, error) {
		if name != "" && name != eng.Name() {
			return nil, predict.ErrUnknownEngine
		}
		if delay > 0 {
			return slowEngine{Engine: eng, delay: delay}, nil
		}
		return eng, nil
	}
}

func smallSpec() Spec {
	return Spec{
		Model: "BERT-Large", GPUs: []string{"T4"},
		Strategies: []string{StrategyDP}, FleetSizes: []int{1, 2}, Seed: 7,
	}
}

// waitTerminal polls id until it leaves running.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m.Get(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %d/%d", id, st.Evaluated, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitCompletesAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, rooflineResolver(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Total != 2 {
		t.Fatalf("birth status %+v, want running with 2 cells", st)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone || final.Evaluated != 2 || len(final.Ranking) != 2 {
		t.Fatalf("final %+v, want done with both cells ranked", final)
	}
	snap, err := readSnapshot(filepath.Join(dir, st.ID+checkpointExt))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || len(snap.Results) != 2 || snap.Skipped != 0 {
		t.Fatalf("checkpoint %+v, want sealed done with 2 cells", snap)
	}
	stats := m.Stats()
	if stats.Completed != 1 || stats.ConfigsEvaluated != 2 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	m, err := NewManager("", rooflineResolver(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestUnknownEngineFailsJob(t *testing.T) {
	m, err := NewManager("", rooflineResolver(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	s.Engine = "no-such-engine"
	st, err := m.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("final %+v, want failed with the resolve error", final)
	}
}

func TestUnknownJobAndResumeDone(t *testing.T) {
	m, err := NewManager("", rooflineResolver(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("nope", false); !errors.Is(err, ErrNoJob) {
		t.Fatalf("Get unknown = %v, want ErrNoJob", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("Cancel unknown = %v, want ErrNoJob", err)
	}
	st, err := m.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	if _, err := m.Resume(st.ID); !errors.Is(err, ErrJobDone) {
		t.Fatalf("Resume done = %v, want ErrJobDone", err)
	}
}

// TestCancelMidMatrixResumes is the resumable-checkpoint satellite: a
// cancel that lands mid-matrix seals a checkpoint holding only the
// evaluated cells, and a resume finishes exactly the pending ones.
func TestCancelMidMatrixResumes(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, rooflineResolver(20*time.Millisecond), Options{Workers: 1, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	s.Strategies = []string{StrategyDP, StrategyTP, StrategyPP}
	s.FleetSizes = []int{1, 2, 4, 8}
	st, err := m.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	total := st.Total

	// Wait for some progress, then cancel mid-matrix.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := m.Get(st.ID, false)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Evaluated >= 2 {
			break
		}
		if cur.State != StateRunning || time.Now().After(deadline) {
			t.Fatalf("no mid-matrix window: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	cancelled := waitTerminal(t, m, st.ID)
	if cancelled.State != StateCancelled {
		t.Fatalf("state %q after cancel, want cancelled", cancelled.State)
	}
	if cancelled.Evaluated == 0 || cancelled.Evaluated >= total {
		t.Fatalf("cancel landed outside the matrix: %d/%d", cancelled.Evaluated, total)
	}
	snap, err := readSnapshot(filepath.Join(dir, st.ID+checkpointExt))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled || len(snap.Results) != cancelled.Evaluated {
		t.Fatalf("checkpoint %q with %d cells, want cancelled with %d", snap.State, len(snap.Results), cancelled.Evaluated)
	}

	// Resume completes every pending cell, exactly once each.
	if _, err := m.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone || final.Evaluated != total {
		t.Fatalf("resumed final %+v, want done with all %d cells", final, total)
	}
	snap, err = readSnapshot(filepath.Join(dir, st.ID+checkpointExt))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || len(snap.Results) != total {
		t.Fatalf("resumed checkpoint %q with %d cells, want done with %d", snap.State, len(snap.Results), total)
	}
	seen := map[int]bool{}
	for _, r := range snap.Results {
		if seen[r.Index] {
			t.Fatalf("cell %d checkpointed twice", r.Index)
		}
		seen[r.Index] = true
	}
}

// TestCrashRestore replays a checkpoint with no terminal line — a job
// that was running when its process died — into a fresh manager: it must
// come back cancelled-and-resumable with the evaluated cells intact.
func TestCrashRestore(t *testing.T) {
	dir := t.TempDir()
	s := smallSpec()
	s.FleetSizes = []int{1, 2, 4}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	cp, err := createCheckpoint(dir, "deadbeef00000001", s)
	if err != nil {
		t.Fatal(err)
	}
	eng := predict.NewRooflineEngine()
	cfgs := Expand(s)
	for _, cfg := range cfgs[:2] {
		res, err := Evaluate(context.Background(), eng, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cp.Record(res); err != nil {
			t.Fatal(err)
		}
	}
	// No Seal: the process "died" here.

	m, err := NewManager(dir, rooflineResolver(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Get("deadbeef00000001", false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled || st.Evaluated != 2 || st.Error == "" {
		t.Fatalf("restored %+v, want cancelled with 2 cells and the interrupted marker", st)
	}
	if _, err := m.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone || final.Evaluated != len(cfgs) {
		t.Fatalf("resumed crash job %+v, want done with %d cells", final, len(cfgs))
	}
}

// flakyDispatcher assigns half the cells to a fake remote and fails every
// remote batch — forcing the re-dispatch path — while counting how many
// cells it was ever asked to evaluate remotely.
type flakyDispatcher struct {
	mu       sync.Mutex
	assigned int
}

func (d *flakyDispatcher) Assign(engine string, cfg Config) string {
	if cfg.Index%2 == 0 {
		return "10.0.0.1:9"
	}
	return ""
}

func (d *flakyDispatcher) EvalRemote(ctx context.Context, addr, engine string, spec Spec, cfgs []Config) ([]Result, error) {
	d.mu.Lock()
	d.assigned += len(cfgs)
	d.mu.Unlock()
	return nil, errors.New("owner unreachable")
}

func TestRemoteFailureRedispatchesLocally(t *testing.T) {
	m, err := NewManager("", rooflineResolver(0), Options{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := &flakyDispatcher{}
	m.SetDispatcher(d)
	s := smallSpec()
	s.FleetSizes = []int{1, 2, 4, 8}
	st, err := m.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone || final.Evaluated != final.Total {
		t.Fatalf("final %+v, want done despite every remote batch failing", final)
	}
	if final.RedispatchedBatches == 0 {
		t.Fatal("no batch was re-dispatched")
	}
	if final.RemoteCells != 0 {
		t.Fatalf("%d cells credited remote, but every remote batch failed", final.RemoteCells)
	}
	stats := m.Stats()
	if stats.RemoteFailures == 0 || stats.RedispatchedBatches != stats.RemoteFailures {
		t.Fatalf("stats %+v, want every remote failure re-dispatched", stats)
	}
}

// TestRecordDeduplicates covers the slow-remote-answer-races-redispatch
// hazard directly: the same cell recorded twice counts once.
func TestRecordDeduplicates(t *testing.T) {
	m, err := NewManager("", rooflineResolver(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{id: "x", results: map[int]Result{}, configs: make([]Config, 2)}
	r := Result{Config: Config{Index: 1, GPU: "T4", Strategy: StrategyDP, Fleet: 1}}
	m.record(j, true, []Result{r})
	m.record(j, false, []Result{r})
	if len(j.results) != 1 || m.evaluated.Load() != 1 || j.remoteCells != 1 {
		t.Fatalf("dedup failed: %d results, %d evaluated, %d remote", len(j.results), m.evaluated.Load(), j.remoteCells)
	}
}

// TestRacedLifecycle hammers submit/poll/cancel/resume concurrently; run
// under -race this is the raced job lifecycle satellite. Invariants: no
// panic, and every job ends terminal with evaluated <= total.
func TestRacedLifecycle(t *testing.T) {
	m, err := NewManager(t.TempDir(), rooflineResolver(2*time.Millisecond), Options{Workers: 2, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	s.FleetSizes = []int{1, 2, 4}
	ids := make([]string, 3)
	for i := range ids {
		st, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(id string, w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					switch w {
					case 0:
						m.Get(id, i%2 == 0)
					case 1:
						if i == 10 {
							m.Cancel(id)
						} else {
							m.List()
						}
					case 2:
						m.Stats()
						m.Resume(id) // racing resume: may be running/done, both fine
					}
					time.Sleep(time.Millisecond)
				}
			}(id, w)
		}
	}
	wg.Wait()
	for _, id := range ids {
		// Whatever the interleaving, the job must settle terminal; resume
		// any cancelled leftovers to completion to prove the checkpoint kept
		// every cell.
		st := waitTerminal(t, m, id)
		for st.State == StateCancelled {
			if _, err := m.Resume(id); err != nil {
				t.Fatal(err)
			}
			st = waitTerminal(t, m, id)
		}
		if st.State != StateDone || st.Evaluated != st.Total {
			t.Fatalf("job %s settled %+v, want done with all cells", id, st)
		}
	}
	m.Close()
}
