package plan

import (
	"context"
	"strings"
	"testing"

	"neusight/internal/core"
	"neusight/internal/distributed"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/predict"
)

func mustModel(t *testing.T, name string) models.Config {
	t.Helper()
	mc, err := models.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func validSpec() Spec {
	return Spec{Model: "BERT-Large", GPUs: []string{"T4", "A100-80GB"}}
}

func TestNormalizeDefaults(t *testing.T) {
	s := validSpec()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Strategies) != 3 {
		t.Fatalf("strategies %v, want the three defaults", s.Strategies)
	}
	if len(s.FleetSizes) != 3 || s.FleetSizes[0] != 1 {
		t.Fatalf("fleets %v, want [1 2 4]", s.FleetSizes)
	}
	if s.GPUsPerServer != DefaultGPUsPerServer || s.GlobalBatch != DefaultGlobalBatch || s.MicroBatches != DefaultMicroBatches {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// Normalize is idempotent: the remote-eval handler re-normalizes the
	// already-normalized spec it receives.
	before := s
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.GlobalBatch != before.GlobalBatch || len(s.Strategies) != len(before.Strategies) {
		t.Fatalf("re-normalize changed the spec: %+v -> %+v", before, s)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no model", func(s *Spec) { s.Model = "" }, "no model"},
		{"unknown model", func(s *Spec) { s.Model = "nope" }, "unknown"},
		{"no gpus", func(s *Spec) { s.GPUs = nil }, "no candidate"},
		{"unknown gpu", func(s *Spec) { s.GPUs = []string{"RTX-9090"} }, "unknown"},
		{"duplicate gpu", func(s *Spec) { s.GPUs = []string{"T4", "T4"} }, "duplicate"},
		{"bad strategy", func(s *Spec) { s.Strategies = []string{"zz"} }, "unknown strategy"},
		{"duplicate strategy", func(s *Spec) { s.Strategies = []string{"dp", "DP"} }, "duplicate strategy"},
		{"fleet zero", func(s *Spec) { s.FleetSizes = []int{0} }, "out of range"},
		{"duplicate fleet", func(s *Spec) { s.FleetSizes = []int{2, 2} }, "duplicate fleet"},
		{"one gpu per server", func(s *Spec) { s.GPUsPerServer = 1 }, "out of range"},
		{"negative traffic", func(s *Spec) { s.TrafficRPS = -1 }, ">= 0"},
		{"bad micro batches", func(s *Spec) { s.GlobalBatch = 4; s.MicroBatches = 8 }, "micro_batches"},
		{"matrix too big", func(s *Spec) {
			s.FleetSizes = make([]int, 0, 700)
			for i := 1; i <= 700; i++ {
				s.FleetSizes = append(s.FleetSizes, i)
			}
		}, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Normalize() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestExpandStableIndexes(t *testing.T) {
	s := validSpec()
	s.Seed = 7
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	cfgs := Expand(s)
	want := len(s.GPUs) * len(s.Strategies) * len(s.FleetSizes)
	if len(cfgs) != want {
		t.Fatalf("expanded %d cells, want %d", len(cfgs), want)
	}
	// Indexes are a permutation, and index -> cell identity is seed-stable:
	// the same index names the same (GPU, strategy, fleet) under any seed,
	// which is what re-dispatch and resume rely on.
	byIndex := map[int]string{}
	for _, c := range cfgs {
		if _, dup := byIndex[c.Index]; dup {
			t.Fatalf("duplicate index %d", c.Index)
		}
		byIndex[c.Index] = c.Key()
	}
	s2 := s
	s2.Seed = 99
	for _, c := range Expand(s2) {
		if byIndex[c.Index] != c.Key() {
			t.Fatalf("index %d maps to %s under seed 99, %s under seed 7", c.Index, c.Key(), byIndex[c.Index])
		}
	}
	// Same seed, same order.
	again := Expand(s)
	for i := range cfgs {
		if cfgs[i] != again[i] {
			t.Fatalf("seed 7 expansion not reproducible at %d: %+v vs %+v", i, cfgs[i], again[i])
		}
	}
}

func TestRankOrder(t *testing.T) {
	results := []Result{
		{Config: Config{Index: 0, GPU: "T4", Strategy: "dp", Fleet: 1}, ThroughputPerCost: 5, MeetsTraffic: false},
		{Config: Config{Index: 1, GPU: "H100", Strategy: "dp", Fleet: 1}, ThroughputPerCost: 2, MeetsTraffic: true},
		{Config: Config{Index: 2, GPU: "L4", Strategy: "tp", Fleet: 1}, Error: "boom"},
		{Config: Config{Index: 3, GPU: "A100-80GB", Strategy: "dp", Fleet: 1}, ThroughputPerCost: 9, MeetsTraffic: true},
	}
	ranked := Rank(results)
	wantOrder := []int{3, 1, 0, 2} // meets-traffic by rps/$ first, then misses, errors last
	for i, want := range wantOrder {
		if ranked[i].Index != want {
			t.Fatalf("rank[%d] = cell %d, want %d (full: %+v)", i, ranked[i].Index, want, ranked)
		}
	}
	if results[0].Index != 0 {
		t.Fatal("Rank mutated its input")
	}
}

// TestEvaluateAgreesWithDirect is the plan-vs-direct agreement check: a
// cell priced through Evaluate's memoized two-pass batch path must land
// on exactly the forecast the distributed layer produces when each kernel
// is priced directly against the engine — same fallback rule included.
func TestEvaluateAgreesWithDirect(t *testing.T) {
	eng := predict.NewRooflineEngine()
	s := validSpec()
	s.GPUs = []string{"A100-80GB"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, strat := range []string{StrategyDP, StrategyTP, StrategyPP} {
		cfg := Config{GPU: "A100-80GB", Strategy: strat, Fleet: 1}
		res, err := Evaluate(ctx, eng, s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Error != "" {
			t.Fatalf("%s: cell error %q", strat, res.Error)
		}

		g := gpu.MustLookup(cfg.GPU)
		direct := func(k kernels.Kernel) float64 {
			if k.Category() == kernels.CatNetwork {
				return 0
			}
			outs := eng.PredictKernels(ctx, []predict.Request{{Kernel: k, GPU: g}})
			if outs[0].Err != nil {
				return core.MemBoundLatency(k, g)
			}
			return outs[0].Result.Latency
		}
		dstrat, err := strategyOf(strat)
		if err != nil {
			t.Fatal(err)
		}
		mc := mustModel(t, s.Model)
		f, err := distributed.Estimate(distributed.Plan{
			Model: mc, GlobalBatch: s.GlobalBatch, Server: serverFor(g, s.GPUsPerServer),
			Strategy: dstrat, Training: s.Training, MicroBatches: s.MicroBatches,
		}, direct, linkModel)
		if err != nil {
			t.Fatal(err)
		}
		if res.IterationMs != f.TotalMs || res.ComputeMs != f.ComputeMs || res.NetworkMs != f.NetworkMs {
			t.Fatalf("%s: Evaluate (%v, %v, %v) != direct (%v, %v, %v)",
				strat, res.IterationMs, res.ComputeMs, res.NetworkMs, f.TotalMs, f.ComputeMs, f.NetworkMs)
		}
		if res.ThroughputRPS <= 0 || res.CostPerHour <= 0 || res.ThroughputPerCost <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", strat, res)
		}
	}
}

func TestEvaluateTrainingFleetAddsInterNode(t *testing.T) {
	eng := predict.NewRooflineEngine()
	s := validSpec()
	s.GPUs = []string{"A100-80GB"}
	s.Training = true
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	one, err := Evaluate(context.Background(), eng, s, Config{GPU: "A100-80GB", Strategy: StrategyDP, Fleet: 1})
	if err != nil || one.Error != "" {
		t.Fatalf("fleet 1: %v %q", err, one.Error)
	}
	four, err := Evaluate(context.Background(), eng, s, Config{GPU: "A100-80GB", Strategy: StrategyDP, Fleet: 4})
	if err != nil || four.Error != "" {
		t.Fatalf("fleet 4: %v %q", err, four.Error)
	}
	if four.IterationMs <= one.IterationMs || four.NetworkMs <= one.NetworkMs {
		t.Fatalf("fleet 4 iteration %v/network %v not above fleet 1 %v/%v — inter-node all-reduce missing",
			four.IterationMs, four.NetworkMs, one.IterationMs, one.NetworkMs)
	}
	// Inference fleets scale embarrassingly: no inter-node term.
	s.Training = false
	infOne, _ := Evaluate(context.Background(), eng, s, Config{GPU: "A100-80GB", Strategy: StrategyDP, Fleet: 1})
	infFour, _ := Evaluate(context.Background(), eng, s, Config{GPU: "A100-80GB", Strategy: StrategyDP, Fleet: 4})
	if infFour.IterationMs != infOne.IterationMs {
		t.Fatalf("inference iteration changed with fleet size: %v vs %v", infFour.IterationMs, infOne.IterationMs)
	}
	if infFour.ThroughputRPS != 4*infOne.ThroughputRPS {
		t.Fatalf("inference throughput %v at fleet 4, want 4x %v", infFour.ThroughputRPS, infOne.ThroughputRPS)
	}
}

func TestEvaluateCellProblemsAreNotErrors(t *testing.T) {
	eng := predict.NewRooflineEngine()
	s := validSpec()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Unknown GPU in the cell (not the spec): recorded, unrankable.
	res, err := Evaluate(context.Background(), eng, s, Config{GPU: "RTX-9090", Strategy: StrategyDP, Fleet: 1})
	if err != nil {
		t.Fatalf("cell problem surfaced as evaluation error: %v", err)
	}
	if res.Error == "" {
		t.Fatal("unknown cell GPU produced no Result.Error")
	}
	// Cancellation is the one real error: the cell must stay pending.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, eng, s, Config{GPU: "T4", Strategy: StrategyDP, Fleet: 1}); err == nil {
		t.Fatal("cancelled context did not abort evaluation")
	}
}

func TestEvaluateBatchStopsAtCancellation(t *testing.T) {
	eng := predict.NewRooflineEngine()
	s := validSpec()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := EvaluateBatch(ctx, eng, s, Expand(s))
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if len(out) != 0 {
		t.Fatalf("cancelled-before-start batch returned %d results, want 0", len(out))
	}
}
