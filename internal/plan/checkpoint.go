package plan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A plan job's checkpoint is an append-only JSONL file, one per job
// (<dir>/<id>.jsonl), mirroring the observe store's crash-safety
// discipline: every line is flushed through before the write reports
// success, damaged lines are skipped at read time rather than voiding
// the file, and the first write error poisons the checkpoint permanently.
// Unlike the observe store the log needs no cap or compaction — a job's
// matrix is bounded by MaxMatrix, and each cell writes exactly one line.
//
// Line framing: the first line is a header carrying the job id and its
// normalized spec; each evaluated cell appends one result line; a
// terminal line seals the file with the job's final state. A file with
// no terminal line is a job that was running when the process died —
// exactly the jobs Resume picks up.
type checkpointLine struct {
	// Header line.
	Plan string `json:"plan,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`
	// Result line.
	Result *Result `json:"result,omitempty"`
	// Terminal line.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// checkpointExt names job checkpoint files under the manager's directory.
const checkpointExt = ".jsonl"

// Checkpoint is one job's open on-disk log.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	f    *os.File
	bw   *bufio.Writer
	err  error // first write error; records stop permanently
}

// createCheckpoint starts a fresh checkpoint for job id, writing the
// header line through to disk before returning — a submitted job is a
// resumable job from its first instant.
func createCheckpoint(dir, id string, spec Spec) (*Checkpoint, error) {
	path := filepath.Join(dir, id+checkpointExt)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plan: create checkpoint: %w", err)
	}
	c := &Checkpoint{path: path, f: f, bw: bufio.NewWriter(f)}
	if err := c.write(checkpointLine{Plan: id, Spec: &spec}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return c, nil
}

// write marshals one line and flushes it through to the file.
func (c *Checkpoint) write(line checkpointLine) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	b, err := json.Marshal(line)
	if err == nil {
		_, err = c.bw.Write(append(b, '\n'))
	}
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.err = err
	}
	return err
}

// Record persists one evaluated cell.
func (c *Checkpoint) Record(r Result) error {
	return c.write(checkpointLine{Result: &r})
}

// Seal writes the terminal state line and closes the file. A sealed
// "done" checkpoint is a completed job; a sealed "cancelled" one is
// resumable by re-submission of the unevaluated cells.
func (c *Checkpoint) Seal(state, errMsg string) error {
	werr := c.write(checkpointLine{State: state, Error: errMsg})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.f.Close(); err != nil && werr == nil {
		werr = err
	}
	return werr
}

// reopenCheckpoint reopens a sealed checkpoint for append: new result
// lines and a fresh terminal line follow the old ones, and replay takes
// the last terminal state, so resume needs no rewrite.
func reopenCheckpoint(dir, id string) (*Checkpoint, error) {
	path := filepath.Join(dir, id+checkpointExt)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plan: reopen checkpoint: %w", err)
	}
	return &Checkpoint{path: path, f: f, bw: bufio.NewWriter(f)}, nil
}

// Snapshot is the replayable content of one checkpoint file.
type Snapshot struct {
	ID      string
	Spec    Spec
	Results []Result // deduped by cell index, last write wins
	State   string   // terminal state, or "" when the job died mid-run
	Error   string
	Skipped int // damaged lines dropped
}

// readSnapshot replays one checkpoint file with the observe store's
// damage tolerance: corrupt, truncated, or overlong lines are skipped and
// counted; result lines arriving before the header or after a terminal
// line still count (a crash can interleave nothing — but a partially
// written header must not void the results that follow it on resume of a
// rewritten file).
func readSnapshot(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("plan: read checkpoint: %w", err)
	}
	defer f.Close()

	snap := Snapshot{ID: strings.TrimSuffix(filepath.Base(path), checkpointExt)}
	byIndex := map[int]Result{}
	br := bufio.NewReaderSize(f, 64*1024)
	for {
		line, isPrefix, readErr := br.ReadLine()
		if readErr != nil {
			if readErr != io.EOF {
				snap.Skipped++
			}
			break
		}
		if isPrefix {
			snap.Skipped++
			for isPrefix && readErr == nil {
				_, isPrefix, readErr = br.ReadLine()
			}
			if readErr != nil {
				break
			}
			continue
		}
		if len(line) == 0 {
			continue
		}
		var rec checkpointLine
		if json.Unmarshal(line, &rec) != nil {
			snap.Skipped++
			continue
		}
		switch {
		case rec.Spec != nil:
			snap.Spec = *rec.Spec
		case rec.Result != nil:
			byIndex[rec.Result.Index] = *rec.Result
		case rec.State != "":
			snap.State, snap.Error = rec.State, rec.Error
		default:
			snap.Skipped++
		}
	}
	idxs := make([]int, 0, len(byIndex))
	for i := range byIndex {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		snap.Results = append(snap.Results, byIndex[i])
	}
	return snap, nil
}

// loadSnapshots replays every checkpoint under dir, oldest path first.
// Unreadable files are skipped — a restart must come up even over a
// damaged checkpoint directory.
func loadSnapshots(dir string) []Snapshot {
	paths, _ := filepath.Glob(filepath.Join(dir, "*"+checkpointExt))
	sort.Strings(paths)
	var snaps []Snapshot
	for _, p := range paths {
		snap, err := readSnapshot(p)
		if err != nil || snap.ID == "" {
			continue
		}
		snaps = append(snaps, snap)
	}
	return snaps
}
