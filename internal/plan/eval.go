package plan

import (
	"context"
	"fmt"

	"neusight/internal/core"
	"neusight/internal/distributed"
	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/network"
	"neusight/internal/predict"
	"neusight/internal/tile"
)

// refServer is the in-hand reference system whose measured link
// utilization calibrates the predictor-side link model — the paper's
// methodology: measure one system you own, apply the utilization to the
// peak bandwidth of systems you don't.
const refServer = "A100x4-NVLink"

// linkModel is the calibrated intra-server link model shared by every
// cell. Calibration is deterministic (the simulator's hidden efficiencies
// are name-hashed), so this is a constant, not per-job state.
var linkModel = network.Calibrate(network.NewSim(), gpu.MustLookupServer(refServer))

// interTree prices the inter-node gradient all-reduce for multi-server
// fleets: the paper's Table 9 fat-tree at the calibrated utilization.
var interTree = network.Table9Hierarchy(linkModel.Util)

// hourlyUSD approximates on-demand cloud $/h per GPU for the registered
// devices. Absolute accuracy is not the point — the planner ranks
// configurations against each other, so only relative prices matter.
var hourlyUSD = map[string]float64{
	"P4":        0.60,
	"P100":      1.46,
	"V100":      2.48,
	"T4":        0.35,
	"A100-40GB": 2.93,
	"A100-80GB": 3.67,
	"L4":        0.81,
	"H100":      6.98,
	"B200":      11.00,
	"MI100":     2.10,
	"MI210":     2.60,
	"MI250":     3.20,
}

// gpuHourlyUSD returns the device's $/h: the table entry, or a
// matrix-peak-scaled estimate for devices the table does not list (new
// specs registered after this table was written).
func gpuHourlyUSD(g gpu.Spec) float64 {
	if usd, ok := hourlyUSD[g.Name]; ok {
		return usd
	}
	usd := 0.008 * g.PeakFLOPSFor(true)
	if usd < 0.30 {
		usd = 0.30
	}
	return usd
}

// serverFor synthesizes the server shape a cell is priced on: n identical
// devices of g behind the interconnect the vendor ships for that class —
// DGX-style switch fabric at 900 GB/s for recent datacenter NVIDIA parts,
// a 600 GB/s NVLink mesh for the A100 generation, 300 GB/s for everything
// older or non-NVIDIA.
func serverFor(g gpu.Spec, n int) gpu.ServerSpec {
	link, interconn := 300.0, "NVLink"
	if g.Vendor == gpu.NVIDIA && g.Year >= 2022 {
		link, interconn = 900, "DGX"
	} else if g.Year >= 2020 {
		link = 600
	}
	return gpu.ServerSpec{
		Name:        fmt.Sprintf("%sx%d-%s", g.Name, n, interconn),
		GPU:         g,
		NumGPUs:     n,
		LinkBWGBs:   link,
		Interconn:   interconn,
		NodeNICGbps: 100,
	}
}

// strategyOf maps a spec strategy string onto the distributed enum.
func strategyOf(s string) (distributed.Strategy, error) {
	switch s {
	case StrategyDP:
		return distributed.DataParallel, nil
	case StrategyTP:
		return distributed.TensorParallel, nil
	case StrategyPP:
		return distributed.PipelineParallel, nil
	default:
		return 0, fmt.Errorf("plan: unknown strategy %q", s)
	}
}

// Evaluate prices one matrix cell with eng. Cell-level problems (a
// strategy the batch cannot satisfy, an engine that rejects the GPU) land
// in Result.Error — the cell is evaluated, just unrankable. The returned
// error is non-nil only for context cancellation, in which case the cell
// must NOT be recorded: it stays pending so a resume re-evaluates it.
//
// The evaluation is two passes through the same distributed schedule so
// that plan results agree exactly with the direct batch path: pass one
// walks the schedule with a recording latency function to discover the
// unique compute kernels, one PredictKernels round prices them all, and
// pass two re-walks the schedule reading the memo. Kernels the engine
// cannot price fall back to the memory-bound estimate (counted in
// Fallbacks), mirroring predict.FoldOutcomes.
func Evaluate(ctx context.Context, eng predict.Engine, spec Spec, cfg Config) (Result, error) {
	res := Result{Config: cfg}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	g, err := gpu.Lookup(cfg.GPU)
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	mc, err := models.Lookup(spec.Model)
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	strat, err := strategyOf(cfg.Strategy)
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	srv := serverFor(g, spec.GPUsPerServer)
	res.Server = srv.Name
	dp := distributed.Plan{
		Model:        mc,
		GlobalBatch:  spec.GlobalBatch,
		Server:       srv,
		Strategy:     strat,
		Training:     spec.Training,
		MicroBatches: spec.MicroBatches,
	}

	// Pass 1: discover the unique compute kernels the schedule evaluates.
	// Kernels are fingerprinted by tile.QueryKey (the serving cache key) —
	// kernels.Kernel itself carries a slice field and cannot key a map.
	var order []kernels.Kernel
	memo := map[string]float64{}
	record := func(k kernels.Kernel) float64 {
		if k.Category() == kernels.CatNetwork {
			return 0
		}
		key := tile.QueryKey(k, g)
		if _, ok := memo[key]; !ok {
			memo[key] = 0
			order = append(order, k)
		}
		return 0
	}
	if _, err := distributed.Estimate(dp, record, linkModel); err != nil {
		res.Error = err.Error()
		return res, nil
	}

	// One batch round prices every unique kernel.
	reqs := make([]predict.Request, len(order))
	for i, k := range order {
		reqs[i] = predict.Request{Kernel: k, GPU: g}
	}
	outs := eng.PredictKernels(ctx, reqs)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	for i, out := range outs {
		lat := out.Result.Latency
		if out.Err != nil {
			lat = core.MemBoundLatency(order[i], g)
			res.Fallbacks++
		}
		memo[tile.QueryKey(order[i], g)] = lat
	}

	// Pass 2: re-walk the same schedule reading the memo.
	lookup := func(k kernels.Kernel) float64 {
		if k.Category() == kernels.CatNetwork {
			return 0
		}
		return memo[tile.QueryKey(k, g)]
	}
	f, err := distributed.Estimate(dp, lookup, linkModel)
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	res.IterationMs, res.ComputeMs, res.NetworkMs = f.TotalMs, f.ComputeMs, f.NetworkMs

	// Fleet scaling. Inference fleets are embarrassingly parallel — each
	// server sustains its own stream. Training fleets are data parallel
	// across servers: every iteration adds an inter-node gradient
	// all-reduce over the fat-tree, sized by the per-GPU parameter shard
	// (full under dp, 1/n under tp and pp).
	if cfg.Fleet > 1 && spec.Training {
		gradBytes := mc.NumParams() * 4
		if cfg.Strategy != StrategyDP {
			gradBytes /= float64(spec.GPUsPerServer)
		}
		inter := interTree.AllReduceMs(gradBytes, cfg.Fleet)
		res.IterationMs += inter
		res.NetworkMs += inter
	}
	if res.IterationMs > 0 {
		res.ThroughputRPS = float64(spec.GlobalBatch*cfg.Fleet) * 1e3 / res.IterationMs
	}

	// Per-GPU working set: dp shards the batch, tp and pp shard the model.
	perGPUBytes := 0.0
	switch cfg.Strategy {
	case StrategyDP:
		perGPUBytes = mc.MemoryBytes(spec.GlobalBatch/spec.GPUsPerServer, spec.Training)
	default:
		perGPUBytes = mc.MemoryBytes(spec.GlobalBatch, spec.Training) / float64(spec.GPUsPerServer)
	}
	res.FitsMemory = perGPUBytes <= g.MemoryGB*1e9*0.92

	res.CostPerHour = float64(cfg.Fleet*spec.GPUsPerServer) * gpuHourlyUSD(g)
	if res.CostPerHour > 0 {
		res.ThroughputPerCost = res.ThroughputRPS / res.CostPerHour
	}
	res.MeetsTraffic = spec.TrafficRPS == 0 || res.ThroughputRPS >= spec.TrafficRPS
	return res, nil
}

// EvaluateBatch prices cfgs sequentially with eng, stopping at context
// cancellation: the returned slice holds the cells evaluated before the
// cut, err reports why the batch is short. The cluster's remote-eval
// handler and the job manager's local path both call this, which is what
// keeps fan-out results byte-identical to local evaluation.
func EvaluateBatch(ctx context.Context, eng predict.Engine, spec Spec, cfgs []Config) ([]Result, error) {
	out := make([]Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		res, err := Evaluate(ctx, eng, spec, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
