package mat

import (
	"math"
	"testing"
)

// naiveMatMul is the obvious triple loop — the reference every MatMul
// optimization (ikj order, zero skip, parallel row blocks) must match.
func naiveMatMul(a, b *Matrix) *Matrix {
	r := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			r.Set(i, j, s)
		}
	}
	return r
}

// fillPattern populates m with a deterministic mix of values, zeroing every
// zeroEvery-th element (and, when zeroRows is set, entire rows) so the
// mv==0 skip path in matMulRange is exercised.
func fillPattern(m *Matrix, zeroEvery int, zeroRows ...int) {
	for i := range m.Data {
		m.Data[i] = math.Sin(float64(i)*0.7) + 0.1*float64(i%11)
		if zeroEvery > 0 && i%zeroEvery == 0 {
			m.Data[i] = 0
		}
	}
	for _, r := range zeroRows {
		for j := 0; j < m.Cols; j++ {
			m.Set(r, j, 0)
		}
	}
}

func TestMatMulEdgeShapes(t *testing.T) {
	cases := []struct {
		name    string
		m, k, n int // (m x k) @ (k x n)
	}{
		{"1x1 @ 1x1", 1, 1, 1},
		{"row vector 1xN @ Nx1", 1, 7, 1},
		{"1xN @ NxM", 1, 9, 5},
		{"Nx1 @ 1xM outer product", 6, 1, 4},
		{"column result Mx1", 5, 8, 1},
		{"single row below threshold", 1, 100, 100},
		{"small square", 3, 3, 3},
		{"tall thin", 17, 2, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := New(c.m, c.k)
			b := New(c.k, c.n)
			fillPattern(a, 3)
			fillPattern(b, 5)
			got := a.MatMul(b)
			want := naiveMatMul(a, b)
			if !Equal(got, want, 1e-12) {
				t.Errorf("MatMul mismatch for %s:\n got %v\nwant %v", c.name, got, want)
			}
			if got.Rows != c.m || got.Cols != c.n {
				t.Errorf("shape = %dx%d, want %dx%d", got.Rows, got.Cols, c.m, c.n)
			}
		})
	}
}

func TestMatMulZeroRowSkipPath(t *testing.T) {
	// Rows 0 and 2 of a are all-zero: matMulRange skips every element of
	// those rows via the mv==0 fast path, and the result rows must stay 0.
	a := New(4, 16)
	b := New(16, 8)
	fillPattern(a, 0, 0, 2)
	fillPattern(b, 4)
	got := a.MatMul(b)
	want := naiveMatMul(a, b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("zero-row result differs from reference")
	}
	for _, row := range []int{0, 2} {
		for j := 0; j < got.Cols; j++ {
			if got.At(row, j) != 0 {
				t.Errorf("result[%d][%d] = %v, want exact 0", row, j, got.At(row, j))
			}
		}
	}
}

func TestMatMulParallelSerialEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		m, k, n int
	}{
		// work = m*k*n relative to parallelMatMulThreshold (1<<17).
		{"below threshold", 32, 32, 32},             // 32768
		{"just below threshold", 63, 64, 32},        // 129024
		{"just above threshold", 64, 64, 33},        // 135168
		{"well above threshold", 96, 128, 64},       // 786432
		{"above threshold single row", 1, 512, 512}, // parallel path, workers clamp to 1 row
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := New(c.m, c.k)
			b := New(c.k, c.n)
			fillPattern(a, 7)
			fillPattern(b, 11)

			work := c.m * c.k * c.n
			wantParallel := work >= parallelMatMulThreshold
			_ = wantParallel // documented intent; both paths must agree regardless

			got := a.MatMul(b)

			serial := New(c.m, c.n)
			matMulRange(a, b, serial, 0, c.m)

			if !Equal(got, serial, 0) {
				t.Errorf("parallel and serial MatMul disagree for %s (work=%d, threshold=%d)",
					c.name, work, parallelMatMulThreshold)
			}
			if want := naiveMatMul(a, b); !Equal(got, want, 1e-9) {
				t.Errorf("MatMul differs from naive reference for %s", c.name)
			}
		})
	}
}

func TestMatMulEmptyRowRange(t *testing.T) {
	// matMulRange with lo == hi must be a no-op, not a panic — this is the
	// degenerate chunk a caller could produce for tiny row counts.
	a := New(2, 3)
	b := New(3, 2)
	fillPattern(a, 0)
	fillPattern(b, 0)
	r := New(2, 2)
	matMulRange(a, b, r, 1, 1)
	for i, v := range r.Data {
		if v != 0 {
			t.Fatalf("result[%d] = %v after empty range, want 0", i, v)
		}
	}
}
