package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 5 // view, not copy
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view into the matrix")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows produced %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := a.Add(b); !Equal(got, FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !Equal(got, FromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); !Equal(got, FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Div(a); !Equal(got, FromRows([][]float64{{5, 3}, {7.0 / 3, 2}}), 1e-12) {
		t.Errorf("Div = %v", got)
	}
	if got := a.Scale(2); !Equal(got, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.AddScalar(1); !Equal(got, FromRows([][]float64{{2, 3}, {4, 5}}), 0) {
		t.Errorf("AddScalar = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.MatMul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 17, 17, 1)
	id := New(17, 17)
	for i := 0; i < 17; i++ {
		id.Set(i, i, 1)
	}
	if got := a.MatMul(id); !Equal(got, a, 1e-12) {
		t.Fatal("A @ I != A")
	}
	if got := id.MatMul(a); !Equal(got, a, 1e-12) {
		t.Fatal("I @ A != A")
	}
}

// TestMatMulParallelMatchesSerial drives MatMul above the parallel
// threshold and compares against a naive triple loop.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 80, 70, 1)
	b := RandN(rng, 70, 90, 1)
	got := a.MatMul(b)
	want := New(80, 90)
	for i := 0; i < 80; i++ {
		for j := 0; j < 90; j++ {
			s := 0.0
			for k := 0; k < 70; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !Equal(got, want, 1e-9) {
		t.Fatal("parallel MatMul differs from naive result")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	New(2, 3).MatMul(New(4, 2))
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.T()
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !Equal(got, want, 0) {
		t.Fatalf("T = %v", got)
	}
}

func TestReductions(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 4}})
	if s := a.Sum(); s != 6 {
		t.Errorf("Sum = %v, want 6", s)
	}
	if m := a.Mean(); m != 1.5 {
		t.Errorf("Mean = %v, want 1.5", m)
	}
	if m := a.MaxAbs(); m != 4 {
		t.Errorf("MaxAbs = %v, want 4", m)
	}
	if got := a.RowSums(); !Equal(got, FromRows([][]float64{{-1}, {7}}), 0) {
		t.Errorf("RowSums = %v", got)
	}
	if got := a.ColSums(); !Equal(got, FromRows([][]float64{{4, 2}}), 0) {
		t.Errorf("ColSums = %v", got)
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{10, 20}})
	got := a.AddRowVector(v)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !Equal(got, want, 0) {
		t.Fatalf("AddRowVector = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestApply(t *testing.T) {
	a := FromRows([][]float64{{-1, 4}})
	got := a.Apply(math.Abs)
	if !Equal(got, FromRows([][]float64{{1, 4}}), 0) {
		t.Fatalf("Apply = %v", got)
	}
}

// Property: (A @ B)ᵀ == Bᵀ @ Aᵀ for random shapes and values.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := RandN(rng, m, k, 1)
		b := RandN(rng, k, n, 1)
		lhs := a.MatMul(b).T()
		rhs := b.T().MatMul(a.T())
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition, A@(B+C) == A@B + A@C.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := RandN(r, m, k, 1)
		b := RandN(r, k, n, 1)
		c := RandN(r, k, n, 1)
		lhs := a.MatMul(b.Add(c))
		rhs := a.MatMul(b).Add(a.MatMul(c))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := RandN(r, 1+r.Intn(15), 1+r.Intn(15), 2)
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := RandUniform(rng, 10, 10, -2, 3)
	for _, v := range m.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("value %v outside [-2, 3)", v)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := RandN(rng, 128, 128, 1)
	y := RandN(rng, 128, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}
