package mat

import "sync"

// Arena is a sync.Pool-backed scratch-buffer allocator for the compiled
// inference path. Hot loops that need temporary matrices — the hidden-layer
// activations of a forward pass — Get them from an Arena and Put them back,
// so steady-state inference performs zero heap allocations for scratch.
//
// Buffers are recycled by capacity, not shape: a Get reshapes any pooled
// buffer large enough to hold rows x cols, so one arena serves every layer
// width of a network and every batch size of a serving workload. Matrices
// returned by Get hold unspecified values; callers that need zeroed memory
// (MatMulInto does not — it overwrites its window) must Zero them.
//
// An Arena is safe for concurrent use. The zero value is ready to use.
type Arena struct {
	pool sync.Pool
}

// Get returns a rows x cols scratch matrix with unspecified contents.
func (a *Arena) Get(rows, cols int) *Matrix {
	n := rows * cols
	if m, _ := a.pool.Get().(*Matrix); m != nil && cap(m.Data) >= n {
		m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
		return m
	}
	// Nothing pooled, or the pooled buffer was too small (it is dropped and
	// eventually collected; the pool refills at the new high-water mark).
	return New(rows, cols)
}

// Put returns m to the arena for reuse. m must not be used after Put.
func (a *Arena) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	a.pool.Put(m)
}
