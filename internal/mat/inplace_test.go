package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatMulIntoMatchesMatMul checks that the in-place kernel is
// bit-identical to the allocating one across the shape regimes it blocks
// differently: tiny (serial), tall (row-parallel), and tall-skinny / wide
// (column-parallel).
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 5, 2},     // single row, serial
		{3, 17, 9},    // small, serial
		{128, 64, 80}, // row-parallel
		{1, 512, 512}, // tall-skinny: column-parallel
		{4, 512, 300}, // few rows, wide output
		{97, 53, 61},  // odd sizes
	}
	for _, s := range shapes {
		a := RandN(rng, s[0], s[1], 1)
		b := RandN(rng, s[1], s[2], 1)
		want := a.MatMul(b)
		dst := New(s[0], s[2])
		dst.Fill(math.NaN()) // MatMulInto must overwrite, not accumulate
		got := MatMulInto(dst, a, b)
		if got != dst {
			t.Fatalf("%v: MatMulInto did not return dst", s)
		}
		if !Equal(want, got, 0) {
			t.Fatalf("%v: MatMulInto differs from MatMul", s)
		}
	}
}

func TestMatMulIntoPanics(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	cases := map[string]func(){
		"inner mismatch": func() { MatMulInto(New(2, 4), a, New(4, 4)) },
		"dst shape":      func() { MatMulInto(New(3, 4), a, b) },
		"dst aliases a":  func() { MatMulInto(a, a, New(3, 3)) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAddRowVectorIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := RandN(rng, 6, 5, 1)
	v := RandN(rng, 1, 5, 1)
	want := a.AddRowVector(v)

	// Fresh destination.
	dst := New(6, 5)
	AddRowVectorInto(dst, a, v)
	if !Equal(want, dst, 0) {
		t.Fatal("AddRowVectorInto (fresh dst) differs from AddRowVector")
	}
	// In place: dst aliases a.
	ac := a.Clone()
	AddRowVectorInto(ac, ac, v)
	if !Equal(want, ac, 0) {
		t.Fatal("AddRowVectorInto (aliased) differs from AddRowVector")
	}
}

// TestAddRowVectorApplyIntoFusesBiasAndActivation compares the fused
// epilogue against the unfused AddRowVector + Apply composition.
func TestAddRowVectorApplyIntoFusesBiasAndActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	relu := func(x float64) float64 { return math.Max(x, 0) }
	a := RandN(rng, 7, 11, 1)
	v := RandN(rng, 1, 11, 1)
	want := a.AddRowVector(v).Apply(relu)

	got := a.Clone()
	AddRowVectorApplyInto(got, got, v, relu)
	if !Equal(want, got, 0) {
		t.Fatal("fused epilogue differs from AddRowVector + Apply")
	}
}

func TestArenaRecyclesBuffers(t *testing.T) {
	var ar Arena
	// sync.Pool is best-effort — and deliberately lossy under the race
	// detector — so require recycling to happen at least once across many
	// rounds rather than on any single Put/Get pair.
	recycled := false
	var backing *float64
	for i := 0; i < 100 && !recycled; i++ {
		m := ar.Get(8, 16)
		if m.Rows != 8 || m.Cols != 16 || len(m.Data) != 128 {
			t.Fatalf("Get returned %dx%d (len %d)", m.Rows, m.Cols, len(m.Data))
		}
		backing = &m.Data[:cap(m.Data)][0]
		ar.Put(m)

		// A smaller request may reuse the pooled buffer, reshaped.
		m2 := ar.Get(4, 8)
		if m2.Rows != 4 || m2.Cols != 8 || len(m2.Data) != 32 {
			t.Fatalf("reshaped Get returned %dx%d (len %d)", m2.Rows, m2.Cols, len(m2.Data))
		}
		recycled = &m2.Data[:cap(m2.Data)][0] == backing
	}
	if !recycled {
		t.Error("Get never recycled a pooled buffer across 100 rounds")
	}

	// A larger request cannot reuse the last pooled buffer and must
	// allocate fresh at the requested size.
	m3 := ar.Get(32, 32)
	if len(m3.Data) != 1024 {
		t.Fatalf("oversized Get returned len %d", len(m3.Data))
	}
	if &m3.Data[0] == backing {
		t.Error("Get handed out an undersized buffer")
	}
}

func TestArenaZeroValueAndNilPut(t *testing.T) {
	var ar Arena
	ar.Put(nil)       // must not panic
	ar.Put(New(0, 0)) // empty buffers are not pooled
	m := ar.Get(2, 2) // still works
	if len(m.Data) != 4 {
		t.Fatalf("Get after nil Put returned len %d", len(m.Data))
	}
}

func BenchmarkMatMulIntoTallSkinny(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := RandN(rng, 16, 512, 1)
	w := RandN(rng, 512, 512, 1)
	dst := New(16, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, w)
	}
}

func BenchmarkMatMulAllocTallSkinny(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := RandN(rng, 16, 512, 1)
	w := RandN(rng, 512, 512, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MatMul(w)
	}
}

// TestParallelForPropagatesPanics: a panic in a worker chunk must surface
// in the calling goroutine (where serve's recover handlers live), not crash
// the process from an unrecoverable goroutine.
func TestParallelForPropagatesPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	// Enough items that the fan-out actually spawns goroutines.
	ParallelFor(1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 777 {
				panic("worker boom")
			}
		}
	})
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 1025} {
		hits := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}
