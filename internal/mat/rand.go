package mat

import "math/rand"

// RandN returns a rows x cols matrix with entries drawn from N(0, std²)
// using rng, which callers seed for reproducibility.
func RandN(rng *rand.Rand, rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform returns a rows x cols matrix with entries in [lo, hi).
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}
