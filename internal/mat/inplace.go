package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// This file holds the in-place and fused primitives behind the compiled
// inference path (internal/nn.CompiledMLP). They are the allocation-free
// counterparts of the allocating operations in mat.go: every destination is
// caller-provided (typically from an Arena), and the bias + activation of an
// MLP layer fuse into a single pass over the output.
//
// Numerical contract: MatMulInto accumulates each output element over k in
// increasing order — the same order as MatMul — so a compiled forward pass
// is bit-identical to the autodiff forward pass it replaces, regardless of
// how the row/column ranges are blocked across goroutines.

// overlaps reports whether two float64 slices share backing memory. The
// in-place kernels only ever see whole-matrix buffers, so comparing the
// first elements of the full capacity ranges is sufficient.
func overlaps(a, b []float64) bool {
	if cap(a) == 0 || cap(b) == 0 {
		return false
	}
	return &a[:cap(a)][0] == &b[:cap(b)][0]
}

// ParallelFor splits [0, n) into contiguous chunks, one per available CPU,
// and runs fn on each concurrently, returning when all chunks finish. With
// one CPU (or n <= 1) fn runs inline. A panic in any chunk is re-raised in
// the calling goroutine after the rest complete, so callers' recover
// handlers see worker panics exactly as if fn had run inline. It is the
// shared fan-out primitive of the parallel matmuls here and the batch
// featurizer in internal/core.
func ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// MatMulInto computes dst = a @ b, overwriting dst. dst must be a.Rows x
// b.Cols and must not alias a or b. Large products are blocked across
// goroutines: by row chunks for training-shaped batches, and by column
// blocks for the tall-skinny (few rows, wide output) shapes single-kernel
// inference produces, so every core helps even at batch size 1. Returns dst.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulInto inner dimension mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if overlaps(dst.Data, a.Data) || overlaps(dst.Data, b.Data) {
		panic("mat: MatMulInto dst aliases an input")
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelMatMulThreshold {
		matMulIntoRange(a, b, dst, 0, a.Rows, 0, b.Cols)
		return dst
	}
	if a.Rows >= runtime.GOMAXPROCS(0) {
		// Row-parallel: each worker owns a contiguous row chunk.
		ParallelFor(a.Rows, func(lo, hi int) {
			matMulIntoRange(a, b, dst, lo, hi, 0, b.Cols)
		})
	} else {
		// Column-parallel: too few rows to feed every core, so split the
		// output columns into blocks instead (the batch x 512 case).
		ParallelFor(b.Cols, func(lo, hi int) {
			matMulIntoRange(a, b, dst, 0, a.Rows, lo, hi)
		})
	}
	return dst
}

// matMulIntoRange computes the [rlo,rhi) x [clo,chi) window of dst = a @ b.
// The window is zeroed and then accumulated in ikj order, streaming b and
// dst rows sequentially; each dst element sees its k terms in increasing
// order, which keeps the result bit-identical to matMulRange.
func matMulIntoRange(a, b, dst *Matrix, rlo, rhi, clo, chi int) {
	for i := rlo; i < rhi; i++ {
		aRow := a.Row(i)
		dRow := dst.Row(i)[clo:chi]
		for j := range dRow {
			dRow[j] = 0
		}
		for k, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Row(k)[clo:chi]
			for j, bv := range bRow {
				dRow[j] += av * bv
			}
		}
	}
}

// AddRowVectorInto writes dst = a with the 1 x Cols vector v added to every
// row. dst must match a's shape and may alias a (the in-place case).
// Returns dst.
func AddRowVectorInto(dst, a, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("mat: AddRowVectorInto wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	dst.shapeCheck(a, "AddRowVectorInto")
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		out := dst.Row(i)
		for j, x := range row {
			out[j] = x + v.Data[j]
		}
	}
	return dst
}

// AddRowVectorApplyInto fuses an MLP layer epilogue into one pass:
// dst = f(a + broadcast(v)) elementwise, where v is 1 x Cols. dst may alias
// a. Fusing the bias add with the activation halves the memory traffic of
// the layer epilogue, which dominates once the matmul itself is blocked.
// Returns dst.
func AddRowVectorApplyInto(dst, a, v *Matrix, f func(float64) float64) *Matrix {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("mat: AddRowVectorApplyInto wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	dst.shapeCheck(a, "AddRowVectorApplyInto")
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		out := dst.Row(i)
		for j, x := range row {
			out[j] = f(x + v.Data[j])
		}
	}
	return dst
}
