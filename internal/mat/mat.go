// Package mat provides a small dense float64 matrix library used as the
// numeric substrate for the autodiff engine and the NeuSight predictors.
//
// Matrices are row-major. All operations either allocate a fresh result or
// write into an explicit destination; no operation aliases its inputs unless
// documented. MatMul parallelizes across row blocks for the sizes that occur
// when training the utilization predictors.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d x %d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from row slices, copying the data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add returns m + o elementwise.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.shapeCheck(o, "Add")
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = v + o.Data[i]
	}
	return r
}

// AddInPlace accumulates o into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.shapeCheck(o, "AddInPlace")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Sub returns m - o elementwise.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.shapeCheck(o, "Sub")
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = v - o.Data[i]
	}
	return r
}

// Mul returns the elementwise (Hadamard) product.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	m.shapeCheck(o, "Mul")
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = v * o.Data[i]
	}
	return r
}

// Div returns the elementwise quotient m / o.
func (m *Matrix) Div(o *Matrix) *Matrix {
	m.shapeCheck(o, "Div")
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = v / o.Data[i]
	}
	return r
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = v * s
	}
	return r
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScalar returns m + s elementwise.
func (m *Matrix) AddScalar(s float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = v + s
	}
	return r
}

// Apply returns f applied elementwise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = f(v)
	}
	return r
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	r := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			r.Data[j*m.Rows+i] = v
		}
	}
	return r
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// parallelMatMulThreshold is the flop count above which MatMul fans out
// across goroutines. Below it the goroutine overhead dominates.
const parallelMatMulThreshold = 1 << 17

// MatMul returns m @ o.
func (m *Matrix) MatMul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %dx%d @ %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := New(m.Rows, o.Cols)
	work := m.Rows * m.Cols * o.Cols
	if work < parallelMatMulThreshold {
		matMulRange(m, o, r, 0, m.Rows)
		return r
	}
	ParallelFor(m.Rows, func(lo, hi int) {
		matMulRange(m, o, r, lo, hi)
	})
	return r
}

// matMulRange computes rows [lo, hi) of r = m @ o using an ikj loop order so
// the inner loop streams both o and r rows sequentially.
func matMulRange(m, o, r *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		for k, mv := range mRow {
			if mv == 0 {
				continue
			}
			oRow := o.Row(k)
			for j, ov := range oRow {
				rRow[j] += mv * ov
			}
		}
	}
}

// RowSums returns a column vector (Rows x 1) of per-row sums.
func (m *Matrix) RowSums() *Matrix {
	r := New(m.Rows, 1)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += v
		}
		r.Data[i] = s
	}
	return r
}

// ColSums returns a row vector (1 x Cols) of per-column sums.
func (m *Matrix) ColSums() *Matrix {
	r := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			r.Data[j] += v
		}
	}
	return r
}

// AddRowVector returns m with the 1 x Cols vector v added to every row.
func (m *Matrix) AddRowVector(v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector wants 1x%d, got %dx%d", m.Cols, v.Rows, v.Cols))
	}
	r := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		out := r.Row(i)
		for j, x := range row {
			out[j] = x + v.Data[j]
		}
	}
	return r
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		s += " ["
		for i := 0; i < m.Rows; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
			if i != m.Rows-1 {
				s += "; "
			}
		}
		s += "]"
	}
	return s
}
