// Package network models intra-server GPU interconnects and multi-node
// fabrics (paper Section 5.1 and 6.3). Like internal/gpusim, it has two
// faces:
//
//   - Sim is the measurement substrate: it computes "real" collective
//     latencies using hidden per-interconnect efficiencies that stand in
//     for NCCL behavior on NVLink meshes, DGX switchboards, and InfiniBand
//     fat-trees.
//   - Model is the predictor side: following the paper, it measures the
//     link utilization of one existing reference system and applies that
//     utilization to the *peak* link bandwidth of the target system.
//
// Collectives follow the standard ring formulations: an all-reduce moves
// 2(n-1)/n of the tensor over the slowest link; a send/recv moves the
// tensor once.
package network

import (
	"hash/fnv"

	"neusight/internal/gpu"
)

// hopLatencyMs is the per-hop software+link latency of one ring step.
const hopLatencyMs = 5e-3 // 5us

// hiddenLinkEff returns the fraction of peak link bandwidth the simulated
// interconnect sustains. DGX-class switch fabrics run closer to peak than
// point-to-point NVLink meshes; the name hash adds per-system variation.
func hiddenLinkEff(srv gpu.ServerSpec) float64 {
	base := 0.70
	switch srv.Interconn {
	case "DGX":
		base = 0.78
	case "NVLink":
		base = 0.70
	}
	f := fnv.New64a()
	f.Write([]byte(srv.Name))
	j := 2*float64(f.Sum64()%1_000_000)/1_000_000 - 1
	return base + 0.04*j
}

// Sim is the ground-truth network simulator.
type Sim struct{}

// NewSim returns the measurement-side network simulator.
func NewSim() *Sim { return &Sim{} }

// effBWGBs returns the sustained GB/s of srv's links.
func (s *Sim) effBWGBs(srv gpu.ServerSpec) float64 {
	return srv.LinkBWGBs * hiddenLinkEff(srv)
}

// AllReduceMs returns the measured latency of a ring all-reduce of bytes
// across all GPUs of srv.
func (s *Sim) AllReduceMs(bytes float64, srv gpu.ServerSpec) float64 {
	return ringAllReduceMs(bytes, srv.NumGPUs, s.effBWGBs(srv))
}

// SendRecvMs returns the measured latency of a point-to-point activation
// transfer of bytes between two GPUs of srv.
func (s *Sim) SendRecvMs(bytes float64, srv gpu.ServerSpec) float64 {
	return bytes/(s.effBWGBs(srv)*1e9)*1e3 + hopLatencyMs
}

// MeasuredLinkUtilization reports the sustained/peak ratio of srv — what
// the paper measures on the in-hand system to calibrate its model.
func (s *Sim) MeasuredLinkUtilization(srv gpu.ServerSpec) float64 {
	return hiddenLinkEff(srv)
}

// Model is the predictor-side link model: peak bandwidth of the target
// scaled by the utilization calibrated on a reference system.
type Model struct {
	// Util is the link utilization carried over from the reference system.
	Util float64
}

// Calibrate measures the reference system's link utilization with sim and
// returns a Model applying it to any target (paper Section 5.1).
func Calibrate(sim *Sim, ref gpu.ServerSpec) Model {
	return Model{Util: sim.MeasuredLinkUtilization(ref)}
}

// AllReduceMs predicts a ring all-reduce of bytes across srv's GPUs.
func (m Model) AllReduceMs(bytes float64, srv gpu.ServerSpec) float64 {
	return ringAllReduceMs(bytes, srv.NumGPUs, srv.LinkBWGBs*m.Util)
}

// SendRecvMs predicts a point-to-point transfer of bytes on srv.
func (m Model) SendRecvMs(bytes float64, srv gpu.ServerSpec) float64 {
	return bytes/(srv.LinkBWGBs*m.Util*1e9)*1e3 + hopLatencyMs
}

// ringAllReduceMs is the ring all-reduce cost model: 2(n-1) steps each
// moving bytes/n at effGBs, plus per-step hop latency.
func ringAllReduceMs(bytes float64, n int, effGBs float64) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	perStep := bytes / float64(n) / (effGBs * 1e9) * 1e3
	return steps*perStep + steps*hopLatencyMs
}
