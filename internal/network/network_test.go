package network

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"neusight/internal/gpu"
)

func TestRingAllReduceFormula(t *testing.T) {
	// 2 GPUs: 2 steps of bytes/2 each.
	bytes := 1e9
	eff := 100.0 // GB/s
	got := ringAllReduceMs(bytes, 2, eff)
	want := 2*(bytes/2/(eff*1e9)*1e3) + 2*hopLatencyMs
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("allreduce = %v, want %v", got, want)
	}
	if ringAllReduceMs(bytes, 1, eff) != 0 {
		t.Fatal("single GPU allreduce must be free")
	}
}

// Property: all-reduce volume saturates at 2x bytes — latency grows with n
// but is bounded by the asymptotic 2*bytes/BW plus hop latencies.
func TestAllReduceSaturationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bytes := float64(1+r.Intn(1000)) * 1e6
		eff := float64(10 + r.Intn(900))
		prev := 0.0
		for n := 2; n <= 64; n *= 2 {
			l := ringAllReduceMs(bytes, n, eff)
			if l <= prev { // strictly growing in n (hop latency term)
				return false
			}
			asymptote := 2*bytes/(eff*1e9)*1e3 + float64(2*(n-1))*hopLatencyMs
			if l > asymptote+1e-9 {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimVsModelCalibration(t *testing.T) {
	sim := NewSim()
	ref := gpu.MustLookupServer("V100x4-NVLink")
	model := Calibrate(sim, ref)
	// On the reference system itself the model is exact.
	bytes := 512e6
	if got, want := model.AllReduceMs(bytes, ref), sim.AllReduceMs(bytes, ref); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("model on reference = %v, sim = %v", got, want)
	}
	// On a different system the calibrated utilization is close but not
	// exact — the source of the distributed prediction error.
	tgt := gpu.MustLookupServer("H100x4-DGX")
	g, w := model.AllReduceMs(bytes, tgt), sim.AllReduceMs(bytes, tgt)
	if g <= 0 || w <= 0 {
		t.Fatal("non-positive latencies")
	}
	rel := math.Abs(g-w) / w
	if rel > 0.35 {
		t.Fatalf("calibration transfer error %v too large", rel)
	}
}

func TestDGXFasterThanNVLinkMesh(t *testing.T) {
	sim := NewSim()
	bytes := 1e9
	nv := sim.AllReduceMs(bytes, gpu.MustLookupServer("A100x4-NVLink"))
	dgx := sim.AllReduceMs(bytes, gpu.MustLookupServer("H100x4-DGX"))
	if dgx >= nv {
		t.Fatalf("DGX allreduce %v should beat NVLink mesh %v (900 vs 600 GB/s)", dgx, nv)
	}
}

func TestSendRecv(t *testing.T) {
	sim := NewSim()
	srv := gpu.MustLookupServer("A100x4-NVLink")
	small := sim.SendRecvMs(1e3, srv)
	big := sim.SendRecvMs(1e9, srv)
	if small >= big {
		t.Fatal("send latency must grow with bytes")
	}
	if small < hopLatencyMs {
		t.Fatal("send latency cannot undercut hop latency")
	}
}

func TestHierarchyMatchesTable9Shape(t *testing.T) {
	h := Table9Hierarchy(0.8)
	bytes := 40e9 // ~fp16 gradient shard of a GPT-3 class model
	l1 := h.AllReduceMs(bytes, 1)
	l4 := h.AllReduceMs(bytes, 4)
	l384 := h.AllReduceMs(bytes, 384)
	l768 := h.AllReduceMs(bytes, 768)
	l3840 := h.AllReduceMs(bytes, 3840)

	if l1 != 0 {
		t.Fatalf("1 node allreduce = %v, want 0", l1)
	}
	// Shape of paper Table 9: modest cost at 4 nodes (fast level-1
	// fabric), a large jump once the InfiniBand levels engage, then
	// near-flat growth.
	if !(l4 < l384 && l384 < l768 && l768 < l3840) {
		t.Fatalf("hierarchy not monotone: %v %v %v %v", l4, l384, l768, l3840)
	}
	if l384 < 5*l4 {
		t.Fatalf("IB levels should dominate: l384=%v vs l4=%v", l384, l4)
	}
	if (l3840-l384)/l384 > 0.5 {
		t.Fatalf("growth beyond 384 nodes should be mild: %v -> %v", l384, l3840)
	}
}

func TestHierarchyZeroBeyondSingleNode(t *testing.T) {
	h := Table9Hierarchy(0.8)
	if h.AllReduceMs(1e9, 0) != 0 || h.AllReduceMs(1e9, 1) != 0 {
		t.Fatal("degenerate node counts must cost nothing")
	}
}
