package network

// Hierarchy models the multi-level fabric of the paper's Table 9 study:
// nodes are "connected hierarchically across levels consisting of 4, 384,
// 768, and up to 3840 nodes". The first level (groups of FastGroupSize
// nodes) rides the high-speed server-class fabric; above it, group leaders
// form a single ring over the InfiniBand links. Because the ring volume
// factor 2(m-1)/m saturates quickly, cost jumps when the InfiniBand level
// engages and then grows only mildly with scale — the shape of Table 9.
type Hierarchy struct {
	FastGroupSize int     // nodes per first-level group
	FastBWGBs     float64 // first-level per-node bandwidth
	UpperBWGBs    float64 // InfiniBand per-node bandwidth above level 1
	// Util is the link utilization applied at every level (calibrated the
	// same way as the intra-server Model).
	Util float64
}

// Table9Hierarchy returns the topology of the paper's experiment: groups
// of 4 nodes on the fast fabric, 100 Gbps InfiniBand (12.5 GB/s) above.
func Table9Hierarchy(util float64) Hierarchy {
	return Hierarchy{FastGroupSize: 4, FastBWGBs: 200, UpperBWGBs: 12.5, Util: util}
}

// AllReduceMs predicts a hierarchical ring all-reduce of bytes across
// nodes: rings within each fast group, then one ring across group leaders
// on InfiniBand, then redistribution within groups (folded into the first
// term's 2(m-1) steps).
func (h Hierarchy) AllReduceMs(bytes float64, nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	total := 0.0
	fast := h.FastGroupSize
	if fast < 1 {
		fast = 1
	}
	members := fast
	if members > nodes {
		members = nodes
	}
	if members > 1 {
		total += ringTime(bytes, members, h.FastBWGBs*h.Util)
	}
	leaders := (nodes + fast - 1) / fast
	if leaders > 1 {
		total += ringTime(bytes, leaders, h.UpperBWGBs*h.Util)
	}
	return total
}

// ringTime is one ring all-reduce pass: 2(m-1) steps of bytes/m plus hop
// latency per step.
func ringTime(bytes float64, m int, effGBs float64) float64 {
	steps := float64(2 * (m - 1))
	perStep := bytes / float64(m) / (effGBs * 1e9) * 1e3
	return steps * (perStep + hopLatencyMs)
}
