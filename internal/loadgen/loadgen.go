// Package loadgen is the load-generation harness of the repo: an
// open-loop driver that offers prediction traffic to a serve.Service
// (over its HTTP API) at a controlled rate, measures what comes back, and
// walks the offered rate up until the service breaches an SLO — answering
// the capacity question ("how many users can this node take?") that
// closed-loop microbenchmarks structurally cannot, because a closed loop
// slows its own offering exactly when the server saturates and so only
// ever measures the plateau, never the knee.
//
// The pieces compose left to right:
//
//	ArrivalSpec (arrival.go)  — when requests arrive: Poisson or bursty
//	                            on/off streams, deterministic under a seed
//	Scenario (scenario.go)    — what each request is: weighted
//	                            kernel/batch/graph mixes over a model × GPU
//	                            matrix, or a recorded trace replayed at rate
//	Run (this file)           — one fixed-rate step: dispatch open-loop,
//	                            record latencies into an HDR-style
//	                            Histogram (hist.go), count outcomes, and
//	                            difference the server's /v2/stats around
//	                            the step
//	Sweep (sweep.go)          — stepped rate escalation with SLO evaluation
//	                            and knee reporting
//
// `neusight loadgen` is the CLI front end; scripts/bench.sh --sweep runs
// a standard sweep and commits the result as BENCH_serve.json, the repo's
// reviewable perf trajectory.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"neusight/internal/serve"
)

// Target is the service under test: a base URL plus the HTTP client the
// driver issues requests through.
type Target struct {
	BaseURL string
	Client  *http.Client
}

// NewTarget returns a Target for baseURL with a client sized for maxConns
// concurrent requests: connection reuse must keep up with the in-flight
// ceiling or the driver ends up benchmarking TCP handshakes.
func NewTarget(baseURL string, maxConns int) *Target {
	if maxConns <= 0 {
		maxConns = DefaultMaxInFlight
	}
	tr := &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
		IdleConnTimeout:     30 * time.Second,
	}
	return &Target{BaseURL: baseURL, Client: &http.Client{Transport: tr}}
}

// Stats fetches the target's /v2/stats snapshot.
func (t *Target) Stats(ctx context.Context) (serve.StatsV2, error) {
	var st serve.StatsV2
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.BaseURL+"/v2/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("loadgen: /v2/stats returned %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// DefaultMaxInFlight caps concurrently outstanding requests. An open-loop
// driver must keep offering while the target lags, but a truly unbounded
// one would eventually exhaust client sockets and measure its own
// resource collapse; arrivals past the cap are counted as Dropped — by
// then the target is far past its knee anyway.
const DefaultMaxInFlight = 4096

// RunConfig shapes one fixed-rate load step.
type RunConfig struct {
	// Rate is the offered rate in requests/second.
	Rate float64
	// Duration is how long to offer arrivals (completions may lag a
	// little past it; they are all waited for and measured).
	Duration time.Duration
	// Arrival picks the arrival process (default: Poisson, seed 0).
	Arrival ArrivalSpec
	// Scenario supplies the request stream. Required.
	Scenario *Scenario
	// MaxInFlight caps outstanding requests (0 = DefaultMaxInFlight;
	// negative = unbounded).
	MaxInFlight int
	// Timeout bounds each request round trip (0 = 30s). A timed-out
	// request counts as errored.
	Timeout time.Duration
	// SkipServerStats disables the /v2/stats delta (for targets that do
	// not serve it).
	SkipServerStats bool
	// ObserveFeedback reports each successful kernel request's measured
	// round-trip latency back to the target via POST /v2/observe after the
	// step completes — the client side of the continuous-calibration loop.
	// Posting happens after the /v2/stats delta is taken so the feedback
	// traffic does not skew the step's server-side account. The target
	// must run with -observe or every observation is rejected.
	ObserveFeedback bool
}

// ServerDelta is the change in the target's /v2/stats counters across one
// step — the server's own account of what the step did to it, recorded so
// a report can be cross-checked against the service rather than trusting
// the client side alone (the agreement tests pin the two views equal).
type ServerDelta struct {
	Requests       uint64 `json:"requests"`
	BatchRequests  uint64 `json:"batch_requests"`
	BatchedKernels uint64 `json:"batched_kernels"`
	GraphRequests  uint64 `json:"graph_requests"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	Coalesced      uint64 `json:"coalesced"`
	Errors         uint64 `json:"errors"`
	Rejected       uint64 `json:"rejected"`
}

func deltaStats(before, after serve.StatsV2) *ServerDelta {
	return &ServerDelta{
		Requests:       after.Requests - before.Requests,
		BatchRequests:  after.BatchRequests - before.BatchRequests,
		BatchedKernels: after.BatchedKernels - before.BatchedKernels,
		GraphRequests:  after.GraphRequests - before.GraphRequests,
		CacheHits:      after.CacheHits - before.CacheHits,
		CacheMisses:    after.CacheMisses - before.CacheMisses,
		Coalesced:      after.Coalesced - before.Coalesced,
		Errors:         after.Errors - before.Errors,
		Rejected:       after.Rejected - before.Rejected,
	}
}

// StepResult is the measured outcome of one fixed-rate step.
type StepResult struct {
	// OfferedRate is the configured arrival rate (requests/second);
	// AchievedRate is successful completions per second of wall clock.
	// A widening gap between them is the knee forming.
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`

	// Sent counts requests actually issued; Succeeded (2xx), Rejected
	// (503 backpressure), and Errored (everything else, including
	// transport failures) partition it exactly. Dropped counts arrivals
	// shed client-side at the in-flight cap — offered but never sent.
	Sent      uint64 `json:"sent"`
	Succeeded uint64 `json:"succeeded"`
	Rejected  uint64 `json:"rejected"`
	Errored   uint64 `json:"errored"`
	Dropped   uint64 `json:"dropped"`

	// Latency percentiles are over successful requests only: rejections
	// complete in microseconds, and folding them in would make the
	// service look fastest exactly while it sheds load.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`

	// ErrorRate is (Rejected + Errored + Dropped) / offered arrivals —
	// the fraction of offered traffic that did not succeed.
	ErrorRate float64 `json:"error_rate"`

	DurationSec float64 `json:"duration_sec"`

	// Observed counts measured latencies the feedback mode reported back
	// through /v2/observe after the step; ObserveRejected counts the ones
	// the server refused. Both zero unless ObserveFeedback is set.
	Observed        uint64 `json:"observed,omitempty"`
	ObserveRejected uint64 `json:"observe_rejected,omitempty"`

	// Server is the /v2/stats delta across the step (nil when skipped or
	// unavailable).
	Server *ServerDelta `json:"server,omitempty"`

	// hist is the step's full latency histogram, kept so the cluster
	// driver can merge per-member distributions exactly (fixed buckets
	// merge losslessly) instead of averaging pre-computed percentiles.
	hist *Histogram
}

// Histogram returns the step's latency histogram over successful requests
// (nil for results not produced by Run).
func (r *StepResult) Histogram() *Histogram { return r.hist }

// maxStatsTimeout bounds each /v2/stats fetch around a step. The stats
// endpoint answers in microseconds when healthy; a member that vanished or
// hung mid-step (the exact situation a cluster sweep with fault injection
// creates) must cost the step a bounded wait, not hang it forever.
const maxStatsTimeout = 5 * time.Second

// statsDeadline derives the stats-fetch timeout from the step's request
// timeout, capped at maxStatsTimeout.
func statsDeadline(timeout time.Duration) time.Duration {
	if timeout > 0 && timeout < maxStatsTimeout {
		return timeout
	}
	return maxStatsTimeout
}

// Run offers one fixed-rate open-loop load step to the target and reports
// what happened. Arrivals are scheduled on an absolute timeline derived
// from the arrival process, so a lagging target receives the backlog as a
// burst instead of silently lowering the offered rate.
func Run(ctx context.Context, tgt *Target, cfg RunConfig) (StepResult, error) {
	if tgt == nil {
		return StepResult{}, fmt.Errorf("loadgen: nil target")
	}
	if cfg.Scenario == nil || cfg.Scenario.Len() == 0 {
		return StepResult{}, fmt.Errorf("loadgen: empty scenario")
	}
	if cfg.Duration <= 0 {
		return StepResult{}, fmt.Errorf("loadgen: step duration must be positive, got %v", cfg.Duration)
	}
	arr, err := cfg.Arrival.New(cfg.Rate)
	if err != nil {
		return StepResult{}, err
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	var before serve.StatsV2
	haveBefore := false
	if !cfg.SkipServerStats {
		// Bounded: a target that accepts the connection and never answers
		// (crashing member, stale cluster view) must not hang the step.
		sctx, scancel := context.WithTimeout(ctx, statsDeadline(timeout))
		if st, err := tgt.Stats(sctx); err == nil {
			before, haveBefore = st, true
		}
		scancel()
	}

	var (
		sent, succeeded, rejected, errored, dropped atomic.Uint64
		inFlight                                    atomic.Int64
		hist                                        = NewHistogram()
		wg                                          sync.WaitGroup

		// Feedback observations accumulate under their own lock; the hot
		// path only appends, the posting happens after the step completes.
		obsMu sync.Mutex
		obs   []serve.ObserveRequest
	)
	issue := func(req Request) {
		defer wg.Done()
		defer inFlight.Add(-1)
		sent.Add(1)
		rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), timeout)
		defer cancel()
		start := time.Now()
		status, err := tgt.do(rctx, req)
		switch {
		case err != nil:
			errored.Add(1)
		case status == http.StatusServiceUnavailable:
			rejected.Add(1)
		case status >= 200 && status < 300:
			succeeded.Add(1)
			elapsed := time.Since(start)
			hist.Observe(elapsed)
			if cfg.ObserveFeedback && req.Observe != nil {
				ob := *req.Observe
				ob.ObservedMs = float64(elapsed.Nanoseconds()) / 1e6
				obsMu.Lock()
				obs = append(obs, ob)
				obsMu.Unlock()
			}
		default:
			errored.Add(1)
		}
	}

	start := time.Now()
	next := start
	var i uint64
	for {
		next = next.Add(arr.Next())
		if next.Sub(start) >= cfg.Duration {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		req := cfg.Scenario.Request(i)
		i++
		if maxInFlight > 0 && inFlight.Load() >= int64(maxInFlight) {
			dropped.Add(1)
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go issue(req)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return StepResult{}, err
	}

	qs := hist.Quantiles(0.50, 0.99, 0.999)
	res := StepResult{
		OfferedRate: cfg.Rate,
		Sent:        sent.Load(),
		Succeeded:   succeeded.Load(),
		Rejected:    rejected.Load(),
		Errored:     errored.Load(),
		Dropped:     dropped.Load(),
		P50Ms:       qs[0],
		P99Ms:       qs[1],
		P999Ms:      qs[2],
		MeanMs:      hist.MeanMs(),
		MaxMs:       hist.MaxMs(),
		DurationSec: elapsed.Seconds(),
		hist:        hist,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.AchievedRate = float64(res.Succeeded) / secs
	}
	if offered := res.Sent + res.Dropped; offered > 0 {
		res.ErrorRate = float64(res.Rejected+res.Errored+res.Dropped) / float64(offered)
	}
	if haveBefore {
		sctx, scancel := context.WithTimeout(ctx, statsDeadline(timeout))
		if after, err := tgt.Stats(sctx); err == nil {
			res.Server = deltaStats(before, after)
		}
		scancel()
	}
	if cfg.ObserveFeedback {
		res.Observed, res.ObserveRejected = tgt.Observe(ctx, obs)
	}
	return res, nil
}

// Observe posts measured latencies to the target's /v2/observe endpoint in
// chunks capped at the server's batch limit, returning the server-side
// accepted and rejected counts. A chunk that fails to round-trip (transport
// error, non-200, undecodable reply) counts fully rejected.
func (t *Target) Observe(ctx context.Context, obs []serve.ObserveRequest) (accepted, rejected uint64) {
	for len(obs) > 0 {
		n := len(obs)
		if n > serve.MaxBatchKernels {
			n = serve.MaxBatchKernels
		}
		chunk := obs[:n]
		obs = obs[n:]
		body, err := json.Marshal(serve.ObserveBatchRequest{Observations: chunk})
		if err != nil {
			rejected += uint64(n)
			continue
		}
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/v2/observe", bytes.NewReader(body))
		if err != nil {
			rejected += uint64(n)
			continue
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := t.Client.Do(hr)
		if err != nil {
			rejected += uint64(n)
			continue
		}
		var or serve.ObserveResponse
		decErr := json.NewDecoder(resp.Body).Decode(&or)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			rejected += uint64(n)
			continue
		}
		accepted += uint64(or.Accepted)
		rejected += uint64(or.Rejected)
	}
	return accepted, rejected
}

// do issues one pre-encoded request and returns the HTTP status. The body
// is drained so the transport can reuse the connection.
func (t *Target) do(ctx context.Context, req Request) (int, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+req.Path, bytes.NewReader(req.Body))
	if err != nil {
		return 0, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(hr)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
