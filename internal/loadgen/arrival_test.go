package loadgen

import (
	"math"
	"testing"
	"time"
)

// TestPoissonInterarrivalMean pins the Poisson process: with a fixed seed
// the mean interarrival gap lands within tolerance of 1/rate for every
// rate in the table. Seeded draws make this deterministic — the tolerance
// documents correctness, not luck.
func TestPoissonInterarrivalMean(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{50, 500, 2000, 10000} {
		spec := ArrivalSpec{Process: ArrivalPoisson, Seed: 42}
		arr, err := spec.New(rate)
		if err != nil {
			t.Fatal(err)
		}
		var sum time.Duration
		for i := 0; i < n; i++ {
			gap := arr.Next()
			if gap < 0 {
				t.Fatalf("rate %g: negative gap %v", rate, gap)
			}
			sum += gap
		}
		mean := sum.Seconds() / n
		want := 1 / rate
		if rel := math.Abs(mean-want) / want; rel > 0.03 {
			t.Errorf("rate %g: mean gap %.6fs, want %.6fs (rel err %.3f > 0.03)", rate, mean, want, rel)
		}
	}
}

// TestArrivalDeterministicSeed pins that a spec replays identically: the
// whole harness's reproducibility rests on this.
func TestArrivalDeterministicSeed(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Process: ArrivalPoisson, Seed: 7},
		{Process: ArrivalBursty, On: 10 * time.Millisecond, Off: 30 * time.Millisecond, Seed: 7},
	} {
		a1, err := spec.New(1000)
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := spec.New(1000)
		for i := 0; i < 100; i++ {
			if g1, g2 := a1.Next(), a2.Next(); g1 != g2 {
				t.Fatalf("%s: draw %d diverged: %v vs %v", spec.Process, i, g1, g2)
			}
		}
		// A different seed must give a different stream.
		diff := spec
		diff.Seed = 8
		a3, _ := diff.New(1000)
		same := true
		for i := 0; i < 100; i++ {
			if a1.Next() != a3.Next() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 produced identical streams", spec.Process)
		}
	}
}

// TestBurstyDutyCycle pins the on/off shape: every arrival falls inside
// an on-window of the duty cycle, and the long-run mean rate matches the
// requested rate (the peak rate compensates for the silent off-windows).
func TestBurstyDutyCycle(t *testing.T) {
	cases := []struct {
		name    string
		on, off time.Duration
		rate    float64
	}{
		{"1:4_duty", 20 * time.Millisecond, 80 * time.Millisecond, 200},
		{"1:1_duty", 50 * time.Millisecond, 50 * time.Millisecond, 1000},
		{"9:1_duty", 90 * time.Millisecond, 10 * time.Millisecond, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := ArrivalSpec{Process: ArrivalBursty, On: tc.on, Off: tc.off, Seed: 99}
			arr, err := spec.New(tc.rate)
			if err != nil {
				t.Fatal(err)
			}
			const n = 5000
			cycle := tc.on + tc.off
			var at time.Duration // absolute arrival time
			for i := 0; i < n; i++ {
				at += arr.Next()
				if phase := at % cycle; phase >= tc.on {
					t.Fatalf("arrival %d at %v: phase %v is inside the off-window (on=%v)", i, at, phase, tc.on)
				}
			}
			meanRate := float64(n) / at.Seconds()
			if rel := math.Abs(meanRate-tc.rate) / tc.rate; rel > 0.05 {
				t.Errorf("mean rate %.1f/s, want %.1f/s (rel err %.3f > 0.05)", meanRate, tc.rate, rel)
			}
		})
	}
}

func TestArrivalSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec ArrivalSpec
		rate float64
	}{
		{"zero_rate", ArrivalSpec{}, 0},
		{"negative_rate", ArrivalSpec{}, -5},
		{"unknown_process", ArrivalSpec{Process: "uniform"}, 100},
		{"bursty_no_windows", ArrivalSpec{Process: ArrivalBursty}, 100},
		{"bursty_no_off", ArrivalSpec{Process: ArrivalBursty, On: time.Second}, 100},
	}
	for _, tc := range cases {
		if _, err := tc.spec.New(tc.rate); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// The empty process name means Poisson.
	if arr, err := (ArrivalSpec{}).New(100); err != nil || arr == nil {
		t.Errorf("default process: (%v, %v), want Poisson", arr, err)
	}
}
