package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// newServedTarget starts a live in-process serve.Service over httptest
// and returns both: the loadgen target drives the real HTTP surface, and
// the raw service lets tests cross-check the counters behind it.
func newServedTarget(t *testing.T, eng predict.Engine, cfg serve.Config) (*serve.Service, *Target) {
	t.Helper()
	reg := predict.NewRegistry()
	reg.MustRegister(eng)
	svc := serve.NewMulti(reg, eng.Name(), cfg)
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(ts.Close)
	tgt := NewTarget(ts.URL, 512)
	t.Cleanup(tgt.Client.CloseIdleConnections)
	return svc, tgt
}

// kernelOnlyMix is the scenario the exact-agreement tests use: every
// request is one kernel forecast, so one 2xx response corresponds to
// exactly one server-side request-counter increment.
func kernelOnlyMix(t *testing.T, gpus []string) *Scenario {
	t.Helper()
	sc, err := NewMix(MixConfig{
		KernelWeight: 1,
		Models:       []string{"BERT-Large"},
		GPUs:         gpus,
		PoolSize:     256,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRunStatsAgreement pins the harness's accounting against the
// service's own: after a run against a live in-process service, the
// client-side sent/succeeded/rejected counts must match the /v2/stats
// delta exactly — no lost requests, no double counting.
func TestRunStatsAgreement(t *testing.T) {
	eng := predict.NewRooflineEngine()
	_, tgt := newServedTarget(t, eng, serve.Config{CacheSize: 1024})
	res, err := Run(context.Background(), tgt, RunConfig{
		Rate:     1500,
		Duration: 800 * time.Millisecond,
		Arrival:  ArrivalSpec{Seed: 3},
		Scenario: kernelOnlyMix(t, []string{"H100", "V100"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests client-side; cap too low for this rate", res.Dropped)
	}
	if got := res.Succeeded + res.Rejected + res.Errored; got != res.Sent {
		t.Errorf("outcome partition %d+%d+%d = %d != sent %d",
			res.Succeeded, res.Rejected, res.Errored, got, res.Sent)
	}
	if res.Errored != 0 {
		t.Errorf("errored = %d, want 0 against a local roofline service", res.Errored)
	}
	if res.Server == nil {
		t.Fatal("no server-side stats delta recorded")
	}
	if res.Server.Requests != res.Succeeded {
		t.Errorf("server requests delta %d != client succeeded %d", res.Server.Requests, res.Succeeded)
	}
	if res.Server.Rejected != res.Rejected {
		t.Errorf("server rejected delta %d != client rejected %d", res.Server.Rejected, res.Rejected)
	}
	if res.Succeeded > 0 && res.P50Ms <= 0 {
		t.Errorf("p50 = %g with %d successes", res.P50Ms, res.Succeeded)
	}
	if res.AchievedRate <= 0 {
		t.Errorf("achieved rate = %g", res.AchievedRate)
	}
}

// slowEngine returns an engine that sleeps per prediction — a stand-in
// for an expensive backend, making saturation reachable at low rates.
func slowEngine(name string, d time.Duration) predict.Engine {
	return predict.NewFuncEngine(name, predict.SourceAnalytical,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) {
			time.Sleep(d)
			return 0.5, nil
		})
}

// TestSaturatedShardedAgreement drives a sharded (-shards 4) service past
// saturation and asserts 503s are counted identically on both sides and
// no request is double-counted. Caching is disabled so every admitted
// request costs real backend time — with it on, the steady state would be
// all cache hits and the shards would never saturate. Run under -race via
// the package's race gate.
func TestSaturatedShardedAgreement(t *testing.T) {
	_, tgt := newServedTarget(t, slowEngine("slow", 3*time.Millisecond), serve.Config{
		CacheSize:    -1,
		Shards:       4,
		ShardWorkers: 1,
		ShardQueue:   1,
	})
	res, err := Run(context.Background(), tgt, RunConfig{
		Rate:     2500,
		Duration: 600 * time.Millisecond,
		Arrival:  ArrivalSpec{Seed: 5},
		Scenario: kernelOnlyMix(t, []string{"H100", "V100", "A100-40GB", "P100"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("expected 503 rejections at 5x capacity with shard queue 1")
	}
	if res.Succeeded == 0 {
		t.Fatal("expected some successes between rejections")
	}
	if got := res.Succeeded + res.Rejected + res.Errored; got != res.Sent {
		t.Errorf("outcome partition %d+%d+%d = %d != sent %d",
			res.Succeeded, res.Rejected, res.Errored, got, res.Sent)
	}
	if res.Errored != 0 {
		t.Errorf("errored = %d, want 0 (rejections must be 503s, not errors)", res.Errored)
	}
	if res.Server == nil {
		t.Fatal("no server-side stats delta recorded")
	}
	if res.Server.Rejected != res.Rejected {
		t.Errorf("server rejected delta %d != client 503 count %d — 503s double- or under-counted",
			res.Server.Rejected, res.Rejected)
	}
	if res.Server.Requests != res.Succeeded {
		t.Errorf("server requests delta %d != client succeeded %d — admitted requests double- or under-counted",
			res.Server.Requests, res.Succeeded)
	}
	if res.ErrorRate <= 0 {
		t.Errorf("error rate = %g with %d rejections", res.ErrorRate, res.Rejected)
	}
}

func TestRunValidation(t *testing.T) {
	tgt := NewTarget("http://127.0.0.1:0", 1)
	sc := kernelOnlyMix(t, []string{"H100"})
	ctx := context.Background()
	if _, err := Run(ctx, nil, RunConfig{Rate: 1, Duration: time.Second, Scenario: sc}); err == nil {
		t.Error("nil target must error")
	}
	if _, err := Run(ctx, tgt, RunConfig{Rate: 1, Duration: time.Second}); err == nil {
		t.Error("nil scenario must error")
	}
	if _, err := Run(ctx, tgt, RunConfig{Rate: 1, Scenario: sc}); err == nil {
		t.Error("zero duration must error")
	}
	if _, err := Run(ctx, tgt, RunConfig{Rate: 0, Duration: time.Second, Scenario: sc}); err == nil {
		t.Error("zero rate must error")
	}
}

func TestNewMixDeterministicAndShaped(t *testing.T) {
	cfg := MixConfig{
		KernelWeight: 0.6, BatchWeight: 0.3, GraphWeight: 0.1,
		Models: []string{"BERT-Large"}, GPUs: []string{"H100"},
		BatchSize: 8, PoolSize: 400, Seed: 21,
	}
	s1, err := NewMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 400 || s2.Len() != 400 {
		t.Fatalf("pool sizes %d/%d, want 400", s1.Len(), s2.Len())
	}
	counts := map[Kind]int{}
	for i := uint64(0); i < uint64(s1.Len()); i++ {
		r1, r2 := s1.Request(i), s2.Request(i)
		if r1.Kind != r2.Kind || r1.Path != r2.Path || !bytes.Equal(r1.Body, r2.Body) {
			t.Fatalf("request %d differs across same-seed builds", i)
		}
		counts[r1.Kind]++
	}
	// With weights 6:3:1 over 400 draws every kind must appear, kernels
	// dominating.
	if counts[KindKernel] == 0 || counts[KindBatch] == 0 || counts[KindGraph] == 0 {
		t.Fatalf("kind counts %v: every weighted kind must appear", counts)
	}
	if counts[KindKernel] <= counts[KindBatch] || counts[KindBatch] <= counts[KindGraph] {
		t.Errorf("kind counts %v out of 6:3:1 order", counts)
	}

	if _, err := NewMix(MixConfig{Models: []string{"no-such-model"}, GPUs: []string{"H100"}}); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := NewMix(MixConfig{Models: []string{"BERT-Large"}, GPUs: []string{"no-such-gpu"}}); err == nil {
		t.Error("unknown GPU must error")
	}
	if _, err := NewMix(MixConfig{GPUs: []string{"H100"}}); err == nil {
		t.Error("empty model list must error")
	}
}

func TestNewTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	lines := []string{
		`{"engine":"alpha","gpu":"V100","op":"bmm","b":1,"m":32,"k":32,"n":32}`,
		`not json at all`,
		`{"engine":"alpha","gpu":"V100","op":"transpose","b":4,"m":64}`, // not API-expressible
		`{"engine":"alpha","gpu":"H100","op":"softmax","b":16,"m":128}`,
		``,
	}
	if err := os.WriteFile(path, []byte(joinLines(lines)), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, skipped, err := NewTraceReplay(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 2 || skipped != 2 {
		t.Fatalf("replay pool %d entries, %d skipped; want 2 and 2", sc.Len(), skipped)
	}

	// The replayed requests must be servable: drive them at a fixed rate
	// against a live service.
	eng := predict.NewFuncEngine("alpha", predict.SourceAnalytical,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) { return 1, nil })
	_, tgt := newServedTarget(t, eng, serve.Config{CacheSize: 64})
	res, err := Run(context.Background(), tgt, RunConfig{
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Arrival:  ArrivalSpec{Seed: 1},
		Scenario: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 || res.Errored != 0 {
		t.Errorf("trace replay run: %d succeeded, %d errored; want all success", res.Succeeded, res.Errored)
	}

	if _, _, err := NewTraceReplay(filepath.Join(dir, "missing.jsonl"), ""); err == nil {
		t.Error("missing trace must error")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewTraceReplay(empty, ""); err == nil {
		t.Error("trace with no replayable entries must error")
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
