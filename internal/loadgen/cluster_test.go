package loadgen

import (
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"neusight/internal/cluster"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// clusterMember is one in-process cluster member for driver tests: a full
// serving stack (roofline engine, so predictions are instant) behind a
// cluster node's steering/control handler, listening on a real loopback
// socket.
type clusterMember struct {
	addr string
	node *cluster.Node
	// kill tears the member down abruptly — listener and active
	// connections closed, background loops stopped — and is idempotent, so
	// fault plans and test cleanup can both call it.
	kill func()
}

// startClusterMember boots one member. start runs the gossip and health
// loops (needed by failure-detection tests; agreement tests skip them for
// determinism).
func startClusterMember(t *testing.T, steer string, start bool) *clusterMember {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewRooflineEngine())
	svc := serve.NewMulti(reg, predict.EngineRoofline, serve.Config{CacheSize: 4096})
	node, err := cluster.NewNode(cluster.Config{
		Self:           ln.Addr().String(),
		Steer:          steer,
		PollInterval:   50 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		RequestTimeout: 300 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      2,
		Registry:       reg,
		DefaultEngine:  predict.EngineRoofline,
		Invalidate:     svc.InvalidateEngine,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node.Handler(serve.NewHandler(svc))}
	go srv.Serve(ln)
	m := &clusterMember{addr: ln.Addr().String(), node: node}
	var once sync.Once
	m.kill = func() {
		once.Do(func() {
			if start {
				node.Stop()
			}
			srv.Close()
		})
	}
	if start {
		node.Start()
	}
	t.Cleanup(m.kill)
	return m
}

// formCluster boots n members wired all-to-all.
func formCluster(t *testing.T, n int, steer string, start bool) []*clusterMember {
	t.Helper()
	ms := make([]*clusterMember, n)
	for i := range ms {
		ms[i] = startClusterMember(t, steer, start)
	}
	for i, m := range ms {
		peers := make([]string, 0, n-1)
		for j, o := range ms {
			if j != i {
				peers = append(peers, o.addr)
			}
		}
		m.node.SetPeers(peers)
	}
	return ms
}

// newClusterDriver builds a driver seeded from the first member.
func newClusterDriver(t *testing.T, ms []*clusterMember, split string) *ClusterDriver {
	t.Helper()
	d, err := NewClusterDriver(ClusterConfig{
		Seeds:          []string{"http://" + ms[0].addr},
		Split:          split,
		ControlTimeout: 2 * time.Second,
		MaxConns:       256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestClusterStepAgreement is the cluster version of the exact-accounting
// pin: across a live 3-member cluster, the driver's client-side totals
// (Sent partitioned by Succeeded/Rejected/Errored) must equal the sum of
// the per-member /v2/stats deltas — in redirect steering, proxy steering
// (the uniform split forces cross-member steering of ~2/3 of the
// traffic), and the ownership split (where agreement must hold per member,
// because a correct split needs no steering at all).
func TestClusterStepAgreement(t *testing.T) {
	cases := []struct {
		name  string
		steer string
		split string
	}{
		{"redirect-uniform", cluster.SteerRedirect, SplitUniform},
		{"proxy-uniform", cluster.SteerProxy, SplitUniform},
		{"redirect-ownership", cluster.SteerRedirect, SplitOwnership},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ms := formCluster(t, 3, tc.steer, false)
			d := newClusterDriver(t, ms, tc.split)
			res, err := d.ClusterStep(context.Background(), RunConfig{
				Rate:     900,
				Duration: 700 * time.Millisecond,
				Arrival:  ArrivalSpec{Seed: 3},
				Scenario: kernelOnlyMix(t, []string{"H100", "V100", "A100-40GB", "P100"}),
				Timeout:  5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Sent == 0 {
				t.Fatal("no requests sent")
			}
			if res.Dropped != 0 {
				t.Fatalf("dropped %d client-side", res.Dropped)
			}
			if got := res.Succeeded + res.Rejected + res.Errored; got != res.Sent {
				t.Errorf("outcome partition %d+%d+%d = %d != sent %d",
					res.Succeeded, res.Rejected, res.Errored, got, res.Sent)
			}
			if res.Errored != 0 {
				t.Errorf("errored = %d against a healthy local cluster", res.Errored)
			}
			if res.Server == nil {
				t.Fatal("no aggregated server delta")
			}
			// The summed member deltas are the cluster's own account of the
			// step; they must match the client totals exactly whatever path
			// (direct, 307-redirected, proxied) each request took.
			var sumReq, sumRej uint64
			for _, m := range res.Members {
				if m.StatsUnreachable {
					t.Errorf("member %s stats unreachable in a healthy cluster", m.Addr)
				}
				if m.Server != nil {
					sumReq += m.Server.Requests
					sumRej += m.Server.Rejected
				}
			}
			if sumReq != res.Succeeded {
				t.Errorf("sum of member request deltas %d != client succeeded %d", sumReq, res.Succeeded)
			}
			if sumRej != res.Rejected {
				t.Errorf("sum of member rejected deltas %d != client rejected %d", sumRej, res.Rejected)
			}
			if res.Server.Requests != sumReq {
				t.Errorf("aggregate delta %d != member sum %d", res.Server.Requests, sumReq)
			}
			// The merged histogram must hold exactly the successes.
			if h := res.Histogram(); h == nil || h.Count() != res.Succeeded {
				t.Errorf("merged histogram count != succeeded %d", res.Succeeded)
			}
			if res.Succeeded > 0 && res.P50Ms <= 0 {
				t.Errorf("p50 = %g with %d successes", res.P50Ms, res.Succeeded)
			}
			if tc.split == SplitUniform {
				loaded := 0
				for _, m := range res.Members {
					if m.Step != nil && m.Step.Sent > 0 {
						loaded++
					}
				}
				if loaded != 3 {
					t.Errorf("uniform split loaded %d/3 members", loaded)
				}
			}
			if tc.split == SplitOwnership {
				// A correct ownership split sends every request straight to
				// its owner, so agreement must hold member by member — any
				// cross-member steering would break the local equality.
				for _, m := range res.Members {
					if m.Step == nil || m.Server == nil {
						continue
					}
					if m.Server.Requests != m.Step.Succeeded {
						t.Errorf("member %s served %d but was sent %d successes — ownership split misrouted",
							m.Addr, m.Server.Requests, m.Step.Succeeded)
					}
				}
			}
		})
	}
}

// TestClusterSweepKillMember is the measured version of the self-healing
// story: a 4-step sweep with a member SIGKILL-equivalent (listener and
// loops torn down) injected at step 2 must record (a) the error-rate
// spike while the driver's view is stale, (b) recovery under the SLO at a
// later, higher-rate step once the failure detector evicts the corpse and
// its shards fail over, and (c) the dead member marked in the final
// roster. Runs under -race via the package's race gate.
func TestClusterSweepKillMember(t *testing.T) {
	ms := formCluster(t, 3, cluster.SteerRedirect, true)
	d := newClusterDriver(t, ms, SplitUniform)
	corpse := ms[2]
	res, err := d.ClusterSweep(context.Background(), ClusterSweepConfig{
		Start:        150,
		Step:         150,
		Max:          600,
		StepDuration: 400 * time.Millisecond,
		Cooldown:     500 * time.Millisecond,
		SLO:          SLO{MaxErrorRate: 0.05},
		Run: RunConfig{
			Arrival:  ArrivalSpec{Seed: 9},
			Scenario: kernelOnlyMix(t, []string{"H100", "V100", "A100-40GB", "P100"}),
			Timeout:  2 * time.Second,
		},
		Fault: &FaultPlan{
			Step:   2,
			Member: corpse.addr,
			Kill:   func(string) error { corpse.kill(); return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("fault sweep ran %d steps, want the full 4-step schedule", len(res.Steps))
	}
	if res.Fault == nil || res.Fault.Step != 2 || res.Fault.Member != corpse.addr || res.Fault.Error != "" {
		t.Fatalf("fault record = %+v, want clean kill of %s at step 2", res.Fault, corpse.addr)
	}

	// (a) The kill step measures the outage: the driver's freshly-refreshed
	// view still lists the corpse, so its share of the offered stream fails
	// and the error rate spikes past the SLO.
	spike := res.Steps[1]
	if spike.Fault != corpse.addr {
		t.Errorf("step 2 fault = %q, want %s", spike.Fault, corpse.addr)
	}
	if spike.Errored == 0 {
		t.Error("kill step recorded no errored sends")
	}
	if spike.SLOOk || spike.ErrorRate <= 0.05 {
		t.Errorf("kill step error rate %.4f did not breach the 0.05 SLO", spike.ErrorRate)
	}

	// (b) Recovery: by the final (highest-rate) step the ring has evicted
	// the corpse, the driver's refresh dropped it, and its shards answer
	// from replicas — back under the SLO at a rate above the spike's.
	final := res.Steps[3]
	if !final.SLOOk {
		t.Errorf("final step did not recover: error rate %.4f (%s)", final.ErrorRate, final.SLOReason)
	}
	for _, m := range final.Members {
		if m.Addr == corpse.addr && m.Weight != 0 {
			t.Errorf("final step still offered weight %g to the dead member", m.Weight)
		}
	}
	if res.Knee == nil {
		t.Fatal("no cluster knee despite recovered steps")
	}
	if res.Knee.OfferedRate <= 150 {
		t.Errorf("knee %.0f req/s not above the sweep start despite recovery", res.Knee.OfferedRate)
	}

	// (c) The final roster marks the corpse dead.
	found := false
	for _, m := range res.Members {
		if m.Addr == corpse.addr {
			found = true
			if m.State != cluster.MemberDead {
				t.Errorf("dead member state = %q, want %q", m.State, cluster.MemberDead)
			}
		}
	}
	if !found {
		t.Errorf("dead member %s missing from final roster %v", corpse.addr, res.Members)
	}
}

// TestClusterStepStaleMember is the eviction-race regression: a ring view
// listing a member that no longer answers must cost the step bounded time
// and Errored counts — never a hang. Both flavors are pinned: an address
// that refuses connections outright (process died, socket closed) and one
// that accepts and then never responds (process wedged), which is the
// nastier case because only deadlines save the step.
func TestClusterStepStaleMember(t *testing.T) {
	// vanished reserves a loopback address and closes it: connects are
	// refused instantly.
	vanishedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	vanished := vanishedLn.Addr().String()
	vanishedLn.Close()

	// wedged accepts connections and never writes a byte.
	wedgedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		connMu sync.Mutex
		conns  []net.Conn
	)
	go func() {
		for {
			c, err := wedgedLn.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			conns = append(conns, c)
			connMu.Unlock()
		}
	}()
	t.Cleanup(func() {
		wedgedLn.Close()
		connMu.Lock()
		for _, c := range conns {
			c.Close()
		}
		connMu.Unlock()
	})

	for _, tc := range []struct {
		name string
		addr string
	}{
		{"connection-refused", vanished},
		{"accepts-never-answers", wedgedLn.Addr().String()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			live := startClusterMember(t, cluster.SteerOff, false)
			// The stale list: the live member still believes tc.addr is a
			// peer (no health loops run, so nothing evicts it), and the
			// driver discovers exactly that stale view.
			live.node.SetPeers([]string{tc.addr})
			d, err := NewClusterDriver(ClusterConfig{
				Seeds:          []string{"http://" + live.addr},
				Split:          SplitUniform,
				ControlTimeout: 300 * time.Millisecond,
				MaxConns:       64,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Close)

			start := time.Now()
			res, err := d.ClusterStep(context.Background(), RunConfig{
				Rate:     300,
				Duration: 300 * time.Millisecond,
				Arrival:  ArrivalSpec{Seed: 5},
				Scenario: kernelOnlyMix(t, []string{"H100"}),
				Timeout:  300 * time.Millisecond,
			})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("stale-member step took %v — the vanished member hung the step", elapsed)
			}
			if res.Errored == 0 {
				t.Error("vanished member's failed sends were not counted as Errored")
			}
			if res.Succeeded == 0 {
				t.Error("live member's share did not succeed")
			}
			if got := res.Succeeded + res.Rejected + res.Errored; got != res.Sent {
				t.Errorf("outcome partition %d+%d+%d = %d != sent %d",
					res.Succeeded, res.Rejected, res.Errored, got, res.Sent)
			}
			for _, m := range res.Members {
				switch m.Addr {
				case tc.addr:
					if !m.StatsUnreachable {
						t.Errorf("vanished member %s not flagged StatsUnreachable", m.Addr)
					}
					if m.Server != nil {
						t.Errorf("vanished member %s has a server delta", m.Addr)
					}
				case live.addr:
					if m.StatsUnreachable || m.Server == nil {
						t.Errorf("live member %s lost its server delta", m.Addr)
					}
				}
			}
		})
	}
}

// TestRunStatsFetchBounded pins the single-target half of the same fix:
// a target whose /v2/stats endpoint hangs (but whose predict endpoints
// answer) must not hang Run — the step completes with Server == nil.
func TestRunStatsFetchBounded(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewRooflineEngine())
	svc := serve.NewMulti(reg, predict.EngineRoofline, serve.Config{CacheSize: 256})
	inner := serve.NewHandler(svc)
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/stats", func(w http.ResponseWriter, r *http.Request) { <-hang })
	mux.Handle("/", inner)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	tgt := NewTarget("http://"+ln.Addr().String(), 64)
	t.Cleanup(tgt.Client.CloseIdleConnections)
	start := time.Now()
	res, err := Run(context.Background(), tgt, RunConfig{
		Rate:     300,
		Duration: 300 * time.Millisecond,
		Arrival:  ArrivalSpec{Seed: 7},
		Scenario: kernelOnlyMix(t, []string{"H100"}),
		Timeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("run took %v against a hanging stats endpoint", elapsed)
	}
	if res.Server != nil {
		t.Error("got a server delta from a stats endpoint that never answered")
	}
	if res.Succeeded == 0 {
		t.Error("predict requests should have succeeded despite the hung stats endpoint")
	}
}
