package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
)

// Arrival generates the interarrival gaps of an open-loop request stream.
// Next returns the gap between the previous arrival and the next one; the
// driver schedules arrivals against an absolute timeline (start + sum of
// gaps), so dispatch jitter never feeds back into the offered rate — the
// defining property of open-loop load, and the reason a sweep finds the
// knee instead of the closed-loop plateau.
//
// Implementations are not safe for concurrent use: one dispatcher
// goroutine owns the stream.
type Arrival interface {
	Next() time.Duration
}

// ArrivalSpec names an arrival process and its shape parameters; New
// instantiates it for a concrete offered rate, so one spec serves every
// step of a sweep. The zero Process means Poisson.
type ArrivalSpec struct {
	// Process selects the arrival process: ArrivalPoisson (memoryless,
	// exponential gaps) or ArrivalBursty (on/off duty cycle).
	Process string `json:"process"`
	// On and Off shape the bursty duty cycle: arrivals come only during
	// On-long windows separated by Off-long silences, at a peak rate
	// scaled so the long-run mean equals the requested rate. Ignored for
	// Poisson. Both must be positive for bursty.
	On  time.Duration `json:"on,omitempty"`
	Off time.Duration `json:"off,omitempty"`
	// Seed makes the stream reproducible; every call to New restarts the
	// process from it, so two runs at the same rate see identical gaps.
	Seed int64 `json:"seed"`
}

// New instantiates the spec's process offering rate requests/second.
func (s ArrivalSpec) New(rate float64) (Arrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: arrival rate must be positive, got %g", rate)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Process {
	case "", ArrivalPoisson:
		return &poissonArrival{rng: rng, rate: rate}, nil
	case ArrivalBursty:
		if s.On <= 0 || s.Off <= 0 {
			return nil, fmt.Errorf("loadgen: bursty arrivals need positive on/off windows, got on=%v off=%v", s.On, s.Off)
		}
		cycle := s.On + s.Off
		return &burstyArrival{
			rng:  rng,
			peak: rate * float64(cycle) / float64(s.On),
			on:   s.On,
			off:  s.Off,
		}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want %s or %s)", s.Process, ArrivalPoisson, ArrivalBursty)
	}
}

// poissonArrival is a Poisson process: independent exponential gaps with
// mean 1/rate — the classic model of many independent users.
type poissonArrival struct {
	rng  *rand.Rand
	rate float64
}

func (p *poissonArrival) Next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// burstyArrival is an interrupted Poisson process: a Poisson stream at
// peak rate during each on-window, silence during each off-window. The
// peak rate is on/off-scaled so the long-run mean rate matches the
// requested one — a sweep step at rate R offers R on average but hammers
// the target at R*(on+off)/on during bursts, which is what exposes queue
// buildup that a smooth stream at R would hide.
type burstyArrival struct {
	rng     *rand.Rand
	peak    float64
	on, off time.Duration
	inCycle time.Duration // position within the current on-window
}

func (b *burstyArrival) Next() time.Duration {
	gap := time.Duration(b.rng.ExpFloat64() / b.peak * float64(time.Second))
	pos := b.inCycle + gap
	// Every on-window boundary the raw gap crosses inserts one off-window
	// of silence into the returned gap.
	for pos >= b.on {
		pos -= b.on
		gap += b.off
	}
	b.inCycle = pos
	return gap
}
