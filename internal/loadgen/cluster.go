package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"neusight/internal/cluster"
	"neusight/internal/serve"
)

// Cluster mode turns the single-target harness into a cluster-wide one: a
// ClusterDriver discovers the membership from any seed member's
// GET /v2/cluster/ring, fans one offered-rate stream across every live
// member, and aggregates the per-member StepResults into one
// ClusterStepResult — merged latency histograms (exact, because the
// fixed-bucket design merges losslessly), summed outcome counters, and
// per-member /v2/stats deltas. Stepped sweeps then walk the offered rate
// to a *cluster* knee, and a FaultPlan can kill a chosen member at a
// chosen sweep step so the report captures the error spike, the failover
// window, and the recovery — PR 7's kill-a-member e2e as a measured,
// reproducible experiment instead of a pass/fail gate.

// Load-split modes for ClusterConfig.Split.
const (
	// SplitOwnership routes each request of the scenario to the member
	// that owns its (engine, GPU) shard under the current ring — the
	// steady state steering would converge to, with no redirect/proxy
	// hops. Requests whose owner cannot be resolved (engine defaulted on
	// a multi-engine cluster, owner momentarily off-ring) spread
	// round-robin. The default.
	SplitOwnership = "ownership"
	// SplitUniform offers every member an equal share of the stream,
	// whatever it owns — each member's steering (follow-307 redirects or
	// transparent proxying) carries misplaced requests to their owner, so
	// this mode measures the cluster including its steering overhead.
	SplitUniform = "uniform"
)

// DefaultControlTimeout bounds each control-plane round trip the driver
// makes (ring fetch, per-member /v2/stats): a member that died mid-sweep
// must cost a bounded wait, never hang the experiment.
const DefaultControlTimeout = 2 * time.Second

// ClusterConfig assembles a ClusterDriver.
type ClusterConfig struct {
	// Seeds are base URLs (e.g. "http://127.0.0.1:8080") of cluster
	// members to discover the membership from. Any one reachable seed is
	// enough; discovered members become fallback sources for later
	// refreshes, so the driver survives the seed itself dying mid-sweep.
	Seeds []string
	// Token is the control-plane bearer token (-cluster-token on the
	// members); empty for an unauthenticated cluster.
	Token string
	// Split picks the load-split mode (SplitOwnership, SplitUniform).
	// Empty means SplitOwnership.
	Split string
	// RefreshInterval is the minimum age before the cached ring view is
	// re-fetched at a sweep-step boundary. Zero refreshes before every
	// step — the default, so evictions and joins are tracked at step
	// granularity; raise it to trade staleness for fewer control-plane
	// round trips on long sweeps.
	RefreshInterval time.Duration
	// ControlTimeout bounds each ring/stats round trip (0 =
	// DefaultControlTimeout).
	ControlTimeout time.Duration
	// MaxConns sizes each per-member HTTP client's connection pool, like
	// NewTarget (0 = DefaultMaxInFlight).
	MaxConns int
}

// ClusterDriver fans load across a discovered cluster membership. Safe for
// sequential use only (one step or sweep at a time), like the single-node
// driver.
type ClusterDriver struct {
	token           string
	split           string
	refreshInterval time.Duration
	controlTimeout  time.Duration
	maxConns        int
	control         *http.Client

	mu      sync.Mutex
	targets map[string]*Target // member addr -> reusable target
	sources []string           // base URLs tried in order for ring fetches
	seeds   []string           // the configured seeds, always kept as fallback
	view    *ClusterView
}

// ClusterView is one snapshot of the cluster's ring: the live members
// traffic can be offered to, every known member's failure-detector state,
// and the (engine, GPU) -> owner assignment the ownership split routes by.
type ClusterView struct {
	// Source is the base URL of the member that served the snapshot.
	Source string
	// Members are the non-dead members on the ring, sorted.
	Members []string
	// States maps every known member address (dead ones included) to its
	// failure-detector state (alive, suspect, dead).
	States map[string]string
	// Owners maps "engine|gpu" to the owning member's address.
	Owners map[string]string
	// Engines are the distinct engine names appearing in the assignment.
	Engines   []string
	FetchedAt time.Time
}

// NewClusterDriver validates cfg. No network traffic happens until the
// first step or an explicit Refresh.
func NewClusterDriver(cfg ClusterConfig) (*ClusterDriver, error) {
	seeds := make([]string, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("loadgen: cluster driver needs at least one seed URL")
	}
	split := cfg.Split
	if split == "" {
		split = SplitOwnership
	}
	if split != SplitOwnership && split != SplitUniform {
		return nil, fmt.Errorf("loadgen: unknown cluster split %q (want %s or %s)", cfg.Split, SplitOwnership, SplitUniform)
	}
	controlTimeout := cfg.ControlTimeout
	if controlTimeout <= 0 {
		controlTimeout = DefaultControlTimeout
	}
	return &ClusterDriver{
		token:           cfg.Token,
		split:           split,
		refreshInterval: cfg.RefreshInterval,
		controlTimeout:  controlTimeout,
		maxConns:        cfg.MaxConns,
		control:         &http.Client{},
		targets:         map[string]*Target{},
		sources:         append([]string(nil), seeds...),
		seeds:           seeds,
	}, nil
}

// Close releases every member target's idle connections.
func (d *ClusterDriver) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.targets {
		t.Client.CloseIdleConnections()
	}
	d.control.CloseIdleConnections()
}

// target returns the reusable Target for a member address.
func (d *ClusterDriver) target(addr string) *Target {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.targets[addr]
	if t == nil {
		t = NewTarget("http://"+addr, d.maxConns)
		d.targets[addr] = t
	}
	return t
}

// Refresh fetches a fresh ring view from the first source that answers —
// the configured seeds plus every member discovered so far — and caches
// it. All sources failing is an error only when no cached view exists;
// otherwise the stale view stays in use (and the vanished members it
// lists will show up as Errored sends, not a hung step).
func (d *ClusterDriver) Refresh(ctx context.Context) (*ClusterView, error) {
	d.mu.Lock()
	sources := append([]string(nil), d.sources...)
	d.mu.Unlock()

	var firstErr error
	for _, src := range sources {
		view, err := d.fetchRing(ctx, src)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		d.mu.Lock()
		d.view = view
		// The answering source first, then every live member, then the
		// configured seeds as a last resort — deduplicated in order.
		next := []string{src}
		for _, m := range view.Members {
			next = append(next, "http://"+m)
		}
		next = append(next, d.seeds...)
		seen := map[string]bool{}
		d.sources = d.sources[:0]
		for _, s := range next {
			if !seen[s] {
				seen[s] = true
				d.sources = append(d.sources, s)
			}
		}
		d.mu.Unlock()
		return view, nil
	}
	d.mu.Lock()
	stale := d.view
	d.mu.Unlock()
	if stale != nil {
		return stale, nil
	}
	return nil, fmt.Errorf("loadgen: no cluster member answered %s (tried %d sources): %w",
		cluster.RouteRing, len(sources), firstErr)
}

// currentView returns the cached view when it is fresh enough, refreshing
// otherwise.
func (d *ClusterDriver) currentView(ctx context.Context) (*ClusterView, error) {
	d.mu.Lock()
	view := d.view
	d.mu.Unlock()
	if view != nil && d.refreshInterval > 0 && time.Since(view.FetchedAt) < d.refreshInterval {
		return view, nil
	}
	return d.Refresh(ctx)
}

// fetchRing GETs one member's /v2/cluster/ring and shapes it into a view.
func (d *ClusterDriver) fetchRing(ctx context.Context, baseURL string) (*ClusterView, error) {
	ctx, cancel := context.WithTimeout(ctx, d.controlTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+cluster.RouteRing, nil)
	if err != nil {
		return nil, err
	}
	if d.token != "" {
		req.Header.Set("Authorization", "Bearer "+d.token)
	}
	resp, err := d.control.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s%s returned %d", baseURL, cluster.RouteRing, resp.StatusCode)
	}
	var ring cluster.RingResponse
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		return nil, fmt.Errorf("loadgen: decoding %s%s: %w", baseURL, cluster.RouteRing, err)
	}
	view := &ClusterView{
		Source:    baseURL,
		Members:   append([]string(nil), ring.Members...),
		States:    map[string]string{},
		Owners:    map[string]string{},
		FetchedAt: time.Now(),
	}
	sort.Strings(view.Members)
	for _, ms := range ring.MemberStates {
		view.States[ms.Addr] = ms.State
	}
	engines := map[string]bool{}
	for _, a := range ring.Assignments {
		view.Owners[a.Engine+"|"+a.GPU] = a.Owner
		engines[a.Engine] = true
	}
	for e := range engines {
		view.Engines = append(view.Engines, e)
	}
	sort.Strings(view.Engines)
	return view, nil
}

// memberPlan is one member's slice of a cluster step: the fraction of the
// offered stream it receives and the sub-scenario carrying it.
type memberPlan struct {
	addr     string
	weight   float64
	scenario *Scenario
}

// splitLoad divides the scenario across the view's live members. Under
// SplitOwnership each pooled request goes to the member owning its
// (engine, GPU) key — an empty engine resolves when the cluster serves
// exactly one engine — and unresolvable requests spread round-robin.
// Under SplitUniform every member gets the whole scenario at equal
// weight. Weights sum to 1 across the returned plans.
func splitLoad(sc *Scenario, view *ClusterView, split string) []memberPlan {
	members := view.Members
	if len(members) == 0 {
		return nil
	}
	if split == SplitUniform || len(view.Owners) == 0 {
		plans := make([]memberPlan, len(members))
		w := 1.0 / float64(len(members))
		for i, m := range members {
			plans[i] = memberPlan{addr: m, weight: w, scenario: sc}
		}
		return plans
	}
	onRing := map[string]int{}
	for i, m := range members {
		onRing[m] = i
	}
	pools := make([][]Request, len(members))
	rr := 0
	for i := 0; i < sc.Len(); i++ {
		req := sc.reqs[i]
		engine := req.Engine
		if engine == "" && len(view.Engines) == 1 {
			engine = view.Engines[0]
		}
		idx := -1
		if engine != "" {
			if owner, ok := view.Owners[engine+"|"+req.GPU]; ok {
				if j, live := onRing[owner]; live {
					idx = j
				}
			}
		}
		if idx < 0 {
			// Unresolvable (defaulted engine on a multi-engine cluster,
			// unassigned key, or the owner just left the ring): spread
			// round-robin so no request is silently dropped.
			idx = rr % len(members)
			rr++
		}
		pools[idx] = append(pools[idx], req)
	}
	var plans []memberPlan
	total := float64(sc.Len())
	for i, m := range members {
		if len(pools[i]) == 0 {
			continue
		}
		plans = append(plans, memberPlan{
			addr:     m,
			weight:   float64(len(pools[i])) / total,
			scenario: &Scenario{Name: sc.Name + "@" + m, reqs: pools[i]},
		})
	}
	return plans
}

// MemberStep is one member's slice of a ClusterStepResult.
type MemberStep struct {
	Addr string `json:"addr"`
	// State is the member's failure-detector state at the step's start
	// (alive, suspect, dead). Dead members receive no traffic but stay in
	// the report — a capacity experiment that silently forgets a corpse
	// would hide exactly the failure it exists to measure.
	State string `json:"state"`
	// Weight is the fraction of the offered stream this member received.
	Weight float64 `json:"weight"`
	// Step is the member's measured sub-step (nil when it received no
	// traffic).
	Step *StepResult `json:"step,omitempty"`
	// Server is the member's own /v2/stats delta across the step; nil,
	// with StatsUnreachable set, when the member could not be asked —
	// which is the report's direct evidence of a member dying mid-step.
	Server           *ServerDelta `json:"server,omitempty"`
	StatsUnreachable bool         `json:"stats_unreachable,omitempty"`
}

// ClusterStepResult aggregates one fixed-rate step offered across the
// cluster: the embedded StepResult is the cluster-wide view (summed
// counters, percentiles over the exactly-merged histograms, summed
// server deltas), Members the per-member breakdown.
type ClusterStepResult struct {
	StepResult
	// SLOOk and SLOReason record the sweep's SLO verdict for this step
	// (sweeps only; a standalone step leaves them zero). Sweeps with a
	// fault plan keep stepping past a breach, so the verdict must live
	// per step rather than only at the end.
	SLOOk     bool   `json:"slo_ok"`
	SLOReason string `json:"slo_reason,omitempty"`
	// Fault names the member killed at the start of this step, when the
	// sweep's FaultPlan fired here.
	Fault   string       `json:"fault,omitempty"`
	Members []MemberStep `json:"members"`
}

// ClusterStep offers one fixed-rate step across the cluster and
// aggregates the result. The ring view is refreshed first (subject to
// RefreshInterval).
func (d *ClusterDriver) ClusterStep(ctx context.Context, cfg RunConfig) (ClusterStepResult, error) {
	view, err := d.currentView(ctx)
	if err != nil {
		return ClusterStepResult{}, err
	}
	return d.stepWithView(ctx, view, cfg)
}

// stepWithView runs one cluster step against a fixed view: stats before,
// concurrent per-member sub-steps, stats after, merge.
func (d *ClusterDriver) stepWithView(ctx context.Context, view *ClusterView, cfg RunConfig) (ClusterStepResult, error) {
	if cfg.Scenario == nil || cfg.Scenario.Len() == 0 {
		return ClusterStepResult{}, fmt.Errorf("loadgen: empty scenario")
	}
	plans := splitLoad(cfg.Scenario, view, d.split)
	if len(plans) == 0 {
		return ClusterStepResult{}, fmt.Errorf("loadgen: cluster view from %s has no live members", view.Source)
	}

	before := d.statsAll(ctx, plans)

	results := make([]StepResult, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	for i, p := range plans {
		sub := cfg
		sub.Rate = cfg.Rate * p.weight
		sub.Scenario = p.scenario
		sub.SkipServerStats = true // member deltas are taken cluster-wide below
		// Decorrelate member arrival streams: same-seed Poisson processes
		// would fire simultaneously at every member, measuring synchronized
		// bursts the configured process does not describe.
		sub.Arrival.Seed = cfg.Arrival.Seed + int64(i+1)*1_000_003
		wg.Add(1)
		go func(i int, p memberPlan, sub RunConfig) {
			defer wg.Done()
			results[i], errs[i] = Run(ctx, d.target(p.addr), sub)
		}(i, p, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ClusterStepResult{}, err
		}
	}

	after := d.statsAll(ctx, plans)

	// Aggregate: counters sum; latency percentiles come from the exact
	// bucket-level merge of every member's histogram.
	hist := NewHistogram()
	out := ClusterStepResult{}
	out.OfferedRate = cfg.Rate
	var maxDur float64
	var serverTotal ServerDelta
	haveServer := false
	for i, p := range plans {
		r := results[i]
		out.Sent += r.Sent
		out.Succeeded += r.Succeeded
		out.Rejected += r.Rejected
		out.Errored += r.Errored
		out.Dropped += r.Dropped
		out.Observed += r.Observed
		out.ObserveRejected += r.ObserveRejected
		if r.DurationSec > maxDur {
			maxDur = r.DurationSec
		}
		hist.Merge(r.hist)

		ms := MemberStep{Addr: p.addr, State: view.States[p.addr], Weight: p.weight}
		rc := r
		ms.Step = &rc
		if b, ok := before[p.addr]; ok {
			if a, ok := after[p.addr]; ok {
				ms.Server = deltaStats(b, a)
				serverTotal = addDelta(serverTotal, *ms.Server)
				haveServer = true
			} else {
				ms.StatsUnreachable = true
			}
		} else {
			ms.StatsUnreachable = true
		}
		out.Members = append(out.Members, ms)
	}
	// Members the view knows about but that got no traffic (dead, or
	// owning nothing) still appear in the breakdown.
	planned := map[string]bool{}
	for _, p := range plans {
		planned[p.addr] = true
	}
	var rest []string
	for addr := range view.States {
		if !planned[addr] {
			rest = append(rest, addr)
		}
	}
	sort.Strings(rest)
	for _, addr := range rest {
		out.Members = append(out.Members, MemberStep{Addr: addr, State: view.States[addr]})
	}

	qs := hist.Quantiles(0.50, 0.99, 0.999)
	out.P50Ms, out.P99Ms, out.P999Ms = qs[0], qs[1], qs[2]
	out.MeanMs, out.MaxMs = hist.MeanMs(), hist.MaxMs()
	out.DurationSec = maxDur
	out.hist = hist
	if maxDur > 0 {
		out.AchievedRate = float64(out.Succeeded) / maxDur
	}
	if offered := out.Sent + out.Dropped; offered > 0 {
		out.ErrorRate = float64(out.Rejected+out.Errored+out.Dropped) / float64(offered)
	}
	if haveServer {
		st := serverTotal
		out.Server = &st
	}
	return out, nil
}

// statsAll snapshots /v2/stats from each planned member concurrently,
// each fetch bounded by the control timeout. Missing members are simply
// absent from the returned map.
func (d *ClusterDriver) statsAll(ctx context.Context, plans []memberPlan) map[string]serve.StatsV2 {
	out := make(map[string]serve.StatsV2, len(plans))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range plans {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, d.controlTimeout)
			defer cancel()
			st, err := d.target(addr).Stats(sctx)
			if err != nil {
				return
			}
			mu.Lock()
			out[addr] = st
			mu.Unlock()
		}(p.addr)
	}
	wg.Wait()
	return out
}

func addDelta(a, b ServerDelta) ServerDelta {
	a.Requests += b.Requests
	a.BatchRequests += b.BatchRequests
	a.BatchedKernels += b.BatchedKernels
	a.GraphRequests += b.GraphRequests
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.Coalesced += b.Coalesced
	a.Errors += b.Errors
	a.Rejected += b.Rejected
	return a
}

// FaultPlan injects one member failure into a cluster sweep: at the start
// of sweep step Step (1-based), Kill is invoked with the chosen member's
// address — before that step's traffic is offered and after the ring view
// was refreshed, so the step measures a cluster that does not yet know
// about the death. The sweep then runs its full schedule instead of
// stopping at the first breach, so the report shows the spike and the
// recovery, not just the spike.
type FaultPlan struct {
	// Step is the 1-based sweep step to inject at.
	Step int
	// Member is the address to kill; empty picks the member owning the
	// largest share of the ring (excluding the current ring source, so
	// discovery survives the kill).
	Member string
	// Kill performs the kill: SIGKILL for external processes, closing the
	// member's server for in-process clusters.
	Kill func(member string) error
}

// FaultRecord is the sweep report's account of an injected fault.
type FaultRecord struct {
	Step   int    `json:"step"`
	Member string `json:"member"`
	Error  string `json:"error,omitempty"`
}

// MemberHealth is one member's final state in a cluster sweep report.
type MemberHealth struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
}

// ClusterSweepConfig shapes a stepped cluster sweep; the rate fields and
// SLO mean what they do in SweepConfig.
type ClusterSweepConfig struct {
	Start        float64       `json:"start"`
	Step         float64       `json:"step"`
	Max          float64       `json:"max"`
	StepDuration time.Duration `json:"-"`
	SLO          SLO           `json:"slo"`
	Cooldown     time.Duration `json:"-"`
	Run          RunConfig     `json:"-"`
	// Fault optionally injects a member kill mid-sweep.
	Fault *FaultPlan `json:"-"`
}

// ClusterSweepResult is the full record of one stepped cluster sweep.
type ClusterSweepResult struct {
	Steps []ClusterStepResult `json:"steps"`
	// Knee is the highest offered rate that met the SLO — the cluster
	// knee. With a fault plan the knee may come from a post-recovery step
	// above the rate that breached during the outage.
	Knee *Knee `json:"knee"`
	// Breached reports whether the final step breached the SLO.
	Breached     bool   `json:"breached"`
	BreachReason string `json:"breach_reason,omitempty"`
	// Fault records the injected kill, when the sweep had one.
	Fault *FaultRecord `json:"fault,omitempty"`
	// Members is the final roster: every member the ring knew at sweep
	// end, with its failure-detector state — where a killed member shows
	// up dead.
	Members []MemberHealth `json:"members,omitempty"`
}

// pickVictim chooses the fault target when the plan names none: the live
// member carrying the most weight under the current split, excluding the
// member currently answering ring fetches so discovery survives the kill.
func pickVictim(view *ClusterView, split string, sc *Scenario) string {
	sourceAddr := strings.TrimPrefix(view.Source, "http://")
	best, bestW := "", -1.0
	for _, p := range splitLoad(sc, view, split) {
		if p.addr == sourceAddr {
			continue
		}
		if p.weight > bestW {
			best, bestW = p.addr, p.weight
		}
	}
	if best == "" && len(view.Members) > 0 {
		best = view.Members[len(view.Members)-1]
	}
	return best
}

// ClusterSweep walks the offered rate up across the cluster. Without a
// fault plan it stops at the first SLO breach, like the single-node
// Sweep; with one it runs the whole schedule, because the steps after the
// kill — the failover window and the recovery — are the experiment.
func (d *ClusterDriver) ClusterSweep(ctx context.Context, cfg ClusterSweepConfig) (ClusterSweepResult, error) {
	if cfg.Start <= 0 || cfg.Step <= 0 || cfg.Max < cfg.Start {
		return ClusterSweepResult{}, fmt.Errorf("loadgen: sweep wants 0 < start <= max and step > 0, got start=%g step=%g max=%g",
			cfg.Start, cfg.Step, cfg.Max)
	}
	if cfg.Fault != nil && (cfg.Fault.Step < 1 || cfg.Fault.Kill == nil) {
		return ClusterSweepResult{}, fmt.Errorf("loadgen: fault plan wants step >= 1 and a kill hook")
	}
	stepDur := cfg.StepDuration
	if stepDur <= 0 {
		stepDur = 2 * time.Second
	}
	var out ClusterSweepResult
	stepIdx := 0
	for rate := cfg.Start; rate <= cfg.Max+1e-9; rate += cfg.Step {
		stepIdx++
		view, err := d.currentView(ctx)
		if err != nil {
			return out, err
		}
		fault := ""
		if cfg.Fault != nil && out.Fault == nil && stepIdx >= cfg.Fault.Step {
			member := cfg.Fault.Member
			if member == "" {
				member = pickVictim(view, d.split, cfg.Run.Scenario)
			}
			rec := &FaultRecord{Step: stepIdx, Member: member}
			if err := cfg.Fault.Kill(member); err != nil {
				rec.Error = err.Error()
			}
			out.Fault = rec
			fault = member
		}
		rcfg := cfg.Run
		rcfg.Rate = rate
		rcfg.Duration = stepDur
		res, err := d.stepWithView(ctx, view, rcfg)
		if err != nil {
			return out, err
		}
		res.Fault = fault
		res.SLOOk, res.SLOReason = cfg.SLO.Check(res.StepResult)
		out.Steps = append(out.Steps, res)
		if res.SLOOk {
			out.Breached, out.BreachReason = false, ""
			if out.Knee == nil || rate > out.Knee.OfferedRate {
				out.Knee = knee(res.StepResult)
			}
		} else {
			out.Breached, out.BreachReason = true, res.SLOReason
			if cfg.Fault == nil {
				break
			}
		}
		if cfg.Cooldown > 0 {
			select {
			case <-time.After(cfg.Cooldown):
			case <-ctx.Done():
				return out, ctx.Err()
			}
		}
	}
	// Final roster: one last refresh so the report's member section
	// reflects the post-sweep cluster — a killed member shows up dead
	// (or suspect, when the sweep outpaced the failure detector).
	if view, err := d.Refresh(ctx); err == nil {
		for addr, state := range view.States {
			out.Members = append(out.Members, MemberHealth{Addr: addr, State: state})
		}
		sort.Slice(out.Members, func(i, j int) bool { return out.Members[i].Addr < out.Members[j].Addr })
	}
	return out, nil
}
