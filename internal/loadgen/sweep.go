package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SLO is the service-level objective a sweep step is judged against. A
// zero field disables that criterion.
type SLO struct {
	// P99Ms breaches when the step's p99 latency (successful requests)
	// exceeds it.
	P99Ms float64 `json:"p99_ms,omitempty"`
	// MaxErrorRate breaches when the step's error rate — rejections
	// (503), errors, and client-side drops over offered arrivals —
	// exceeds it.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// Check reports whether the step meets the SLO, and the breach reason
// when it does not.
func (s SLO) Check(r StepResult) (ok bool, reason string) {
	if s.P99Ms > 0 && r.P99Ms > s.P99Ms {
		return false, fmt.Sprintf("p99 %.3fms exceeds SLO %.3fms", r.P99Ms, s.P99Ms)
	}
	if s.MaxErrorRate > 0 && r.ErrorRate > s.MaxErrorRate {
		return false, fmt.Sprintf("error rate %.4f exceeds SLO %.4f", r.ErrorRate, s.MaxErrorRate)
	}
	return true, ""
}

// SweepConfig shapes a stepped sweep: offered rate walks Start, Start +
// Step, ... up to Max (inclusive), holding each step for StepDuration,
// until a step breaches the SLO.
type SweepConfig struct {
	Start float64 `json:"start"`
	Step  float64 `json:"step"`
	Max   float64 `json:"max"`
	// StepDuration is the hold time per step (default 2s). Longer steps
	// smooth percentile noise; shorter ones find the knee faster.
	StepDuration time.Duration `json:"-"`
	SLO          SLO           `json:"slo"`
	// Cooldown pauses between steps so a breached step's queued backlog
	// drains instead of polluting the next step's measurements.
	Cooldown time.Duration `json:"-"`
	// Run carries the shared step shape (arrival, scenario, caps); its
	// Rate and Duration are overridden per step.
	Run RunConfig `json:"-"`
}

// Knee is the sweep's headline answer: the highest offered rate that
// still met the SLO, with the latency and error profile measured there.
type Knee struct {
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	ErrorRate    float64 `json:"error_rate"`
}

// SweepResult is the full record of one stepped sweep.
type SweepResult struct {
	// Steps holds every step run, in offered-rate order, including the
	// breaching one — the step after the knee is what shows how the
	// service fails, which matters as much as where.
	Steps []StepResult `json:"steps"`
	// Knee is nil when even the first step breached — the service cannot
	// sustain the sweep's starting rate.
	Knee *Knee `json:"knee"`
	// Breached reports whether the sweep ended on an SLO breach; false
	// means the rate ceiling was reached with the SLO intact, so the true
	// knee is at or above Max and the sweep should be re-run higher.
	Breached     bool   `json:"breached"`
	BreachReason string `json:"breach_reason,omitempty"`
}

// knee converts a passing step into the knee record.
func knee(r StepResult) *Knee {
	return &Knee{
		OfferedRate:  r.OfferedRate,
		AchievedRate: r.AchievedRate,
		P50Ms:        r.P50Ms,
		P99Ms:        r.P99Ms,
		P999Ms:       r.P999Ms,
		ErrorRate:    r.ErrorRate,
	}
}

// Sweep walks offered rate up from cfg.Start by cfg.Step until the SLO
// breaches or cfg.Max is passed, and reports every step plus the knee.
func Sweep(ctx context.Context, tgt *Target, cfg SweepConfig) (SweepResult, error) {
	if cfg.Start <= 0 || cfg.Step <= 0 || cfg.Max < cfg.Start {
		return SweepResult{}, fmt.Errorf("loadgen: sweep wants 0 < start <= max and step > 0, got start=%g step=%g max=%g",
			cfg.Start, cfg.Step, cfg.Max)
	}
	stepDur := cfg.StepDuration
	if stepDur <= 0 {
		stepDur = 2 * time.Second
	}
	var out SweepResult
	for rate := cfg.Start; rate <= cfg.Max+1e-9; rate += cfg.Step {
		rcfg := cfg.Run
		rcfg.Rate = rate
		rcfg.Duration = stepDur
		res, err := Run(ctx, tgt, rcfg)
		if err != nil {
			return out, err
		}
		out.Steps = append(out.Steps, res)
		ok, reason := cfg.SLO.Check(res)
		if !ok {
			out.Breached = true
			out.BreachReason = reason
			return out, nil
		}
		out.Knee = knee(res)
		if cfg.Cooldown > 0 {
			select {
			case <-time.After(cfg.Cooldown):
			case <-ctx.Done():
				return out, ctx.Err()
			}
		}
	}
	return out, nil
}

// Report is the machine-readable JSON document `neusight loadgen` emits:
// the run's identity and configuration, plus exactly one of Sweep
// (stepped mode) or Run (fixed-rate mode). scripts/bench.sh --sweep
// embeds it under the "sweep" key of BENCH_serve.json.
type Report struct {
	Kind     string      `json:"kind"` // "neusight-loadgen"
	Target   string      `json:"target"`
	Scenario string      `json:"scenario"`
	Arrival  ArrivalSpec `json:"arrival"`
	SLO      *SLO        `json:"slo,omitempty"`

	Sweep *SweepResult `json:"sweep,omitempty"`
	Run   *StepResult  `json:"run,omitempty"`

	// ClusterSweep and ClusterRun are the cluster-mode equivalents
	// (`neusight loadgen -cluster`); scripts/bench.sh --cluster-sweep
	// embeds a ClusterSweep report under the "cluster_sweep" key of
	// BENCH_serve.json.
	ClusterSweep *ClusterSweepResult `json:"cluster_sweep,omitempty"`
	ClusterRun   *ClusterStepResult  `json:"cluster_run,omitempty"`
}

// ReportKind is the Report.Kind discriminator.
const ReportKind = "neusight-loadgen"
