package loadgen

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func us(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, v)
		}
	}
	if h.MeanMs() != 0 || h.MaxMs() != 0 || h.MinMs() != 0 {
		t.Errorf("empty mean/max/min = %g/%g/%g, want 0", h.MeanMs(), h.MaxMs(), h.MinMs())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(us(250))
	// 250µs lands in the bucket [240, 255]: every quantile reports the
	// bucket's upper bound, 0.255ms; mean/max/min stay exact.
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if v := h.Quantile(q); v != 0.255 {
			t.Errorf("Quantile(%g) = %g, want 0.255", q, v)
		}
	}
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}
	if h.MeanMs() != 0.25 || h.MaxMs() != 0.25 || h.MinMs() != 0.25 {
		t.Errorf("mean/max/min = %g/%g/%g, want 0.25", h.MeanMs(), h.MaxMs(), h.MinMs())
	}
}

// TestHistogramPinnedPercentiles pins p50/p99/p999 against hand-computed
// bucket upper bounds on synthetic distributions.
func TestHistogramPinnedPercentiles(t *testing.T) {
	cases := []struct {
		name           string
		feed           func(h *Histogram)
		p50, p99, p999 float64
	}{
		{
			// 1..1000µs once each: rank 500 → bucket [480,511] → 0.511ms;
			// ranks 990 and 1000 → bucket [960,1023] → 1.023ms.
			name: "uniform_1_1000us",
			feed: func(h *Histogram) {
				for v := int64(1); v <= 1000; v++ {
					h.Observe(us(v))
				}
			},
			p50: 0.511, p99: 1.023, p999: 1.023,
		},
		{
			// Sub-8µs values are binned exactly.
			name: "exact_small_values",
			feed: func(h *Histogram) {
				for _, v := range []int64{1, 2, 3} {
					h.Observe(us(v))
				}
			},
			p50: 0.002, p99: 0.003, p999: 0.003,
		},
		{
			// Bimodal: 900 fast (1ms) + 100 slow (100ms). p50 sits in the
			// fast mode's bucket [960,1023]µs; p99/p999 in the slow mode's
			// bucket [98304,106495]µs.
			name: "bimodal_tail",
			feed: func(h *Histogram) {
				for i := 0; i < 900; i++ {
					h.Observe(time.Millisecond)
				}
				for i := 0; i < 100; i++ {
					h.Observe(100 * time.Millisecond)
				}
			},
			p50: 1.023, p99: 106.495, p999: 106.495,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			tc.feed(h)
			qs := h.Quantiles(0.50, 0.99, 0.999)
			if qs[0] != tc.p50 || qs[1] != tc.p99 || qs[2] != tc.p999 {
				t.Errorf("p50/p99/p999 = %g/%g/%g, want %g/%g/%g",
					qs[0], qs[1], qs[2], tc.p50, tc.p99, tc.p999)
			}
		})
	}
}

// TestHistogramResolutionBound verifies the design bound: the reported
// bucket upper never overstates a value by more than 1/8.
func TestHistogramResolutionBound(t *testing.T) {
	for _, v := range []int64{1, 7, 8, 9, 100, 999, 1000, 4095, 4096, 65537, 1e6, 1e7, 3e8} {
		idx := bucketIndex(v)
		upper := bucketUpperUs(idx)
		if upper < v {
			t.Fatalf("bucket upper %d below value %d", upper, v)
		}
		if rel := float64(upper-v) / float64(v); rel > 0.125 {
			t.Errorf("value %d: upper %d overstates by %.3f > 0.125", v, upper, rel)
		}
		// Buckets must be consistent: the upper bound maps back to the
		// same bucket, and the next value starts a new one.
		if bucketIndex(upper) != idx {
			t.Errorf("value %d: upper %d maps to bucket %d, want %d", v, upper, bucketIndex(upper), idx)
		}
		if bucketIndex(upper+1) == idx {
			t.Errorf("value %d: upper+1 %d still maps to bucket %d", v, upper+1, idx)
		}
	}
}

func TestHistogramMeanAndExtremes(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{100, 200, 600} {
		h.Observe(us(v))
	}
	if got := h.MeanMs(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("mean = %g, want 0.3", got)
	}
	if h.MinMs() != 0.1 || h.MaxMs() != 0.6 {
		t.Errorf("min/max = %g/%g, want 0.1/0.6", h.MinMs(), h.MaxMs())
	}
	// Negative and sub-microsecond durations clamp into bucket zero
	// rather than corrupting the counters.
	h.Observe(-time.Second)
	h.Observe(500 * time.Nanosecond)
	if h.Count() != 5 || h.MinMs() != 0 {
		t.Errorf("after clamped observes: count=%d min=%g", h.Count(), h.MinMs())
	}
}

// TestHistogramConcurrentObserve drives Observe from many goroutines —
// meaningful under -race, and checks no observation is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(us(int64(g*per + i + 1)))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if q := h.Quantile(1); q < 15 { // max value is 16000µs = 16ms
		t.Errorf("p100 = %gms, want >= 15ms", q)
	}
}

// TestHistogramMergeMatchesUnion is the merge-exactness property the
// cluster driver's aggregation stands on: because every histogram shares
// one fixed bucket layout, merging K per-member histograms must yield
// bit-identical quantiles, mean, and extremes to recording the union of
// the underlying samples into a single histogram. If a refactor ever
// makes buckets configurable or merge approximate, this is the test that
// catches it.
func TestHistogramMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6) // member count
		merged := NewHistogram()
		union := NewHistogram()
		for m := 0; m < k; m++ {
			part := NewHistogram()
			n := rng.Intn(2000) // empty members allowed
			for i := 0; i < n; i++ {
				// Span the layout: linear region, mid octaves, far tail.
				var v int64
				switch rng.Intn(3) {
				case 0:
					v = rng.Int63n(histSub)
				case 1:
					v = rng.Int63n(100_000)
				default:
					v = rng.Int63n(1 << 40)
				}
				part.Observe(us(v))
				union.Observe(us(v))
			}
			merged.Merge(part)
		}
		if merged.Count() != union.Count() {
			t.Fatalf("trial %d: merged count %d != union count %d", trial, merged.Count(), union.Count())
		}
		for i := 0; i < histBuckets; i++ {
			if m, u := merged.counts[i].Load(), union.counts[i].Load(); m != u {
				t.Fatalf("trial %d: bucket %d merged %d != union %d", trial, i, m, u)
			}
		}
		for _, q := range []float64{0.50, 0.99, 0.999} {
			if m, u := merged.Quantile(q), union.Quantile(q); m != u {
				t.Errorf("trial %d: q%g merged %g != union %g", trial, q, m, u)
			}
		}
		if m, u := merged.MeanMs(), union.MeanMs(); m != u {
			t.Errorf("trial %d: mean merged %g != union %g", trial, m, u)
		}
		if m, u := merged.MaxMs(), union.MaxMs(); m != u {
			t.Errorf("trial %d: max merged %g != union %g", trial, m, u)
		}
		if m, u := merged.MinMs(), union.MinMs(); m != u {
			t.Errorf("trial %d: min merged %g != union %g", trial, m, u)
		}
	}
}

// TestHistogramMergeEdgeCases pins the no-op and self-merge guards.
func TestHistogramMergeEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Observe(us(100))
	h.Merge(nil)            // nil is a no-op
	h.Merge(NewHistogram()) // empty is a no-op
	h.Merge(h)              // self-merge is a no-op, not a double count
	if h.Count() != 1 {
		t.Fatalf("count after no-op merges = %d, want 1", h.Count())
	}
	if h.MinMs() != 0.1 || h.MaxMs() != 0.1 {
		t.Fatalf("min/max after no-op merges = %g/%g, want 0.1/0.1", h.MinMs(), h.MaxMs())
	}
}
