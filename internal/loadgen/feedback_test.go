package loadgen

import (
	"context"
	"testing"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/observe"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// TestObserveFeedbackReportsMeasuredLatencies closes the loop end to end:
// a feedback-mode run against a service with a drift monitor attached must
// deliver one observation per successful kernel request, and the monitor's
// ingested count must agree with the client-side report exactly.
func TestObserveFeedbackReportsMeasuredLatencies(t *testing.T) {
	eng := predict.NewRooflineEngine()
	svc, tgt := newServedTarget(t, eng, serve.Config{CacheSize: 1024})
	mon := observe.NewMonitor(observe.Config{Threshold: 100}, // never retrains
		func(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec) (float64, error) {
			res, err := svc.PredictKernelEngine(ctx, engine, k, g)
			return res.Latency, err
		})
	svc.SetObserver(mon)
	t.Cleanup(func() { mon.Close() })

	res, err := Run(context.Background(), tgt, RunConfig{
		Rate:            800,
		Duration:        500 * time.Millisecond,
		Arrival:         ArrivalSpec{Seed: 7},
		Scenario:        kernelOnlyMix(t, []string{"H100", "V100"}),
		ObserveFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 {
		t.Fatal("no successful requests to report observations for")
	}
	if res.Observed != res.Succeeded {
		t.Errorf("reported %d observations for %d successes", res.Observed, res.Succeeded)
	}
	if res.ObserveRejected != 0 {
		t.Errorf("%d observations rejected against a monitor-equipped target", res.ObserveRejected)
	}
	rep := mon.Report()
	if rep.Ingested != res.Observed {
		t.Errorf("monitor ingested %d, client reported %d", rep.Ingested, res.Observed)
	}
	if len(rep.Windows) == 0 {
		t.Fatal("feedback opened no drift windows")
	}
	for _, w := range rep.Windows {
		if w.Engine != predict.EngineRoofline {
			t.Errorf("window engine %q, want the serving default %q", w.Engine, predict.EngineRoofline)
		}
	}
	// The server-side stats delta must not include the feedback traffic:
	// observations post after the delta is taken.
	if res.Server != nil && res.Server.Requests != res.Succeeded {
		t.Errorf("server requests delta %d != %d succeeded — feedback leaked into the step accounting",
			res.Server.Requests, res.Succeeded)
	}
}

// Feedback against a target without -observe must not fail the run; the
// observations are counted rejected and the step result stands.
func TestObserveFeedbackAgainstDisabledTarget(t *testing.T) {
	_, tgt := newServedTarget(t, predict.NewRooflineEngine(), serve.Config{CacheSize: 64})
	res, err := Run(context.Background(), tgt, RunConfig{
		Rate:            400,
		Duration:        200 * time.Millisecond,
		Arrival:         ArrivalSpec{Seed: 9},
		Scenario:        kernelOnlyMix(t, []string{"H100"}),
		ObserveFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 {
		t.Fatal("no successful requests")
	}
	if res.Observed != 0 || res.ObserveRejected != res.Succeeded {
		t.Errorf("observed=%d rejected=%d against a disabled target, want 0/%d",
			res.Observed, res.ObserveRejected, res.Succeeded)
	}
}
