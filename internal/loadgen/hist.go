package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket HDR-style latency histogram: microsecond
// values are binned exactly below 8µs and into 8 logarithmic sub-buckets
// per power of two above it, so the worst-case quantization error of any
// reported percentile is 12.5% while the whole structure is a few KB of
// counters with no allocation per observation. Observe is lock-free and
// safe for arbitrary concurrent use — the load driver records from every
// in-flight request goroutine at once.
//
// The shape differs deliberately from serve's latencyWindow: the server
// keeps a bounded ring because its dashboards want *recent* behavior under
// indefinite uptime, while a load step is a closed interval whose report
// must reflect every request of the step — a ring that forgets the slow
// early tail would understate p999 exactly when the knee is forming.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sumUs  atomic.Uint64
	maxUs  atomic.Int64
	minUs  atomic.Int64 // math.MaxInt64 until the first observation
}

const (
	// histSubBits gives 1<<histSubBits sub-buckets per power of two:
	// 8 sub-buckets bound relative bucket width at 1/8.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers every int64 microsecond value: the linear region
	// [0,8) plus 8 sub-buckets for each of the remaining 60 octaves.
	histBuckets = histSub * 61
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minUs.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative microsecond value to its bucket:
// values below 8 are exact; above, idx = 8g + (v>>g) where g is the
// octave above the linear region (v>>g is in [8,16)).
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	g := bits.Len64(uint64(v)) - 1 - histSubBits
	return g<<histSubBits + int(v>>uint(g))
}

// bucketUpperUs is the largest microsecond value mapping to bucket idx —
// the conservative representative every percentile reports.
func bucketUpperUs(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	g := uint(idx>>histSubBits - 1)
	s := int64(idx & (histSub - 1))
	return (histSub+s+1)<<g - 1
}

// Observe records one request duration. Sub-microsecond and negative
// durations land in bucket zero.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sumUs.Add(uint64(us))
	for {
		old := h.maxUs.Load()
		if us <= old || h.maxUs.CompareAndSwap(old, us) {
			break
		}
	}
	for {
		old := h.minUs.Load()
		if us >= old || h.minUs.CompareAndSwap(old, us) {
			break
		}
	}
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Merge folds o's observations into h. Because every histogram shares the
// same fixed bucket layout, merging is exact: bucket counts add, and every
// quantile of the merged histogram is identical to what recording the
// union of the underlying samples into one histogram would report (pinned
// by TestHistogramMergeMatchesUnion). This is what lets the cluster driver
// aggregate per-member latency distributions into one cluster-wide
// percentile without shipping raw samples around. Merging a histogram into
// itself is not supported; a nil or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(n)
	h.sumUs.Add(o.sumUs.Load())
	for max := o.maxUs.Load(); ; {
		old := h.maxUs.Load()
		if max <= old || h.maxUs.CompareAndSwap(old, max) {
			break
		}
	}
	for min := o.minUs.Load(); ; {
		old := h.minUs.Load()
		if min >= old || h.minUs.CompareAndSwap(old, min) {
			break
		}
	}
}

// Quantile returns the q-quantile (q in [0,1]) in milliseconds: the upper
// bound of the bucket holding the ceil(q*count)-th smallest observation.
// An empty histogram reports 0 for every quantile.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return float64(bucketUpperUs(i)) / 1e3
		}
	}
	// Unreachable unless observations raced in after the count snapshot;
	// fall back to the tracked maximum.
	return h.MaxMs()
}

// Quantiles returns Quantile for each q, sharing one bucket walk per call
// site's readability — the driver asks for p50/p99/p999 together.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// MeanMs returns the exact mean of all observations in milliseconds
// (buckets quantize percentiles, not the sum).
func (h *Histogram) MeanMs() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumUs.Load()) / float64(n) / 1e3
}

// MaxMs returns the exact maximum observation in milliseconds.
func (h *Histogram) MaxMs() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return float64(h.maxUs.Load()) / 1e3
}

// MinMs returns the exact minimum observation in milliseconds.
func (h *Histogram) MinMs() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return float64(h.minUs.Load()) / 1e3
}
