package loadgen

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"neusight/internal/serve"
)

func TestSLOCheck(t *testing.T) {
	cases := []struct {
		name string
		slo  SLO
		step StepResult
		ok   bool
	}{
		{"empty_slo_passes", SLO{}, StepResult{P99Ms: 1e6, ErrorRate: 1}, true},
		{"p99_under", SLO{P99Ms: 10}, StepResult{P99Ms: 9.9}, true},
		{"p99_over", SLO{P99Ms: 10}, StepResult{P99Ms: 10.1}, false},
		{"errors_under", SLO{MaxErrorRate: 0.01}, StepResult{ErrorRate: 0.009}, true},
		{"errors_over", SLO{MaxErrorRate: 0.01}, StepResult{ErrorRate: 0.02}, false},
		{"either_breaches", SLO{P99Ms: 10, MaxErrorRate: 0.01}, StepResult{P99Ms: 1, ErrorRate: 0.5}, false},
	}
	for _, tc := range cases {
		ok, reason := tc.slo.Check(tc.step)
		if ok != tc.ok {
			t.Errorf("%s: ok=%v want %v", tc.name, ok, tc.ok)
		}
		if !ok && reason == "" {
			t.Errorf("%s: breach without a reason", tc.name)
		}
	}
}

// TestSweepFindsKnee runs a real stepped sweep against a live sharded
// service whose capacity is engineered to sit between the two steps: the
// first step's rate is comfortably sustainable, the second is an order of
// magnitude past saturation, so the SLO breach — and therefore the knee —
// is structural rather than timing-sensitive.
func TestSweepFindsKnee(t *testing.T) {
	_, tgt := newServedTarget(t, slowEngine("slow", 5*time.Millisecond), serve.Config{
		CacheSize:    -1,
		Shards:       2,
		ShardWorkers: 1,
		ShardQueue:   1,
	})
	cfg := SweepConfig{
		Start:        20,
		Step:         2980,
		Max:          3000,
		StepDuration: 500 * time.Millisecond,
		SLO:          SLO{MaxErrorRate: 0.2},
		Run: RunConfig{
			Arrival:  ArrivalSpec{Seed: 17},
			Scenario: kernelOnlyMix(t, []string{"H100", "V100"}),
		},
	}
	res, err := Sweep(context.Background(), tgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("ran %d steps, want 2 (pass then breach)", len(res.Steps))
	}
	if !res.Breached || res.BreachReason == "" {
		t.Fatalf("breached=%v reason=%q; the 3000/s step must breach a 2-shard queue-1 service", res.Breached, res.BreachReason)
	}
	if res.Knee == nil {
		t.Fatal("no knee recorded despite a passing first step")
	}
	if res.Knee.OfferedRate != 20 {
		t.Errorf("knee at %g/s, want the passing 20/s step", res.Knee.OfferedRate)
	}
	if last := res.Steps[1]; last.ErrorRate <= 0.2 {
		t.Errorf("breaching step error rate %.3f, expected > 0.2", last.ErrorRate)
	}

	// A sweep that starts past saturation must report breach-with-no-knee.
	cfg.Start, cfg.Step, cfg.Max = 3000, 1000, 3000
	res, err = Sweep(context.Background(), tgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Breached || res.Knee != nil || len(res.Steps) != 1 {
		t.Errorf("first-step breach: breached=%v knee=%v steps=%d; want true/nil/1",
			res.Breached, res.Knee, len(res.Steps))
	}
}

func TestSweepValidation(t *testing.T) {
	tgt := NewTarget("http://127.0.0.1:0", 1)
	for _, cfg := range []SweepConfig{
		{Start: 0, Step: 10, Max: 100},
		{Start: 10, Step: 0, Max: 100},
		{Start: 100, Step: 10, Max: 50},
	} {
		if _, err := Sweep(context.Background(), tgt, cfg); err == nil {
			t.Errorf("sweep config %+v: expected validation error", cfg)
		}
	}
}

// TestReportRoundTrip pins the report schema: the JSON document survives a
// marshal/unmarshal cycle with its discriminator and knee intact, which is
// what scripts/bench.sh --sweep and CI consumers parse.
func TestReportRoundTrip(t *testing.T) {
	in := Report{
		Kind:     ReportKind,
		Target:   "http://127.0.0.1:9999",
		Scenario: "mix(kernel=1.0)",
		Arrival:  ArrivalSpec{Process: ArrivalBursty, On: 20 * time.Millisecond, Off: 80 * time.Millisecond, Seed: 42},
		SLO:      &SLO{P99Ms: 50, MaxErrorRate: 0.01},
		Sweep: &SweepResult{
			Steps: []StepResult{
				{OfferedRate: 100, AchievedRate: 99.5, Sent: 200, Succeeded: 200, P50Ms: 1.023, P99Ms: 2.047, P999Ms: 2.047},
				{OfferedRate: 200, AchievedRate: 150, Sent: 400, Succeeded: 300, Rejected: 100, ErrorRate: 0.25, P99Ms: 90},
			},
			Knee:         &Knee{OfferedRate: 100, AchievedRate: 99.5, P50Ms: 1.023, P99Ms: 2.047, P999Ms: 2.047},
			Breached:     true,
			BreachReason: "error rate 0.2500 exceeds SLO 0.0100",
		},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != ReportKind {
		t.Errorf("kind %q, want %q", out.Kind, ReportKind)
	}
	if out.Sweep == nil || out.Sweep.Knee == nil {
		t.Fatal("sweep/knee lost in round trip")
	}
	if *out.Sweep.Knee != *in.Sweep.Knee {
		t.Errorf("knee changed: %+v -> %+v", *in.Sweep.Knee, *out.Sweep.Knee)
	}
	if len(out.Sweep.Steps) != 2 || out.Sweep.Steps[1].Rejected != 100 {
		t.Errorf("steps lost in round trip: %+v", out.Sweep.Steps)
	}
	if out.Arrival != in.Arrival {
		t.Errorf("arrival spec changed: %+v -> %+v", in.Arrival, out.Arrival)
	}
}
