package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/serve"
)

// Kind classifies one generated request by the endpoint it exercises.
type Kind int

const (
	KindKernel Kind = iota // POST /v2/predict/kernel
	KindBatch              // POST /v2/predict/batch
	KindGraph              // POST /v2/predict/graph
)

func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindBatch:
		return "batch"
	case KindGraph:
		return "graph"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Request is one pre-encoded request of a scenario: the endpoint path and
// the marshalled JSON body. Bodies are built once at scenario construction
// so the dispatch hot loop does no encoding work — an open-loop driver
// that stalls marshalling JSON under-offers exactly when the target is
// busiest.
type Request struct {
	Kind Kind
	Path string
	Body []byte
	// Kernels is how many kernel forecasts the request asks for: 1 for a
	// kernel request, the batch length for a batch request, 0 for a graph
	// request (the server prices the graph's kernels internally).
	Kernels int
	// Observe is the observation template for feedback mode: the same
	// kernel/GPU/engine the request predicts, with ObservedMs left for the
	// driver to fill with the measured latency. Only single-kernel
	// requests carry one — a batch or graph round trip has no one kernel
	// its latency belongs to.
	Observe *serve.ObserveRequest
	// Engine and GPU are the request's routing key — the same (engine,
	// GPU) pair the cluster's membership ring hashes to assign a shard
	// owner. The cluster driver uses them to send each request straight to
	// the member that owns it. Engine is empty when the request relies on
	// the server default.
	Engine string
	GPU    string
}

// Scenario is a finite pool of pre-encoded requests the driver cycles
// through. Pools repeat — deliberately: production prediction traffic
// repeats identical (kernel, GPU) questions, which is what the serving
// cache is built for, so a generator issuing only unique keys would
// measure an anti-adversarial workload no real deployment sees.
type Scenario struct {
	Name string
	reqs []Request
}

// Len returns the pool size.
func (s *Scenario) Len() int { return len(s.reqs) }

// Request returns the i-th request of the cycle.
func (s *Scenario) Request(i uint64) Request {
	return s.reqs[i%uint64(len(s.reqs))]
}

// MixConfig shapes a mixed scenario: a weighted blend of kernel, batch,
// and graph requests over a model × GPU matrix.
type MixConfig struct {
	// KernelWeight, BatchWeight, and GraphWeight set the request-type
	// ratio; they need not sum to 1. All zero means kernel-only.
	KernelWeight float64 `json:"kernel_weight"`
	BatchWeight  float64 `json:"batch_weight"`
	GraphWeight  float64 `json:"graph_weight"`
	// Models and GPUs span the matrix requests are drawn from. Every name
	// must be registered (see `neusight list-models` / `list-gpus`).
	Models []string `json:"models"`
	GPUs   []string `json:"gpus"`
	// Engine is the /v2 per-request engine field ("" = server default).
	Engine string `json:"engine,omitempty"`
	// BatchSize is the kernel count of each batch request (default 32).
	BatchSize int `json:"batch_size,omitempty"`
	// GraphBatch is the workload batch size of graph requests (default 2).
	GraphBatch int `json:"graph_batch,omitempty"`
	// PoolSize is how many distinct requests to pre-encode (default 512).
	PoolSize int `json:"pool_size,omitempty"`
	// Seed fixes the draw so a scenario is reproducible run to run.
	Seed int64 `json:"seed"`
}

// apiOps is the operator set the /v2 kernel and batch endpoints accept;
// graph nodes outside it (dropout, transpose, network collectives) are
// served only through the graph endpoint, so the mix generator must not
// emit them as standalone kernel requests.
var apiOps = map[kernels.Op]bool{
	kernels.OpBMM: true, kernels.OpLinear: true,
	kernels.OpEWAdd: true, kernels.OpEWMul: true, kernels.OpEWDiv: true,
	kernels.OpEWReLU: true, kernels.OpEWGELU: true, kernels.OpEWTanh: true,
	kernels.OpSoftmax: true, kernels.OpLayerNorm: true, kernels.OpEmbedding: true,
}

// kernelBody converts a kernel into the /v2 request it round-trips as.
func kernelBody(k kernels.Kernel) serve.KernelRequest {
	body := serve.KernelRequest{Op: k.Op.String(), B: k.B, M: k.M, K: k.K, N: k.N}
	if k.DType == kernels.FP16 {
		body.DType = "fp16"
	}
	return body
}

// NewMix builds a mixed scenario from cfg. The kernel pool is the set of
// unique API-expressible kernel shapes across the named models' inference
// graphs — the same shapes live traffic repeats layer after layer.
func NewMix(cfg MixConfig) (*Scenario, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("loadgen: mix needs at least one model")
	}
	if len(cfg.GPUs) == 0 {
		return nil, fmt.Errorf("loadgen: mix needs at least one GPU")
	}
	if cfg.KernelWeight < 0 || cfg.BatchWeight < 0 || cfg.GraphWeight < 0 {
		return nil, fmt.Errorf("loadgen: mix weights must be non-negative")
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = 32
	}
	if batchSize > serve.MaxBatchKernels {
		return nil, fmt.Errorf("loadgen: batch size %d exceeds the server's %d-kernel limit", batchSize, serve.MaxBatchKernels)
	}
	graphBatch := cfg.GraphBatch
	if graphBatch <= 0 {
		graphBatch = 2
	}
	poolSize := cfg.PoolSize
	if poolSize <= 0 {
		poolSize = 512
	}
	// Canonical GPU names: the ring assignments the cluster driver matches
	// requests against use gpu.Spec.Name, so the pool must too.
	gpus := make([]string, len(cfg.GPUs))
	for i, name := range cfg.GPUs {
		g, err := gpu.Lookup(name)
		if err != nil {
			return nil, err
		}
		gpus[i] = g.Name
	}
	// Unique API-expressible kernel shapes across the model matrix,
	// sorted for seed-stable pool construction.
	shapes := map[string]kernels.Kernel{}
	for _, name := range cfg.Models {
		m, err := models.Lookup(name)
		if err != nil {
			return nil, err
		}
		for _, k := range m.InferenceGraph(graphBatch).Kernels() {
			if apiOps[k.Op] {
				shapes[k.Label()] = k
			}
		}
	}
	labels := make([]string, 0, len(shapes))
	for l := range shapes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	if len(labels) == 0 {
		return nil, fmt.Errorf("loadgen: no API-expressible kernels in models %v", cfg.Models)
	}

	kw, bw, gw := cfg.KernelWeight, cfg.BatchWeight, cfg.GraphWeight
	if kw+bw+gw == 0 {
		kw = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &Scenario{Name: fmt.Sprintf("mix(kernel=%g,batch=%g,graph=%g)", kw, bw, gw)}
	for i := 0; i < poolSize; i++ {
		gpuName := gpus[rng.Intn(len(gpus))]
		var req Request
		var body any
		switch pick := rng.Float64() * (kw + bw + gw); {
		case pick < kw:
			k := shapes[labels[rng.Intn(len(labels))]]
			kb := kernelBody(k)
			kb.GPU = gpuName
			req = Request{Kind: KindKernel, Path: "/v2/predict/kernel", Kernels: 1,
				Observe: &serve.ObserveRequest{Kernel: kb, Engine: cfg.Engine}}
			body = serve.KernelRequestV2{KernelRequest: kb, Engine: cfg.Engine}
		case pick < kw+bw:
			ks := make([]serve.KernelRequest, batchSize)
			for j := range ks {
				ks[j] = kernelBody(shapes[labels[rng.Intn(len(labels))]])
			}
			req = Request{Kind: KindBatch, Path: "/v2/predict/batch", Kernels: batchSize}
			body = serve.BatchRequestV2{
				BatchRequest: serve.BatchRequest{GPU: gpuName, Kernels: ks},
				Engine:       cfg.Engine,
			}
		default:
			req = Request{Kind: KindGraph, Path: "/v2/predict/graph"}
			body = serve.GraphRequestV2{
				GraphRequest: serve.GraphRequest{
					Workload: cfg.Models[rng.Intn(len(cfg.Models))],
					GPU:      gpuName,
					Batch:    graphBatch,
				},
				Engine: cfg.Engine,
			}
		}
		enc, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("loadgen: encoding request %d: %w", i, err)
		}
		req.Body = enc
		req.Engine, req.GPU = cfg.Engine, gpuName
		sc.reqs = append(sc.reqs, req)
	}
	return sc, nil
}

// NewTraceReplay builds a scenario replaying a recorded workload trace
// (see serve.TraceRecorder) as kernel requests in file order — offered at
// whatever rate the driver is asked for, which is the difference between
// replaying a profile and warming from one. Entries whose operator the
// kernel API cannot express and corrupt lines are skipped (counted, not
// fatal), mirroring WarmFromTrace's tolerance.
func NewTraceReplay(path, engine string) (*Scenario, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := &Scenario{Name: "trace(" + path + ")"}
	skipped := 0
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for scan.Scan() {
		line := scan.Bytes()
		if len(line) == 0 {
			continue
		}
		var e serve.TraceEntry
		if err := json.Unmarshal(line, &e); err != nil {
			skipped++
			continue
		}
		k, err := e.Kernel()
		if err != nil || !apiOps[k.Op] {
			skipped++
			continue
		}
		kb := kernelBody(k)
		kb.GPU = e.GPU
		eng := engine
		if eng == "" {
			eng = e.Engine
		}
		enc, err := json.Marshal(serve.KernelRequestV2{KernelRequest: kb, Engine: eng})
		if err != nil {
			skipped++
			continue
		}
		sc.reqs = append(sc.reqs, Request{Kind: KindKernel, Path: "/v2/predict/kernel", Body: enc, Kernels: 1,
			Observe: &serve.ObserveRequest{Kernel: kb, Engine: eng},
			Engine:  eng, GPU: e.GPU})
	}
	if err := scan.Err(); err != nil {
		return nil, skipped, err
	}
	if len(sc.reqs) == 0 {
		return nil, skipped, fmt.Errorf("loadgen: trace %s has no replayable entries (%d skipped)", path, skipped)
	}
	return sc, skipped, nil
}
