package gpu

import "fmt"

// ServerSpec describes a multi-GPU server (paper Section 6.3): a set of
// identical devices plus the intra-server interconnect.
type ServerSpec struct {
	Name        string
	GPU         Spec
	NumGPUs     int
	LinkBWGBs   float64 // bi-directional GPU-to-GPU bandwidth, GB/s
	Interconn   string  // "NVLink" or "DGX"
	NodeNICGbps float64 // per-node network bandwidth for multi-node runs, Gbps
}

var servers = map[string]ServerSpec{}

func registerServer(s ServerSpec) {
	if _, dup := servers[s.Name]; dup {
		panic(fmt.Sprintf("gpu: duplicate server %q", s.Name))
	}
	servers[s.Name] = s
}

func init() {
	// Paper Section 6.3: 4x A100-40GB mesh with 12 NVLinks (600 GB/s) and
	// 4x H100 DGX with 18 NVLinks (900 GB/s); the multi-node study uses
	// 8x H100 nodes with 100 Gbps InfiniBand.
	registerServer(ServerSpec{Name: "A100x4-NVLink", GPU: MustLookup("A100-40GB"), NumGPUs: 4, LinkBWGBs: 600, Interconn: "NVLink"})
	registerServer(ServerSpec{Name: "H100x4-DGX", GPU: MustLookup("H100"), NumGPUs: 4, LinkBWGBs: 900, Interconn: "DGX"})
	registerServer(ServerSpec{Name: "H100x8-DGX", GPU: MustLookup("H100"), NumGPUs: 8, LinkBWGBs: 900, Interconn: "DGX", NodeNICGbps: 100})
	registerServer(ServerSpec{Name: "V100x4-NVLink", GPU: MustLookup("V100"), NumGPUs: 4, LinkBWGBs: 300, Interconn: "NVLink"})
}

// LookupServer returns the server spec for name.
func LookupServer(name string) (ServerSpec, error) {
	s, ok := servers[name]
	if !ok {
		return ServerSpec{}, fmt.Errorf("gpu: unknown server %q", name)
	}
	return s, nil
}

// MustLookupServer panics on unknown server names.
func MustLookupServer(name string) ServerSpec {
	s, err := LookupServer(name)
	if err != nil {
		panic(err)
	}
	return s
}
