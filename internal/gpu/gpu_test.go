package gpu

import "testing"

func TestLookupKnown(t *testing.T) {
	h, err := Lookup("H100")
	if err != nil {
		t.Fatal(err)
	}
	if h.SMs != 132 || h.MemoryBWGBs != 3430 || h.L2CacheMB != 50 {
		t.Fatalf("H100 spec corrupted: %+v", h)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("GTX480"); err == nil {
		t.Fatal("expected error for unregistered device")
	}
}

func TestUpcomingGPURegistered(t *testing.T) {
	b, err := Lookup("B200")
	if err != nil {
		t.Fatal("B200 (the upcoming-GPU scenario) must be registered")
	}
	h := MustLookup("H100")
	if b.MemoryBWGBs <= h.MemoryBWGBs || b.TensorCoreFLOPS <= h.TensorCoreFLOPS {
		t.Fatal("B200 must supersede H100 on bandwidth and tensor peak")
	}
}

func TestTableFourInventory(t *testing.T) {
	// Every Table 4 device must be registered with plausible values.
	names := []string{"P4", "P100", "V100", "T4", "A100-40GB", "A100-80GB", "L4", "H100", "MI100", "MI210", "MI250"}
	for _, n := range names {
		s, err := Lookup(n)
		if err != nil {
			t.Fatalf("missing Table 4 device %s", n)
		}
		if s.PeakFLOPS <= 0 || s.MemoryBWGBs <= 0 || s.SMs <= 0 || s.L2CacheMB <= 0 || s.MemoryGB <= 0 {
			t.Fatalf("%s has non-positive fields: %+v", n, s)
		}
		if s.Year < 2015 || s.Year > 2024 {
			t.Fatalf("%s has implausible year %d", n, s.Year)
		}
	}
}

func TestTrainTestDisjoint(t *testing.T) {
	train := map[string]bool{}
	for _, s := range TrainSet() {
		train[s.Name] = true
	}
	for _, s := range TestSet() {
		if train[s.Name] {
			t.Fatalf("%s appears in both train and test sets", s.Name)
		}
	}
	if len(TrainSet()) != 5 {
		t.Fatalf("train set size %d, want 5 (paper Section 6.1)", len(TrainSet()))
	}
	if len(TestSet()) != 3 {
		t.Fatalf("test set size %d, want 3 (H100, L4, A100-80GB)", len(TestSet()))
	}
}

func TestAMDSets(t *testing.T) {
	for _, s := range append(AMDTrainSet(), AMDTestSet()...) {
		if s.Vendor != AMD {
			t.Fatalf("%s in AMD sets but vendor %s", s.Name, s.Vendor)
		}
		if s.MatrixPeakFLOPS <= s.PeakFLOPS {
			t.Fatalf("%s: CDNA matrix peak %v should exceed vector peak %v", s.Name, s.MatrixPeakFLOPS, s.PeakFLOPS)
		}
	}
}

func TestPeakFLOPSFor(t *testing.T) {
	h := MustLookup("H100")
	if h.PeakFLOPSFor(false) != 66.9 {
		t.Fatalf("fp32 peak = %v", h.PeakFLOPSFor(false))
	}
	if h.PeakFLOPSFor(true) != 989 {
		t.Fatalf("fp16 tensor-core peak = %v", h.PeakFLOPSFor(true))
	}
	p4 := MustLookup("P4")
	if p4.PeakFLOPSFor(true) != p4.PeakFLOPS {
		t.Fatal("P4 has no tensor cores; fp16 should fall back to vector peak")
	}
	mi := MustLookup("MI250")
	if mi.PeakFLOPSFor(false) != 45.3 {
		t.Fatalf("MI250 matrix path = %v, want 45.3", mi.PeakFLOPSFor(false))
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	specs := All()
	if len(specs) != 12 {
		t.Fatalf("All() returned %d specs, want 12", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Fatal("All() not sorted by name")
		}
	}
}

func TestServerSpecs(t *testing.T) {
	a := MustLookupServer("A100x4-NVLink")
	if a.NumGPUs != 4 || a.LinkBWGBs != 600 {
		t.Fatalf("A100 server spec: %+v", a)
	}
	h := MustLookupServer("H100x4-DGX")
	if h.LinkBWGBs != 900 {
		t.Fatalf("H100 DGX link BW = %v, want 900", h.LinkBWGBs)
	}
	multi := MustLookupServer("H100x8-DGX")
	if multi.NodeNICGbps != 100 {
		t.Fatalf("multi-node NIC = %v Gbps, want 100", multi.NodeNICGbps)
	}
	if _, err := LookupServer("nope"); err == nil {
		t.Fatal("expected error for unknown server")
	}
}
