// Package gpu holds the device spec registry: the public, spec-sheet-level
// description of every GPU the paper trains on or forecasts for (paper
// Table 4), plus multi-GPU server configurations (Section 6.3).
//
// Only the fields here are visible to any predictor. The execution simulator
// (internal/gpusim) layers additional hidden micro-architectural parameters
// on top; keeping them out of this package enforces the paper's premise that
// forecasting must work from publicly documented features alone.
package gpu

import (
	"fmt"
	"sort"
)

// Vendor identifies the GPU manufacturer.
type Vendor string

// Known vendors.
const (
	NVIDIA Vendor = "NVIDIA"
	AMD    Vendor = "AMD"
)

// Spec is the public description of a device (paper Table 4 columns).
type Spec struct {
	Name            string
	Vendor          Vendor
	Year            int
	PeakFLOPS       float64 // FP32 TFLOPS
	MatrixPeakFLOPS float64 // dedicated matrix-path TFLOPS (AMD CDNA); 0 if none
	TensorCoreFLOPS float64 // FP16 tensor-core TFLOPS; 0 if none
	MemoryGB        float64 // HBM/GDDR capacity
	MemoryBWGBs     float64 // peak memory bandwidth, GB/s
	SMs             int     // streaming multiprocessors / compute units
	L2CacheMB       float64
}

// PeakFLOPSFor returns the matrix-path peak for the given precision,
// falling back to the vector FP32 peak when no dedicated unit exists.
func (s Spec) PeakFLOPSFor(fp16 bool) float64 {
	if fp16 && s.TensorCoreFLOPS > 0 {
		return s.TensorCoreFLOPS
	}
	if s.MatrixPeakFLOPS > 0 {
		return s.MatrixPeakFLOPS
	}
	return s.PeakFLOPS
}

// registry is keyed by canonical name.
var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("gpu: duplicate spec %q", s.Name))
	}
	registry[s.Name] = s
}

func init() {
	// NVIDIA devices (paper Table 4). TensorCoreFLOPS from vendor
	// documentation where the architecture has tensor cores.
	register(Spec{Name: "P4", Vendor: NVIDIA, Year: 2016, PeakFLOPS: 5.4, MemoryGB: 8, MemoryBWGBs: 192, SMs: 40, L2CacheMB: 2})
	register(Spec{Name: "P100", Vendor: NVIDIA, Year: 2016, PeakFLOPS: 9.5, MemoryGB: 16, MemoryBWGBs: 732, SMs: 56, L2CacheMB: 4})
	register(Spec{Name: "V100", Vendor: NVIDIA, Year: 2017, PeakFLOPS: 8.1, TensorCoreFLOPS: 112, MemoryGB: 32, MemoryBWGBs: 900, SMs: 80, L2CacheMB: 6})
	register(Spec{Name: "T4", Vendor: NVIDIA, Year: 2018, PeakFLOPS: 14.1, TensorCoreFLOPS: 65, MemoryGB: 16, MemoryBWGBs: 320, SMs: 40, L2CacheMB: 4})
	register(Spec{Name: "A100-40GB", Vendor: NVIDIA, Year: 2020, PeakFLOPS: 19.5, TensorCoreFLOPS: 312, MemoryGB: 40, MemoryBWGBs: 1555, SMs: 108, L2CacheMB: 40})
	register(Spec{Name: "A100-80GB", Vendor: NVIDIA, Year: 2020, PeakFLOPS: 19.5, TensorCoreFLOPS: 312, MemoryGB: 80, MemoryBWGBs: 1935, SMs: 108, L2CacheMB: 40})
	register(Spec{Name: "L4", Vendor: NVIDIA, Year: 2023, PeakFLOPS: 31.3, TensorCoreFLOPS: 121, MemoryGB: 24, MemoryBWGBs: 300, SMs: 60, L2CacheMB: 48})
	register(Spec{Name: "H100", Vendor: NVIDIA, Year: 2022, PeakFLOPS: 66.9, TensorCoreFLOPS: 989, MemoryGB: 80, MemoryBWGBs: 3430, SMs: 132, L2CacheMB: 50})
	// B200 is the paper's "upcoming GPU" scenario (Section 4.3 discusses
	// Blackwell): memory size, bandwidth, and peak FLOPS are public at
	// announcement; SM count and L2 size here are pre-release estimates,
	// exactly the situation NeuSight is built for.
	register(Spec{Name: "B200", Vendor: NVIDIA, Year: 2024, PeakFLOPS: 80, TensorCoreFLOPS: 2250, MemoryGB: 192, MemoryBWGBs: 8000, SMs: 160, L2CacheMB: 126})

	// AMD devices (CDNA compute units play the role of SMs; the matrix
	// path has roughly 2x the vector FP32 peak, per the CDNA2 whitepaper).
	register(Spec{Name: "MI100", Vendor: AMD, Year: 2020, PeakFLOPS: 23.1, MatrixPeakFLOPS: 46.1, MemoryGB: 32, MemoryBWGBs: 1230, SMs: 120, L2CacheMB: 8})
	register(Spec{Name: "MI210", Vendor: AMD, Year: 2021, PeakFLOPS: 22.6, MatrixPeakFLOPS: 45.3, MemoryGB: 64, MemoryBWGBs: 1640, SMs: 104, L2CacheMB: 16})
	register(Spec{Name: "MI250", Vendor: AMD, Year: 2021, PeakFLOPS: 22.6, MatrixPeakFLOPS: 45.3, MemoryGB: 64, MemoryBWGBs: 1640, SMs: 104, L2CacheMB: 16})
}

// Lookup returns the spec for name.
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("gpu: unknown device %q", name)
	}
	return s, nil
}

// MustLookup is Lookup that panics on unknown names; for test and example
// code where the name is a compile-time constant.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns every registered spec sorted by name.
func All() []Spec {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	specs := make([]Spec, len(names))
	for i, n := range names {
		specs[i] = registry[n]
	}
	return specs
}

// TrainSet returns the GPUs used to collect predictor training data (paper
// Section 6.1: 5 NVIDIA devices released 2016-2020).
func TrainSet() []Spec {
	return specsFor("P4", "P100", "V100", "T4", "A100-40GB")
}

// TestSet returns the held-out GPUs (paper: H100, L4, A100-80GB).
func TestSet() []Spec {
	return specsFor("H100", "L4", "A100-80GB")
}

// AMDTrainSet returns the AMD training devices for the Figure 9 study.
func AMDTrainSet() []Spec { return specsFor("MI100", "MI210") }

// AMDTestSet returns the held-out AMD device for the Figure 9 study.
func AMDTestSet() []Spec { return specsFor("MI250") }

func specsFor(names ...string) []Spec {
	specs := make([]Spec, len(names))
	for i, n := range names {
		specs[i] = MustLookup(n)
	}
	return specs
}
