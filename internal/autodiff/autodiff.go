// Package autodiff implements a small reverse-mode automatic-differentiation
// engine over dense matrices. It is the training substrate for the NeuSight
// utilization predictors: the per-tile latency equations (paper Eq. 5-8) are
// expressed as autodiff ops so the SMAPE loss backpropagates end-to-end
// through the performance laws into the MLP weights.
//
// A Value wraps a matrix plus an optional gradient. Operations build an
// implicit DAG; Backward performs a topological sweep accumulating gradients
// into every reachable Value created with requiresGrad set.
package autodiff

import (
	"fmt"
	"math"

	"neusight/internal/mat"
)

// Value is a node in the autodiff graph: a matrix, its gradient, and the
// closure that propagates the gradient to its parents.
type Value struct {
	Data *mat.Matrix
	Grad *mat.Matrix

	requiresGrad bool
	parents      []*Value
	backward     func()
}

// NewVariable wraps m as a trainable leaf (gradient is accumulated).
func NewVariable(m *mat.Matrix) *Value {
	return &Value{Data: m, Grad: mat.New(m.Rows, m.Cols), requiresGrad: true}
}

// NewConstant wraps m as a non-trainable leaf.
func NewConstant(m *mat.Matrix) *Value {
	return &Value{Data: m}
}

// RequiresGrad reports whether gradients flow into this Value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// ZeroGrad clears the accumulated gradient.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// newResult builds an interior node. The node requires grad iff any parent
// does; backward is only invoked in that case.
func newResult(data *mat.Matrix, parents []*Value, backward func()) *Value {
	rg := false
	for _, p := range parents {
		if p.requiresGrad {
			rg = true
			break
		}
	}
	v := &Value{Data: data, parents: parents, requiresGrad: rg}
	if rg {
		v.Grad = mat.New(data.Rows, data.Cols)
		v.backward = backward
	}
	return v
}

// Backward seeds v's gradient with ones and propagates through the graph in
// reverse topological order. v is typically a 1x1 loss.
func Backward(v *Value) {
	if !v.requiresGrad {
		panic("autodiff: Backward on a Value that does not require grad")
	}
	order := topoSort(v)
	v.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil {
			n.backward()
		}
	}
}

func topoSort(root *Value) []*Value {
	seen := make(map[*Value]bool)
	var order []*Value
	var visit func(*Value)
	visit = func(n *Value) {
		if seen[n] || !n.requiresGrad {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

func shapeCheck(a, b *Value, op string) {
	if !a.Data.SameShape(b.Data) {
		panic(fmt.Sprintf("autodiff: %s shape mismatch %dx%d vs %dx%d",
			op, a.Data.Rows, a.Data.Cols, b.Data.Rows, b.Data.Cols))
	}
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	shapeCheck(a, b, "Add")
	out := a.Data.Add(b.Data)
	var res *Value
	res = newResult(out, []*Value{a, b}, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(res.Grad)
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(res.Grad)
		}
	})
	return res
}

// Sub returns a - b (same shape).
func Sub(a, b *Value) *Value {
	shapeCheck(a, b, "Sub")
	out := a.Data.Sub(b.Data)
	var res *Value
	res = newResult(out, []*Value{a, b}, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(res.Grad)
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(res.Grad.Scale(-1))
		}
	})
	return res
}

// Mul returns the elementwise product a * b.
func Mul(a, b *Value) *Value {
	shapeCheck(a, b, "Mul")
	out := a.Data.Mul(b.Data)
	var res *Value
	res = newResult(out, []*Value{a, b}, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(res.Grad.Mul(b.Data))
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(res.Grad.Mul(a.Data))
		}
	})
	return res
}

// Div returns the elementwise quotient a / b.
func Div(a, b *Value) *Value {
	shapeCheck(a, b, "Div")
	out := a.Data.Div(b.Data)
	var res *Value
	res = newResult(out, []*Value{a, b}, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(res.Grad.Div(b.Data))
		}
		if b.requiresGrad {
			// d(a/b)/db = -a / b².
			g := res.Grad.Mul(out).Div(b.Data).Scale(-1)
			b.Grad.AddInPlace(g)
		}
	})
	return res
}

// Scale returns s * a for scalar s.
func Scale(a *Value, s float64) *Value {
	out := a.Data.Scale(s)
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		a.Grad.AddInPlace(res.Grad.Scale(s))
	})
	return res
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Value, s float64) *Value {
	out := a.Data.AddScalar(s)
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		a.Grad.AddInPlace(res.Grad)
	})
	return res
}

// MatMul returns a @ b.
func MatMul(a, b *Value) *Value {
	out := a.Data.MatMul(b.Data)
	var res *Value
	res = newResult(out, []*Value{a, b}, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(res.Grad.MatMul(b.Data.T()))
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(a.Data.T().MatMul(res.Grad))
		}
	})
	return res
}

// AddRowVector broadcasts the 1 x Cols bias b over every row of a.
func AddRowVector(a, b *Value) *Value {
	out := a.Data.AddRowVector(b.Data)
	var res *Value
	res = newResult(out, []*Value{a, b}, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(res.Grad)
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(res.Grad.ColSums())
		}
	})
	return res
}

// unary builds an elementwise op with derivative df expressed in terms of
// the input x and output y.
func unary(a *Value, f func(float64) float64, df func(x, y float64) float64) *Value {
	out := a.Data.Apply(f)
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		g := mat.New(out.Rows, out.Cols)
		for i := range g.Data {
			g.Data[i] = res.Grad.Data[i] * df(a.Data.Data[i], out.Data[i])
		}
		a.Grad.AddInPlace(g)
	})
	return res
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Value) *Value {
	return unary(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func Sigmoid(a *Value) *Value {
	return unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Value) *Value {
	return unary(a, math.Tanh, func(_, y float64) float64 { return 1 - y*y })
}

// GELU returns the tanh-approximated Gaussian error linear unit.
func GELU(a *Value) *Value {
	const c = 0.7978845608028654 // sqrt(2/pi)
	f := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	df := func(x, _ float64) float64 {
		t := math.Tanh(c * (x + 0.044715*x*x*x))
		return 0.5*(1+t) + 0.5*x*(1-t*t)*c*(1+3*0.044715*x*x)
	}
	return unary(a, f, df)
}

// Exp returns e^a elementwise.
func Exp(a *Value) *Value {
	return unary(a, math.Exp, func(_, y float64) float64 { return y })
}

// Log returns the natural log elementwise.
func Log(a *Value) *Value {
	return unary(a, math.Log, func(x, _ float64) float64 { return 1 / x })
}

// Abs returns |a| elementwise; the derivative at 0 is taken as 0.
func Abs(a *Value) *Value {
	return unary(a, math.Abs, func(x, _ float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	})
}

// ClampMin returns max(a, lo) elementwise. Where the clamp is active the
// gradient is zero, keeping the utilization floor (paper Section 4.2) from
// producing negative latencies during training.
func ClampMin(a *Value, lo float64) *Value {
	return unary(a,
		func(x float64) float64 { return math.Max(x, lo) },
		func(x, _ float64) float64 {
			if x > lo {
				return 1
			}
			return 0
		})
}

// Reciprocal returns 1/a elementwise.
func Reciprocal(a *Value) *Value {
	return unary(a,
		func(x float64) float64 { return 1 / x },
		func(_, y float64) float64 { return -y * y })
}

// SoftmaxRows applies a numerically stable softmax independently per row.
func SoftmaxRows(a *Value) *Value {
	out := mat.New(a.Data.Rows, a.Data.Cols)
	for i := 0; i < a.Data.Rows; i++ {
		row := a.Data.Row(i)
		o := out.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			o[j] = math.Exp(v - mx)
			s += o[j]
		}
		for j := range o {
			o[j] /= s
		}
	}
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		g := mat.New(out.Rows, out.Cols)
		for i := 0; i < out.Rows; i++ {
			y := out.Row(i)
			gy := res.Grad.Row(i)
			dot := 0.0
			for j := range y {
				dot += y[j] * gy[j]
			}
			gr := g.Row(i)
			for j := range y {
				gr[j] = y[j] * (gy[j] - dot)
			}
		}
		a.Grad.AddInPlace(g)
	})
	return res
}

// LayerNormRows normalizes each row to zero mean and unit variance, then
// applies the learned per-column gain and bias (both 1 x Cols).
func LayerNormRows(a, gain, bias *Value, eps float64) *Value {
	rows, cols := a.Data.Rows, a.Data.Cols
	out := mat.New(rows, cols)
	norm := mat.New(rows, cols) // pre-gain normalized values, kept for backward
	invStd := make([]float64, rows)
	for i := 0; i < rows; i++ {
		row := a.Data.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(cols)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(cols)
		inv := 1 / math.Sqrt(variance+eps)
		invStd[i] = inv
		n := norm.Row(i)
		o := out.Row(i)
		for j, v := range row {
			n[j] = (v - mean) * inv
			o[j] = n[j]*gain.Data.Data[j] + bias.Data.Data[j]
		}
	}
	var res *Value
	res = newResult(out, []*Value{a, gain, bias}, func() {
		for i := 0; i < rows; i++ {
			gy := res.Grad.Row(i)
			n := norm.Row(i)
			if gain.requiresGrad {
				gg := gain.Grad.Data
				for j := range gy {
					gg[j] += gy[j] * n[j]
				}
			}
			if bias.requiresGrad {
				bg := bias.Grad.Data
				for j := range gy {
					bg[j] += gy[j]
				}
			}
			if a.requiresGrad {
				// dL/dx through the normalization.
				c := float64(cols)
				sum1, sum2 := 0.0, 0.0
				for j := range gy {
					h := gy[j] * gain.Data.Data[j]
					sum1 += h
					sum2 += h * n[j]
				}
				ag := a.Grad.Row(i)
				for j := range gy {
					h := gy[j] * gain.Data.Data[j]
					ag[j] += invStd[i] * (h - sum1/c - n[j]*sum2/c)
				}
			}
		}
	})
	return res
}

// MeanAll reduces to a 1x1 mean of every element.
func MeanAll(a *Value) *Value {
	out := mat.FromSlice(1, 1, []float64{a.Data.Mean()})
	n := float64(len(a.Data.Data))
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		g := res.Grad.Data[0] / n
		gm := mat.New(a.Data.Rows, a.Data.Cols)
		gm.Fill(g)
		a.Grad.AddInPlace(gm)
	})
	return res
}

// SumAll reduces to a 1x1 sum of every element.
func SumAll(a *Value) *Value {
	out := mat.FromSlice(1, 1, []float64{a.Data.Sum()})
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		g := res.Grad.Data[0]
		gm := mat.New(a.Data.Rows, a.Data.Cols)
		gm.Fill(g)
		a.Grad.AddInPlace(gm)
	})
	return res
}
