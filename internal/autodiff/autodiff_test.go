package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"neusight/internal/mat"
)

// numericalGrad perturbs each element of the leaf x and measures the change
// in the scalar produced by f, giving a finite-difference gradient to compare
// against the analytic one.
func numericalGrad(t *testing.T, x *mat.Matrix, f func(*Value) *Value) *mat.Matrix {
	t.Helper()
	const h = 1e-6
	g := mat.New(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		plus := f(NewVariable(x.Clone())).Data.Data[0]
		x.Data[i] = orig - h
		minus := f(NewVariable(x.Clone())).Data.Data[0]
		x.Data[i] = orig
		g.Data[i] = (plus - minus) / (2 * h)
	}
	return g
}

// checkGrad verifies the analytic gradient of scalar-valued f at x.
func checkGrad(t *testing.T, name string, x *mat.Matrix, f func(*Value) *Value) {
	t.Helper()
	leaf := NewVariable(x.Clone())
	out := f(leaf)
	if out.Data.Rows != 1 || out.Data.Cols != 1 {
		t.Fatalf("%s: gradcheck requires scalar output, got %dx%d", name, out.Data.Rows, out.Data.Cols)
	}
	Backward(out)
	want := numericalGrad(t, x, f)
	for i := range want.Data {
		diff := math.Abs(leaf.Grad.Data[i] - want.Data[i])
		scale := math.Max(1, math.Abs(want.Data[i]))
		if diff/scale > 1e-4 {
			t.Fatalf("%s: grad[%d] = %v, numerical %v", name, i, leaf.Grad.Data[i], want.Data[i])
		}
	}
}

func randMat(seed int64, r, c int) *mat.Matrix {
	return mat.RandN(rand.New(rand.NewSource(seed)), r, c, 1)
}

func TestGradAdd(t *testing.T) {
	b := NewConstant(randMat(1, 3, 4))
	checkGrad(t, "Add", randMat(2, 3, 4), func(x *Value) *Value {
		return MeanAll(Add(x, b))
	})
}

func TestGradSubBothSides(t *testing.T) {
	a := randMat(3, 2, 3)
	b := randMat(4, 2, 3)
	// Gradient wrt the subtrahend must be negative.
	leafB := NewVariable(b.Clone())
	out := SumAll(Sub(NewConstant(a), leafB))
	Backward(out)
	for i, g := range leafB.Grad.Data {
		if g != -1 {
			t.Fatalf("grad[%d] = %v, want -1", i, g)
		}
	}
}

func TestGradMul(t *testing.T) {
	b := NewConstant(randMat(5, 3, 3))
	checkGrad(t, "Mul", randMat(6, 3, 3), func(x *Value) *Value {
		return MeanAll(Mul(x, b))
	})
}

func TestGradDivNumerator(t *testing.T) {
	b := randMat(7, 3, 3).Apply(func(v float64) float64 { return v + 3 }) // keep away from 0
	bc := NewConstant(b)
	checkGrad(t, "Div-num", randMat(8, 3, 3), func(x *Value) *Value {
		return MeanAll(Div(x, bc))
	})
}

func TestGradDivDenominator(t *testing.T) {
	a := NewConstant(randMat(9, 3, 3))
	x0 := randMat(10, 3, 3).Apply(func(v float64) float64 { return v + 4 })
	checkGrad(t, "Div-den", x0, func(x *Value) *Value {
		return MeanAll(Div(a, x))
	})
}

func TestGradMatMulBoth(t *testing.T) {
	b := NewConstant(randMat(11, 4, 5))
	checkGrad(t, "MatMul-lhs", randMat(12, 3, 4), func(x *Value) *Value {
		return MeanAll(MatMul(x, b))
	})
	a := NewConstant(randMat(13, 3, 4))
	checkGrad(t, "MatMul-rhs", randMat(14, 4, 5), func(x *Value) *Value {
		return MeanAll(MatMul(a, x))
	})
}

func TestGradAddRowVector(t *testing.T) {
	a := NewConstant(randMat(15, 6, 3))
	checkGrad(t, "AddRowVector-bias", randMat(16, 1, 3), func(x *Value) *Value {
		return MeanAll(AddRowVector(a, x))
	})
}

func TestGradUnaryOps(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Value) *Value
		init func(float64) float64
	}{
		{"ReLU", ReLU, func(v float64) float64 { return v + 0.05 }}, // avoid kink at 0
		{"Sigmoid", Sigmoid, nil},
		{"Tanh", Tanh, nil},
		{"GELU", GELU, nil},
		{"Exp", Exp, nil},
		{"Log", Log, func(v float64) float64 { return math.Abs(v) + 1 }},
		{"Abs", Abs, func(v float64) float64 { return v + 2 }}, // keep positive, away from kink
		{"Reciprocal", Reciprocal, func(v float64) float64 { return math.Abs(v) + 1 }},
	}
	for i, tc := range cases {
		x := randMat(int64(20+i), 3, 3)
		if tc.init != nil {
			x = x.Apply(tc.init)
		}
		fn := tc.fn
		checkGrad(t, tc.name, x, func(v *Value) *Value { return MeanAll(fn(v)) })
	}
}

func TestGradClampMin(t *testing.T) {
	x := mat.FromRows([][]float64{{-1, 0.5, 2}})
	leaf := NewVariable(x)
	out := SumAll(ClampMin(leaf, 0.1))
	Backward(out)
	want := []float64{0, 1, 1}
	for i, w := range want {
		if leaf.Grad.Data[i] != w {
			t.Fatalf("ClampMin grad[%d] = %v, want %v", i, leaf.Grad.Data[i], w)
		}
	}
	if out.Data.Data[0] != 0.1+0.5+2 {
		t.Fatalf("ClampMin forward = %v", out.Data.Data[0])
	}
}

func TestGradSoftmaxRows(t *testing.T) {
	// Weight the softmax output so the gradient is non-trivial.
	w := NewConstant(randMat(30, 2, 5))
	checkGrad(t, "SoftmaxRows", randMat(31, 2, 5), func(x *Value) *Value {
		return MeanAll(Mul(SoftmaxRows(x), w))
	})
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := mat.RandN(r, 1+r.Intn(5), 2+r.Intn(8), 3)
		y := SoftmaxRows(NewConstant(x)).Data
		for i := 0; i < y.Rows; i++ {
			s := 0.0
			for _, v := range y.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGradLayerNorm(t *testing.T) {
	gain := NewConstant(randMat(40, 1, 4).Apply(func(v float64) float64 { return v + 2 }))
	bias := NewConstant(randMat(41, 1, 4))
	checkGrad(t, "LayerNorm-input", randMat(42, 3, 4), func(x *Value) *Value {
		return MeanAll(LayerNormRows(x, gain, bias, 1e-5))
	})
	input := NewConstant(randMat(43, 3, 4))
	checkGrad(t, "LayerNorm-gain", randMat(44, 1, 4), func(g *Value) *Value {
		return MeanAll(LayerNormRows(input, g, bias, 1e-5))
	})
	checkGrad(t, "LayerNorm-bias", randMat(45, 1, 4), func(b *Value) *Value {
		return MeanAll(LayerNormRows(input, gain, b, 1e-5))
	})
}

func TestLayerNormStats(t *testing.T) {
	gain := NewConstant(mat.FromRows([][]float64{{1, 1, 1, 1, 1, 1}}))
	bias := NewConstant(mat.New(1, 6))
	x := randMat(50, 4, 6)
	y := LayerNormRows(NewConstant(x), gain, bias, 1e-8).Data
	for i := 0; i < y.Rows; i++ {
		m, v := 0.0, 0.0
		for _, e := range y.Row(i) {
			m += e
		}
		m /= 6
		for _, e := range y.Row(i) {
			v += (e - m) * (e - m)
		}
		v /= 6
		if math.Abs(m) > 1e-8 || math.Abs(v-1) > 1e-4 {
			t.Fatalf("row %d normalized to mean=%v var=%v", i, m, v)
		}
	}
}

func TestGradScaleAndAddScalar(t *testing.T) {
	checkGrad(t, "Scale", randMat(60, 3, 3), func(x *Value) *Value {
		return MeanAll(Scale(x, -2.5))
	})
	checkGrad(t, "AddScalar", randMat(61, 3, 3), func(x *Value) *Value {
		return MeanAll(AddScalar(x, 7))
	})
}

// TestGradComposite runs a deep composite expression resembling the NeuSight
// latency formula: pred = c * waves / clamp(sigmoid(a) - sigmoid(b)/waves).
func TestGradComposite(t *testing.T) {
	waves := NewConstant(mat.FromRows([][]float64{{2}, {5}, {9}}))
	c := NewConstant(mat.FromRows([][]float64{{1.5}, {0.7}, {3.2}}))
	checkGrad(t, "latency-formula", randMat(62, 3, 2), func(x *Value) *Value {
		// columns play the role of the two MLP heads
		alphaCol := MatMul(x, NewConstant(mat.FromRows([][]float64{{1}, {0}})))
		betaCol := MatMul(x, NewConstant(mat.FromRows([][]float64{{0}, {1}})))
		util := Sub(Sigmoid(alphaCol), Div(Sigmoid(betaCol), waves))
		util = ClampMin(util, 1e-3)
		pred := Div(Mul(c, waves), util)
		return MeanAll(pred)
	})
}

func TestGradReusedNode(t *testing.T) {
	// y = x*x + x : gradient must accumulate both paths (2x + 1).
	x := mat.FromRows([][]float64{{3}})
	leaf := NewVariable(x)
	out := SumAll(Add(Mul(leaf, leaf), leaf))
	Backward(out)
	if got := leaf.Grad.Data[0]; math.Abs(got-7) > 1e-12 {
		t.Fatalf("grad = %v, want 7 (2*3+1)", got)
	}
}

func TestConstantGetsNoGrad(t *testing.T) {
	c := NewConstant(randMat(70, 2, 2))
	v := NewVariable(randMat(71, 2, 2))
	out := MeanAll(Mul(c, v))
	Backward(out)
	if c.Grad != nil {
		t.Fatal("constant must not allocate a gradient")
	}
}

func TestBackwardOnConstantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Backward(NewConstant(randMat(72, 1, 1)))
}

func TestZeroGrad(t *testing.T) {
	v := NewVariable(randMat(73, 2, 2))
	out := MeanAll(v)
	Backward(out)
	v.ZeroGrad()
	for _, g := range v.Grad.Data {
		if g != 0 {
			t.Fatal("ZeroGrad left nonzero gradient")
		}
	}
}
