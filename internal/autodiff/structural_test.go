package autodiff

import (
	"testing"

	"neusight/internal/mat"
)

func TestTransposeOpForwardBackward(t *testing.T) {
	x := NewVariable(mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}))
	y := TransposeOp(x)
	if y.Data.Rows != 3 || y.Data.Cols != 2 || y.Data.At(2, 1) != 6 {
		t.Fatalf("transpose = %v", y.Data)
	}
	// Weighted sum so the gradient is position-dependent.
	w := NewConstant(mat.FromRows([][]float64{{1, 0}, {0, 2}, {3, 0}}))
	Backward(SumAll(Mul(y, w)))
	// dL/dx[i][j] = w[j][i].
	want := mat.FromRows([][]float64{{1, 0, 3}, {0, 2, 0}})
	if !mat.Equal(x.Grad, want, 0) {
		t.Fatalf("grad = %v, want %v", x.Grad, want)
	}
}

func TestConcatRowsForwardBackward(t *testing.T) {
	a := NewVariable(mat.FromRows([][]float64{{1, 2}}))
	b := NewVariable(mat.FromRows([][]float64{{3, 4}, {5, 6}}))
	y := ConcatRows([]*Value{a, b})
	if y.Data.Rows != 3 || y.Data.At(2, 1) != 6 {
		t.Fatalf("concat = %v", y.Data)
	}
	w := NewConstant(mat.FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}}))
	Backward(SumAll(Mul(y, w)))
	if a.Grad.At(0, 0) != 1 || b.Grad.At(0, 0) != 2 || b.Grad.At(1, 1) != 3 {
		t.Fatalf("grads: a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestConcatRowsMixedGrad(t *testing.T) {
	// Constants interleaved with variables must not receive gradients.
	c := NewConstant(mat.FromRows([][]float64{{9, 9}}))
	v := NewVariable(mat.FromRows([][]float64{{1, 1}}))
	y := ConcatRows([]*Value{c, v})
	Backward(SumAll(y))
	if c.Grad != nil {
		t.Fatal("constant got a gradient")
	}
	if v.Grad.At(0, 0) != 1 {
		t.Fatalf("variable grad = %v", v.Grad)
	}
}

func TestConcatRowsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty concat")
		}
	}()
	ConcatRows(nil)
}

func TestConcatRowsWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width mismatch")
		}
	}()
	ConcatRows([]*Value{
		NewConstant(mat.New(1, 2)),
		NewConstant(mat.New(1, 3)),
	})
}

func TestSliceColsForwardBackward(t *testing.T) {
	x := NewVariable(mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}))
	y := SliceCols(x, 1, 3)
	if y.Data.Cols != 2 || y.Data.At(0, 0) != 2 || y.Data.At(1, 1) != 6 {
		t.Fatalf("slice = %v", y.Data)
	}
	Backward(SumAll(y))
	want := mat.FromRows([][]float64{{0, 1, 1}, {0, 1, 1}})
	if !mat.Equal(x.Grad, want, 0) {
		t.Fatalf("grad = %v, want %v", x.Grad, want)
	}
}

func TestSliceColsBoundsPanics(t *testing.T) {
	x := NewConstant(mat.New(2, 3))
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for range %v", r)
				}
			}()
			SliceCols(x, r[0], r[1])
		}()
	}
}
