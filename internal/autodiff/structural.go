package autodiff

import (
	"fmt"

	"neusight/internal/mat"
)

// TransposeOp returns aᵀ with gradient flowing back transposed.
func TransposeOp(a *Value) *Value {
	out := a.Data.T()
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		a.Grad.AddInPlace(res.Grad.T())
	})
	return res
}

// ConcatRows stacks same-width Values vertically.
func ConcatRows(vs []*Value) *Value {
	if len(vs) == 0 {
		panic("autodiff: ConcatRows of nothing")
	}
	cols := vs[0].Data.Cols
	rows := 0
	for _, v := range vs {
		if v.Data.Cols != cols {
			panic(fmt.Sprintf("autodiff: ConcatRows width mismatch %d vs %d", v.Data.Cols, cols))
		}
		rows += v.Data.Rows
	}
	out := mat.New(rows, cols)
	offsets := make([]int, len(vs))
	r := 0
	for i, v := range vs {
		offsets[i] = r
		copy(out.Data[r*cols:], v.Data.Data)
		r += v.Data.Rows
	}
	parents := make([]*Value, len(vs))
	copy(parents, vs)
	var res *Value
	res = newResult(out, parents, func() {
		for i, v := range vs {
			if !v.RequiresGrad() {
				continue
			}
			start := offsets[i] * cols
			for j := range v.Grad.Data {
				v.Grad.Data[j] += res.Grad.Data[start+j]
			}
		}
	})
	return res
}

// SliceCols returns columns [lo, hi) of a as a new Value.
func SliceCols(a *Value, lo, hi int) *Value {
	if lo < 0 || hi > a.Data.Cols || lo >= hi {
		panic(fmt.Sprintf("autodiff: SliceCols [%d, %d) of width %d", lo, hi, a.Data.Cols))
	}
	w := hi - lo
	out := mat.New(a.Data.Rows, w)
	for i := 0; i < a.Data.Rows; i++ {
		copy(out.Row(i), a.Data.Row(i)[lo:hi])
	}
	var res *Value
	res = newResult(out, []*Value{a}, func() {
		for i := 0; i < a.Data.Rows; i++ {
			gRow := a.Grad.Row(i)
			oRow := res.Grad.Row(i)
			for j := 0; j < w; j++ {
				gRow[lo+j] += oRow[j]
			}
		}
	})
	return res
}
