package gpusim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

func TestDeterminism(t *testing.T) {
	s := New()
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(8, 512, 512, 512)
	if s.KernelLatency(k, g) != s.KernelLatency(k, g) {
		t.Fatal("simulator must be deterministic")
	}
}

func TestLatencyPositive(t *testing.T) {
	s := New()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gpus := gpu.All()
		g := gpus[r.Intn(len(gpus))]
		ks := []kernels.Kernel{
			kernels.NewBMM(1+r.Intn(64), 1+r.Intn(2048), 1+r.Intn(2048), 1+r.Intn(2048)),
			kernels.NewLinear(1+r.Intn(8192), 1+r.Intn(4096), 1+r.Intn(4096)),
			kernels.NewElementwise(kernels.OpEWAdd, 1+r.Intn(16384), 1+r.Intn(4096)),
			kernels.NewSoftmax(1+r.Intn(16384), 1+r.Intn(4096)),
			kernels.NewLayerNorm(1+r.Intn(16384), 1+r.Intn(4096)),
			kernels.NewEmbedding(1+r.Intn(4096), 1+r.Intn(4096), 50257),
		}
		for _, k := range ks {
			l := s.KernelLatency(k, g)
			if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRooflineBound: measured throughput can never exceed the device peak
// (the fundamental performance law the paper bounds predictions with).
func TestRooflineBound(t *testing.T) {
	s := New()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gpus := gpu.All()
		g := gpus[r.Intn(len(gpus))]
		k := kernels.NewBMM(1+r.Intn(32), 32+r.Intn(2048), 32+r.Intn(2048), 32+r.Intn(2048))
		util := s.ComputeUtilization(k, g)
		return util > 0 && util <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationRampsWithBatch mirrors paper Table 2: the (512x64)x(64x512)
// GEMM utilizes the device better as batch (and thus waves) grows.
func TestUtilizationRampsWithBatch(t *testing.T) {
	s := &Simulator{Overhead: true, Noise: false}
	g := gpu.MustLookup("H100")
	var prev float64
	for _, b := range []int{32, 64, 128, 256, 512} {
		u := s.ComputeUtilization(kernels.NewBMM(b, 512, 64, 512), g)
		if u < prev-0.02 { // allow small wave-quantization dips
			t.Fatalf("utilization dropped at batch %d: %v -> %v", b, prev, u)
		}
		prev = u
	}
	u32 := s.ComputeUtilization(kernels.NewBMM(32, 512, 64, 512), g)
	u512 := s.ComputeUtilization(kernels.NewBMM(512, 512, 64, 512), g)
	if u512 <= u32 {
		t.Fatalf("utilization should grow from batch 32 (%v) to 512 (%v)", u32, u512)
	}
}

// TestWaveScalingShape mirrors paper Fig. 5: throughput of a fixed 256³ MM
// grows with wave count and saturates.
func TestWaveScalingShape(t *testing.T) {
	s := &Simulator{Overhead: true, Noise: false}
	g := gpu.MustLookup("V100")
	tput := func(b int) float64 {
		k := kernels.NewBMM(b, 256, 256, 256)
		return s.AchievedFLOPS(k, g)
	}
	low, mid, high := tput(1), tput(40), tput(280)
	if !(low < mid && mid < high) {
		t.Fatalf("throughput not increasing: %v, %v, %v", low, mid, high)
	}
	// Saturation: the second half of the ramp gains less than the first.
	if (high-mid)/mid > (mid-low)/low {
		t.Fatalf("no saturation: gains %v then %v", (mid-low)/low, (high-mid)/mid)
	}
}

// TestNewerGPUFaster: H100 must beat V100 on a large GEMM by a factor
// reflecting its higher peak.
func TestNewerGPUFaster(t *testing.T) {
	s := New()
	k := kernels.NewBMM(16, 2048, 2048, 2048)
	v := s.KernelLatency(k, gpu.MustLookup("V100"))
	h := s.KernelLatency(k, gpu.MustLookup("H100"))
	if h >= v {
		t.Fatalf("H100 (%v ms) not faster than V100 (%v ms)", h, v)
	}
	ratio := v / h
	if ratio < 3 || ratio > 20 {
		t.Fatalf("H100/V100 speedup %vx implausible for a compute-bound GEMM", ratio)
	}
}

// TestMemoryBoundOpsScaleWithBW: elementwise add is bandwidth-bound, so the
// A100-80GB (1935 GB/s) must outpace the T4 (320 GB/s) roughly by BW ratio.
func TestMemoryBoundOpsScaleWithBW(t *testing.T) {
	s := &Simulator{Overhead: false, Noise: false}
	k := kernels.NewElementwise(kernels.OpEWAdd, 16384, 4096)
	t4 := s.KernelLatency(k, gpu.MustLookup("T4"))
	a100 := s.KernelLatency(k, gpu.MustLookup("A100-80GB"))
	ratio := t4 / a100
	bwRatio := 1935.0 / 320.0
	if ratio < bwRatio*0.5 || ratio > bwRatio*1.8 {
		t.Fatalf("EW speedup %v too far from BW ratio %v", ratio, bwRatio)
	}
}

// TestLaunchOverheadDominatesTinyKernels: for a tiny kernel the measured
// latency should be mostly overhead — the effect the paper blames for
// higher error on small models (Section 6.2).
func TestLaunchOverheadDominatesTinyKernels(t *testing.T) {
	g := gpu.MustLookup("H100")
	k := kernels.NewElementwise(kernels.OpEWAdd, 32, 32)
	with := (&Simulator{Overhead: true, Noise: false}).KernelLatency(k, g)
	without := (&Simulator{Overhead: false, Noise: false}).KernelLatency(k, g)
	if with < 2*without {
		t.Fatalf("overhead %v should dominate compute %v for tiny kernels", with, without)
	}
}

// TestFP16TensorCoreSpeedsUpGEMM: on H100 an FP16 GEMM must be much faster
// than FP32 (tensor cores), but on P4 (no tensor cores) only modestly
// faster (memory traffic halves).
func TestFP16TensorCoreSpeedsUpGEMM(t *testing.T) {
	s := &Simulator{Overhead: false, Noise: false}
	k32 := kernels.NewBMM(16, 2048, 2048, 2048)
	k16 := k32.WithDType(kernels.FP16)

	h := gpu.MustLookup("H100")
	sp := s.KernelLatency(k32, h) / s.KernelLatency(k16, h)
	if sp < 3 {
		t.Fatalf("H100 fp16 speedup %vx too low for tensor cores", sp)
	}
	p4 := gpu.MustLookup("P4")
	sp4 := s.KernelLatency(k32, p4) / s.KernelLatency(k16, p4)
	if sp4 > 2.5 {
		t.Fatalf("P4 fp16 speedup %vx too high without tensor cores", sp4)
	}
}

// TestAMDMatrixPath: CDNA devices use their matrix engines for GEMM, so
// achieved FLOPS on MI100 should exceed its vector FP32 peak fraction.
func TestAMDMatrixPath(t *testing.T) {
	s := &Simulator{Overhead: false, Noise: false}
	k := kernels.NewBMM(32, 2048, 2048, 2048)
	mi := gpu.MustLookup("MI100")
	achieved := s.AchievedFLOPS(k, mi) / 1e12
	if achieved < mi.PeakFLOPS*0.8 {
		t.Fatalf("MI100 GEMM achieves %v TFLOPS; matrix path should push past %v", achieved, mi.PeakFLOPS*0.8)
	}
	if achieved > mi.MatrixPeakFLOPS {
		t.Fatalf("achieved %v TFLOPS exceeds matrix peak %v", achieved, mi.MatrixPeakFLOPS)
	}
}

// TestLatencyMonotoneInWork: strictly more work on the same device can
// never be faster (holding the kernel family fixed).
func TestLatencyMonotoneInWork(t *testing.T) {
	s := &Simulator{Overhead: true, Noise: false}
	g := gpu.MustLookup("A100-40GB")
	prev := 0.0
	for _, n := range []int{128, 256, 512, 1024, 2048, 4096} {
		l := s.KernelLatency(kernels.NewBMM(4, n, n, n), g)
		if l <= prev {
			t.Fatalf("latency not increasing at n=%d: %v <= %v", n, l, prev)
		}
		prev = l
	}
}

func TestNetworkKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for network kernels")
		}
	}()
	New().KernelLatency(kernels.NewAllReduce(1024), gpu.MustLookup("V100"))
}

// TestNoiseSmall: the pseudo-measurement jitter stays within a few percent.
func TestNoiseSmall(t *testing.T) {
	g := gpu.MustLookup("T4")
	k := kernels.NewBMM(8, 1024, 1024, 1024)
	noisy := (&Simulator{Overhead: true, Noise: true}).KernelLatency(k, g)
	clean := (&Simulator{Overhead: true, Noise: false}).KernelLatency(k, g)
	if rel := math.Abs(noisy-clean) / clean; rel > 0.03 {
		t.Fatalf("noise %v exceeds 3%%", rel)
	}
}
