// Package gpusim is the execution substrate standing in for real GPUs: it
// produces the "measured" kernel latencies that the paper collects with
// CUDA/ROCm profiling (Section 6.1). The model executes each kernel the way
// Section 4.1 describes hardware does — tile decomposition, waves across
// SMs, dual compute/memory rooflines — and layers *hidden* per-device
// micro-architectural parameters on top: achievable-efficiency ceilings,
// wave-ramp behavior, L2-pressure penalties, kernel-launch overhead, and
// measurement noise.
//
// The hidden parameters are derived from the device generation and a hash
// of its name, and are exported to no other package. Predictors see only
// the public gpu.Spec, which recreates the paper's central difficulty:
// forecasting performance of devices you cannot run on.
package gpusim

import (
	"hash/fnv"
	"math"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// hidden carries the per-device parameters that real hardware would exhibit
// but spec sheets do not advertise.
type hidden struct {
	computeEff   float64 // fraction of peak FLOPS achievable at full occupancy
	memEff       float64 // fraction of peak memory bandwidth achievable
	rampBeta     float64 // wave-ramp shape: util ∝ waves/(waves+rampBeta)
	overheadUs   float64 // per-kernel launch + library dispatch overhead
	l2Sens       float64 // slowdown when the streaming working set spills L2
	tensorEff    float64 // efficiency of the tensor-core / matrix path
	noiseAmp     float64 // deterministic pseudo-measurement jitter amplitude
	smallGEMMEff float64 // extra library inefficiency on skinny GEMM tiles
	vectorEff    float64 // eager-mode efficiency of vector/reduction kernels
}

// hiddenFor derives the device's hidden parameters. Newer generations are
// better tuned (higher achievable fractions, lower overhead); a name hash
// adds per-device idiosyncrasy so no two devices sit exactly on a line —
// which is precisely what breaks linear extrapolation baselines.
func hiddenFor(g gpu.Spec) hidden {
	gen := float64(g.Year-2016) / 8.0 // 0 .. ~1 across the Table 4 span
	if gen < 0 {
		gen = 0
	}
	if gen > 1 {
		gen = 1
	}
	j := jitter(g.Name) // in [-1, 1], fixed per device
	h := hidden{
		computeEff:   0.68 + 0.17*gen + 0.03*j,
		memEff:       0.62 + 0.18*gen + 0.04*jitter(g.Name+"/mem"),
		rampBeta:     1.6 - 0.6*gen + 0.2*jitter(g.Name+"/ramp"),
		overheadUs:   6.5 - 2.5*gen + 0.8*jitter(g.Name+"/ovh"),
		l2Sens:       0.22 - 0.08*gen + 0.04*jitter(g.Name+"/l2"),
		tensorEff:    0.55 + 0.20*gen + 0.05*jitter(g.Name+"/tc"),
		noiseAmp:     0.02,
		smallGEMMEff: 0.80 + 0.10*gen,
		// Eager-mode vector kernels (elementwise, softmax, layernorm)
		// sustain well under half of peak bandwidth: strided access,
		// framework dispatch, and type handling — which is why they
		// contribute 10-15% of end-to-end latency (paper Table 6) and why
		// fusing them pays (paper Table 7).
		vectorEff: 0.38 + 0.08*gen + 0.03*jitter(g.Name+"/vec"),
	}
	if g.Vendor == gpu.AMD {
		// ROCm libraries trail CUDA tuning somewhat.
		h.computeEff *= 0.95
		h.memEff *= 0.96
		h.overheadUs += 1.0
	}
	return h
}

// jitter maps a string to a stable value in [-1, 1].
func jitter(s string) float64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	return 2*float64(f.Sum64()%1_000_000)/1_000_000 - 1
}

// Simulator measures kernel latencies on simulated devices. The zero value
// is not usable; construct with New.
type Simulator struct {
	// Overhead toggles per-kernel launch overhead. Real measurements
	// always include it; tests may disable it to check asymptotics.
	Overhead bool
	// Noise toggles the deterministic measurement jitter.
	Noise bool
}

// New returns a simulator configured like the paper's measurement harness
// (overhead and jitter included).
func New() *Simulator { return &Simulator{Overhead: true, Noise: true} }

// KernelLatency returns the measured latency, in milliseconds, of kernel k
// on device g.
func (s *Simulator) KernelLatency(k kernels.Kernel, g gpu.Spec) float64 {
	if k.Category() == kernels.CatNetwork {
		panic("gpusim: network kernels are simulated by internal/network")
	}
	h := hiddenFor(g)
	t := tile.Select(k, g)
	numTiles := tile.NumTiles(k.OutputDims(), t)
	waves := tile.NumWaves(numTiles, g.SMs)

	flopsPerTile := tile.FLOPsPerTile(k, t)
	memPerTile := tile.MemPerTile(k, t)

	// Per-SM resource slices (predicting at tile granularity means each
	// tile runs on one SM, paper Section 4.3).
	fp16 := k.DType == kernels.FP16
	peakFLOPs := g.PeakFLOPSFor(fp16) * 1e12 // FLOP/s
	peakBW := g.MemoryBWGBs * 1e9            // B/s
	perSMFLOPs := peakFLOPs / float64(g.SMs)
	perSMBW := peakBW / float64(g.SMs)

	// Utilization ramp: more resident waves hide more stall latency
	// (paper Fig. 5). Saturates at the hidden efficiency ceiling.
	ramp := float64(waves) / (float64(waves) + h.rampBeta)
	cEff := h.computeEff * ramp
	mEff := h.memEff * ramp

	// Library inefficiency on small/skinny GEMM tiles that cannot fill
	// the SM's MAC arrays.
	switch k.Category() {
	case kernels.CatBMM, kernels.CatLinear:
		if td := t.Dims[len(t.Dims)-2] * t.Dims[len(t.Dims)-1]; td < 128*128 {
			cEff *= h.smallGEMMEff
		}
		if fp16 && g.TensorCoreFLOPS > 0 {
			cEff *= h.tensorEff / h.computeEff // tensor path has its own ceiling
		}
		if g.Vendor == gpu.AMD && g.MatrixPeakFLOPS > 0 {
			cEff *= h.tensorEff / h.computeEff
		}
	default:
		// Vector and reduction kernels run at eager-mode efficiency.
		mEff *= h.vectorEff / h.memEff
	}

	// L2 pressure: when one wave's streaming footprint exceeds the L2
	// slice, effective bandwidth degrades toward DRAM behavior.
	l2Bytes := g.L2CacheMB * 1e6
	footprint := memPerTile * float64(min(numTiles, g.SMs))
	if footprint > l2Bytes {
		spill := math.Min(1, (footprint-l2Bytes)/footprint)
		mEff *= 1 - h.l2Sens*spill
	}

	// Dual roofline per tile: the slower of the compute and memory paths
	// bounds the tile (paper Eq. 1 recast per-SM).
	computeTime := 0.0
	if flopsPerTile > 0 {
		computeTime = flopsPerTile / (perSMFLOPs * cEff)
	}
	memTime := memPerTile / (perSMBW * mEff)
	tileTime := math.Max(computeTime, memTime)

	// Waves execute back to back (paper Eq. 4); partially-overlapped
	// inter-wave scheduling shaves a small fraction on modern parts.
	overlap := 1 - 0.04*math.Min(1, float64(g.Year-2016)/6)
	latency := tileTime * float64(waves) * overlap

	if s.Overhead {
		latency += h.overheadUs * 1e-6
	}
	if s.Noise {
		latency *= 1 + h.noiseAmp*jitter(k.Label()+"@"+g.Name)
	}
	return latency * 1e3 // ms
}

// AchievedFLOPS returns the sustained FLOP/s of k on g implied by the
// measured latency.
func (s *Simulator) AchievedFLOPS(k kernels.Kernel, g gpu.Spec) float64 {
	lat := s.KernelLatency(k, g) / 1e3
	if lat == 0 {
		return 0
	}
	return k.FLOPs() / lat
}

// UtilizationFromLatency converts an already-measured latency (ms) of k on
// g into achieved FLOPS as a fraction of the device's peak for the
// kernel's precision — the single definition of the paper Table 2 metric,
// shared by ComputeUtilization and callers that hold a latency and must
// not pay a second simulation.
func UtilizationFromLatency(k kernels.Kernel, g gpu.Spec, latencyMs float64) float64 {
	if latencyMs <= 0 {
		return 0
	}
	achieved := k.FLOPs() / (latencyMs / 1e3)
	return achieved / (g.PeakFLOPSFor(k.DType == kernels.FP16) * 1e12)
}

// ComputeUtilization returns achieved FLOPS as a fraction of the device's
// peak for the kernel's precision (paper Table 2's metric).
func (s *Simulator) ComputeUtilization(k kernels.Kernel, g gpu.Spec) float64 {
	return UtilizationFromLatency(k, g, s.KernelLatency(k, g))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
