// Package loss provides the training losses used by the predictors: MSE for
// generic regression, MAPE (the Habitat baseline's loss), and SMAPE (the
// NeuSight loss, following Tofallis 2015 as cited in paper Section 6.1).
// All functions compose autodiff ops so gradients flow to the predictions.
package loss

import ad "neusight/internal/autodiff"

// eps keeps the relative losses finite when targets approach zero.
const eps = 1e-9

// MSE returns mean((pred - target)²) as a 1x1 Value.
func MSE(pred, target *ad.Value) *ad.Value {
	d := ad.Sub(pred, target)
	return ad.MeanAll(ad.Mul(d, d))
}

// MAPE returns mean(|pred - target| / |target|) as a 1x1 Value.
func MAPE(pred, target *ad.Value) *ad.Value {
	d := ad.Abs(ad.Sub(pred, target))
	den := ad.AddScalar(ad.Abs(target), eps)
	return ad.MeanAll(ad.Div(d, den))
}

// SMAPE returns the symmetric mean absolute percentage error,
// mean(|pred - target| / ((|pred| + |target|)/2)), as a 1x1 Value.
func SMAPE(pred, target *ad.Value) *ad.Value {
	d := ad.Abs(ad.Sub(pred, target))
	den := ad.Scale(ad.Add(ad.Abs(pred), ad.Abs(target)), 0.5)
	return ad.MeanAll(ad.Div(d, ad.AddScalar(den, eps)))
}
