package loss

import (
	"math"
	"testing"

	ad "neusight/internal/autodiff"
	"neusight/internal/mat"
)

func vals(pred, target []float64) (*ad.Value, *ad.Value) {
	return ad.NewVariable(mat.FromSlice(len(pred), 1, pred)),
		ad.NewConstant(mat.FromSlice(len(target), 1, target))
}

func TestMSE(t *testing.T) {
	p, y := vals([]float64{1, 2}, []float64{3, 2})
	l := MSE(p, y)
	if got := l.Data.Data[0]; math.Abs(got-2) > 1e-12 { // ((−2)²+0)/2
		t.Fatalf("MSE = %v, want 2", got)
	}
	ad.Backward(l)
	// d/dp mean((p-y)²) = 2(p-y)/n
	if g := p.Grad.Data[0]; math.Abs(g-(-2)) > 1e-12 {
		t.Fatalf("MSE grad = %v, want -2", g)
	}
}

func TestMAPE(t *testing.T) {
	p, y := vals([]float64{110, 90}, []float64{100, 100})
	l := MAPE(p, y)
	if got := l.Data.Data[0]; math.Abs(got-0.1) > 1e-6 {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
}

func TestSMAPEPerfectPrediction(t *testing.T) {
	p, y := vals([]float64{5, 7, 9}, []float64{5, 7, 9})
	if got := SMAPE(p, y).Data.Data[0]; got > 1e-9 {
		t.Fatalf("SMAPE of perfect prediction = %v, want ~0", got)
	}
}

func TestSMAPESymmetry(t *testing.T) {
	// SMAPE(a, b) == SMAPE(b, a) by construction.
	a, b := []float64{3, 8}, []float64{5, 6}
	p1, y1 := vals(a, b)
	p2, y2 := vals(b, a)
	l1 := SMAPE(p1, y1).Data.Data[0]
	l2 := SMAPE(p2, y2).Data.Data[0]
	if math.Abs(l1-l2) > 1e-12 {
		t.Fatalf("SMAPE asymmetric: %v vs %v", l1, l2)
	}
}

func TestSMAPEBounded(t *testing.T) {
	// SMAPE is bounded by 2 even for wild mispredictions.
	p, y := vals([]float64{1e9, 1e-9}, []float64{1e-9, 1e9})
	if got := SMAPE(p, y).Data.Data[0]; got > 2+1e-9 {
		t.Fatalf("SMAPE = %v, exceeds bound 2", got)
	}
}

func TestLossesBackpropagate(t *testing.T) {
	for name, fn := range map[string]func(p, y *ad.Value) *ad.Value{
		"MSE": MSE, "MAPE": MAPE, "SMAPE": SMAPE,
	} {
		p, y := vals([]float64{2, 4}, []float64{3, 3})
		l := fn(p, y)
		ad.Backward(l)
		nonzero := false
		for _, g := range p.Grad.Data {
			if g != 0 {
				nonzero = true
			}
			if math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatalf("%s produced bad grad %v", name, g)
			}
		}
		if !nonzero {
			t.Fatalf("%s produced zero gradient", name)
		}
	}
}
