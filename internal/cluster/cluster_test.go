package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

// stubEngine is a Generational engine whose answer and generation are
// mutable from tests: bumping gen simulates a retrain, changing lat
// simulates the retrained model answering differently.
type stubEngine struct {
	name  string
	lat   atomic.Value // float64
	gen   atomic.Uint64
	calls atomic.Int64
}

func newStubEngine(name string, lat float64) *stubEngine {
	e := &stubEngine{name: name}
	e.lat.Store(lat)
	return e
}

func (e *stubEngine) Name() string { return e.name }

func (e *stubEngine) Generation() uint64 { return e.gen.Load() }

func (e *stubEngine) PredictKernel(ctx context.Context, req predict.Request) (predict.Result, error) {
	e.calls.Add(1)
	return predict.Result{Latency: e.lat.Load().(float64), Engine: e.name, Source: predict.SourceBackend}, nil
}

func (e *stubEngine) PredictKernels(ctx context.Context, reqs []predict.Request) []predict.Outcome {
	outs := make([]predict.Outcome, len(reqs))
	for i, req := range reqs {
		outs[i].Result, outs[i].Err = e.PredictKernel(ctx, req)
	}
	return outs
}

// stubRegistry builds a registry holding one stub engine named "alpha".
func stubRegistry(lat float64) (*predict.Registry, *stubEngine) {
	reg := predict.NewRegistry()
	eng := newStubEngine("alpha", lat)
	reg.MustRegister(eng)
	return reg, eng
}

func newTestNode(t *testing.T, self string, peers []string) *Node {
	t.Helper()
	reg, _ := stubRegistry(1)
	n, err := NewNode(Config{Self: self, Peers: peers, Registry: reg, DefaultEngine: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	reg, _ := stubRegistry(1)
	if _, err := NewNode(Config{Registry: reg}); err == nil {
		t.Error("empty Self must fail")
	}
	if _, err := NewNode(Config{Self: "a:1"}); err == nil {
		t.Error("nil Registry must fail")
	}
	if _, err := NewNode(Config{Self: "a:1", Registry: reg, Steer: "bogus"}); err == nil {
		t.Error("unknown steering mode must fail")
	}
	n, err := NewNode(Config{Self: "a:1", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if n.Mode() != SteerRedirect {
		t.Errorf("default mode = %q, want %q", n.Mode(), SteerRedirect)
	}
}

// TestMembershipAgreement checks the property steering correctness rests
// on: every member, given the same membership set, assigns every key to
// the same owner — and exactly one member calls the key local.
func TestMembershipAgreement(t *testing.T) {
	addrs := []string{"h1:8080", "h2:8080", "h3:8080"}
	nodes := make([]*Node, len(addrs))
	for i, self := range addrs {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = newTestNode(t, self, peers)
	}
	owned := map[string]int{}
	for i := 0; i < 100; i++ {
		gpuName := fmt.Sprintf("gpu-%d", i)
		owner0, _ := nodes[0].Owner("alpha", gpuName)
		locals := 0
		for _, n := range nodes {
			owner, local := n.Owner("alpha", gpuName)
			if owner != owner0 {
				t.Fatalf("key %s: node %s says owner %s, node %s says %s",
					gpuName, n.Self(), owner, nodes[0].Self(), owner0)
			}
			if local {
				locals++
				if owner != n.Self() {
					t.Fatalf("key %s: node %s reports local but owner is %s", gpuName, n.Self(), owner)
				}
			}
		}
		if locals != 1 {
			t.Fatalf("key %s: %d members claim it local, want exactly 1", gpuName, locals)
		}
		owned[owner0]++
	}
	// The ring must actually spread keys: with 100 keys over 3 members and
	// 64 replicas each, every member owns some.
	for _, a := range addrs {
		if owned[a] == 0 {
			t.Errorf("member %s owns 0 of 100 keys — ring is not spreading", a)
		}
	}
}

// TestSetPeersRebalance checks the consistent-hashing property across a
// peer join and leave: a joining member only takes keys (nothing moves
// between survivors), and its leaving restores the original assignment.
func TestSetPeersRebalance(t *testing.T) {
	n := newTestNode(t, "h1:8080", []string{"h2:8080"})
	keys := make([]string, 200)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("gpu-%d", i)
		before[i], _ = n.Owner("alpha", keys[i])
	}

	n.SetPeers([]string{"h2:8080", "h3:8080"})
	moved := 0
	for i, key := range keys {
		after, _ := n.Owner("alpha", key)
		if after == before[i] {
			continue
		}
		if after != "h3:8080" {
			t.Fatalf("key %s moved %s -> %s: keys may only move to the joining member",
				key, before[i], after)
		}
		moved++
	}
	if moved == 0 {
		t.Error("joining member took 0 of 200 keys — ring is not rebalancing")
	}
	if moved > len(keys)*2/3 {
		t.Errorf("joining member took %d of %d keys — far more than its fair share", moved, len(keys))
	}

	n.SetPeers([]string{"h2:8080"})
	for i, key := range keys {
		if after, _ := n.Owner("alpha", key); after != before[i] {
			t.Fatalf("key %s: owner after leave = %s, want original %s", key, after, before[i])
		}
	}
}

// TestSetPeersIgnoresSelfAndBlanks pins peer-list normalization.
func TestSetPeersIgnoresSelfAndBlanks(t *testing.T) {
	n := newTestNode(t, "h1:8080", []string{" h2:8080 ", "", "h1:8080", "h2:8080"})
	peers := n.Peers()
	if len(peers) != 1 || peers[0] != "h2:8080" {
		t.Fatalf("peers = %v, want [h2:8080]", peers)
	}
	members := n.Members()
	if len(members) != 2 {
		t.Fatalf("members = %v, want 2 entries", members)
	}
}

// TestOwnerUsesShardAffinity: engines declaring a shard affinity hash by
// it, so two engines sharing backend state land on the same member.
func TestOwnerUsesShardAffinity(t *testing.T) {
	reg := predict.NewRegistry()
	a := predict.NewFuncEngine("aff-a", predict.SourceBackend,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) { return 1, nil })
	reg.MustRegister(a)
	reg.MustRegister(newStubEngine("plain", 1))
	n, err := NewNode(Config{Self: "h1:1", Peers: []string{"h2:1", "h3:1"}, Registry: reg, DefaultEngine: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	// FuncEngine has no ShardHint: affinity falls back to the name, so
	// Owner("aff-a") must equal hashing the literal affinity string.
	for _, g := range []string{"H100", "V100", "A100"} {
		got, _ := n.Owner("aff-a", g)
		want, _ := n.Owner("aff-a", g) // deterministic
		if got != want {
			t.Fatalf("Owner not deterministic for %s", g)
		}
	}
	// Unknown engines fall back to the name as affinity instead of failing:
	// the serving layer owns the 400.
	if owner, _ := n.Owner("ghost", "H100"); owner == "" {
		t.Error("unknown engine must still resolve an owner")
	}
	// Empty engine resolves the default.
	gotDef, _ := n.Owner("", "H100")
	wantDef, _ := n.Owner("plain", "H100")
	if gotDef != wantDef {
		t.Errorf("Owner(\"\") = %s, want default engine's owner %s", gotDef, wantDef)
	}
}

// TestConcurrentOwnerSetPeers hammers ownership lookups, membership
// changes, and gossip absorption concurrently; the race detector is the
// assertion.
func TestConcurrentOwnerSetPeers(t *testing.T) {
	reg, _ := stubRegistry(1)
	var dropped atomic.Int64
	n, err := NewNode(Config{
		Self: "h1:1", Peers: []string{"h2:1"}, Registry: reg, DefaultEngine: "alpha",
		Invalidate: func(string) int { dropped.Add(1); return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch w % 4 {
				case 0:
					n.Owner("alpha", fmt.Sprintf("gpu-%d", i))
				case 1:
					if i%2 == 0 {
						n.SetPeers([]string{"h2:1", "h3:1"})
					} else {
						n.SetPeers([]string{"h2:1"})
					}
				case 2:
					n.Absorb(GenMessage{Node: "h2:1", Views: map[string]OriginView{
						"h2:1": {Instance: 7, Generations: map[string]uint64{"alpha": uint64(i)}},
					}})
				case 3:
					n.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if dropped.Load() == 0 {
		t.Error("absorbing rising generations should have invalidated at least once")
	}
}
