package cluster

import (
	"crypto/subtle"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"

	"neusight/internal/gpu"
)

// Cluster control routes. They live under /v2 because they are part of the
// versioned API surface (and the docs gate in scripts/check.sh derives the
// route list from these literals — new routes must be documented in
// docs/API.md).
const (
	// RouteGenerations is the gossip endpoint: GET returns this node's
	// cluster-wide generation view, POST absorbs a peer's push.
	RouteGenerations = "/v2/cluster/generations"
	// RouteRing is the assignment endpoint: GET returns the member set,
	// per-member health state, and the (engine, GPU) -> primary/replica
	// assignment.
	RouteRing = "/v2/cluster/ring"
	// RouteHealth is the failure-detector endpoint: GET returns every
	// member's alive/suspect/dead state and the health counters.
	RouteHealth = "/v2/cluster/health"
	// RouteJoin is the membership endpoint: POST admits the announcing
	// process into the cluster and returns the current membership and
	// generation views.
	RouteJoin = "/v2/cluster/join"
	// RouteTrace is the warmup endpoint: GET returns this member's
	// recorded workload trace (JSONL), which joining members replay to
	// warm the shards they acquire.
	RouteTrace = "/v2/cluster/trace"
	// RoutePlanEval (plan.go) is the planner fan-out endpoint: POST
	// evaluates a batch of plan configurations on this member.
)

// clusterRoutePrefix gates which paths require the control-plane token.
const clusterRoutePrefix = "/v2/cluster/"

// maxControlBody caps gossip request/response bodies: a generation map
// over a few dozen engines is a few hundred bytes, so anything beyond a
// handful of KiB is garbage.
const maxControlBody = 64 << 10

// maxTraceBody caps how much of a peer's trace a joiner will read: traces
// are bounded at the recorder (maxTraceKeys distinct keys), but a
// misbehaving peer must not be able to balloon a joiner's memory.
const maxTraceBody = 16 << 20

// authorized reports whether r may touch the control plane: always, when
// no token is configured; otherwise only with the exact bearer token
// (constant-time compared).
func (n *Node) authorized(r *http.Request) bool {
	if n.token == "" {
		return true
	}
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(n.token)) == 1
}

// setAuth attaches the configured control-plane bearer token to an
// outbound request; a no-op without one.
func (n *Node) setAuth(req *http.Request) {
	if n.token != "" {
		req.Header.Set("Authorization", "Bearer "+n.token)
	}
}

// GenerationsResponse is the JSON reply of GET /v2/cluster/generations:
// the node's view plus the gossip counters.
type GenerationsResponse struct {
	GenMessage
	Gossip GossipStats `json:"gossip"`
}

// RingAssignment is one (engine, GPU) key's owners on GET /v2/cluster/ring.
type RingAssignment struct {
	Engine string `json:"engine"`
	GPU    string `json:"gpu"`
	// Owner is the primary; Replica (absent on single-member rings) takes
	// over when the primary is unreachable or dead.
	Owner   string `json:"owner"`
	Replica string `json:"replica,omitempty"`
	Local   bool   `json:"local"`
}

// RingResponse is the JSON reply of GET /v2/cluster/ring: the membership
// with per-member failure-detector state, the steering mode and counters,
// and the full assignment of every registered (engine, GPU) pair to its
// primary and replica members. Members lists only non-dead members — the
// addresses actually on the ring; MemberStates lists everyone.
type RingResponse struct {
	Self         string           `json:"self"`
	Mode         string           `json:"mode"`
	Members      []string         `json:"members"`
	MemberStates []MemberStatus   `json:"member_states"`
	Steering     SteerStats       `json:"steering"`
	Assignments  []RingAssignment `json:"assignments"`
}

// handleGenerations serves the gossip endpoint.
func (n *Node) handleGenerations(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, GenerationsResponse{GenMessage: n.Snapshot(), Gossip: n.GossipStats()})
	case http.MethodPost:
		var msg GenMessage
		if err := json.NewDecoder(io.LimitReader(r.Body, maxControlBody)).Decode(&msg); err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		invalidated := n.Absorb(msg)
		writeJSON(w, http.StatusOK, map[string]int{"invalidated": invalidated})
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleRing serves the assignment endpoint: every registered engine
// crossed with every registered GPU, each resolved to its primary and
// replica owners under the current (dead-members-evicted) ring.
func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	members := []string{n.self}
	for _, peer := range n.Peers() {
		if !n.memberDead(peer) {
			members = append(members, peer)
		}
	}
	sort.Strings(members)
	resp := RingResponse{
		Self:         n.self,
		Mode:         n.steerMode,
		Members:      members,
		MemberStates: n.MemberStates(),
		Steering:     n.SteerStats(),
	}
	for _, engine := range n.reg.List() {
		for _, g := range gpu.All() {
			primary, replica := n.Owners(engine, g.Name)
			resp.Assignments = append(resp.Assignments, RingAssignment{
				Engine: engine, GPU: g.Name, Owner: primary, Replica: replica, Local: primary == n.self,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJoin admits a joining process: its address enters the membership
// as alive (announced onward by the next gossip round), and the reply
// hands it this member's membership and generation views so it starts
// from the cluster's current state.
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var jr JoinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxControlBody)).Decode(&jr); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if jr.Addr == "" {
		writeJSONError(w, http.StatusBadRequest, "join request must carry addr")
		return
	}
	if jr.Addr != n.self {
		n.AddMember(jr.Addr, jr.Instance)
		// The joiner just spoke to us: that is a successful contact,
		// readmitting it if it was a dead member restarting.
		n.markContact(jr.Addr, true)
	}
	n.joinsAccepted.Add(1)
	snap := n.Snapshot()
	writeJSON(w, http.StatusOK, JoinResponse{Members: snap.Members, Views: snap.Views})
}

// handleTrace serves this member's recorded workload trace for join
// warmup. No recorder (or an empty one) is an empty 200 — joining next to
// a trace-less member is fine, just cold.
func (n *Node) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var data []byte
	if n.traceDump != nil {
		data = n.traceDump()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// serveControl dispatches one /v2/cluster/* request through the auth
// gate. Unknown cluster paths 404 here rather than falling through to the
// serving layer, so the token boundary covers the whole prefix.
func (n *Node) serveControl(w http.ResponseWriter, r *http.Request) {
	if !n.authorized(r) {
		n.authRejected.Add(1)
		writeJSONError(w, http.StatusUnauthorized, "cluster: missing or invalid bearer token")
		return
	}
	switch r.URL.Path {
	case RouteGenerations:
		n.handleGenerations(w, r)
	case RouteRing:
		n.handleRing(w, r)
	case RouteHealth:
		n.handleHealth(w, r)
	case RouteJoin:
		n.handleJoin(w, r)
	case RouteTrace:
		n.handleTrace(w, r)
	case RoutePlanEval:
		n.handlePlanEval(w, r)
	default:
		writeJSONError(w, http.StatusNotFound, "unknown cluster route")
	}
}

// Handler wraps the serving API with the cluster layer: the control
// routes are served here (behind the token, when configured), prediction
// POSTs are steered to their shard owner, /metrics gets the cluster
// families appended, and everything else passes through untouched.
func (n *Node) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, clusterRoutePrefix) {
			n.serveControl(w, r)
			return
		}
		if r.URL.Path == "/metrics" {
			// The serving layer writes its families, then the cluster
			// families are appended — text exposition format concatenates.
			next.ServeHTTP(w, r)
			n.WriteMetrics(w)
			return
		}
		if r.Method == http.MethodPost && isPredictPath(r.URL.Path) {
			n.steer(w, r, next)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ControlHandler serves only the cluster control routes — for a
// -cluster-listen deployment that keeps the peer plane on an internal
// port while the public API listener omits nothing (the main Handler
// serves the control routes too).
func (n *Node) ControlHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, clusterRoutePrefix) {
			writeJSONError(w, http.StatusNotFound, "unknown cluster route")
			return
		}
		n.serveControl(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
