package cluster

import (
	"encoding/json"
	"io"
	"net/http"

	"neusight/internal/gpu"
)

// Cluster control routes. They live under /v2 because they are part of the
// versioned API surface (and the docs gate in scripts/check.sh derives the
// route list from these literals — new routes must be documented in
// docs/API.md).
const (
	// RouteGenerations is the gossip endpoint: GET returns this node's
	// cluster-wide generation view, POST absorbs a peer's push.
	RouteGenerations = "/v2/cluster/generations"
	// RouteRing is the membership endpoint: GET returns the member set and
	// the (engine, GPU) -> owner assignment.
	RouteRing = "/v2/cluster/ring"
)

// maxControlBody caps gossip request/response bodies: a generation map
// over a few dozen engines is a few hundred bytes, so anything beyond a
// handful of KiB is garbage.
const maxControlBody = 64 << 10

// GenerationsResponse is the JSON reply of GET /v2/cluster/generations:
// the node's view plus the gossip counters.
type GenerationsResponse struct {
	GenMessage
	Gossip GossipStats `json:"gossip"`
}

// RingAssignment is one (engine, GPU) key's owner on GET /v2/cluster/ring.
type RingAssignment struct {
	Engine string `json:"engine"`
	GPU    string `json:"gpu"`
	Owner  string `json:"owner"`
	Local  bool   `json:"local"`
}

// RingResponse is the JSON reply of GET /v2/cluster/ring: the membership,
// the steering mode and counters, and the full assignment of every
// registered (engine, GPU) pair to its owning member.
type RingResponse struct {
	Self        string           `json:"self"`
	Mode        string           `json:"mode"`
	Members     []string         `json:"members"`
	Steering    SteerStats       `json:"steering"`
	Assignments []RingAssignment `json:"assignments"`
}

// handleGenerations serves the gossip endpoint.
func (n *Node) handleGenerations(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, GenerationsResponse{GenMessage: n.Snapshot(), Gossip: n.GossipStats()})
	case http.MethodPost:
		var msg GenMessage
		if err := json.NewDecoder(io.LimitReader(r.Body, maxControlBody)).Decode(&msg); err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		invalidated := n.Absorb(msg)
		writeJSON(w, http.StatusOK, map[string]int{"invalidated": invalidated})
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleRing serves the membership endpoint: every registered engine
// crossed with every registered GPU, each resolved to its owner.
func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := RingResponse{Self: n.self, Mode: n.steerMode, Members: n.Members(), Steering: n.SteerStats()}
	for _, engine := range n.reg.List() {
		for _, g := range gpu.All() {
			owner, local := n.Owner(engine, g.Name)
			resp.Assignments = append(resp.Assignments, RingAssignment{
				Engine: engine, GPU: g.Name, Owner: owner, Local: local,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Handler wraps the serving API with the cluster layer: the control
// routes are served here, prediction POSTs are steered to their shard
// owner, /metrics gets the cluster families appended, and everything else
// passes through untouched.
func (n *Node) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case RouteGenerations:
			n.handleGenerations(w, r)
			return
		case RouteRing:
			n.handleRing(w, r)
			return
		case "/metrics":
			// The serving layer writes its families, then the cluster
			// families are appended — text exposition format concatenates.
			next.ServeHTTP(w, r)
			n.WriteMetrics(w)
			return
		}
		if r.Method == http.MethodPost && isPredictPath(r.URL.Path) {
			n.steer(w, r, next)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ControlHandler serves only the cluster control routes — for a
// -cluster-listen deployment that keeps the peer plane on an internal
// port while the public API listener omits nothing (the main Handler
// serves the control routes too).
func (n *Node) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(RouteGenerations, n.handleGenerations)
	mux.HandleFunc(RouteRing, n.handleRing)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
