package cluster

import (
	"fmt"
	"io"
)

// clusterMetric is one exported sample in Prometheus text format.
type clusterMetric struct {
	name  string
	help  string
	typ   string
	value float64
}

// WriteMetrics renders the cluster counters in Prometheus text exposition
// format. The serving layer's /metrics handler output is a concatenation
// of families, so the cluster families are simply appended after it (see
// Handler).
func (n *Node) WriteMetrics(w io.Writer) error {
	gs := n.GossipStats()
	ss := n.SteerStats()
	hs := n.HealthStats()
	var suspect, dead float64
	for _, ms := range n.MemberStates() {
		switch ms.State {
		case MemberSuspect:
			suspect++
		case MemberDead:
			dead++
		}
	}
	for _, m := range []clusterMetric{
		{"neusight_cluster_peers", "Peer processes this node gossips with.", "gauge", float64(len(n.Peers()))},
		{"neusight_cluster_members_suspect", "Members currently suspected by the failure detector.", "gauge", suspect},
		{"neusight_cluster_members_dead", "Members currently declared dead (evicted from the ring).", "gauge", dead},
		{"neusight_cluster_steered_total", "Prediction requests steered to their shard owner (redirected plus proxied).", "counter", float64(ss.Steered)},
		{"neusight_cluster_redirected_total", "Prediction requests answered with a 307 redirect to the shard owner.", "counter", float64(ss.Redirected)},
		{"neusight_cluster_proxied_total", "Prediction requests transparently proxied to the shard owner.", "counter", float64(ss.Proxied)},
		{"neusight_cluster_misrouted_total", "Steered requests arriving at a non-owner (ring disagreement); served locally.", "counter", float64(ss.Misrouted)},
		{"neusight_cluster_proxy_failures_total", "Proxy attempts that failed to reach the target (non-timeout).", "counter", float64(ss.ProxyFailures)},
		{"neusight_cluster_proxy_timeouts_total", "Proxy attempts that hit the per-attempt deadline.", "counter", float64(ss.ProxyTimeouts)},
		{"neusight_cluster_failed_over_total", "Proxied requests retried against the replica after a failed primary attempt.", "counter", float64(ss.FailedOver)},
		{"neusight_cluster_relay_errors_total", "Proxied responses truncated while relaying the body to the client.", "counter", float64(ss.RelayErrors)},
		{"neusight_cluster_probes_total", "Health probes issued by the background sweeper.", "counter", float64(hs.Probes)},
		{"neusight_cluster_probe_failures_total", "Health probes that failed (no 200 within the deadline).", "counter", float64(hs.ProbeFailures)},
		{"neusight_cluster_evictions_total", "Members declared dead and evicted from the ring.", "counter", float64(hs.Evictions)},
		{"neusight_cluster_readmissions_total", "Dead members readmitted after a successful contact.", "counter", float64(hs.Readmissions)},
		{"neusight_cluster_joins_accepted_total", "Join requests admitted on /v2/cluster/join.", "counter", float64(hs.JoinsAccepted)},
		{"neusight_cluster_auth_rejected_total", "Control-plane requests rejected for a missing or invalid bearer token.", "counter", float64(hs.AuthRejected)},
		{"neusight_cluster_gossip_pushes_total", "Generation snapshots pushed to peers.", "counter", float64(gs.Pushes)},
		{"neusight_cluster_gossip_push_failures_total", "Generation pushes that failed to reach a peer.", "counter", float64(gs.PushFailures)},
		{"neusight_cluster_gossip_polls_total", "Peer generation views polled.", "counter", float64(gs.Polls)},
		{"neusight_cluster_gossip_poll_failures_total", "Peer polls that failed.", "counter", float64(gs.PollFailures)},
		{"neusight_cluster_gossip_absorbed_total", "Peer generation views absorbed (pushes received plus poll replies).", "counter", float64(gs.Absorbed)},
		{"neusight_cluster_invalidations_total", "Engines whose cached forecasts were dropped on a newer peer generation.", "counter", float64(gs.Invalidations)},
		{"neusight_cluster_invalidated_entries_total", "Cache entries dropped by cluster generation invalidations.", "counter", float64(gs.DroppedEntries)},
		{"neusight_cluster_plan_evals_total", "Plan configuration batches evaluated here for a peer's plan job.", "counter", float64(n.planEvalsServed.Load())},
		{"neusight_cluster_plan_eval_cells_total", "Plan configurations evaluated here for a peer's plan job.", "counter", float64(n.planEvalCells.Load())},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}
