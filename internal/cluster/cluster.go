// Package cluster makes N `neusight serve` processes behave as one
// coherent service. Each process runs a Node — a thin peer layer over the
// serving stack — that adds the two mechanisms a multi-process deployment
// needs beyond what a single process provides:
//
//   - Generation gossip (gossip.go): a process that retrains an engine (or
//     grows its tile database) bumps that engine's state generation, which
//     invalidates its *own* caches automatically — but a peer process
//     serving the same model from its own cache has no idea. Nodes publish
//     engine-generation changes to their peers over a small HTTP push/poll
//     protocol (POST/GET /v2/cluster/generations); a node learning of a
//     generation newer than the one its local engine reports drops that
//     engine's cached forecasts, so no replica keeps serving a stale
//     prediction after a retrain anywhere in the cluster.
//
//   - Shard-aware steering (steer.go): the consistent-hash ring that
//     assigns (engine, GPU) keys to in-process shards is extended across
//     the cluster: a membership ring over the member addresses assigns
//     every key one owning process. A prediction request landing on the
//     wrong process is steered to the owner — a 307 redirect by default,
//     or a transparent proxy in proxy mode — so each key's cache,
//     coalescing table, and trace profile concentrate on one process
//     instead of being duplicated N ways. GET /v2/cluster/ring exposes the
//     assignment; steered/redirected/proxied/mis-routed counters are
//     exported to Prometheus.
//
// The Node deliberately does not import the serving layer: cache
// invalidation is a callback (Config.Invalidate), and steering wraps any
// http.Handler. cmd/neusight wires the two together.
package cluster

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neusight/internal/predict"
)

// Steering modes for Config.Steer.
const (
	// SteerRedirect answers requests owned by a peer with a 307 redirect
	// to the owner — the client re-sends the request there. The default:
	// no double proxying, and clients learn the topology.
	SteerRedirect = "redirect"
	// SteerProxy forwards requests owned by a peer to the owner and relays
	// the response — transparent to clients that cannot follow redirects.
	SteerProxy = "proxy"
	// SteerOff serves every request locally. Gossip still runs.
	SteerOff = "off"
)

// DefaultPollInterval is the gossip cadence: how often a node checks its
// local registry for generation changes (pushing on change) and polls its
// peers for theirs. Invalidation latency is bounded by one interval even
// when a push is lost.
const DefaultPollInterval = 2 * time.Second

// Config assembles a Node.
type Config struct {
	// Self is the address peers reach this process at ("host:port"). It is
	// the node's identity on the membership ring and the address gossip
	// messages advertise.
	Self string
	// Peers are the other members' addresses. The membership ring is built
	// over Self + Peers; every member must be given the same set (modulo
	// itself) or steering will mis-route.
	Peers []string
	// Steer selects the steering mode (SteerRedirect, SteerProxy,
	// SteerOff). Empty means SteerRedirect.
	Steer string
	// PollInterval is the gossip cadence; zero means DefaultPollInterval.
	PollInterval time.Duration
	// Client issues outbound gossip and proxy requests; nil gets a client
	// with a sane timeout.
	Client *http.Client
	// Registry is the local engine registry: the source of local engine
	// generations and shard affinities.
	Registry *predict.Registry
	// DefaultEngine resolves requests that name no engine, mirroring the
	// serving layer's default.
	DefaultEngine string
	// Invalidate drops the named engine's locally cached forecasts,
	// returning how many entries were dropped (serve.Service.
	// InvalidateEngine). Nil disables invalidation (gossip still tracked).
	Invalidate func(engine string) int
}

// Node is one cluster member: the membership ring, the gossip state, and
// the steering counters. Safe for concurrent use.
type Node struct {
	self       string
	steerMode  string
	interval   time.Duration
	client     *http.Client
	reg        *predict.Registry
	def        string
	invalidate func(string) int

	// mu guards the membership: the peer list and the ring built over it.
	mu    sync.RWMutex
	peers []string
	ring  []memberPoint

	// instance identifies this process incarnation (random, nonzero) so
	// peers can tell a counter bump from a restart (see OriginView).
	instance uint64

	// gmu guards known: the highest generation seen per (origin member,
	// engine) — this node's own registry under its own address, peers'
	// slices merged in by absorbed gossip. published is the last snapshot
	// pushed, so pushes happen only on change.
	gmu       sync.Mutex
	known     map[string]*originState
	published map[string]OriginView

	// gossip counters
	pushes         atomic.Uint64
	pushFailures   atomic.Uint64
	polls          atomic.Uint64
	pollFailures   atomic.Uint64
	absorbed       atomic.Uint64
	invalidations  atomic.Uint64
	droppedEntries atomic.Uint64
	foreignOrigins atomic.Uint64

	// steering counters
	steered       atomic.Uint64
	redirected    atomic.Uint64
	proxied       atomic.Uint64
	misrouted     atomic.Uint64
	proxyFailures atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// NewNode validates cfg and builds the member ring. The node is inert
// until Start (gossip) and Handler (steering) attach it to traffic.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self address is required")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: Registry is required")
	}
	mode := cfg.Steer
	if mode == "" {
		mode = SteerRedirect
	}
	switch mode {
	case SteerRedirect, SteerProxy, SteerOff:
	default:
		return nil, fmt.Errorf("cluster: unknown steering mode %q (want %s, %s, or %s)",
			cfg.Steer, SteerRedirect, SteerProxy, SteerOff)
	}
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	n := &Node{
		self:       cfg.Self,
		steerMode:  mode,
		interval:   interval,
		client:     client,
		reg:        cfg.Registry,
		def:        cfg.DefaultEngine,
		invalidate: cfg.Invalidate,
		instance:   newInstanceID(),
		known:      map[string]*originState{},
		published:  map[string]OriginView{},
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	n.SetPeers(cfg.Peers)
	n.gmu.Lock()
	n.refreshLocalLocked()
	n.gmu.Unlock()
	return n, nil
}

// Self returns the node's advertised address.
func (n *Node) Self() string { return n.self }

// Mode returns the steering mode.
func (n *Node) Mode() string { return n.steerMode }

// SetPeers replaces the peer set and rebuilds the membership ring. Keys
// hash onto the ring by consistent hashing, so a joining or leaving peer
// moves only the keys it gains or loses — everyone else's assignment is
// untouched (see TestSetPeersRebalance).
func (n *Node) SetPeers(peers []string) {
	clean := make([]string, 0, len(peers))
	seen := map[string]bool{n.self: true}
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		clean = append(clean, p)
	}
	sort.Strings(clean)
	members := append([]string{n.self}, clean...)
	ring := buildRing(members)
	n.mu.Lock()
	n.peers = clean
	n.ring = ring
	n.mu.Unlock()
}

// Peers returns the current peer addresses, sorted.
func (n *Node) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]string(nil), n.peers...)
}

// isMember reports whether addr is in the current membership (self or a
// configured peer).
func (n *Node) isMember(addr string) bool {
	if addr == n.self {
		return true
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, p := range n.peers {
		if p == addr {
			return true
		}
	}
	return false
}

// newInstanceID draws the nonzero random identity of this process
// incarnation. Collisions across restarts would re-mask a retrain, so it
// uses the CSPRNG with a time-based fallback.
func newInstanceID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Members returns every member address (self included), sorted.
func (n *Node) Members() []string {
	members := append(n.Peers(), n.self)
	sort.Strings(members)
	return members
}

// memberReplicas is how many virtual points each member contributes to the
// membership ring — the same smoothing trade-off as the in-process shard
// ring (internal/serve/shard.go).
const memberReplicas = 64

// memberPoint is one virtual node on the membership ring.
type memberPoint struct {
	hash uint64
	addr string
}

// buildRing hashes every member onto the ring, memberReplicas points each.
func buildRing(members []string) []memberPoint {
	ring := make([]memberPoint, 0, len(members)*memberReplicas)
	for _, m := range members {
		for v := 0; v < memberReplicas; v++ {
			ring = append(ring, memberPoint{hash: hash64(fmt.Sprintf("member-%s-%d", m, v)), addr: m})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return ring
}

// hash64 is the ring hash: FNV-1a finished with a 64-bit avalanche mix.
// Member addresses differ in only a character or two ("host:8081" vs
// "host:8082"), and raw FNV over such near-identical strings clusters —
// one member's 64 virtual points can blanket whole arcs of the ring,
// starving the others. The MurmurHash3 finalizer decorrelates them; every
// member must use the identical function or steering mis-routes.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner resolves which member owns the (engine, GPU) key: the engine's
// shard-affinity (falling back to its name when unregistered — the serving
// layer will reject the request anyway) joined with the canonical GPU
// name, hashed onto the membership ring. local reports whether this node
// is the owner. With no peers every key is local.
func (n *Node) Owner(engine, gpuName string) (addr string, local bool) {
	if engine == "" {
		engine = n.def
	}
	affinity := engine
	if eng, err := n.reg.Get(engine); err == nil {
		affinity = predict.ShardAffinity(eng)
	}
	n.mu.RLock()
	ring := n.ring
	n.mu.RUnlock()
	if len(ring) == 0 {
		return n.self, true
	}
	h := hash64(affinity + "|" + gpuName)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0 // wrap: the ring is circular
	}
	addr = ring[i].addr
	return addr, addr == n.self
}

// Start launches the gossip loop: every PollInterval the node snapshots
// its local registry, pushes to every peer when something changed, and
// polls every peer for their view. Stop ends it.
func (n *Node) Start() {
	go func() {
		defer close(n.done)
		ticker := time.NewTicker(n.interval)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				n.SyncNow()
			}
		}
	}()
}

// Stop ends the gossip loop started by Start and waits for it to exit.
// Safe to call once; a node that was never started must not call Stop.
func (n *Node) Stop() {
	close(n.stop)
	<-n.done
}
