// Package cluster makes N `neusight serve` processes behave as one
// coherent, self-healing service. Each process runs a Node — a thin peer
// layer over the serving stack — that adds the mechanisms a multi-process
// deployment needs beyond what a single process provides:
//
//   - Generation gossip (gossip.go): a process that retrains an engine (or
//     grows its tile database) bumps that engine's state generation, which
//     invalidates its *own* caches automatically — but a peer process
//     serving the same model from its own cache has no idea. Nodes publish
//     engine-generation changes to their peers over a small HTTP push/poll
//     protocol (POST/GET /v2/cluster/generations); a node learning of a
//     generation newer than the one its local engine reports drops that
//     engine's cached forecasts, so no replica keeps serving a stale
//     prediction after a retrain anywhere in the cluster.
//
//   - Dynamic membership and failure detection (membership.go, health.go):
//     membership is state, not configuration. A process joins by
//     contacting any member (POST /v2/cluster/join) and is announced to
//     everyone through the gossip channel's membership view; every member
//     runs a failure detector fed by gossip contacts and a background
//     health sweep, declaring unresponsive members suspect then dead.
//     Dead members are evicted from the ring automatically — and
//     readmitted by their first successful contact, so a restart heals
//     without operator action. GET /v2/cluster/health exposes the state.
//
//   - Replicated shard steering (steer.go): the consistent-hash ring that
//     assigns (engine, GPU) keys to in-process shards is extended across
//     the cluster, and every key gets a primary owner plus a distinct
//     replica. A prediction request landing on the wrong process is
//     steered to the owner — a 307 redirect by default, or a transparent
//     proxy — and when the primary is unreachable the proxy falls through
//     to the replica (one retry, counted) instead of failing the request;
//     redirect mode sends clients straight to the replica once the
//     primary is marked dead. GET /v2/cluster/ring exposes the
//     assignment; all steering/failover counters are exported to
//     Prometheus.
//
//   - Join warmup (membership.go): a joining member pulls the recorded
//     workload traces of the members currently owning the shards it will
//     acquire (GET /v2/cluster/trace) and primes its caches with the keys
//     it now owns, so its first steered request is a cache hit.
//
// All /v2/cluster/* control routes can require a shared bearer token
// (Config.Token); requests without it are rejected with 401 and counted.
//
// The Node deliberately does not import the serving layer: cache
// invalidation, trace export, and warmup are callbacks (Config.Invalidate,
// Config.TraceDump, Config.WarmOwned), and steering wraps any
// http.Handler. cmd/neusight wires the pieces together.
package cluster

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neusight/internal/predict"
)

// Steering modes for Config.Steer.
const (
	// SteerRedirect answers requests owned by a peer with a 307 redirect
	// to the owner — the client re-sends the request there. The default:
	// no double proxying, and clients learn the topology.
	SteerRedirect = "redirect"
	// SteerProxy forwards requests owned by a peer to the owner and relays
	// the response — transparent to clients that cannot follow redirects.
	SteerProxy = "proxy"
	// SteerOff serves every request locally. Gossip still runs.
	SteerOff = "off"
)

// DefaultPollInterval is the gossip cadence: how often a node checks its
// local registry for generation changes (pushing on change) and polls its
// peers for theirs. Invalidation latency is bounded by one interval even
// when a push is lost.
const DefaultPollInterval = 2 * time.Second

// Config assembles a Node.
type Config struct {
	// Self is the address peers reach this process at ("host:port"). It is
	// the node's identity on the membership ring and the address gossip
	// messages advertise.
	Self string
	// Peers seeds the membership with the other members' addresses. Unlike
	// the static clusters of old, the set then evolves at runtime: members
	// join via /v2/cluster/join or gossiped membership views, and dead
	// members are evicted from the ring by the failure detector.
	Peers []string
	// Steer selects the steering mode (SteerRedirect, SteerProxy,
	// SteerOff). Empty means SteerRedirect.
	Steer string
	// PollInterval is the gossip cadence; zero means DefaultPollInterval.
	// Each round's actual delay is jittered ±20% so simultaneously started
	// members do not synchronize into thundering herds.
	PollInterval time.Duration
	// HealthInterval is the health sweeper's cadence (same jitter); zero
	// means DefaultHealthInterval.
	HealthInterval time.Duration
	// RequestTimeout bounds every individual outbound request (gossip
	// push/poll, probe, proxy attempt, join, trace fetch); zero means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// SuspectAfter and DeadAfter are the failure detector's strike
	// thresholds (failed contacts before suspect / dead); zero means the
	// defaults.
	SuspectAfter int
	DeadAfter    int
	// Token, when non-empty, is the shared bearer token every
	// /v2/cluster/* request must carry (Authorization: Bearer <token>).
	// Outbound control-plane requests attach it automatically.
	Token string
	// Client issues outbound gossip, probe, and proxy requests; nil gets a
	// client with a sane backstop timeout (per-attempt deadlines come from
	// RequestTimeout).
	Client *http.Client
	// Registry is the local engine registry: the source of local engine
	// generations and shard affinities.
	Registry *predict.Registry
	// DefaultEngine resolves requests that name no engine, mirroring the
	// serving layer's default.
	DefaultEngine string
	// Invalidate drops the named engine's locally cached forecasts,
	// returning how many entries were dropped (serve.Service.
	// InvalidateEngine). Nil disables invalidation (gossip still tracked).
	Invalidate func(engine string) int
	// TraceDump returns this member's recorded workload trace as JSONL —
	// what GET /v2/cluster/trace serves to joining members. Nil (or a nil
	// return) serves an empty trace.
	TraceDump func() []byte
	// WarmOwned primes the local caches from a peer's JSONL trace data,
	// keeping only entries whose (engine, GPU) key owns reports true, and
	// returns how many forecasts were warmed
	// (serve.Service.WarmFromTraceData). Nil disables join warmup.
	WarmOwned func(data []byte, owns func(engine, gpu string) bool) (int, error)
}

// Node is one cluster member: the membership ring, the failure detector,
// the gossip state, and the steering counters. Safe for concurrent use.
type Node struct {
	self           string
	steerMode      string
	interval       time.Duration
	healthInterval time.Duration
	reqTimeout     time.Duration
	suspectAfter   int
	deadAfter      int
	token          string
	client         *http.Client
	reg            *predict.Registry
	def            string
	invalidate     func(string) int
	traceDump      func() []byte
	warmOwned      func([]byte, func(string, string) bool) (int, error)

	// mu guards the membership — the per-member failure-detector records —
	// and the ring built over its non-dead members.
	mu      sync.RWMutex
	members map[string]*memberState
	ring    []memberPoint

	// instance identifies this process incarnation (random, nonzero) so
	// peers can tell a counter bump from a restart (see OriginView).
	instance uint64

	// gmu guards known: the highest generation seen per (origin member,
	// engine) — this node's own registry under its own address, peers'
	// slices merged in by absorbed gossip. published/publishedMembers are
	// the last snapshot pushed, so pushes happen only on change.
	gmu              sync.Mutex
	known            map[string]*originState
	published        map[string]OriginView
	publishedMembers map[string]MemberInfo

	// gossip counters
	pushes         atomic.Uint64
	pushFailures   atomic.Uint64
	polls          atomic.Uint64
	pollFailures   atomic.Uint64
	absorbed       atomic.Uint64
	invalidations  atomic.Uint64
	droppedEntries atomic.Uint64
	foreignOrigins atomic.Uint64

	// health / membership counters
	probes        atomic.Uint64
	probeFailures atomic.Uint64
	evictions     atomic.Uint64
	readmissions  atomic.Uint64
	joinsAccepted atomic.Uint64
	authRejected  atomic.Uint64

	// planner fan-out counters: batches and cells evaluated here on
	// behalf of a peer's plan job (POST /v2/cluster/plan/eval).
	planEvalsServed atomic.Uint64
	planEvalCells   atomic.Uint64

	// steering counters
	steered       atomic.Uint64
	redirected    atomic.Uint64
	proxied       atomic.Uint64
	misrouted     atomic.Uint64
	proxyFailures atomic.Uint64
	proxyTimeouts atomic.Uint64
	failedOver    atomic.Uint64
	relayErrors   atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewNode validates cfg and builds the member ring. The node is inert
// until Start (gossip + health sweeping) and Handler (steering) attach it
// to traffic.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self address is required")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: Registry is required")
	}
	mode := cfg.Steer
	if mode == "" {
		mode = SteerRedirect
	}
	switch mode {
	case SteerRedirect, SteerProxy, SteerOff:
	default:
		return nil, fmt.Errorf("cluster: unknown steering mode %q (want %s, %s, or %s)",
			cfg.Steer, SteerRedirect, SteerProxy, SteerOff)
	}
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	healthInterval := cfg.HealthInterval
	if healthInterval <= 0 {
		healthInterval = DefaultHealthInterval
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	suspectAfter := cfg.SuspectAfter
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	deadAfter := cfg.DeadAfter
	if deadAfter <= 0 {
		deadAfter = DefaultDeadAfter
	}
	if deadAfter < suspectAfter {
		return nil, fmt.Errorf("cluster: DeadAfter (%d) must be >= SuspectAfter (%d)", deadAfter, suspectAfter)
	}
	client := cfg.Client
	if client == nil {
		// Backstop only: per-attempt deadlines come from reqTimeout.
		client = &http.Client{Timeout: reqTimeout + 3*time.Second}
	}
	n := &Node{
		self:             cfg.Self,
		steerMode:        mode,
		interval:         interval,
		healthInterval:   healthInterval,
		reqTimeout:       reqTimeout,
		suspectAfter:     suspectAfter,
		deadAfter:        deadAfter,
		token:            cfg.Token,
		client:           client,
		reg:              cfg.Registry,
		def:              cfg.DefaultEngine,
		invalidate:       cfg.Invalidate,
		traceDump:        cfg.TraceDump,
		warmOwned:        cfg.WarmOwned,
		instance:         newInstanceID(),
		members:          map[string]*memberState{},
		known:            map[string]*originState{},
		published:        map[string]OriginView{},
		publishedMembers: map[string]MemberInfo{},
		stop:             make(chan struct{}),
	}
	n.SetPeers(cfg.Peers)
	n.gmu.Lock()
	n.refreshLocalLocked()
	n.gmu.Unlock()
	return n, nil
}

// Self returns the node's advertised address.
func (n *Node) Self() string { return n.self }

// Mode returns the steering mode.
func (n *Node) Mode() string { return n.steerMode }

// SetPeers reconciles the membership to exactly the given peer set:
// unknown addresses are admitted as alive, absent ones are forgotten, and
// members staying keep their failure-detector state. Keys hash onto the
// ring by consistent hashing, so a joining or leaving peer moves only the
// keys it gains or loses — everyone else's assignment is untouched (see
// TestSetPeersRebalance).
func (n *Node) SetPeers(peers []string) {
	want := map[string]bool{}
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p != "" && p != n.self {
			want[p] = true
		}
	}
	n.mu.Lock()
	for addr := range n.members {
		if !want[addr] {
			delete(n.members, addr)
		}
	}
	for addr := range want {
		if n.members[addr] == nil {
			n.members[addr] = &memberState{state: MemberAlive}
		}
	}
	n.rebuildRingLocked()
	n.mu.Unlock()
}

// Peers returns the current peer addresses (every known member but self,
// whatever its state), sorted.
func (n *Node) Peers() []string {
	n.mu.RLock()
	peers := make([]string, 0, len(n.members))
	for addr := range n.members {
		peers = append(peers, addr)
	}
	n.mu.RUnlock()
	sort.Strings(peers)
	return peers
}

// isMember reports whether addr is in the current membership (self or a
// known peer, whatever its state).
func (n *Node) isMember(addr string) bool {
	if addr == n.self {
		return true
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.members[addr] != nil
}

// newInstanceID draws the nonzero random identity of this process
// incarnation. Collisions across restarts would re-mask a retrain, so it
// uses the CSPRNG with a time-based fallback.
func newInstanceID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Members returns every member address (self included), sorted.
func (n *Node) Members() []string {
	members := append(n.Peers(), n.self)
	sort.Strings(members)
	return members
}

// memberReplicas is how many virtual points each member contributes to the
// membership ring — the same smoothing trade-off as the in-process shard
// ring (internal/serve/shard.go).
const memberReplicas = 64

// memberPoint is one virtual node on the membership ring.
type memberPoint struct {
	hash uint64
	addr string
}

// buildRing hashes every member onto the ring, memberReplicas points each.
func buildRing(members []string) []memberPoint {
	ring := make([]memberPoint, 0, len(members)*memberReplicas)
	for _, m := range members {
		for v := 0; v < memberReplicas; v++ {
			ring = append(ring, memberPoint{hash: hash64(fmt.Sprintf("member-%s-%d", m, v)), addr: m})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return ring
}

// hash64 is the ring hash: FNV-1a finished with a 64-bit avalanche mix.
// Member addresses differ in only a character or two ("host:8081" vs
// "host:8082"), and raw FNV over such near-identical strings clusters —
// one member's 64 virtual points can blanket whole arcs of the ring,
// starving the others. The MurmurHash3 finalizer decorrelates them; every
// member must use the identical function or steering mis-routes.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// affinityOf resolves the shard-affinity key an engine hashes by: its
// declared affinity when registered, falling back to the name (the
// serving layer will reject unknown engines anyway). Empty names resolve
// the default engine.
func (n *Node) affinityOf(engine string) string {
	if engine == "" {
		engine = n.def
	}
	if eng, err := n.reg.Get(engine); err == nil {
		return predict.ShardAffinity(eng)
	}
	return engine
}

// Owners resolves the (engine, GPU) key to its primary owner and the
// distinct replica that serves when the primary is unreachable: the
// key hashes onto the membership ring (dead members evicted), the primary
// is the first point at or after it, and the replica is the next point
// belonging to a different member. A single-member ring has no replica
// (empty string).
func (n *Node) Owners(engine, gpuName string) (primary, replica string) {
	affinity := n.affinityOf(engine)
	n.mu.RLock()
	ring := n.ring
	n.mu.RUnlock()
	if len(ring) == 0 {
		return n.self, ""
	}
	h := hash64(affinity + "|" + gpuName)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0 // wrap: the ring is circular
	}
	primary = ring[i].addr
	for j := 1; j < len(ring); j++ {
		if addr := ring[(i+j)%len(ring)].addr; addr != primary {
			return primary, addr
		}
	}
	return primary, ""
}

// Owner resolves which member owns the (engine, GPU) key as primary.
// local reports whether this node is that owner. With no peers every key
// is local.
func (n *Node) Owner(engine, gpuName string) (addr string, local bool) {
	addr, _ = n.Owners(engine, gpuName)
	return addr, addr == n.self
}

// route resolves where a request for the (engine, GPU) key should be
// served right now: the primary unless it is marked dead, in which case
// the replica takes over and there is no further fallback. fallback is
// the replica to retry when a proxy attempt to owner fails mid-flight
// (the primary died but the detector has not caught up yet).
func (n *Node) route(engine, gpuName string) (owner, fallback string, local bool) {
	primary, replica := n.Owners(engine, gpuName)
	owner, fallback = primary, replica
	if replica != "" && n.memberDead(primary) {
		owner, fallback = replica, ""
	}
	return owner, fallback, owner == n.self
}

// Start launches the background loops: gossip every PollInterval and a
// health sweep every HealthInterval, each delay jittered ±20% so a fleet
// started simultaneously does not synchronize its rounds into periodic
// thundering herds. Stop ends both.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.loop(n.interval, n.SyncNow)
	go n.loop(n.healthInterval, n.ProbeNow)
}

// loop runs f every interval (jittered) until Stop.
func (n *Node) loop(interval time.Duration, f func()) {
	defer n.wg.Done()
	for {
		t := time.NewTimer(jitter(interval))
		select {
		case <-n.stop:
			t.Stop()
			return
		case <-t.C:
			f()
		}
	}
}

// jitter spreads d uniformly over [0.8d, 1.2d].
func jitter(d time.Duration) time.Duration {
	span := int64(2 * d / 5)
	if span <= 0 {
		return d
	}
	return d - d/5 + time.Duration(rand.Int63n(span+1))
}

// Stop ends the loops started by Start and waits for them to exit.
// Safe to call once; a node that was never started must not call Stop.
func (n *Node) Stop() {
	close(n.stop)
	n.wg.Wait()
}
