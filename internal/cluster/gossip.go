package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"neusight/internal/predict"
)

// OriginView is one member's slice of the generation view: the instance
// ID of the process that produced it plus its engine generations.
// Generations are per-process counters — a restarted process counts from
// zero again — so the instance ID is what lets peers tell "same process,
// higher counter" (invalidate on increase) apart from "new process
// entirely" (all previous knowledge about this origin is void).
type OriginView struct {
	// Instance identifies the origin's process incarnation (random,
	// nonzero, drawn at startup). 0 means unknown (foreign payloads).
	Instance uint64 `json:"instance,omitempty"`
	// Generations maps engine name -> that process's state generation.
	Generations map[string]uint64 `json:"generations"`
}

// GenMessage is the gossip payload exchanged on /v2/cluster/generations:
// the sender's knowledge of every member's engine-state generations,
// keyed by the member (origin) that owns them, plus its membership view.
// Generations are per-process counters — two members trained
// independently sit at arbitrary, incomparable values — so views must be
// exchanged per origin: a single cluster-wide max would permanently mask
// retrains on any member whose counter sits below another's. Views merge
// before they are served, so gossip is transitive — C polling B learns
// about A's retrain even if A's push to C was lost. The membership view
// rides the same channel and merges the same way, which is how a join
// accepted by one member reaches every member within a round or two.
type GenMessage struct {
	// Node is the advertised address of the sender.
	Node string `json:"node"`
	// Views maps member address -> that member's slice of the view, as
	// far as the sender knows (its own included).
	Views map[string]OriginView `json:"views"`
	// Members is the sender's membership view (its own address included).
	// Absent (nil) on payloads from pre-membership senders or foreign
	// clients — such payloads cannot grow the membership, and their
	// unknown origins are still rejected.
	Members map[string]MemberInfo `json:"members,omitempty"`
}

// originState is the mutable per-origin record behind Node.known.
type originState struct {
	instance uint64
	gens     map[string]uint64
}

// refreshLocalLocked folds the local registry's current engine
// generations into this node's own slice of the view. Callers hold gmu.
func (n *Node) refreshLocalLocked() {
	st := n.known[n.self]
	if st == nil {
		st = &originState{instance: n.instance, gens: map[string]uint64{}}
		n.known[n.self] = st
	}
	for _, name := range n.reg.List() {
		eng, err := n.reg.Get(name)
		if err != nil {
			continue // racing unregistration
		}
		if g := predict.Generation(eng); g > st.gens[name] {
			st.gens[name] = g
		}
	}
}

// viewOf deep-copies one origin state into its wire form.
func viewOf(st *originState) OriginView {
	gens := make(map[string]uint64, len(st.gens))
	for name, gen := range st.gens {
		gens[name] = gen
	}
	return OriginView{Instance: st.instance, Generations: gens}
}

// equalViews reports whether two per-origin view maps are identical.
func equalViews(a, b map[string]OriginView) bool {
	if len(a) != len(b) {
		return false
	}
	for origin, va := range a {
		vb, ok := b[origin]
		if !ok || va.Instance != vb.Instance || len(va.Generations) != len(vb.Generations) {
			return false
		}
		for name, gen := range va.Generations {
			if vb.Generations[name] != gen {
				return false
			}
		}
	}
	return true
}

// equalMembers reports whether two membership views are identical.
func equalMembers(a, b map[string]MemberInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for addr, ia := range a {
		if ib, ok := b[addr]; !ok || ia != ib {
			return false
		}
	}
	return true
}

// Snapshot returns this node's per-origin generation view — its own
// registry's generations under its own address, plus everything absorbed
// from peers — and its membership view. It is what GET
// /v2/cluster/generations serves and what pushes carry.
func (n *Node) Snapshot() GenMessage {
	members := n.membersView()
	n.gmu.Lock()
	defer n.gmu.Unlock()
	n.refreshLocalLocked()
	views := make(map[string]OriginView, len(n.known))
	for origin, st := range n.known {
		views[origin] = viewOf(st)
	}
	return GenMessage{Node: n.self, Views: views, Members: members}
}

// Absorb merges a peer's view into this node's. The membership view
// merges first — members the sender knows and this node does not are
// admitted (never resurrected from dead; see absorbMembers) — so a
// just-joined member's own generation slice passes the origin check
// below. Then, for every origin whose reported generation for an engine
// is newer than anything seen from that origin's current instance, the
// engine's locally cached forecasts are dropped via the Invalidate
// callback: that origin retrained (or first appeared with trained state),
// so local caches may predate it. Generations are origin-local counters,
// so no comparison against the local engine's own generation is
// meaningful — the drop is unconditional on news.
//
// Two guards bound what a payload can do:
//   - echoes of this node's own slice are skipped (the local registry is
//     authoritative), and origins that are not cluster members — after
//     the membership merge — are ignored outright: a non-member origin is
//     noise or forgery, and tracking it would let arbitrary clients grow
//     this node's memory and spam invalidations;
//   - an origin reporting a new instance ID voids everything previously
//     known about it first: a restarted process counts generations from
//     zero again, and without the reset its retrains would hide behind
//     the dead process's high-water marks forever. A stale instance
//     relayed during the convergence window can flip the reset once more
//     — the cost is a spurious cache drop, which is the safe direction.
//
// Returns how many invalidations ran.
func (n *Node) Absorb(msg GenMessage) int {
	n.absorbed.Add(1)
	if len(msg.Members) > 0 {
		n.absorbMembers(msg.Members)
	}
	invalidated := 0
	for origin, v := range msg.Views {
		if origin == n.self {
			continue
		}
		if !n.isMember(origin) {
			n.foreignOrigins.Add(1)
			continue
		}
		for name, gen := range v.Generations {
			n.gmu.Lock()
			st := n.known[origin]
			if st == nil {
				st = &originState{gens: map[string]uint64{}}
				n.known[origin] = st
			}
			if v.Instance != 0 && st.instance != 0 && v.Instance != st.instance {
				st.gens = map[string]uint64{} // new incarnation: prior marks are void
			}
			if v.Instance != 0 {
				st.instance = v.Instance
			}
			prev := st.gens[name]
			if gen > prev {
				st.gens[name] = gen
			}
			n.gmu.Unlock()
			if gen <= prev {
				continue
			}
			if n.invalidate != nil {
				dropped := n.invalidate(name)
				n.invalidations.Add(1)
				n.droppedEntries.Add(uint64(dropped))
				invalidated++
			}
		}
	}
	return invalidated
}

// SyncNow runs one synchronous gossip round: push the snapshot to every
// live peer if it changed since the last push (generation OR membership
// change), then poll every live peer and absorb their views. Each
// outbound attempt carries its own RequestTimeout deadline, and each
// outcome feeds the failure detector. The background loop calls it every
// PollInterval; tests and shutdown paths call it directly for
// determinism.
func (n *Node) SyncNow() {
	ctx := context.Background()
	snap := n.Snapshot()
	if n.snapshotChanged(snap) {
		n.Push(ctx, snap)
		n.markPublished(snap)
	}
	n.PollPeers(ctx)
}

// snapshotChanged reports whether snap differs from the last pushed one.
func (n *Node) snapshotChanged(snap GenMessage) bool {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	return !equalViews(snap.Views, n.published) || !equalMembers(snap.Members, n.publishedMembers)
}

// markPublished records snap as the last pushed snapshot. Snapshot
// returns fresh copies, so the maps can be retained as-is.
func (n *Node) markPublished(snap GenMessage) {
	n.gmu.Lock()
	n.published = snap.Views
	n.publishedMembers = snap.Members
	n.gmu.Unlock()
}

// gossipPeers returns the peers gossip contacts this round: every member
// not currently dead. Dead members are the health sweeper's job — its
// probe is the readmission path — so gossip rounds do not burn a timeout
// per dead member forever.
func (n *Node) gossipPeers() []string {
	n.mu.RLock()
	peers := make([]string, 0, len(n.members))
	for addr, st := range n.members {
		if st.state != MemberDead {
			peers = append(peers, addr)
		}
	}
	n.mu.RUnlock()
	sort.Strings(peers)
	return peers
}

// Push POSTs msg to every live peer's /v2/cluster/generations, all peers
// concurrently: one blackholed peer must burn only its own goroutine's
// per-attempt deadline, not serialize in front of the healthy peers.
// Unreachable peers are counted (and struck in the failure detector), not
// retried — the poll side of the protocol (theirs and ours) delivers the
// update within one interval once they return.
func (n *Node) Push(ctx context.Context, msg GenMessage) {
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for _, peer := range n.gossipPeers() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ok := n.pushPeer(ctx, peer, body)
			if ok {
				n.pushes.Add(1)
			} else {
				n.pushFailures.Add(1)
			}
			n.markContact(peer, ok)
		}(peer)
	}
	wg.Wait()
}

// pushPeer POSTs one gossip payload with a per-attempt deadline.
func (n *Node) pushPeer(ctx context.Context, peer string, body []byte) bool {
	ctx, cancel := context.WithTimeout(ctx, n.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+RouteGenerations, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	n.setAuth(req)
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// PollPeers GETs every live peer's /v2/cluster/generations concurrently
// and absorbs the views (Absorb is thread-safe). This is the lossy-push
// fallback: a node that missed a push (it was restarting, the network
// hiccuped) converges on the next poll.
func (n *Node) PollPeers(ctx context.Context) {
	var wg sync.WaitGroup
	for _, peer := range n.gossipPeers() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			msg, err := n.pollPeer(ctx, peer)
			n.markContact(peer, err == nil)
			if err != nil {
				n.pollFailures.Add(1)
				return
			}
			n.polls.Add(1)
			n.Absorb(msg)
		}(peer)
	}
	wg.Wait()
}

// pollPeer fetches one peer's generation view with a per-attempt deadline.
func (n *Node) pollPeer(ctx context.Context, peer string) (GenMessage, error) {
	var msg GenMessage
	ctx, cancel := context.WithTimeout(ctx, n.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+RouteGenerations, nil)
	if err != nil {
		return msg, err
	}
	n.setAuth(req)
	resp, err := n.client.Do(req)
	if err != nil {
		return msg, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return msg, fmt.Errorf("cluster: peer %s returned %d", peer, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxControlBody)).Decode(&msg); err != nil {
		return msg, err
	}
	return msg, nil
}

// GossipStats is a snapshot of the gossip counters, exposed on
// /v2/cluster/generations (GET) alongside the view for debuggability.
type GossipStats struct {
	Pushes         uint64 `json:"pushes"`
	PushFailures   uint64 `json:"push_failures"`
	Polls          uint64 `json:"polls"`
	PollFailures   uint64 `json:"poll_failures"`
	Absorbed       uint64 `json:"absorbed"`
	Invalidations  uint64 `json:"invalidations"`
	DroppedEntries uint64 `json:"dropped_entries"`
	ForeignOrigins uint64 `json:"foreign_origins"`
}

// GossipStats returns the current gossip counters.
func (n *Node) GossipStats() GossipStats {
	return GossipStats{
		Pushes:         n.pushes.Load(),
		PushFailures:   n.pushFailures.Load(),
		Polls:          n.polls.Load(),
		PollFailures:   n.pollFailures.Load(),
		Absorbed:       n.absorbed.Load(),
		Invalidations:  n.invalidations.Load(),
		DroppedEntries: n.droppedEntries.Load(),
		ForeignOrigins: n.foreignOrigins.Load(),
	}
}
