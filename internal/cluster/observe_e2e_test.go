package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"neusight/internal/core"
	"neusight/internal/dataset"
	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
	"neusight/internal/observe"
	"neusight/internal/predict"
	"neusight/internal/serve"
	"neusight/internal/tile"
)

// calibProc is one in-test serve process for the continuous-calibration
// e2e: a full serving stack over a caller-supplied engine registry.
type calibProc struct {
	addr string
	svc  *serve.Service
	node *Node
}

func startCalibProc(t *testing.T, reg *predict.Registry) *calibProc {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewMulti(reg, predict.EngineNeuSight, serve.Config{CacheSize: 256})
	node, err := NewNode(Config{
		Self:          ln.Addr().String(),
		Steer:         SteerOff,
		PollInterval:  50 * time.Millisecond,
		Registry:      reg,
		DefaultEngine: predict.EngineNeuSight,
		Invalidate:    svc.InvalidateEngine,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node.Handler(serve.NewHandler(svc))}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &calibProc{addr: ln.Addr().String(), svc: svc, node: node}
}

// TestContinuousCalibrationAcrossCluster is the acceptance test for the
// profile-guided continuous-learning loop, end to end over real HTTP:
// biased observations posted to member A push the drift MAPE over the
// threshold on /v2/stats, a single background retrain fires and
// calibrates the model, the generation bump gossips, and member B's
// cached stale prediction is invalidated — its fresh answer shifting
// toward what was observed.
func TestContinuousCalibrationAcrossCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	// Both processes serve the same predictor weights — two members that
	// loaded the same model replica. A's engine is the real generational
	// CoreEngine (it retrains); B wraps the shared predictor in a
	// generation-less engine, so B's cache keys never move on their own
	// and only gossiped invalidation can evict them — which makes the
	// gossip leg of this test load-bearing rather than decorative.
	tdb := tile.NewDB()
	h100 := gpu.MustLookup("H100")
	ds := dataset.Generate(dataset.GenConfig{
		Seed: 7, BMM: 150, FC: 80, EW: 60, Softmax: 40, LN: 40,
		GPUs: gpu.TrainSet(), MaxBMMDim: 1024,
	}, gpusim.New(), tdb)
	p := core.NewPredictor(core.Config{
		Hidden: 32, Layers: 2, Epochs: 25, BatchSize: 128, LR: 5e-3, WeightDecay: 1e-4, Seed: 1,
	}, tdb)
	if rep := p.Train(ds); len(rep.FinalLoss) != 5 {
		t.Fatalf("trained %d categories, want 5", len(rep.FinalLoss))
	}

	coreEng := predict.NewCoreEngine(p)
	regA := predict.NewRegistry()
	regA.MustRegister(coreEng)
	regB := predict.NewRegistry()
	regB.MustRegister(predict.NewFuncEngine(predict.EngineNeuSight, predict.SourceModel,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) { return p.PredictKernel(k, g) }))

	a := startCalibProc(t, regA)
	b := startCalibProc(t, regB)
	a.node.SetPeers([]string{b.addr})
	b.node.SetPeers([]string{a.addr})

	// Settle first-contact gossip so later invalidations are attributable
	// to the retrain alone.
	a.node.SyncNow()
	b.node.SyncNow()
	inv0 := b.node.GossipStats().Invalidations

	// Wire the drift monitor to A the way `serve -observe` does.
	mon := observe.NewMonitor(observe.Config{Window: 64, MinSamples: 8, Threshold: 0.5},
		func(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec) (float64, error) {
			res, err := a.svc.PredictKernelEngine(ctx, engine, k, g)
			return res.Latency, err
		})
	mon.RegisterRetrainer(predict.EngineNeuSight, func(calib []dataset.Sample) (uint64, error) {
		if err := coreEng.Calibrate(ds, calib); err != nil {
			return predict.Generation(coreEng), err
		}
		return predict.Generation(coreEng), nil
	})
	a.svc.SetObserver(mon)
	t.Cleanup(func() { mon.Close() })

	// In-distribution BMM shapes on one GPU, so every observation lands in
	// the same (engine, GPU) drift window. Shapes large enough that the
	// learned utilization is above the floor clamp — tiny kernels pin
	// util at the floor and calibration cannot move them.
	var probes []kernels.Kernel
	for _, m := range []int{256, 320, 384, 448, 512, 576, 640, 768} {
		probes = append(probes, kernels.NewBMM(4, m, 512, 512))
	}
	probe := probes[0]
	ctx := context.Background()

	// B serves and caches its answer for the probe before any drift.
	resB0, err := b.svc.PredictKernelEngine(ctx, "", probe, h100)
	if err != nil {
		t.Fatal(err)
	}
	latB0 := resB0.Latency

	// Reality is 3x slower than the shared model believes: MAPE 2/3.
	observations := make([]serve.ObserveRequest, 0, len(probes))
	for _, k := range probes {
		res, err := a.svc.PredictKernelEngine(ctx, "", k, h100)
		if err != nil {
			t.Fatal(err)
		}
		observations = append(observations, serve.ObserveRequest{
			Kernel: serve.KernelRequest{
				Op: k.Op.String(), B: k.B, M: k.M, K: k.K, N: k.N, GPU: h100.Name,
			},
			ObservedMs: 3 * res.Latency,
		})
	}

	post := func(body any) *http.Response {
		t.Helper()
		enc, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post("http://"+a.addr+"/v2/observe", "application/json", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// One short of MinSamples: drift must already be visible on /v2/stats,
	// with no retrain scheduled yet.
	resp := post(serve.ObserveBatchRequest{Observations: observations[:7]})
	var or serve.ObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || or.Accepted != 7 {
		t.Fatalf("batch observe: status %d accepted %d, want 200/7", resp.StatusCode, or.Accepted)
	}

	sresp, err := http.Get("http://" + a.addr + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.StatsV2
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Observe == nil || len(st.Observe.Windows) != 1 {
		t.Fatalf("/v2/stats observe section %+v, want one drift window", st.Observe)
	}
	w := st.Observe.Windows[0]
	if !w.Drifting || w.MAPE < 0.6 {
		t.Fatalf("window %+v, want drifting at MAPE ~0.67 after biased observations", w)
	}
	if !w.Retrainable {
		t.Fatal("CoreEngine-backed member must report retrainable")
	}
	if st.Observe.Retrains != 0 {
		t.Fatalf("retrain fired with %d samples, below MinSamples 8", w.Samples)
	}

	// The MinSamples-th observation tips the window over: the single
	// background retrain fires.
	gen0 := predict.Generation(coreEng)
	resp = post(observations[7])
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single observe status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rep := mon.Report()
		if rep.RetrainErrors > 0 {
			t.Fatalf("retrain failed: %+v", rep.Windows)
		}
		if rep.Retrains == 1 && !rep.RetrainActive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain did not complete: %+v", rep)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := mon.Report().Retrains; got != 1 {
		t.Fatalf("retrains = %d, want exactly 1 (single-flight)", got)
	}
	if gen1 := predict.Generation(coreEng); gen1 <= gen0 {
		t.Fatalf("generation %d after calibration, want > %d", gen1, gen0)
	}

	// B has not heard the news: its cache still serves the stale forecast
	// even though the shared weights changed underneath — the exact hazard
	// generation gossip exists to close.
	if res, err := b.svc.PredictKernelEngine(ctx, "", probe, h100); err != nil || res.Latency != latB0 {
		t.Fatalf("B pre-gossip = (%v, %v), want the stale cached %v", res.Latency, err, latB0)
	}

	// One gossip round from A: B must invalidate and re-predict with the
	// calibrated weights, shifting toward the observed 3x latencies.
	a.node.SyncNow()
	if inv := b.node.GossipStats().Invalidations; inv != inv0+1 {
		t.Fatalf("B invalidations = %d, want %d (retrain news exactly once)", inv, inv0+1)
	}
	resB1, err := b.svc.PredictKernelEngine(ctx, "", probe, h100)
	if err != nil {
		t.Fatal(err)
	}
	latB1, observed := resB1.Latency, 3*latB0
	if latB1 <= latB0 {
		t.Fatalf("B post-gossip = %v, want a fresh forecast above the stale %v (observed %v)", latB1, latB0, observed)
	}
	if math.Abs(observed-latB1) >= observed-latB0 {
		t.Fatalf("B post-gossip %v no closer to observed %v than stale %v", latB1, observed, latB0)
	}
}
