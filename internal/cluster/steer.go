package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"

	"neusight/internal/gpu"
)

// steerHeader marks a proxied request so the receiving node serves it
// locally instead of steering again — membership disagreement between two
// nodes must degrade to one extra hop, never a loop. Its value is the
// address of the node that forwarded the request.
const steerHeader = "X-Neusight-Steered"

// steerParam is the redirect-mode equivalent: a client following a 307
// carries the query parameter to the owner, which then always serves
// locally (redirects cannot attach headers to the client's next request).
const steerParam = "steered"

// maxSteerBody caps how much of a request body the steering layer buffers
// to read the routing fields — the same 1 MiB the serving layer enforces,
// so steering never accepts more than serving would.
const maxSteerBody = 1 << 20

// steerHint is the slice of a prediction request body steering needs:
// every /v1 and /v2 predict body carries the target GPU and (v2) an
// optional engine at the top level.
type steerHint struct {
	Engine string `json:"engine"`
	GPU    string `json:"gpu"`
}

// isPredictPath reports whether path is a prediction endpoint — the only
// traffic steering applies to. Stats, metrics, and control routes are
// always served locally.
func isPredictPath(path string) bool {
	return strings.HasPrefix(path, "/v1/predict/") || strings.HasPrefix(path, "/v2/predict/")
}

// alreadySteered reports whether r arrived via a steer (proxy header or
// redirect query parameter).
func alreadySteered(r *http.Request) bool {
	return r.Header.Get(steerHeader) != "" || r.URL.Query().Get(steerParam) == "1"
}

// steer routes one prediction request: requests whose (engine, GPU) key
// this node owns — and requests that were already steered here — are
// served by next; the rest are redirected or proxied to the owner
// according to the steering mode. The request body is buffered (bounded)
// to read the routing fields and restored for whoever serves it;
// malformed bodies are served locally so the serving layer produces its
// ordinary 400.
func (n *Node) steer(w http.ResponseWriter, r *http.Request, next http.Handler) {
	if n.steerMode == SteerOff || len(n.Peers()) == 0 {
		next.ServeHTTP(w, r)
		return
	}

	buf, err := io.ReadAll(io.LimitReader(r.Body, maxSteerBody+1))
	rest := r.Body // unread remainder of an over-limit body
	r.Body = readCloser{io.MultiReader(bytes.NewReader(buf), rest), rest}
	if err != nil || len(buf) > maxSteerBody {
		// Unreadable or oversized: the serving layer's body cap produces
		// the right client-facing error.
		next.ServeHTTP(w, r)
		return
	}

	var hint steerHint
	if json.Unmarshal(buf, &hint) != nil {
		next.ServeHTTP(w, r) // bad JSON: serve locally for the ordinary 400
		return
	}
	g, gerr := gpu.Lookup(hint.GPU)
	if gerr != nil {
		next.ServeHTTP(w, r) // unknown GPU: serve locally for the ordinary 400
		return
	}

	owner, local := n.Owner(hint.Engine, g.Name)
	switch {
	case local:
		next.ServeHTTP(w, r)
	case alreadySteered(r):
		// A steered request we do not own: two nodes disagree about the
		// ring (peer lists drifted, a member is joining). Serve it locally
		// — correctness does not depend on ownership, only cache locality
		// does — and count the disagreement.
		n.misrouted.Add(1)
		next.ServeHTTP(w, r)
	case n.steerMode == SteerProxy:
		n.steered.Add(1)
		n.proxyTo(w, r, owner, buf)
	default:
		n.steered.Add(1)
		n.redirectTo(w, r, owner)
	}
}

// readCloser pairs a replacement body reader with the original closer.
type readCloser struct {
	io.Reader
	io.Closer
}

// redirectTo answers with a 307 to the owner. 307 preserves the method and
// body, so the client re-POSTs the identical request; the steered query
// parameter stops the owner from redirecting onward if its ring disagrees.
func (n *Node) redirectTo(w http.ResponseWriter, r *http.Request, owner string) {
	n.redirected.Add(1)
	q := r.URL.Query()
	q.Set(steerParam, "1")
	u := url.URL{Scheme: "http", Host: owner, Path: r.URL.Path, RawQuery: q.Encode()}
	http.Redirect(w, r, u.String(), http.StatusTemporaryRedirect)
}

// proxyTo forwards the buffered request to the owner and relays the
// response verbatim. An unreachable owner is a 502 — the client can retry
// (and a retry may be served locally once gossip repairs the peer list).
func (n *Node) proxyTo(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	u := url.URL{Scheme: "http", Host: owner, Path: r.URL.Path, RawQuery: r.URL.RawQuery}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		n.proxyFailures.Add(1)
		writeJSONError(w, http.StatusBadGateway, "cluster: building proxy request: "+err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(steerHeader, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		n.proxyFailures.Add(1)
		writeJSONError(w, http.StatusBadGateway, "cluster: shard owner "+owner+" unreachable: "+err.Error())
		return
	}
	defer resp.Body.Close()
	n.proxied.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// SteerStats is a snapshot of the steering counters, exposed on
// /v2/cluster/ring.
type SteerStats struct {
	Steered       uint64 `json:"steered"`
	Redirected    uint64 `json:"redirected"`
	Proxied       uint64 `json:"proxied"`
	Misrouted     uint64 `json:"misrouted"`
	ProxyFailures uint64 `json:"proxy_failures"`
}

// SteerStats returns the current steering counters.
func (n *Node) SteerStats() SteerStats {
	return SteerStats{
		Steered:       n.steered.Load(),
		Redirected:    n.redirected.Load(),
		Proxied:       n.proxied.Load(),
		Misrouted:     n.misrouted.Load(),
		ProxyFailures: n.proxyFailures.Load(),
	}
}
