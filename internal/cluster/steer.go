package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"

	"neusight/internal/gpu"
)

// steerHeader marks a proxied request so the receiving node serves it
// locally instead of steering again — membership disagreement between two
// nodes must degrade to one extra hop, never a loop. Its value is the
// address of the node that forwarded the request.
const steerHeader = "X-Neusight-Steered"

// steerParam is the redirect-mode equivalent: a client following a 307
// carries the query parameter to the owner, which then always serves
// locally (redirects cannot attach headers to the client's next request).
const steerParam = "steered"

// maxSteerBody caps how much of a request body the steering layer buffers
// to read the routing fields — the same 1 MiB the serving layer enforces,
// so steering never accepts more than serving would.
const maxSteerBody = 1 << 20

// steerHint is the slice of a prediction request body steering needs:
// every /v1 and /v2 predict body carries the target GPU and (v2) an
// optional engine at the top level.
type steerHint struct {
	Engine string `json:"engine"`
	GPU    string `json:"gpu"`
}

// isPredictPath reports whether path is a prediction endpoint — the only
// traffic steering applies to. Stats, metrics, and control routes are
// always served locally.
func isPredictPath(path string) bool {
	return strings.HasPrefix(path, "/v1/predict/") || strings.HasPrefix(path, "/v2/predict/")
}

// alreadySteered reports whether r arrived via a steer (proxy header or
// redirect query parameter).
func alreadySteered(r *http.Request) bool {
	return r.Header.Get(steerHeader) != "" || r.URL.Query().Get(steerParam) == "1"
}

// steer routes one prediction request: requests whose (engine, GPU) key
// this node serves — and requests that were already steered here — go to
// next; the rest are redirected or proxied to the key's current owner
// according to the steering mode. "Current owner" means the primary
// unless the failure detector has declared it dead, in which case the
// replica has taken over (route); proxy mode additionally falls through
// to the replica when a live-looking primary turns out unreachable
// mid-request. The request body is buffered (bounded) to read the routing
// fields and restored for whoever serves it; malformed bodies are served
// locally so the serving layer produces its ordinary 400.
func (n *Node) steer(w http.ResponseWriter, r *http.Request, next http.Handler) {
	if n.steerMode == SteerOff || len(n.Peers()) == 0 {
		next.ServeHTTP(w, r)
		return
	}

	buf, err := io.ReadAll(io.LimitReader(r.Body, maxSteerBody+1))
	rest := r.Body // unread remainder of an over-limit body
	r.Body = readCloser{io.MultiReader(bytes.NewReader(buf), rest), rest}
	if err != nil || len(buf) > maxSteerBody {
		// Unreadable or oversized: the serving layer's body cap produces
		// the right client-facing error.
		next.ServeHTTP(w, r)
		return
	}

	var hint steerHint
	if json.Unmarshal(buf, &hint) != nil {
		next.ServeHTTP(w, r) // bad JSON: serve locally for the ordinary 400
		return
	}
	g, gerr := gpu.Lookup(hint.GPU)
	if gerr != nil {
		next.ServeHTTP(w, r) // unknown GPU: serve locally for the ordinary 400
		return
	}

	owner, fallback, local := n.route(hint.Engine, g.Name)
	switch {
	case local:
		next.ServeHTTP(w, r)
	case alreadySteered(r):
		// A steered request we do not own: two nodes disagree about the
		// ring (peer lists drifted, a member is joining). Serve it locally
		// — correctness does not depend on ownership, only cache locality
		// does — and count the disagreement.
		n.misrouted.Add(1)
		next.ServeHTTP(w, r)
	case n.steerMode == SteerProxy:
		n.steered.Add(1)
		n.proxyTo(w, r, owner, fallback, buf, next)
	default:
		n.steered.Add(1)
		n.redirectTo(w, r, owner)
	}
}

// readCloser pairs a replacement body reader with the original closer.
type readCloser struct {
	io.Reader
	io.Closer
}

// redirectTo answers with a 307 to the owner. 307 preserves the method and
// body, so the client re-POSTs the identical request; the steered query
// parameter stops the owner from redirecting onward if its ring disagrees.
func (n *Node) redirectTo(w http.ResponseWriter, r *http.Request, owner string) {
	n.redirected.Add(1)
	q := r.URL.Query()
	q.Set(steerParam, "1")
	u := url.URL{Scheme: "http", Host: owner, Path: r.URL.Path, RawQuery: q.Encode()}
	http.Redirect(w, r, u.String(), http.StatusTemporaryRedirect)
}

// proxyTo forwards the buffered request to the owner and relays the
// response. An unreachable owner is not the client's problem when a
// replica exists: the request falls through to fallback — exactly one
// retry, counted in FailedOver — and only when both fail (or no replica
// exists) does the client see a 502. A fallback of self is served by the
// local handler directly, no loopback HTTP round trip. Each failed
// attempt also strikes the target in the failure detector, so a few
// steered requests hitting a crashed primary accelerate its eviction.
func (n *Node) proxyTo(w http.ResponseWriter, r *http.Request, owner, fallback string, body []byte, next http.Handler) {
	err := n.relayTo(w, r, owner, body)
	if err == nil {
		return
	}
	n.countProxyError(err)
	n.markContact(owner, false)
	if fallback == "" {
		writeJSONError(w, http.StatusBadGateway, "cluster: shard owner "+owner+" unreachable: "+err.Error())
		return
	}
	n.failedOver.Add(1)
	if fallback == n.self {
		// This node is the replica: the body was restored onto r.Body
		// before routing, so the local handler can consume it.
		next.ServeHTTP(w, r)
		return
	}
	if err := n.relayTo(w, r, fallback, body); err != nil {
		n.countProxyError(err)
		n.markContact(fallback, false)
		writeJSONError(w, http.StatusBadGateway,
			"cluster: shard owner "+owner+" and replica "+fallback+" unreachable: "+err.Error())
	}
}

// relayTo attempts one proxy hop: forward the buffered request to target
// with a per-attempt deadline and relay the response — status, every
// header, body — verbatim. A transport failure before anything was
// written to w returns the error so the caller can retry elsewhere; once
// the response starts, a broken relay can only be counted (RelayErrors),
// not retried.
func (n *Node) relayTo(w http.ResponseWriter, r *http.Request, target string, body []byte) error {
	ctx, cancel := context.WithTimeout(r.Context(), n.reqTimeout)
	defer cancel()
	u := url.URL{Scheme: "http", Host: target, Path: r.URL.Path, RawQuery: r.URL.RawQuery}
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(steerHeader, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	n.proxied.Add(1)
	n.markContact(target, true)
	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		n.relayErrors.Add(1)
	}
	return nil
}

// countProxyError classifies one failed proxy attempt: the owner timing
// out (deadline exceeded) and the owner being unreachable (connection
// refused, reset, DNS) are different operational signals — a timeout
// points at overload, unreachable at death — so they count separately.
func (n *Node) countProxyError(err error) {
	var ne net.Error
	if (errors.As(err, &ne) && ne.Timeout()) || errors.Is(err, context.DeadlineExceeded) {
		n.proxyTimeouts.Add(1)
		return
	}
	n.proxyFailures.Add(1)
}

// SteerStats is a snapshot of the steering counters, exposed on
// /v2/cluster/ring.
type SteerStats struct {
	Steered    uint64 `json:"steered"`
	Redirected uint64 `json:"redirected"`
	Proxied    uint64 `json:"proxied"`
	Misrouted  uint64 `json:"misrouted"`
	// ProxyFailures counts proxy attempts that failed without a timeout
	// (owner unreachable); ProxyTimeouts counts attempts that hit the
	// per-attempt deadline. FailedOver counts requests that fell through
	// to the replica after a failed primary attempt; RelayErrors counts
	// responses truncated mid-relay (headers already sent).
	ProxyFailures uint64 `json:"proxy_failures"`
	ProxyTimeouts uint64 `json:"proxy_timeouts"`
	FailedOver    uint64 `json:"failed_over"`
	RelayErrors   uint64 `json:"relay_errors"`
}

// SteerStats returns the current steering counters.
func (n *Node) SteerStats() SteerStats {
	return SteerStats{
		Steered:       n.steered.Load(),
		Redirected:    n.redirected.Load(),
		Proxied:       n.proxied.Load(),
		Misrouted:     n.misrouted.Load(),
		ProxyFailures: n.proxyFailures.Load(),
		ProxyTimeouts: n.proxyTimeouts.Load(),
		FailedOver:    n.failedOver.Load(),
		RelayErrors:   n.relayErrors.Load(),
	}
}
