package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"neusight/internal/plan"
	"neusight/internal/predict"
	"neusight/internal/serve"
)

// slowRoofline delays every batch so the kill-mid-job test has a wide
// window between submission and completion.
type slowRoofline struct {
	predict.Engine
	delay time.Duration
}

func (s slowRoofline) PredictKernels(ctx context.Context, reqs []predict.Request) []predict.Outcome {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
	}
	return s.Engine.PredictKernels(ctx, reqs)
}

// planProc is one in-test cluster member with a planner wired to the
// cluster's fan-out dispatcher — the wiring `neusight serve -peers` does.
type planProc struct {
	addr string
	node *Node
	pm   *plan.Manager
	srv  *http.Server
	once sync.Once
}

// kill tears the member down abruptly; idempotent because the fault
// injection and the test cleanup may both reach the same member.
func (p *planProc) kill() {
	p.once.Do(func() {
		p.node.Stop()
		p.srv.Close()
	})
}

func startPlanProc(t *testing.T, delay time.Duration) *planProc {
	t.Helper()
	reg := predict.NewRegistry()
	var eng predict.Engine = predict.NewRooflineEngine()
	if delay > 0 {
		eng = slowRoofline{Engine: eng, delay: delay}
	}
	reg.MustRegister(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewMulti(reg, predict.EngineRoofline, serve.Config{CacheSize: 64})
	node, err := NewNode(Config{
		Self:           ln.Addr().String(),
		Steer:          SteerProxy,
		PollInterval:   50 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      2,
		Registry:       reg,
		DefaultEngine:  predict.EngineRoofline,
		Invalidate:     svc.InvalidateEngine,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := plan.NewManager("", func(name string) (predict.Engine, error) {
		if name == "" {
			name = predict.EngineRoofline
		}
		return reg.Get(name)
	}, plan.Options{BatchSize: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pm.SetDispatcher(node.PlanDispatcher())
	svc.SetPlanner(pm)
	srv := &http.Server{Handler: node.Handler(serve.NewHandler(svc))}
	go srv.Serve(ln)
	p := &planProc{addr: ln.Addr().String(), node: node, pm: pm, srv: srv}
	t.Cleanup(p.kill)
	return p
}

func startPlanCluster(t *testing.T, n int, delay time.Duration) []*planProc {
	t.Helper()
	procs := make([]*planProc, n)
	for i := range procs {
		procs[i] = startPlanProc(t, delay)
	}
	for i, p := range procs {
		peers := make([]string, 0, n-1)
		for j, o := range procs {
			if j != i {
				peers = append(peers, o.addr)
			}
		}
		p.node.SetPeers(peers)
		p.node.Start()
	}
	return procs
}

func fanoutSpec() plan.Spec {
	return plan.Spec{
		Model:      "BERT-Large",
		GPUs:       []string{"T4", "L4", "V100", "P100", "A100-80GB", "H100"},
		Strategies: []string{plan.StrategyDP},
		FleetSizes: []int{1, 2},
		Seed:       7,
	}
}

func submitPlan(t *testing.T, addr string, spec plan.Spec) plan.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v2/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st plan.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	return st
}

func pollPlan(t *testing.T, addr, id string) plan.Status {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v2/plan/" + id + "?full=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st plan.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d: %+v", resp.StatusCode, st)
	}
	return st
}

func waitPlanTerminal(t *testing.T, addr, id string) plan.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := pollPlan(t, addr, id)
		if st.State != plan.StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %d/%d", id, st.Evaluated, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPlanFansOutAcrossCluster submits a plan to one member of a
// 3-member cluster over real HTTP and verifies the configuration batches
// spread across the shard owners: the job completes with every cell
// evaluated exactly once, a nonzero share of them on peers, and the
// peers' served-cell counters accounting for exactly the remote share.
func TestPlanFansOutAcrossCluster(t *testing.T) {
	procs := startPlanCluster(t, 3, 0)
	a := procs[0]
	st := submitPlan(t, a.addr, fanoutSpec())
	final := waitPlanTerminal(t, a.addr, st.ID)
	if final.State != plan.StateDone || final.Evaluated != final.Total {
		t.Fatalf("final %+v, want done with all %d cells", final, final.Total)
	}
	if len(final.Ranking) != final.Total {
		t.Fatalf("ranking has %d cells, want %d", len(final.Ranking), final.Total)
	}
	seen := map[int]bool{}
	for _, r := range final.Ranking {
		if seen[r.Index] {
			t.Fatalf("cell %d ranked twice", r.Index)
		}
		seen[r.Index] = true
		if r.Error != "" {
			t.Fatalf("cell %d errored: %s", r.Index, r.Error)
		}
	}
	if final.RemoteCells == 0 {
		t.Fatal("no cell evaluated on a peer — fan-out did not happen")
	}
	var served uint64
	for _, p := range procs[1:] {
		served += p.node.planEvalCells.Load()
	}
	if served != uint64(final.RemoteCells) {
		t.Fatalf("peers served %d cells, job credits %d", served, final.RemoteCells)
	}
}

// TestPlanSurvivesKilledMember kills one shard owner mid-job: its pending
// batches must be re-dispatched to the survivors and the job must still
// complete with every cell evaluated exactly once — no lost cells, no
// duplicates.
func TestPlanSurvivesKilledMember(t *testing.T) {
	procs := startPlanCluster(t, 3, 30*time.Millisecond)
	a := procs[0]
	spec := fanoutSpec()

	// Pick the peer owning the most cells as the victim, so the kill is
	// guaranteed to strand dispatched batches.
	norm := spec
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := a.node.PlanDispatcher()
	owned := map[string]int{}
	for _, cfg := range plan.Expand(norm) {
		if addr := d.Assign(predict.EngineRoofline, cfg); addr != "" {
			owned[addr]++
		}
	}
	victim := ""
	for addr, n := range owned {
		if victim == "" || n > owned[victim] {
			victim = addr
		}
	}
	if victim == "" {
		t.Fatal("ring assigned no cells to peers")
	}

	st := submitPlan(t, a.addr, spec)
	// Let the dispatch loop get going, then kill the victim abruptly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := pollPlan(t, a.addr, st.ID)
		if cur.Evaluated >= 1 {
			break
		}
		if cur.State != plan.StateRunning || time.Now().After(deadline) {
			t.Fatalf("no progress before kill: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, p := range procs {
		if p.addr == victim {
			p.kill()
		}
	}

	final := waitPlanTerminal(t, a.addr, st.ID)
	if final.State != plan.StateDone || final.Evaluated != final.Total {
		t.Fatalf("final %+v, want done with all %d cells despite the kill", final, final.Total)
	}
	seen := map[int]bool{}
	for _, r := range final.Ranking {
		if seen[r.Index] {
			t.Fatalf("cell %d ranked twice", r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != final.Total {
		t.Fatalf("%d distinct cells, want %d", len(seen), final.Total)
	}
	if final.RedispatchedBatches == 0 {
		t.Fatal("victim's batches were not re-dispatched")
	}
}
