package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"neusight/internal/plan"
)

// RoutePlanEval is the planner fan-out endpoint: POST evaluates a batch
// of plan configurations on this member and returns the results. It lives
// on the control plane (token-gated) because only peer members call it —
// clients submit plans through /v2/plan on the serving API.
const RoutePlanEval = "/v2/cluster/plan/eval"

// maxPlanEvalBody caps a plan-eval request body: a spec plus a dispatch
// batch of configurations is a few KiB.
const maxPlanEvalBody = 256 << 10

// planEvalTimeout bounds one remote batch evaluation end to end. It is
// deliberately much longer than the per-attempt control timeout: a batch
// is real compute, not a gossip round trip. A SIGKILLed member fails fast
// anyway (connection refused), so re-dispatch latency stays low.
const planEvalTimeout = 30 * time.Second

// planEvalRequest is the fan-out wire format: the job's normalized spec
// plus the batch of cells assigned to this member.
type planEvalRequest struct {
	Engine  string        `json:"engine"`
	Spec    plan.Spec     `json:"spec"`
	Configs []plan.Config `json:"configs"`
}

// planEvalResponse carries the evaluated cells back to the dispatching
// member.
type planEvalResponse struct {
	Results []plan.Result `json:"results"`
}

// handlePlanEval evaluates one dispatched batch with the local engine.
func (n *Node) handlePlanEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req planEvalRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxPlanEvalBody)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Configs) == 0 {
		writeJSONError(w, http.StatusBadRequest, "empty configuration batch")
		return
	}
	name := req.Engine
	if name == "" {
		name = n.def
	}
	eng, err := n.reg.Get(name)
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if err := req.Spec.Normalize(); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	results, err := plan.EvaluateBatch(r.Context(), eng, req.Spec, req.Configs)
	if err != nil {
		// Context cut mid-batch: the dispatcher re-dispatches, so a partial
		// answer must not be recorded as the batch's result.
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	n.planEvalsServed.Add(1)
	n.planEvalCells.Add(uint64(len(results)))
	writeJSON(w, http.StatusOK, planEvalResponse{Results: results})
}

// planDispatcher implements plan.Dispatcher over the cluster: cell
// ownership follows the same (engine, GPU) consistent-hash routing as
// prediction steering, and remote evaluation rides the control plane with
// the configured bearer token.
type planDispatcher struct{ n *Node }

// PlanDispatcher returns the cluster's fan-out hook for a plan.Manager.
func (n *Node) PlanDispatcher() plan.Dispatcher { return planDispatcher{n} }

// Assign names the member that owns cfg's (engine, GPU) shard, or ""
// when this member does (or the ring has no peers). route already
// resolves a dead primary to its replica, so a freshly killed owner's
// cells assign straight to the survivor.
func (d planDispatcher) Assign(engine string, cfg plan.Config) string {
	if d.n.steerMode == SteerOff || len(d.n.Peers()) == 0 {
		return ""
	}
	owner, _, local := d.n.route(engine, cfg.GPU)
	if local {
		return ""
	}
	return owner
}

// EvalRemote runs one batch on addr. Failures strike the member in the
// failure detector — a few failed plan batches accelerate a dead owner's
// eviction the same way failed proxies do.
func (d planDispatcher) EvalRemote(ctx context.Context, addr, engine string, spec plan.Spec, cfgs []plan.Config) ([]plan.Result, error) {
	n := d.n
	body, err := json.Marshal(planEvalRequest{Engine: engine, Spec: spec, Configs: cfgs})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, planEvalTimeout)
	defer cancel()
	u := url.URL{Scheme: "http", Host: addr, Path: RoutePlanEval}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	n.setAuth(req)
	resp, err := n.client.Do(req)
	if err != nil {
		n.countProxyError(err)
		n.markContact(addr, false)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The member answered, so it is alive — do not strike it — but the
		// batch failed there; the caller re-dispatches locally.
		n.markContact(addr, true)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("cluster: plan eval on %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var per planEvalResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&per); err != nil {
		n.markContact(addr, false)
		return nil, fmt.Errorf("cluster: plan eval on %s: %w", addr, err)
	}
	n.markContact(addr, true)
	return per.Results, nil
}
