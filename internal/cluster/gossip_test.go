package cluster

import (
	"context"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/serve"
)

// proc is one in-test "serve process": a full serving stack (engine
// registry, Service, cluster Node, HTTP server on a real listener) — what
// `neusight serve -peers ...` assembles in production.
type proc struct {
	addr string
	svc  *serve.Service
	node *Node
	eng  *stubEngine
	srv  *http.Server
}

// procOpts tunes startProcOpts beyond the defaults startProc picks.
type procOpts struct {
	lat   float64
	mode  string
	addr  string        // "" = any free port
	token string        // control-plane bearer token
	sweep time.Duration // health-sweep cadence (0 = package default)
}

// startProc boots a process whose single engine "alpha" answers lat,
// serving the cluster-wrapped API on a real TCP listener. Peers are wired
// afterwards via SetPeers (addresses exist only once listeners are up).
func startProc(t *testing.T, lat float64, mode string) *proc {
	return startProcOpts(t, procOpts{lat: lat, mode: mode})
}

// startProcOpts is startProc with knobs: a fixed listen address (how the
// kill-a-member test restarts a process at the same identity), a
// control-plane token, and a health-sweep cadence.
func startProcOpts(t *testing.T, o procOpts) *proc {
	t.Helper()
	addr := o.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	reg, eng := stubRegistry(o.lat)
	svc := serve.NewMulti(reg, "alpha", serve.Config{CacheSize: 256})
	node, err := NewNode(Config{
		Self:           ln.Addr().String(),
		Steer:          o.mode,
		PollInterval:   50 * time.Millisecond,
		HealthInterval: o.sweep,
		Registry:       reg,
		DefaultEngine:  "alpha",
		Invalidate:     svc.InvalidateEngine,
		Token:          o.token,
		TraceDump:      svc.TraceJSONL,
		WarmOwned: func(data []byte, owns func(engine, gpuName string) bool) (int, error) {
			return svc.WarmFromTraceData(context.Background(), data, owns)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node.Handler(serve.NewHandler(svc))}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &proc{addr: ln.Addr().String(), svc: svc, node: node, eng: eng, srv: srv}
}

// kill closes the process's listener and connections — the in-test
// equivalent of SIGKILL: the address stops answering instantly, with no
// drain and no goodbye to peers.
func (p *proc) kill() { p.srv.Close() }

// twoProcs boots two peered processes (A answers 1, B answers 2).
func twoProcs(t *testing.T, mode string) (a, b *proc) {
	t.Helper()
	a = startProc(t, 1, mode)
	b = startProc(t, 2, mode)
	a.node.SetPeers([]string{b.addr})
	b.node.SetPeers([]string{a.addr})
	return a, b
}

// view builds a single-origin GenMessage view.
func view(origin string, instance uint64, gens map[string]uint64) map[string]OriginView {
	return map[string]OriginView{origin: {Instance: instance, Generations: gens}}
}

// TestAbsorbSemantics pins when an absorbed view invalidates: once per
// piece of news (an origin's generation for an engine rising above what
// we had seen from that origin's current instance), never on repeats,
// echoes of our own slice, or non-member origins.
func TestAbsorbSemantics(t *testing.T) {
	reg, _ := stubRegistry(1)
	invalidated := []string{}
	n, err := NewNode(Config{
		Self: "h1:1", Peers: []string{"h2:1"}, Registry: reg, DefaultEngine: "alpha",
		Invalidate: func(name string) int { invalidated = append(invalidated, name); return 3 },
	})
	if err != nil {
		t.Fatal(err)
	}

	// A peer appearing with generation 0 (fresh, untrained state): no news.
	if got := n.Absorb(GenMessage{Node: "p", Views: view("h2:1", 11, map[string]uint64{"alpha": 0})}); got != 0 {
		t.Fatalf("absorb gen 0 invalidated %d engines, want 0", got)
	}
	// The peer's generation rises: invalidate once...
	if got := n.Absorb(GenMessage{Node: "p", Views: view("h2:1", 11, map[string]uint64{"alpha": 2})}); got != 1 {
		t.Fatalf("absorb gen 2 invalidated %d engines, want 1", got)
	}
	// ...and never again for the same generation.
	if got := n.Absorb(GenMessage{Node: "p", Views: view("h2:1", 11, map[string]uint64{"alpha": 2})}); got != 0 {
		t.Fatalf("re-absorb gen 2 invalidated %d engines, want 0", got)
	}
	// Echoes of our own slice (a peer gossiping our state back, even a
	// garbled one) are never news: the local registry is authoritative.
	if got := n.Absorb(GenMessage{Node: "p", Views: view("h1:1", 99, map[string]uint64{"alpha": 99})}); got != 0 {
		t.Fatalf("absorb echo of own slice invalidated %d engines, want 0", got)
	}
	// Engines this process does not serve are tracked but the callback
	// decides what dropping means (here: nothing cached, still counted).
	if got := n.Absorb(GenMessage{Node: "p", Views: view("h2:1", 11, map[string]uint64{"ghost": 9})}); got != 1 {
		t.Fatalf("absorb unknown engine invalidated %d, want 1 (callback decides)", got)
	}
	if len(invalidated) != 2 || invalidated[0] != "alpha" || invalidated[1] != "ghost" {
		t.Fatalf("invalidate calls = %v, want [alpha ghost]", invalidated)
	}
	st := n.GossipStats()
	if st.Absorbed != 5 || st.Invalidations != 2 || st.DroppedEntries != 6 {
		t.Fatalf("gossip stats = %+v, want absorbed 5, invalidations 2, dropped 6", st)
	}
}

// TestAbsorbPerOriginCounters is the regression test for the masked
// retrain: generations are per-process counters, so a member whose
// counter sits below another's must still propagate its retrains. With a
// single max-merged view, B@5 absorbed into a cluster view already at 7
// (from A) would make B's later bump to 6 invisible forever.
func TestAbsorbPerOriginCounters(t *testing.T) {
	reg, _ := stubRegistry(1)
	var drops atomic.Int64
	n, err := NewNode(Config{
		Self: "h1:1", Peers: []string{"hA:1", "hB:1"}, Registry: reg, DefaultEngine: "alpha",
		Invalidate: func(string) int { drops.Add(1); return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// First contact: A trained to gen 7, B to gen 5 — both are news.
	n.Absorb(GenMessage{Node: "a", Views: view("hA:1", 1, map[string]uint64{"alpha": 7})})
	n.Absorb(GenMessage{Node: "b", Views: view("hB:1", 2, map[string]uint64{"alpha": 5})})
	if got := drops.Load(); got != 2 {
		t.Fatalf("first-contact invalidations = %d, want 2", got)
	}
	// B retrains: 5 -> 6. Its counter is still below A's 7, but it is
	// news about origin B and must invalidate.
	if got := n.Absorb(GenMessage{Node: "b", Views: view("hB:1", 2, map[string]uint64{"alpha": 6})}); got != 1 {
		t.Fatalf("B's retrain below A's counter invalidated %d, want 1 (the masked-retrain bug)", got)
	}
}

// TestAbsorbInstanceRestart is the regression test for the restart-masked
// retrain: a restarted member counts generations from zero again, so its
// new instance must void the high-water marks its dead incarnation left
// behind — otherwise a restart-plus-retrain landing at or below the old
// counter would never invalidate peers again.
func TestAbsorbInstanceRestart(t *testing.T) {
	reg, _ := stubRegistry(1)
	var drops atomic.Int64
	n, err := NewNode(Config{
		Self: "h1:1", Peers: []string{"hB:1"}, Registry: reg, DefaultEngine: "alpha",
		Invalidate: func(string) int { drops.Add(1); return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// B's first incarnation trains to gen 7.
	n.Absorb(GenMessage{Node: "b", Views: view("hB:1", 1, map[string]uint64{"alpha": 7})})
	// B restarts and retrains to gen 7 again — same counter, new weights,
	// new instance. Must invalidate.
	if got := n.Absorb(GenMessage{Node: "b", Views: view("hB:1", 2, map[string]uint64{"alpha": 7})}); got != 1 {
		t.Fatalf("restarted member at the same counter invalidated %d, want 1", got)
	}
	// And the new incarnation's own counter behaves normally afterwards.
	if got := n.Absorb(GenMessage{Node: "b", Views: view("hB:1", 2, map[string]uint64{"alpha": 7})}); got != 0 {
		t.Fatalf("re-absorb after restart invalidated %d, want 0", got)
	}
	if got := n.Absorb(GenMessage{Node: "b", Views: view("hB:1", 2, map[string]uint64{"alpha": 8})}); got != 1 {
		t.Fatalf("retrain after restart invalidated %d, want 1", got)
	}
}

// TestAbsorbIgnoresForeignOrigins: origins outside the configured
// membership are dropped outright — a forged or misdirected payload must
// not grow this node's memory, spam invalidations, or be re-gossiped.
func TestAbsorbIgnoresForeignOrigins(t *testing.T) {
	reg, _ := stubRegistry(1)
	var drops atomic.Int64
	n, err := NewNode(Config{
		Self: "h1:1", Peers: []string{"h2:1"}, Registry: reg, DefaultEngine: "alpha",
		Invalidate: func(string) int { drops.Add(1); return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Absorb(GenMessage{Node: "x", Views: view("evil:666", 1, map[string]uint64{"alpha": 1 << 60})}); got != 0 {
		t.Fatalf("foreign origin invalidated %d engines, want 0", got)
	}
	if drops.Load() != 0 {
		t.Fatal("foreign origin must not reach the invalidate callback")
	}
	if _, ok := n.Snapshot().Views["evil:666"]; ok {
		t.Fatal("foreign origin must not be tracked or re-gossiped")
	}
	if st := n.GossipStats(); st.ForeignOrigins != 1 {
		t.Fatalf("gossip stats = %+v, want 1 foreign origin counted", st)
	}
}

// TestSnapshotIsTransitive: a view absorbed from one peer appears in the
// snapshot served to others, so gossip spreads without a full mesh of
// pushes.
func TestSnapshotIsTransitive(t *testing.T) {
	n := newTestNode(t, "h1:1", []string{"h2:1"})
	n.Absorb(GenMessage{Node: "h2:1", Views: view("h2:1", 5, map[string]uint64{"alpha": 7, "other": 3})})
	snap := n.Snapshot()
	if snap.Node != "h1:1" {
		t.Errorf("snapshot node = %q, want h1:1", snap.Node)
	}
	v := snap.Views["h2:1"]
	if v.Generations["alpha"] != 7 || v.Generations["other"] != 3 || v.Instance != 5 {
		t.Fatalf("snapshot = %+v, want absorbed origin slice (incl. instance) folded in", snap.Views)
	}
	if _, ok := snap.Views["h1:1"]; !ok {
		t.Fatal("snapshot must carry the node's own slice")
	}
}

// TestGossipInvalidationRoundTrip is the heart of the cluster layer: a
// retrain on process A invalidates the stale cached prediction on process
// B — in the push direction (A's SyncNow) and the poll direction (B's
// SyncNow) both.
func TestGossipInvalidationRoundTrip(t *testing.T) {
	a, b := twoProcs(t, SteerOff)
	g := gpu.MustLookup("H100")
	k := kernels.NewBMM(2, 64, 64, 64)

	// B serves and caches its answer.
	if lat, err := b.svc.PredictKernel(k, g); err != nil || lat != 2 {
		t.Fatalf("B cold = (%v, %v), want 2", lat, err)
	}
	// The shared model changes behind B's back (B's replica will answer 99
	// once re-evaluated) — but B's cache still holds the stale 2, and B's
	// local generation never moved, so the cache key still reaches it.
	b.eng.lat.Store(99.0)
	if lat, _ := b.svc.PredictKernel(k, g); lat != 2 {
		t.Fatalf("B pre-gossip = %v, want the stale cached 2 (the bug this layer fixes)", lat)
	}

	// A retrains: its generation bumps, and one gossip round pushes the
	// news to B, which drops its alpha partition.
	a.eng.gen.Store(1)
	a.node.SyncNow()
	if lat, err := b.svc.PredictKernel(k, g); err != nil || lat != 99 {
		t.Fatalf("B after push = (%v, %v), want fresh 99", lat, err)
	}
	if st := b.node.GossipStats(); st.Invalidations != 1 || st.DroppedEntries == 0 {
		t.Fatalf("B gossip stats = %+v, want 1 invalidation dropping entries", st)
	}

	// Poll direction: A retrains again; B's own sync polls A and absorbs.
	b.eng.lat.Store(100.0)
	if lat, _ := b.svc.PredictKernel(k, g); lat != 99 {
		t.Fatal("B should have recached 99 before the second retrain")
	}
	a.eng.gen.Store(2)
	b.node.SyncNow()
	if lat, err := b.svc.PredictKernel(k, g); err != nil || lat != 100 {
		t.Fatalf("B after poll = (%v, %v), want fresh 100", lat, err)
	}
	if st := a.node.GossipStats(); st.Pushes == 0 {
		t.Errorf("A gossip stats = %+v, want at least one push", st)
	}
}

// TestGossipHTTPEndpoint exercises the wire protocol directly: GET
// returns the view, POST absorbs one, bad payloads are rejected.
func TestGossipHTTPEndpoint(t *testing.T) {
	a, b := twoProcs(t, SteerOff)

	resp, err := http.Get("http://" + a.addr + RouteGenerations)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET generations = %d, want 200", resp.StatusCode)
	}

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post("http://"+a.addr+RouteGenerations, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	// The posted origin must be a cluster member to count: use B's address.
	if code := post(`{"node":"` + b.addr + `","views":{"` + b.addr + `":{"instance":9,"generations":{"alpha":4}}}}`); code != http.StatusOK {
		t.Fatalf("POST generations = %d, want 200", code)
	}
	if a.node.GossipStats().Invalidations != 1 {
		t.Fatal("posted generation should have invalidated")
	}
	if code := post(`{"node":`); code != http.StatusBadRequest {
		t.Fatalf("POST bad JSON = %d, want 400", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, "http://"+a.addr+RouteGenerations, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE generations = %d, want 405", dresp.StatusCode)
	}
}
