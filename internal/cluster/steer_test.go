package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// gpuOwnedBy finds a registered GPU whose (alpha, GPU) key the given
// member owns, from n's view of the ring.
func gpuOwnedBy(t *testing.T, n *Node, owner string) gpu.Spec {
	t.Helper()
	for _, g := range gpu.All() {
		if got, _ := n.Owner("alpha", g.Name); got == owner {
			return g
		}
	}
	t.Fatalf("no registered GPU hashes to member %s — ring degenerate", owner)
	return gpu.Spec{}
}

// kernelBody builds a /v2/predict/kernel request for g.
func kernelBody(g gpu.Spec) string {
	return fmt.Sprintf(`{"op":"bmm","b":2,"m":64,"k":64,"n":64,"gpu":%q,"engine":"alpha"}`, g.Name)
}

// postKernel POSTs a kernel prediction and decodes the latency.
func postKernel(t *testing.T, client *http.Client, target string, g gpu.Spec) (float64, int) {
	t.Helper()
	resp, err := client.Post(target, "application/json", strings.NewReader(kernelBody(g)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		LatencyMs float64 `json:"latency_ms"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.LatencyMs, resp.StatusCode
}

// noFollow is a client that surfaces redirects instead of following them.
func noFollow() *http.Client {
	return &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

// TestRedirectSteering: a request for a peer-owned shard gets a 307 to
// the owner carrying the steered marker; a redirect-following client ends
// up served by the owner.
func TestRedirectSteering(t *testing.T) {
	a, b := twoProcs(t, SteerRedirect)
	gB := gpuOwnedBy(t, a.node, b.addr)

	resp, err := noFollow().Post("http://"+a.addr+"/v2/predict/kernel", "application/json",
		strings.NewReader(kernelBody(gB)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	loc, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Host != b.addr {
		t.Fatalf("redirect host = %s, want owner %s", loc.Host, b.addr)
	}
	if loc.Path != "/v2/predict/kernel" || loc.Query().Get(steerParam) != "1" {
		t.Fatalf("redirect location = %s, want same path with %s=1", loc, steerParam)
	}

	// A following client lands on B (latency 2). Go re-POSTs the body on
	// 307 automatically.
	lat, code := postKernel(t, &http.Client{}, "http://"+a.addr+"/v2/predict/kernel", gB)
	if code != http.StatusOK || lat != 2 {
		t.Fatalf("followed redirect = (%v, %d), want latency 2 from B", lat, code)
	}
	if b.eng.calls.Load() == 0 {
		t.Fatal("owner's engine was never evaluated")
	}
	st := a.node.SteerStats()
	if st.Steered != 2 || st.Redirected != 2 {
		t.Fatalf("A steering stats = %+v, want 2 steered/redirected (one unfollowed, one followed)", st)
	}
}

// TestProxySteering: in proxy mode the non-owner forwards the request and
// relays the owner's answer — the client never sees a redirect.
func TestProxySteering(t *testing.T) {
	a, b := twoProcs(t, SteerProxy)
	gB := gpuOwnedBy(t, a.node, b.addr)

	lat, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gB)
	if code != http.StatusOK || lat != 2 {
		t.Fatalf("proxied = (%v, %d), want latency 2 from B with no redirect", lat, code)
	}
	if a.eng.calls.Load() != 0 {
		t.Fatal("non-owner must not evaluate a proxied request")
	}
	st := a.node.SteerStats()
	if st.Steered != 1 || st.Proxied != 1 || st.Redirected != 0 {
		t.Fatalf("A steering stats = %+v, want 1 steered/proxied", st)
	}
	// The owner saw a steered request it owns: not a mis-route.
	if bst := b.node.SteerStats(); bst.Misrouted != 0 {
		t.Fatalf("B steering stats = %+v, want 0 misrouted", bst)
	}
}

// TestLocallyOwnedNotSteered: requests for keys this process owns are
// served in place, whatever the mode.
func TestLocallyOwnedNotSteered(t *testing.T) {
	a, b := twoProcs(t, SteerRedirect)
	_ = b
	gA := gpuOwnedBy(t, a.node, a.addr)
	lat, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gA)
	if code != http.StatusOK || lat != 1 {
		t.Fatalf("local key = (%v, %d), want latency 1 served by A", lat, code)
	}
	if st := a.node.SteerStats(); st.Steered != 0 {
		t.Fatalf("A steering stats = %+v, want nothing steered", st)
	}
}

// TestMisroutedServedLocally: a request that already carries the steered
// marker is served where it lands — counted as a ring disagreement, never
// bounced again.
func TestMisroutedServedLocally(t *testing.T) {
	a, b := twoProcs(t, SteerRedirect)
	gB := gpuOwnedBy(t, a.node, b.addr)

	lat, code := postKernel(t, noFollow(),
		"http://"+a.addr+"/v2/predict/kernel?"+steerParam+"=1", gB)
	if code != http.StatusOK || lat != 1 {
		t.Fatalf("misrouted = (%v, %d), want latency 1 served locally by A", lat, code)
	}
	st := a.node.SteerStats()
	if st.Misrouted != 1 || st.Steered != 0 {
		t.Fatalf("A steering stats = %+v, want 1 misrouted, 0 steered", st)
	}
}

// TestSteerOff: off mode serves everything locally, peers or not.
func TestSteerOff(t *testing.T) {
	a, b := twoProcs(t, SteerOff)
	gB := gpuOwnedBy(t, a.node, b.addr)
	lat, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gB)
	if code != http.StatusOK || lat != 1 {
		t.Fatalf("steer=off = (%v, %d), want latency 1 served locally", lat, code)
	}
}

// TestSteeringPassesBadBodiesThrough: requests steering cannot parse go
// to the local serving layer for its ordinary client errors.
func TestSteeringPassesBadBodiesThrough(t *testing.T) {
	a, _ := twoProcs(t, SteerRedirect)
	resp, err := http.Post("http://"+a.addr+"/v2/predict/kernel", "application/json",
		strings.NewReader(`{"op":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400 from the serving layer", resp.StatusCode)
	}
	resp, err = http.Post("http://"+a.addr+"/v2/predict/kernel", "application/json",
		strings.NewReader(`{"op":"bmm","b":2,"m":64,"k":64,"n":64,"gpu":"NoSuchGPU"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown GPU = %d, want 400 from the serving layer", resp.StatusCode)
	}
}

// TestProxyOwnerUnreachableFailsOverToSelf: with one unreachable peer,
// every peer-owned key's replica is this node — so a proxy attempt that
// cannot reach the primary falls through to serving locally, counted,
// instead of handing the client a 502.
func TestProxyOwnerUnreachableFailsOverToSelf(t *testing.T) {
	a := startProc(t, 1, SteerProxy)
	// A peer that is not listening: port 1 on localhost.
	dead := "127.0.0.1:1"
	a.node.SetPeers([]string{dead})
	gDead := gpuOwnedBy(t, a.node, dead)
	lat, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gDead)
	if code != http.StatusOK || lat != 1 {
		t.Fatalf("unreachable owner = (%v, %d), want latency 1 served by the local replica", lat, code)
	}
	st := a.node.SteerStats()
	if st.FailedOver != 1 || st.ProxyFailures != 1 {
		t.Fatalf("A steering stats = %+v, want 1 failed_over and 1 proxy failure", st)
	}
	if st.RelayErrors != 0 {
		t.Fatalf("A steering stats = %+v, want 0 relay errors", st)
	}
}

// gpuOwnedByNeither finds a GPU whose (alpha, GPU) key has both primary
// and replica on other members, from n's view of the ring.
func gpuOwnedByNeither(t *testing.T, n *Node, self string) gpu.Spec {
	t.Helper()
	for _, g := range gpu.All() {
		primary, replica := n.Owners("alpha", g.Name)
		if primary != self && replica != self && replica != "" {
			return g
		}
	}
	t.Fatalf("no registered GPU has both owners off %s — ring degenerate", self)
	return gpu.Spec{}
}

// TestProxyBothOwnersDead: when the primary AND the replica are
// unreachable, the client finally sees the 502 — one retry, not an
// unbounded walk of the ring.
func TestProxyBothOwnersDead(t *testing.T) {
	a := startProc(t, 1, SteerProxy)
	a.node.SetPeers([]string{"127.0.0.1:1", "127.0.0.1:2"})
	g := gpuOwnedByNeither(t, a.node, a.addr)
	_, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", g)
	if code != http.StatusBadGateway {
		t.Fatalf("both owners unreachable = %d, want 502", code)
	}
	st := a.node.SteerStats()
	if st.FailedOver != 1 {
		t.Fatalf("A steering stats = %+v, want 1 failed_over (exactly one retry)", st)
	}
	if st.ProxyFailures+st.ProxyTimeouts != 2 {
		t.Fatalf("A steering stats = %+v, want 2 failed attempts", st)
	}
}

// TestRedirectToReplicaWhenPrimaryDead: once the failure detector
// declares a member dead, its keys' redirects point at the replica — the
// next distinct member on the ring — not at the corpse.
func TestRedirectToReplicaWhenPrimaryDead(t *testing.T) {
	a := startProc(t, 1, SteerRedirect)
	a.node.SetPeers([]string{"127.0.0.1:1", "127.0.0.1:2"})
	g := gpuOwnedByNeither(t, a.node, a.addr)
	primary, replica := a.node.Owners("alpha", g.Name)

	for i := 0; i < DefaultDeadAfter; i++ {
		a.node.markContact(primary, false)
	}
	resp, err := noFollow().Post("http://"+a.addr+"/v2/predict/kernel", "application/json",
		strings.NewReader(kernelBody(g)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	loc, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Host != replica {
		t.Fatalf("redirect host = %s, want replica %s (primary %s is dead)", loc.Host, replica, primary)
	}
}

// TestRingEndpoint: /v2/cluster/ring exposes the membership and a full
// (engine, GPU) -> owner assignment both members agree on.
func TestRingEndpoint(t *testing.T) {
	a, b := twoProcs(t, SteerRedirect)

	fetch := func(addr string) RingResponse {
		t.Helper()
		resp, err := http.Get("http://" + addr + RouteRing)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET ring = %d, want 200", resp.StatusCode)
		}
		var rr RingResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}

	ra, rb := fetch(a.addr), fetch(b.addr)
	if ra.Self != a.addr || ra.Mode != SteerRedirect {
		t.Fatalf("ring self/mode = %s/%s, want %s/%s", ra.Self, ra.Mode, a.addr, SteerRedirect)
	}
	if len(ra.Members) != 2 {
		t.Fatalf("members = %v, want both processes", ra.Members)
	}
	want := len(gpu.All()) // one engine registered
	if len(ra.Assignments) != want {
		t.Fatalf("assignments = %d, want %d (engines x GPUs)", len(ra.Assignments), want)
	}
	owners := map[string]string{}
	for _, as := range ra.Assignments {
		if as.Owner != a.addr && as.Owner != b.addr {
			t.Fatalf("assignment %+v names a non-member owner", as)
		}
		if as.Local != (as.Owner == a.addr) {
			t.Fatalf("assignment %+v: local flag disagrees with owner", as)
		}
		owners[as.Engine+"|"+as.GPU] = as.Owner
	}
	for _, as := range rb.Assignments {
		if owners[as.Engine+"|"+as.GPU] != as.Owner {
			t.Fatalf("A and B disagree on owner of %s|%s", as.Engine, as.GPU)
		}
	}
}

// TestControlHandlerServesOnlyClusterRoutes pins the -cluster-listen
// surface: control routes answer, the prediction API does not exist there.
func TestControlHandlerServesOnlyClusterRoutes(t *testing.T) {
	a, _ := twoProcs(t, SteerOff)
	h := a.node.ControlHandler()
	for path, want := range map[string]int{
		RouteRing:          http.StatusOK,
		RouteGenerations:   http.StatusOK,
		"/v2/predict/何か":   http.StatusNotFound,
		"/v1/predict/kern": http.StatusNotFound,
	} {
		req, _ := http.NewRequest(http.MethodGet, "http://x"+path, nil)
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		if rec.code != want {
			t.Errorf("control %s = %d, want %d", path, rec.code, want)
		}
	}
}

// newRecorder is a minimal ResponseWriter capturing the status code.
type recorder struct {
	code   int
	header http.Header
	body   []byte
}

func newRecorder() *recorder { return &recorder{code: http.StatusOK, header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(c int)   { r.code = c }
func (r *recorder) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}

// TestClusterEndToEnd is the acceptance scenario: two peered serve
// processes with background gossip running — a retrain on A invalidates
// B's stale cached prediction within a gossip interval, and a request for
// a B-owned shard sent to A is steered to B.
func TestClusterEndToEnd(t *testing.T) {
	a, b := twoProcs(t, SteerRedirect)
	a.node.Start()
	b.node.Start()
	t.Cleanup(a.node.Stop)
	t.Cleanup(b.node.Stop)

	// Steering: the request lands on A, is steered to B, and B answers.
	gB := gpuOwnedBy(t, a.node, b.addr)
	lat, code := postKernel(t, &http.Client{}, "http://"+a.addr+"/v2/predict/kernel", gB)
	if code != http.StatusOK || lat != 2 {
		t.Fatalf("steered request = (%v, %d), want B's latency 2", lat, code)
	}
	if st := a.node.SteerStats(); st.Redirected == 0 {
		t.Fatalf("A steering stats = %+v, want a redirect", st)
	}

	// Gossip: B caches, the model drifts, A retrains — the background loop
	// must invalidate B without any explicit sync call.
	k := kernels.NewBMM(4, 128, 128, 128)
	if lat, err := b.svc.PredictKernel(k, gB); err != nil || lat != 2 {
		t.Fatalf("B cold = (%v, %v)", lat, err)
	}
	b.eng.lat.Store(42.0)
	a.eng.gen.Store(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if lat, _ := b.svc.PredictKernel(k, gB); lat == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("B still serving the stale forecast after %v of background gossip", 10*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
