package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Member lifecycle states. A member starts alive, accumulates one strike
// per failed contact (gossip push/poll, health probe), turns suspect at
// SuspectAfter strikes and dead at DeadAfter. A dead member is evicted
// from the membership ring — its shards fail over to their replicas — but
// stays in the member list and keeps being probed, so the first successful
// contact readmits it (state back to alive, ring rebuilt). Any successful
// contact resets the strike count.
const (
	MemberAlive   = "alive"
	MemberSuspect = "suspect"
	MemberDead    = "dead"
)

// Failure-detection defaults: strikes before a member is suspected and
// before it is declared dead. Contacts come from the gossip loop (one poll
// per interval, plus pushes when the view changes) and the health sweeper
// (one probe per HealthInterval), so with the default intervals a crashed
// member is suspect within ~2s and dead — evicted from the ring — within
// ~4s of its last successful contact.
const (
	DefaultSuspectAfter = 2
	DefaultDeadAfter    = 4
)

// memberState is the failure detector's per-peer record. Guarded by
// Node.mu alongside the ring built over it.
type memberState struct {
	instance uint64 // last instance ID seen from this member (0 unknown)
	state    string
	strikes  int
	lastSeen time.Time // last successful contact; zero before the first
}

// MemberStatus is the wire form of one member's health, exposed on
// /v2/cluster/health and /v2/cluster/ring.
type MemberStatus struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Strikes  int    `json:"strikes,omitempty"`
	Instance uint64 `json:"instance,omitempty"`
	// LastSeenAgoMs is how long ago the last successful contact was; -1
	// before any contact. Self reports 0.
	LastSeenAgoMs float64 `json:"last_seen_ago_ms"`
	Self          bool    `json:"self,omitempty"`
}

// MemberStates returns every member's health, self included, sorted by
// address.
func (n *Node) MemberStates() []MemberStatus {
	n.mu.RLock()
	out := make([]MemberStatus, 0, len(n.members)+1)
	out = append(out, MemberStatus{Addr: n.self, State: MemberAlive, Instance: n.instance, Self: true})
	for addr, st := range n.members {
		ms := MemberStatus{Addr: addr, State: st.state, Strikes: st.strikes, Instance: st.instance, LastSeenAgoMs: -1}
		if !st.lastSeen.IsZero() {
			ms.LastSeenAgoMs = float64(time.Since(st.lastSeen)) / float64(time.Millisecond)
		}
		out = append(out, ms)
	}
	n.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// memberDead reports whether addr is currently declared dead. Self is
// never dead.
func (n *Node) memberDead(addr string) bool {
	if addr == n.self {
		return false
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	st := n.members[addr]
	return st != nil && st.state == MemberDead
}

// AddMember admits addr into the membership as alive (a no-op if already
// present), rebuilding the ring. It is how join requests and gossiped
// membership views grow the cluster at runtime. Returns whether the
// member was new.
func (n *Node) AddMember(addr string, instance uint64) bool {
	if addr == "" || addr == n.self {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.members[addr]
	if st != nil {
		if instance != 0 {
			st.instance = instance
		}
		return false
	}
	n.members[addr] = &memberState{state: MemberAlive, instance: instance}
	n.rebuildRingLocked()
	return true
}

// markContact feeds one contact outcome with addr into the failure
// detector: success resets strikes and readmits a suspect or dead member;
// failure adds a strike and walks the member toward suspect then dead.
// Ring rebuilds happen only on dead transitions (either direction) —
// suspect members keep their shards.
func (n *Node) markContact(addr string, ok bool) {
	if addr == n.self {
		return
	}
	n.mu.Lock()
	st := n.members[addr]
	if st == nil {
		n.mu.Unlock()
		return
	}
	rebuild := false
	if ok {
		st.strikes = 0
		st.lastSeen = time.Now()
		if st.state != MemberAlive {
			if st.state == MemberDead {
				rebuild = true
				n.readmissions.Add(1)
			}
			st.state = MemberAlive
		}
	} else {
		st.strikes++
		switch {
		case st.strikes >= n.deadAfter && st.state != MemberDead:
			st.state = MemberDead
			rebuild = true
			n.evictions.Add(1)
		case st.strikes >= n.suspectAfter && st.state == MemberAlive:
			st.state = MemberSuspect
		}
	}
	if rebuild {
		n.rebuildRingLocked()
	}
	n.mu.Unlock()
}

// rebuildRingLocked rebuilds the membership ring over self plus every
// non-dead member. Callers hold n.mu.
func (n *Node) rebuildRingLocked() {
	members := []string{n.self}
	for addr, st := range n.members {
		if st.state != MemberDead {
			members = append(members, addr)
		}
	}
	sort.Strings(members)
	n.ring = buildRing(members)
}

// MemberInfo is one member's slice of the gossiped membership view: its
// address maps to the process instance last seen at it. Absorbing a view
// admits members this node has not heard of — a join anywhere in the
// cluster reaches everyone within a gossip round or two.
type MemberInfo struct {
	Instance uint64 `json:"instance,omitempty"`
}

// membersView snapshots the membership (self included) in wire form.
func (n *Node) membersView() map[string]MemberInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	view := make(map[string]MemberInfo, len(n.members)+1)
	view[n.self] = MemberInfo{Instance: n.instance}
	for addr, st := range n.members {
		view[addr] = MemberInfo{Instance: st.instance}
	}
	return view
}

// absorbMembers merges a gossiped membership view: unknown members are
// admitted as alive, and a changed instance ID (the member restarted) is
// recorded. It deliberately does not resurrect dead members — readmission
// requires a successful direct contact (markContact), not a rumor.
func (n *Node) absorbMembers(members map[string]MemberInfo) {
	for addr, info := range members {
		n.AddMember(addr, info.Instance)
	}
}

// JoinRequest is the body of POST /v2/cluster/join: the joining process
// announces the address peers reach it at and its instance ID.
type JoinRequest struct {
	Addr     string `json:"addr"`
	Instance uint64 `json:"instance,omitempty"`
}

// JoinResponse is the seed member's reply: its full membership view and
// its generation views, so the joiner starts with the cluster's current
// state instead of converging from nothing.
type JoinResponse struct {
	Members map[string]MemberInfo `json:"members"`
	Views   map[string]OriginView `json:"views"`
}

// Join contacts the seed member's /v2/cluster/join, announces this node,
// and adopts the membership and generation views the seed returns. After
// a successful Join the node's next gossip round announces it to every
// member the seed knew about.
func (n *Node) Join(ctx context.Context, seed string) error {
	body, err := json.Marshal(JoinRequest{Addr: n.self, Instance: n.instance})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, n.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+seed+RouteJoin, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	n.setAuth(req)
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: joining via %s: %w", seed, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("cluster: seed %s rejected join with %d", seed, resp.StatusCode)
	}
	var jr JoinResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxControlBody)).Decode(&jr); err != nil {
		return fmt.Errorf("cluster: decoding join response from %s: %w", seed, err)
	}
	n.absorbMembers(jr.Members)
	n.AddMember(seed, jr.Members[seed].Instance)
	n.markContact(seed, true)
	n.Absorb(GenMessage{Node: seed, Views: jr.Views, Members: jr.Members})
	return nil
}

// WarmFromOwners pulls the recorded workload traces of every reachable
// member and warms the local caches with the keys this node now owns (as
// primary or replica) under the joined ring — so a joining member's first
// steered request is a cache hit instead of a cold model evaluation.
// Members without a trace contribute nothing; unreachable members are
// skipped and counted in the returned skipped tally.
func (n *Node) WarmFromOwners(ctx context.Context) (warmed, peersSkipped int, err error) {
	if n.warmOwned == nil {
		return 0, 0, nil
	}
	owns := func(engine, gpuName string) bool {
		primary, replica := n.Owners(engine, gpuName)
		return primary == n.self || replica == n.self
	}
	for _, peer := range n.Peers() {
		if n.memberDead(peer) {
			peersSkipped++
			continue
		}
		data, ferr := n.fetchTrace(ctx, peer)
		if ferr != nil {
			peersSkipped++
			continue
		}
		if len(data) == 0 {
			continue
		}
		w, werr := n.warmOwned(data, owns)
		warmed += w
		if werr != nil && err == nil {
			err = werr
		}
	}
	return warmed, peersSkipped, err
}

// fetchTrace GETs one member's recorded workload trace (JSONL).
func (n *Node) fetchTrace(ctx context.Context, peer string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, n.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+RouteTrace, nil)
	if err != nil {
		return nil, err
	}
	n.setAuth(req)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: peer %s returned %d for trace", peer, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxTraceBody))
}
