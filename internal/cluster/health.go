package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// DefaultHealthInterval is the health sweeper's cadence: how often every
// member (dead ones included — that is how they are readmitted) is probed
// on its /v1/healthz. Together with the gossip loop's contacts it drives
// the suspect/dead state machine; see DefaultSuspectAfter/DefaultDeadAfter
// for the resulting detection latency.
const DefaultHealthInterval = time.Second

// DefaultRequestTimeout bounds every individual outbound cluster request
// — a gossip push or poll, a health probe, a steering proxy attempt, a
// join, a trace fetch. One hung member must cost one attempt's deadline,
// never a whole round or a client's patience.
const DefaultRequestTimeout = 2 * time.Second

// healthzPath is what the sweeper probes: the serving layer's liveness
// endpoint, deliberately outside /v2/cluster/* so probes work without the
// control-plane token and against the data plane the member actually
// serves traffic on.
const healthzPath = "/v1/healthz"

// ProbeNow runs one synchronous health sweep: every member (whatever its
// state) is probed concurrently, and each outcome feeds the failure
// detector. The background loop calls it every HealthInterval; tests call
// it directly for determinism.
func (n *Node) ProbeNow() {
	var wg sync.WaitGroup
	for _, peer := range n.Peers() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ok := n.probe(peer)
			n.probes.Add(1)
			if !ok {
				n.probeFailures.Add(1)
			}
			n.markContact(peer, ok)
		}(peer)
	}
	wg.Wait()
}

// probe checks one member's liveness: a 200 from its healthz within the
// per-attempt timeout.
func (n *Node) probe(peer string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+healthzPath, nil)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// HealthStats is a snapshot of the failure-detection and control-plane
// counters, exposed on /v2/cluster/health.
type HealthStats struct {
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Evictions     uint64 `json:"evictions"`
	Readmissions  uint64 `json:"readmissions"`
	JoinsAccepted uint64 `json:"joins_accepted"`
	AuthRejected  uint64 `json:"auth_rejected"`
}

// HealthStats returns the current health counters.
func (n *Node) HealthStats() HealthStats {
	return HealthStats{
		Probes:        n.probes.Load(),
		ProbeFailures: n.probeFailures.Load(),
		Evictions:     n.evictions.Load(),
		Readmissions:  n.readmissions.Load(),
		JoinsAccepted: n.joinsAccepted.Load(),
		AuthRejected:  n.authRejected.Load(),
	}
}

// HealthResponse is the JSON reply of GET /v2/cluster/health: every
// member's failure-detector state plus the sweep configuration and
// counters.
type HealthResponse struct {
	Self             string         `json:"self"`
	HealthIntervalMs float64        `json:"health_interval_ms"`
	SuspectAfter     int            `json:"suspect_after"`
	DeadAfter        int            `json:"dead_after"`
	Members          []MemberStatus `json:"members"`
	Health           HealthStats    `json:"health"`
}

// handleHealth serves the cluster health endpoint.
func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Self:             n.self,
		HealthIntervalMs: float64(n.healthInterval) / float64(time.Millisecond),
		SuspectAfter:     n.suspectAfter,
		DeadAfter:        n.deadAfter,
		Members:          n.MemberStates(),
		Health:           n.HealthStats(),
	})
}
