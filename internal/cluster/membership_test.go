package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/serve"
)

// TestMarkContactLifecycle walks one peer through the failure detector:
// alive -> suspect -> dead (evicted from the ring) -> readmitted on the
// first successful contact, with the transitions counted.
func TestMarkContactLifecycle(t *testing.T) {
	n := newTestNode(t, "h1:1", []string{"h2:1", "h3:1"})
	stateOf := func(addr string) MemberStatus {
		t.Helper()
		for _, ms := range n.MemberStates() {
			if ms.Addr == addr {
				return ms
			}
		}
		t.Fatalf("member %s missing from MemberStates", addr)
		return MemberStatus{}
	}

	if st := stateOf("h2:1"); st.State != MemberAlive {
		t.Fatalf("initial state = %s, want alive", st.State)
	}
	n.markContact("h2:1", false)
	if st := stateOf("h2:1"); st.State != MemberAlive || st.Strikes != 1 {
		t.Fatalf("after 1 strike = %+v, want alive with 1 strike", st)
	}
	n.markContact("h2:1", false)
	if st := stateOf("h2:1"); st.State != MemberSuspect {
		t.Fatalf("after %d strikes = %s, want suspect", DefaultSuspectAfter, st.State)
	}
	// Suspect members keep their ring points: nothing moved yet.
	if got := len(n.Members()); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}
	for i := DefaultSuspectAfter; i < DefaultDeadAfter; i++ {
		n.markContact("h2:1", false)
	}
	if st := stateOf("h2:1"); st.State != MemberDead {
		t.Fatalf("after %d strikes = %s, want dead", DefaultDeadAfter, st.State)
	}
	if !n.memberDead("h2:1") {
		t.Fatal("memberDead must report the dead member")
	}
	// Dead = evicted: no key may resolve to it, but it stays a member
	// (still probed, still listed).
	for i := 0; i < 50; i++ {
		primary, replica := n.Owners("alpha", fmt.Sprintf("gpu-%d", i))
		if primary == "h2:1" || replica == "h2:1" {
			t.Fatalf("key gpu-%d still assigned to dead member (%s, %s)", i, primary, replica)
		}
	}
	if len(n.Peers()) != 2 {
		t.Fatal("dead member must remain in the membership list")
	}
	if hs := n.HealthStats(); hs.Evictions != 1 {
		t.Fatalf("health stats = %+v, want 1 eviction", hs)
	}

	// One successful contact readmits: back on the ring, strikes cleared.
	n.markContact("h2:1", true)
	if st := stateOf("h2:1"); st.State != MemberAlive || st.Strikes != 0 {
		t.Fatalf("after readmission = %+v, want alive with 0 strikes", st)
	}
	owned := false
	for i := 0; i < 200 && !owned; i++ {
		primary, replica := n.Owners("alpha", fmt.Sprintf("gpu-%d", i))
		owned = primary == "h2:1" || replica == "h2:1"
	}
	if !owned {
		t.Fatal("readmitted member owns nothing — ring not rebuilt")
	}
	if hs := n.HealthStats(); hs.Readmissions != 1 {
		t.Fatalf("health stats = %+v, want 1 readmission", hs)
	}
}

// TestOwnersDistinct pins the replica invariant: every key's replica is a
// real, distinct member — and evicting the primary promotes exactly the
// replica (the consistent-hashing property failover correctness rests on).
func TestOwnersDistinct(t *testing.T) {
	n := newTestNode(t, "h1:1", []string{"h2:1", "h3:1"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("gpu-%d", i)
		primary, replica := n.Owners("alpha", key)
		if primary == replica || replica == "" {
			t.Fatalf("key %s: owners (%s, %s) not distinct", key, primary, replica)
		}
	}
	// Eviction promotes the replica.
	key := "gpu-7"
	primary, replica := n.Owners("alpha", key)
	if primary == "h1:1" {
		key = "gpu-11" // pick a key with a peer primary
		primary, replica = n.Owners("alpha", key)
	}
	if primary != "h1:1" {
		for i := 0; i < DefaultDeadAfter; i++ {
			n.markContact(primary, false)
		}
		newPrimary, _ := n.Owners("alpha", key)
		if newPrimary != replica {
			t.Fatalf("evicting %s moved key to %s, want its replica %s", primary, newPrimary, replica)
		}
	}
	// A single-member ring has no replica.
	solo := newTestNode(t, "h1:1", nil)
	if p, r := solo.Owners("alpha", "gpu-1"); p != "h1:1" || r != "" {
		t.Fatalf("solo owners = (%s, %s), want (h1:1, \"\")", p, r)
	}
}

// TestAbsorbMembershipView: a gossiped membership view admits unknown
// members — but never resurrects a dead one (readmission takes a direct
// successful contact, not a rumor).
func TestAbsorbMembershipView(t *testing.T) {
	n := newTestNode(t, "h1:1", []string{"h2:1"})
	n.Absorb(GenMessage{Node: "h2:1", Members: map[string]MemberInfo{
		"h2:1": {Instance: 2}, "h3:1": {Instance: 3}, "h1:1": {Instance: 99},
	}})
	if !n.isMember("h3:1") {
		t.Fatal("gossiped member h3:1 not admitted")
	}
	// The new member's own views now pass the origin check.
	var drops int
	n.invalidate = func(string) int { drops++; return 1 }
	if got := n.Absorb(GenMessage{Node: "h3:1", Views: view("h3:1", 3, map[string]uint64{"alpha": 4})}); got != 1 {
		t.Fatalf("admitted member's view invalidated %d, want 1", got)
	}

	// Kill h3 locally; a rumor listing it must not readmit it.
	for i := 0; i < DefaultDeadAfter; i++ {
		n.markContact("h3:1", false)
	}
	n.Absorb(GenMessage{Node: "h2:1", Members: map[string]MemberInfo{"h3:1": {Instance: 3}}})
	if !n.memberDead("h3:1") {
		t.Fatal("gossiped rumor resurrected a dead member — readmission must need direct contact")
	}
	// Whereas a payload without a membership view keeps foreign origins out.
	before := n.GossipStats().ForeignOrigins
	n.Absorb(GenMessage{Node: "x", Views: view("evil:1", 1, map[string]uint64{"alpha": 9})})
	if n.isMember("evil:1") || n.GossipStats().ForeignOrigins != before+1 {
		t.Fatal("view-only payload must not grow the membership")
	}
}

// TestJoinAndGossipSpread: a third process joins a two-member cluster via
// one seed, and the membership spreads to the member the joiner never
// contacted through the ordinary gossip round.
func TestJoinAndGossipSpread(t *testing.T) {
	a, b := twoProcs(t, SteerOff)
	c := startProc(t, 3, SteerOff)

	if err := c.node.Join(context.Background(), a.addr); err != nil {
		t.Fatal(err)
	}
	// The joiner adopted the seed's membership...
	if !c.node.isMember(a.addr) || !c.node.isMember(b.addr) {
		t.Fatalf("joiner members = %v, want a and b", c.node.Members())
	}
	// ...the seed admitted the joiner...
	if !a.node.isMember(c.addr) {
		t.Fatalf("seed members = %v, want the joiner admitted", a.node.Members())
	}
	if hs := a.node.HealthStats(); hs.JoinsAccepted != 1 {
		t.Fatalf("seed health stats = %+v, want 1 join accepted", hs)
	}
	// ...and one push round from the seed reaches B, which the joiner
	// never contacted.
	a.node.SyncNow()
	if !b.node.isMember(c.addr) {
		t.Fatalf("B members = %v, want the joiner gossiped in", b.node.Members())
	}
	// All three rings agree on every key.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("gpu-%d", i)
		oa, _ := a.node.Owner("alpha", key)
		ob, _ := b.node.Owner("alpha", key)
		oc, _ := c.node.Owner("alpha", key)
		if oa != ob || ob != oc {
			t.Fatalf("key %s: owners diverge (%s, %s, %s)", key, oa, ob, oc)
		}
	}
}

// TestJoinWarmup is the acceptance scenario for join warmup: a member
// joining via a seed pulls the owners' recorded traces and serves its
// first steered request as a cache hit — its backend engine is never
// evaluated for a key the warmup primed.
func TestJoinWarmup(t *testing.T) {
	a := startProc(t, 1, SteerProxy)
	rec, err := serve.NewTraceRecorder(t.TempDir() + "/trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	a.svc.SetTraceRecorder(rec)
	defer rec.Close()

	// A serves (and records) one kernel per registered GPU: the workload
	// profile the joiner will inherit.
	k := kernels.NewBMM(2, 64, 64, 64)
	for _, g := range gpu.All() {
		if _, err := a.svc.PredictKernel(k, g); err != nil {
			t.Fatal(err)
		}
	}

	c := startProc(t, 3, SteerProxy)
	if err := c.node.Join(context.Background(), a.addr); err != nil {
		t.Fatal(err)
	}
	warmed, skipped, err := c.node.WarmFromOwners(context.Background())
	if err != nil || skipped != 0 {
		t.Fatalf("warmup = (%d warmed, %d skipped, %v)", warmed, skipped, err)
	}
	if warmed == 0 {
		t.Fatal("join warmup primed nothing — the joiner owns some keys of every trace")
	}

	// Every warmed key must now be a cache hit: the engine saw exactly the
	// warmup evaluations, and a steered request adds none.
	calls := c.eng.calls.Load()
	if calls == 0 {
		t.Fatal("warmup never reached the joiner's engine")
	}
	g := gpuOwnedBy(t, c.node, c.addr)
	lat, code := postKernel(t, noFollow(), "http://"+c.addr+"/v2/predict/kernel", g)
	if code != http.StatusOK || lat != 3 {
		t.Fatalf("first steered request = (%v, %d), want 3 from the joiner", lat, code)
	}
	if got := c.eng.calls.Load(); got != calls {
		t.Fatalf("first steered request evaluated the engine (%d -> %d calls), want a cache hit", calls, got)
	}
}

// TestControlPlaneAuth: with a token configured, every /v2/cluster/*
// request without the exact bearer token is a counted 401 — and the
// node's own outbound control-plane calls carry the token, so a token'd
// cluster still gossips, joins, and warms.
func TestControlPlaneAuth(t *testing.T) {
	const token = "s3cret"
	a := startProcOpts(t, procOpts{lat: 1, mode: SteerOff, token: token})
	b := startProcOpts(t, procOpts{lat: 2, mode: SteerOff, token: token})
	a.node.SetPeers([]string{b.addr})
	b.node.SetPeers([]string{a.addr})

	for _, path := range []string{RouteRing, RouteHealth, RouteGenerations, RouteTrace} {
		resp, err := http.Get("http://" + a.addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("tokenless GET %s = %d, want 401", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, "http://"+a.addr+RouteRing, nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d, want 401", resp.StatusCode)
	}
	if hs := a.node.HealthStats(); hs.AuthRejected != 5 {
		t.Fatalf("health stats = %+v, want 5 auth rejections", hs)
	}

	// The right token gets through.
	req, _ = http.NewRequest(http.MethodGet, "http://"+a.addr+RouteRing, nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("correct token = %d, want 200", resp.StatusCode)
	}

	// Members' own traffic authenticates: a gossip round between the
	// token'd members must not strike anyone.
	a.node.SyncNow()
	if gs := a.node.GossipStats(); gs.PollFailures != 0 || gs.PushFailures != 0 {
		t.Fatalf("token'd gossip round failed: %+v", gs)
	}
	// And a token'd joiner can still join.
	c := startProcOpts(t, procOpts{lat: 3, mode: SteerOff, token: token})
	if err := c.node.Join(context.Background(), a.addr); err != nil {
		t.Fatalf("token'd join: %v", err)
	}
	// The liveness probe target stays tokenless: probes must work without
	// the control-plane secret.
	resp, err = http.Get("http://" + a.addr + healthzPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with token configured = %d, want 200 (liveness is not control plane)", resp.StatusCode)
	}
}

// TestHealthEndpointAndSweep: /v2/cluster/health reports per-member state
// driven by the background sweeper — a dead address is suspected then
// declared dead by probes alone, no traffic needed.
func TestHealthEndpointAndSweep(t *testing.T) {
	a := startProc(t, 1, SteerOff)
	a.node.SetPeers([]string{"127.0.0.1:1"})

	for i := 0; i < DefaultDeadAfter; i++ {
		a.node.ProbeNow()
	}
	resp, err := http.Get("http://" + a.addr + RouteHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Self != a.addr || hr.SuspectAfter != DefaultSuspectAfter || hr.DeadAfter != DefaultDeadAfter {
		t.Fatalf("health response = %+v, want self/threshold config echoed", hr)
	}
	if len(hr.Members) != 2 {
		t.Fatalf("health members = %+v, want self plus the dead peer", hr.Members)
	}
	var deadSeen bool
	for _, ms := range hr.Members {
		if ms.Addr == "127.0.0.1:1" && ms.State == MemberDead {
			deadSeen = true
		}
		if ms.Self && ms.State != MemberAlive {
			t.Fatalf("self state = %s, want alive", ms.State)
		}
	}
	if !deadSeen {
		t.Fatalf("health members = %+v, want the unreachable peer dead after %d probes", hr.Members, DefaultDeadAfter)
	}
	if hr.Health.Probes < uint64(DefaultDeadAfter) || hr.Health.ProbeFailures < uint64(DefaultDeadAfter) {
		t.Fatalf("health counters = %+v, want the probes counted", hr.Health)
	}
	// The ring endpoint shows the eviction too: Members shrinks to self,
	// MemberStates keeps the corpse visible.
	rresp, err := http.Get("http://" + a.addr + RouteRing)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var rr RingResponse
	if err := json.NewDecoder(rresp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Members) != 1 || rr.Members[0] != a.addr {
		t.Fatalf("ring members = %v, want only self after eviction", rr.Members)
	}
	if len(rr.MemberStates) != 2 {
		t.Fatalf("ring member_states = %+v, want both members listed", rr.MemberStates)
	}
}

// TestThreeMemberDriftTerminates is the loop-safety satellite: three
// members whose peer lists have all drifted (each knows a different
// subset) still terminate every request in at most one extra hop — the
// steered marker pins it — under concurrent fire, with the race detector
// watching.
func TestThreeMemberDriftTerminates(t *testing.T) {
	a := startProc(t, 1, SteerProxy)
	b := startProc(t, 2, SteerProxy)
	c := startProc(t, 3, SteerProxy)
	// Fully drifted views: a ring of one-way beliefs.
	a.node.SetPeers([]string{b.addr})
	b.node.SetPeers([]string{c.addr})
	c.node.SetPeers([]string{a.addr})

	procs := []*proc{a, b, c}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < 20; i++ {
				p := procs[(w+i)%3]
				g := gpu.All()[i%len(gpu.All())]
				resp, err := client.Post("http://"+p.addr+"/v2/predict/kernel", "application/json",
					strings.NewReader(kernelBody(g)))
				if err != nil {
					t.Errorf("drifted request via %s: %v", p.addr, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("drifted request via %s = %d, want 200", p.addr, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestKillMemberFailover is the kill-a-member acceptance scenario as a
// raced Go test: a three-member proxy cluster serves steered traffic, one
// member dies mid-traffic, and (1) no request 502s — its shards are
// served by replicas immediately, (2) the failure detector evicts it
// within a sweep or two, (3) restarting it at the same address readmits
// it and the ring heals. scripts/e2e_cluster.sh runs the same scenario
// against real processes with a real SIGKILL.
func TestKillMemberFailover(t *testing.T) {
	mk := func(lat float64, addr string) *proc {
		return startProcOpts(t, procOpts{lat: lat, mode: SteerProxy, addr: addr, sweep: 25 * time.Millisecond})
	}
	a, b, c := mk(1, ""), mk(2, ""), mk(3, "")
	wire := func() {
		a.node.SetPeers([]string{b.addr, c.addr})
		b.node.SetPeers([]string{a.addr, c.addr})
		c.node.SetPeers([]string{a.addr, b.addr})
	}
	wire()
	a.node.Start()
	t.Cleanup(a.node.Stop)

	gB := gpuOwnedBy(t, a.node, b.addr)
	if lat, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gB); code != 200 || lat != 2 {
		t.Fatalf("pre-kill steered = (%v, %d), want 2 from B", lat, code)
	}

	b.kill()

	// Mid-outage traffic: every request for B's shards must still answer
	// 200 — first via proxy fall-through, then (post-eviction) via the
	// promoted replica.
	deadline := time.Now().Add(10 * time.Second)
	evicted := false
	for !evicted {
		if time.Now().After(deadline) {
			t.Fatal("B never declared dead by the sweeper")
		}
		_, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gB)
		if code != http.StatusOK {
			t.Fatalf("mid-outage request = %d, want 200 via the replica, never a 502", code)
		}
		evicted = a.node.memberDead(b.addr)
		time.Sleep(10 * time.Millisecond)
	}
	if hs := a.node.HealthStats(); hs.Evictions != 1 {
		t.Fatalf("health stats = %+v, want 1 eviction", hs)
	}
	// Post-eviction the key routes to the replica directly: no more
	// per-request failed attempts.
	if owner, _ := a.node.Owner("alpha", gB.Name); owner == b.addr {
		t.Fatal("dead member still owns its shard")
	}

	// Restart at the same address (a fresh process: new node, new
	// instance). The sweeper's next successful probe readmits it.
	b2 := mk(2, b.addr)
	b2.node.SetPeers([]string{a.addr, c.addr})
	deadline = time.Now().Add(10 * time.Second)
	for a.node.memberDead(b.addr) {
		if time.Now().After(deadline) {
			t.Fatal("restarted member never readmitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if hs := a.node.HealthStats(); hs.Readmissions != 1 {
		t.Fatalf("health stats = %+v, want 1 readmission", hs)
	}
	// The ring heals: B owns its old shard again and steered traffic
	// reaches the restarted process.
	if owner, _ := a.node.Owner("alpha", gB.Name); owner != b.addr {
		t.Fatalf("post-readmission owner = %s, want %s", owner, b.addr)
	}
	if lat, code := postKernel(t, noFollow(), "http://"+a.addr+"/v2/predict/kernel", gB); code != 200 || lat != 2 {
		t.Fatalf("post-restart steered = (%v, %d), want 2 from the restarted B", lat, code)
	}
}
