package models

import (
	"testing"

	"neusight/internal/kernels"
)

func TestT5GraphStructure(t *testing.T) {
	c := T5Large()
	g := c.InferenceGraph(4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := g.CountByCategory()
	// Encoder: 2 BMM/layer; decoder: 4 BMM/layer (self + cross).
	wantBMM := 2*c.EncLayers + 4*c.DecLayers
	if got := counts[kernels.CatBMM]; got != wantBMM {
		t.Fatalf("BMM count = %d, want %d", got, wantBMM)
	}
	// Softmax: 1/enc layer, 2/dec layer.
	if got := counts[kernels.CatSoftmax]; got != c.EncLayers+2*c.DecLayers {
		t.Fatalf("softmax count = %d", got)
	}
	// Two embeddings (source and target streams).
	if got := counts[kernels.CatMemoryBound]; got != 2 {
		t.Fatalf("embedding count = %d, want 2", got)
	}
}

func TestT5CrossAttentionDims(t *testing.T) {
	c := T5Large()
	c.SrcLen, c.TgtLen = 512, 128 // asymmetric to expose cross-attn shape
	g := c.InferenceGraph(2)
	found := false
	for _, k := range g.Kernels() {
		if k.Op == kernels.OpBMM && k.M == 128 && k.N == 512 {
			found = true // decoder queries attending over encoder keys
			break
		}
	}
	if !found {
		t.Fatal("no cross-attention BMM with (TgtLen x SrcLen) scores found")
	}
}

func TestT5TrainingRatio(t *testing.T) {
	c := T5Large()
	c.EncLayers, c.DecLayers = 4, 4 // keep the test fast
	inf := c.InferenceGraph(2).TotalFLOPs()
	train := c.TrainingGraph(2).TotalFLOPs()
	if r := train / inf; r < 2.5 || r > 3.5 {
		t.Fatalf("train/infer ratio = %v, want ~3", r)
	}
}

func TestLlamaGraphStructure(t *testing.T) {
	c := Llama7B()
	c.Layers = 4 // keep the test fast
	g := c.InferenceGraph(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := g.CountByCategory()
	// Per layer: QKV, proj, gate, up, down = 5 linears; plus LM head.
	if got := counts[kernels.CatLinear]; got != 5*c.Layers+1 {
		t.Fatalf("linear count = %d, want %d", got, 5*c.Layers+1)
	}
	// SwiGLU adds an extra elementwise product per layer: rope + silu +
	// prod + 2 residuals = 5 EW per layer.
	if got := counts[kernels.CatElementwise]; got != 5*c.Layers {
		t.Fatalf("elementwise count = %d, want %d", got, 5*c.Layers)
	}
}

func TestLlamaParamCount(t *testing.T) {
	if p := Llama7B().NumParams(); p < 6e9 || p > 8e9 {
		t.Fatalf("Llama-7B params = %.3g, want ~6.7B", p)
	}
}

func TestLlamaHasOODBMMDims(t *testing.T) {
	// Llama at 2048 sequence length exercises the same OOD BMM dims as
	// GPT3/OPT in the paper.
	c := Llama7B()
	c.Layers = 2
	ood := false
	for _, k := range c.InferenceGraph(1).Kernels() {
		if k.Op == kernels.OpBMM && (k.M > 1024 || k.K > 1024 || k.N > 1024) {
			ood = true
		}
	}
	if !ood {
		t.Fatal("Llama at seq 2048 should contain OOD BMM dims")
	}
}
