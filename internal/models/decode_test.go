package models

import (
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
)

func TestDecodeStepGraphShape(t *testing.T) {
	c := MustLookup("GPT2-Large")
	g := c.DecodeStepGraph(4, 512)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Attention BMMs read the cache: M=1, N or K = pastLen.
	sawScores := false
	for _, k := range g.Kernels() {
		if k.Op == kernels.OpBMM && k.M == 1 && k.N == 512 {
			sawScores = true
		}
	}
	if !sawScores {
		t.Fatal("decode graph missing single-query attention over the cache")
	}
}

func TestDecodeMuchCheaperThanPrefill(t *testing.T) {
	c := MustLookup("GPT2-Large")
	decode := c.DecodeStepGraph(1, c.SeqLen).TotalFLOPs()
	prefill := c.InferenceGraph(1).TotalFLOPs()
	// One decode step is roughly prefill/seqlen in FLOPs.
	if r := prefill / decode; r < float64(c.SeqLen)/4 {
		t.Fatalf("prefill/decode FLOP ratio = %v, want >> 1", r)
	}
}

func TestDecodeLatencyGrowsWithCache(t *testing.T) {
	sim := gpusim.New()
	g := gpu.MustLookup("A100-40GB")
	c := MustLookup("GPT2-Large")
	lat := func(pastLen int) float64 {
		total := 0.0
		for _, k := range c.DecodeStepGraph(8, pastLen).Kernels() {
			total += sim.KernelLatency(k, g)
		}
		return total
	}
	if lat(2048) <= lat(128) {
		t.Fatal("deeper KV cache must cost more per token")
	}
}

func TestForecastGeneration(t *testing.T) {
	sim := gpusim.New()
	g := gpu.MustLookup("H100")
	c := MustLookup("GPT2-Large")
	kernelLat := func(k kernels.Kernel) float64 { return sim.KernelLatency(k, g) }
	f := c.ForecastGeneration(1, 512, 128, kernelLat)
	if f.PrefillMs <= 0 || f.PerTokenMs <= 0 {
		t.Fatalf("forecast = %+v", f)
	}
	if f.TotalMs <= f.PrefillMs {
		t.Fatal("total must include decode steps")
	}
	if f.TokensPerSec <= 0 {
		t.Fatal("throughput must be positive")
	}
	// Per-token decode must be far cheaper than prefill.
	if f.PerTokenMs > f.PrefillMs/4 {
		t.Fatalf("decode step %v ms implausibly close to prefill %v ms", f.PerTokenMs, f.PrefillMs)
	}
}

func TestDecodeStepValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLookup("GPT2-Large").DecodeStepGraph(0, 128)
}
