package models

import "neusight/internal/gpu"

// MemoryBytes estimates the device-memory footprint of running the
// workload at the given batch size: weights (plus gradients and optimizer
// state when training) and live activations. The estimate is deliberately
// coarse — it exists to reproduce the paper's "models resulting in OOM are
// omitted" behavior, not to model an allocator.
func (c Config) MemoryBytes(batch int, training bool) float64 {
	params := c.NumParams()
	weightBytes := params * 4
	if training {
		// weights + gradients + AdamW moments.
		weightBytes *= 4
	}
	tokens := float64(batch * c.SeqLen)
	perLayerAct := tokens * float64(c.Hidden) * 4
	// Attention score matrices dominate activation memory at long
	// sequence lengths.
	attnAct := float64(batch*c.Heads) * float64(c.SeqLen) * float64(c.SeqLen) * 4
	liveFactor := 2.0 // inference frees layer activations as it goes
	if training {
		liveFactor = float64(c.Layers) // training keeps them for backward
	}
	actBytes := (perLayerAct*8 + attnAct) * liveFactor
	return weightBytes + actBytes
}

// FitsInMemory reports whether the workload at the given batch fits on g.
func (c Config) FitsInMemory(batch int, g gpu.Spec, training bool) bool {
	return c.MemoryBytes(batch, training) <= g.MemoryGB*1e9*0.92
}
