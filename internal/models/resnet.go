package models

import (
	"fmt"

	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// ResNet-50 (He et al. 2015): the CNN workload the paper's related work
// benchmarks against cycle-accurate simulation ("the most popular GPU
// simulator can take up to 18 hours to simulate ResNet-50 with a batch
// size of 256", Section 1). NeuSight forecasts it in milliseconds. The
// convolutions lower to implicit GEMM and route to the fully-connected
// predictor; batch-norm and ReLU are elementwise.

// bottleneckSpec is one ResNet stage: the number of residual bottleneck
// blocks and their channel widths at a spatial resolution.
type bottleneckSpec struct {
	blocks   int
	inC      int // input channels of the first block
	midC     int // 1x1 reduce width
	outC     int // 1x1 expand width
	spatial  int // input H = W at this stage
	firstStr int // stride of the first block (downsampling)
}

// resnet50Stages is the standard ResNet-50 configuration.
var resnet50Stages = []bottleneckSpec{
	{blocks: 3, inC: 64, midC: 64, outC: 256, spatial: 56, firstStr: 1},
	{blocks: 4, inC: 256, midC: 128, outC: 512, spatial: 56, firstStr: 2},
	{blocks: 6, inC: 512, midC: 256, outC: 1024, spatial: 28, firstStr: 2},
	{blocks: 3, inC: 1024, midC: 512, outC: 2048, spatial: 14, firstStr: 2},
}

// ResNet50InferenceGraph builds the forward kernel graph of ResNet-50 at
// 224x224 input resolution.
func ResNet50InferenceGraph(batch int) *graph.Graph {
	g := graph.New(fmt.Sprintf("ResNet50/b%d/infer", batch))
	buildResNet50(g, batch)
	return g
}

// ResNet50TrainingGraph builds the forward+backward graph of ResNet-50.
func ResNet50TrainingGraph(batch int) *graph.Graph {
	fwd := graph.New(fmt.Sprintf("ResNet50/b%d", batch))
	buildResNet50(fwd, batch)
	return graph.Backward(fwd)
}

func buildResNet50(g *graph.Graph, batch int) {
	if batch <= 0 {
		panic("models: batch must be positive")
	}
	// Stem: 7x7/2 conv, BN+ReLU, 3x3/2 max pool.
	last := g.Add(kernels.NewConv2D(kernels.Conv2DShape{
		Batch: batch, Cin: 3, H: 224, W: 224, Cout: 64, Kh: 7, Kw: 7, Stride: 2, Pad: 3,
	}))
	last = addBNReLU(g, last, batch, 64, 112)
	last = g.Add(kernels.NewPool2D(batch, 64, 112, 112, 3, 2), last)

	for _, st := range resnet50Stages {
		inC := st.inC
		sp := st.spatial
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.firstStr
			}
			outSp := sp / stride
			// 1x1 reduce.
			c1 := g.Add(kernels.NewConv2D(kernels.Conv2DShape{
				Batch: batch, Cin: inC, H: sp, W: sp, Cout: st.midC, Kh: 1, Kw: 1, Stride: stride, Pad: 0,
			}), last)
			r1 := addBNReLU(g, c1, batch, st.midC, outSp)
			// 3x3.
			c2 := g.Add(kernels.NewConv2D(kernels.Conv2DShape{
				Batch: batch, Cin: st.midC, H: outSp, W: outSp, Cout: st.midC, Kh: 3, Kw: 3, Stride: 1, Pad: 1,
			}), r1)
			r2 := addBNReLU(g, c2, batch, st.midC, outSp)
			// 1x1 expand.
			c3 := g.Add(kernels.NewConv2D(kernels.Conv2DShape{
				Batch: batch, Cin: st.midC, H: outSp, W: outSp, Cout: st.outC, Kh: 1, Kw: 1, Stride: 1, Pad: 0,
			}), r2)
			bn3 := g.Add(kernels.NewElementwise(kernels.OpEWMul, batch*st.outC, outSp*outSp), c3)
			// Projection shortcut on the first block of each stage.
			shortcut := last
			if b == 0 {
				shortcut = g.Add(kernels.NewConv2D(kernels.Conv2DShape{
					Batch: batch, Cin: inC, H: sp, W: sp, Cout: st.outC, Kh: 1, Kw: 1, Stride: stride, Pad: 0,
				}), last)
			}
			sum := g.Add(kernels.NewElementwise(kernels.OpEWAdd, batch*st.outC, outSp*outSp), bn3, shortcut)
			last = g.Add(kernels.NewElementwise(kernels.OpEWReLU, batch*st.outC, outSp*outSp), sum)
			inC = st.outC
			sp = outSp
		}
	}
	// Global average pool + classifier.
	pooled := g.Add(kernels.NewPool2D(batch, 2048, 7, 7, 7, 7), last)
	g.Add(kernels.NewLinear(batch, 2048, 1000), pooled)
}

// addBNReLU appends a batch-norm (elementwise scale+shift) and ReLU over
// batch x channels x sp x sp activations.
func addBNReLU(g *graph.Graph, dep, batch, channels, sp int) int {
	bn := g.Add(kernels.NewElementwise(kernels.OpEWMul, batch*channels, sp*sp), dep)
	return g.Add(kernels.NewElementwise(kernels.OpEWReLU, batch*channels, sp*sp), bn)
}
