package models

import (
	"fmt"

	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// DecodeStepGraph builds the kernel graph of one autoregressive decode
// step with a KV cache of pastLen tokens. The paper's generation metric is
// time-to-first-token (the prefill pass, InferenceGraph); this extension
// models the per-token latency of the rest of the generation loop, where
// every GEMM collapses to a single query row and attention reads the whole
// cache:
//
//   - projections become skinny (batch x hidden) GEMMs;
//   - attention scores are (1 x d) @ (d x pastLen) per head;
//   - the FFN processes one token per sample.
//
// Decode steps are memory-bandwidth-bound, which is exactly the regime the
// utilization predictors must get right for small-wave kernels.
func (c Config) DecodeStepGraph(batch, pastLen int) *graph.Graph {
	if batch <= 0 || pastLen <= 0 {
		panic("models: batch and pastLen must be positive")
	}
	g := graph.New(fmt.Sprintf("%s/b%d/decode@%d", c.Name, batch, pastLen))
	h := c.Hidden
	d := c.HeadDim()
	rows := batch * c.Heads

	last := g.Add(kernels.NewEmbedding(batch, h, c.Vocab))
	for layer := 0; layer < c.Layers; layer++ {
		ln1 := g.Add(kernels.NewLayerNorm(batch, h), last)
		qkv := g.Add(kernels.NewLinear(batch, h, 3*h), ln1)
		// One query row against the cached keys/values.
		scores := g.Add(kernels.NewBMM(rows, 1, d, pastLen), qkv)
		probs := g.Add(kernels.NewSoftmax(rows, pastLen), scores)
		ctx := g.Add(kernels.NewBMM(rows, 1, pastLen, d), probs)
		proj := g.Add(kernels.NewLinear(batch, h, h), ctx)
		res1 := g.Add(kernels.NewElementwise(kernels.OpEWAdd, batch, h), proj, last)

		ln2 := g.Add(kernels.NewLayerNorm(batch, h), res1)
		up := g.Add(kernels.NewLinear(batch, h, 4*h), ln2)
		act := g.Add(kernels.NewElementwise(kernels.OpEWGELU, batch, 4*h), up)
		down := g.Add(kernels.NewLinear(batch, 4*h, h), act)
		last = g.Add(kernels.NewElementwise(kernels.OpEWAdd, batch, h), down, res1)
	}
	final := g.Add(kernels.NewLayerNorm(batch, h), last)
	g.Add(kernels.NewLinear(batch, h, c.Vocab), final)
	return g
}

// GenerationForecast combines prefill and decode forecasts into the
// latency of generating newTokens tokens from a promptLen prompt.
type GenerationForecast struct {
	PrefillMs    float64
	PerTokenMs   float64 // decode latency at mid-generation cache depth
	TotalMs      float64
	TokensPerSec float64
}

// ForecastGeneration prices a full generation: one prefill at the prompt
// length plus newTokens decode steps at the average cache depth.
func (c Config) ForecastGeneration(batch, promptLen, newTokens int, kernelLat func(kernels.Kernel) float64) GenerationForecast {
	prompt := c
	prompt.SeqLen = promptLen
	prefill := prompt.InferenceGraph(batch).Latency(kernelLat)
	midCache := promptLen + newTokens/2
	perTok := c.DecodeStepGraph(batch, midCache).Latency(kernelLat)
	total := prefill + perTok*float64(newTokens)
	f := GenerationForecast{PrefillMs: prefill, PerTokenMs: perTok, TotalMs: total}
	if total > 0 {
		f.TokensPerSec = float64(batch*newTokens) / (total / 1e3)
	}
	return f
}
