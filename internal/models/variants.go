package models

import (
	"fmt"

	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// This file extends the Table 5 zoo with the architecture variants the
// paper's introduction motivates — forecasting *new model architectures*
// on new GPUs: encoder-decoder transformers (T5 family) and
// Llama-style decoders (RMSNorm, rotary embeddings, SwiGLU FFN).

// EncoderDecoderConfig describes a T5-style encoder-decoder transformer.
type EncoderDecoderConfig struct {
	Name      string
	EncLayers int
	DecLayers int
	Heads     int
	Hidden    int
	FFN       int // feed-forward width (T5 uses ~4x hidden)
	SrcLen    int
	TgtLen    int
	Vocab     int
}

// T5Large returns the T5-Large configuration (770M parameters).
func T5Large() EncoderDecoderConfig {
	return EncoderDecoderConfig{
		Name: "T5-Large", EncLayers: 24, DecLayers: 24, Heads: 16,
		Hidden: 1024, FFN: 4096, SrcLen: 512, TgtLen: 512, Vocab: 32128,
	}
}

// InferenceGraph builds the forward graph of one encoder pass plus the
// decoder prefill — the first-token latency of sequence-to-sequence
// generation.
func (c EncoderDecoderConfig) InferenceGraph(batch int) *graph.Graph {
	g := graph.New(fmt.Sprintf("%s/b%d/infer", c.Name, batch))
	c.buildForward(g, batch)
	return g
}

// TrainingGraph builds the forward+backward graph of one iteration.
func (c EncoderDecoderConfig) TrainingGraph(batch int) *graph.Graph {
	fwd := graph.New(fmt.Sprintf("%s/b%d", c.Name, batch))
	c.buildForward(fwd, batch)
	return graph.Backward(fwd)
}

func (c EncoderDecoderConfig) buildForward(g *graph.Graph, batch int) {
	if batch <= 0 {
		panic("models: batch must be positive")
	}
	d := (c.Hidden + c.Heads - 1) / c.Heads

	// Encoder.
	srcTokens := batch * c.SrcLen
	encLast := g.Add(kernels.NewEmbedding(srcTokens, c.Hidden, c.Vocab))
	for i := 0; i < c.EncLayers; i++ {
		encLast = c.attnBlock(g, encLast, batch, srcTokens, c.SrcLen, c.SrcLen, d, false)
		encLast = c.ffnBlock(g, encLast, srcTokens)
	}
	encOut := g.Add(kernels.NewLayerNorm(srcTokens, c.Hidden), encLast)

	// Decoder: self-attention over the target, cross-attention into the
	// encoder output, FFN.
	tgtTokens := batch * c.TgtLen
	decLast := g.Add(kernels.NewEmbedding(tgtTokens, c.Hidden, c.Vocab))
	for i := 0; i < c.DecLayers; i++ {
		decLast = c.attnBlock(g, decLast, batch, tgtTokens, c.TgtLen, c.TgtLen, d, false)
		decLast = c.crossAttnBlock(g, decLast, encOut, batch, tgtTokens, d)
		decLast = c.ffnBlock(g, decLast, tgtTokens)
	}
	final := g.Add(kernels.NewLayerNorm(tgtTokens, c.Hidden), decLast)
	g.Add(kernels.NewLinear(tgtTokens, c.Hidden, c.Vocab), final)
}

// attnBlock emits LN + QKV + attention + projection + residual.
func (c EncoderDecoderConfig) attnBlock(g *graph.Graph, in, batch, tokens, qLen, kvLen, headDim int, _ bool) int {
	rows := batch * c.Heads
	ln := g.Add(kernels.NewLayerNorm(tokens, c.Hidden), in)
	qkv := g.Add(kernels.NewLinear(tokens, c.Hidden, 3*c.Hidden), ln)
	scores := g.Add(kernels.NewBMM(rows, qLen, headDim, kvLen), qkv)
	probs := g.Add(kernels.NewSoftmax(rows*qLen, kvLen), scores)
	ctx := g.Add(kernels.NewBMM(rows, qLen, kvLen, headDim), probs)
	proj := g.Add(kernels.NewLinear(tokens, c.Hidden, c.Hidden), ctx)
	return g.Add(kernels.NewElementwise(kernels.OpEWAdd, tokens, c.Hidden), proj, in)
}

// crossAttnBlock emits the decoder's attention into the encoder output:
// Q from the decoder stream, KV projected from the encoder output.
func (c EncoderDecoderConfig) crossAttnBlock(g *graph.Graph, in, encOut, batch, tgtTokens, headDim int) int {
	rows := batch * c.Heads
	srcTokens := batch * c.SrcLen
	ln := g.Add(kernels.NewLayerNorm(tgtTokens, c.Hidden), in)
	q := g.Add(kernels.NewLinear(tgtTokens, c.Hidden, c.Hidden), ln)
	kv := g.Add(kernels.NewLinear(srcTokens, c.Hidden, 2*c.Hidden), encOut)
	scores := g.Add(kernels.NewBMM(rows, c.TgtLen, headDim, c.SrcLen), q, kv)
	probs := g.Add(kernels.NewSoftmax(rows*c.TgtLen, c.SrcLen), scores)
	ctx := g.Add(kernels.NewBMM(rows, c.TgtLen, c.SrcLen, headDim), probs)
	proj := g.Add(kernels.NewLinear(tgtTokens, c.Hidden, c.Hidden), ctx)
	return g.Add(kernels.NewElementwise(kernels.OpEWAdd, tgtTokens, c.Hidden), proj, in)
}

// ffnBlock emits LN + up/act/down + residual.
func (c EncoderDecoderConfig) ffnBlock(g *graph.Graph, in, tokens int) int {
	ln := g.Add(kernels.NewLayerNorm(tokens, c.Hidden), in)
	up := g.Add(kernels.NewLinear(tokens, c.Hidden, c.FFN), ln)
	act := g.Add(kernels.NewElementwise(kernels.OpEWReLU, tokens, c.FFN), up)
	down := g.Add(kernels.NewLinear(tokens, c.FFN, c.Hidden), act)
	return g.Add(kernels.NewElementwise(kernels.OpEWAdd, tokens, c.Hidden), down, in)
}

// LlamaConfig describes a Llama-style decoder: RMSNorm in place of
// LayerNorm (same predictor category — a row-wise normalization), rotary
// position embeddings applied elementwise to Q/K, and a SwiGLU FFN with
// three projections.
type LlamaConfig struct {
	Name   string
	Layers int
	Heads  int
	Hidden int
	FFN    int // SwiGLU intermediate width (~8/3 x hidden, rounded)
	SeqLen int
	Vocab  int
}

// Llama7B returns the 7B-class configuration.
func Llama7B() LlamaConfig {
	return LlamaConfig{
		Name: "Llama-7B", Layers: 32, Heads: 32, Hidden: 4096,
		FFN: 11008, SeqLen: 2048, Vocab: 32000,
	}
}

// InferenceGraph builds the prefill forward graph.
func (c LlamaConfig) InferenceGraph(batch int) *graph.Graph {
	g := graph.New(fmt.Sprintf("%s/b%d/infer", c.Name, batch))
	c.buildForward(g, batch)
	return g
}

// TrainingGraph builds the forward+backward graph.
func (c LlamaConfig) TrainingGraph(batch int) *graph.Graph {
	fwd := graph.New(fmt.Sprintf("%s/b%d", c.Name, batch))
	c.buildForward(fwd, batch)
	return graph.Backward(fwd)
}

func (c LlamaConfig) buildForward(g *graph.Graph, batch int) {
	if batch <= 0 {
		panic("models: batch must be positive")
	}
	tokens := batch * c.SeqLen
	h := c.Hidden
	d := (h + c.Heads - 1) / c.Heads
	rows := batch * c.Heads

	last := g.Add(kernels.NewEmbedding(tokens, h, c.Vocab))
	for i := 0; i < c.Layers; i++ {
		// Attention with rotary embeddings.
		norm := g.Add(kernels.NewLayerNorm(tokens, h), last) // RMSNorm
		qkv := g.Add(kernels.NewLinear(tokens, h, 3*h), norm)
		rope := g.Add(kernels.NewElementwise(kernels.OpEWMul, tokens, 2*h), qkv) // rotate Q and K
		scores := g.Add(kernels.NewBMM(rows, c.SeqLen, d, c.SeqLen), rope)
		probs := g.Add(kernels.NewSoftmax(rows*c.SeqLen, c.SeqLen), scores)
		ctx := g.Add(kernels.NewBMM(rows, c.SeqLen, c.SeqLen, d), probs)
		proj := g.Add(kernels.NewLinear(tokens, h, h), ctx)
		res1 := g.Add(kernels.NewElementwise(kernels.OpEWAdd, tokens, h), proj, last)

		// SwiGLU FFN: gate and up projections, SiLU gate, elementwise
		// product, down projection.
		norm2 := g.Add(kernels.NewLayerNorm(tokens, h), res1)
		gate := g.Add(kernels.NewLinear(tokens, h, c.FFN), norm2)
		up := g.Add(kernels.NewLinear(tokens, h, c.FFN), norm2)
		silu := g.Add(kernels.NewElementwise(kernels.OpEWTanh, tokens, c.FFN), gate)
		prod := g.Add(kernels.NewElementwise(kernels.OpEWMul, tokens, c.FFN), silu, up)
		down := g.Add(kernels.NewLinear(tokens, c.FFN, h), prod)
		last = g.Add(kernels.NewElementwise(kernels.OpEWAdd, tokens, h), down, res1)
	}
	final := g.Add(kernels.NewLayerNorm(tokens, h), last)
	g.Add(kernels.NewLinear(tokens, h, c.Vocab), final)
}

// NumParams estimates the Llama parameter count.
func (c LlamaConfig) NumParams() float64 {
	h := float64(c.Hidden)
	perLayer := 4*h*h + 3*h*float64(c.FFN)
	return float64(c.Layers)*perLayer + float64(c.Vocab)*h
}
