// Package models builds the kernel graphs of the paper's evaluation
// workloads (Table 5): BERT-Large, GPT2-Large, GPT3-XL, OPT-1.3B,
// GPT3-2.7B, and the 4-expert Switch Transformer, plus the GPT-3 scale
// configuration used for the multi-node study (Table 9). Graphs mirror what
// Torch.fx extraction records from a HuggingFace-style transformer: the
// per-layer kernel sequence with concrete tensor dimensions.
package models

import (
	"fmt"

	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// Config describes a transformer workload (Table 5 columns).
type Config struct {
	Name       string
	Year       int
	ParamsDesc string // human-readable parameter count ("1.3B")
	Layers     int
	Heads      int
	Hidden     int
	SeqLen     int
	Vocab      int
	Experts    int  // >0 selects a Switch-style MoE FFN
	Classifier bool // BERT-style classification head instead of LM head
}

// Table5 returns the six evaluation workloads with the paper's dimensions.
func Table5() []Config {
	return []Config{
		{Name: "BERT-Large", Year: 2018, ParamsDesc: "340M", Layers: 12, Heads: 16, Hidden: 760, SeqLen: 512, Vocab: 30522, Classifier: true},
		{Name: "GPT2-Large", Year: 2019, ParamsDesc: "774M", Layers: 36, Heads: 20, Hidden: 1280, SeqLen: 1024, Vocab: 50257},
		{Name: "GPT3-XL", Year: 2020, ParamsDesc: "1.3B", Layers: 24, Heads: 24, Hidden: 3072, SeqLen: 2048, Vocab: 50257},
		{Name: "OPT-1.3B", Year: 2022, ParamsDesc: "1.3B", Layers: 24, Heads: 24, Hidden: 2048, SeqLen: 2048, Vocab: 50272},
		{Name: "GPT3-2.7B", Year: 2020, ParamsDesc: "2.7B", Layers: 32, Heads: 32, Hidden: 2560, SeqLen: 2048, Vocab: 50257},
		{Name: "SwitchTrans", Year: 2021, ParamsDesc: "5.3B", Layers: 24, Heads: 32, Hidden: 1024, SeqLen: 512, Vocab: 32128, Experts: 4},
	}
}

// GPT3MultiNode returns the GPT-3 scale configuration of the multi-node
// study (Table 9): the 175B-class model trained with 8-wide tensor
// parallelism per node.
func GPT3MultiNode() Config {
	return Config{Name: "GPT3-175B", Year: 2020, ParamsDesc: "175B", Layers: 96, Heads: 96, Hidden: 12288, SeqLen: 2048, Vocab: 50257}
}

// Lookup finds a Table 5 workload by name.
func Lookup(name string) (Config, error) {
	for _, c := range Table5() {
		if c.Name == name {
			return c, nil
		}
	}
	if name == "GPT3-175B" {
		return GPT3MultiNode(), nil
	}
	return Config{}, fmt.Errorf("models: unknown workload %q", name)
}

// MustLookup panics on unknown workload names.
func MustLookup(name string) Config {
	c, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return c
}

// HeadDim returns the per-head dimension, rounding up when Hidden is not an
// exact multiple of Heads (BERT-Large's 760/16 from Table 5): libraries pad
// the head dimension rather than splitting unevenly.
func (c Config) HeadDim() int {
	return (c.Hidden + c.Heads - 1) / c.Heads
}

// NumParams estimates the trainable parameter count of the architecture.
func (c Config) NumParams() float64 {
	h := float64(c.Hidden)
	perLayerAttn := 4 * h * h // QKV (3h²) + output projection (h²)
	ffnMult := 1.0
	if c.Experts > 0 {
		ffnMult = float64(c.Experts)
	}
	perLayerFFN := 8 * h * h * ffnMult // two 4x expansions
	embed := float64(c.Vocab) * h
	return float64(c.Layers)*(perLayerAttn+perLayerFFN) + embed
}

// InferenceGraph builds the forward kernel graph for one inference pass at
// the given batch size. For generative models this is the prefill pass whose
// latency is the paper's "time to generate the first token" metric; for
// classifier models it ends in the classification head.
func (c Config) InferenceGraph(batch int) *graph.Graph {
	g := graph.New(fmt.Sprintf("%s/b%d/infer", c.Name, batch))
	c.buildForward(g, batch)
	return g
}

// TrainingGraph builds the forward+backward kernel graph for one training
// iteration at the given batch size (paper Section 6.1: "per-iteration
// training time, including a single forward and backward pass").
func (c Config) TrainingGraph(batch int) *graph.Graph {
	fwd := graph.New(fmt.Sprintf("%s/b%d", c.Name, batch))
	c.buildForward(fwd, batch)
	return graph.Backward(fwd)
}

// buildForward appends the forward kernels. Returns the last node ID.
func (c Config) buildForward(g *graph.Graph, batch int) int {
	return c.buildForwardSharded(g, batch, 1)
}

// buildForwardSharded appends the forward kernels for one GPU's shard under
// Megatron-style tensor model parallelism of the given width (tp=1 is the
// unsharded model). Column-parallel layers (QKV, FFN up, LM head) split the
// output dimension; row-parallel layers (attention projection, FFN down)
// split the input dimension; attention heads divide across shards;
// layernorms, residuals, and embeddings replicate.
func (c Config) buildForwardSharded(g *graph.Graph, batch, tp int) int {
	if batch <= 0 {
		panic("models: batch must be positive")
	}
	if tp < 1 {
		panic("models: tensor-parallel width must be >= 1")
	}
	tokens := batch * c.SeqLen
	h := c.Hidden
	d := c.HeadDim()
	heads := ceilDiv(c.Heads, tp)
	hShard := ceilDiv(h, tp)
	ffnShard := ceilDiv(4*h, tp)
	attnRows := batch * heads // BMM batch dimension

	last := g.Add(kernels.NewEmbedding(tokens, h, c.Vocab))
	for layer := 0; layer < c.Layers; layer++ {
		// Attention block.
		ln1 := g.Add(kernels.NewLayerNorm(tokens, h), last)
		qkv := g.Add(kernels.NewLinear(tokens, h, 3*hShard), ln1)
		scores := g.Add(kernels.NewBMM(attnRows, c.SeqLen, d, c.SeqLen), qkv)
		probs := g.Add(kernels.NewSoftmax(attnRows*c.SeqLen, c.SeqLen), scores)
		ctx := g.Add(kernels.NewBMM(attnRows, c.SeqLen, c.SeqLen, d), probs)
		proj := g.Add(kernels.NewLinear(tokens, hShard, h), ctx)
		res1 := g.Add(kernels.NewElementwise(kernels.OpEWAdd, tokens, h), proj, last)

		// FFN block (dense or Switch MoE).
		ln2 := g.Add(kernels.NewLayerNorm(tokens, h), res1)
		var ffnOut int
		if c.Experts > 0 {
			ffnOut = c.buildMoEFFN(g, ln2, tokens)
		} else {
			up := g.Add(kernels.NewLinear(tokens, h, ffnShard), ln2)
			act := g.Add(kernels.NewElementwise(kernels.OpEWGELU, tokens, ffnShard), up)
			ffnOut = g.Add(kernels.NewLinear(tokens, ffnShard, h), act)
		}
		last = g.Add(kernels.NewElementwise(kernels.OpEWAdd, tokens, h), ffnOut, res1)
	}
	final := g.Add(kernels.NewLayerNorm(tokens, h), last)
	if c.Classifier {
		// Classification reads the pooled [CLS] token per sample.
		return g.Add(kernels.NewLinear(batch, h, 2), final)
	}
	// Vocab-parallel LM head.
	return g.Add(kernels.NewLinear(tokens, h, ceilDiv(c.Vocab, tp)), final)
}

// TPInferenceGraph builds one GPU's forward shard under tensor model
// parallelism of the given width.
func (c Config) TPInferenceGraph(batch, width int) *graph.Graph {
	g := graph.New(fmt.Sprintf("%s/b%d/tp%d/infer", c.Name, batch, width))
	c.buildForwardSharded(g, batch, width)
	return g
}

// TPTrainingGraph builds one GPU's forward+backward shard under tensor
// model parallelism of the given width.
func (c Config) TPTrainingGraph(batch, width int) *graph.Graph {
	fwd := graph.New(fmt.Sprintf("%s/b%d/tp%d", c.Name, batch, width))
	c.buildForwardSharded(fwd, batch, width)
	return graph.Backward(fwd)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// buildMoEFFN emits a Switch Transformer FFN: a router projection and
// softmax over experts, then each expert processing its 1/E share of the
// tokens (top-1 routing with balanced load, the Switch design point).
func (c Config) buildMoEFFN(g *graph.Graph, in, tokens int) int {
	h := c.Hidden
	router := g.Add(kernels.NewLinear(tokens, h, c.Experts), in)
	gate := g.Add(kernels.NewSoftmax(tokens, c.Experts), router)
	perExpert := (tokens + c.Experts - 1) / c.Experts
	expertOuts := make([]int, 0, c.Experts)
	for e := 0; e < c.Experts; e++ {
		up := g.Add(kernels.NewLinear(perExpert, h, 4*h), gate)
		act := g.Add(kernels.NewElementwise(kernels.OpEWGELU, perExpert, 4*h), up)
		down := g.Add(kernels.NewLinear(perExpert, 4*h, h), act)
		expertOuts = append(expertOuts, down)
	}
	// Weighted combine of expert outputs back into token order.
	return g.Add(kernels.NewElementwise(kernels.OpEWMul, tokens, h), expertOuts...)
}

// HasOODDims reports whether the workload contains BMM kernels with an
// operand dimension above the 1024 cap of the predictor training set —
// the paper's criterion for calling a model out-of-distribution.
func (c Config) HasOODDims() bool {
	for _, k := range c.InferenceGraph(1).Kernels() {
		if k.Op != kernels.OpBMM {
			continue
		}
		if k.M > 1024 || k.K > 1024 || k.N > 1024 {
			return true
		}
	}
	return false
}
