package models

import (
	"math"
	"testing"

	"neusight/internal/kernels"
)

func TestTable5Inventory(t *testing.T) {
	cfgs := Table5()
	if len(cfgs) != 6 {
		t.Fatalf("Table 5 has %d workloads, want 6", len(cfgs))
	}
	byName := map[string]Config{}
	for _, c := range cfgs {
		byName[c.Name] = c
	}
	gpt2 := byName["GPT2-Large"]
	if gpt2.Layers != 36 || gpt2.Heads != 20 || gpt2.Hidden != 1280 || gpt2.SeqLen != 1024 {
		t.Fatalf("GPT2-Large config wrong: %+v", gpt2)
	}
	sw := byName["SwitchTrans"]
	if sw.Experts != 4 {
		t.Fatalf("Switch Transformer must use the 4-expert configuration, got %d", sw.Experts)
	}
	bert := byName["BERT-Large"]
	if !bert.Classifier {
		t.Fatal("BERT must use the classification head (binary task, Section 6.1)")
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("GPT3-XL"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("GPT3-175B"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("LLaMA"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestParamCountsPlausible(t *testing.T) {
	// Table 5's dimension columns do not exactly reproduce its parameter
	// column (e.g. BERT-Large at hidden 760 is ~110M, not 340M), so
	// NumParams is informational: it must be positive and in the
	// hundreds-of-millions-to-billions range the table describes.
	for _, c := range Table5() {
		got := c.NumParams()
		if got < 5e7 || got > 5e10 {
			t.Errorf("%s: derived params %.3g outside plausible range", c.Name, got)
		}
	}
	if GPT3MultiNode().NumParams() < 1e11 {
		t.Error("GPT3-175B config should derive >100B params")
	}
}

func TestInferenceGraphStructure(t *testing.T) {
	c := MustLookup("GPT2-Large")
	g := c.InferenceGraph(4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := g.CountByCategory()
	// Per layer: 2 BMM, 3 Linear, 2 LN, 3 EW(add+gelu... add,add,gelu), 1 softmax.
	if got := counts[kernels.CatBMM]; got != 2*c.Layers {
		t.Fatalf("BMM count = %d, want %d", got, 2*c.Layers)
	}
	if got := counts[kernels.CatSoftmax]; got != c.Layers {
		t.Fatalf("softmax count = %d, want %d", got, c.Layers)
	}
	// Per layer: QKV, attention projection, FFN up, FFN down; plus LM head.
	if got := counts[kernels.CatLinear]; got != 4*c.Layers+1 {
		t.Fatalf("linear count = %d, want %d", got, 4*c.Layers+1)
	}
	if got := counts[kernels.CatLayerNorm]; got != 2*c.Layers+1 {
		t.Fatalf("layernorm count = %d, want %d", got, 2*c.Layers+1)
	}
}

func TestAttentionDims(t *testing.T) {
	c := MustLookup("GPT3-XL")
	g := c.InferenceGraph(2)
	var scores, ctx *kernels.Kernel
	for _, k := range g.Kernels() {
		if k.Op == kernels.OpBMM {
			k := k
			if scores == nil {
				scores = &k
			} else if ctx == nil {
				ctx = &k
				break
			}
		}
	}
	d := c.HeadDim()
	if scores.B != 2*c.Heads || scores.M != c.SeqLen || scores.K != d || scores.N != c.SeqLen {
		t.Fatalf("scores BMM = %+v", scores)
	}
	if ctx.K != c.SeqLen || ctx.N != d {
		t.Fatalf("context BMM = %+v", ctx)
	}
}

func TestHeadDimPadding(t *testing.T) {
	bert := MustLookup("BERT-Large")
	if bert.Hidden%bert.Heads == 0 {
		t.Skip("table dims divide evenly; padding rule unused")
	}
	if got := bert.HeadDim(); got != 48 {
		t.Fatalf("BERT head dim = %d, want 48 (760/16 rounded up)", got)
	}
}

func TestTrainingGraphBiggerThanInference(t *testing.T) {
	c := MustLookup("BERT-Large")
	inf := c.InferenceGraph(8)
	train := c.TrainingGraph(8)
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	r := train.TotalFLOPs() / inf.TotalFLOPs()
	if r < 2.5 || r > 3.5 {
		t.Fatalf("training/inference FLOP ratio = %v, want ~3 (fwd + 2x bwd GEMMs)", r)
	}
}

func TestFLOPsScaleWithBatch(t *testing.T) {
	c := MustLookup("GPT2-Large")
	f1 := c.InferenceGraph(1).TotalFLOPs()
	f8 := c.InferenceGraph(8).TotalFLOPs()
	if r := f8 / f1; math.Abs(r-8) > 0.5 {
		t.Fatalf("batch-8 FLOPs ratio = %v, want ~8", r)
	}
}

func TestTransformerFLOPsSanity(t *testing.T) {
	// GPT2-Large forward at batch 1 should cost roughly 2 * params *
	// tokens FLOPs (the standard estimate), within 2x given attention.
	c := MustLookup("GPT2-Large")
	got := c.InferenceGraph(1).TotalFLOPs()
	want := 2 * c.NumParams() * float64(c.SeqLen)
	if got < want/2 || got > want*2.5 {
		t.Fatalf("forward FLOPs %.3g, rule-of-thumb %.3g", got, want)
	}
}

func TestMoEGraph(t *testing.T) {
	c := MustLookup("SwitchTrans")
	g := c.InferenceGraph(2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Router + 2 expert GEMMs per expert per layer + QKV + proj + head:
	// linear count = layers*(2 + 1 + experts*2) + 1.
	wantLinear := c.Layers*(3+c.Experts*2) + 1
	if got := g.CountByCategory()[kernels.CatLinear]; got != wantLinear {
		t.Fatalf("MoE linear count = %d, want %d", got, wantLinear)
	}
	// Two softmaxes per layer: attention + router gate.
	if got := g.CountByCategory()[kernels.CatSoftmax]; got != 2*c.Layers {
		t.Fatalf("MoE softmax count = %d, want %d", got, 2*c.Layers)
	}
}

func TestMoEFLOPsComparableToDense(t *testing.T) {
	// Top-1 routing: per-token FFN work matches a dense model of the same
	// hidden size, so the MoE graph should cost about the same FLOPs as
	// its dense twin (not E times more).
	moe := MustLookup("SwitchTrans")
	dense := moe
	dense.Experts = 0
	fMoE := moe.InferenceGraph(4).TotalFLOPs()
	fDense := dense.InferenceGraph(4).TotalFLOPs()
	if r := fMoE / fDense; r < 0.9 || r > 1.3 {
		t.Fatalf("MoE/dense FLOP ratio = %v, want ~1 (top-1 routing)", r)
	}
}

func TestOODCriterion(t *testing.T) {
	// Paper: GPT3/OPT models contain BMMs with operand dims >= 2048, BERT
	// (seq 512) and GPT2 (seq 1024, head dim 64) do not exceed 1024.
	ood := map[string]bool{
		"BERT-Large": false, "GPT2-Large": false, "SwitchTrans": false,
		"GPT3-XL": true, "OPT-1.3B": true, "GPT3-2.7B": true,
	}
	for _, c := range Table5() {
		if got := c.HasOODDims(); got != ood[c.Name] {
			t.Errorf("%s: OOD = %v, want %v", c.Name, got, ood[c.Name])
		}
	}
}

func TestClassifierVsLMHead(t *testing.T) {
	bert := MustLookup("BERT-Large")
	g := bert.InferenceGraph(16)
	lastK := g.Nodes[len(g.Nodes)-1].Kernel
	if lastK.Op != kernels.OpLinear || lastK.N != 2 || lastK.M != 16 {
		t.Fatalf("BERT head = %+v, want per-sample binary classifier", lastK)
	}
	gpt := MustLookup("GPT2-Large").InferenceGraph(2)
	lastK = gpt.Nodes[len(gpt.Nodes)-1].Kernel
	if lastK.N != 50257 {
		t.Fatalf("GPT head = %+v, want vocab-wide LM head", lastK)
	}
}

func TestZeroBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch 0")
		}
	}()
	MustLookup("GPT2-Large").InferenceGraph(0)
}
