package models

import (
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/gpusim"
	"neusight/internal/kernels"
)

func TestResNet50GraphValid(t *testing.T) {
	g := ResNet50InferenceGraph(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := g.CountByCategory()
	// 53 convs (1 stem + 16 blocks x 3 + 4 projections) + 1 FC head.
	if got := counts[kernels.CatLinear]; got != 54 {
		t.Fatalf("conv+fc count = %d, want 54", got)
	}
	if counts[kernels.CatMemoryBound] < 2 {
		t.Fatal("missing pooling kernels")
	}
}

func TestResNet50FLOPs(t *testing.T) {
	// ResNet-50 forward is ~4.1 GFLOPs per 224x224 image (standard
	// figure); allow 2x for the bias/BN accounting.
	g := ResNet50InferenceGraph(1)
	flops := g.TotalFLOPs()
	if flops < 3e9 || flops > 10e9 {
		t.Fatalf("ResNet-50 forward FLOPs = %.3g, want ~4-8 GFLOPs", flops)
	}
	// Scales linearly with batch.
	f8 := ResNet50InferenceGraph(8).TotalFLOPs()
	if r := f8 / flops; r < 7.5 || r > 8.5 {
		t.Fatalf("batch scaling ratio = %v", r)
	}
}

func TestResNet50TrainingRatio(t *testing.T) {
	inf := ResNet50InferenceGraph(4).TotalFLOPs()
	train := ResNet50TrainingGraph(4).TotalFLOPs()
	if r := train / inf; r < 2.5 || r > 3.5 {
		t.Fatalf("train/infer FLOP ratio = %v, want ~3", r)
	}
}

func TestConv2DLowering(t *testing.T) {
	k := kernels.NewConv2D(kernels.Conv2DShape{
		Batch: 2, Cin: 64, H: 56, W: 56, Cout: 128, Kh: 3, Kw: 3, Stride: 2, Pad: 1,
	})
	// Output 28x28: M = 2*28*28, K = 64*9, N = 128.
	if k.M != 2*28*28 || k.K != 576 || k.N != 128 {
		t.Fatalf("lowered dims = M%d K%d N%d", k.M, k.K, k.N)
	}
	if k.Category() != kernels.CatLinear {
		t.Fatal("conv must route to the FC predictor (implicit GEMM)")
	}
	// Input traffic reflects the real tensor, not the im2col expansion.
	inputBytes := 4.0 * 2 * 64 * 56 * 56
	if k.MemBytes() > inputBytes+4*float64(k.K*k.N+k.M*k.N)+1 {
		t.Fatalf("conv traffic %.3g should not include im2col expansion", k.MemBytes())
	}
}

func TestConv2DOutputCollapsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	kernels.NewConv2D(kernels.Conv2DShape{Batch: 1, Cin: 1, H: 2, W: 2, Cout: 1, Kh: 5, Kw: 5, Stride: 1, Pad: 0})
}

// TestResNet50SimulatedLatencyPlausible pins the simulated V100 iteration
// into a broad plausibility band (real V100 ResNet-50 inference at batch
// 256 is tens to a couple hundred ms).
func TestResNet50SimulatedLatencyPlausible(t *testing.T) {
	sim := gpusim.New()
	v100 := gpu.MustLookup("V100")
	g := ResNet50InferenceGraph(256)
	total := 0.0
	for _, k := range g.Kernels() {
		total += sim.KernelLatency(k, v100)
	}
	if total < 20 || total > 2000 {
		t.Fatalf("simulated ResNet-50 b256 inference = %.1f ms, outside plausible band", total)
	}
}
