package serve

import (
	"fmt"
	"net/http"

	"neusight/internal/gpu"
	"neusight/internal/observe"
)

// ObserveRequest is the JSON body of POST /v2/observe (single form): one
// measured kernel latency to compare against the engine's current
// prediction. GPU falls back to the kernel's own gpu field when empty;
// engine "" selects the default.
type ObserveRequest struct {
	Kernel     KernelRequest `json:"kernel"`
	GPU        string        `json:"gpu,omitempty"`
	Engine     string        `json:"engine,omitempty"`
	ObservedMs float64       `json:"observed_ms"`
}

// ObserveBatchRequest is the batch form of POST /v2/observe, bounded by
// the same MaxBatchKernels cap as the predict batch path.
type ObserveBatchRequest struct {
	Observations []ObserveRequest `json:"observations"`
}

// observeEnvelope decodes both forms of POST /v2/observe in one pass: a
// non-empty Observations list selects the batch form, else the embedded
// single observation.
type observeEnvelope struct {
	ObserveRequest
	Observations []ObserveRequest `json:"observations"`
}

// ObserveItem is one per-observation result inside an ObserveResponse.
type ObserveItem struct {
	Error string `json:"error,omitempty"`
}

// ObserveResponse is the JSON reply of POST /v2/observe. Items are
// positional for the batch form and omitted for the single form.
type ObserveResponse struct {
	Accepted int           `json:"accepted"`
	Rejected int           `json:"rejected"`
	Items    []ObserveItem `json:"items,omitempty"`
}

// SetObserver attaches (non-nil) or detaches (nil) the drift monitor that
// ingests POST /v2/observe. The caller owns the monitor's lifecycle:
// close it after the service stops serving.
func (s *Service) SetObserver(m *observe.Monitor) { s.observer.Store(m) }

// Observer returns the attached drift monitor, or nil when observation
// ingestion is disabled.
func (s *Service) Observer() *observe.Monitor { return s.observer.Load() }

// ObserveReport returns the attached monitor's drift report, or nil when
// observation ingestion is disabled — the "observe" section of /v2/stats.
func (s *Service) ObserveReport() *observe.Report {
	m := s.observer.Load()
	if m == nil {
		return nil
	}
	rep := m.Report()
	return &rep
}

// observeOne validates one observation and ingests it through the
// monitor. On failure it returns a client-facing error plus the HTTP
// status the single form reports: 400 for a malformed observation,
// predictErrorCode for a failure resolving the reference prediction
// (unknown engine, saturated shard).
func (s *Service) observeOne(r *http.Request, m *observe.Monitor, req ObserveRequest) (int, error) {
	k, err := buildKernel(req.Kernel)
	if err != nil {
		return http.StatusBadRequest, err
	}
	gpuName := req.GPU
	if gpuName == "" {
		gpuName = req.Kernel.GPU
	}
	g, err := gpu.Lookup(gpuName)
	if err != nil {
		return http.StatusBadRequest, err
	}
	if !(req.ObservedMs > 0) {
		return http.StatusBadRequest, fmt.Errorf("observed_ms must be positive, got %v", req.ObservedMs)
	}
	// The ingest's reference prediction rides the regular serving path —
	// cache, coalescing, counters — so observing a key also warms it.
	if err := m.Ingest(r.Context(), requestedEngine(s, req.Engine), k, g, req.ObservedMs); err != nil {
		return predictErrorCode(err), err
	}
	return 0, nil
}

// handleObserve serves POST /v2/observe: measured kernel latencies fed
// back into drift detection. Single-form errors report with a status
// code; batch-form errors report positionally with the batch accepted.
func handleObserve(s *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		m := s.Observer()
		if m == nil {
			writeError(w, http.StatusNotFound, "observation ingestion disabled: start the server with -observe")
			return
		}
		var req observeEnvelope
		if !decodeBody(w, r, &req) {
			return
		}
		if len(req.Observations) > MaxBatchKernels {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds the %d-observation limit; split the request", len(req.Observations), MaxBatchKernels))
			return
		}
		if len(req.Observations) == 0 {
			if req.Kernel.Op == "" {
				writeError(w, http.StatusBadRequest, "empty observation: provide kernel+observed_ms or an observations list")
				return
			}
			if code, err := s.observeOne(r, m, req.ObserveRequest); err != nil {
				writeError(w, code, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, ObserveResponse{Accepted: 1})
			return
		}
		resp := ObserveResponse{Items: make([]ObserveItem, len(req.Observations))}
		for i, ob := range req.Observations {
			if _, err := s.observeOne(r, m, ob); err != nil {
				resp.Items[i].Error = err.Error()
				resp.Rejected++
				continue
			}
			resp.Accepted++
		}
		writeJSON(w, http.StatusOK, resp)
	}
}
