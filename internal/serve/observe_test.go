package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/observe"
)

// observeService wires a multi-engine service to a drift monitor the way
// cmd/neusight does: the monitor's reference prediction rides the
// service's own serving path.
func observeService(t *testing.T, cfg observe.Config) (*Service, *observe.Monitor) {
	t.Helper()
	svc := multiService(t)
	mon := observe.NewMonitor(cfg, func(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec) (float64, error) {
		res, err := svc.PredictKernelEngine(ctx, engine, k, g)
		return res.Latency, err
	})
	svc.SetObserver(mon)
	t.Cleanup(func() { mon.Close() })
	return svc, mon
}

func postObserve(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v2/observe", bytes.NewReader(enc))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestObserveDisabledReturns404(t *testing.T) {
	h := NewHandler(multiService(t)) // no SetObserver
	w := postObserve(t, h, ObserveRequest{
		Kernel: KernelRequest{Op: "bmm", B: 1, M: 64, K: 64, N: 64, GPU: "V100"}, ObservedMs: 1,
	})
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when -observe is off", w.Code)
	}
	if !strings.Contains(w.Body.String(), "-observe") {
		t.Fatalf("error %q should point at the -observe flag", w.Body.String())
	}
}

func TestObserveSingle(t *testing.T) {
	svc, _ := observeService(t, observe.Config{Window: 8, MinSamples: 4, Threshold: 0.5})
	h := NewHandler(svc)
	// Engine "alpha" predicts 1ms; observe 2ms -> MAPE 0.5 on the window.
	w := postObserve(t, h, ObserveRequest{
		Kernel: KernelRequest{Op: "bmm", B: 1, M: 64, K: 64, N: 64, GPU: "V100"}, ObservedMs: 2,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp ObserveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Rejected != 0 || resp.Items != nil {
		t.Fatalf("response %+v, want accepted=1 and no items for the single form", resp)
	}
	// The reference prediction rode the serving path: the observed key is
	// now cached, so observing doubles as warming.
	if st := svc.Stats(); st.Requests != 1 || st.CacheLen != 1 {
		t.Fatalf("service stats %+v, want the observation to have warmed one key", st)
	}

	// /v2/stats carries the drift report.
	req := httptest.NewRequest(http.MethodGet, "/v2/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st StatsV2
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Observe == nil {
		t.Fatal("/v2/stats has no observe section with a monitor attached")
	}
	if st.Observe.Ingested != 1 || len(st.Observe.Windows) != 1 {
		t.Fatalf("observe section %+v, want 1 ingested in 1 window", st.Observe)
	}
	ow := st.Observe.Windows[0]
	if ow.Engine != "alpha" || ow.GPU != "V100" || ow.MAPE != 0.5 {
		t.Fatalf("window %+v, want alpha/V100 at MAPE 0.5", ow)
	}

	// /metrics exports the observe families.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	for _, want := range []string{
		"neusight_observe_ingested_total 1",
		`neusight_observe_mape{engine="alpha",gpu="V100"} 0.5`,
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func TestObserveBatch(t *testing.T) {
	svc, _ := observeService(t, observe.Config{})
	h := NewHandler(svc)
	good := KernelRequest{Op: "bmm", B: 1, M: 64, K: 64, N: 64, GPU: "V100"}
	w := postObserve(t, h, ObserveBatchRequest{Observations: []ObserveRequest{
		{Kernel: good, ObservedMs: 1.5},
		{Kernel: KernelRequest{Op: "no-such-op", GPU: "V100"}, ObservedMs: 1}, // bad op
		{Kernel: good, Engine: "nope", ObservedMs: 1},                         // unknown engine
		{Kernel: good, ObservedMs: -1},                                        // bad latency
		{Kernel: good, GPU: "H100", ObservedMs: 2},                            // GPU override
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp ObserveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Rejected != 3 || len(resp.Items) != 5 {
		t.Fatalf("batch response %+v, want accepted=2 rejected=3 with 5 positional items", resp)
	}
	for i, wantErr := range []bool{false, true, true, true, false} {
		if got := resp.Items[i].Error != ""; got != wantErr {
			t.Fatalf("item %d error=%q, want error=%v", i, resp.Items[i].Error, wantErr)
		}
	}
	// The GPU override opened a second window.
	rep := svc.ObserveReport()
	if len(rep.Windows) != 2 {
		t.Fatalf("%d windows, want 2 (V100 and H100)", len(rep.Windows))
	}
}

func TestObserveValidation(t *testing.T) {
	svc, _ := observeService(t, observe.Config{})
	h := NewHandler(svc)

	// Method.
	req := httptest.NewRequest(http.MethodGet, "/v2/observe", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", rec.Code)
	}

	// Empty body: neither form present.
	if w := postObserve(t, h, map[string]any{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty observation status %d, want 400", w.Code)
	}

	// Single-form failures report with a status code.
	good := KernelRequest{Op: "bmm", B: 1, M: 64, K: 64, N: 64, GPU: "V100"}
	for _, tc := range []struct {
		name string
		body ObserveRequest
		want int
	}{
		{"non-positive latency", ObserveRequest{Kernel: good, ObservedMs: 0}, http.StatusBadRequest},
		{"unknown gpu", ObserveRequest{Kernel: KernelRequest{Op: "bmm", B: 1, M: 64, K: 64, N: 64, GPU: "TPU"}, ObservedMs: 1}, http.StatusBadRequest},
		{"unknown engine", ObserveRequest{Kernel: good, Engine: "gamma", ObservedMs: 1}, http.StatusBadRequest},
	} {
		if w := postObserve(t, h, tc.body); w.Code != tc.want {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}

	// Oversized batch.
	obs := make([]ObserveRequest, MaxBatchKernels+1)
	for i := range obs {
		obs[i] = ObserveRequest{Kernel: good, ObservedMs: 1}
	}
	if w := postObserve(t, h, ObserveBatchRequest{Observations: obs}); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", w.Code)
	}
	if rep := svc.ObserveReport(); rep.Ingested != 0 {
		t.Fatalf("rejected requests ingested %d observations", rep.Ingested)
	}
}
