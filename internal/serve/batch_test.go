package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
)

// batchStub is a backend with native batch support: it records every batch
// size it receives so tests can assert misses were actually batched, not
// looped.
type batchStub struct {
	stubPredictor
	batchCalls atomic.Int64
	mu         sync.Mutex
	sizes      []int
}

func (s *batchStub) PredictKernels(ks []kernels.Kernel, g gpu.Spec) ([]float64, []error) {
	s.batchCalls.Add(1)
	s.mu.Lock()
	s.sizes = append(s.sizes, len(ks))
	s.mu.Unlock()
	vals := make([]float64, len(ks))
	errs := make([]error, len(ks))
	for i, k := range ks {
		vals[i], errs[i] = s.stubPredictor.PredictKernel(k, g)
	}
	return vals, errs
}

func (s *batchStub) recordedSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.sizes...)
}

func TestPredictBatchDedupsAndCaches(t *testing.T) {
	stub := &batchStub{stubPredictor: stubPredictor{latency: 2.5}}
	svc := New(stub, Config{CacheSize: 64})
	g := gpu.MustLookup("V100")

	k1 := kernels.NewBMM(2, 64, 64, 64)
	k2 := kernels.NewSoftmax(128, 128)
	// Prime the cache with k1.
	if _, err := svc.PredictKernel(k1, g); err != nil {
		t.Fatal(err)
	}

	ks := []kernels.Kernel{k1, k2, k2, kernels.NewAllReduce(4096), k2}
	lats, errs := svc.PredictBatch(ks, g)

	if errs[0] != nil || lats[0] != 2.5 {
		t.Errorf("cached item = (%v, %v), want hit", lats[0], errs[0])
	}
	for _, i := range []int{1, 2, 4} {
		if errs[i] != nil || lats[i] != 2.5 {
			t.Errorf("item %d = (%v, %v), want 2.5", i, lats[i], errs[i])
		}
	}
	if errs[3] == nil {
		t.Error("network kernel must fail in place")
	}
	// The three k2 occurrences must deduplicate onto ONE backend item in
	// ONE batched call; k1 must not reach the backend again.
	if got := stub.recordedSizes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("backend batch sizes = %v, want [1]", got)
	}
	st := svc.Stats()
	if st.BatchRequests != 1 || st.BatchedKernels != 5 {
		t.Errorf("batch stats = %d calls / %d kernels, want 1/5", st.BatchRequests, st.BatchedKernels)
	}
	if st.CacheLen != 2 {
		t.Errorf("cache len = %d, want 2 (k1 and k2)", st.CacheLen)
	}
	// A follow-up batch is served entirely from cache.
	svc.PredictBatch([]kernels.Kernel{k1, k2}, g)
	if got := stub.batchCalls.Load(); got != 1 {
		t.Errorf("backend batch calls = %d, want 1 (second batch fully cached)", got)
	}
}

// TestPredictBatchFallsBackWithoutBatchBackend: a plain KernelPredictor
// still works — unique misses are evaluated per kernel, fanned across the
// worker pool rather than serialized under one slot.
func TestPredictBatchFallsBackWithoutBatchBackend(t *testing.T) {
	stub := &stubPredictor{latency: 1.5, gate: make(chan struct{})}
	svc := New(stub, Config{CacheSize: 64, Workers: 4})
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{
		kernels.NewBMM(1, 16, 16, 16),
		kernels.NewBMM(1, 32, 32, 32),
		kernels.NewBMM(1, 48, 48, 48),
		kernels.NewBMM(1, 16, 16, 16), // dup
	}
	done := make(chan struct{})
	var lats []float64
	var errs []error
	go func() {
		defer close(done)
		lats, errs = svc.PredictBatch(ks, g)
	}()
	// The three unique misses must run concurrently (pool fan-out), not
	// serialized under a single slot.
	waitFor(t, "3 concurrent fallback predictions", func() bool { return stub.active.Load() == 3 })
	close(stub.gate)
	<-done
	for i := range ks {
		if errs[i] != nil || lats[i] != 1.5 {
			t.Errorf("item %d = (%v, %v), want 1.5", i, lats[i], errs[i])
		}
	}
	if got := stub.calls.Load(); got != 3 {
		t.Errorf("backend calls = %d, want 3 (dup deduplicated)", got)
	}
}

// TestPredictGraphDoesNotCountAsBatchRequest: batch_requests/batched_kernels
// track client batch calls only; internal graph batching must not move them.
func TestPredictGraphDoesNotCountAsBatchRequest(t *testing.T) {
	stub := &stubPredictor{latency: 1}
	svc := New(stub, Config{CacheSize: 16})
	gr := graph.New("t")
	a := gr.Add(kernels.NewBMM(2, 64, 64, 64))
	gr.Add(kernels.NewSoftmax(128, 64), a)
	svc.PredictGraph(gr, gpu.MustLookup("V100"))
	st := svc.Stats()
	if st.BatchRequests != 0 || st.BatchedKernels != 0 {
		t.Errorf("graph traffic moved batch counters: %d/%d, want 0/0", st.BatchRequests, st.BatchedKernels)
	}
	if st.Requests != 2 || st.GraphRequests != 1 {
		t.Errorf("requests/graphs = %d/%d, want 2/1", st.Requests, st.GraphRequests)
	}
}

// TestPredictBatchCoalescesWithInflightSingles: a batch containing a key
// that a concurrent PredictKernel is already evaluating must wait for that
// evaluation rather than repeating it.
func TestPredictBatchCoalescesWithInflightSingles(t *testing.T) {
	stub := &batchStub{stubPredictor: stubPredictor{latency: 7, gate: make(chan struct{})}}
	svc := New(stub, Config{CacheSize: 64, Workers: 4})
	g := gpu.MustLookup("V100")
	k1 := kernels.NewBMM(4, 48, 48, 48)
	k2 := kernels.NewLayerNorm(64, 256)

	// Lead k1 via the single-kernel path, blocked on the gate.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		svc.PredictKernel(k1, g)
	}()
	waitFor(t, "k1 in flight", func() bool { return stub.active.Load() == 1 })

	// The batch leads k2 itself but must coalesce onto the in-flight k1 —
	// once, not once per duplicate occurrence of k1.
	done := make(chan struct{})
	var lats []float64
	var errs []error
	go func() {
		defer close(done)
		lats, errs = svc.PredictBatch([]kernels.Kernel{k1, k1, k2, k1}, g)
	}()
	waitFor(t, "batch coalesced onto k1", func() bool { return svc.Stats().Coalesced == 1 })
	close(stub.gate)
	wg.Wait()
	<-done

	for i := range lats {
		if errs[i] != nil || lats[i] != 7 {
			t.Errorf("item %d = (%v, %v), want 7", i, lats[i], errs[i])
		}
	}
	// k1 went through the single path; only k2 reached the batch backend.
	if got := stub.recordedSizes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("backend batch sizes = %v, want [1]", got)
	}
	st := svc.Stats()
	if st.Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1 (duplicates must not re-coalesce)", st.Coalesced)
	}
	// Misses: one for k1's single-path lead, one for k1 in the batch, one
	// for k2 — duplicate occurrences of an in-flight key count nothing.
	if st.CacheMisses != 3 {
		t.Errorf("cache misses = %d, want 3 (duplicates of an in-flight key must not count)", st.CacheMisses)
	}
}

// TestPredictBatchBackendPanicFailsItemsWithoutWedging mirrors the
// single-path panic test: every item errors, no key stays in flight.
func TestPredictBatchBackendPanicFailsItemsWithoutWedging(t *testing.T) {
	stub := &batchStub{stubPredictor: stubPredictor{latency: 3}}
	svc := New(stub, Config{CacheSize: 64, Workers: 1})
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{kernels.NewBMM(2, 40, 40, 40), kernels.NewSoftmax(32, 64)}

	stub.panicOnce.Store(true)
	_, errs := svc.PredictBatch(ks, g)
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Errorf("item %d error = %v, want backend panic error", i, err)
		}
	}
	// Keys must not be wedged and the pool slot must be free.
	lats, errs := svc.PredictBatch(ks, g)
	for i := range ks {
		if errs[i] != nil || lats[i] != 3 {
			t.Errorf("retry item %d = (%v, %v), want 3", i, lats[i], errs[i])
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	svc := New(&stubPredictor{latency: 1}, Config{CacheSize: 16})
	lats, errs := svc.PredictBatch(nil, gpu.MustLookup("V100"))
	if len(lats) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(lats), len(errs))
	}
}

// TestPredictBatchConcurrent drives many overlapping batches (run under
// -race by scripts/check.sh): every item must resolve to the right value
// and the cache must converge to one entry per unique kernel.
func TestPredictBatchConcurrent(t *testing.T) {
	stub := &batchStub{stubPredictor: stubPredictor{latency: 2}}
	svc := New(stub, Config{CacheSize: 256})
	g := gpu.MustLookup("H100")
	var pool []kernels.Kernel
	for i := 0; i < 24; i++ {
		pool = append(pool, kernels.NewBMM(1, 8+i, 8, 8))
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				lo := (w + iter) % (len(pool) - 11) // windows cover every pool index
				ks := pool[lo : lo+12]
				lats, errs := svc.PredictBatch(ks, g)
				for i := range ks {
					if errs[i] != nil {
						errCh <- errs[i]
						return
					}
					if lats[i] != 2 {
						errCh <- fmt.Errorf("unexpected batch latency %v", lats[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := int(stub.calls.Load()); got < len(pool) {
		t.Errorf("backend evaluations = %d, want >= %d (every unique kernel)", got, len(pool))
	}
	if got := svc.Stats().CacheLen; got != len(pool) {
		t.Errorf("cache len = %d, want %d", got, len(pool))
	}
}
