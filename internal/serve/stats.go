package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow records the durations of recent requests in a fixed-size
// ring and answers percentile queries over that window. Keeping a bounded
// window (rather than a full history) matches how serving dashboards read:
// percentiles reflect current behavior, and memory stays constant under
// sustained traffic.
type latencyWindow struct {
	mu    sync.Mutex
	ring  []time.Duration
	next  int
	count int
}

// defaultLatencyWindow is sized to smooth percentile estimates without
// letting hours-old requests dominate.
const defaultLatencyWindow = 4096

func newLatencyWindow(size int) *latencyWindow {
	if size <= 0 {
		size = defaultLatencyWindow
	}
	return &latencyWindow{ring: make([]time.Duration, size)}
}

// Observe records one request duration.
func (w *latencyWindow) Observe(d time.Duration) {
	w.mu.Lock()
	w.ring[w.next] = d
	w.next = (w.next + 1) % len(w.ring)
	if w.count < len(w.ring) {
		w.count++
	}
	w.mu.Unlock()
}

// Percentiles returns the given quantiles (each in [0,1]) over the window,
// in milliseconds. With no observations every quantile is 0.
func (w *latencyWindow) Percentiles(qs ...float64) []float64 {
	w.mu.Lock()
	samples := make([]time.Duration, w.count)
	copy(samples, w.ring[:w.count])
	w.mu.Unlock()

	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for i, q := range qs {
		idx := int(q * float64(len(samples)-1))
		out[i] = float64(samples[idx]) / float64(time.Millisecond)
	}
	return out
}
