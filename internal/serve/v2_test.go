package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

// constEngine builds a func engine answering every kernel with lat.
func constEngine(name string, lat float64) predict.Engine {
	return predict.NewFuncEngine(name, predict.SourceAnalytical,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) { return lat, nil })
}

// multiService builds a two-engine service: "alpha" (default, latency 1)
// and "beta" (latency 2).
func multiService(t *testing.T) *Service {
	t.Helper()
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	reg.MustRegister(constEngine("beta", 2))
	return NewMulti(reg, "alpha", Config{CacheSize: 64})
}

func TestMultiEngineRouting(t *testing.T) {
	svc := multiService(t)
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 64, 64, 64)
	ctx := context.Background()

	res, err := svc.PredictKernelEngine(ctx, "", k, g)
	if err != nil || res.Latency != 1 {
		t.Fatalf("default engine = (%+v, %v), want latency 1", res, err)
	}
	res, err = svc.PredictKernelEngine(ctx, "beta", k, g)
	if err != nil || res.Latency != 2 {
		t.Fatalf("beta engine = (%+v, %v), want latency 2", res, err)
	}
	if _, err := svc.PredictKernelEngine(ctx, "gamma", k, g); err == nil {
		t.Fatal("unknown engine must error")
	} else if !strings.Contains(err.Error(), "alpha") {
		t.Errorf("unknown-engine error should name the registered engines: %v", err)
	}

	// The same kernel hit both engines: two cache partitions, one entry
	// each — the engines must not share forecasts.
	es := svc.EngineStats()
	if len(es) != 2 {
		t.Fatalf("engine stats = %d entries, want 2", len(es))
	}
	for _, e := range es {
		if e.CacheLen != 1 || e.Requests != 1 || e.CacheMisses != 1 {
			t.Errorf("engine %s stats = %+v, want 1 request/miss/entry", e.Engine, e)
		}
	}
	if st := svc.Stats(); st.CacheLen != 2 || st.Requests != 2 {
		t.Errorf("aggregate stats = %+v, want cacheLen 2, requests 2", st)
	}

	// Per-engine caches serve their own partition.
	if res, err := svc.PredictKernelEngine(ctx, "beta", k, g); err != nil || res.Latency != 2 {
		t.Fatalf("cached beta = (%+v, %v)", res, err)
	}
	if hits, _ := func() (uint64, uint64) {
		for _, e := range svc.EngineStats() {
			if e.Engine == "beta" {
				return e.CacheHits, e.CacheMisses
			}
		}
		return 0, 0
	}(); hits != 1 {
		t.Errorf("beta cache hits = %d, want 1", hits)
	}
}

func TestPredictBatchEngineRouting(t *testing.T) {
	svc := multiService(t)
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{kernels.NewBMM(1, 32, 32, 32), kernels.NewSoftmax(16, 64)}
	outs, err := svc.PredictBatchEngine(context.Background(), "beta", ks, g)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil || out.Result.Latency != 2 {
			t.Errorf("item %d = %+v, want latency 2 from beta", i, out)
		}
	}
	if _, err := svc.PredictBatchEngine(context.Background(), "gamma", ks, g); err == nil {
		t.Fatal("unknown engine must error")
	}
}

// genEngine is a Generational stub: bumping gen simulates a retrain.
type genEngine struct {
	lat   float64
	calls atomic.Int64
	gen   atomic.Uint64
}

func (e *genEngine) Name() string { return "gen-stub" }

func (e *genEngine) PredictKernel(ctx context.Context, req predict.Request) (predict.Result, error) {
	e.calls.Add(1)
	return predict.Result{Latency: e.lat, Engine: "gen-stub", Source: predict.SourceBackend}, nil
}

func (e *genEngine) PredictKernels(ctx context.Context, reqs []predict.Request) []predict.Outcome {
	outs := make([]predict.Outcome, len(reqs))
	for i, req := range reqs {
		outs[i].Result, outs[i].Err = e.PredictKernel(ctx, req)
	}
	return outs
}

func (e *genEngine) Generation() uint64 { return e.gen.Load() }

// TestGenerationInvalidatesCache is the retrain-push satellite: a bumped
// engine generation makes cached forecasts unreachable without any manual
// FlushCache.
func TestGenerationInvalidatesCache(t *testing.T) {
	eng := &genEngine{lat: 5}
	reg := predict.NewRegistry()
	reg.MustRegister(eng)
	svc := NewMulti(reg, "gen-stub", Config{CacheSize: 16})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 48, 48, 48)

	svc.PredictKernel(k, g)
	svc.PredictKernel(k, g)
	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1 (second request cached)", got)
	}

	eng.gen.Add(1) // "retrain"
	if lat, err := svc.PredictKernel(k, g); err != nil || lat != 5 {
		t.Fatalf("post-retrain predict = (%v, %v)", lat, err)
	}
	if got := eng.calls.Load(); got != 2 {
		t.Fatalf("backend calls = %d, want 2 (generation bump must bypass the stale entry)", got)
	}
	// And the new generation is itself cached.
	svc.PredictKernel(k, g)
	if got := eng.calls.Load(); got != 2 {
		t.Fatalf("backend calls = %d, want 2 (new generation cached)", got)
	}
}

// TestGraphCancellationAbortsNotDegrades: a cancelled context must surface
// as a failed graph forecast, never as an HTTP-200 total quietly assembled
// from memory-bound fallbacks for the unevaluated kernels.
func TestGraphCancellationAbortsNotDegrades(t *testing.T) {
	svc := multiService(t)
	gr := graphOfTwo()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lat, _, err := svc.PredictGraphEngine(ctx, "", gr, gpu.MustLookup("V100"))
	if err == nil {
		t.Fatal("cancelled graph forecast must fail")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("error should be the cancellation, got %v", err)
	}
	if lat != 0 {
		t.Fatalf("aborted forecast returned a total (%v)", lat)
	}
}

func graphOfTwo() *graph.Graph {
	gr := graph.New("two")
	a := gr.Add(kernels.NewBMM(2, 64, 64, 64))
	gr.Add(kernels.NewSoftmax(64, 64), a)
	return gr
}

func newMultiServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(multiService(t)))
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPV2KernelEngineSelection(t *testing.T) {
	ts := newMultiServer(t)

	// Default engine.
	resp := postJSON(t, ts.URL+"/v2/predict/kernel", map[string]any{
		"op": "bmm", "b": 2, "m": 64, "k": 64, "n": 64, "gpu": "V100",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	kr := decode[KernelResponseV2](t, resp)
	if kr.LatencyMs != 1 || kr.Engine != "alpha" || kr.Source != predict.SourceAnalytical {
		t.Errorf("default v2 response = %+v, want latency 1 from alpha", kr)
	}

	// Explicit engine.
	resp = postJSON(t, ts.URL+"/v2/predict/kernel", map[string]any{
		"op": "bmm", "b": 2, "m": 64, "k": 64, "n": 64, "gpu": "V100", "engine": "beta",
	})
	kr = decode[KernelResponseV2](t, resp)
	if kr.LatencyMs != 2 || kr.Engine != "beta" {
		t.Errorf("beta v2 response = %+v, want latency 2 from beta", kr)
	}

	// Unknown engine: 400 naming the registered set, before any backend work.
	resp = postJSON(t, ts.URL+"/v2/predict/kernel", map[string]any{
		"op": "bmm", "b": 2, "m": 64, "k": 64, "n": 64, "gpu": "V100", "engine": "gamma",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine status = %d, want 400", resp.StatusCode)
	}
	e := decode[map[string]string](t, resp)
	if !strings.Contains(e["error"], "beta") {
		t.Errorf("error should list registered engines: %v", e)
	}
}

// TestHTTPV1StaysByteCompatible pins the /v1 contract: the engine field is
// ignored and the response carries exactly the v1 keys — no engine/source
// annotations leak in.
func TestHTTPV1StaysByteCompatible(t *testing.T) {
	ts := newMultiServer(t)
	resp := postJSON(t, ts.URL+"/v1/predict/kernel", map[string]any{
		"op": "bmm", "b": 2, "m": 64, "k": 64, "n": 64, "gpu": "V100", "engine": "beta",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"engine", "source", "utilization"} {
		if _, ok := raw[forbidden]; ok {
			t.Errorf("/v1 response leaked v2 field %q", forbidden)
		}
	}
	var lat float64
	if err := json.Unmarshal(raw["latency_ms"], &lat); err != nil {
		t.Fatal(err)
	}
	if lat != 1 {
		t.Errorf("/v1 latency = %v, want 1 (default engine; the engine field must be ignored)", lat)
	}
	want := []string{"kernel", "gpu", "latency_ms", "flops", "mem_bytes"}
	if len(raw) != len(want) {
		t.Errorf("/v1 response has %d fields, want exactly %d (%v)", len(raw), len(want), want)
	}
}

func TestHTTPV2BatchEngineSelection(t *testing.T) {
	ts := newMultiServer(t)
	resp := postJSON(t, ts.URL+"/v2/predict/batch", map[string]any{
		"gpu": "V100", "engine": "beta",
		"kernels": []map[string]any{
			{"op": "softmax", "b": 8, "m": 128},
			{"op": "bmm", "b": 1, "m": 32, "k": 32, "n": 32},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	br := decode[BatchResponseV2](t, resp)
	if br.Engine != "beta" || br.Count != 2 {
		t.Fatalf("batch v2 response = %+v", br)
	}
	for i, item := range br.Items {
		if item.Error != "" || item.LatencyMs != 2 {
			t.Errorf("item %d = %+v, want latency 2", i, item)
		}
	}
}

func TestHTTPV2GraphReport(t *testing.T) {
	// An engine that cannot model softmax: the graph forecast must still
	// answer, with the fallbacks surfaced in the report and warning.
	flaky := predict.NewFuncEngine("flaky", predict.SourceRegression,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) {
			if k.Category() == kernels.CatSoftmax {
				return 0, &kernelError{k.Label()}
			}
			return 1, nil
		})
	reg := predict.NewRegistry()
	reg.MustRegister(flaky)
	ts := httptest.NewServer(NewHandler(NewMulti(reg, "flaky", Config{CacheSize: 256})))
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v2/predict/graph", map[string]any{
		"workload": "BERT-Large", "gpu": "V100", "batch": 2, "engine": "flaky",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	gr := decode[GraphResponseV2](t, resp)
	if gr.Engine != "flaky" || gr.LatencyMs <= 0 {
		t.Fatalf("graph v2 response = %+v", gr)
	}
	if gr.Report.Fallbacks == 0 {
		t.Error("BERT has softmax kernels; the report must count fallbacks")
	}
	if gr.Report.Predicted == 0 || gr.Report.Kernels != gr.Report.Predicted+gr.Report.Fallbacks {
		t.Errorf("report inconsistent: %+v", gr.Report)
	}
	if gr.Warning == "" || !strings.Contains(gr.Warning, "fallback") {
		t.Errorf("fallbacks must surface a warning, got %q", gr.Warning)
	}
}

type kernelError struct{ label string }

func (e *kernelError) Error() string { return "no model for " + e.label }

func TestHTTPV2Engines(t *testing.T) {
	ts := newMultiServer(t)
	resp, err := http.Get(ts.URL + "/v2/engines")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	er := decode[EnginesResponse](t, resp)
	if er.Default != "alpha" || len(er.Engines) != 2 {
		t.Fatalf("engines response = %+v", er)
	}
	byName := map[string]EngineInfo{}
	for _, e := range er.Engines {
		byName[e.Name] = e
	}
	if !byName["alpha"].Default || byName["beta"].Default {
		t.Errorf("default flags wrong: %+v", er.Engines)
	}
}

func TestHTTPV2Stats(t *testing.T) {
	ts := newMultiServer(t)
	for _, eng := range []string{"", "beta"} {
		resp := postJSON(t, ts.URL+"/v2/predict/kernel", map[string]any{
			"op": "layernorm", "b": 16, "m": 256, "gpu": "V100", "engine": eng,
		})
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[StatsV2](t, resp)
	if st.Requests != 2 || len(st.Engines) != 2 {
		t.Fatalf("v2 stats = %+v, want 2 requests over 2 engines", st)
	}
	for _, e := range st.Engines {
		if e.Requests != 1 {
			t.Errorf("engine %s requests = %d, want 1", e.Engine, e.Requests)
		}
	}
}

// TestHTTPV2HealthzAlias: the health probe answers on both versions.
func TestHTTPV2HealthzAlias(t *testing.T) {
	ts := newMultiServer(t)
	for _, path := range []string{"/v1/healthz", "/v2/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		h := decode[map[string]string](t, resp)
		if h["status"] != "ok" || h["backend"] != "alpha" {
			t.Errorf("%s = %v", path, h)
		}
	}
}
