package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrSaturated is wrapped by prediction calls rejected by per-shard
// backpressure: the target shard already has its maximum number of
// requests in flight, so the request is refused immediately instead of
// queueing without bound. HTTP maps it to 503; clients should back off
// and retry.
var ErrSaturated = errors.New("serve: shard saturated")

// DefaultShardQueue bounds how many requests may be in flight on one
// shard (executing plus waiting on its worker pool or coalesced calls)
// before further arrivals are rejected with ErrSaturated. Large enough
// that only genuine overload trips it, small enough that overload is
// reported as backpressure rather than unbounded memory growth.
const DefaultShardQueue = 1024

// partition is one serving lock domain: the unit that owns a cache, an
// in-flight coalescing table, and a worker-pool semaphore. The service
// always speaks to exactly one partition per request; what varies is how
// partitions are provisioned:
//
//   - legacy (Config.Shards <= 1): one partition per engine, all sharing
//     the service-wide worker pool — the pre-sharding behavior;
//   - sharded: Config.Shards dedicated partitions, each with its own
//     pool, serving (engine, GPU) keys assigned by consistent hashing.
type partition struct {
	shard int // shard index; -1 for a legacy per-engine partition
	cache *lruCache
	sem   chan struct{}
	// maxInFlight is the saturation bound; 0 disables backpressure.
	maxInFlight int

	mu       sync.Mutex
	inflight map[string]*inflightCall

	requests  atomic.Uint64
	errors    atomic.Uint64
	coalesced atomic.Uint64
	rejected  atomic.Uint64
	inFlight  atomic.Int64
}

// newPartition returns a partition with its own cache, sharing sem as its
// worker pool.
func newPartition(shard, cacheSize int, sem chan struct{}, maxInFlight int) *partition {
	return &partition{
		shard:       shard,
		cache:       newLRUCache(cacheSize),
		sem:         sem,
		maxInFlight: maxInFlight,
		inflight:    map[string]*inflightCall{},
	}
}

// admit applies the shard's saturation bound, reserving an in-flight slot
// on success. Callers must release() the slot when the request completes.
// A partition without a bound always admits. The bound is exact under
// concurrency: the slot is taken first and handed back on rejection, so
// racing arrivals cannot all pass a stale load.
func (p *partition) admit() bool {
	n := p.inFlight.Add(1)
	if p.maxInFlight > 0 && n > int64(p.maxInFlight) {
		p.inFlight.Add(-1)
		p.rejected.Add(1)
		return false
	}
	return true
}

// release returns an in-flight slot reserved by admit.
func (p *partition) release() { p.inFlight.Add(-1) }

// ringReplicas is how many virtual points each shard contributes to the
// consistent-hash ring. More replicas smooth the key distribution across
// shards at the cost of a larger (still tiny) ring.
const ringReplicas = 64

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash uint64
	p    *partition
}

// shardRouter assigns (affinity, GPU) keys to a fixed set of shards by
// consistent hashing: every key hashes onto a ring of virtual shard
// points, and the first point at or clockwise of the key's hash owns it.
// Assignments are memoized per key; the memo doubles as the "which keys
// live where" table behind per-shard stats, and is rebuilt on rebalance so
// keys of unregistered engines drop out.
type shardRouter struct {
	shards []*partition
	points []ringPoint // sorted by hash

	// assign memoizes ring lookups as an immutable copy-on-write snapshot,
	// two-level (affinity, then GPU): the hot path is two map reads off an
	// atomic load — no lock, no composite-key allocation. wmu serializes
	// the (rare) snapshot writers: one per novel key per rebalance epoch.
	// epoch bumps on invalidate; a lookup that started before an
	// invalidate must not publish its (possibly unregistered) key into the
	// fresh memo, so writers re-check the epoch under wmu.
	assign atomic.Pointer[map[string]map[string]*partition]
	wmu    sync.Mutex
	epoch  atomic.Uint64
}

// newShardRouter builds n shards, each with cacheSize cache entries, a
// workers-slot pool, and a maxInFlight saturation bound (0 disables
// backpressure).
func newShardRouter(n, cacheSize, workers, maxInFlight int) *shardRouter {
	r := &shardRouter{
		shards: make([]*partition, n),
		points: make([]ringPoint, 0, n*ringReplicas),
	}
	empty := map[string]map[string]*partition{}
	r.assign.Store(&empty)
	for i := 0; i < n; i++ {
		r.shards[i] = newPartition(i, cacheSize, make(chan struct{}, workers), maxInFlight)
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d-%d", i, v)), p: r.shards[i]})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hash64 is the ring hash (FNV-1a: fast, dependency-free, well mixed for
// short routing keys).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// shardFor resolves the shard owning the (affinity, GPU) key, memoizing
// the ring lookup.
func (r *shardRouter) shardFor(affinity, gpuName string) *partition {
	epoch := r.epoch.Load()
	if p := (*r.assign.Load())[affinity][gpuName]; p != nil {
		return p
	}
	h := hash64(affinity + "|" + gpuName)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	p := r.points[i].p

	// Publish a new snapshot with the assignment added — unless an
	// invalidate ran since this lookup started, in which case the key may
	// belong to an engine that just unregistered: route the request (p is
	// still correct by the ring) but leave the fresh memo clean. The clone
	// is a handful of engines x GPUs and runs once per novel key per epoch.
	r.wmu.Lock()
	if r.epoch.Load() == epoch {
		cur := *r.assign.Load()
		next := make(map[string]map[string]*partition, len(cur)+1)
		for aff, byGPU := range cur {
			next[aff] = byGPU
		}
		byGPU := make(map[string]*partition, len(cur[affinity])+1)
		for g, sp := range cur[affinity] {
			byGPU[g] = sp
		}
		byGPU[gpuName] = p
		next[affinity] = byGPU
		r.assign.Store(&next)
	}
	r.wmu.Unlock()
	return p
}

// invalidate drops the assignment memo. Ring lookups are deterministic,
// so routing is unchanged; what the rebuild achieves is forgetting keys
// of engines that unregistered, so stats and key counts stay honest.
func (r *shardRouter) invalidate() {
	r.wmu.Lock()
	r.epoch.Add(1)
	empty := map[string]map[string]*partition{}
	r.assign.Store(&empty)
	r.wmu.Unlock()
}

// keyCounts returns how many memoized (engine, GPU) keys each shard
// currently owns, indexed by shard id.
func (r *shardRouter) keyCounts() []int {
	counts := make([]int, len(r.shards))
	for _, byGPU := range *r.assign.Load() {
		for _, p := range byGPU {
			counts[p.shard]++
		}
	}
	return counts
}

// ShardStats is one shard's slice of the counters, exposed in the
// "shards" section of /v2/stats and as shard-labeled Prometheus series.
type ShardStats struct {
	Shard       int     `json:"shard"`
	Keys        int     `json:"keys"` // (engine, GPU) keys routed here so far
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Coalesced   uint64  `json:"coalesced"`
	Rejected    uint64  `json:"rejected"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	CacheLen    int     `json:"cache_len"`
	HitRate     float64 `json:"hit_rate"`
	InFlight    int64   `json:"in_flight"`
}

// Shards returns per-shard counters, one entry per shard in id order, or
// nil when the service runs unsharded.
func (s *Service) Shards() []ShardStats {
	if s.router == nil {
		return nil
	}
	keys := s.router.keyCounts()
	out := make([]ShardStats, len(s.router.shards))
	for i, p := range s.router.shards {
		hits, misses := p.cache.Counters()
		st := ShardStats{
			Shard:       p.shard,
			Keys:        keys[i],
			Requests:    p.requests.Load(),
			Errors:      p.errors.Load(),
			Coalesced:   p.coalesced.Load(),
			Rejected:    p.rejected.Load(),
			CacheHits:   hits,
			CacheMisses: misses,
			CacheLen:    p.cache.Len(),
			InFlight:    p.inFlight.Load(),
		}
		if total := hits + misses; total > 0 {
			st.HitRate = float64(hits) / float64(total)
		}
		out[i] = st
	}
	return out
}

// NumShards returns how many shards the service routes across (1 when
// unsharded: the legacy per-engine layout is a single lock domain per
// engine, not a shard set).
func (s *Service) NumShards() int {
	if s.router == nil {
		return 1
	}
	return len(s.router.shards)
}

// Rebalance reconciles the service's routing state with the current
// registry: partitions of engines that unregistered (or were replaced by
// a new instance under the same name) are dropped, their cached forecasts
// evicted from every shard, and the shard assignment memo rebuilt. It
// runs automatically when the registry version drifts from the one the
// service last observed — explicit calls are only needed by callers that
// want eviction to happen eagerly rather than on the next request.
func (s *Service) Rebalance() {
	// Record the version first: a registration racing this rebalance
	// bumps the version after our read and triggers another pass, rather
	// than being masked by a later read.
	v := s.reg.Version()
	s.regVersion.Store(v)

	var stale []*engineState
	s.emu.Lock()
	for name, es := range s.engines {
		cur, err := s.reg.Get(name)
		if err != nil || cur != es.eng {
			// Unsharded: the stale engine owns its partition outright — the
			// whole cache is reclaimed with it, no prefix scan needed. Fold
			// its counter history into the retired accumulators *before*
			// the state leaves the map, so a concurrent Stats() never
			// observes the partition gone but its history not yet retired
			// (the aggregate counters are Prometheus-monotonic).
			if s.router == nil {
				h, m := es.part.cache.Counters()
				s.retiredHits.Add(h)
				s.retiredMisses.Add(m)
			}
			delete(s.engines, name)
			stale = append(stale, es)
		}
	}
	s.emu.Unlock()

	if len(stale) == 0 || s.router == nil {
		return
	}
	// Sharded: caches are shared across engines, so evict each stale
	// engine's key slice from every shard. Shard cache counters live on
	// the stable shard set and need no retirement.
	for _, es := range stale {
		for _, p := range s.router.shards {
			p.cache.DropPrefix(es.prefix)
		}
	}
	s.router.invalidate()
}

// maybeRebalance triggers a rebalance when engines have registered or
// unregistered since the last one. The steady-state cost is one atomic
// load per request.
func (s *Service) maybeRebalance() {
	if s.regVersion.Load() != s.reg.Version() {
		s.Rebalance()
	}
}
