package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/models"
)

// KernelRequest is the JSON body of POST /v1/predict/kernel. Dimension
// semantics follow the kernel constructors:
//
//	bmm:        B batches of (M x K) @ (K x N)
//	linear:     M rows through K inputs -> N outputs
//	ew_*:       B rows x M cols elementwise (ew_add, ew_mul, ew_div,
//	            ew_relu, ew_gelu, ew_tanh)
//	softmax:    B independent vectors of length M
//	layernorm:  B vectors of length M
//	embedding:  B tokens of width M gathered from a K-row table
type KernelRequest struct {
	Op    string `json:"op"`
	B     int    `json:"b"`
	M     int    `json:"m"`
	K     int    `json:"k"`
	N     int    `json:"n"`
	DType string `json:"dtype"` // "fp32" (default) or "fp16"
	GPU   string `json:"gpu"`
}

// KernelResponse is the JSON reply of /v1/predict/kernel.
type KernelResponse struct {
	Kernel    string  `json:"kernel"`
	GPU       string  `json:"gpu"`
	LatencyMs float64 `json:"latency_ms"`
	FLOPs     float64 `json:"flops"`
	MemBytes  float64 `json:"mem_bytes"`
}

// BatchRequest is the JSON body of POST /v1/predict/batch: forecast many
// kernels on one GPU in a single round trip. Misses are deduplicated and
// evaluated in one batched forward pass; hits come straight from the cache.
type BatchRequest struct {
	GPU     string          `json:"gpu"`
	Kernels []KernelRequest `json:"kernels"` // per-item GPU fields are ignored
}

// BatchItem is one per-kernel result inside a BatchResponse. Exactly one of
// Error or a valid LatencyMs is meaningful: a malformed or unpredictable
// item reports its error in place without failing the rest of the batch.
type BatchItem struct {
	Kernel    string  `json:"kernel,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
	Error     string  `json:"error,omitempty"`
}

// BatchResponse is the JSON reply of /v1/predict/batch. Items are
// positional: Items[i] answers Kernels[i] of the request.
type BatchResponse struct {
	GPU   string      `json:"gpu"`
	Count int         `json:"count"`
	Items []BatchItem `json:"items"`
}

// GraphRequest is the JSON body of POST /v1/predict/graph: forecast a
// registered workload end to end.
type GraphRequest struct {
	Workload string `json:"workload"`
	GPU      string `json:"gpu"`
	Batch    int    `json:"batch"`
	Training bool   `json:"training"`
	Fused    bool   `json:"fused"`
}

// GraphResponse is the JSON reply of /v1/predict/graph.
type GraphResponse struct {
	Workload   string  `json:"workload"`
	GPU        string  `json:"gpu"`
	Batch      int     `json:"batch"`
	Training   bool    `json:"training"`
	Fused      bool    `json:"fused"`
	Kernels    int     `json:"kernels"`
	TotalFLOPs float64 `json:"total_flops"`
	LatencyMs  float64 `json:"latency_ms"`
	FitsMemory bool    `json:"fits_memory"`
}

// opsByName maps API operator names to ops the kernel endpoint can build.
// Network collectives are deliberately absent: they are priced by the
// distributed layer, not the kernel predictor.
var opsByName = map[string]kernels.Op{
	"bmm":       kernels.OpBMM,
	"linear":    kernels.OpLinear,
	"ew_add":    kernels.OpEWAdd,
	"ew_mul":    kernels.OpEWMul,
	"ew_div":    kernels.OpEWDiv,
	"ew_relu":   kernels.OpEWReLU,
	"ew_gelu":   kernels.OpEWGELU,
	"ew_tanh":   kernels.OpEWTanh,
	"softmax":   kernels.OpSoftmax,
	"layernorm": kernels.OpLayerNorm,
	"embedding": kernels.OpEmbedding,
}

// buildKernel validates a KernelRequest and constructs the kernel.
func buildKernel(req KernelRequest) (kernels.Kernel, error) {
	op, ok := opsByName[req.Op]
	if !ok {
		return kernels.Kernel{}, fmt.Errorf("unknown op %q", req.Op)
	}
	var k kernels.Kernel
	switch op {
	case kernels.OpBMM:
		if err := positive("bmm", req.B, req.M, req.K, req.N); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewBMM(req.B, req.M, req.K, req.N)
	case kernels.OpLinear:
		if err := positive("linear", req.M, req.K, req.N); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewLinear(req.M, req.K, req.N)
	case kernels.OpSoftmax:
		if err := positive("softmax", req.B, req.M); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewSoftmax(req.B, req.M)
	case kernels.OpLayerNorm:
		if err := positive("layernorm", req.B, req.M); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewLayerNorm(req.B, req.M)
	case kernels.OpEmbedding:
		if err := positive("embedding", req.B, req.M, req.K); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewEmbedding(req.B, req.M, req.K)
	default: // elementwise family
		if err := positive(req.Op, req.B, req.M); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewElementwise(op, req.B, req.M)
	}
	switch req.DType {
	case "", "fp32":
	case "fp16":
		k = k.WithDType(kernels.FP16)
	default:
		return kernels.Kernel{}, fmt.Errorf("unknown dtype %q (want fp32 or fp16)", req.DType)
	}
	return k, nil
}

// maxDim bounds each requested kernel dimension. It is far beyond any real
// DNN operator, yet small enough that every downstream int product (tile
// counts over three output dims, token counts) stays well inside 64 bits
// instead of overflowing into panics or garbage latencies.
const maxDim = 1 << 20

func positive(op string, dims ...int) error {
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("%s requires positive dimensions, got %v", op, dims)
		}
		if d > maxDim {
			return fmt.Errorf("%s dimension %d exceeds the %d limit", op, d, maxDim)
		}
	}
	return nil
}

// maxBodyBytes caps every request body: the largest legitimate payload (a
// full-size batch of kernel specs) is well under a megabyte, so anything
// bigger is rejected before it is buffered.
const maxBodyBytes = 1 << 20

// MaxBatchKernels bounds one /v1/predict/batch request. A batch holds a
// worker-pool slot for its whole backend round, so an unbounded batch could
// starve every other request; the cap comfortably covers the largest
// registered workload graph.
const MaxBatchKernels = 4096

// MaxGraphBatch bounds /v1/predict/graph batch sizes: graph construction
// multiplies batch into token and attention-row counts as ints, so an
// absurd batch would overflow before physics had a chance to object.
const MaxGraphBatch = 1 << 16

// decodeBody decodes a size-limited JSON request body into v. On failure it
// writes the error response itself — 413 with the limit when the body blew
// the size cap (so clients know to split, not to fix their JSON), 400
// otherwise — and reports false.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit; split the request", maxBodyBytes))
		return false
	}
	writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
	return false
}

// NewHandler returns the HTTP API for s:
//
//	POST /v1/predict/kernel  — one kernel forecast (KernelRequest)
//	POST /v1/predict/batch   — many kernels, one batched forecast (BatchRequest)
//	POST /v1/predict/graph   — end-to-end workload forecast (GraphRequest)
//	GET  /v1/healthz         — liveness probe
//	GET  /v1/stats           — cache hit rate, latency percentiles, counters
//	GET  /metrics            — the same counters in Prometheus text format
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req BatchRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if len(req.Kernels) == 0 {
			writeError(w, http.StatusBadRequest, "empty batch: provide at least one kernel")
			return
		}
		if len(req.Kernels) > MaxBatchKernels {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds the %d-kernel limit; split the request", len(req.Kernels), MaxBatchKernels))
			return
		}
		g, err := gpu.Lookup(req.GPU)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		items := make([]BatchItem, len(req.Kernels))
		// Build what parses; malformed items fail in place so one bad
		// entry cannot poison the rest of the batch.
		ks := make([]kernels.Kernel, 0, len(req.Kernels))
		pos := make([]int, 0, len(req.Kernels)) // batch position -> item index
		for i, kr := range req.Kernels {
			k, err := buildKernel(kr)
			if err != nil {
				items[i].Error = err.Error()
				continue
			}
			items[i].Kernel = k.Label()
			ks = append(ks, k)
			pos = append(pos, i)
		}
		lats, errs := s.PredictBatch(ks, g)
		for j, i := range pos {
			if errs[j] != nil {
				items[i].Error = errs[j].Error()
				continue
			}
			items[i].LatencyMs = lats[j]
		}
		writeJSON(w, http.StatusOK, BatchResponse{GPU: g.Name, Count: len(items), Items: items})
	})
	mux.HandleFunc("/v1/predict/kernel", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req KernelRequest
		if !decodeBody(w, r, &req) {
			return
		}
		k, err := buildKernel(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		g, err := gpu.Lookup(req.GPU)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		lat, err := s.PredictKernel(k, g)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, KernelResponse{
			Kernel: k.Label(), GPU: g.Name, LatencyMs: lat,
			FLOPs: k.FLOPs(), MemBytes: k.MemBytes(),
		})
	})
	mux.HandleFunc("/v1/predict/graph", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req GraphRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if req.Batch <= 0 {
			req.Batch = 1
		}
		if req.Batch > MaxGraphBatch {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch %d exceeds the %d limit", req.Batch, MaxGraphBatch))
			return
		}
		m, err := models.Lookup(req.Workload)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		g, err := gpu.Lookup(req.GPU)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		var gr *graph.Graph
		if req.Training {
			gr = m.TrainingGraph(req.Batch)
		} else {
			gr = m.InferenceGraph(req.Batch)
		}
		if req.Fused {
			gr = graph.Fuse(gr)
		}
		lat := s.PredictGraph(gr, g)
		writeJSON(w, http.StatusOK, GraphResponse{
			Workload: m.Name, GPU: g.Name, Batch: req.Batch,
			Training: req.Training, Fused: req.Fused,
			Kernels: len(gr.Nodes), TotalFLOPs: gr.TotalFLOPs(), LatencyMs: lat,
			FitsMemory: m.FitsInMemory(req.Batch, g, req.Training),
		})
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "backend": s.Backend()})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/metrics", metricsHandler(s))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
