package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"neusight/internal/core"
	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/models"
	"neusight/internal/observe"
	"neusight/internal/plan"
	"neusight/internal/predict"
)

// KernelRequest is the JSON body of POST /v1/predict/kernel. Dimension
// semantics follow the kernel constructors:
//
//	bmm:        B batches of (M x K) @ (K x N)
//	linear:     M rows through K inputs -> N outputs
//	ew_*:       B rows x M cols elementwise (ew_add, ew_mul, ew_div,
//	            ew_relu, ew_gelu, ew_tanh)
//	softmax:    B independent vectors of length M
//	layernorm:  B vectors of length M
//	embedding:  B tokens of width M gathered from a K-row table
type KernelRequest struct {
	Op    string `json:"op"`
	B     int    `json:"b"`
	M     int    `json:"m"`
	K     int    `json:"k"`
	N     int    `json:"n"`
	DType string `json:"dtype"` // "fp32" (default) or "fp16"
	GPU   string `json:"gpu"`
}

// KernelResponse is the JSON reply of /v1/predict/kernel.
type KernelResponse struct {
	Kernel    string  `json:"kernel"`
	GPU       string  `json:"gpu"`
	LatencyMs float64 `json:"latency_ms"`
	FLOPs     float64 `json:"flops"`
	MemBytes  float64 `json:"mem_bytes"`
}

// BatchRequest is the JSON body of POST /v1/predict/batch: forecast many
// kernels on one GPU in a single round trip. Misses are deduplicated and
// evaluated in one batched forward pass; hits come straight from the cache.
type BatchRequest struct {
	GPU     string          `json:"gpu"`
	Kernels []KernelRequest `json:"kernels"` // per-item GPU fields are ignored
}

// BatchItem is one per-kernel result inside a BatchResponse. Exactly one of
// Error or a valid LatencyMs is meaningful: a malformed or unpredictable
// item reports its error in place without failing the rest of the batch.
type BatchItem struct {
	Kernel    string  `json:"kernel,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
	Error     string  `json:"error,omitempty"`
}

// BatchResponse is the JSON reply of /v1/predict/batch. Items are
// positional: Items[i] answers Kernels[i] of the request.
type BatchResponse struct {
	GPU   string      `json:"gpu"`
	Count int         `json:"count"`
	Items []BatchItem `json:"items"`
}

// GraphRequest is the JSON body of POST /v1/predict/graph: forecast a
// registered workload end to end.
type GraphRequest struct {
	Workload string `json:"workload"`
	GPU      string `json:"gpu"`
	Batch    int    `json:"batch"`
	Training bool   `json:"training"`
	Fused    bool   `json:"fused"`
}

// GraphResponse is the JSON reply of /v1/predict/graph.
type GraphResponse struct {
	Workload   string  `json:"workload"`
	GPU        string  `json:"gpu"`
	Batch      int     `json:"batch"`
	Training   bool    `json:"training"`
	Fused      bool    `json:"fused"`
	Kernels    int     `json:"kernels"`
	TotalFLOPs float64 `json:"total_flops"`
	LatencyMs  float64 `json:"latency_ms"`
	FitsMemory bool    `json:"fits_memory"`
}

// opsByName maps API operator names to ops the kernel endpoint can build.
// Network collectives are deliberately absent: they are priced by the
// distributed layer, not the kernel predictor.
var opsByName = map[string]kernels.Op{
	"bmm":       kernels.OpBMM,
	"linear":    kernels.OpLinear,
	"ew_add":    kernels.OpEWAdd,
	"ew_mul":    kernels.OpEWMul,
	"ew_div":    kernels.OpEWDiv,
	"ew_relu":   kernels.OpEWReLU,
	"ew_gelu":   kernels.OpEWGELU,
	"ew_tanh":   kernels.OpEWTanh,
	"softmax":   kernels.OpSoftmax,
	"layernorm": kernels.OpLayerNorm,
	"embedding": kernels.OpEmbedding,
}

// buildKernel validates a KernelRequest and constructs the kernel.
func buildKernel(req KernelRequest) (kernels.Kernel, error) {
	op, ok := opsByName[req.Op]
	if !ok {
		return kernels.Kernel{}, fmt.Errorf("unknown op %q", req.Op)
	}
	var k kernels.Kernel
	switch op {
	case kernels.OpBMM:
		if err := positive("bmm", req.B, req.M, req.K, req.N); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewBMM(req.B, req.M, req.K, req.N)
	case kernels.OpLinear:
		if err := positive("linear", req.M, req.K, req.N); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewLinear(req.M, req.K, req.N)
	case kernels.OpSoftmax:
		if err := positive("softmax", req.B, req.M); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewSoftmax(req.B, req.M)
	case kernels.OpLayerNorm:
		if err := positive("layernorm", req.B, req.M); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewLayerNorm(req.B, req.M)
	case kernels.OpEmbedding:
		if err := positive("embedding", req.B, req.M, req.K); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewEmbedding(req.B, req.M, req.K)
	default: // elementwise family
		if err := positive(req.Op, req.B, req.M); err != nil {
			return kernels.Kernel{}, err
		}
		k = kernels.NewElementwise(op, req.B, req.M)
	}
	switch req.DType {
	case "", "fp32":
	case "fp16":
		k = k.WithDType(kernels.FP16)
	default:
		return kernels.Kernel{}, fmt.Errorf("unknown dtype %q (want fp32 or fp16)", req.DType)
	}
	return k, nil
}

// maxDim bounds each requested kernel dimension. It is far beyond any real
// DNN operator, yet small enough that every downstream int product (tile
// counts over three output dims, token counts) stays well inside 64 bits
// instead of overflowing into panics or garbage latencies.
const maxDim = 1 << 20

func positive(op string, dims ...int) error {
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("%s requires positive dimensions, got %v", op, dims)
		}
		if d > maxDim {
			return fmt.Errorf("%s dimension %d exceeds the %d limit", op, d, maxDim)
		}
	}
	return nil
}

// maxBodyBytes caps every request body: the largest legitimate payload (a
// full-size batch of kernel specs) is well under a megabyte, so anything
// bigger is rejected before it is buffered.
const maxBodyBytes = 1 << 20

// MaxBatchKernels bounds one /v1/predict/batch request. A batch holds a
// worker-pool slot for its whole backend round, so an unbounded batch could
// starve every other request; the cap comfortably covers the largest
// registered workload graph.
const MaxBatchKernels = 4096

// MaxGraphBatch bounds /v1/predict/graph batch sizes: graph construction
// multiplies batch into token and attention-row counts as ints, so an
// absurd batch would overflow before physics had a chance to object.
const MaxGraphBatch = 1 << 16

// decodeBody decodes a size-limited JSON request body into v. On failure it
// writes the error response itself — 413 with the limit when the body blew
// the size cap (so clients know to split, not to fix their JSON), 400
// otherwise — and reports false.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit; split the request", maxBodyBytes))
		return false
	}
	writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
	return false
}

// KernelRequestV2 is the JSON body of POST /v2/predict/kernel: a
// KernelRequest plus the engine to route to ("" selects the default).
type KernelRequestV2 struct {
	KernelRequest
	Engine string `json:"engine"`
}

// KernelResponseV2 is the JSON reply of /v2/predict/kernel: the v1 fields
// plus the engine that answered, how it derived the forecast, and the
// utilization behind it (0 when the engine models none).
type KernelResponseV2 struct {
	KernelResponse
	Engine      string  `json:"engine"`
	Source      string  `json:"source"`
	Utilization float64 `json:"utilization"`
}

// BatchRequestV2 is the JSON body of POST /v2/predict/batch.
type BatchRequestV2 struct {
	BatchRequest
	Engine string `json:"engine"`
}

// BatchResponseV2 is the JSON reply of /v2/predict/batch.
type BatchResponseV2 struct {
	BatchResponse
	Engine string `json:"engine"`
}

// GraphRequestV2 is the JSON body of POST /v2/predict/graph.
type GraphRequestV2 struct {
	GraphRequest
	Engine string `json:"engine"`
}

// GraphResponseV2 is the JSON reply of /v2/predict/graph: the v1 fields
// plus the engine and a report of how the forecast was assembled. When any
// kernel fell back to the memory-bound estimate, Warning carries the
// aggregate error — the forecast is still returned, but its degraded
// provenance is no longer silent.
type GraphResponseV2 struct {
	GraphResponse
	Engine  string           `json:"engine"`
	Report  core.GraphReport `json:"report"`
	Warning string           `json:"warning,omitempty"`
}

// EngineInfo describes one registered engine on GET /v2/engines.
type EngineInfo struct {
	Name        string `json:"name"`
	Default     bool   `json:"default"`
	NativeBatch bool   `json:"native_batch"`
	Generation  uint64 `json:"generation"`
	Source      string `json:"source,omitempty"`
	Trainable   bool   `json:"trainable,omitempty"`
	Description string `json:"description,omitempty"`
}

// EnginesResponse is the JSON reply of GET /v2/engines.
type EnginesResponse struct {
	Default string       `json:"default"`
	Engines []EngineInfo `json:"engines"`
}

// StatsV2 is the JSON reply of GET /v2/stats: the aggregate counters plus
// one entry per engine traffic has touched, one entry per shard when the
// service is sharded, the last cache-warmup report when one ran, and the
// trace-compaction state when a compacting recorder is attached.
type StatsV2 struct {
	Stats
	Engines         []EngineStats    `json:"engines"`
	Shards          []ShardStats     `json:"shards,omitempty"`
	Warmup          *WarmupStats     `json:"warmup,omitempty"`
	TraceCompaction *TraceCompaction `json:"trace_compaction,omitempty"`
	Observe         *observe.Report  `json:"observe,omitempty"`
	Plan            *plan.Stats      `json:"plan,omitempty"`
}

// predictErrorCode classifies a Predict*Engine error for HTTP: naming an
// unregistered engine is a client error (400, the message lists the
// registered set); a saturated shard is backpressure (503 — retry after
// backing off); anything else is an unpredictable request (422).
func predictErrorCode(err error) int {
	if errors.Is(err, predict.ErrUnknownEngine) {
		return http.StatusBadRequest
	}
	if errors.Is(err, ErrSaturated) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// handleKernel serves the kernel endpoint for both API versions: v1 pins
// the default engine and answers with the v1 response shape; v2 routes by
// the request's engine field and annotates the reply.
func handleKernel(s *Service, v2 bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req KernelRequestV2
		if !decodeBody(w, r, &req) {
			return
		}
		if !v2 {
			req.Engine = ""
		}
		k, err := buildKernel(req.KernelRequest)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		g, err := gpu.Lookup(req.GPU)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		res, err := s.PredictKernelEngine(r.Context(), req.Engine, k, g)
		if err != nil {
			writeError(w, predictErrorCode(err), err.Error())
			return
		}
		v1 := KernelResponse{
			Kernel: k.Label(), GPU: g.Name, LatencyMs: res.Latency,
			FLOPs: k.FLOPs(), MemBytes: k.MemBytes(),
		}
		if !v2 {
			writeJSON(w, http.StatusOK, v1)
			return
		}
		writeJSON(w, http.StatusOK, KernelResponseV2{
			KernelResponse: v1,
			Engine:         res.Engine,
			Source:         res.Source,
			Utilization:    res.Utilization,
		})
	}
}

// handleBatch serves the batch endpoint for both API versions.
func handleBatch(s *Service, v2 bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req BatchRequestV2
		if !decodeBody(w, r, &req) {
			return
		}
		if !v2 {
			req.Engine = ""
		}
		if len(req.Kernels) == 0 {
			writeError(w, http.StatusBadRequest, "empty batch: provide at least one kernel")
			return
		}
		if len(req.Kernels) > MaxBatchKernels {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds the %d-kernel limit; split the request", len(req.Kernels), MaxBatchKernels))
			return
		}
		g, err := gpu.Lookup(req.GPU)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		items := make([]BatchItem, len(req.Kernels))
		// Build what parses; malformed items fail in place so one bad
		// entry cannot poison the rest of the batch.
		ks := make([]kernels.Kernel, 0, len(req.Kernels))
		pos := make([]int, 0, len(req.Kernels)) // batch position -> item index
		for i, kr := range req.Kernels {
			k, err := buildKernel(kr)
			if err != nil {
				items[i].Error = err.Error()
				continue
			}
			items[i].Kernel = k.Label()
			ks = append(ks, k)
			pos = append(pos, i)
		}
		outs, err := s.PredictBatchEngine(r.Context(), req.Engine, ks, g)
		if err != nil {
			writeError(w, predictErrorCode(err), err.Error())
			return
		}
		for j, i := range pos {
			if outs[j].Err != nil {
				items[i].Error = outs[j].Err.Error()
				continue
			}
			items[i].LatencyMs = outs[j].Result.Latency
		}
		v1 := BatchResponse{GPU: g.Name, Count: len(items), Items: items}
		if !v2 {
			writeJSON(w, http.StatusOK, v1)
			return
		}
		writeJSON(w, http.StatusOK, BatchResponseV2{BatchResponse: v1, Engine: requestedEngine(s, req.Engine)})
	}
}

// requestedEngine resolves the engine name a response should echo: the
// explicitly requested one, else the service default.
func requestedEngine(s *Service, name string) string {
	if name == "" {
		return s.DefaultEngine()
	}
	return name
}

// handleGraph serves the graph endpoint for both API versions.
func handleGraph(s *Service, v2 bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req GraphRequestV2
		if !decodeBody(w, r, &req) {
			return
		}
		if !v2 {
			req.Engine = ""
		}
		if req.Batch <= 0 {
			req.Batch = 1
		}
		if req.Batch > MaxGraphBatch {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch %d exceeds the %d limit", req.Batch, MaxGraphBatch))
			return
		}
		m, err := models.Lookup(req.Workload)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		g, err := gpu.Lookup(req.GPU)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		var gr *graph.Graph
		if req.Training {
			gr = m.TrainingGraph(req.Batch)
		} else {
			gr = m.InferenceGraph(req.Batch)
		}
		if req.Fused {
			gr = graph.Fuse(gr)
		}
		lat, rep, gerr := s.PredictGraphEngine(r.Context(), req.Engine, gr, g)
		// An unknown engine, a saturated shard, or a cancellation abort is
		// a failed forecast, not a degraded one: the fold never ran (or
		// stopped), so the total must not be served as an answer. Fallback
		// aggregation errors fall through and surface as the v2 warning
		// instead.
		if gerr != nil && (errors.Is(gerr, predict.ErrUnknownEngine) || errors.Is(gerr, ErrSaturated) ||
			errors.Is(gerr, context.Canceled) || errors.Is(gerr, context.DeadlineExceeded)) {
			writeError(w, predictErrorCode(gerr), gerr.Error())
			return
		}
		v1 := GraphResponse{
			Workload: m.Name, GPU: g.Name, Batch: req.Batch,
			Training: req.Training, Fused: req.Fused,
			Kernels: len(gr.Nodes), TotalFLOPs: gr.TotalFLOPs(), LatencyMs: lat,
			FitsMemory: m.FitsInMemory(req.Batch, g, req.Training),
		}
		if !v2 {
			writeJSON(w, http.StatusOK, v1)
			return
		}
		resp := GraphResponseV2{GraphResponse: v1, Engine: requestedEngine(s, req.Engine), Report: rep}
		if gerr != nil {
			resp.Warning = gerr.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleEngines serves GET /v2/engines: the registered engine set with
// routing metadata, cross-referenced against the standard-catalog
// descriptions when names match.
func handleEngines(s *Service) http.HandlerFunc {
	catalog := map[string]predict.Info{}
	for _, info := range predict.Catalog() {
		catalog[info.Name] = info
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		resp := EnginesResponse{Default: s.DefaultEngine()}
		for _, name := range s.Registry().List() {
			eng, err := s.Registry().Get(name)
			if err != nil {
				continue // racing deregistration: not supported, but harmless
			}
			info := EngineInfo{
				Name:        name,
				Default:     name == s.DefaultEngine(),
				NativeBatch: predict.NativeBatch(eng),
				Generation:  predict.Generation(eng),
			}
			if c, ok := catalog[name]; ok {
				info.Source = c.Source
				info.Trainable = c.Trainable
				info.Description = c.Description
			}
			resp.Engines = append(resp.Engines, info)
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// NewHandler returns the HTTP API for s.
//
// The versioned prediction API: /v2 routes per request via the "engine"
// field (default engine when absent) and annotates responses with engine,
// source, utilization, and graph assembly reports; /v1 remains a stable
// alias for the default engine with the original response shapes.
//
//	POST /v2/predict/kernel  — one kernel forecast (KernelRequestV2)
//	POST /v2/predict/batch   — many kernels, one batched forecast (BatchRequestV2)
//	POST /v2/predict/graph   — end-to-end workload forecast (GraphRequestV2)
//	POST /v2/observe         — measured kernel latencies for drift detection (ObserveRequest)
//	POST /v2/plan            — submit a what-if sweep as an async job (plan.Spec); GET lists jobs
//	GET  /v2/plan/{id}       — poll a job's status and ranking; POST resumes, DELETE cancels
//	GET  /v2/engines         — the registered engine set and default
//	GET  /v2/stats           — aggregate, per-engine, per-shard, warmup, drift, and plan counters
//	POST /v1/predict/kernel|batch|graph — v1-shaped aliases, default engine
//	GET  /v1/healthz         — liveness probe (also /v2/healthz)
//	GET  /v1/stats           — aggregate counters only
//	GET  /metrics            — Prometheus text format, engine-labeled series included
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict/kernel", handleKernel(s, false))
	mux.HandleFunc("/v1/predict/batch", handleBatch(s, false))
	mux.HandleFunc("/v1/predict/graph", handleGraph(s, false))
	mux.HandleFunc("/v2/predict/kernel", handleKernel(s, true))
	mux.HandleFunc("/v2/predict/batch", handleBatch(s, true))
	mux.HandleFunc("/v2/predict/graph", handleGraph(s, true))
	mux.HandleFunc("/v2/observe", handleObserve(s))
	mux.HandleFunc("/v2/plan", handlePlan(s))
	mux.HandleFunc("/v2/plan/", handlePlanID(s))
	mux.HandleFunc("/v2/engines", handleEngines(s))
	mux.HandleFunc("/v2/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsV2{
			Stats:           s.Stats(),
			Engines:         s.EngineStats(),
			Shards:          s.Shards(),
			Warmup:          s.Warmup(),
			TraceCompaction: s.TraceCompaction(),
			Observe:         s.ObserveReport(),
			Plan:            s.PlanStats(),
		})
	})
	healthz := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "backend": s.Backend()})
	}
	mux.HandleFunc("/v1/healthz", healthz)
	mux.HandleFunc("/v2/healthz", healthz)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/metrics", metricsHandler(s))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
