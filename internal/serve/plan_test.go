package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neusight/internal/plan"
	"neusight/internal/predict"
)

// planService builds a service with the roofline engine and an in-memory
// planner attached — the wiring cmd/neusight does.
func planService(t *testing.T) *Service {
	t.Helper()
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewRooflineEngine())
	svc := NewMulti(reg, predict.EngineRoofline, Config{CacheSize: 64})
	m, err := plan.NewManager("", func(name string) (predict.Engine, error) {
		if name == "" {
			name = predict.EngineRoofline
		}
		return reg.Get(name)
	}, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetPlanner(m)
	return svc
}

func planSpecJSON() []byte {
	return []byte(`{"model":"BERT-Large","gpus":["T4"],"strategies":["dp"],"fleet_sizes":[1,2]}`)
}

func TestPlanRoutesWithoutPlanner(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewRooflineEngine())
	svc := NewMulti(reg, predict.EngineRoofline, Config{CacheSize: 64})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	for _, path := range []string{"/v2/plan", "/v2/plan/abc"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s without a planner = %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestPlanSubmitPollCancelResume(t *testing.T) {
	svc := planService(t)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Bad spec: 400 with the validation error.
	resp, err := http.Post(srv.URL+"/v2/plan", "application/json", strings.NewReader(`{"model":"nope","gpus":["T4"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", resp.StatusCode)
	}

	// Submit: 202 with the job's birth status.
	resp, err = http.Post(srv.URL+"/v2/plan", "application/json", bytes.NewReader(planSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	var st plan.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || st.Total != 2 {
		t.Fatalf("submit = %d %+v, want 202 with a 2-cell job", resp.StatusCode, st)
	}

	// Poll until done.
	deadline := time.Now().Add(30 * time.Second)
	for st.State == plan.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(srv.URL + "/v2/plan/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st.State != plan.StateDone || st.Evaluated != 2 || len(st.Ranking) != 2 {
		t.Fatalf("final %+v, want done with both cells ranked", st)
	}

	// The list shows the job without rankings.
	resp, err = http.Get(srv.URL + "/v2/plan")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []plan.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID || list.Jobs[0].Ranking != nil {
		t.Fatalf("list = %+v, want the one job, no ranking", list.Jobs)
	}

	// Cancel of a done job is a no-op 200; resume of a done job conflicts.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v2/plan/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel done job = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v2/plan/"+st.ID, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume done job = %d, want 409", resp.StatusCode)
	}

	// Unknown ids are 404, nested paths too.
	for _, path := range []string{"/v2/plan/nope", "/v2/plan/a/b"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// The stats and metrics surfaces expose the planner section.
	resp, err = http.Get(srv.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var v2 StatsV2
	if err := json.NewDecoder(resp.Body).Decode(&v2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v2.Plan == nil || v2.Plan.Completed != 1 || v2.Plan.ConfigsEvaluated != 2 {
		t.Fatalf("/v2/stats plan section %+v, want 1 completed job, 2 cells", v2.Plan)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(body.String(), "neusight_plan_jobs_completed_total 1") {
		t.Fatalf("/metrics missing planner families:\n%s", body.String())
	}
}
