package serve

import (
	"fmt"
	"io"
	"net/http"

	"neusight/internal/observe"
	"neusight/internal/plan"
)

// MetricsContentType is the Prometheus text exposition content type served
// on /metrics.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promMetric is one exported sample: HELP/TYPE metadata plus a value.
type promMetric struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value float64
}

// metricsFor flattens a Stats snapshot into the exported series. Counters
// are cumulative since process start; gauges are instantaneous.
func metricsFor(st Stats) []promMetric {
	avgBatch := 0.0
	if st.BatchRequests > 0 {
		avgBatch = float64(st.BatchedKernels) / float64(st.BatchRequests)
	}
	return []promMetric{
		{"neusight_requests_total", "Kernel predictions requested (single and batched).", "counter", float64(st.Requests)},
		{"neusight_graph_requests_total", "End-to-end graph forecasts requested.", "counter", float64(st.GraphRequests)},
		{"neusight_batch_requests_total", "Batched prediction calls received.", "counter", float64(st.BatchRequests)},
		{"neusight_batched_kernels_total", "Kernels submitted through batched prediction calls.", "counter", float64(st.BatchedKernels)},
		{"neusight_cache_hits_total", "Prediction cache hits.", "counter", float64(st.CacheHits)},
		{"neusight_cache_misses_total", "Prediction cache misses.", "counter", float64(st.CacheMisses)},
		{"neusight_coalesced_total", "Requests coalesced onto an identical in-flight prediction.", "counter", float64(st.Coalesced)},
		{"neusight_errors_total", "Predictions that returned an error.", "counter", float64(st.Errors)},
		{"neusight_rejected_total", "Requests rejected by shard saturation backpressure.", "counter", float64(st.Rejected)},
		{"neusight_shards", "Shard count the service routes across (1 = unsharded).", "gauge", float64(st.Shards)},
		{"neusight_cache_entries", "Prediction cache entries currently resident.", "gauge", float64(st.CacheLen)},
		{"neusight_inflight_requests", "Prediction requests currently being served.", "gauge", float64(st.InFlight)},
		{"neusight_batch_size_avg", "Mean kernels per batched prediction call.", "gauge", avgBatch},
		{"neusight_request_latency_p50_ms", "Request latency p50 over the recent window (ms).", "gauge", st.LatencyP50ms},
		{"neusight_request_latency_p90_ms", "Request latency p90 over the recent window (ms).", "gauge", st.LatencyP90ms},
		{"neusight_request_latency_p99_ms", "Request latency p99 over the recent window (ms).", "gauge", st.LatencyP99ms},
		{"neusight_uptime_seconds", "Seconds since the service started.", "gauge", st.UptimeSec},
	}
}

// WriteMetrics renders st in Prometheus text exposition format 0.0.4:
// "# HELP" and "# TYPE" metadata lines followed by the sample, one metric
// family per block, ending with a newline.
func WriteMetrics(w io.Writer, st Stats) error {
	for _, m := range metricsFor(st) {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

// engineFamily is one engine-labeled metric family: HELP/TYPE metadata and
// one sample per engine partition.
type engineFamily struct {
	name  string
	help  string
	typ   string
	value func(EngineStats) float64
}

var engineFamilies = []engineFamily{
	{"neusight_engine_requests_total", "Kernel predictions requested, by engine.", "counter",
		func(e EngineStats) float64 { return float64(e.Requests) }},
	{"neusight_engine_errors_total", "Predictions that returned an error, by engine.", "counter",
		func(e EngineStats) float64 { return float64(e.Errors) }},
	{"neusight_engine_coalesced_total", "Requests coalesced onto an identical in-flight prediction, by engine.", "counter",
		func(e EngineStats) float64 { return float64(e.Coalesced) }},
	{"neusight_engine_cache_hits_total", "Prediction cache hits, by engine.", "counter",
		func(e EngineStats) float64 { return float64(e.CacheHits) }},
	{"neusight_engine_cache_misses_total", "Prediction cache misses, by engine.", "counter",
		func(e EngineStats) float64 { return float64(e.CacheMisses) }},
	{"neusight_engine_cache_entries", "Prediction cache entries currently resident, by engine.", "gauge",
		func(e EngineStats) float64 { return float64(e.CacheLen) }},
	{"neusight_engine_generation", "Engine state generation (bumps on retrain; cached forecasts from older generations are unreachable).", "gauge",
		func(e EngineStats) float64 { return float64(e.Generation) }},
}

// WriteEngineMetrics renders per-engine labeled series, one family per
// block with one labeled sample per engine. Engines with no traffic yet
// have no partition and therefore no series.
func WriteEngineMetrics(w io.Writer, engines []EngineStats) error {
	for _, f := range engineFamilies {
		if len(engines) == 0 {
			break
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, e := range engines {
			if _, err := fmt.Fprintf(w, "%s{engine=%q} %v\n", f.name, e.Engine, f.value(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// shardFamily is one shard-labeled metric family.
type shardFamily struct {
	name  string
	help  string
	typ   string
	value func(ShardStats) float64
}

var shardFamilies = []shardFamily{
	{"neusight_shard_requests_total", "Kernel predictions served, by shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Requests) }},
	{"neusight_shard_errors_total", "Predictions that returned an error, by shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Errors) }},
	{"neusight_shard_coalesced_total", "Requests coalesced onto an identical in-flight prediction, by shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Coalesced) }},
	{"neusight_shard_rejected_total", "Requests rejected by saturation backpressure, by shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Rejected) }},
	{"neusight_shard_cache_hits_total", "Prediction cache hits, by shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.CacheHits) }},
	{"neusight_shard_cache_misses_total", "Prediction cache misses, by shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.CacheMisses) }},
	{"neusight_shard_cache_entries", "Prediction cache entries currently resident, by shard.", "gauge",
		func(sh ShardStats) float64 { return float64(sh.CacheLen) }},
	{"neusight_shard_keys", "(engine, GPU) routing keys assigned so far, by shard.", "gauge",
		func(sh ShardStats) float64 { return float64(sh.Keys) }},
	{"neusight_shard_inflight_requests", "Requests currently in flight, by shard.", "gauge",
		func(sh ShardStats) float64 { return float64(sh.InFlight) }},
}

// WriteShardMetrics renders per-shard labeled series, one family per
// block with one labeled sample per shard. An unsharded service exports
// none.
func WriteShardMetrics(w io.Writer, shards []ShardStats) error {
	for _, f := range shardFamilies {
		if len(shards) == 0 {
			break
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, sh := range shards {
			if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %v\n", f.name, sh.Shard, f.value(sh)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteWarmupMetrics renders the last trace-replay report as gauges; a
// process that never warmed up exports none.
func WriteWarmupMetrics(w io.Writer, ws *WarmupStats) error {
	if ws == nil {
		return nil
	}
	for _, m := range []promMetric{
		{"neusight_warmup_entries", "Trace entries parsed by the last cache warmup.", "gauge", float64(ws.Entries)},
		{"neusight_warmup_warmed", "Forecasts primed into the caches by the last warmup.", "gauge", float64(ws.Warmed)},
		{"neusight_warmup_skipped", "Corrupt trace lines skipped by the last warmup.", "gauge", float64(ws.Skipped)},
		{"neusight_warmup_failed", "Trace entries the last warmup could not prime.", "gauge", float64(ws.Failed)},
		{"neusight_warmup_duration_ms", "Wall-clock duration of the last warmup (ms).", "gauge", ws.DurationMs},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

// WritePlanMetrics renders the planner counters; a process without a
// planner exports none.
func WritePlanMetrics(w io.Writer, ps *plan.Stats) error {
	if ps == nil {
		return nil
	}
	for _, m := range []promMetric{
		{"neusight_plan_jobs", "Plan jobs known to this process (all states).", "gauge", float64(ps.Jobs)},
		{"neusight_plan_jobs_active", "Plan jobs currently evaluating.", "gauge", float64(ps.Active)},
		{"neusight_plan_jobs_submitted_total", "Plan jobs submitted.", "counter", float64(ps.Submitted)},
		{"neusight_plan_jobs_completed_total", "Plan jobs completed with every cell evaluated.", "counter", float64(ps.Completed)},
		{"neusight_plan_jobs_cancelled_total", "Plan jobs cancelled (resumable).", "counter", float64(ps.Cancelled)},
		{"neusight_plan_jobs_failed_total", "Plan jobs failed before evaluating.", "counter", float64(ps.Failed)},
		{"neusight_plan_configs_evaluated_total", "Plan configurations evaluated and checkpointed.", "counter", float64(ps.ConfigsEvaluated)},
		{"neusight_plan_remote_batches_total", "Configuration batches dispatched to cluster peers.", "counter", float64(ps.RemoteBatches)},
		{"neusight_plan_remote_failures_total", "Dispatched batches whose owner failed.", "counter", float64(ps.RemoteFailures)},
		{"neusight_plan_redispatched_batches_total", "Failed batches re-evaluated locally by the survivor.", "counter", float64(ps.RedispatchedBatches)},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

// metricsHandler serves the service counters as a Prometheus scrape target:
// the aggregate families first, then the engine-, shard-, warmup-,
// drift-, and planner-labeled families.
func metricsHandler(s *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		w.WriteHeader(http.StatusOK)
		WriteMetrics(w, s.Stats())
		WriteEngineMetrics(w, s.EngineStats())
		WriteShardMetrics(w, s.Shards())
		WriteWarmupMetrics(w, s.Warmup())
		observe.WriteMetrics(w, s.ObserveReport())
		WritePlanMetrics(w, s.PlanStats())
	}
}
