package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

// TestInvalidateEngine pins the cluster layer's invalidation hook: only
// the named engine's cached forecasts drop, in both partition layouts.
func TestInvalidateEngine(t *testing.T) {
	for _, shards := range []int{0, 4} {
		reg := predict.NewRegistry()
		reg.MustRegister(constEngine("alpha", 1))
		reg.MustRegister(constEngine("beta", 2))
		svc := NewMulti(reg, "alpha", Config{CacheSize: 64, Shards: shards})
		g := gpu.MustLookup("V100")
		k := kernels.NewBMM(2, 64, 64, 64)
		ctx := context.Background()
		svc.PredictKernelEngine(ctx, "alpha", k, g)
		svc.PredictKernelEngine(ctx, "beta", k, g)

		if n := svc.InvalidateEngine("ghost"); n != 0 {
			t.Errorf("shards=%d: invalidating an unknown engine dropped %d", shards, n)
		}
		if n := svc.InvalidateEngine("alpha"); n != 1 {
			t.Errorf("shards=%d: InvalidateEngine(alpha) = %d, want 1", shards, n)
		}
		if st := svc.Stats(); st.CacheLen != 1 {
			t.Errorf("shards=%d: cache len after invalidate = %d, want beta's 1 entry untouched", shards, st.CacheLen)
		}
		// alpha refills on the next request; beta was never disturbed.
		missesBefore := svc.Stats().CacheMisses
		svc.PredictKernelEngine(ctx, "alpha", k, g)
		svc.PredictKernelEngine(ctx, "beta", k, g)
		if misses := svc.Stats().CacheMisses - missesBefore; misses != 1 {
			t.Errorf("shards=%d: misses after invalidate = %d, want 1 (alpha only)", shards, misses)
		}
	}
}

// stubPredictor is a deterministic backend that counts calls, tracks its
// maximum observed concurrency, and can hold every call on a gate so tests
// can pile up concurrent requests deliberately.
type stubPredictor struct {
	latency   float64
	fail      bool
	panicOnce atomic.Bool   // when set, the next call panics (then resets)
	gate      chan struct{} // when non-nil, calls block until the gate closes

	calls   atomic.Int64
	active  atomic.Int64
	maxSeen atomic.Int64
}

func (s *stubPredictor) Name() string { return "stub" }

func (s *stubPredictor) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	s.calls.Add(1)
	cur := s.active.Add(1)
	for {
		prev := s.maxSeen.Load()
		if cur <= prev || s.maxSeen.CompareAndSwap(prev, cur) {
			break
		}
	}
	if s.gate != nil {
		<-s.gate
	}
	s.active.Add(-1)
	if s.panicOnce.CompareAndSwap(true, false) {
		panic("stub panic")
	}
	if s.fail {
		return 0, errors.New("stub failure")
	}
	return s.latency, nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCacheHitMissAccounting(t *testing.T) {
	stub := &stubPredictor{latency: 1.25}
	svc := New(stub, Config{CacheSize: 16})
	g := gpu.MustLookup("V100")
	k1 := kernels.NewBMM(4, 128, 128, 128)
	k2 := kernels.NewLinear(64, 256, 256)

	for i := 0; i < 3; i++ {
		l, err := svc.PredictKernel(k1, g)
		if err != nil {
			t.Fatalf("PredictKernel: %v", err)
		}
		if l != 1.25 {
			t.Fatalf("latency = %v, want 1.25", l)
		}
	}
	if _, err := svc.PredictKernel(k2, g); err != nil {
		t.Fatalf("PredictKernel k2: %v", err)
	}

	st := svc.Stats()
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 (one per unique kernel)", got)
	}
	if st.CacheHits != 2 || st.CacheMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", st.CacheHits, st.CacheMisses)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate)
	}
	if st.Requests != 4 {
		t.Errorf("requests = %d, want 4", st.Requests)
	}
	if st.CacheLen != 2 {
		t.Errorf("cache len = %d, want 2", st.CacheLen)
	}
}

func TestCacheDistinguishesGPUAndDType(t *testing.T) {
	stub := &stubPredictor{latency: 2}
	svc := New(stub, Config{CacheSize: 16})
	k := kernels.NewBMM(2, 64, 64, 64)

	svc.PredictKernel(k, gpu.MustLookup("V100"))
	svc.PredictKernel(k, gpu.MustLookup("H100"))
	svc.PredictKernel(k.WithDType(kernels.FP16), gpu.MustLookup("H100"))

	if got := stub.calls.Load(); got != 3 {
		t.Errorf("backend calls = %d, want 3 (distinct GPU and dtype must not collide)", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	stub := &stubPredictor{fail: true}
	svc := New(stub, Config{CacheSize: 16})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 32, 32, 32)

	for i := 0; i < 2; i++ {
		if _, err := svc.PredictKernel(k, g); err == nil {
			t.Fatal("expected error from failing backend")
		}
	}
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 (errors must not populate the cache)", got)
	}
	if st := svc.Stats(); st.Errors != 2 || st.CacheLen != 0 {
		t.Errorf("errors/cacheLen = %d/%d, want 2/0", st.Errors, st.CacheLen)
	}
}

func TestNetworkKernelRejected(t *testing.T) {
	stub := &stubPredictor{latency: 1}
	svc := New(stub, Config{})
	if _, err := svc.PredictKernel(kernels.NewAllReduce(1024), gpu.MustLookup("V100")); err == nil {
		t.Fatal("expected network kernels to be rejected")
	}
	if got := stub.calls.Load(); got != 0 {
		t.Errorf("backend calls = %d, want 0", got)
	}
}

func TestCoalescingSharesOneBackendCall(t *testing.T) {
	stub := &stubPredictor{latency: 3.5, gate: make(chan struct{})}
	svc := New(stub, Config{CacheSize: 16, Workers: 8})
	g := gpu.MustLookup("V100")
	k := kernels.NewSoftmax(512, 512)

	const n = 8
	results := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.PredictKernel(k, g)
		}(i)
	}

	// One request reaches the backend and blocks on the gate; the other
	// seven must coalesce behind it rather than duplicating the call.
	waitFor(t, "7 coalesced waiters", func() bool { return svc.Stats().Coalesced == n-1 })
	close(stub.gate)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != 3.5 {
			t.Fatalf("request %d latency = %v, want 3.5", i, results[i])
		}
	}
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("backend calls = %d, want 1 (identical in-flight requests must coalesce)", got)
	}
	if st := svc.Stats(); st.CacheLen != 1 {
		t.Errorf("cache len = %d, want 1", st.CacheLen)
	}
}

func TestWorkerPoolBoundsBackendConcurrency(t *testing.T) {
	stub := &stubPredictor{latency: 1, gate: make(chan struct{})}
	svc := New(stub, Config{CacheSize: 16, Workers: 2})
	g := gpu.MustLookup("V100")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc.PredictKernel(kernels.NewBMM(1, 8+i, 8, 8), g) // all distinct: no coalescing
		}(i)
	}
	waitFor(t, "2 backend calls in flight", func() bool { return stub.active.Load() == 2 })
	// Give the remaining six a chance to (incorrectly) enter the backend.
	time.Sleep(20 * time.Millisecond)
	if got := stub.active.Load(); got != 2 {
		t.Errorf("in-flight backend calls = %d, want 2", got)
	}
	close(stub.gate)
	wg.Wait()
	if got := stub.maxSeen.Load(); got > 2 {
		t.Errorf("max backend concurrency = %d, want <= 2", got)
	}
	if got := stub.calls.Load(); got != 8 {
		t.Errorf("backend calls = %d, want 8", got)
	}
}

func TestBackendPanicDoesNotWedgeKey(t *testing.T) {
	stub := &stubPredictor{latency: 6}
	svc := New(stub, Config{CacheSize: 16})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(3, 48, 48, 48)

	stub.panicOnce.Store(true)
	if _, err := svc.PredictKernel(k, g); err == nil {
		t.Fatal("expected the backend panic to surface as an error")
	}
	// The key must not be wedged: the next request runs the backend again
	// and succeeds (the worker-pool slot was released too, or this would
	// deadlock with Workers=1).
	svc2 := New(stub, Config{CacheSize: 16, Workers: 1})
	stub.panicOnce.Store(true)
	if _, err := svc2.PredictKernel(k, g); err == nil {
		t.Fatal("expected panic error")
	}
	l, err := svc2.PredictKernel(k, g)
	if err != nil {
		t.Fatalf("key wedged after backend panic: %v", err)
	}
	if l != 6 {
		t.Fatalf("latency = %v, want 6", l)
	}
	if st := svc2.Stats(); st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
}

func TestPredictGraphSumsAndSkipsNetwork(t *testing.T) {
	stub := &stubPredictor{latency: 2.5}
	svc := New(stub, Config{CacheSize: 16})
	g := gpu.MustLookup("V100")

	gr := graph.New("test")
	a := gr.Add(kernels.NewBMM(2, 64, 64, 64))
	b := gr.Add(kernels.NewSoftmax(128, 64), a)
	gr.Add(kernels.NewAllReduce(4096), b) // must contribute 0
	gr.Add(kernels.NewBMM(2, 64, 64, 64), b)

	total := svc.PredictGraph(gr, g)
	if want := 3 * 2.5; total != want {
		t.Errorf("graph latency = %v, want %v", total, want)
	}
	// The two identical BMMs share one cache entry.
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2", got)
	}
	if st := svc.Stats(); st.GraphRequests != 1 {
		t.Errorf("graph requests = %d, want 1", st.GraphRequests)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", predict.Result{Latency: 1})
	c.Put("b", predict.Result{Latency: 2})
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", predict.Result{Latency: 3})
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestFlushCacheForcesReprediction(t *testing.T) {
	stub := &stubPredictor{latency: 1}
	svc := New(stub, Config{CacheSize: 16})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 24, 24, 24)

	svc.PredictKernel(k, g)
	svc.PredictKernel(k, g) // hit
	svc.FlushCache()
	if svc.Stats().CacheLen != 0 {
		t.Fatal("cache not empty after flush")
	}
	svc.PredictKernel(k, g) // must reach the backend again
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 after flush", got)
	}
	if st := svc.Stats(); st.CacheHits != 1 {
		t.Errorf("hits = %d, want counters preserved across flush", st.CacheHits)
	}
}

func TestDisabledCacheNeverStores(t *testing.T) {
	stub := &stubPredictor{latency: 1}
	svc := New(stub, Config{CacheSize: -1})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 16, 16, 16)
	svc.PredictKernel(k, g)
	svc.PredictKernel(k, g)
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 with caching disabled", got)
	}
}

func TestLatencyPercentilesPopulate(t *testing.T) {
	stub := &stubPredictor{latency: 1}
	svc := New(stub, Config{CacheSize: 16})
	g := gpu.MustLookup("V100")
	for i := 0; i < 10; i++ {
		svc.PredictKernel(kernels.NewBMM(1, 4+i, 4, 4), g)
	}
	st := svc.Stats()
	if st.LatencyP99ms < st.LatencyP50ms {
		t.Errorf("p99 %v < p50 %v", st.LatencyP99ms, st.LatencyP50ms)
	}
	if st.LatencyP99ms <= 0 {
		t.Errorf("p99 = %v, want > 0", st.LatencyP99ms)
	}
}
