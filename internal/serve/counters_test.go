package serve

import (
	"context"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

// TestGraphTrafficExcludedFromBatchCounters pins the counter invariant the
// batch API was shipped with: PredictGraph* routes through the same
// batched machinery as PredictBatch*, but batch_requests/batched_kernels
// mean "client batch calls" — graph traffic must move graph_requests and
// the per-kernel request counters only, never the batch-API counters.
func TestGraphTrafficExcludedFromBatchCounters(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64})
	g := gpu.MustLookup("V100")
	ctx := context.Background()

	gr := graph.New("invariant")
	gr.Add(kernels.NewBMM(2, 64, 64, 64))
	gr.Add(kernels.NewLinear(8, 16, 16))
	gr.Add(kernels.NewSoftmax(64, 64))

	if _, _, err := svc.PredictGraphEngine(ctx, "", gr, g); err != nil {
		t.Fatalf("PredictGraphEngine: %v", err)
	}
	st := svc.Stats()
	if st.GraphRequests != 1 {
		t.Errorf("graph_requests = %d, want 1", st.GraphRequests)
	}
	if st.BatchRequests != 0 || st.BatchedKernels != 0 {
		t.Errorf("graph traffic leaked into batch counters: batch_requests=%d batched_kernels=%d, want 0/0",
			st.BatchRequests, st.BatchedKernels)
	}
	if st.Requests != 3 {
		t.Errorf("requests = %d, want 3 (one per graph kernel)", st.Requests)
	}

	// A client batch call moves exactly the batch counters.
	ks := []kernels.Kernel{kernels.NewBMM(2, 64, 64, 64), kernels.NewLinear(8, 16, 16)}
	if _, err := svc.PredictBatchEngine(ctx, "", ks, g); err != nil {
		t.Fatalf("PredictBatchEngine: %v", err)
	}
	st = svc.Stats()
	if st.BatchRequests != 1 || st.BatchedKernels != 2 {
		t.Errorf("batch counters = %d requests / %d kernels, want 1/2", st.BatchRequests, st.BatchedKernels)
	}
	if st.GraphRequests != 1 {
		t.Errorf("graph_requests moved on batch traffic: %d, want 1", st.GraphRequests)
	}

	// And warmup replay — also a predictMany internal caller — must not
	// count as client batches either.
	if st.Requests != 5 {
		t.Errorf("requests = %d, want 5", st.Requests)
	}
}
