package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

// countingEngine builds a func engine that counts backend evaluations.
func countingEngine(name string, lat float64, calls *atomic.Int64) predict.Engine {
	return predict.NewFuncEngine(name, predict.SourceAnalytical,
		func(k kernels.Kernel, g gpu.Spec) (float64, error) {
			calls.Add(1)
			return lat, nil
		})
}

// shardedService builds an n-shard service over two engines: "alpha"
// (default, latency 1) and "beta" (latency 2).
func shardedService(t *testing.T, n int) *Service {
	t.Helper()
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	reg.MustRegister(constEngine("beta", 2))
	return NewMulti(reg, "alpha", Config{CacheSize: 64, Shards: n})
}

func TestShardRoutingIsDeterministicAndSpreads(t *testing.T) {
	r := newShardRouter(8, 64, 2, 0)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("engine-%d", i)
		p1 := r.shardFor(key, "H100")
		p2 := r.shardFor(key, "H100")
		if p1 != p2 {
			t.Fatalf("key %q routed to shards %d and %d", key, p1.shard, p2.shard)
		}
		seen[p1.shard] = true
	}
	// 64 keys over 8 shards: consistent hashing with 64 virtual points per
	// shard spreads keys across most shards; all landing on one or two
	// would mean the ring is broken.
	if len(seen) < 4 {
		t.Errorf("64 keys landed on only %d of 8 shards", len(seen))
	}
}

func TestShardedServingMatchesUnsharded(t *testing.T) {
	svc := shardedService(t, 4)
	ctx := context.Background()
	gpus := []gpu.Spec{gpu.MustLookup("V100"), gpu.MustLookup("H100"), gpu.MustLookup("A100-40GB")}
	k := kernels.NewBMM(2, 64, 64, 64)

	for _, g := range gpus {
		for i := 0; i < 3; i++ {
			res, err := svc.PredictKernelEngine(ctx, "", k, g)
			if err != nil || res.Latency != 1 {
				t.Fatalf("alpha on %s = (%+v, %v), want latency 1", g.Name, res, err)
			}
			res, err = svc.PredictKernelEngine(ctx, "beta", k, g)
			if err != nil || res.Latency != 2 {
				t.Fatalf("beta on %s = (%+v, %v), want latency 2", g.Name, res, err)
			}
		}
	}

	st := svc.Stats()
	if st.Shards != 4 {
		t.Errorf("Stats.Shards = %d, want 4", st.Shards)
	}
	// 6 unique (engine, GPU, kernel) keys, each queried 3 times.
	if st.CacheMisses != 6 || st.CacheHits != 12 {
		t.Errorf("hits/misses = %d/%d, want 12/6", st.CacheHits, st.CacheMisses)
	}
	if st.CacheLen != 6 {
		t.Errorf("cache len = %d, want 6", st.CacheLen)
	}

	// Per-engine accounting must survive the shard layout.
	for _, e := range svc.EngineStats() {
		if e.Requests != 9 || e.CacheMisses != 3 || e.CacheHits != 6 || e.CacheLen != 3 {
			t.Errorf("engine %s stats = %+v, want 9 requests, 6 hits, 3 misses, 3 entries", e.Engine, e)
		}
	}

	// Shard sections: counters must sum to the aggregate.
	shards := svc.Shards()
	if len(shards) != 4 {
		t.Fatalf("Shards() = %d entries, want 4", len(shards))
	}
	var reqs, hits, misses uint64
	var keys, entries int
	for _, sh := range shards {
		reqs += sh.Requests
		hits += sh.CacheHits
		misses += sh.CacheMisses
		keys += sh.Keys
		entries += sh.CacheLen
	}
	if reqs != 18 || hits != 12 || misses != 6 || entries != 6 {
		t.Errorf("shard sums = %d reqs, %d hits, %d misses, %d entries; want 18/12/6/6", reqs, hits, misses, entries)
	}
	if keys != 6 {
		t.Errorf("assigned keys = %d, want 6 (2 engines x 3 GPUs)", keys)
	}
}

func TestShardedBatchAndGraphPaths(t *testing.T) {
	var calls atomic.Int64
	reg := predict.NewRegistry()
	reg.MustRegister(countingEngine("alpha", 1, &calls))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64, Shards: 4})
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{
		kernels.NewBMM(2, 64, 64, 64),
		kernels.NewLinear(64, 128, 128),
		kernels.NewBMM(2, 64, 64, 64), // in-batch duplicate
	}

	outs, err := svc.PredictBatchEngine(context.Background(), "", ks, g)
	if err != nil {
		t.Fatalf("PredictBatchEngine: %v", err)
	}
	for i, out := range outs {
		if out.Err != nil || out.Result.Latency != 1 {
			t.Fatalf("outs[%d] = %+v, want latency 1", i, out)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 (in-batch dedup must survive sharding)", got)
	}

	// The same keys again: all hits, no new backend work.
	if _, err := svc.PredictBatchEngine(context.Background(), "", ks, g); err != nil {
		t.Fatalf("second batch: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend calls after warm batch = %d, want 2", got)
	}
}

func TestShardBackpressure(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewFuncEngine("slow", "test",
		func(k kernels.Kernel, g gpu.Spec) (float64, error) {
			started <- struct{}{}
			<-gate
			return 1, nil
		}))
	svc := NewMulti(reg, "slow", Config{CacheSize: 64, Shards: 2, ShardWorkers: 4, ShardQueue: 1})
	g := gpu.MustLookup("V100")
	ctx := context.Background()

	// Occupy the single in-flight slot of the (slow, V100) shard.
	done := make(chan error, 1)
	go func() {
		_, err := svc.PredictKernelEngine(ctx, "", kernels.NewBMM(1, 32, 32, 32), g)
		done <- err
	}()
	<-started

	// The shard is saturated: a second, different kernel must be rejected
	// immediately rather than queue.
	_, err := svc.PredictKernelEngine(ctx, "", kernels.NewLinear(8, 16, 16), g)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated shard error = %v, want ErrSaturated", err)
	}

	// Batch and graph traffic on the saturated shard reject as a whole —
	// a call-level error, never per-item fallbacks.
	if _, err := svc.PredictBatchEngine(ctx, "", []kernels.Kernel{kernels.NewLinear(8, 16, 16)}, g); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated batch error = %v, want ErrSaturated", err)
	}
	gr := graph.New("sat")
	gr.Add(kernels.NewLinear(8, 16, 16))
	if _, _, err := svc.PredictGraphEngine(ctx, "", gr, g); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated graph error = %v, want ErrSaturated (not a fallback-assembled total)", err)
	}

	st := svc.Stats()
	if st.Rejected != 3 {
		t.Errorf("Stats.Rejected = %d, want 3", st.Rejected)
	}
	// Rejections must not inflate request throughput or the latency
	// window: only the one admitted (still in-flight) request counts.
	if st.Requests != 1 {
		t.Errorf("Stats.Requests = %d, want 1 (rejected requests must not count)", st.Requests)
	}
	var shardRejected uint64
	for _, sh := range svc.Shards() {
		shardRejected += sh.Rejected
	}
	if shardRejected != 3 {
		t.Errorf("per-shard rejected sum = %d, want 3", shardRejected)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}

	// With the slot free again the shard admits new work.
	if _, err := svc.PredictKernelEngine(ctx, "", kernels.NewLinear(8, 16, 16), g); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
}

func TestSaturationMapsTo503(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewFuncEngine("slow", "test",
		func(k kernels.Kernel, g gpu.Spec) (float64, error) {
			started <- struct{}{}
			<-gate
			return 1, nil
		}))
	svc := NewMulti(reg, "slow", Config{CacheSize: 64, Shards: 2, ShardQueue: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	defer close(gate)

	go svc.PredictKernelEngine(context.Background(), "", kernels.NewBMM(1, 32, 32, 32), gpu.MustLookup("V100"))
	<-started

	resp, err := http.Post(ts.URL+"/v2/predict/kernel", "application/json",
		strings.NewReader(`{"op":"linear","m":8,"k":16,"n":16,"gpu":"V100"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated shard HTTP status = %d, want 503", resp.StatusCode)
	}
}

func TestRebalanceDropsUnregisteredEngineState(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	reg.MustRegister(constEngine("gamma", 3))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64, Shards: 4})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 64, 64, 64)
	ctx := context.Background()

	svc.PredictKernelEngine(ctx, "", k, g)
	svc.PredictKernelEngine(ctx, "gamma", k, g)
	if st := svc.Stats(); st.CacheLen != 2 {
		t.Fatalf("cache len = %d, want 2", st.CacheLen)
	}

	if !reg.Unregister("gamma") {
		t.Fatal("Unregister(gamma) reported no engine")
	}
	// The next request observes the version drift and rebalances: gamma's
	// cache slice is evicted, its engine state dropped, and requests for
	// it now fail routing.
	if _, err := svc.PredictKernelEngine(ctx, "gamma", k, g); !errors.Is(err, predict.ErrUnknownEngine) {
		t.Fatalf("unregistered engine error = %v, want ErrUnknownEngine", err)
	}
	if st := svc.Stats(); st.CacheLen != 1 {
		t.Errorf("cache len after rebalance = %d, want 1 (gamma's entry evicted)", st.CacheLen)
	}
	for _, e := range svc.EngineStats() {
		if e.Engine == "gamma" {
			t.Errorf("engine stats still list unregistered gamma: %+v", e)
		}
	}

	// alpha's entry survived: still a cache hit.
	before := svc.Stats().CacheHits
	svc.PredictKernelEngine(ctx, "", k, g)
	if after := svc.Stats().CacheHits; after != before+1 {
		t.Errorf("alpha hit after rebalance: hits %d -> %d, want +1", before, after)
	}
}

// TestUnshardedRebalanceKeepsCounterHistory pins that dropping an
// engine's private partition (unsharded layout) does not regress the
// aggregate cache counters — they are exported to Prometheus as
// monotonic counters.
func TestUnshardedRebalanceKeepsCounterHistory(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	reg.MustRegister(constEngine("gamma", 3))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64}) // unsharded
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 64, 64, 64)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		svc.PredictKernelEngine(ctx, "gamma", k, g)
	}
	before := svc.Stats()
	if before.CacheHits != 4 || before.CacheMisses != 1 {
		t.Fatalf("pre-rebalance hits/misses = %d/%d, want 4/1", before.CacheHits, before.CacheMisses)
	}

	reg.Unregister("gamma")
	svc.Rebalance()
	after := svc.Stats()
	if after.CacheHits < before.CacheHits || after.CacheMisses < before.CacheMisses {
		t.Errorf("aggregate counters regressed across rebalance: hits %d->%d, misses %d->%d",
			before.CacheHits, after.CacheHits, before.CacheMisses, after.CacheMisses)
	}
	if after.CacheLen != 0 {
		t.Errorf("cache len after dropping the only traffic's engine = %d, want 0", after.CacheLen)
	}
}

// TestReplacedEngineDoesNotServeStaleCache pins the rebalance race: an
// evaluation in flight while its engine is unregistered and replaced must
// not park its result where the replacement engine can serve it. Cache
// keys carry a per-registration epoch, so the straggler caches into a
// dead key space.
func TestReplacedEngineDoesNotServeStaleCache(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	reg := predict.NewRegistry()
	reg.MustRegister(predict.NewFuncEngine("x", "test",
		func(k kernels.Kernel, g gpu.Spec) (float64, error) {
			started <- struct{}{}
			<-gate
			return 1, nil // the OLD engine's answer
		}))
	svc := NewMulti(reg, "x", Config{CacheSize: 64, Shards: 4})
	g := gpu.MustLookup("V100")
	k := kernels.NewBMM(2, 64, 64, 64)
	ctx := context.Background()

	// Lead an evaluation on the old engine and hold it in the backend.
	done := make(chan float64, 1)
	go func() {
		res, _ := svc.PredictKernelEngine(ctx, "", k, g)
		done <- res.Latency
	}()
	<-started

	// Replace the engine under the same name while the evaluation hangs.
	reg.Unregister("x")
	reg.MustRegister(constEngine("x", 5))
	svc.Rebalance()

	// Let the straggler complete: it caches under the old epoch's keys.
	close(gate)
	if lat := <-done; lat != 1 {
		t.Fatalf("in-flight request latency = %v, want 1 (old engine)", lat)
	}

	// The replacement must answer fresh — not serve the straggler's entry.
	res, err := svc.PredictKernelEngine(ctx, "", k, g)
	if err != nil {
		t.Fatalf("post-replacement request: %v", err)
	}
	if res.Latency != 5 {
		t.Errorf("post-replacement latency = %v, want 5 (stale cache entry served)", res.Latency)
	}
}

// TestShardRebalanceUnderConcurrentLoad hammers a sharded service from
// many goroutines while engines churn (register/unregister) behind it —
// the registry-version rebalance path must stay correct and race-free
// (run under -race).
func TestShardRebalanceUnderConcurrentLoad(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	reg.MustRegister(constEngine("beta", 2))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 256, Shards: 4})
	gpus := []gpu.Spec{gpu.MustLookup("V100"), gpu.MustLookup("H100"), gpu.MustLookup("A100-40GB")}
	ctx := context.Background()

	const clients = 16
	const perClient = 200
	stop := make(chan struct{})

	// Churn: register and unregister a transient engine while traffic runs.
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn-%d", i%3)
			if reg.Register(constEngine(name, 9)) == nil {
				svc.PredictKernelEngine(ctx, name, kernels.NewBMM(1, 16, 16, 16), gpus[i%len(gpus)])
				reg.Unregister(name)
			}
			svc.Rebalance()
		}
	}()

	var failures atomic.Int64
	var clientWg sync.WaitGroup
	for c := 0; c < clients; c++ {
		clientWg.Add(1)
		go func(c int) {
			defer clientWg.Done()
			for i := 0; i < perClient; i++ {
				engine := ""
				if i%2 == 1 {
					engine = "beta"
				}
				k := kernels.NewBMM(1+i%4, 32, 32, 32)
				g := gpus[(c+i)%len(gpus)]
				res, err := svc.PredictKernelEngine(ctx, engine, k, g)
				if err != nil {
					failures.Add(1)
					continue
				}
				want := 1.0
				if engine == "beta" {
					want = 2
				}
				if res.Latency != want {
					t.Errorf("engine %q latency = %v, want %v", engine, res.Latency, want)
					return
				}
			}
		}(c)
	}

	clientWg.Wait()
	close(stop)
	churnWg.Wait()

	if failures.Load() > 0 {
		t.Errorf("stable-engine requests failed during churn: %d failures", failures.Load())
	}
	// The service is still fully functional after churn.
	if _, err := svc.PredictKernelEngine(ctx, "beta", kernels.NewBMM(1, 32, 32, 32), gpus[0]); err != nil {
		t.Fatalf("post-churn request failed: %v", err)
	}
}
