// Package serve is the production serving layer of the framework: it wraps
// a trained predictor behind a thread-safe Service that caches, coalesces,
// and rate-bounds kernel-latency forecasts, and exposes the result as an
// HTTP JSON API (see http.go) wired into the `neusight serve` subcommand.
//
// The serving shape follows directly from the NeuSight design
// (conf_asplos_LeeP025): a forecast decomposes into per-kernel queries
// against small MLPs, DNN graphs repeat identical kernels across layers,
// and users repeat identical (workload, GPU) questions — so an LRU keyed by
// (kernel fingerprint, GPU) absorbs most traffic, and coalescing collapses
// identical in-flight misses onto a single MLP evaluation.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neusight/internal/core"
	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/tile"
)

// KernelPredictor is the prediction backend the service wraps. Both
// *core.Predictor and *core.Ensemble satisfy it; tests substitute stubs.
// Implementations must be safe for concurrent PredictKernel calls.
type KernelPredictor interface {
	Name() string
	PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error)
}

// BatchKernelPredictor is optionally implemented by backends that can
// amortize one model evaluation across many kernels (*core.Predictor does,
// via its compiled inference path). When the wrapped backend implements it,
// PredictBatch forwards all cache misses in a single call; otherwise it
// falls back to per-kernel backend predictions. Results are positional and
// per-item: lats[i]/errs[i] correspond to ks[i].
type BatchKernelPredictor interface {
	PredictKernels(ks []kernels.Kernel, g gpu.Spec) (lats []float64, errs []error)
}

// Config sizes the service.
type Config struct {
	// CacheSize is the LRU capacity in entries. Zero means DefaultCacheSize;
	// negative disables caching.
	CacheSize int
	// Workers bounds how many predictions run concurrently in the backend.
	// Zero means GOMAXPROCS.
	Workers int
	// LatencyWindow is the request-latency ring size for percentile stats.
	// Zero means a reasonable default.
	LatencyWindow int
}

// DefaultCacheSize holds the working set of several large transformer
// graphs (a GPT-3 inference graph has a few thousand kernels but only
// dozens of unique shapes).
const DefaultCacheSize = 4096

// Service is a thread-safe prediction server. It layers three mechanisms
// over the backend predictor:
//
//  1. an LRU prediction cache keyed by (kernel fingerprint, GPU name);
//  2. request coalescing: concurrent misses on the same key share one
//     backend evaluation instead of duplicating it;
//  3. a bounded worker pool so graph fan-out cannot oversubscribe the CPU.
//
// The Service assumes a frozen backend: latencies are cached until LRU
// eviction, so if the wrapped predictor is re-trained or its tile database
// grows while serving, call FlushCache afterwards or stale forecasts will
// be served indefinitely.
type Service struct {
	pred  KernelPredictor
	cache *lruCache
	sem   chan struct{}
	lat   *latencyWindow
	start time.Time

	mu       sync.Mutex
	inflight map[string]*inflightCall

	requests       atomic.Uint64
	coalesced      atomic.Uint64
	errors         atomic.Uint64
	graphs         atomic.Uint64
	batches        atomic.Uint64
	batchedKernels atomic.Uint64
	inFlightNow    atomic.Int64
}

// inflightCall is one in-progress backend prediction that later arrivals
// for the same key wait on.
type inflightCall struct {
	done chan struct{}
	val  float64
	err  error
}

// New returns a Service wrapping pred.
func New(pred KernelPredictor, cfg Config) *Service {
	if pred == nil {
		panic("serve: nil predictor")
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		pred:     pred,
		cache:    newLRUCache(size),
		sem:      make(chan struct{}, workers),
		lat:      newLatencyWindow(cfg.LatencyWindow),
		start:    time.Now(),
		inflight: map[string]*inflightCall{},
	}
}

// Backend returns the wrapped predictor's name.
func (s *Service) Backend() string { return s.pred.Name() }

// FlushCache drops every cached prediction (hit/miss counters are kept).
// Call it after mutating the backend — re-training the predictor or adding
// tile records — so subsequent requests re-resolve against the new state.
func (s *Service) FlushCache() {
	s.cache.Flush()
}

// cacheKey fingerprints a prediction request with the same fingerprint the
// predictor's tile cache and the tile DB memo use, so every cache layer
// agrees on request identity.
func cacheKey(k kernels.Kernel, g gpu.Spec) string {
	return tile.QueryKey(k, g)
}

// PredictKernel forecasts the latency of kernel k on device g in
// milliseconds, serving from cache when possible and coalescing concurrent
// identical requests. It is safe for arbitrary concurrent use.
func (s *Service) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	start := time.Now()
	s.requests.Add(1)
	s.inFlightNow.Add(1)
	defer func() {
		s.inFlightNow.Add(-1)
		s.lat.Observe(time.Since(start))
	}()

	if k.Category() == kernels.CatNetwork {
		s.errors.Add(1)
		return 0, fmt.Errorf("serve: network kernel %s is priced by the distributed layer, not the kernel predictor", k.Label())
	}

	key := cacheKey(k, g)
	if v, ok := s.cache.Get(key); ok {
		return v, nil
	}

	s.mu.Lock()
	if call, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-call.done
		if call.err != nil {
			s.errors.Add(1)
		}
		return call.val, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = call
	s.mu.Unlock()

	s.runBackend(call, key, k, g)

	if call.err != nil {
		s.errors.Add(1)
		return 0, call.err
	}
	s.cache.Put(key, call.val)
	return call.val, nil
}

// runBackend executes the backend prediction for a registered in-flight
// call. Unregistering the call and closing done run even if the backend
// panics (callBackend converts the panic to an error), so both the leader
// and every coalesced waiter fail cleanly instead of wedging the key
// forever.
func (s *Service) runBackend(call *inflightCall, key string, k kernels.Kernel, g gpu.Spec) {
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(call.done)
	}()
	call.val, call.err = s.callBackend(k, g)
}

// callBackend runs one per-kernel backend prediction under a worker-pool
// slot, converting a backend panic into an error with the slot released.
// It is the shared primitive of the single-kernel path and the batch
// fallback for backends without native batch support.
func (s *Service) callBackend(k kernels.Kernel, g gpu.Spec) (val float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: backend panic predicting %s: %v", k.Label(), r)
		}
	}()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	return s.pred.PredictKernel(k, g)
}

// PredictGraph forecasts the end-to-end latency of gr on g under the
// paper's sequential-execution assumption by routing every predictable
// kernel through the batched prediction machinery (see PredictBatch; the
// batch-API counters are not incremented — they track client batch calls):
// cache hits are served directly, the misses collapse into a single batched
// backend evaluation, and identical kernels — within the graph or across
// concurrent PredictGraph calls — share cache entries and coalesce. Kernels
// that fail to predict contribute their memory-bound fallback, mirroring
// core.Predictor.PredictGraph.
func (s *Service) PredictGraph(gr *graph.Graph, g gpu.Spec) float64 {
	s.graphs.Add(1)
	ks := make([]kernels.Kernel, 0, len(gr.Nodes))
	for _, n := range gr.Nodes {
		if n.Kernel.Category() == kernels.CatNetwork {
			continue // network ops are priced by the distributed layer
		}
		ks = append(ks, n.Kernel)
	}
	lats, errs := s.predictBatch(ks, g)
	total := 0.0
	for i, l := range lats {
		if errs[i] != nil {
			l = core.MemBoundLatency(ks[i], g)
		}
		total += l
	}
	return total
}

// Stats is a point-in-time snapshot of the service counters, exposed on
// /v1/stats and consumed by the throughput benchmark.
type Stats struct {
	Backend        string  `json:"backend"`
	Requests       uint64  `json:"requests"`
	GraphRequests  uint64  `json:"graph_requests"`
	BatchRequests  uint64  `json:"batch_requests"`
	BatchedKernels uint64  `json:"batched_kernels"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheLen       int     `json:"cache_len"`
	HitRate        float64 `json:"hit_rate"`
	Coalesced      uint64  `json:"coalesced"`
	Errors         uint64  `json:"errors"`
	InFlight       int64   `json:"in_flight"`
	LatencyP50ms   float64 `json:"latency_p50_ms"`
	LatencyP90ms   float64 `json:"latency_p90_ms"`
	LatencyP99ms   float64 `json:"latency_p99_ms"`
	UptimeSec      float64 `json:"uptime_sec"`
}

// Stats returns the current counters. HitRate is hits/(hits+misses), 0
// before any traffic.
func (s *Service) Stats() Stats {
	hits, misses := s.cache.Counters()
	ps := s.lat.Percentiles(0.50, 0.90, 0.99)
	st := Stats{
		Backend:        s.pred.Name(),
		Requests:       s.requests.Load(),
		GraphRequests:  s.graphs.Load(),
		BatchRequests:  s.batches.Load(),
		BatchedKernels: s.batchedKernels.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheLen:       s.cache.Len(),
		Coalesced:      s.coalesced.Load(),
		Errors:         s.errors.Load(),
		InFlight:       s.inFlightNow.Load(),
		LatencyP50ms:   ps[0],
		LatencyP90ms:   ps[1],
		LatencyP99ms:   ps[2],
		UptimeSec:      time.Since(s.start).Seconds(),
	}
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st
}
