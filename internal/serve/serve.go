// Package serve is the production serving layer of the framework: it routes
// prediction traffic across a registry of latency engines behind a
// thread-safe Service that caches, coalesces, and rate-bounds kernel
// forecasts, and exposes the result as a versioned HTTP JSON API (see
// http.go) wired into the `neusight serve` subcommand.
//
// The serving shape follows directly from the NeuSight design
// (conf_asplos_LeeP025): a forecast decomposes into per-kernel queries
// against small models, DNN graphs repeat identical kernels across layers,
// and users repeat identical (workload, GPU) questions — so a per-engine
// LRU keyed by (kernel fingerprint, GPU, engine generation) absorbs most
// traffic, and coalescing collapses identical in-flight misses onto a
// single model evaluation. Multi-engine routing rides the same machinery:
// every registered engine gets its own cache partition, in-flight table,
// and counters, so a cheap roofline bound and the learned NeuSight pipeline
// are a per-request routing decision, not separate deployments.
//
// Two subsystems scale that machinery to production traffic:
//
//   - Sharding (shard.go): with Config.Shards > 1, traffic is partitioned
//     by (engine, GPU) key onto N dedicated shards via consistent hashing.
//     Each shard owns its cache, coalescing table, and worker pool, so
//     concurrent clients hitting different (engine, GPU) pairs stop
//     contending on one lock; saturated shards push back with ErrSaturated
//     instead of queueing without bound, and engine registration changes
//     trigger a rebalance that evicts orphaned cache slices.
//   - Workload traces (trace.go): the keys the service actually serves can
//     be recorded to an append-only JSONL trace, and a saved trace replayed
//     at startup to warm the caches concurrently before the listener
//     accepts traffic — a restart no longer discards the workload profile
//     the previous process spent its uptime learning.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"neusight/internal/core"
	"neusight/internal/gpu"
	"neusight/internal/graph"
	"neusight/internal/kernels"
	"neusight/internal/observe"
	"neusight/internal/plan"
	"neusight/internal/predict"
	"neusight/internal/tile"
)

// KernelPredictor is the legacy single-backend contract New wraps. Both
// *core.Predictor and *core.Ensemble satisfy it; tests substitute stubs.
// Implementations must be safe for concurrent PredictKernel calls.
type KernelPredictor interface {
	Name() string
	PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error)
}

// BatchKernelPredictor is optionally implemented by legacy backends that
// can amortize one model evaluation across many kernels (*core.Predictor
// does, via its compiled inference path). Results are positional and
// per-item: lats[i]/errs[i] correspond to ks[i].
type BatchKernelPredictor interface {
	PredictKernels(ks []kernels.Kernel, g gpu.Spec) (lats []float64, errs []error)
}

// Config sizes the service.
type Config struct {
	// CacheSize is the LRU capacity in entries of each cache partition
	// (per engine when unsharded, per shard when Shards > 1). Zero means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// Workers bounds how many predictions run concurrently in the backends
	// (shared across engines). Zero means GOMAXPROCS. When Shards > 1 it
	// is the total budget split evenly across the shard pools (see
	// ShardWorkers) — but every shard pool gets at least one slot, so the
	// effective aggregate bound is max(Workers, Shards): dedicated pools
	// cannot share a budget below one slot each.
	Workers int
	// LatencyWindow is the request-latency ring size for percentile stats.
	// Zero means a reasonable default.
	LatencyWindow int
	// Shards partitions traffic by (engine, GPU) key onto this many
	// dedicated shards — each with its own cache, coalescing table, and
	// worker pool — assigned by consistent hashing. Zero or one keeps the
	// single-lock-domain-per-engine layout.
	Shards int
	// ShardWorkers sizes each shard's worker pool. Zero derives it from
	// Workers/Shards (minimum 1). Ignored when Shards <= 1.
	ShardWorkers int
	// ShardQueue bounds how many requests may be in flight on one shard
	// before arrivals are rejected with ErrSaturated. Zero means
	// DefaultShardQueue; negative disables backpressure. Ignored when
	// Shards <= 1.
	ShardQueue int
}

// DefaultCacheSize holds the working set of several large transformer
// graphs (a GPT-3 inference graph has a few thousand kernels but only
// dozens of unique shapes).
const DefaultCacheSize = 4096

// Service is a thread-safe prediction server. It layers three mechanisms
// over every registered engine:
//
//  1. a per-engine LRU prediction cache keyed by (kernel fingerprint, GPU
//     name) plus the engine's state generation, so retraining invalidates
//     cached forecasts without a manual flush;
//  2. request coalescing: concurrent misses on the same key share one
//     backend evaluation instead of duplicating it;
//  3. a bounded worker pool shared across engines so graph fan-out cannot
//     oversubscribe the CPU.
//
// Requests name an engine (or take the default); engines are looked up in
// the registry per request, so engines registered after the service starts
// become routable immediately.
type Service struct {
	reg       *predict.Registry
	def       string
	cacheSize int
	sem       chan struct{} // legacy shared worker pool (Shards <= 1)
	router    *shardRouter  // non-nil when sharded
	lat       *latencyWindow
	start     time.Time

	// regVersion is the registry version the routing state was built
	// against; drift triggers Rebalance (see shard.go). epoch numbers the
	// engine states ever created, namespacing each one's cache entries.
	regVersion atomic.Uint64
	epoch      atomic.Uint64
	// recorder, when set, appends every newly served key to a workload
	// trace; warmup holds the report of the last trace replay (trace.go).
	// warming is true while WarmFromTrace replays — replay traffic must not
	// count as "requested" for trace compaction (warmup runs before the
	// listener opens, so it never overlaps live traffic).
	recorder atomic.Pointer[TraceRecorder]
	warmup   atomic.Pointer[WarmupStats]
	warming  atomic.Bool
	// observer, when set, accepts measured kernel latencies on /v2/observe
	// and tracks prediction drift (observe.go).
	observer atomic.Pointer[observe.Monitor]
	// planner, when set, serves /v2/plan what-if sweeps (plan.go).
	planner atomic.Pointer[plan.Manager]

	emu     sync.RWMutex
	engines map[string]*engineState

	requests       atomic.Uint64
	coalesced      atomic.Uint64
	errors         atomic.Uint64
	graphs         atomic.Uint64
	batches        atomic.Uint64
	batchedKernels atomic.Uint64
	rejected       atomic.Uint64
	inFlightNow    atomic.Int64

	// retiredHits/retiredMisses preserve the cache counter history of
	// per-engine partitions discarded by Rebalance (unsharded layout), so
	// the aggregate hit/miss counters — exported to Prometheus as
	// monotonic counters — never go backwards when an engine unregisters.
	retiredHits   atomic.Uint64
	retiredMisses atomic.Uint64
}

// engineState is one engine's routing entry and its slice of the
// counters. Where its traffic's cache, coalescing table, and worker pool
// live depends on the layout: unsharded, the engine owns one partition
// (part); sharded, the router assigns each of the engine's (engine, GPU)
// keys to a shard and part is nil.
type engineState struct {
	name     string
	eng      predict.Engine
	affinity string // ShardAffinity, resolved once at registration
	// prefix namespaces this state's cache entries: the engine name plus a
	// per-state epoch. The epoch makes a replaced engine (unregister +
	// re-register under the same name) a distinct key space, so a backend
	// evaluation in flight across a rebalance caches under the old state's
	// prefix and can never be served by the replacement — even for engines
	// that track no generation.
	prefix string
	part   *partition // legacy per-engine partition; nil when sharded

	requests    atomic.Uint64
	errors      atomic.Uint64
	coalesced   atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

// key fingerprints a prediction request with the same fingerprint the
// predictor's tile cache and the tile DB memo use, prefixed with the
// engine state's prefix (shard caches are shared across engines, so the
// engine — and its registration epoch — is part of request identity) and
// its state generation when it tracks one — so a retrain makes every
// prior entry unreachable (it then ages out of the LRU) instead of being
// served stale.
func (es *engineState) key(k kernels.Kernel, g gpu.Spec) string {
	key := tile.QueryKey(k, g)
	if gen, ok := es.eng.(predict.Generational); ok {
		key = "g" + strconv.FormatUint(gen.Generation(), 10) + "|" + key
	}
	return es.prefix + key
}

// partition resolves the serving partition for one (engine, GPU) request:
// the engine's own partition when unsharded, else the consistent-hash
// shard owning the (affinity, GPU) key.
func (s *Service) partition(es *engineState, g gpu.Spec) *partition {
	if s.router == nil {
		return es.part
	}
	return s.router.shardFor(es.affinity, g.Name)
}

// partitions returns every partition currently provisioned: the shard set
// when sharded, else the per-engine partitions created so far.
func (s *Service) partitions() []*partition {
	if s.router != nil {
		return s.router.shards
	}
	out := make([]*partition, 0)
	for _, es := range s.states() {
		out = append(out, es.part)
	}
	return out
}

// inflightCall is one in-progress backend prediction that later arrivals
// for the same key wait on.
type inflightCall struct {
	done chan struct{}
	res  predict.Result
	err  error
}

// New returns a Service wrapping a single legacy backend: pred is adapted
// into an engine registered under its own name, which becomes the default.
// Existing callers keep the exact pre-registry behavior.
func New(pred KernelPredictor, cfg Config) *Service {
	if pred == nil {
		panic("serve: nil predictor")
	}
	reg := predict.NewRegistry()
	eng := predict.AdaptBackend(pred)
	reg.MustRegister(eng)
	return NewMulti(reg, eng.Name(), cfg)
}

// NewMulti returns a Service routing across every engine in reg, serving
// defaultEngine when a request does not name one.
func NewMulti(reg *predict.Registry, defaultEngine string, cfg Config) *Service {
	if reg == nil {
		panic("serve: nil registry")
	}
	if _, err := reg.Get(defaultEngine); err != nil {
		panic(fmt.Sprintf("serve: default engine not registered: %v", err))
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		reg:       reg,
		def:       defaultEngine,
		cacheSize: size,
		sem:       make(chan struct{}, workers),
		lat:       newLatencyWindow(cfg.LatencyWindow),
		start:     time.Now(),
		engines:   map[string]*engineState{},
	}
	if cfg.Shards > 1 {
		perShard := cfg.ShardWorkers
		if perShard <= 0 {
			perShard = workers / cfg.Shards
			if perShard < 1 {
				perShard = 1
			}
		}
		queue := cfg.ShardQueue
		switch {
		case queue == 0:
			queue = DefaultShardQueue
		case queue < 0:
			queue = 0 // backpressure disabled
		}
		s.router = newShardRouter(cfg.Shards, size, perShard, queue)
	}
	s.regVersion.Store(reg.Version())
	return s
}

// Registry returns the engine registry the service routes across.
func (s *Service) Registry() *predict.Registry { return s.reg }

// DefaultEngine returns the engine name served when a request names none.
func (s *Service) DefaultEngine() string { return s.def }

// Backend returns the default engine's name — the pre-registry notion of
// "the backend".
func (s *Service) Backend() string { return s.def }

// engine resolves name ("" means the default) to its serving state,
// creating the state on first use so engines registered after the service
// started are routable, and rebalancing first when the registry changed
// since the routing state was built.
func (s *Service) engine(name string) (*engineState, error) {
	s.maybeRebalance()
	if name == "" {
		name = s.def
	}
	s.emu.RLock()
	es, ok := s.engines[name]
	s.emu.RUnlock()
	if ok {
		return es, nil
	}
	if _, err := s.reg.Get(name); err != nil {
		return nil, err
	}
	s.emu.Lock()
	defer s.emu.Unlock()
	if es, ok := s.engines[name]; ok {
		return es, nil
	}
	// Re-resolve under the state lock: Rebalance scans s.engines under the
	// same lock, so an engine unregistered between the lock-free Get above
	// and this insert is either caught here (Get fails) or inserted before
	// the version-drift rebalance that will drop it — it can never be
	// inserted after that rebalance already ran and stay routable forever.
	eng, err := s.reg.Get(name)
	if err != nil {
		return nil, err
	}
	es = &engineState{
		name:     name,
		eng:      eng,
		affinity: predict.ShardAffinity(eng),
		prefix:   name + "#" + strconv.FormatUint(s.epoch.Add(1), 10) + "|",
	}
	if s.router == nil {
		es.part = newPartition(-1, s.cacheSize, s.sem, 0)
	}
	s.engines[name] = es
	return es, nil
}

// states returns the engine partitions created so far, sorted by name.
func (s *Service) states() []*engineState {
	s.emu.RLock()
	out := make([]*engineState, 0, len(s.engines))
	for _, es := range s.engines {
		out = append(out, es)
	}
	s.emu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// FlushCache drops every cached prediction in every partition (hit/miss
// counters are kept). Generation-keyed engines invalidate automatically on
// retrain; the flush remains for backends that track no generation.
func (s *Service) FlushCache() {
	for _, p := range s.partitions() {
		p.cache.Flush()
	}
}

// InvalidateEngine drops every cached forecast of the engine named name
// from every partition, returning how many entries were dropped. It is
// the cluster layer's invalidation hook: a peer process reporting a newer
// state generation for this engine means locally cached forecasts may be
// stale even though the local engine's own generation — the one cache
// keys fold in — never moved. An engine no traffic has touched has
// nothing cached and drops zero.
func (s *Service) InvalidateEngine(name string) int {
	s.emu.RLock()
	es, ok := s.engines[name]
	s.emu.RUnlock()
	if !ok {
		return 0
	}
	n := 0
	for _, p := range s.partitions() {
		n += p.cache.DropPrefix(es.prefix)
	}
	return n
}

// PredictKernel forecasts the latency of kernel k on device g in
// milliseconds with the default engine, serving from cache when possible
// and coalescing concurrent identical requests. It is safe for arbitrary
// concurrent use.
func (s *Service) PredictKernel(k kernels.Kernel, g gpu.Spec) (float64, error) {
	res, err := s.PredictKernelEngine(context.Background(), "", k, g)
	return res.Latency, err
}

// PredictKernelEngine is PredictKernel routed to a named engine (""
// selects the default), with the full structured Result and request
// context. Unknown engine names fail before any counters move.
func (s *Service) PredictKernelEngine(ctx context.Context, engine string, k kernels.Kernel, g gpu.Spec) (predict.Result, error) {
	es, err := s.engine(engine)
	if err != nil {
		return predict.Result{}, err
	}
	return s.predictOne(ctx, es, k, g)
}

// predictOne is the single-kernel serving path against one engine's
// partition: admit past backpressure, then cache, coalesce, and evaluate
// under the partition's worker pool.
func (s *Service) predictOne(ctx context.Context, es *engineState, k kernels.Kernel, g gpu.Spec) (predict.Result, error) {
	// Admission runs before any accounting: a rejection returns in
	// microseconds, and letting it into the request counters and the
	// latency window would make an overloaded service look fast and busy
	// on dashboards at exactly the moment it is shedding load. Rejections
	// count only in rejected (aggregate and per-shard).
	p := s.partition(es, g)
	if !p.admit() {
		s.rejected.Add(1)
		return predict.Result{}, fmt.Errorf("serve: shard %d over %d requests in flight predicting %s: %w",
			p.shard, p.maxInFlight, k.Label(), ErrSaturated)
	}
	defer p.release()

	start := time.Now()
	s.requests.Add(1)
	es.requests.Add(1)
	p.requests.Add(1)
	s.inFlightNow.Add(1)
	defer func() {
		s.inFlightNow.Add(-1)
		s.lat.Observe(time.Since(start))
	}()

	if k.Category() == kernels.CatNetwork {
		s.errors.Add(1)
		es.errors.Add(1)
		p.errors.Add(1)
		return predict.Result{}, fmt.Errorf("serve: network kernel %s is priced by the distributed layer, not the kernel predictor", k.Label())
	}

	// A caller that is already gone fails fast, before it can become the
	// leader of a shared evaluation.
	if err := ctx.Err(); err != nil {
		s.errors.Add(1)
		es.errors.Add(1)
		p.errors.Add(1)
		return predict.Result{}, err
	}

	key := es.key(k, g)
	if v, ok := p.cache.Get(key); ok {
		es.cacheHits.Add(1)
		s.touchTrace(es.name, k, g)
		return v, nil
	}
	es.cacheMisses.Add(1)

	p.mu.Lock()
	if call, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		s.coalesced.Add(1)
		es.coalesced.Add(1)
		p.coalesced.Add(1)
		<-call.done
		if call.err != nil {
			s.errors.Add(1)
			es.errors.Add(1)
			p.errors.Add(1)
		}
		return call.res, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	p.inflight[key] = call
	p.mu.Unlock()

	s.runBackend(ctx, es, p, call, key, k, g)

	if call.err != nil {
		s.errors.Add(1)
		es.errors.Add(1)
		p.errors.Add(1)
		return predict.Result{}, call.err
	}
	p.cache.Put(key, call.res)
	s.recordTrace(es.name, k, g)
	return call.res, nil
}

// runBackend executes the engine prediction for a registered in-flight
// call. Unregistering the call and closing done run even if the engine
// panics (callEngine converts the panic to an error), so both the leader
// and every coalesced waiter fail cleanly instead of wedging the key
// forever.
func (s *Service) runBackend(ctx context.Context, es *engineState, p *partition, call *inflightCall, key string, k kernels.Kernel, g gpu.Spec) {
	defer func() {
		p.mu.Lock()
		delete(p.inflight, key)
		p.mu.Unlock()
		close(call.done)
	}()
	call.res, call.err = s.callEngine(ctx, es, p, k, g)
}

// callEngine runs one per-kernel engine prediction under a slot of the
// partition's worker pool, converting an engine panic into an error with
// the slot released. It is the shared primitive of the single-kernel path
// and the batch fan-out for engines without native batch support.
//
// The evaluation runs detached from the caller's cancellation: in-flight
// calls are shared by coalescing, so cancelling the leader's request must
// not poison the result every coalesced waiter receives (the classic
// singleflight-with-context bug). Cancelled callers fail fast before
// leading or joining an evaluation instead.
func (s *Service) callEngine(ctx context.Context, es *engineState, p *partition, k kernels.Kernel, g gpu.Spec) (res predict.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = predict.Result{}
			err = fmt.Errorf("serve: backend panic predicting %s: %v", k.Label(), r)
		}
	}()
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	return es.eng.PredictKernel(context.WithoutCancel(ctx), predict.Request{Kernel: k, GPU: g})
}

// PredictGraph forecasts the end-to-end latency of gr on g with the
// default engine under the paper's sequential-execution assumption.
// Kernels that fail to predict contribute their memory-bound fallback,
// mirroring core.Predictor.PredictGraph.
func (s *Service) PredictGraph(gr *graph.Graph, g gpu.Spec) float64 {
	lat, _, _ := s.PredictGraphEngine(context.Background(), "", gr, g)
	return lat
}

// PredictGraphEngine is PredictGraph routed to a named engine ("" selects
// the default). It routes every predictable kernel through the batched
// prediction machinery (cache hits served directly, misses collapsed into
// one backend round, identical kernels coalesced) and reports how the
// forecast was assembled: the error is non-nil when any kernel fell back
// to the memory-bound estimate, with the report counting them — failures
// are surfaced, not silently absorbed into the total.
func (s *Service) PredictGraphEngine(ctx context.Context, engine string, gr *graph.Graph, g gpu.Spec) (float64, core.GraphReport, error) {
	es, err := s.engine(engine)
	if err != nil {
		return 0, core.GraphReport{}, err
	}
	s.graphs.Add(1)
	var rep core.GraphReport
	ks := make([]kernels.Kernel, 0, len(gr.Nodes))
	for _, n := range gr.Nodes {
		if n.Kernel.Category() == kernels.CatNetwork {
			rep.Network++ // network ops are priced by the distributed layer
			continue
		}
		ks = append(ks, n.Kernel)
	}
	outs, err := s.predictMany(ctx, es, ks, g)
	if err != nil {
		// Whole-batch rejection (saturated shard): the forecast never ran,
		// so there is no total to fold — callers surface backpressure
		// instead of serving a fallback-assembled number.
		return 0, rep, err
	}
	total, err := predict.FoldOutcomes(outs, ks, g, &rep)
	return total, rep, err
}

// Stats is a point-in-time snapshot of the aggregate service counters,
// exposed on /v1/stats and consumed by the throughput benchmark. Cache
// counters sum over every engine partition.
type Stats struct {
	Backend        string  `json:"backend"`
	Requests       uint64  `json:"requests"`
	GraphRequests  uint64  `json:"graph_requests"`
	BatchRequests  uint64  `json:"batch_requests"`
	BatchedKernels uint64  `json:"batched_kernels"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheLen       int     `json:"cache_len"`
	HitRate        float64 `json:"hit_rate"`
	Coalesced      uint64  `json:"coalesced"`
	Errors         uint64  `json:"errors"`
	Rejected       uint64  `json:"rejected"`
	Shards         int     `json:"shard_count"` // "shards" is the per-shard section on /v2/stats
	InFlight       int64   `json:"in_flight"`
	LatencyP50ms   float64 `json:"latency_p50_ms"`
	LatencyP90ms   float64 `json:"latency_p90_ms"`
	LatencyP99ms   float64 `json:"latency_p99_ms"`
	UptimeSec      float64 `json:"uptime_sec"`
}

// EngineStats is one engine partition's slice of the counters, exposed on
// /v2/stats and as labeled Prometheus series.
type EngineStats struct {
	Engine      string  `json:"engine"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Coalesced   uint64  `json:"coalesced"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	CacheLen    int     `json:"cache_len"`
	HitRate     float64 `json:"hit_rate"`
	NativeBatch bool    `json:"native_batch"`
	Generation  uint64  `json:"generation"`
}

// cacheTotals sums cache counters across live partitions plus the retired
// history, under the same lock Rebalance folds and removes under — a
// concurrent rebalance can therefore never be observed half-applied
// (partition gone but its history not yet retired, or counted twice),
// which keeps the Prometheus-exported aggregate counters monotonic.
func (s *Service) cacheTotals() (hits, misses uint64, length int) {
	s.emu.RLock()
	defer s.emu.RUnlock()
	hits, misses = s.retiredHits.Load(), s.retiredMisses.Load()
	if s.router != nil {
		for _, p := range s.router.shards {
			h, m := p.cache.Counters()
			hits += h
			misses += m
			length += p.cache.Len()
		}
		return hits, misses, length
	}
	for _, es := range s.engines {
		h, m := es.part.cache.Counters()
		hits += h
		misses += m
		length += es.part.cache.Len()
	}
	return hits, misses, length
}

// Stats returns the current aggregate counters. HitRate is
// hits/(hits+misses), 0 before any traffic.
func (s *Service) Stats() Stats {
	hits, misses, length := s.cacheTotals()
	ps := s.lat.Percentiles(0.50, 0.90, 0.99)
	st := Stats{
		Backend:        s.def,
		Requests:       s.requests.Load(),
		GraphRequests:  s.graphs.Load(),
		BatchRequests:  s.batches.Load(),
		BatchedKernels: s.batchedKernels.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheLen:       length,
		Coalesced:      s.coalesced.Load(),
		Errors:         s.errors.Load(),
		Rejected:       s.rejected.Load(),
		Shards:         s.NumShards(),
		InFlight:       s.inFlightNow.Load(),
		LatencyP50ms:   ps[0],
		LatencyP90ms:   ps[1],
		LatencyP99ms:   ps[2],
		UptimeSec:      time.Since(s.start).Seconds(),
	}
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st
}

// engineCacheLen counts the cache entries the engine currently owns: its
// partition's full population when unsharded, else its keys' slice of
// every shard cache. The sharded case is an O(entries) scan under each
// shard's cache lock — acceptable because it runs only on stats/metrics
// reads against bounded caches; if scrape frequency ever makes it hurt,
// replace with per-engine resident counters maintained on Put/evict.
func (s *Service) engineCacheLen(es *engineState) int {
	if s.router == nil {
		return es.part.cache.Len()
	}
	n := 0
	for _, p := range s.router.shards {
		n += p.cache.LenPrefix(es.prefix)
	}
	return n
}

// EngineStats returns per-engine counters for every engine traffic has
// touched, sorted by engine name.
func (s *Service) EngineStats() []EngineStats {
	var out []EngineStats
	for _, es := range s.states() {
		hits, misses := es.cacheHits.Load(), es.cacheMisses.Load()
		st := EngineStats{
			Engine:      es.name,
			Requests:    es.requests.Load(),
			Errors:      es.errors.Load(),
			Coalesced:   es.coalesced.Load(),
			CacheHits:   hits,
			CacheMisses: misses,
			CacheLen:    s.engineCacheLen(es),
			NativeBatch: predict.NativeBatch(es.eng),
			Generation:  predict.Generation(es.eng),
		}
		if total := hits + misses; total > 0 {
			st.HitRate = float64(hits) / float64(total)
		}
		out = append(out, st)
	}
	return out
}
