package serve

import (
	"container/list"
	"strings"
	"sync"

	"neusight/internal/predict"
)

// lruCache is a thread-safe fixed-capacity LRU map from prediction key to
// structured forecast result. It is the serving layer's first line of defense: DNN
// graphs repeat identical kernels across layers and users repeat identical
// workload/GPU queries, so the hit rate on realistic traffic is high.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element

	hits   uint64
	misses uint64
}

type lruEntry struct {
	key string
	val predict.Result
}

// newLRUCache returns a cache holding at most capacity entries. A capacity
// of zero or less disables caching (every Get misses, Put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *lruCache) Get(key string) (predict.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return predict.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) Put(key string, val predict.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry).key)
		}
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

// DropPrefix removes every entry whose key starts with prefix, returning
// how many were dropped. Shard rebalancing uses it to evict the cache
// slice of an unregistered engine (keys are engine-name-prefixed) without
// disturbing the entries of engines still serving.
func (c *lruCache) DropPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*lruEntry); strings.HasPrefix(e.key, prefix) {
			c.order.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// LenPrefix counts the resident entries whose key starts with prefix —
// the per-engine slice of a shard cache shared across engines.
func (c *lruCache) LenPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; el = el.Next() {
		if strings.HasPrefix(el.Value.(*lruEntry).key, prefix) {
			n++
		}
	}
	return n
}

// Flush removes every entry, preserving the hit/miss counters.
func (c *lruCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the cumulative hit and miss counts.
func (c *lruCache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
