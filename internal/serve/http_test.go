package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// newTestServer spins an httptest server around a stub-backed service.
func newTestServer(t *testing.T) (*httptest.Server, *stubPredictor) {
	t.Helper()
	stub := &stubPredictor{latency: 4.25}
	ts := httptest.NewServer(NewHandler(New(stub, Config{CacheSize: 64})))
	t.Cleanup(ts.Close)
	return ts, stub
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPPredictKernelRoundTrip(t *testing.T) {
	ts, stub := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
		Op: "bmm", B: 8, M: 512, K: 512, N: 512, DType: "fp16", GPU: "H100",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	kr := decode[KernelResponse](t, resp)
	if kr.LatencyMs != 4.25 {
		t.Errorf("latency = %v, want 4.25", kr.LatencyMs)
	}
	if kr.GPU != "H100" || kr.FLOPs <= 0 || kr.MemBytes <= 0 {
		t.Errorf("response incomplete: %+v", kr)
	}

	// Identical request again: served from cache, backend untouched.
	resp = postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
		Op: "bmm", B: 8, M: 512, K: 512, N: 512, DType: "fp16", GPU: "H100",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("backend calls = %d, want 1 (second request must hit cache)", got)
	}
}

func TestHTTPPredictKernelValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		req  KernelRequest
		want int
	}{
		{"unknown op", KernelRequest{Op: "conv9d", B: 1, M: 1, GPU: "V100"}, http.StatusBadRequest},
		{"nonpositive dim", KernelRequest{Op: "bmm", B: 0, M: 4, K: 4, N: 4, GPU: "V100"}, http.StatusBadRequest},
		{"unknown gpu", KernelRequest{Op: "softmax", B: 4, M: 4, GPU: "TPUv9"}, http.StatusBadRequest},
		{"unknown dtype", KernelRequest{Op: "softmax", B: 4, M: 4, DType: "int4", GPU: "V100"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/predict/kernel", c.req)
			defer resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.want)
			}
		})
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/predict/kernel")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPPredictGraphRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/predict/graph", GraphRequest{
		Workload: "BERT-Large", GPU: "V100", Batch: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	gr := decode[GraphResponse](t, resp)
	if gr.Kernels <= 0 || gr.LatencyMs <= 0 || gr.TotalFLOPs <= 0 {
		t.Errorf("response incomplete: %+v", gr)
	}
	if gr.Workload != "BERT-Large" || gr.Batch != 2 {
		t.Errorf("echo fields wrong: %+v", gr)
	}

	resp = postJSON(t, ts.URL+"/v1/predict/graph", GraphRequest{Workload: "NoSuchNet", GPU: "V100"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	h := decode[map[string]string](t, resp)
	if h["status"] != "ok" || h["backend"] != "stub" {
		t.Errorf("healthz = %v", h)
	}
}

func TestHTTPStats(t *testing.T) {
	ts, _ := newTestServer(t)
	// Generate one miss then one hit so the stats are non-trivial.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
			Op: "layernorm", B: 64, M: 1024, GPU: "V100",
		})
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	st := decode[Stats](t, resp)
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 hit, 1 miss", st)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate)
	}
	if st.Backend != "stub" || st.UptimeSec < 0 {
		t.Errorf("stats metadata wrong: %+v", st)
	}
}

func TestHTTPPredictBatchRoundTrip(t *testing.T) {
	ts, stub := newTestServer(t)
	req := BatchRequest{
		GPU: "H100",
		Kernels: []KernelRequest{
			{Op: "bmm", B: 4, M: 256, K: 256, N: 256},
			{Op: "softmax", B: 64, M: 512},
			{Op: "conv9d", B: 1, M: 1},                // malformed: fails in place
			{Op: "bmm", B: 4, M: 256, K: 256, N: 256}, // duplicate of [0]
		},
	}
	resp := postJSON(t, ts.URL+"/v1/predict/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	br := decode[BatchResponse](t, resp)
	if br.GPU != "H100" || br.Count != 4 || len(br.Items) != 4 {
		t.Fatalf("batch response shape wrong: %+v", br)
	}
	for _, i := range []int{0, 1, 3} {
		if br.Items[i].Error != "" || br.Items[i].LatencyMs != 4.25 {
			t.Errorf("item %d = %+v, want latency 4.25", i, br.Items[i])
		}
		if br.Items[i].Kernel == "" {
			t.Errorf("item %d missing kernel label", i)
		}
	}
	if br.Items[2].Error == "" {
		t.Error("malformed item must carry an in-place error")
	}
	// Duplicate + dedup: only two unique kernels reach the backend.
	if got := stub.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2", got)
	}
}

func TestHTTPPredictBatchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		req  BatchRequest
		want int
	}{
		{"empty batch", BatchRequest{GPU: "V100"}, http.StatusBadRequest},
		{"unknown gpu", BatchRequest{GPU: "TPUv9", Kernels: []KernelRequest{{Op: "softmax", B: 1, M: 1}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/predict/batch", c.req)
			defer resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.want)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/predict/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestHTTPMetricsExpositionFormat asserts the Prometheus text format
// contract: content type 0.0.4, a "# HELP" and "# TYPE" line preceding
// every sample, parseable float values, and the serve counters present
// with the values /v1/stats reports.
func TestHTTPMetricsExpositionFormat(t *testing.T) {
	ts, _ := newTestServer(t)
	// One miss then one hit so counters are non-trivial.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
			Op: "layernorm", B: 64, M: 1024, GPU: "V100",
		})
		resp.Body.Close()
	}
	// And one batch so the batch metrics move.
	resp := postJSON(t, ts.URL+"/v1/predict/batch", BatchRequest{
		GPU: "V100", Kernels: []KernelRequest{{Op: "softmax", B: 8, M: 128}, {Op: "softmax", B: 16, M: 128}},
	})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Errorf("content type = %q, want %q", ct, MetricsContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples := map[string]float64{}
	var lastHelp, lastType string
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.Fields(line)[2]
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			lastType = f[2]
			if typ := f[3]; typ != "counter" && typ != "gauge" {
				t.Errorf("metric %s has invalid type %q", lastType, typ)
			}
			if lastType != lastHelp {
				t.Errorf("TYPE line for %s not paired with HELP line (%s)", lastType, lastHelp)
			}
		default:
			f := strings.Fields(line)
			if len(f) != 2 {
				t.Fatalf("malformed sample line %q", line)
			}
			// Engine-labeled samples carry {engine="..."}; the family name
			// is everything before the label set.
			family := f[0]
			if i := strings.IndexByte(family, '{'); i >= 0 {
				family = family[:i]
			}
			if family != lastType {
				t.Errorf("sample %s not preceded by its TYPE line (%s)", f[0], lastType)
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				t.Fatalf("sample %q has unparseable value: %v", line, err)
			}
			samples[f[0]] = v
		}
	}

	want := map[string]float64{
		"neusight_requests_total":        4, // 2 singles + 2 batched
		"neusight_cache_hits_total":      1,
		"neusight_cache_misses_total":    3,
		"neusight_batch_requests_total":  1,
		"neusight_batched_kernels_total": 2,
		"neusight_batch_size_avg":        2,
		"neusight_errors_total":          0,
		"neusight_inflight_requests":     0,
	}
	for name, v := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if _, ok := samples["neusight_uptime_seconds"]; !ok {
		t.Error("uptime gauge missing")
	}
	// The engine-labeled series must mirror the single engine's share of
	// the traffic — here all of it.
	wantEngine := map[string]float64{
		`neusight_engine_requests_total{engine="stub"}`:     4,
		`neusight_engine_cache_hits_total{engine="stub"}`:   1,
		`neusight_engine_cache_misses_total{engine="stub"}`: 3,
		`neusight_engine_errors_total{engine="stub"}`:       0,
	}
	for name, v := range wantEngine {
		got, ok := samples[name]
		if !ok {
			t.Errorf("labeled metric %s missing from exposition", name)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}

// TestHTTPRequestLimits covers the resource bounds: oversized bodies and
// oversized batches are rejected with 400 before any backend work.
func TestHTTPRequestLimits(t *testing.T) {
	ts, stub := newTestServer(t)

	// A batch over the kernel cap.
	over := BatchRequest{GPU: "V100", Kernels: make([]KernelRequest, MaxBatchKernels+1)}
	for i := range over.Kernels {
		over.Kernels[i] = KernelRequest{Op: "softmax", B: 1 + i, M: 8}
	}
	resp := postJSON(t, ts.URL+"/v1/predict/batch", over)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", resp.StatusCode)
	}
	if got := stub.calls.Load(); got != 0 {
		t.Errorf("oversized batch reached the backend (%d calls)", got)
	}

	// A body over the byte cap: valid JSON prefix, then megabytes of junk.
	big := bytes.NewBufferString(`{"gpu":"V100","kernels":[{"op":"softmax","b":1,"m":8}],"pad":"`)
	big.Write(bytes.Repeat([]byte("x"), maxBodyBytes+1024))
	big.WriteString(`"}`)
	r, err := http.Post(ts.URL+"/v1/predict/batch", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", r.StatusCode)
	}
	e := decode[map[string]string](t, r)
	if !strings.Contains(e["error"], "byte limit") {
		t.Errorf("413 body does not name the limit: %v", e)
	}
}

// TestHTTPDimensionAndBatchBounds: absurd dimensions and graph batch
// values must be rejected with 400, not overflow int arithmetic into a
// handler panic (graph construction multiplies batch into token counts).
func TestHTTPDimensionAndBatchBounds(t *testing.T) {
	ts, _ := newTestServer(t)

	// Kernel dimension over maxDim.
	resp := postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
		Op: "bmm", B: 1, M: maxDim + 1, K: 64, N: 64, GPU: "V100",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized dimension status = %d, want 400", resp.StatusCode)
	}

	// Graph batch large enough that batch*SeqLen would overflow int64.
	resp = postJSON(t, ts.URL+"/v1/predict/graph", GraphRequest{
		Workload: "GPT3-XL", GPU: "V100", Batch: 1 << 62,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("overflowing graph batch status = %d, want 400", resp.StatusCode)
	}

	// A legitimate large-but-sane graph batch still works.
	resp = postJSON(t, ts.URL+"/v1/predict/graph", GraphRequest{
		Workload: "BERT-Large", GPU: "V100", Batch: 64,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("sane graph batch status = %d, want 200", resp.StatusCode)
	}
}
