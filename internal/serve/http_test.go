package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// newTestServer spins an httptest server around a stub-backed service.
func newTestServer(t *testing.T) (*httptest.Server, *stubPredictor) {
	t.Helper()
	stub := &stubPredictor{latency: 4.25}
	ts := httptest.NewServer(NewHandler(New(stub, Config{CacheSize: 64})))
	t.Cleanup(ts.Close)
	return ts, stub
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPPredictKernelRoundTrip(t *testing.T) {
	ts, stub := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
		Op: "bmm", B: 8, M: 512, K: 512, N: 512, DType: "fp16", GPU: "H100",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	kr := decode[KernelResponse](t, resp)
	if kr.LatencyMs != 4.25 {
		t.Errorf("latency = %v, want 4.25", kr.LatencyMs)
	}
	if kr.GPU != "H100" || kr.FLOPs <= 0 || kr.MemBytes <= 0 {
		t.Errorf("response incomplete: %+v", kr)
	}

	// Identical request again: served from cache, backend untouched.
	resp = postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
		Op: "bmm", B: 8, M: 512, K: 512, N: 512, DType: "fp16", GPU: "H100",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("backend calls = %d, want 1 (second request must hit cache)", got)
	}
}

func TestHTTPPredictKernelValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		req  KernelRequest
		want int
	}{
		{"unknown op", KernelRequest{Op: "conv9d", B: 1, M: 1, GPU: "V100"}, http.StatusBadRequest},
		{"nonpositive dim", KernelRequest{Op: "bmm", B: 0, M: 4, K: 4, N: 4, GPU: "V100"}, http.StatusBadRequest},
		{"unknown gpu", KernelRequest{Op: "softmax", B: 4, M: 4, GPU: "TPUv9"}, http.StatusBadRequest},
		{"unknown dtype", KernelRequest{Op: "softmax", B: 4, M: 4, DType: "int4", GPU: "V100"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/predict/kernel", c.req)
			defer resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.want)
			}
		})
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/predict/kernel")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPPredictGraphRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/predict/graph", GraphRequest{
		Workload: "BERT-Large", GPU: "V100", Batch: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	gr := decode[GraphResponse](t, resp)
	if gr.Kernels <= 0 || gr.LatencyMs <= 0 || gr.TotalFLOPs <= 0 {
		t.Errorf("response incomplete: %+v", gr)
	}
	if gr.Workload != "BERT-Large" || gr.Batch != 2 {
		t.Errorf("echo fields wrong: %+v", gr)
	}

	resp = postJSON(t, ts.URL+"/v1/predict/graph", GraphRequest{Workload: "NoSuchNet", GPU: "V100"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	h := decode[map[string]string](t, resp)
	if h["status"] != "ok" || h["backend"] != "stub" {
		t.Errorf("healthz = %v", h)
	}
}

func TestHTTPStats(t *testing.T) {
	ts, _ := newTestServer(t)
	// Generate one miss then one hit so the stats are non-trivial.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/predict/kernel", KernelRequest{
			Op: "layernorm", B: 64, M: 1024, GPU: "V100",
		})
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	st := decode[Stats](t, resp)
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 hit, 1 miss", st)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate)
	}
	if st.Backend != "stub" || st.UptimeSec < 0 {
		t.Errorf("stats metadata wrong: %+v", st)
	}
}
