package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// TraceEntry is one line of a workload trace: a (kernel, GPU, engine) key
// the service served, serialized with the operator's canonical name so a
// trace written by one build replays in another. Fused kernels carry their
// fusion accounting so replay rebuilds the exact cache key.
type TraceEntry struct {
	Engine string `json:"engine"`
	GPU    string `json:"gpu"`
	Op     string `json:"op"`
	B      int    `json:"b,omitempty"`
	M      int    `json:"m,omitempty"`
	K      int    `json:"k,omitempty"`
	N      int    `json:"n,omitempty"`
	DType  string `json:"dtype,omitempty"`

	// Idle counts completed replays (process runs) since the key was last
	// requested — maintained only by compacting recorders, which age it on
	// close and drop entries whose idle count reaches the bound.
	Idle int `json:"idle,omitempty"`

	Fused      bool     `json:"fused,omitempty"`
	FusedFLOPs float64  `json:"fused_flops,omitempty"`
	FusedBytes float64  `json:"fused_bytes,omitempty"`
	FusedOps   []string `json:"fused_ops,omitempty"`

	ConvInputElems float64 `json:"conv_input_elems,omitempty"`
}

// entryFromKernel serializes a served key.
func entryFromKernel(engine string, k kernels.Kernel, g gpu.Spec) TraceEntry {
	e := TraceEntry{
		Engine: engine, GPU: g.Name,
		Op: k.Op.String(), B: k.B, M: k.M, K: k.K, N: k.N,
		ConvInputElems: k.ConvInputElems,
	}
	if k.DType != kernels.FP32 {
		e.DType = k.DType.String()
	}
	if k.Fused {
		e.Fused = true
		e.FusedFLOPs = k.FusedFLOPs
		e.FusedBytes = k.FusedBytes
		for _, op := range k.FusedOps {
			e.FusedOps = append(e.FusedOps, op.String())
		}
	}
	return e
}

// Kernel reconstructs the kernel a trace entry describes.
func (e TraceEntry) Kernel() (kernels.Kernel, error) {
	op, ok := kernels.OpByName(e.Op)
	if !ok {
		return kernels.Kernel{}, fmt.Errorf("unknown op %q", e.Op)
	}
	k := kernels.Kernel{Op: op, B: e.B, M: e.M, K: e.K, N: e.N, ConvInputElems: e.ConvInputElems}
	switch e.DType {
	case "", "fp32":
	case "fp16":
		k.DType = kernels.FP16
	default:
		return kernels.Kernel{}, fmt.Errorf("unknown dtype %q", e.DType)
	}
	if e.Fused {
		k.Fused = true
		k.FusedFLOPs = e.FusedFLOPs
		k.FusedBytes = e.FusedBytes
		for _, name := range e.FusedOps {
			fop, ok := kernels.OpByName(name)
			if !ok {
				return kernels.Kernel{}, fmt.Errorf("unknown fused op %q", name)
			}
			k.FusedOps = append(k.FusedOps, fop)
		}
	}
	return k, nil
}

// maxTraceKeys bounds the recorder's in-memory dedup set. Real workloads
// have a few thousand unique (kernel, GPU, engine) keys; once the set is
// full the working profile is captured and further novel keys are dropped
// (counted, not silently).
const maxTraceKeys = 1 << 16

// entryKey fingerprints a trace entry the way the recorder deduplicates
// and the compactor matches requests: engine, kernel label, GPU.
func entryKey(engine, kernelLabel, gpuName string) string {
	return engine + "|" + kernelLabel + "@" + gpuName
}

// compactEntry is one loaded trace entry a compacting recorder tracks:
// the parsed entry plus its dedup key, so end-of-run aging can match it
// against the keys requested this run.
type compactEntry struct {
	key string
	e   TraceEntry
}

// TraceRecorder appends the unique keys a service serves to a JSONL
// workload trace — the persistent profile a later process replays to warm
// its caches (see Service.WarmFromTrace). Records happen on the cache-fill
// path (first successful serve of a key), so steady-state cache hits cost
// nothing; an in-memory set deduplicates refills after LRU eviction. Safe
// for concurrent use.
//
// A compacting recorder (NewTraceRecorderCompact) additionally ages the
// trace: keys not requested within the last compactAfter replays are
// dropped, so a trace that has accumulated keys from workloads nobody
// runs anymore stops re-warming them forever. Aging happens at the run
// boundaries — entries past the idle bound are pruned when the recorder
// opens, every key requested during the run is tracked (cache hits
// included, via Touch), and Close rewrites the trace with idle counts
// aged one replay.
type TraceRecorder struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	bw      *bufio.Writer
	seen    map[string]struct{}
	dropped uint64 // novel keys not recorded (dedup set full or write error)
	err     error  // first write error; recording stops permanently

	// loaded and fresh retain the recorder's entries in memory (bounded by
	// the same maxTraceKeys cap as the dedup set): the carried-over file
	// entries and the keys newly recorded this run. Compaction ages them;
	// Entries serves them to joining cluster members.
	loaded []compactEntry
	fresh  []TraceEntry

	// Compaction state, populated only when compactAfter > 0.
	compactAfter int
	agedOut      int                 // entries pruned at open (idle >= bound, duplicate, unreplayable)
	touched      map[string]struct{} // keys requested this run
}

// NewTraceRecorder opens (creating or appending to) the trace at path.
// Keys already present in the file seed the dedup set, so the
// record-into-the-same-file-you-warmed-from deployment loop does not grow
// the trace with duplicates across restarts (an LRU eviction + refill
// would otherwise re-append every key each run).
func NewTraceRecorder(path string) (*TraceRecorder, error) {
	return newTraceRecorder(path, 0)
}

// NewTraceRecorderCompact is NewTraceRecorder with trace compaction: keys
// not requested within the last compactAfter replays (process runs) age
// out of the trace. Entries already past the bound — or unreplayable in
// this build — are pruned immediately and the pruned file written back, so
// the compaction survives even a run that never closes cleanly.
func NewTraceRecorderCompact(path string, compactAfter int) (*TraceRecorder, error) {
	if compactAfter <= 0 {
		return nil, fmt.Errorf("serve: trace compaction bound must be positive, got %d", compactAfter)
	}
	return newTraceRecorder(path, compactAfter)
}

func newTraceRecorder(path string, compactAfter int) (*TraceRecorder, error) {
	r := &TraceRecorder{path: path, compactAfter: compactAfter, seen: map[string]struct{}{}}
	if compactAfter > 0 {
		r.touched = map[string]struct{}{}
	}
	if entries, _, err := ReadTrace(path); err == nil {
		for _, e := range entries {
			k, kerr := e.Kernel()
			if kerr != nil {
				if compactAfter > 0 {
					r.agedOut++ // unreplayable in this build: compact away
				}
				continue
			}
			key := entryKey(e.Engine, k.Label(), e.GPU)
			if _, dup := r.seen[key]; dup {
				if compactAfter > 0 {
					r.agedOut++ // duplicate from a pre-dedup writer
				}
				continue
			}
			if compactAfter > 0 && e.Idle >= compactAfter {
				r.agedOut++
				continue
			}
			r.seen[key] = struct{}{}
			r.loaded = append(r.loaded, compactEntry{key: key, e: e})
		}
	}
	if r.agedOut > 0 {
		// Write the pruned file back now, not at Close: the aged keys must
		// not resurrect if this run is killed before a clean shutdown.
		kept := make([]TraceEntry, len(r.loaded))
		for i, ce := range r.loaded {
			kept[i] = ce.e
		}
		if err := writeTraceFile(path, kept); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open trace: %w", err)
	}
	r.f, r.bw = f, bufio.NewWriter(f)
	return r, nil
}

// Record appends the (engine, kernel, GPU) key if it has not been recorded
// by this recorder before. For compacting recorders it also marks the key
// requested — a refill after LRU eviction is a request like any other.
func (r *TraceRecorder) Record(engine string, k kernels.Kernel, g gpu.Spec) {
	r.record(engine, k, g, true)
}

// record implements Record. touch=false records without marking the key
// requested: the cache fills of a warmup replay must stay invisible to
// compaction (a replay re-requests the whole trace by construction —
// counting it would keep every key alive forever), while still appending
// novel keys for the trace-rotation deployment loop.
func (r *TraceRecorder) record(engine string, k kernels.Kernel, g gpu.Spec, touch bool) {
	key := entryKey(engine, k.Label(), g.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if touch && r.compactAfter > 0 {
		r.touchLocked(key)
	}
	if _, ok := r.seen[key]; ok {
		return
	}
	if r.err != nil || len(r.seen) >= maxTraceKeys {
		r.dropped++
		return
	}
	r.seen[key] = struct{}{}
	entry := entryFromKernel(engine, k, g)
	line, err := json.Marshal(entry)
	if err == nil {
		_, err = r.bw.Write(append(line, '\n'))
	}
	if err != nil {
		r.err = err
		r.dropped++
		return
	}
	r.fresh = append(r.fresh, entry)
}

// Entries returns every entry this recorder knows: what it loaded from
// the trace file plus what it recorded this run. The copy is what
// Service.TraceJSONL serializes for joining cluster members.
func (r *TraceRecorder) Entries() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEntry, 0, len(r.loaded)+len(r.fresh))
	for _, ce := range r.loaded {
		out = append(out, ce.e)
	}
	out = append(out, r.fresh...)
	return out
}

// Touch marks the (engine, kernel, GPU) key as requested this run without
// recording it. The serving layer calls it on cache hits so compaction
// sees the full request profile, not just the cache-fill slice; a
// non-compacting recorder ignores it without taking the lock.
func (r *TraceRecorder) Touch(engine string, k kernels.Kernel, g gpu.Spec) {
	if r.compactAfter <= 0 {
		return
	}
	key := entryKey(engine, k.Label(), g.Name)
	r.mu.Lock()
	r.touchLocked(key)
	r.mu.Unlock()
}

// touchLocked inserts key into the touched set, bounded by the same
// maxTraceKeys cap as the dedup set — kernel shapes come from client
// request bodies, so the set of unique keys is workload-controlled and a
// long-lived process must not accumulate it without bound. Past the cap,
// novel keys go unmarked; the worst case is a kept trace entry aging one
// replay early, against unbounded heap growth. Callers hold r.mu.
func (r *TraceRecorder) touchLocked(key string) {
	if _, ok := r.touched[key]; ok {
		return
	}
	if len(r.touched) >= maxTraceKeys {
		return
	}
	r.touched[key] = struct{}{}
}

// Flush writes buffered entries through to the file.
func (r *TraceRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Dropped returns how many novel keys were not recorded (dedup set full
// or a write error).
func (r *TraceRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Close flushes and closes the trace file. A compacting recorder then
// rewrites it with one replay of aging applied: keys requested this run
// reset to idle 0, untouched keys age one replay, and keys reaching the
// idle bound are dropped.
func (r *TraceRecorder) Close() error {
	flushErr := r.Flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.f.Close(); err != nil {
		return err
	}
	if r.compactAfter > 0 {
		if err := r.compactLocked(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// compactLocked rewrites the trace with this run's aging folded in.
// Callers must hold r.mu and have closed the append handle.
func (r *TraceRecorder) compactLocked() error {
	out := make([]TraceEntry, 0, len(r.loaded)+len(r.fresh))
	for _, ce := range r.loaded {
		e := ce.e
		if _, ok := r.touched[ce.key]; ok {
			e.Idle = 0
		} else {
			e.Idle++
			if e.Idle >= r.compactAfter {
				continue
			}
		}
		out = append(out, e)
	}
	out = append(out, r.fresh...) // recorded this run: idle 0 by construction
	return writeTraceFile(r.path, out)
}

// writeTraceFile atomically replaces the trace at path with entries
// (write to a temporary file, then rename), so a crash mid-rewrite leaves
// either the old trace or the new one — never a torn file.
func writeTraceFile(path string, entries []TraceEntry) error {
	tmp := path + ".compact.tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: compact trace: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err == nil {
			_, err = bw.Write(append(line, '\n'))
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("serve: compact trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: compact trace: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: compact trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: compact trace: %w", err)
	}
	return nil
}

// TraceCompaction reports the compaction state of the attached trace
// recorder, exposed in the "trace_compaction" section of /v2/stats.
type TraceCompaction struct {
	// MaxIdleReplays is the bound K: keys not requested within the last K
	// replays (process runs) are dropped from the trace.
	MaxIdleReplays int `json:"max_idle_replays"`
	// Loaded counts the entries carried over from the trace at startup.
	Loaded int `json:"loaded"`
	// AgedOut counts the entries pruned at startup (idle at or past the
	// bound, duplicates, or unreplayable in this build).
	AgedOut int `json:"aged_out"`
	// Touched counts the unique keys requested so far this run — the set
	// that will reset to idle 0 when the trace is rewritten on shutdown.
	Touched int `json:"touched"`
}

// Compaction returns the recorder's compaction state, or nil for a
// non-compacting recorder.
func (r *TraceRecorder) Compaction() *TraceCompaction {
	if r.compactAfter <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &TraceCompaction{
		MaxIdleReplays: r.compactAfter,
		Loaded:         len(r.loaded),
		AgedOut:        r.agedOut,
		Touched:        len(r.touched),
	}
}

// TraceCompaction returns the attached recorder's compaction state, or
// nil when no compacting recorder is attached.
func (s *Service) TraceCompaction() *TraceCompaction {
	if r := s.recorder.Load(); r != nil {
		return r.Compaction()
	}
	return nil
}

// touchTrace is the serving-path hook for cache hits: compaction must see
// every requested key, not just the cache fills recordTrace covers. Hits
// produced by a warmup replay (duplicate keys within the trace) do not
// count as requests.
func (s *Service) touchTrace(engine string, k kernels.Kernel, g gpu.Spec) {
	if s.warming.Load() {
		return
	}
	if r := s.recorder.Load(); r != nil {
		r.Touch(engine, k, g)
	}
}

// SetTraceRecorder starts (non-nil) or stops (nil) recording served keys
// to r. The caller owns r's lifecycle: flush/close it after the service
// stops serving.
func (s *Service) SetTraceRecorder(r *TraceRecorder) { s.recorder.Store(r) }

// recordTrace is the serving-path hook: called after a key is served and
// cached for the first time. Fills made by a warmup replay are recorded
// (trace rotation depends on it) but not marked requested — only live
// traffic keeps a key alive under compaction.
func (s *Service) recordTrace(engine string, k kernels.Kernel, g gpu.Spec) {
	if r := s.recorder.Load(); r != nil {
		r.record(engine, k, g, !s.warming.Load())
	}
}

// ReadTrace parses the JSONL trace at path. Truncated, corrupt,
// unparseable, or absurdly long lines are skipped and counted — damage
// anywhere in the file (a torn append, binary corruption mid-file) must
// not void the valid profile before or after it.
func ReadTrace(path string) (entries []TraceEntry, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: open trace: %w", err)
	}
	defer f.Close()
	entries, skipped = readTraceEntries(f)
	return entries, skipped, nil
}

// readTraceEntries parses JSONL trace data from r with ReadTrace's
// damage tolerance. It is the shared core of file replay (ReadTrace) and
// peer-trace replay (Service.WarmFromTraceData).
func readTraceEntries(r io.Reader) (entries []TraceEntry, skipped int) {
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		line, isPrefix, readErr := br.ReadLine()
		if readErr != nil {
			// io.EOF is the clean end; any other read error truncates the
			// profile at the damage, counted once.
			if readErr != io.EOF {
				skipped++
			}
			break
		}
		if isPrefix {
			// A line longer than the read buffer is not a trace entry
			// (entries are a few hundred bytes): drain its remainder and
			// count one skip, then continue with the next line.
			skipped++
			for isPrefix && readErr == nil {
				_, isPrefix, readErr = br.ReadLine()
			}
			if readErr != nil {
				break
			}
			continue
		}
		if len(line) == 0 {
			continue
		}
		var e TraceEntry
		if jsonErr := json.Unmarshal(line, &e); jsonErr != nil || e.Op == "" || e.GPU == "" {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped
}

// WarmupStats reports one trace replay, exposed in the "warmup" section
// of /v2/stats.
type WarmupStats struct {
	Source     string  `json:"source"`  // trace path
	Entries    int     `json:"entries"` // lines that parsed
	Warmed     int     `json:"warmed"`  // forecasts primed into the caches
	Skipped    int     `json:"skipped"` // corrupt/unparseable lines
	Failed     int     `json:"failed"`  // entries that could not be primed (unknown engine/GPU/op, backend error)
	DurationMs float64 `json:"duration_ms"`
}

// Warmup returns the report of the last WarmFromTrace replay, or nil when
// none has run.
func (s *Service) Warmup() *WarmupStats { return s.warmup.Load() }

// WarmFromTrace replays the workload trace at path through the serving
// path, priming every partition's cache before the process starts
// accepting traffic: each (engine, GPU) group of entries is replayed
// concurrently as one batched prediction, so warmup parallelizes across
// shards and amortizes native-batch engines exactly like live traffic.
//
// Damaged lines and entries naming unknown engines, GPUs, or operators
// are counted and skipped — a stale or truncated trace degrades warmup,
// never aborts it. The only errors returned are an unreadable trace file
// and a cancelled context. Warmup traffic moves the ordinary serving
// counters (requests, misses); the returned report, also exposed on
// /v2/stats, is the separate accounting.
func (s *Service) WarmFromTrace(ctx context.Context, path string) (WarmupStats, error) {
	start := time.Now()
	ws := WarmupStats{Source: path}
	entries, skipped, err := ReadTrace(path)
	ws.Skipped = skipped
	if err != nil {
		return ws, err
	}
	ws.Entries = len(entries)
	s.warmEntries(ctx, entries, &ws)
	ws.DurationMs = float64(time.Since(start)) / float64(time.Millisecond)
	s.warmup.Store(&ws)
	return ws, ctx.Err()
}

// WarmFromTraceData replays JSONL trace data (a peer's recorded trace,
// fetched over the cluster's /v2/cluster/trace) through the serving path,
// priming only the entries whose (engine, GPU) key owns reports true —
// the shards this process is about to serve. It returns how many
// forecasts were primed. Damage tolerance matches WarmFromTrace: corrupt
// lines and unknown engines/GPUs/ops degrade the warmup, never abort it.
func (s *Service) WarmFromTraceData(ctx context.Context, data []byte, owns func(engine, gpuName string) bool) (int, error) {
	entries, _ := readTraceEntries(bytes.NewReader(data))
	if owns != nil {
		kept := entries[:0]
		for _, e := range entries {
			g, err := gpu.Lookup(e.GPU)
			if err != nil {
				continue
			}
			if owns(e.Engine, g.Name) {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	var ws WarmupStats
	s.warmEntries(ctx, entries, &ws)
	return ws.Warmed, ctx.Err()
}

// warmEntries replays parsed trace entries, accumulating Warmed/Failed
// into ws. The warming flag keeps the replay's cache fills out of trace
// compaction's touch accounting (a replay re-requests the whole trace by
// construction).
func (s *Service) warmEntries(ctx context.Context, entries []TraceEntry, ws *WarmupStats) {
	s.warming.Store(true)
	defer s.warming.Store(false)

	// Group by (engine, GPU): each group is one batched replay against one
	// partition.
	type group struct {
		engine string
		g      gpu.Spec
		ks     []kernels.Kernel
	}
	groups := map[string]*group{}
	var order []string
	for _, e := range entries {
		g, lookupErr := gpu.Lookup(e.GPU)
		if lookupErr != nil {
			ws.Failed++
			continue
		}
		k, kernErr := e.Kernel()
		if kernErr != nil {
			ws.Failed++
			continue
		}
		gk := e.Engine + "|" + g.Name
		grp, ok := groups[gk]
		if !ok {
			grp = &group{engine: e.Engine, g: g}
			groups[gk] = grp
			order = append(order, gk)
		}
		grp.ks = append(grp.ks, k)
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		warmed int
		failed int
	)
	for _, gk := range order {
		grp := groups[gk]
		es, engErr := s.engine(grp.engine)
		if engErr != nil {
			mu.Lock()
			failed += len(grp.ks)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(grp *group, es *engineState) {
			defer wg.Done()
			outs, batchErr := s.predictMany(ctx, es, grp.ks, grp.g)
			ok, bad := 0, 0
			if batchErr != nil { // e.g. a saturated shard: nothing primed
				bad = len(grp.ks)
			} else {
				for _, out := range outs {
					if out.Err != nil {
						bad++
					} else {
						ok++
					}
				}
			}
			mu.Lock()
			warmed += ok
			failed += bad
			mu.Unlock()
		}(grp, es)
	}
	wg.Wait()
	ws.Warmed += warmed
	ws.Failed += failed
}

// TraceJSONL serializes the attached recorder's entries as JSONL — what
// the cluster layer serves on /v2/cluster/trace for joining members. Nil
// without a recorder.
func (s *Service) TraceJSONL() []byte {
	r := s.recorder.Load()
	if r == nil {
		return nil
	}
	var buf bytes.Buffer
	for _, e := range r.Entries() {
		line, err := json.Marshal(e)
		if err != nil {
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
