package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// TraceEntry is one line of a workload trace: a (kernel, GPU, engine) key
// the service served, serialized with the operator's canonical name so a
// trace written by one build replays in another. Fused kernels carry their
// fusion accounting so replay rebuilds the exact cache key.
type TraceEntry struct {
	Engine string `json:"engine"`
	GPU    string `json:"gpu"`
	Op     string `json:"op"`
	B      int    `json:"b,omitempty"`
	M      int    `json:"m,omitempty"`
	K      int    `json:"k,omitempty"`
	N      int    `json:"n,omitempty"`
	DType  string `json:"dtype,omitempty"`

	Fused      bool     `json:"fused,omitempty"`
	FusedFLOPs float64  `json:"fused_flops,omitempty"`
	FusedBytes float64  `json:"fused_bytes,omitempty"`
	FusedOps   []string `json:"fused_ops,omitempty"`

	ConvInputElems float64 `json:"conv_input_elems,omitempty"`
}

// entryFromKernel serializes a served key.
func entryFromKernel(engine string, k kernels.Kernel, g gpu.Spec) TraceEntry {
	e := TraceEntry{
		Engine: engine, GPU: g.Name,
		Op: k.Op.String(), B: k.B, M: k.M, K: k.K, N: k.N,
		ConvInputElems: k.ConvInputElems,
	}
	if k.DType != kernels.FP32 {
		e.DType = k.DType.String()
	}
	if k.Fused {
		e.Fused = true
		e.FusedFLOPs = k.FusedFLOPs
		e.FusedBytes = k.FusedBytes
		for _, op := range k.FusedOps {
			e.FusedOps = append(e.FusedOps, op.String())
		}
	}
	return e
}

// Kernel reconstructs the kernel a trace entry describes.
func (e TraceEntry) Kernel() (kernels.Kernel, error) {
	op, ok := kernels.OpByName(e.Op)
	if !ok {
		return kernels.Kernel{}, fmt.Errorf("unknown op %q", e.Op)
	}
	k := kernels.Kernel{Op: op, B: e.B, M: e.M, K: e.K, N: e.N, ConvInputElems: e.ConvInputElems}
	switch e.DType {
	case "", "fp32":
	case "fp16":
		k.DType = kernels.FP16
	default:
		return kernels.Kernel{}, fmt.Errorf("unknown dtype %q", e.DType)
	}
	if e.Fused {
		k.Fused = true
		k.FusedFLOPs = e.FusedFLOPs
		k.FusedBytes = e.FusedBytes
		for _, name := range e.FusedOps {
			fop, ok := kernels.OpByName(name)
			if !ok {
				return kernels.Kernel{}, fmt.Errorf("unknown fused op %q", name)
			}
			k.FusedOps = append(k.FusedOps, fop)
		}
	}
	return k, nil
}

// maxTraceKeys bounds the recorder's in-memory dedup set. Real workloads
// have a few thousand unique (kernel, GPU, engine) keys; once the set is
// full the working profile is captured and further novel keys are dropped
// (counted, not silently).
const maxTraceKeys = 1 << 16

// TraceRecorder appends the unique keys a service serves to a JSONL
// workload trace — the persistent profile a later process replays to warm
// its caches (see Service.WarmFromTrace). Records happen on the cache-fill
// path (first successful serve of a key), so steady-state cache hits cost
// nothing; an in-memory set deduplicates refills after LRU eviction. Safe
// for concurrent use.
type TraceRecorder struct {
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	seen    map[string]struct{}
	dropped uint64 // novel keys not recorded (dedup set full or write error)
	err     error  // first write error; recording stops permanently
}

// NewTraceRecorder opens (creating or appending to) the trace at path.
// Keys already present in the file seed the dedup set, so the
// record-into-the-same-file-you-warmed-from deployment loop does not grow
// the trace with duplicates across restarts (an LRU eviction + refill
// would otherwise re-append every key each run).
func NewTraceRecorder(path string) (*TraceRecorder, error) {
	seen := map[string]struct{}{}
	if entries, _, err := ReadTrace(path); err == nil {
		for _, e := range entries {
			k, kerr := e.Kernel()
			if kerr != nil {
				continue
			}
			seen[e.Engine+"|"+k.Label()+"@"+e.GPU] = struct{}{}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open trace: %w", err)
	}
	return &TraceRecorder{f: f, bw: bufio.NewWriter(f), seen: seen}, nil
}

// Record appends the (engine, kernel, GPU) key if it has not been recorded
// by this recorder before.
func (r *TraceRecorder) Record(engine string, k kernels.Kernel, g gpu.Spec) {
	key := engine + "|" + k.Label() + "@" + g.Name
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.seen[key]; ok {
		return
	}
	if r.err != nil || len(r.seen) >= maxTraceKeys {
		r.dropped++
		return
	}
	r.seen[key] = struct{}{}
	line, err := json.Marshal(entryFromKernel(engine, k, g))
	if err == nil {
		_, err = r.bw.Write(append(line, '\n'))
	}
	if err != nil {
		r.err = err
		r.dropped++
	}
}

// Flush writes buffered entries through to the file.
func (r *TraceRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Dropped returns how many novel keys were not recorded (dedup set full
// or a write error).
func (r *TraceRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Close flushes and closes the trace file.
func (r *TraceRecorder) Close() error {
	flushErr := r.Flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.f.Close(); err != nil {
		return err
	}
	return flushErr
}

// SetTraceRecorder starts (non-nil) or stops (nil) recording served keys
// to r. The caller owns r's lifecycle: flush/close it after the service
// stops serving.
func (s *Service) SetTraceRecorder(r *TraceRecorder) { s.recorder.Store(r) }

// recordTrace is the serving-path hook: called after a key is served and
// cached for the first time.
func (s *Service) recordTrace(engine string, k kernels.Kernel, g gpu.Spec) {
	if r := s.recorder.Load(); r != nil {
		r.Record(engine, k, g)
	}
}

// ReadTrace parses the JSONL trace at path. Truncated, corrupt,
// unparseable, or absurdly long lines are skipped and counted — damage
// anywhere in the file (a torn append, binary corruption mid-file) must
// not void the valid profile before or after it.
func ReadTrace(path string) (entries []TraceEntry, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: open trace: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	for {
		line, isPrefix, readErr := br.ReadLine()
		if readErr != nil {
			// io.EOF is the clean end; any other read error truncates the
			// profile at the damage, counted once.
			if readErr != io.EOF {
				skipped++
			}
			break
		}
		if isPrefix {
			// A line longer than the read buffer is not a trace entry
			// (entries are a few hundred bytes): drain its remainder and
			// count one skip, then continue with the next line.
			skipped++
			for isPrefix && readErr == nil {
				_, isPrefix, readErr = br.ReadLine()
			}
			if readErr != nil {
				break
			}
			continue
		}
		if len(line) == 0 {
			continue
		}
		var e TraceEntry
		if jsonErr := json.Unmarshal(line, &e); jsonErr != nil || e.Op == "" || e.GPU == "" {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped, nil
}

// WarmupStats reports one trace replay, exposed in the "warmup" section
// of /v2/stats.
type WarmupStats struct {
	Source     string  `json:"source"`  // trace path
	Entries    int     `json:"entries"` // lines that parsed
	Warmed     int     `json:"warmed"`  // forecasts primed into the caches
	Skipped    int     `json:"skipped"` // corrupt/unparseable lines
	Failed     int     `json:"failed"`  // entries that could not be primed (unknown engine/GPU/op, backend error)
	DurationMs float64 `json:"duration_ms"`
}

// Warmup returns the report of the last WarmFromTrace replay, or nil when
// none has run.
func (s *Service) Warmup() *WarmupStats { return s.warmup.Load() }

// WarmFromTrace replays the workload trace at path through the serving
// path, priming every partition's cache before the process starts
// accepting traffic: each (engine, GPU) group of entries is replayed
// concurrently as one batched prediction, so warmup parallelizes across
// shards and amortizes native-batch engines exactly like live traffic.
//
// Damaged lines and entries naming unknown engines, GPUs, or operators
// are counted and skipped — a stale or truncated trace degrades warmup,
// never aborts it. The only errors returned are an unreadable trace file
// and a cancelled context. Warmup traffic moves the ordinary serving
// counters (requests, misses); the returned report, also exposed on
// /v2/stats, is the separate accounting.
func (s *Service) WarmFromTrace(ctx context.Context, path string) (WarmupStats, error) {
	start := time.Now()
	ws := WarmupStats{Source: path}
	entries, skipped, err := ReadTrace(path)
	ws.Skipped = skipped
	if err != nil {
		return ws, err
	}
	ws.Entries = len(entries)

	// Group by (engine, GPU): each group is one batched replay against one
	// partition.
	type group struct {
		engine string
		g      gpu.Spec
		ks     []kernels.Kernel
	}
	groups := map[string]*group{}
	var order []string
	for _, e := range entries {
		g, lookupErr := gpu.Lookup(e.GPU)
		if lookupErr != nil {
			ws.Failed++
			continue
		}
		k, kernErr := e.Kernel()
		if kernErr != nil {
			ws.Failed++
			continue
		}
		gk := e.Engine + "|" + g.Name
		grp, ok := groups[gk]
		if !ok {
			grp = &group{engine: e.Engine, g: g}
			groups[gk] = grp
			order = append(order, gk)
		}
		grp.ks = append(grp.ks, k)
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		warmed int
		failed int
	)
	for _, gk := range order {
		grp := groups[gk]
		es, engErr := s.engine(grp.engine)
		if engErr != nil {
			mu.Lock()
			failed += len(grp.ks)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(grp *group, es *engineState) {
			defer wg.Done()
			outs, batchErr := s.predictMany(ctx, es, grp.ks, grp.g)
			ok, bad := 0, 0
			if batchErr != nil { // e.g. a saturated shard: nothing primed
				bad = len(grp.ks)
			} else {
				for _, out := range outs {
					if out.Err != nil {
						bad++
					} else {
						ok++
					}
				}
			}
			mu.Lock()
			warmed += ok
			failed += bad
			mu.Unlock()
		}(grp, es)
	}
	wg.Wait()
	ws.Warmed += warmed
	ws.Failed += failed
	ws.DurationMs = float64(time.Since(start)) / float64(time.Millisecond)
	s.warmup.Store(&ws)
	return ws, ctx.Err()
}
