package serve

import (
	"errors"
	"net/http"
	"strings"

	"neusight/internal/plan"
)

// The planner is an optional subsystem wired by cmd/neusight, like the
// trace recorder and the observe monitor: the service holds an atomic
// pointer, the HTTP layer serves 503 until one is attached.

// SetPlanner attaches the plan job manager serving /v2/plan.
func (s *Service) SetPlanner(m *plan.Manager) { s.planner.Store(m) }

// Planner returns the attached plan manager, nil when none.
func (s *Service) Planner() *plan.Manager { return s.planner.Load() }

// PlanStats returns the planner's counters for /v2/stats, nil when no
// planner is attached (the section is omitted).
func (s *Service) PlanStats() *plan.Stats {
	m := s.planner.Load()
	if m == nil {
		return nil
	}
	st := m.Stats()
	return &st
}

// planErrorCode classifies a plan manager error for HTTP: unknown job ids
// are 404, resuming a done job conflicts (409), a bad spec is the
// client's fault (400).
func planErrorCode(err error) int {
	switch {
	case errors.Is(err, plan.ErrNoJob):
		return http.StatusNotFound
	case errors.Is(err, plan.ErrJobDone):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// handlePlan serves the /v2/plan collection: POST submits a spec and
// returns the new job's status (202 — evaluation is asynchronous), GET
// lists every job's summary.
func handlePlan(s *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.Planner()
		if m == nil {
			writeError(w, http.StatusServiceUnavailable, "planner not enabled on this process")
			return
		}
		switch r.Method {
		case http.MethodPost:
			var spec plan.Spec
			if !decodeBody(w, r, &spec) {
				return
			}
			st, err := m.Submit(spec)
			if err != nil {
				writeError(w, planErrorCode(err), err.Error())
				return
			}
			writeJSON(w, http.StatusAccepted, st)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
		default:
			writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
		}
	}
}

// handlePlanID serves one job under /v2/plan/{id}: GET polls status and
// (partial) ranking — ?full=1 forces the complete ranking while running —
// DELETE cancels (in-flight batches drain; poll until state is
// cancelled), POST resumes a cancelled job's unevaluated cells.
func handlePlanID(s *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.Planner()
		if m == nil {
			writeError(w, http.StatusServiceUnavailable, "planner not enabled on this process")
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/v2/plan/")
		if id == "" || strings.Contains(id, "/") {
			writeError(w, http.StatusNotFound, "want /v2/plan/{id}")
			return
		}
		var (
			st  plan.Status
			err error
		)
		switch r.Method {
		case http.MethodGet:
			st, err = m.Get(id, r.URL.Query().Get("full") == "1")
		case http.MethodDelete:
			st, err = m.Cancel(id)
		case http.MethodPost:
			st, err = m.Resume(id)
		default:
			writeError(w, http.StatusMethodNotAllowed, "GET, POST, or DELETE only")
			return
		}
		if err != nil {
			writeError(w, planErrorCode(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
}
