package serve

import (
	"fmt"
	"sync"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
)

// batchGroup tracks one unique cache-miss key within a batch: the in-flight
// call this batch leads for it, the position that will feed the backend,
// and every other batch position that deduplicates onto it.
type batchGroup struct {
	call   *inflightCall
	leader int
	dups   []int
}

// PredictBatch forecasts every kernel in ks on g, amortizing one backend
// evaluation across all cache misses. The layering mirrors PredictKernel,
// batch-wide:
//
//  1. cache hits are served immediately;
//  2. identical misses within the batch deduplicate onto one evaluation,
//     and misses already in flight elsewhere (another batch or a concurrent
//     PredictKernel) coalesce onto that evaluation instead of repeating it;
//  3. the remaining unique misses go to the backend in a single
//     PredictKernels call when the backend supports batching (one compiled
//     forward pass for the whole set), else per-kernel under the pool.
//
// Results are positional and per-item: a failed item (network kernel,
// untrained category, backend error) reports in errs[i] without affecting
// its neighbors. Successful misses populate the cache. Safe for arbitrary
// concurrent use.
//
// Trade-off: every key this batch leads resolves when the batch's single
// backend round completes, so a concurrent request coalescing onto one of
// them waits for the whole round rather than one kernel. That is inherent
// to evaluating the misses in one forward pass — the alternative (not
// registering led keys in flight) would duplicate backend work instead.
func (s *Service) PredictBatch(ks []kernels.Kernel, g gpu.Spec) (lats []float64, errs []error) {
	s.batches.Add(1)
	s.batchedKernels.Add(uint64(len(ks)))
	return s.predictBatch(ks, g)
}

// predictBatch implements PredictBatch without touching the batch-API
// counters, so internal callers (PredictGraph) reuse the machinery while
// batch_requests/batched_kernels keep meaning "client batch calls".
func (s *Service) predictBatch(ks []kernels.Kernel, g gpu.Spec) (lats []float64, errs []error) {
	start := time.Now()
	s.requests.Add(uint64(len(ks)))
	s.inFlightNow.Add(1)
	defer func() {
		s.inFlightNow.Add(-1)
		s.lat.Observe(time.Since(start))
	}()

	lats = make([]float64, len(ks))
	errs = make([]error, len(ks))

	// Partition the batch: cache hits, misses we lead, and misses another
	// goroutine is already evaluating. Both kinds of miss deduplicate by
	// key, so a batch full of one kernel costs one evaluation (or one wait)
	// and counts one miss — not one per occurrence.
	groups := map[string]*batchGroup{}  // keys this batch leads
	waiting := map[string]*batchGroup{} // keys in flight elsewhere
	var missKeys []string               // insertion order, so backend input is deterministic
	for i, k := range ks {
		if k.Category() == kernels.CatNetwork {
			s.errors.Add(1)
			errs[i] = fmt.Errorf("serve: network kernel %s is priced by the distributed layer, not the kernel predictor", k.Label())
			continue
		}
		key := cacheKey(k, g)
		if grp, ok := groups[key]; ok { // duplicate of a miss we lead
			grp.dups = append(grp.dups, i)
			continue
		}
		if grp, ok := waiting[key]; ok { // duplicate of a coalesced miss
			grp.dups = append(grp.dups, i)
			continue
		}
		if v, ok := s.cache.Get(key); ok {
			lats[i] = v
			continue
		}
		s.mu.Lock()
		if call, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			s.coalesced.Add(1)
			waiting[key] = &batchGroup{call: call, leader: i}
			continue
		}
		call := &inflightCall{done: make(chan struct{})}
		s.inflight[key] = call
		s.mu.Unlock()
		groups[key] = &batchGroup{call: call, leader: i}
		missKeys = append(missKeys, key)
	}

	// One backend round for every unique miss this batch leads.
	if len(missKeys) > 0 {
		uniq := make([]kernels.Kernel, len(missKeys))
		for j, key := range missKeys {
			uniq[j] = ks[groups[key].leader]
		}
		vals, verrs := s.runBatchBackend(uniq, g)
		for j, key := range missKeys {
			grp := groups[key]
			grp.call.val, grp.call.err = vals[j], verrs[j]
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(grp.call.done)
			if grp.call.err == nil {
				s.cache.Put(key, grp.call.val)
			}
			for _, i := range append(grp.dups, grp.leader) {
				if grp.call.err != nil {
					s.errors.Add(1)
					errs[i] = grp.call.err
				} else {
					lats[i] = grp.call.val
				}
			}
		}
	}

	// Collect results from evaluations led elsewhere. These were started
	// before our backend round, so waiting after it never deadlocks.
	for _, grp := range waiting {
		<-grp.call.done
		for _, i := range append(grp.dups, grp.leader) {
			if grp.call.err != nil {
				s.errors.Add(1)
				errs[i] = grp.call.err
			} else {
				lats[i] = grp.call.val
			}
		}
	}
	return lats, errs
}

// runBatchBackend evaluates the unique misses of one batch. A batch-capable
// backend gets them in one PredictKernels call under a single worker-pool
// slot (the whole point: one compiled forward pass); a plain backend gets
// per-kernel calls fanned out across the pool, preserving the concurrency a
// cold graph walk had before batching existed. A backend panic — or a batch
// backend returning mis-sized results — is converted into per-item errors
// so every in-flight call is still resolved; nothing wedges.
func (s *Service) runBatchBackend(ks []kernels.Kernel, g gpu.Spec) (vals []float64, errs []error) {
	if bp, ok := s.pred.(BatchKernelPredictor); ok {
		defer func() {
			if r := recover(); r != nil {
				err := fmt.Errorf("serve: backend panic predicting batch of %d: %v", len(ks), r)
				vals = make([]float64, len(ks))
				errs = make([]error, len(ks))
				for i := range errs {
					errs[i] = err
				}
			}
		}()
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		vals, errs = bp.PredictKernels(ks, g)
		if len(vals) != len(ks) || len(errs) != len(ks) {
			panic(fmt.Sprintf("batch backend returned %d/%d results for %d kernels", len(vals), len(errs), len(ks)))
		}
		return vals, errs
	}

	// Backend without batch support: fan the kernels across the worker
	// pool, one slot per prediction, mirroring the per-kernel path.
	vals = make([]float64, len(ks))
	errs = make([]error, len(ks))
	var wg sync.WaitGroup
	for i, k := range ks {
		wg.Add(1)
		go func(i int, k kernels.Kernel) {
			defer wg.Done()
			vals[i], errs[i] = s.callBackend(k, g)
		}(i, k)
	}
	wg.Wait()
	return vals, errs
}
