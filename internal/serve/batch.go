package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

// batchGroup tracks one unique cache-miss key within a batch: the in-flight
// call this batch leads for it, the position that will feed the backend,
// and every other batch position that deduplicates onto it.
type batchGroup struct {
	call   *inflightCall
	leader int
	dups   []int
}

// PredictBatch forecasts every kernel in ks on g with the default engine,
// amortizing one backend evaluation across all cache misses. Results are
// positional and per-item: lats[i]/errs[i] correspond to ks[i].
func (s *Service) PredictBatch(ks []kernels.Kernel, g gpu.Spec) (lats []float64, errs []error) {
	outs, err := s.PredictBatchEngine(context.Background(), "", ks, g)
	lats = make([]float64, len(ks))
	errs = make([]error, len(ks))
	if err != nil { // unknown engine (unreachable for the default) or a saturated shard
		for i := range errs {
			errs[i] = err
		}
		return lats, errs
	}
	for i, out := range outs {
		lats[i], errs[i] = out.Result.Latency, out.Err
	}
	return lats, errs
}

// PredictBatchEngine is PredictBatch routed to a named engine ("" selects
// the default), returning structured outcomes. The layering mirrors
// PredictKernelEngine, batch-wide:
//
//  1. cache hits are served immediately from the engine's partition;
//  2. identical misses within the batch deduplicate onto one evaluation,
//     and misses already in flight elsewhere (another batch or a concurrent
//     PredictKernel on the same engine) coalesce onto that evaluation
//     instead of repeating it;
//  3. the remaining unique misses go to the engine in a single
//     PredictKernels call when it batches natively (one compiled forward
//     pass for the whole set), else per-kernel fan-out under the pool.
//
// A failed item (network kernel, untrained category, backend error) reports
// in outs[i].Err without affecting its neighbors. Successful misses
// populate the cache. Safe for arbitrary concurrent use.
//
// Trade-off: every key this batch leads resolves when the batch's single
// backend round completes, so a concurrent request coalescing onto one of
// them waits for the whole round rather than one kernel. That is inherent
// to evaluating the misses in one forward pass — the alternative (not
// registering led keys in flight) would duplicate backend work instead.
func (s *Service) PredictBatchEngine(ctx context.Context, engine string, ks []kernels.Kernel, g gpu.Spec) ([]predict.Outcome, error) {
	es, err := s.engine(engine)
	if err != nil {
		return nil, err
	}
	s.batches.Add(1)
	s.batchedKernels.Add(uint64(len(ks)))
	return s.predictMany(ctx, es, ks, g)
}

// predictMany implements the batched path against one engine without
// touching the batch-API counters, so internal callers
// (PredictGraphEngine, trace warmup) reuse the machinery while
// batch_requests / batched_kernels keep meaning "client batch calls".
// A batch names one engine and one GPU, so the whole batch lives on one
// partition: one shard admission, one cache, one coalescing table. A
// saturated shard rejects the batch as a whole — the returned error wraps
// ErrSaturated and no per-item work runs — so callers surface
// backpressure (HTTP 503) instead of folding rejections into per-item
// fallbacks.
func (s *Service) predictMany(ctx context.Context, es *engineState, ks []kernels.Kernel, g gpu.Spec) ([]predict.Outcome, error) {
	// Admission precedes all accounting — see predictOne: rejected batches
	// must not inflate request throughput or drag the latency percentiles
	// toward the microsecond rejection path while the service sheds load.
	p := s.partition(es, g)
	if !p.admit() {
		s.rejected.Add(1)
		return nil, fmt.Errorf("serve: shard %d over %d requests in flight for a batch of %d: %w",
			p.shard, p.maxInFlight, len(ks), ErrSaturated)
	}
	defer p.release()

	start := time.Now()
	s.requests.Add(uint64(len(ks)))
	es.requests.Add(uint64(len(ks)))
	p.requests.Add(uint64(len(ks)))
	s.inFlightNow.Add(1)
	defer func() {
		s.inFlightNow.Add(-1)
		s.lat.Observe(time.Since(start))
	}()

	outs := make([]predict.Outcome, len(ks))

	// A caller that is already gone fails fast, before it can lead shared
	// evaluations whose failure would poison coalesced waiters.
	if err := ctx.Err(); err != nil {
		for i := range outs {
			outs[i].Err = err
		}
		s.errors.Add(uint64(len(ks)))
		es.errors.Add(uint64(len(ks)))
		p.errors.Add(uint64(len(ks)))
		return outs, nil
	}

	// Partition the batch: cache hits, misses we lead, and misses another
	// goroutine is already evaluating. Both kinds of miss deduplicate by
	// key, so a batch full of one kernel costs one evaluation (or one wait)
	// and counts one miss — not one per occurrence.
	groups := map[string]*batchGroup{}  // keys this batch leads
	waiting := map[string]*batchGroup{} // keys in flight elsewhere
	var missKeys []string               // insertion order, so backend input is deterministic
	for i, k := range ks {
		if k.Category() == kernels.CatNetwork {
			s.errors.Add(1)
			es.errors.Add(1)
			p.errors.Add(1)
			outs[i].Err = fmt.Errorf("serve: network kernel %s is priced by the distributed layer, not the kernel predictor", k.Label())
			continue
		}
		key := es.key(k, g)
		if grp, ok := groups[key]; ok { // duplicate of a miss we lead
			grp.dups = append(grp.dups, i)
			continue
		}
		if grp, ok := waiting[key]; ok { // duplicate of a coalesced miss
			grp.dups = append(grp.dups, i)
			continue
		}
		if v, ok := p.cache.Get(key); ok {
			es.cacheHits.Add(1)
			s.touchTrace(es.name, k, g)
			outs[i].Result = v
			continue
		}
		es.cacheMisses.Add(1)
		p.mu.Lock()
		if call, ok := p.inflight[key]; ok {
			p.mu.Unlock()
			s.coalesced.Add(1)
			es.coalesced.Add(1)
			p.coalesced.Add(1)
			waiting[key] = &batchGroup{call: call, leader: i}
			continue
		}
		call := &inflightCall{done: make(chan struct{})}
		p.inflight[key] = call
		p.mu.Unlock()
		groups[key] = &batchGroup{call: call, leader: i}
		missKeys = append(missKeys, key)
	}

	// One backend round for every unique miss this batch leads.
	if len(missKeys) > 0 {
		uniq := make([]kernels.Kernel, len(missKeys))
		for j, key := range missKeys {
			uniq[j] = ks[groups[key].leader]
		}
		round := s.runBatchBackend(ctx, es, p, uniq, g)
		for j, key := range missKeys {
			grp := groups[key]
			grp.call.res, grp.call.err = round[j].Result, round[j].Err
			p.mu.Lock()
			delete(p.inflight, key)
			p.mu.Unlock()
			close(grp.call.done)
			if grp.call.err == nil {
				p.cache.Put(key, grp.call.res)
				s.recordTrace(es.name, ks[grp.leader], g)
			}
			for _, i := range append(grp.dups, grp.leader) {
				if grp.call.err != nil {
					s.errors.Add(1)
					es.errors.Add(1)
					p.errors.Add(1)
					outs[i].Err = grp.call.err
				} else {
					outs[i].Result = grp.call.res
				}
			}
		}
	}

	// Collect results from evaluations led elsewhere. These were started
	// before our backend round, so waiting after it never deadlocks.
	for _, grp := range waiting {
		<-grp.call.done
		for _, i := range append(grp.dups, grp.leader) {
			if grp.call.err != nil {
				s.errors.Add(1)
				es.errors.Add(1)
				p.errors.Add(1)
				outs[i].Err = grp.call.err
			} else {
				outs[i].Result = grp.call.res
			}
		}
	}
	return outs, nil
}

// runBatchBackend evaluates the unique misses of one batch. An engine with
// a native batch path gets them in one PredictKernels call under a single
// slot of the partition's worker pool (the whole point: one compiled
// forward pass); an engine without one gets per-kernel calls fanned out
// across the pool, preserving the concurrency a cold graph walk had before
// batching existed. An engine panic — or a native batch returning
// mis-sized results — is converted into per-item errors so every in-flight
// call is still resolved; nothing wedges.
func (s *Service) runBatchBackend(ctx context.Context, es *engineState, p *partition, ks []kernels.Kernel, g gpu.Spec) (outs []predict.Outcome) {
	if predict.NativeBatch(es.eng) {
		defer func() {
			if r := recover(); r != nil {
				err := fmt.Errorf("serve: backend panic predicting batch of %d: %v", len(ks), r)
				outs = make([]predict.Outcome, len(ks))
				for i := range outs {
					outs[i].Err = err
				}
			}
		}()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		reqs := make([]predict.Request, len(ks))
		for i, k := range ks {
			reqs[i] = predict.Request{Kernel: k, GPU: g}
		}
		// Detached from the leader's cancellation: the round's results are
		// shared with coalesced waiters (see callEngine).
		outs = es.eng.PredictKernels(context.WithoutCancel(ctx), reqs)
		if len(outs) != len(ks) {
			panic(fmt.Sprintf("batch engine returned %d results for %d kernels", len(outs), len(ks)))
		}
		return outs
	}

	// Engine without native batching: fan the kernels across the worker
	// pool, one slot per prediction, mirroring the per-kernel path.
	outs = make([]predict.Outcome, len(ks))
	var wg sync.WaitGroup
	for i, k := range ks {
		wg.Add(1)
		go func(i int, k kernels.Kernel) {
			defer wg.Done()
			outs[i].Result, outs[i].Err = s.callEngine(ctx, es, p, k, g)
		}(i, k)
	}
	wg.Wait()
	return outs
}
