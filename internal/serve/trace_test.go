package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"neusight/internal/gpu"
	"neusight/internal/kernels"
	"neusight/internal/predict"
)

func TestTraceEntryKernelRoundTrip(t *testing.T) {
	g := gpu.MustLookup("H100")
	cases := []kernels.Kernel{
		kernels.NewBMM(8, 512, 512, 512),
		kernels.NewLinear(64, 256, 256).WithDType(kernels.FP16),
		kernels.NewSoftmax(4096, 512),
		{Op: kernels.OpLinear, M: 32, K: 64, N: 64, Fused: true,
			FusedFLOPs: 1e6, FusedBytes: 2e4, FusedOps: []kernels.Op{kernels.OpLinear, kernels.OpEWGELU}},
	}
	for _, k := range cases {
		e := entryFromKernel("neusight", k, g)
		got, err := e.Kernel()
		if err != nil {
			t.Fatalf("Kernel() on %s: %v", k.Label(), err)
		}
		if !reflect.DeepEqual(got, k) {
			t.Errorf("round trip of %s: got %+v, want %+v", k.Label(), got, k)
		}
		if e.Engine != "neusight" || e.GPU != "H100" {
			t.Errorf("entry metadata = %+v", e)
		}
	}
}

// TestWarmupFirstRequestIsCacheHit is the acceptance path: record a trace
// from one service, restart into a fresh one, warm it from the trace, and
// require the first trace-covered request to be served from cache — no
// backend call, hit counter moves.
func TestWarmupFirstRequestIsCacheHit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workload.jsonl")
	g := gpu.MustLookup("V100")
	ks := []kernels.Kernel{
		kernels.NewBMM(4, 128, 128, 128),
		kernels.NewLinear(64, 256, 256),
		kernels.NewSoftmax(1024, 128).WithDType(kernels.FP16),
	}

	// First process: serve traffic with recording on.
	var callsA atomic.Int64
	regA := predict.NewRegistry()
	regA.MustRegister(countingEngine("alpha", 1, &callsA))
	svcA := NewMulti(regA, "alpha", Config{CacheSize: 64})
	rec, err := NewTraceRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	svcA.SetTraceRecorder(rec)
	for _, k := range ks {
		if _, err := svcA.PredictKernel(k, g); err != nil {
			t.Fatalf("PredictKernel: %v", err)
		}
		// Repeats are cache hits and must not duplicate trace entries.
		svcA.PredictKernel(k, g)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	entries, skipped, err := ReadTrace(path)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTrace = (%d entries, %d skipped, %v)", len(entries), skipped, err)
	}
	if len(entries) != len(ks) {
		t.Fatalf("trace has %d entries, want %d (one per unique key)", len(entries), len(ks))
	}

	// Second process: fresh service, warm from the trace, sharded this
	// time — warmup must prime shard caches the same way.
	var callsB atomic.Int64
	regB := predict.NewRegistry()
	regB.MustRegister(countingEngine("alpha", 1, &callsB))
	svcB := NewMulti(regB, "alpha", Config{CacheSize: 64, Shards: 4})
	ws, err := svcB.WarmFromTrace(context.Background(), path)
	if err != nil {
		t.Fatalf("WarmFromTrace: %v", err)
	}
	if ws.Entries != len(ks) || ws.Warmed != len(ks) || ws.Skipped != 0 || ws.Failed != 0 {
		t.Fatalf("warmup stats = %+v, want %d entries all warmed", ws, len(ks))
	}
	if got := callsB.Load(); got != int64(len(ks)) {
		t.Fatalf("warmup backend calls = %d, want %d", got, len(ks))
	}
	if svcB.Warmup() == nil {
		t.Fatal("Warmup() report not stored")
	}

	// The first live request for every trace-covered key is a cache hit.
	hitsBefore := svcB.Stats().CacheHits
	for _, k := range ks {
		if _, err := svcB.PredictKernel(k, g); err != nil {
			t.Fatalf("post-warmup PredictKernel: %v", err)
		}
	}
	if got := callsB.Load(); got != int64(len(ks)) {
		t.Errorf("backend calls after live traffic = %d, want %d (all requests served from warm cache)", got, len(ks))
	}
	if hits := svcB.Stats().CacheHits - hitsBefore; hits != uint64(len(ks)) {
		t.Errorf("cache hits after warmup = %d, want %d", hits, len(ks))
	}
}

func TestWarmupSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "damaged.jsonl")
	lines := []string{
		`{"engine":"alpha","gpu":"V100","op":"bmm","b":2,"m":64,"k":64,"n":64}`,
		`{"engine":"alpha","gpu":"V100","op":"linear","m":32,"k":`, // truncated mid-append
		`not json at all`,
		`{"engine":"alpha","gpu":"NoSuchGPU","op":"bmm","b":2,"m":64,"k":64,"n":64}`, // unknown GPU
		`{"engine":"alpha","gpu":"V100","op":"warpdrive","b":2,"m":64}`,              // unknown op
		`{"engine":"ghost","gpu":"V100","op":"bmm","b":4,"m":32,"k":32,"n":32}`,      // unknown engine
		``, // blank line
		`{"engine":"alpha","gpu":"V100","op":"softmax","b":1024,"m":128}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64})
	ws, err := svc.WarmFromTrace(context.Background(), path)
	if err != nil {
		t.Fatalf("WarmFromTrace must not abort on damaged lines: %v", err)
	}
	// 2 corrupt lines skipped at parse; unknown GPU/op/engine fail at
	// replay; the 2 good alpha entries warm.
	if ws.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", ws.Skipped)
	}
	if ws.Failed != 3 {
		t.Errorf("failed = %d, want 3 (unknown gpu, op, engine)", ws.Failed)
	}
	if ws.Warmed != 2 {
		t.Errorf("warmed = %d, want 2", ws.Warmed)
	}
	if st := svc.Stats(); st.CacheLen != 2 {
		t.Errorf("cache len after warmup = %d, want 2", st.CacheLen)
	}
}

// TestReadTraceSurvivesOverlongLineMidFile pins that a single absurdly
// long corrupt line in the middle of a trace costs exactly one skip — the
// valid entries after it still parse.
func TestReadTraceSurvivesOverlongLineMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "long.jsonl")
	var b strings.Builder
	b.WriteString(`{"engine":"alpha","gpu":"V100","op":"bmm","b":2,"m":64,"k":64,"n":64}` + "\n")
	b.WriteString(strings.Repeat("x", 2<<20) + "\n") // 2 MiB of garbage, one line
	b.WriteString(`{"engine":"alpha","gpu":"V100","op":"softmax","b":1024,"m":128}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(entries) != 2 {
		t.Errorf("entries = %d, want 2 (the valid line after the damage must survive)", len(entries))
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
}

func TestWarmFromTraceMissingFile(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64})
	if _, err := svc.WarmFromTrace(context.Background(), filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("warmup from a missing trace must error (the operator asked for it)")
	}
}

func TestTraceRecorderDedupsAcrossBatchAndSingle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dedup.jsonl")
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64})
	rec, err := NewTraceRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetTraceRecorder(rec)
	g := gpu.MustLookup("V100")
	k1 := kernels.NewBMM(2, 64, 64, 64)
	k2 := kernels.NewLinear(8, 16, 16)

	svc.PredictKernel(k1, g)
	svc.PredictBatch([]kernels.Kernel{k1, k2, k2}, g) // k1 already recorded, k2 once
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := ReadTrace(path)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTrace = (%v, %d skipped)", err, skipped)
	}
	if len(entries) != 2 {
		t.Errorf("trace entries = %d, want 2 unique keys", len(entries))
	}
}

// TestTraceRecorderSeedsFromExistingFile pins the restart loop: reopening
// a recorder on an existing trace must not re-append keys the file
// already holds, even after an eviction/refill would re-trigger Record.
func TestTraceRecorderSeedsFromExistingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seed.jsonl")
	g := gpu.MustLookup("V100")
	k1 := kernels.NewBMM(2, 64, 64, 64)
	k2 := kernels.NewLinear(8, 16, 16)

	rec, err := NewTraceRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record("alpha", k1, g)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := NewTraceRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec2.Record("alpha", k1, g) // already in the file: must not duplicate
	rec2.Record("alpha", k2, g) // novel: must append
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}

	entries, skipped, err := ReadTrace(path)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTrace = (%v, %d skipped)", err, skipped)
	}
	if len(entries) != 2 {
		t.Errorf("trace entries after reopen = %d, want 2 (no duplicate of k1)", len(entries))
	}
}

// TestTraceCompactionAgesOutIdleKeys walks the multi-run lifecycle: a key
// requested every run stays forever; a key nobody requests ages one
// replay per run and is dropped when it reaches the bound.
func TestTraceCompactionAgesOutIdleKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.jsonl")
	g := gpu.MustLookup("V100")
	k1 := kernels.NewBMM(2, 64, 64, 64)
	k2 := kernels.NewLinear(8, 16, 16)
	k3 := kernels.NewSoftmax(1024, 128)

	// Run 1: all three keys served.
	rec, err := NewTraceRecorderCompact(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record("alpha", k1, g)
	rec.Record("alpha", k2, g)
	rec.Record("alpha", k3, g)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Runs 2 and 3: only k1 is requested. k2/k3 age to idle 1, then reach
	// the bound of 2 and drop.
	for run := 2; run <= 3; run++ {
		rec, err = NewTraceRecorderCompact(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		if tc := rec.Compaction(); tc.Loaded != 3 && run == 2 {
			t.Fatalf("run %d loaded %d entries, want 3", run, tc.Loaded)
		}
		rec.Touch("alpha", k1, g)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}

	entries, skipped, err := ReadTrace(path)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTrace = (%v, %d skipped)", err, skipped)
	}
	if len(entries) != 1 {
		t.Fatalf("entries after aging = %d, want only the requested key", len(entries))
	}
	if k, _ := entries[0].Kernel(); k.Label() != k1.Label() {
		t.Errorf("surviving key = %s, want %s", k.Label(), k1.Label())
	}
	if entries[0].Idle != 0 {
		t.Errorf("surviving key idle = %d, want 0 (requested last run)", entries[0].Idle)
	}
}

// TestTraceCompactionPrunesAtOpen: entries already past the idle bound
// are removed the moment the recorder opens — and the pruned file is
// written back immediately, so a crashy run cannot resurrect them.
func TestTraceCompactionPrunesAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.jsonl")
	lines := []string{
		`{"engine":"alpha","gpu":"V100","op":"bmm","b":2,"m":64,"k":64,"n":64}`,
		`{"engine":"alpha","gpu":"V100","op":"softmax","b":1024,"m":128,"idle":5}`,
		`{"engine":"alpha","gpu":"V100","op":"warpdrive","b":2,"m":64}`, // unreplayable
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := NewTraceRecorderCompact(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	tc := rec.Compaction()
	if tc == nil || tc.Loaded != 1 || tc.AgedOut != 2 || tc.MaxIdleReplays != 2 {
		t.Fatalf("compaction stats = %+v, want 1 loaded, 2 aged out, bound 2", tc)
	}
	// Pruned before Close: the rewrite happened at open.
	entries, _, err := ReadTrace(path)
	if err != nil || len(entries) != 1 {
		t.Fatalf("trace after open = (%d entries, %v), want 1 — prune must be durable immediately", len(entries), err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCompactionServingIntegration runs the deployment loop with a
// live service: a warmup replay must NOT count as a request (else nothing
// would ever age), while a live cache hit must.
func TestTraceCompactionServingIntegration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serving.jsonl")
	g := gpu.MustLookup("V100")
	k1 := kernels.NewBMM(4, 128, 128, 128)
	k2 := kernels.NewLinear(64, 256, 256)

	// Run 1: both keys served live.
	reg1 := predict.NewRegistry()
	reg1.MustRegister(constEngine("alpha", 1))
	svc1 := NewMulti(reg1, "alpha", Config{CacheSize: 64})
	rec1, err := NewTraceRecorderCompact(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc1.SetTraceRecorder(rec1)
	svc1.PredictKernel(k1, g)
	svc1.PredictKernel(k2, g)
	if err := rec1.Close(); err != nil {
		t.Fatal(err)
	}

	// Run 2: warm from the trace (fills both — no touch), then only k1
	// sees live traffic, served from the warm cache (the hit path must
	// touch it).
	reg2 := predict.NewRegistry()
	reg2.MustRegister(constEngine("alpha", 1))
	svc2 := NewMulti(reg2, "alpha", Config{CacheSize: 64})
	rec2, err := NewTraceRecorderCompact(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc2.SetTraceRecorder(rec2)
	if ws, err := svc2.WarmFromTrace(context.Background(), path); err != nil || ws.Warmed != 2 {
		t.Fatalf("warmup = (%+v, %v), want 2 warmed", ws, err)
	}
	if tc := svc2.TraceCompaction(); tc == nil || tc.Touched != 0 {
		t.Fatalf("trace compaction after warmup = %+v, want 0 touched (replay is not a request)", tc)
	}
	hitsBefore := svc2.Stats().CacheHits
	if _, err := svc2.PredictKernel(k1, g); err != nil {
		t.Fatal(err)
	}
	if svc2.Stats().CacheHits != hitsBefore+1 {
		t.Fatal("live request should have been a warm cache hit")
	}
	if tc := svc2.TraceCompaction(); tc == nil || tc.Touched != 1 || tc.Loaded != 2 {
		t.Fatalf("trace compaction = %+v, want 1 touched of 2 loaded", tc)
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}

	// With the bound at 1 replay, the unrequested k2 is gone.
	entries, skipped, err := ReadTrace(path)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTrace = (%v, %d skipped)", err, skipped)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1 (k2 aged out)", len(entries))
	}
	if k, _ := entries[0].Kernel(); k.Label() != k1.Label() {
		t.Errorf("surviving key = %s, want %s", k.Label(), k1.Label())
	}
}

// TestTraceCompactionKeepsFreshKeys: keys newly recorded during a
// compacting run survive the close rewrite.
func TestTraceCompactionKeepsFreshKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	g := gpu.MustLookup("V100")
	rec, err := NewTraceRecorderCompact(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record("alpha", kernels.NewBMM(2, 64, 64, 64), g)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _, err := ReadTrace(path)
	if err != nil || len(entries) != 1 {
		t.Fatalf("trace = (%d entries, %v), want the fresh key kept", len(entries), err)
	}
	if rec.Compaction().MaxIdleReplays != 3 {
		t.Errorf("compaction bound = %d, want 3", rec.Compaction().MaxIdleReplays)
	}
}

// TestTraceCompactionOnStats pins the /v2/stats exposure: the section is
// absent without a compacting recorder and present with one.
func TestTraceCompactionOnStats(t *testing.T) {
	reg := predict.NewRegistry()
	reg.MustRegister(constEngine("alpha", 1))
	svc := NewMulti(reg, "alpha", Config{CacheSize: 64})
	h := NewHandler(svc)

	stats := func() map[string]json.RawMessage {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/v2/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var m map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	if _, ok := stats()["trace_compaction"]; ok {
		t.Fatal("trace_compaction present without a compacting recorder")
	}
	rec, err := NewTraceRecorderCompact(filepath.Join(t.TempDir(), "stats.jsonl"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	svc.SetTraceRecorder(rec)
	svc.PredictKernel(kernels.NewBMM(2, 64, 64, 64), gpu.MustLookup("V100"))
	raw, ok := stats()["trace_compaction"]
	if !ok {
		t.Fatal("trace_compaction missing from /v2/stats")
	}
	var tc TraceCompaction
	if err := json.Unmarshal(raw, &tc); err != nil {
		t.Fatal(err)
	}
	if tc.MaxIdleReplays != 4 || tc.Touched != 1 {
		t.Fatalf("trace_compaction = %+v, want bound 4, 1 touched", tc)
	}
}

func TestNewTraceRecorderCompactValidation(t *testing.T) {
	if _, err := NewTraceRecorderCompact(filepath.Join(t.TempDir(), "x.jsonl"), 0); err == nil {
		t.Fatal("bound 0 must be rejected")
	}
}

func TestTraceRecorderConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jsonl")
	rec, err := NewTraceRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	g := gpu.MustLookup("V100")
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				rec.Record("alpha", kernels.NewBMM(1+i%10, 32, 32, 32), g)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := ReadTrace(path)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadTrace = (%v, %d skipped)", err, skipped)
	}
	if len(entries) != 10 {
		t.Errorf("trace entries = %d, want 10 unique keys", len(entries))
	}
}
