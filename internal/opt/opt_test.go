package opt

import (
	"math"
	"testing"

	ad "neusight/internal/autodiff"
	"neusight/internal/mat"
)

// quad sets up minimizing (w - target)² and returns the parameter plus a
// step function that computes gradients.
func quad(target float64) (*ad.Value, func()) {
	w := ad.NewVariable(mat.FromRows([][]float64{{0}}))
	tgt := ad.NewConstant(mat.FromRows([][]float64{{target}}))
	step := func() {
		d := ad.Sub(w, tgt)
		ad.Backward(ad.MeanAll(ad.Mul(d, d)))
	}
	return w, step
}

func TestSGDConverges(t *testing.T) {
	w, grad := quad(5)
	o := NewSGD([]*ad.Value{w}, 0.1, 0)
	for i := 0; i < 300; i++ {
		grad()
		o.Step()
	}
	if math.Abs(w.Data.Data[0]-5) > 1e-3 {
		t.Fatalf("w = %v, want 5", w.Data.Data[0])
	}
}

func TestSGDStepZeroesGradient(t *testing.T) {
	w, grad := quad(1)
	o := NewSGD([]*ad.Value{w}, 0.1, 0)
	grad()
	o.Step()
	for _, g := range w.Grad.Data {
		if g != 0 {
			t.Fatal("Step must zero gradients")
		}
	}
}

func TestAdamWConverges(t *testing.T) {
	w, grad := quad(-3)
	o := NewAdamW([]*ad.Value{w}, AdamWConfig{LR: 0.1})
	for i := 0; i < 500; i++ {
		grad()
		o.Step()
	}
	if math.Abs(w.Data.Data[0]-(-3)) > 1e-2 {
		t.Fatalf("w = %v, want -3", w.Data.Data[0])
	}
}

func TestAdamWFirstStepBiasCorrection(t *testing.T) {
	// With bias correction, the first AdamW step size is ~lr regardless of
	// gradient magnitude.
	for _, scale := range []float64{1e-4, 1.0, 1e4} {
		w := ad.NewVariable(mat.FromRows([][]float64{{0}}))
		o := NewAdamW([]*ad.Value{w}, AdamWConfig{LR: 0.01})
		w.Grad.Data[0] = scale
		o.Step()
		if got := math.Abs(w.Data.Data[0]); math.Abs(got-0.01) > 1e-4 {
			t.Fatalf("first step with grad %v moved %v, want ~lr", scale, got)
		}
	}
}

func TestAdamWWeightDecayDecoupled(t *testing.T) {
	// With zero gradient, decoupled weight decay still shrinks weights.
	w := ad.NewVariable(mat.FromRows([][]float64{{2}}))
	o := NewAdamW([]*ad.Value{w}, AdamWConfig{LR: 0.1, WeightDecay: 0.5})
	o.Step() // grad is zero
	want := 2 - 0.1*0.5*2
	if math.Abs(w.Data.Data[0]-want) > 1e-9 {
		t.Fatalf("w = %v, want %v (pure decay)", w.Data.Data[0], want)
	}
}

func TestSetLR(t *testing.T) {
	w, _ := quad(0)
	var o Optimizer = NewAdamW([]*ad.Value{w}, AdamWConfig{LR: 0.1})
	o.SetLR(0.05)
	if o.LR() != 0.05 {
		t.Fatalf("LR = %v", o.LR())
	}
	o = NewSGD([]*ad.Value{w}, 0.1, 0.9)
	o.SetLR(0.2)
	if o.LR() != 0.2 {
		t.Fatalf("LR = %v", o.LR())
	}
}

func TestCosineDecayMonotone(t *testing.T) {
	prev := math.Inf(1)
	for i := 0; i < 50; i++ {
		lr := CosineDecay(1.0, 0.01, i, 50)
		if lr > prev {
			t.Fatalf("cosine decay not monotone at step %d", i)
		}
		if lr < 0.01-1e-12 || lr > 1.0+1e-12 {
			t.Fatalf("lr %v out of [floor, base]", lr)
		}
		prev = lr
	}
	if got := CosineDecay(1.0, 0.1, 0, 1); got != 1.0 {
		t.Fatalf("degenerate schedule = %v, want base", got)
	}
	// Past-the-end steps clamp to the floor.
	if got := CosineDecay(1.0, 0.1, 200, 100); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("overrun lr = %v, want floor", got)
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	// Momentum should reach the target in fewer steps on a shallow slope.
	run := func(momentum float64) int {
		w, grad := quad(10)
		o := NewSGD([]*ad.Value{w}, 0.02, momentum)
		for i := 0; i < 2000; i++ {
			grad()
			o.Step()
			if math.Abs(w.Data.Data[0]-10) < 1e-3 {
				return i
			}
		}
		return 2000
	}
	plain, mom := run(0), run(0.9)
	if mom >= plain {
		t.Fatalf("momentum (%d steps) not faster than plain SGD (%d steps)", mom, plain)
	}
}
