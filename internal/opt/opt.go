// Package opt implements the gradient-based optimizers used to train the
// utilization predictors: plain SGD and AdamW with decoupled weight decay
// (the paper trains with "AdamW ... with L2 regularization", Section 6.1).
package opt

import (
	"math"

	ad "neusight/internal/autodiff"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients and clears the gradients afterwards.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters, then zeroes them.
	Step()
	// SetLR changes the learning rate for subsequent steps.
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*ad.Value
	lr       float64
	momentum float64
	velocity [][]float64
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*ad.Value, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p.Data.Data))
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		g := p.Grad.Data
		w := p.Data.Data
		if s.momentum == 0 {
			for j := range w {
				w[j] -= s.lr * g[j]
			}
		} else {
			v := s.velocity[i]
			for j := range w {
				v[j] = s.momentum*v[j] + g[j]
				w[j] -= s.lr * v[j]
			}
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter).
type AdamW struct {
	params      []*ad.Value
	lr          float64
	beta1       float64
	beta2       float64
	eps         float64
	weightDecay float64
	t           int
	m, v        [][]float64
}

// AdamWConfig carries AdamW hyperparameters; zero values select defaults
// (beta1 0.9, beta2 0.999, eps 1e-8).
type AdamWConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// NewAdamW builds an AdamW optimizer over params.
func NewAdamW(params []*ad.Value, cfg AdamWConfig) *AdamW {
	if cfg.Beta1 == 0 {
		cfg.Beta1 = 0.9
	}
	if cfg.Beta2 == 0 {
		cfg.Beta2 = 0.999
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1e-8
	}
	a := &AdamW{
		params: params, lr: cfg.LR, beta1: cfg.Beta1, beta2: cfg.Beta2,
		eps: cfg.Eps, weightDecay: cfg.WeightDecay,
		m: make([][]float64, len(params)), v: make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data.Data))
		a.v[i] = make([]float64, len(p.Data.Data))
	}
	return a
}

// Step implements Optimizer.
func (a *AdamW) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		g := p.Grad.Data
		w := p.Data.Data
		m, v := a.m[i], a.v[i]
		for j := range w {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			w[j] -= a.lr * (mHat/(math.Sqrt(vHat)+a.eps) + a.weightDecay*w[j])
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *AdamW) LR() float64 { return a.lr }

// CosineDecay returns the learning rate at step t of total steps, decaying
// from base to floor along a half cosine.
func CosineDecay(base, floor float64, t, total int) float64 {
	if total <= 1 {
		return base
	}
	frac := float64(t) / float64(total-1)
	if frac > 1 {
		frac = 1
	}
	return floor + 0.5*(base-floor)*(1+math.Cos(math.Pi*frac))
}
